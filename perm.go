package trigene

import (
	"context"
	"fmt"
	"time"

	"trigene/internal/contingency"
	"trigene/internal/obs"
	"trigene/internal/permtest"
)

// Distributed permutation testing. A permutation test is a flat index
// space — permutation p's shuffle is seeded by its absolute index — so
// it tiles exactly like a search: the cluster shards [0, P) into
// contiguous ranges, workers evaluate each range with the bit-plane
// kernel (Session.PermutationSlice), and the coordinator sums hit
// counts (MergePerms) into p-values bit-exact with a single-node run.

// PermSpec is the wire form of a cluster permutation-test job: the
// candidate combinations to test, the relabeling count, and the seed.
// It rides inside SearchSpec (whose Objective and Workers fields keep
// their meaning) under the stable "perm" key.
type PermSpec struct {
	// SNPs holds the candidate combinations (each strictly increasing,
	// order in [2, 7]) — typically a Report's top-K.
	SNPs [][]int `json:"snps"`
	// Permutations is the relabeling count (0 = default 1000).
	Permutations int `json:"permutations,omitempty"`
	// Seed fixes the RNG seed; permutation p is seeded by Seed and its
	// absolute index, which is what makes any tiling merge bit-exactly.
	Seed int64 `json:"seed,omitempty"`
}

// validate checks the dataset-independent invariants.
func (sp *PermSpec) validate() error {
	if len(sp.SNPs) == 0 {
		return fmt.Errorf("trigene: empty PermSpec: no candidate combinations")
	}
	if sp.Permutations < 0 {
		return fmt.Errorf("trigene: negative permutation count %d", sp.Permutations)
	}
	for _, snps := range sp.SNPs {
		if len(snps) < 2 || len(snps) > contingency.MaxOrder {
			return fmt.Errorf("trigene: candidate %v has order %d, want [2,%d]", snps, len(snps), contingency.MaxOrder)
		}
		for i, v := range snps {
			if v < 0 || (i > 0 && snps[i-1] >= v) {
				return fmt.Errorf("trigene: candidate %v is not strictly increasing", snps)
			}
		}
	}
	return nil
}

// Validate checks the spec loudly against a dataset of the given SNP
// count — the submit-time validation cluster coordinators and the CLIs
// run so a bad job fails at the door, not on the first worker. A snps
// of 0 checks only the dataset-independent invariants.
func (sp PermSpec) Validate(snps int) error {
	if err := sp.validate(); err != nil {
		return err
	}
	if snps > 0 {
		for _, c := range sp.SNPs {
			if c[len(c)-1] >= snps {
				return fmt.Errorf("trigene: candidate %v out of range for %d SNPs", c, snps)
			}
		}
	}
	return nil
}

// PermutationCount resolves the spec's relabeling count (default 1000,
// matching WithPermutations' default) — the total permutation index
// space a coordinator shards into tiles.
func (sp *PermSpec) PermutationCount() int { return sp.permutations() }

// permutations resolves the spec's relabeling count (default 1000,
// matching WithPermutations' default).
func (sp *PermSpec) permutations() int {
	if sp.Permutations == 0 {
		return 1000
	}
	return sp.Permutations
}

// PermScores is the wire-safe outcome of one permutation range — what
// a cluster worker posts per tile. Ranges over disjoint permutation
// index sets merge with MergePerms; because every range re-derives the
// same observed scores and seeds shuffles by absolute permutation
// index, the merged hit counts are bit-exact with a single-node run
// over the union.
type PermScores struct {
	// SNPs echoes the candidate combinations, in order; Observed and
	// Hits have this length.
	SNPs [][]int `json:"snps"`
	// Objective names the criterion the scores were computed under.
	Objective string `json:"objective"`
	// Seed is the test's RNG seed (merges must agree on it).
	Seed int64 `json:"seed"`
	// Offset and Count delimit the evaluated permutation index range
	// [Offset, Offset+Count).
	Offset int `json:"offset"`
	Count  int `json:"count"`
	// Observed holds each candidate's score on the real phenotypes.
	Observed []float64 `json:"observed"`
	// Hits counts, per candidate, the permutations in the range scoring
	// as good or better than Observed.
	Hits []int `json:"hits"`
}

// ValidateShape checks internal consistency of one tile's scores — the
// door check a coordinator runs on a posted range before accounting its
// tile done, so a malformed body never corrupts the merge.
func (ps *PermScores) ValidateShape() error { return ps.validateShape() }

// validateShape checks internal consistency of one tile's scores.
func (ps *PermScores) validateShape() error {
	if len(ps.SNPs) == 0 {
		return fmt.Errorf("trigene: perm scores carry no candidates")
	}
	if len(ps.Observed) != len(ps.SNPs) || len(ps.Hits) != len(ps.SNPs) {
		return fmt.Errorf("trigene: perm scores shape mismatch: %d candidates, %d observed, %d hits",
			len(ps.SNPs), len(ps.Observed), len(ps.Hits))
	}
	if ps.Offset < 0 || ps.Count < 1 {
		return fmt.Errorf("trigene: perm scores cover invalid range [%d,%d)", ps.Offset, ps.Offset+ps.Count)
	}
	for i, h := range ps.Hits {
		if h < 0 || h > ps.Count {
			return fmt.Errorf("trigene: candidate %d hit count %d outside [0,%d]", i, h, ps.Count)
		}
	}
	return nil
}

// MergePerms combines the per-range scores of a distributed permutation
// test: hit counts and range sizes sum; candidates, objective, seed and
// observed scores must agree bit-for-bit across ranges (they are
// re-derived deterministically by every worker, so a mismatch means the
// ranges came from different tests). The result covers the union of the
// input ranges.
func MergePerms(scores ...*PermScores) (*PermScores, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("trigene: MergePerms needs at least one range")
	}
	base := scores[0]
	if base == nil {
		return nil, fmt.Errorf("trigene: MergePerms got a nil range")
	}
	if err := base.validateShape(); err != nil {
		return nil, err
	}
	out := &PermScores{
		SNPs:      base.SNPs,
		Objective: base.Objective,
		Seed:      base.Seed,
		Offset:    base.Offset,
		Observed:  base.Observed,
		Hits:      make([]int, len(base.Hits)),
	}
	for _, sc := range scores {
		if sc == nil {
			return nil, fmt.Errorf("trigene: MergePerms got a nil range")
		}
		if sc != base {
			if err := sc.validateShape(); err != nil {
				return nil, err
			}
		}
		if sc.Objective != base.Objective || sc.Seed != base.Seed || len(sc.SNPs) != len(base.SNPs) {
			return nil, fmt.Errorf("trigene: cannot merge %s/seed %d ranges with %s/seed %d",
				sc.Objective, sc.Seed, base.Objective, base.Seed)
		}
		for i, snps := range sc.SNPs {
			if len(snps) != len(base.SNPs[i]) {
				return nil, fmt.Errorf("trigene: candidate %d differs between ranges", i)
			}
			for d, v := range snps {
				if v != base.SNPs[i][d] {
					return nil, fmt.Errorf("trigene: candidate %d differs between ranges", i)
				}
			}
			if sc.Observed[i] != base.Observed[i] {
				return nil, fmt.Errorf("trigene: candidate %d observed score %v != %v across ranges (different datasets?)",
					i, sc.Observed[i], base.Observed[i])
			}
		}
		if sc.Offset < out.Offset {
			out.Offset = sc.Offset
		}
		out.Count += sc.Count
		for i, h := range sc.Hits {
			out.Hits[i] += h
		}
	}
	return out, nil
}

// PermCandidate is one candidate's outcome in a PermInfo block.
type PermCandidate struct {
	// SNPs is the tested combination.
	SNPs []int `json:"snps"`
	// Observed is its score on the real phenotypes.
	Observed float64 `json:"observed"`
	// AsGoodOrBetter counts permutations tying or beating Observed.
	AsGoodOrBetter int `json:"asGoodOrBetter"`
	// PValue is (AsGoodOrBetter + 1) / (Permutations + 1).
	PValue float64 `json:"pValue"`
}

// PermInfo is the Report's record of a permutation test — attached by
// cluster permutation jobs (the coordinator merges tile hit counts and
// finalizes p-values here). It travels the JSON wire under the stable
// "perm" key and the first block present carries through MergeReports.
type PermInfo struct {
	// Permutations is the relabeling count behind every p-value.
	Permutations int `json:"permutations"`
	// Seed is the test's RNG seed.
	Seed int64 `json:"seed"`
	// Objective names the scoring criterion.
	Objective string `json:"objective"`
	// Tiles is how many permutation ranges the cluster merged (1 for a
	// single-node run).
	Tiles int `json:"tiles,omitempty"`
	// Results holds one entry per tested candidate, in request order.
	Results []PermCandidate `json:"results"`
}

// permInfo finalizes merged range scores into the Report block.
func permInfo(merged *PermScores, permutations, tiles int) *PermInfo {
	info := &PermInfo{
		Permutations: permutations,
		Seed:         merged.Seed,
		Objective:    merged.Objective,
		Tiles:        tiles,
		Results:      make([]PermCandidate, len(merged.SNPs)),
	}
	for i, snps := range merged.SNPs {
		info.Results[i] = PermCandidate{
			SNPs:           snps,
			Observed:       merged.Observed[i],
			AsGoodOrBetter: merged.Hits[i],
			PValue:         float64(merged.Hits[i]+1) / float64(permutations+1),
		}
	}
	return info
}

// FinalizePerms turns the merged range scores of a distributed
// permutation job into the Report the job answers with. The merged
// ranges must cover the spec's permutation index space exactly — a
// hole or overlap means a tile was lost or double-counted — and the
// resulting Report carries only the Perm block with finalized
// p-values. tiles records how many ranges were merged.
func FinalizePerms(spec *PermSpec, merged *PermScores, tiles int) (*Report, error) {
	perms := spec.permutations()
	if merged.Offset != 0 || merged.Count != perms {
		return nil, fmt.Errorf("trigene: merged permutation ranges cover [%d,%d), want [0,%d)",
			merged.Offset, merged.Offset+merged.Count, perms)
	}
	return &Report{
		Backend:   "cpu",
		Objective: merged.Objective,
		Perm:      permInfo(merged, perms, tiles),
	}, nil
}

// permConfig validates the option set of a permutation-test call and
// resolves the shared knobs. The rejections mirror Search's contract:
// permutation tests re-score fixed candidates, so search-shaping
// options do not apply.
func (s *Session) permConfig(opts []Option, orders func() []int) (*searchConfig, error) {
	cfg, err := newSearchConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.shard != nil {
		return nil, fmt.Errorf("trigene: permutation tests cannot shard; use WithCluster to distribute them")
	}
	if _, isCPU := cfg.backend.(cpuBackend); !isCPU {
		return nil, fmt.Errorf("trigene: permutation tests run on the host; WithBackend does not apply")
	}
	if cfg.approachSet {
		return nil, fmt.Errorf("trigene: permutation tests re-score fixed candidates; WithApproach does not apply")
	}
	if cfg.autotune {
		return nil, fmt.Errorf("trigene: permutation tests re-score fixed candidates; WithAutoTune does not apply")
	}
	if cfg.screen != nil {
		return nil, fmt.Errorf("trigene: permutation tests re-score fixed candidates; WithScreen does not apply")
	}
	if cfg.topK != 1 {
		return nil, fmt.Errorf("trigene: permutation tests score the candidates given; WithTopK does not apply")
	}
	if cfg.orderSet {
		for _, k := range orders() {
			if cfg.order != k {
				return nil, fmt.Errorf("trigene: order %d conflicts with a %d-SNP candidate (the order is inferred from the candidates)", cfg.order, k)
			}
		}
	}
	return cfg, nil
}

// permtestConfig lowers a validated call configuration into the kernel
// Config, wiring in the session's cached bit planes.
func (s *Session) permtestConfig(ctx context.Context, cfg *searchConfig) (permtest.Config, error) {
	obj, _, err := cfg.objective(s.Samples())
	if err != nil {
		return permtest.Config{}, err
	}
	return permtest.Config{
		Permutations: cfg.permutations,
		Seed:         cfg.seed,
		Workers:      cfg.workers,
		Objective:    obj,
		Context:      ctx,
		Planes:       s.store.Binarized(),
		Batch:        cfg.permBatch,
	}, nil
}

// PermutationTestAll permutation-tests a whole candidate set —
// typically a Report's top-K — at once on the bit-plane kernel, sharing
// each permuted phenotype across all candidates so the per-permutation
// shuffle cost is paid once instead of once per candidate. Results are
// in candidate order and bit-identical to separate PermutationTest
// calls with the same options. Relevant options: WithPermutations,
// WithSeed, WithObjective, WithWorkers, WithPermBatch, WithCluster
// (which distributes the permutation range over a cluster) and
// WithMetrics.
func (s *Session) PermutationTestAll(ctx context.Context, candidates [][]int, opts ...Option) ([]*PermResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := s.permConfig(opts, func() []int {
		orders := make([]int, len(candidates))
		for i, c := range candidates {
			orders[i] = len(c)
		}
		return orders
	})
	if err != nil {
		return nil, err
	}
	if cfg.remote != nil {
		return s.permRemote(ctx, cfg, candidates)
	}
	pc, err := s.permtestConfig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := permtest.KAll(s.Matrix(), candidates, pc)
	if err != nil {
		return nil, err
	}
	observePerm(cfg.metrics, pc.Permutations, len(candidates), time.Since(start))
	return res, nil
}

// PermutationSlice evaluates permutation indices [offset, offset+count)
// only — the entry point cluster workers execute for a permutation
// job's tiles — and returns the wire-safe range scores. Relevant
// options: WithSeed, WithObjective (both must match the job),
// WithWorkers, WithPermBatch, WithMetrics. Per-index seeding makes
// MergePerms over any tiling bit-exact with the untiled run.
func (s *Session) PermutationSlice(ctx context.Context, candidates [][]int, offset, count int, opts ...Option) (*PermScores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := s.permConfig(opts, func() []int {
		orders := make([]int, len(candidates))
		for i, c := range candidates {
			orders[i] = len(c)
		}
		return orders
	})
	if err != nil {
		return nil, err
	}
	if cfg.remote != nil {
		return nil, fmt.Errorf("trigene: PermutationSlice is the worker-side primitive; WithCluster does not apply")
	}
	pc, err := s.permtestConfig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	_, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rr, err := permtest.KAllRange(s.Matrix(), candidates, offset, count, pc)
	if err != nil {
		return nil, err
	}
	observePerm(cfg.metrics, count, len(candidates), time.Since(start))
	return &PermScores{
		SNPs:      candidates,
		Objective: objName,
		Seed:      cfg.seed,
		Offset:    offset,
		Count:     count,
		Observed:  rr.Observed,
		Hits:      rr.Hits,
	}, nil
}

// permRemote ships a permutation test to a WithCluster executor and
// lowers the returned Report.Perm block back into per-candidate
// results.
func (s *Session) permRemote(ctx context.Context, cfg *searchConfig, candidates [][]int) ([]*PermResult, error) {
	exec, ok := cfg.remote.(PermExecutor)
	if !ok {
		return nil, fmt.Errorf("trigene: cluster %s cannot run permutation jobs (no ExecutePerm)", cfg.remote.Name())
	}
	spec, err := cfg.spec()
	if err != nil {
		return nil, err
	}
	perms := cfg.permutations
	if perms == 0 {
		perms = 1000
	}
	snps := make([][]int, len(candidates))
	for i, c := range candidates {
		snps[i] = append([]int(nil), c...)
	}
	spec.Perm = &PermSpec{SNPs: snps, Permutations: perms, Seed: cfg.seed}
	spec.Order = 0
	spec.TopK = 0
	rep, err := exec.ExecutePerm(ctx, s.Matrix(), spec)
	if err != nil {
		return nil, fmt.Errorf("trigene: cluster %s: %w", cfg.remote.Name(), err)
	}
	if rep == nil || rep.Perm == nil {
		return nil, fmt.Errorf("trigene: cluster %s returned no permutation results", cfg.remote.Name())
	}
	if len(rep.Perm.Results) != len(candidates) {
		return nil, fmt.Errorf("trigene: cluster %s returned %d results for %d candidates",
			cfg.remote.Name(), len(rep.Perm.Results), len(candidates))
	}
	out := make([]*PermResult, len(rep.Perm.Results))
	for i, r := range rep.Perm.Results {
		out[i] = &PermResult{
			Observed:       r.Observed,
			AsGoodOrBetter: r.AsGoodOrBetter,
			Permutations:   rep.Perm.Permutations,
			PValue:         r.PValue,
		}
	}
	return out, nil
}

// observePerm records the permutation-test counters: relabelings
// evaluated, candidates sharing them, and the wall time. A nil registry
// is a no-op.
func observePerm(reg *obs.Registry, permutations, candidates int, d time.Duration) {
	reg.Counter("trigene_perm_permutations_total", "Phenotype relabelings evaluated by permutation tests.").Add(int64(permutations))
	reg.Counter("trigene_perm_candidates_total", "Candidate combinations scored by permutation tests.").Add(int64(candidates))
	reg.Histogram("trigene_perm_seconds", "Permutation test wall time in seconds.", obs.DurationBuckets).Observe(d.Seconds())
}
