package trigene_test

import (
	"context"
	"fmt"
	"testing"

	"trigene"
)

// Screened-search parity is the tentpole guarantee of the two-stage
// pipeline: pruning must only ever remove work, never change what the
// surviving work computes.

// TestScreenPermissiveParity: a permissive screen (keep every SNP)
// must be bit-exact with an unscreened run on every backend and every
// order — same candidates, same scores, same tie-breaks — because
// stage 2 then runs over the identity survivor set.
func TestScreenPermissiveParity(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		orders []int
		opts   []trigene.Option
	}{
		{"cpu", []int{2, 3, 4}, nil},
		{"cpu-V3F", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V3Fused)}},
		{"cpu-V4F", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V4Fused)}},
		{"gpusim", []int{3}, []trigene.Option{trigene.WithBackend(trigene.GPUSim(gn1))}},
		{"baseline", []int{3}, []trigene.Option{trigene.WithBackend(trigene.Baseline())}},
		{"hetero", []int{3}, []trigene.Option{trigene.WithBackend(trigene.Hetero())}},
	}
	for _, tc := range cases {
		for _, order := range tc.orders {
			t.Run(fmt.Sprintf("%s/order%d", tc.name, order), func(t *testing.T) {
				base := append([]trigene.Option{trigene.WithOrder(order), trigene.WithTopK(6)}, tc.opts...)
				plain, err := s.Search(ctx, base...)
				if err != nil {
					t.Fatal(err)
				}
				screened, err := s.Search(ctx, append(base,
					trigene.WithScreen(trigene.ScreenSpec{MaxSurvivors: s.SNPs()}))...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "permissive screen", screened, plain)
				if screened.Screen == nil {
					t.Fatal("screened run carries no ScreenInfo")
				}
				if screened.Screen.Survivors != s.SNPs() {
					t.Errorf("permissive screen kept %d of %d SNPs", screened.Screen.Survivors, s.SNPs())
				}
				if screened.Screen.PairsScanned == 0 || screened.Screen.Stage1Ns <= 0 {
					t.Errorf("stage-1 audit trail empty: %+v", screened.Screen)
				}
				if plain.Screen != nil {
					t.Error("unscreened run carries a ScreenInfo")
				}
			})
		}
	}
}

// TestScreenTightRecall: a tight screen still surfaces the planted
// triple — its SNPs rank high in the pairwise pre-scan by
// construction of ThresholdPenetrance — and the audit trail records
// the pruning.
func TestScreenTightRecall(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	rep, err := s.Search(ctx, trigene.WithTopK(3),
		trigene.WithScreen(trigene.ScreenSpec{MaxSurvivors: 10, SeedPairs: 3}))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, rep.Best.SNPs, 3, 9, 15)
	sc := rep.Screen
	if sc == nil {
		t.Fatal("no ScreenInfo")
	}
	if sc.Survivors != 10 || sc.SeedPairs != 3 {
		t.Errorf("screen kept %d survivors / %d seeds, want 10 / 3", sc.Survivors, sc.SeedPairs)
	}
	m := int64(s.SNPs())
	if sc.PairsScanned != m*(m-1)/2 {
		t.Errorf("scanned %d pairs, want C(%d,2) = %d", sc.PairsScanned, m, m*(m-1)/2)
	}
}

// TestScreenShardedMergeParity: a screened 2-shard run merged with
// MergeReports must equal the screened single-node run, and the merge
// must keep the screen audit trail. Locally each shard repeats the
// deterministic stage-1 scan and shards only stage 2, so the survivor
// sets agree by construction.
func TestScreenShardedMergeParity(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	for _, spec := range []trigene.ScreenSpec{
		{MaxSurvivors: 12},
		{MaxSurvivors: 10, SeedPairs: 3},
	} {
		t.Run(fmt.Sprintf("S%d_P%d", spec.MaxSurvivors, spec.SeedPairs), func(t *testing.T) {
			base := []trigene.Option{trigene.WithTopK(6), trigene.WithScreen(spec)}
			single, err := s.Search(ctx, base...)
			if err != nil {
				t.Fatal(err)
			}
			var parts []*trigene.Report
			for i := 0; i < 2; i++ {
				rep, err := s.Search(ctx, append(base, trigene.WithShard(i, 2))...)
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				parts = append(parts, rep)
			}
			merged, err := trigene.MergeReports(parts...)
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, "screened 2-shard merge", merged, single)
			if merged.Screen == nil {
				t.Fatal("merge dropped the ScreenInfo")
			}
			if merged.Screen.Survivors != single.Screen.Survivors ||
				merged.Screen.Threshold != single.Screen.Threshold {
				t.Errorf("merged screen trail %+v, single-node %+v", merged.Screen, single.Screen)
			}
		})
	}
}

// TestScreenRejections: screening composes with neither permutation
// tests nor empty specs, and budgets are validated before any work.
func TestScreenRejections(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	for _, spec := range []trigene.ScreenSpec{
		{},
		{MaxSurvivors: -1},
		{MaxSurvivors: 4, SeedPairs: -2},
		{BudgetSeconds: -0.5},
		{MaxSurvivors: s.SNPs() + 1},
		{MaxSurvivors: 2}, // fewer survivors than an order-3 search needs
	} {
		if _, err := s.Search(ctx, trigene.WithScreen(spec)); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	// Seed pairs extend to triples only.
	if _, err := s.Search(ctx, trigene.WithOrder(4),
		trigene.WithScreen(trigene.ScreenSpec{MaxSurvivors: 12, SeedPairs: 2})); err == nil {
		t.Error("order-4 seeded screen accepted")
	}
}
