package trigene_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"trigene"
)

// TestPackParityAllBackends is the store's end-to-end guarantee: a
// session loaded from a .tpack — over the wire (ReadPack) or
// memory-mapped from disk (OpenPack) — produces bit-exact Reports on
// every backend and keeps the dataset's content hash, including under
// sharding and MergeReports.
func TestPackParityAllBackends(t *testing.T) {
	orig := plantedSession(t)
	ctx := context.Background()

	var buf bytes.Buffer
	if err := orig.WritePack(&buf); err != nil {
		t.Fatal(err)
	}
	wire, err := trigene.ReadPack(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "planted.tpack")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := trigene.OpenPack(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	if wire.DatasetHash() != orig.DatasetHash() || mapped.DatasetHash() != orig.DatasetHash() {
		t.Fatalf("hash not preserved: orig %s wire %s mapped %s",
			orig.DatasetHash(), wire.DatasetHash(), mapped.DatasetHash())
	}
	if wire.SNPs() != orig.SNPs() || wire.Samples() != orig.Samples() {
		t.Fatalf("wire dims %dx%d != %dx%d", wire.SNPs(), wire.Samples(), orig.SNPs(), orig.Samples())
	}

	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		orders []int
		opts   []trigene.Option
	}{
		{"cpu", []int{2, 3, 4}, nil},
		{"cpu-V1", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V1Naive)}},
		{"cpu-V4", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V4Vector)}},
		{"cpu-V4F", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V4Fused)}},
		{"gpusim", []int{3}, []trigene.Option{trigene.WithBackend(trigene.GPUSim(gn1))}},
		{"baseline", []int{3}, []trigene.Option{trigene.WithBackend(trigene.Baseline())}},
		{"hetero", []int{3}, []trigene.Option{trigene.WithBackend(trigene.Hetero())}},
	}
	for _, tc := range cases {
		for _, order := range tc.orders {
			t.Run(fmt.Sprintf("%s/order%d", tc.name, order), func(t *testing.T) {
				base := append([]trigene.Option{trigene.WithOrder(order), trigene.WithTopK(6)}, tc.opts...)
				full, err := orig.Search(ctx, base...)
				if err != nil {
					t.Fatal(err)
				}
				fromWire, err := wire.Search(ctx, base...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "wire pack", fromWire, full)
				fromMap, err := mapped.Search(ctx, base...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "mmap pack", fromMap, full)

				// Shard/merge parity holds on the mapped session too.
				var parts []*trigene.Report
				for i := 0; i < 2; i++ {
					rep, err := mapped.Search(ctx, append(base, trigene.WithShard(i, 2))...)
					if err != nil {
						t.Fatalf("mapped shard %d: %v", i, err)
					}
					parts = append(parts, rep)
				}
				merged, err := trigene.MergeReports(parts...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "mmap 2-shard merge", merged, full)
			})
		}
	}

	// The permutation test decodes the matrix lazily from the pack and
	// must agree with the original session's.
	best, err := mapped.Search(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pOrig, err := orig.PermutationTest(ctx, best.Best.SNPs, trigene.WithPermutations(50), trigene.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	pMap, err := mapped.PermutationTest(ctx, best.Best.SNPs, trigene.WithPermutations(50), trigene.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if pOrig.PValue != pMap.PValue {
		t.Fatalf("permutation p-value %.6f != %.6f from pack", pMap.PValue, pOrig.PValue)
	}
}
