package trigene_test

import (
	"context"
	"testing"

	"trigene"
)

// TestAutoTuneBitExactAndTraced: WithAutoTune changes how the search
// executes, never what it finds — and the Report carries the decision
// trace the planner actually applied.
func TestAutoTuneBitExactAndTraced(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()

	plain, err := s.Search(ctx, trigene.WithTopK(5))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Plan != nil {
		t.Error("untuned run carries a plan trace")
	}
	tuned, err := s.Search(ctx, trigene.WithTopK(5), trigene.WithAutoTune())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "autotuned", tuned, plain)
	p := tuned.Plan
	if p == nil {
		t.Fatal("autotuned run has no plan trace")
	}
	if p.Backend != tuned.Backend {
		t.Errorf("plan backend %q, report ran %q", p.Backend, tuned.Backend)
	}
	if p.Approach != tuned.Approach {
		t.Errorf("plan approach %q, report ran %q", p.Approach, tuned.Approach)
	}
	if p.Grain <= 0 || p.PredictedCombosPerSec <= 0 || p.CPUDevice == "" {
		t.Errorf("plan trace incomplete: %+v", p)
	}
}

// TestAutoTuneWithPinnedBackend: an explicit backend is a planner
// constraint — the plan records it and the run stays bit-exact.
func TestAutoTuneWithPinnedBackend(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []trigene.Backend{trigene.Hetero(), trigene.GPUSim(gn1)} {
		plain, err := s.Search(ctx, trigene.WithBackend(be), trigene.WithTopK(4))
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := s.Search(ctx, trigene.WithBackend(be), trigene.WithTopK(4), trigene.WithAutoTune())
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, be.Name(), tuned, plain)
		if tuned.Plan == nil || tuned.Plan.Backend != be.Name() {
			t.Errorf("%s: plan = %+v", be.Name(), tuned.Plan)
		}
	}
	// The hetero plan seeds a split and device claim ratio.
	tuned, err := s.Search(ctx, trigene.WithBackend(trigene.Hetero()), trigene.WithAutoTune())
	if err != nil {
		t.Fatal(err)
	}
	if p := tuned.Plan; p.CPUFraction <= 0 || p.CPUFraction >= 1 || p.GPUGrains < 1 {
		t.Errorf("hetero plan not seeded: %+v", p)
	}
}

// TestEnergyBudgetTrace: WithEnergyBudget implies autotuning and
// records the DVFS operating point; nonsense budgets are rejected.
func TestEnergyBudgetTrace(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	rep, err := s.Search(ctx, trigene.WithEnergyBudget(60))
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Plan
	if p == nil {
		t.Fatal("budgeted run has no plan trace")
	}
	if p.EnergyBudgetWatts != 60 || p.TargetCPUGHz <= 0 || p.PredictedWatts <= 0 {
		t.Errorf("energy trace incomplete: %+v", p)
	}
	if _, err := s.Search(ctx, trigene.WithEnergyBudget(0)); err == nil {
		t.Error("zero-watt budget accepted")
	}
	if _, err := s.Search(ctx, trigene.WithEnergyBudget(-5)); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestMergeRejectsMixedShardSpaces: a rank shard and a block-triple
// shard of the same (index, count) cover different triples; merging
// them must fail loudly instead of silently mis-unioning — the trap
// being autotuning one shard of a search but not another.
func TestMergeRejectsMixedShardSpaces(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	ranks, err := s.Search(ctx, trigene.WithApproach(trigene.V2Split), trigene.WithShard(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := s.Search(ctx, trigene.WithApproach(trigene.V4Vector), trigene.WithShard(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ranks.Shard.Space == blocks.Shard.Space {
		t.Fatalf("test setup: both shards sliced %q", ranks.Shard.Space)
	}
	if _, err := trigene.MergeReports(ranks, blocks); err == nil {
		t.Error("merge of mixed shard spaces accepted")
	}
	// Same-space shards still merge.
	other, err := s.Search(ctx, trigene.WithApproach(trigene.V2Split), trigene.WithShard(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trigene.MergeReports(ranks, other); err != nil {
		t.Errorf("same-space merge failed: %v", err)
	}
}
