package trigene

import (
	"context"
	"fmt"
	"strings"

	"trigene/internal/hetero"
)

// SearchSpec is the wire form of a search configuration: the subset of
// a Session.Search call that serializes, carried verbatim between a
// cluster client, its coordinator and the workers executing tiles.
// Zero values mean "the call's default" (order 3, top-K 1, the
// backend's native objective and approach, all cores), so a zero
// SearchSpec is the zero Search call.
type SearchSpec struct {
	// Order is the interaction order (0 = default 3).
	Order int `json:"order,omitempty"`
	// TopK is the ranked candidate depth (0 = default 1).
	TopK int `json:"topK,omitempty"`
	// Objective names the ranking criterion ("" = backend default).
	Objective string `json:"objective,omitempty"`
	// Backend is the Backend.Name() of the execution engine: "cpu",
	// "gpusim:<ID>", "baseline" or "hetero" ("" = cpu). ParseBackend
	// rebuilds the Backend from it.
	Backend string `json:"backend,omitempty"`
	// Approach pins the pipeline variant "V1".."V4" — or, via the
	// numeric wire forms "V5"/"V6", the fused "V3F"/"V4F" ("" = backend
	// default).
	Approach string `json:"approach,omitempty"`
	// Workers is the per-node host parallelism (0 = all cores).
	Workers int `json:"workers,omitempty"`
	// AutoTune asks every executing node to run the model-driven
	// planner for its own host (WithAutoTune); with an empty Backend
	// each worker places the work where its models say. Tile Reports
	// then carry the plan trace (Report.Plan).
	AutoTune bool `json:"autoTune,omitempty"`
	// EnergyBudgetWatts carries WithEnergyBudget across the wire
	// (implies AutoTune on the executing node).
	EnergyBudgetWatts float64 `json:"energyBudgetWatts,omitempty"`
	// MaxWorkers caps how many distinct workers may hold live leases
	// on the job at once (0 = unlimited). Cluster scheduling policy
	// enforced by the coordinator; local execution ignores it.
	MaxWorkers int `json:"maxWorkers,omitempty"`
	// DeadlineMillis is the job's wall-clock budget from submission; a
	// cluster job still running past it is failed by the coordinator
	// (0 = none). Local execution ignores it — use a context deadline
	// there.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
	// Screen carries WithScreen across the wire. A screened cluster job
	// runs stage 1 as its own sharded phase; the coordinator merges the
	// shard scores, selects survivors, and pins them (Survivors/Seeds)
	// into the stage-2 grants.
	Screen *ScreenSpec `json:"screen,omitempty"`
	// Perm marks the job as a permutation test over the given
	// candidates: tiles shard the permutation index range instead of a
	// combination space, workers run Session.PermutationSlice, and the
	// coordinator merges hit counts (MergePerms) into Report.Perm.
	// Objective and Workers keep their meaning; the search-shaping
	// fields (Order, TopK, Approach, Screen, AutoTune) do not combine
	// with it.
	Perm *PermSpec `json:"perm,omitempty"`
}

// ParseBackend rebuilds a Backend from its Name(): "cpu" (or ""),
// "baseline", "hetero", or "gpusim:<ID>" with a Table II device label.
// Custom HeteroOn pairings do not round-trip through a name and are
// not constructible here.
func ParseBackend(name string) (Backend, error) {
	switch {
	case name == "" || name == "cpu":
		return CPU(), nil
	case name == "baseline":
		return Baseline(), nil
	case name == "hetero":
		return Hetero(), nil
	case strings.HasPrefix(name, "gpusim:"):
		dev, err := GPUByID(strings.TrimPrefix(name, "gpusim:"))
		if err != nil {
			return nil, err
		}
		return GPUSim(dev), nil
	default:
		return nil, fmt.Errorf("trigene: unknown backend %q (want cpu, baseline, hetero or gpusim:<ID>)", name)
	}
}

// Options rebuilds the Search options the spec describes. The caller
// appends placement options (WithShard) that are not part of the wire
// contract. An empty Backend stays unpinned (the call's default, or —
// under AutoTune — the executing node's planner choice).
func (sp SearchSpec) Options() ([]Option, error) {
	var opts []Option
	if sp.Backend != "" {
		be, err := ParseBackend(sp.Backend)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithBackend(be))
	}
	if sp.Order != 0 {
		opts = append(opts, WithOrder(sp.Order))
	}
	if sp.TopK != 0 {
		opts = append(opts, WithTopK(sp.TopK))
	}
	if sp.Objective != "" {
		opts = append(opts, WithObjective(sp.Objective))
	}
	if sp.Approach != "" {
		var ap Approach
		if strings.HasPrefix(sp.Backend, "gpusim:") {
			k, err := ParseGPUKernel(sp.Approach)
			if err != nil {
				return nil, err
			}
			ap = Approach(int(k))
		} else {
			a, err := ParseApproach(sp.Approach)
			if err != nil {
				return nil, err
			}
			ap = a
		}
		opts = append(opts, WithApproach(ap))
	}
	if sp.Workers != 0 {
		opts = append(opts, WithWorkers(sp.Workers))
	}
	if sp.AutoTune {
		opts = append(opts, WithAutoTune())
	}
	if sp.EnergyBudgetWatts > 0 {
		opts = append(opts, WithEnergyBudget(sp.EnergyBudgetWatts))
	}
	if sp.Screen != nil {
		opts = append(opts, WithScreen(*sp.Screen))
	}
	if sp.Perm != nil {
		opts = append(opts, WithPermutations(sp.Perm.permutations()), WithSeed(sp.Perm.Seed))
	}
	return opts, nil
}

// spec serializes the resolved configuration of a Search call. It
// fails on configuration that cannot cross the wire.
func (c *searchConfig) spec() (SearchSpec, error) {
	sp := SearchSpec{
		Order:             c.order,
		TopK:              c.topK,
		Objective:         c.objName,
		Backend:           c.backend.Name(),
		Workers:           c.workers,
		AutoTune:          c.autotune,
		EnergyBudgetWatts: c.energyBudget,
	}
	if c.autotune && !c.backendSet {
		// The caller left placement to the planner; keep it open on the
		// wire so every worker plans for its own host.
		sp.Backend = ""
	}
	if hb, ok := c.backend.(heteroBackend); ok && hb.opts != (hetero.Options{}) {
		return SearchSpec{}, fmt.Errorf("trigene: custom HeteroOn configurations do not serialize; remote execution supports the default Hetero() pairing")
	}
	if c.approachSet {
		sp.Approach = fmt.Sprintf("V%d", int(c.approach))
	}
	if c.screen != nil {
		sc := *c.screen
		sp.Screen = &sc
	}
	return sp, nil
}

// RemoteExecutor submits one configured search for execution somewhere
// else — WithCluster's contract. The cluster client
// (internal/cluster.Client, fronted by the trigened daemon) implements
// it by uploading the dataset, leasing tiles to workers and merging
// their tile Reports bit-exactly; any transport satisfying this
// interface plugs into Session.Search the same way.
type RemoteExecutor interface {
	// Name identifies the executor in errors and logs.
	Name() string
	// ExecuteSearch runs the spec against the given dataset and returns
	// the merged Report. The Report must be bit-exact with a local
	// Session.Search of the same spec.
	ExecuteSearch(ctx context.Context, mx *Matrix, spec SearchSpec) (*Report, error)
}

// PermExecutor extends RemoteExecutor with distributed permutation
// testing — what PermutationTest/PermutationTestAll under WithCluster
// require. The cluster client implements it by sharding the
// permutation index range into tiles; any executor whose merged hit
// counts are bit-exact with a local run of the same spec plugs in the
// same way.
type PermExecutor interface {
	RemoteExecutor
	// ExecutePerm runs the permutation job (spec.Perm is set) against
	// the given dataset and returns a Report whose Perm block carries
	// the merged per-candidate results.
	ExecutePerm(ctx context.Context, mx *Matrix, spec SearchSpec) (*Report, error)
}
