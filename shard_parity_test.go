package trigene_test

import (
	"context"
	"fmt"
	"testing"

	"trigene"
)

// Shard/merge parity is the scheduler's core guarantee: a shard is a
// sub-range of the tile space with bit-exact MergeReports semantics,
// on every backend. For each backend and every order it supports,
// three executions must produce identical Reports (candidates,
// scores, tie-breaks):
//
//   - a full run,
//   - a 2-shard run merged with MergeReports,
//   - a work-stealing run (a different dynamic consumer count — and,
//     on hetero, a different realized CPU/GPU split).
func TestShardMergeParity(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		orders []int
		opts   []trigene.Option
	}{
		{"cpu", []int{2, 3, 4}, nil},
		{"cpu-V1", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V1Naive)}},
		{"cpu-V2", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V2Split)}},
		{"cpu-V3", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V3Blocked)}},
		{"cpu-V4", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V4Vector)}},
		{"cpu-V3F", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V3Fused)}},
		{"cpu-V4F", []int{3}, []trigene.Option{trigene.WithApproach(trigene.V4Fused)}},
		{"gpusim", []int{3}, []trigene.Option{trigene.WithBackend(trigene.GPUSim(gn1))}},
		{"baseline", []int{3}, []trigene.Option{trigene.WithBackend(trigene.Baseline())}},
		{"hetero", []int{3}, []trigene.Option{trigene.WithBackend(trigene.Hetero())}},
	}
	for _, tc := range cases {
		for _, order := range tc.orders {
			t.Run(fmt.Sprintf("%s/order%d", tc.name, order), func(t *testing.T) {
				base := append([]trigene.Option{trigene.WithOrder(order), trigene.WithTopK(6)}, tc.opts...)
				full, err := s.Search(ctx, base...)
				if err != nil {
					t.Fatal(err)
				}
				if len(full.TopK) != 6 {
					t.Fatalf("full run returned %d candidates", len(full.TopK))
				}

				// 2-shard run, merged.
				var parts []*trigene.Report
				var combos int64
				for i := 0; i < 2; i++ {
					rep, err := s.Search(ctx, append(base, trigene.WithShard(i, 2))...)
					if err != nil {
						t.Fatalf("shard %d: %v", i, err)
					}
					if rep.Shard == nil || rep.Shard.Index != i || rep.Shard.Count != 2 || rep.Shard.Space == "" {
						t.Fatalf("shard %d info: %+v", i, rep.Shard)
					}
					combos += rep.Combinations
					parts = append(parts, rep)
				}
				if combos != full.Combinations {
					t.Errorf("shards cover %d combinations, full %d", combos, full.Combinations)
				}
				merged, err := trigene.MergeReports(parts...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "2-shard merge", merged, full)

				// Work-stealing run: a different dynamic consumer count
				// claims tiles in a different interleaving; the result must
				// not change.
				ws, err := s.Search(ctx, append(base, trigene.WithWorkers(3))...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "work-stealing", ws, full)

				// Autotuned paths: the planner may repick the approach,
				// regrain the scheduler and reseed the hetero split, but
				// single-node, 2-shard-merged and work-stealing Reports
				// must all stay bit-exact with the untuned full run — and
				// carry the decision trace.
				tuned, err := s.Search(ctx, append(base, trigene.WithAutoTune())...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "autotuned", tuned, full)
				if tuned.Plan == nil || tuned.Plan.Backend != tuned.Backend {
					t.Errorf("autotuned plan trace: %+v (backend %q)", tuned.Plan, tuned.Backend)
				}
				var tunedParts []*trigene.Report
				for i := 0; i < 2; i++ {
					rep, err := s.Search(ctx, append(base, trigene.WithShard(i, 2), trigene.WithAutoTune())...)
					if err != nil {
						t.Fatalf("autotuned shard %d: %v", i, err)
					}
					tunedParts = append(tunedParts, rep)
				}
				tunedMerged, err := trigene.MergeReports(tunedParts...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "autotuned 2-shard merge", tunedMerged, full)
				if tunedMerged.Plan == nil {
					t.Error("merge dropped the autotuned shards' plan trace")
				}
				tunedWS, err := s.Search(ctx, append(base, trigene.WithWorkers(3), trigene.WithAutoTune())...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "autotuned work-stealing", tunedWS, full)
			})
		}
	}
}

// reportsEqual asserts two Reports carry identical ranked candidates
// and cover the same number of combinations.
func reportsEqual(t *testing.T, label string, got, want *trigene.Report) {
	t.Helper()
	if got.Combinations != want.Combinations {
		t.Errorf("%s: %d combinations, want %d", label, got.Combinations, want.Combinations)
	}
	if len(got.TopK) != len(want.TopK) {
		t.Fatalf("%s: top-K %d entries, want %d", label, len(got.TopK), len(want.TopK))
	}
	for i := range want.TopK {
		wantSNPs(t, got.TopK[i].SNPs, want.TopK[i].SNPs...)
		if got.TopK[i].Score != want.TopK[i].Score {
			t.Errorf("%s: top-%d score %.12f != %.12f", label, i+1, got.TopK[i].Score, want.TopK[i].Score)
		}
	}
	wantSNPs(t, got.Best.SNPs, want.Best.SNPs...)
	if got.Best.Score != want.Best.Score {
		t.Errorf("%s: best score %.12f != %.12f", label, got.Best.Score, want.Best.Score)
	}
}

// TestSessionShardEmptyEverywhere: shards beyond the space report no
// candidates on every backend (the GPU simulator must not fall back
// to the full space, and hetero must not spin up either half).
func TestSessionShardEmptyEverywhere(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 6, Samples: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	// C(6,3) = 20, so shard 20 of 21 is empty.
	for _, b := range []trigene.Backend{trigene.CPU(), trigene.GPUSim(gn1), trigene.Baseline(), trigene.Hetero()} {
		rep, err := s.Search(ctx, trigene.WithBackend(b), trigene.WithShard(20, 21))
		if err != nil {
			t.Fatalf("%s empty shard: %v", b.Name(), err)
		}
		if len(rep.TopK) != 0 || rep.Best.SNPs != nil || rep.Combinations != 0 {
			t.Errorf("%s empty shard not empty: topk=%d best=%v combos=%d",
				b.Name(), len(rep.TopK), rep.Best.SNPs, rep.Combinations)
		}
		if rep.Shard == nil || rep.Shard.Lo != rep.Shard.Hi {
			t.Errorf("%s empty shard info: %+v", b.Name(), rep.Shard)
		}
	}
}
