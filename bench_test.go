// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus host-measured calibration runs and ablation
// benches for the design choices DESIGN.md calls out.
//
// Two kinds of benchmarks coexist here:
//
//   - *_Model benches evaluate the analytical device models that
//     project the kernels onto the paper's 13 devices (Figures 3-4,
//     Table III, Section V-D). They are cheap; their value is the
//     regenerated figure content, printed with -v via b.Logf on the
//     first iteration.
//   - *_Host and GPUSim benches measure this repository's real
//     implementations on the build machine: the engine approaches, the
//     MPI3SNP-style baseline, and the functional GPU simulator. The
//     custom "Gelem/s" metric is the paper's throughput unit
//     (combinations x samples per second, in billions).
//
// Regenerate everything textually with: go run ./cmd/benchsuite
package trigene_test

import (
	"fmt"
	"sync"
	"testing"

	"trigene"
	"trigene/internal/carm"
	"trigene/internal/device"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/hetero"
	"trigene/internal/mpi3snp"
	"trigene/internal/perfmodel"
	"trigene/internal/permtest"
	"trigene/internal/report"
)

// benchMatrix caches generated datasets across benchmarks.
var benchMatrix = struct {
	sync.Mutex
	cache map[string]*trigene.Matrix
}{cache: map[string]*trigene.Matrix{}}

func dataset(b *testing.B, snps, samples int) *trigene.Matrix {
	b.Helper()
	key := fmt.Sprintf("%dx%d", snps, samples)
	benchMatrix.Lock()
	defer benchMatrix.Unlock()
	if mx, ok := benchMatrix.cache[key]; ok {
		return mx
	}
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: snps, Samples: samples, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	benchMatrix.cache[key] = mx
	return mx
}

func mustCPU(b *testing.B, id string) device.CPU {
	b.Helper()
	c, err := device.CPUByID(id)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func mustGPU(b *testing.B, id string) device.GPU {
	b.Helper()
	g, err := device.GPUByID(id)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// reportEngine runs one engine configuration per iteration and reports
// the paper's throughput metric.
func reportEngine(b *testing.B, mx *trigene.Matrix, opts engine.Options) {
	s, err := engine.New(mx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var elements float64
	for i := 0; i < b.N; i++ {
		res, err := s.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		elements += res.Stats.Elements
	}
	b.ReportMetric(elements/b.Elapsed().Seconds()/1e9, "Gelem/s")
}

// ---------------------------------------------------------------------------
// Figure 2a: CARM characterization of the CPU approaches on Ice Lake SP.

func BenchmarkFig2a_CARM_CPU(b *testing.B) {
	ci3 := mustCPU(b, "CI3")
	model := carm.CPUModel(ci3, true)
	var once sync.Once
	for i := 0; i < b.N; i++ {
		points, err := carm.CPUPoints(ci3, true, 2048, 16384)
		if err != nil {
			b.Fatal(err)
		}
		once.Do(func() {
			t := report.NewTable("Figure 2a points (modeled)", "point", "AI", "GINTOPS", "ceiling")
			for _, p := range points {
				t.AddRowf(p.Name, p.AI, p.GIntops, model.Attainable(p.AI))
			}
			b.Logf("\n%s", t.String())
		})
	}
}

// Figure 2a/3 host calibration: the real V1-V4 progression measured on
// the build machine (the shape the paper measures on each CPU).

func BenchmarkFig2a_HostApproaches(b *testing.B) {
	mx := dataset(b, 96, 4096)
	for a := engine.V1Naive; a <= engine.V4Vector; a++ {
		b.Run(a.String(), func(b *testing.B) {
			reportEngine(b, mx, engine.Options{Approach: a})
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 2b: CARM characterization of the GPU kernels on Iris Xe MAX,
// obtained by executing them in the simulator.

func BenchmarkFig2b_CARM_GPU(b *testing.B) {
	gi2 := mustGPU(b, "GI2")
	mx := dataset(b, 48, 2048)
	runner := gpusim.New(gi2)
	for k := gpusim.K1Naive; k <= gpusim.K4Tiled; k++ {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var modelRate float64
			var logged bool
			for i := 0; i < b.N; i++ {
				res, err := runner.Search(encStore(mx), gpusim.Options{Kernel: k})
				if err != nil {
					b.Fatal(err)
				}
				modelRate = res.Stats.ElementsPerSec
				if !logged {
					logged = true
					p := carm.PointFromGPUStats(k.String(), res.Stats)
					b.Logf("point %s: AI=%.3f intop/B, %.1f GINTOPS, %.1f G elem/s (modeled)",
						p.Name, p.AI, p.GIntops, res.Stats.ElementsPerSec/1e9)
				}
			}
			b.ReportMetric(modelRate/1e9, "Gelem/s(model)")
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 3: CPU study across the Table I devices (modeled).

func BenchmarkFig3_CPUStudy(b *testing.B) {
	cpus := device.AllCPUs()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		var sink float64
		for _, c := range cpus {
			for _, m := range []int{2048, 4096, 8192} {
				sink += perfmodel.CPUPerCoreGElemPerSec(c, true, m, 16384)
				sink += perfmodel.CPUPerCyclePerCore(c, false, m, 16384)
				sink += perfmodel.CPUPerCyclePerCoreVec(c, c.HasAVX512, m, 16384)
			}
		}
		once.Do(func() {
			t := report.NewTable("Figure 3a (modeled): G elem/s/core", "device", "2048", "4096", "8192")
			for _, c := range cpus {
				t.AddRowf(c.ID,
					perfmodel.CPUPerCoreGElemPerSec(c, true, 2048, 16384),
					perfmodel.CPUPerCoreGElemPerSec(c, true, 4096, 16384),
					perfmodel.CPUPerCoreGElemPerSec(c, true, 8192, 16384))
			}
			b.Logf("sink=%g\n%s", sink, t.String())
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 4: GPU study across the Table II devices (modeled), with a
// measured simulator run for the per-CU ordering spot check.

func BenchmarkFig4_GPUStudy(b *testing.B) {
	gpus := device.AllGPUs()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		var sink float64
		for _, g := range gpus {
			for _, m := range []int{2048, 4096, 8192} {
				sink += perfmodel.GPUPerCUGElemPerSec(g, m, 16384)
				sink += perfmodel.GPUPerCyclePerCU(g, m, 16384)
				sink += perfmodel.GPUPerCyclePerStreamCore(g, m, 16384)
			}
		}
		once.Do(func() {
			t := report.NewTable("Figure 4a (modeled): G elem/s/CU", "device", "2048", "4096", "8192")
			for _, g := range gpus {
				t.AddRowf(g.ID,
					perfmodel.GPUPerCUGElemPerSec(g, 2048, 16384),
					perfmodel.GPUPerCUGElemPerSec(g, 4096, 16384),
					perfmodel.GPUPerCUGElemPerSec(g, 8192, 16384))
			}
			b.Logf("sink=%g\n%s", sink, t.String())
		})
	}
}

func BenchmarkFig4_GPUSimPerDevice(b *testing.B) {
	mx := dataset(b, 48, 2048)
	for _, id := range []string{"GN1", "GN2", "GA2", "GI2"} {
		id := id
		b.Run(id, func(b *testing.B) {
			runner := gpusim.New(mustGPU(b, id))
			var perCU float64
			for i := 0; i < b.N; i++ {
				res, err := runner.Search(encStore(mx), gpusim.Options{Kernel: gpusim.K4Tiled})
				if err != nil {
					b.Fatal(err)
				}
				perCU = res.Stats.ElementsPerCyclePer.CU
			}
			b.ReportMetric(perCU, "elem/cyc/CU(model)")
		})
	}
}

// ---------------------------------------------------------------------------
// Table III: modeled projection plus the host-measured baseline-vs-V4
// cross check.

func BenchmarkTable3_Model(b *testing.B) {
	var once sync.Once
	for i := 0; i < b.N; i++ {
		rows, err := perfmodel.Table3()
		if err != nil {
			b.Fatal(err)
		}
		once.Do(func() {
			t := report.NewTable("Table III (modeled)", "work", "dataset", "device", "speedup", "paper")
			for _, r := range rows {
				t.AddRowf(r.Work, fmt.Sprintf("%dx%d", r.SNPs, r.Samples), r.DeviceID,
					report.Speedup(r.Speedup), report.Speedup(r.PaperSpeedup))
			}
			b.Logf("\n%s", t.String())
		})
	}
}

func BenchmarkTable3_HostBaseline(b *testing.B) {
	mx := dataset(b, 96, 4096)
	b.Run("MPI3SNP-style", func(b *testing.B) {
		var elements float64
		for i := 0; i < b.N; i++ {
			res, err := mpi3snp.Search(encStore(mx), mpi3snp.Options{})
			if err != nil {
				b.Fatal(err)
			}
			elements += res.Stats.Elements
		}
		b.ReportMetric(elements/b.Elapsed().Seconds()/1e9, "Gelem/s")
	})
	b.Run("ThisWorkV4", func(b *testing.B) {
		reportEngine(b, mx, engine.Options{Approach: engine.V4Vector})
	})
}

// ---------------------------------------------------------------------------
// Section V-D: whole-device and energy-efficiency comparison (modeled).

func BenchmarkOverall_DeviceComparison(b *testing.B) {
	var once sync.Once
	for i := 0; i < b.N; i++ {
		rows := perfmodel.Overall(8192, 16384)
		once.Do(func() {
			t := report.NewTable("Section V-D (modeled)", "device", "G elem/s", "G elem/J")
			for _, r := range rows {
				t.AddRowf(r.DeviceID, r.GElems, r.GElemsPerJoule)
			}
			b.Logf("\n%s", t.String())
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 6): measured on the host.

// Blocking ablation: V2 (no tiling) vs V3 (tiling) on a long-sample
// dataset where the working set exceeds L2.
func BenchmarkAblation_Blocking(b *testing.B) {
	mx := dataset(b, 64, 16384)
	for _, a := range []engine.Approach{engine.V2Split, engine.V3Blocked} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			reportEngine(b, mx, engine.Options{Approach: a})
		})
	}
}

// Lane-width ablation: the V4 kernel at 1, 4 and 8 accumulator lanes
// (the stand-ins for scalar, AVX and AVX-512).
func BenchmarkAblation_Lanes(b *testing.B) {
	mx := dataset(b, 96, 4096)
	for _, lanes := range []int{1, 4, 8} {
		lanes := lanes
		b.Run(fmt.Sprintf("lanes%d", lanes), func(b *testing.B) {
			reportEngine(b, mx, engine.Options{Approach: engine.V4Vector, Lanes: lanes})
		})
	}
}

// Tile-size ablation: blocked approach across BS values around the
// paper's L1-derived optimum.
func BenchmarkAblation_TileSize(b *testing.B) {
	mx := dataset(b, 96, 4096)
	for _, bs := range []int{2, 4, 5, 8, 16} {
		bs := bs
		b.Run(fmt.Sprintf("BS%d", bs), func(b *testing.B) {
			reportEngine(b, mx, engine.Options{Approach: engine.V4Vector, BlockSNPs: bs, BlockWords: 4})
		})
	}
}

// GPU layout ablation: the three split-data layouts on the simulator;
// the metric is coalesced transactions per issued load (lower is
// better; 1/8 is perfect 32-byte coalescing of 4-byte loads).
func BenchmarkAblation_GPULayout(b *testing.B) {
	mx := dataset(b, 48, 2048)
	runner := gpusim.New(mustGPU(b, "GN2"))
	for _, k := range []gpusim.Kernel{gpusim.K2Split, gpusim.K3Transposed, gpusim.K4Tiled} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var txPerLoad float64
			for i := 0; i < b.N; i++ {
				res, err := runner.Search(encStore(mx), gpusim.Options{Kernel: k})
				if err != nil {
					b.Fatal(err)
				}
				txPerLoad = float64(res.Stats.Transactions) / float64(res.Stats.Loads)
			}
			b.ReportMetric(txPerLoad, "txn/load")
		})
	}
}

// Objective ablation: scoring cost of the three objectives on the same
// search.
func BenchmarkAblation_Objectives(b *testing.B) {
	mx := dataset(b, 64, 2048)
	for _, name := range []string{"k2", "mi", "gini"} {
		name := name
		b.Run(name, func(b *testing.B) {
			obj, err := trigene.NewObjective(name, mx.Samples())
			if err != nil {
				b.Fatal(err)
			}
			reportEngine(b, mx, engine.Options{Objective: obj})
		})
	}
}

// ---------------------------------------------------------------------------
// Extension benches: 2-way search, heterogeneous split, permutation
// testing, and the MPI3SNP-parity pairwise comparison.

func BenchmarkExt_PairSearch(b *testing.B) {
	mx := dataset(b, 512, 4096)
	s, err := engine.New(mx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var elements float64
	for i := 0; i < b.N; i++ {
		res, err := s.RunPairs(engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		elements += res.Stats.Elements
	}
	b.ReportMetric(elements/b.Elapsed().Seconds()/1e9, "Gelem/s")
}

func BenchmarkExt_Heterogeneous(b *testing.B) {
	mx := dataset(b, 48, 2048)
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		frac := frac
		b.Run(fmt.Sprintf("cpu%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hetero.Search(encStore(mx), hetero.Options{CPUFraction: frac}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExt_PermutationTest(b *testing.B) {
	mx := dataset(b, 32, 2048)
	for i := 0; i < b.N; i++ {
		if _, err := permtest.Triple(mx, 3, 9, 21, permtest.Config{Permutations: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(200*float64(b.N)/b.Elapsed().Seconds(), "perm/s")
}

func BenchmarkExt_KWaySearch(b *testing.B) {
	mx := dataset(b, 40, 2048)
	s, err := engine.New(mx)
	if err != nil {
		b.Fatal(err)
	}
	for _, order := range []int{2, 3, 4} {
		order := order
		b.Run(fmt.Sprintf("order%d", order), func(b *testing.B) {
			var elements float64
			for i := 0; i < b.N; i++ {
				res, err := s.RunK(order, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				elements += res.Stats.Elements
			}
			b.ReportMetric(elements/b.Elapsed().Seconds()/1e9, "Gelem/s")
		})
	}
}
