package trigene

import (
	"encoding/json"
	"time"
)

// Stable JSON codec for Report — the wire format of the distributed
// deployment: trigened workers post tile Reports in it, `trigened
// result` and `epistasis -json` emit it, and MergeReports accepts
// Reports that round-tripped through it (the objective's ordering is
// rebuilt from the Objective name, and the requested top-K depth is
// carried as "topKLimit" so a merge of deserialized shard Reports
// fills the same depth as an in-process merge — a shard whose own list
// is short must not shrink the merged list).
//
// The schema is versioned by field presence, not a version number:
// fields are only ever added, never renamed or re-typed. Durations
// travel as integer nanoseconds.

// wireReport is the serialized shape of a Report.
type wireReport struct {
	Backend        string            `json:"backend"`
	Approach       string            `json:"approach"`
	Objective      string            `json:"objective"`
	Order          int               `json:"order"`
	Best           SearchCandidate   `json:"best"`
	TopK           []SearchCandidate `json:"topK,omitempty"`
	TopKLimit      int               `json:"topKLimit,omitempty"`
	Combinations   int64             `json:"combinations"`
	Elements       float64           `json:"elements"`
	DurationNs     int64             `json:"durationNs"`
	ElementsPerSec float64           `json:"elementsPerSec"`
	Shard          *ShardInfo        `json:"shard,omitempty"`
	GPU            *GPUStats         `json:"gpu,omitempty"`
	Hetero         *HeteroInfo       `json:"hetero,omitempty"`
	Plan           *PlanInfo         `json:"plan,omitempty"`
	Screen         *ScreenInfo       `json:"screen,omitempty"`
	Perm           *PermInfo         `json:"perm,omitempty"`
	Trace          *TraceInfo        `json:"trace,omitempty"`
}

// MarshalJSON implements the stable Report wire format.
func (r Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireReport{
		Backend:        r.Backend,
		Approach:       r.Approach,
		Objective:      r.Objective,
		Order:          r.Order,
		Best:           r.Best,
		TopK:           r.TopK,
		TopKLimit:      r.topK,
		Combinations:   r.Combinations,
		Elements:       r.Elements,
		DurationNs:     int64(r.Duration),
		ElementsPerSec: r.ElementsPerSec,
		Shard:          r.Shard,
		GPU:            r.GPU,
		Hetero:         r.Hetero,
		Plan:           r.Plan,
		Screen:         r.Screen,
		Perm:           r.Perm,
		Trace:          r.Trace,
	})
}

// UnmarshalJSON implements the stable Report wire format.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w wireReport
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Report{
		Backend:        w.Backend,
		Approach:       w.Approach,
		Objective:      w.Objective,
		Order:          w.Order,
		Best:           w.Best,
		TopK:           w.TopK,
		topK:           w.TopKLimit,
		Combinations:   w.Combinations,
		Elements:       w.Elements,
		Duration:       time.Duration(w.DurationNs),
		ElementsPerSec: w.ElementsPerSec,
		Shard:          w.Shard,
		GPU:            w.GPU,
		Hetero:         w.Hetero,
		Plan:           w.Plan,
		Screen:         w.Screen,
		Perm:           w.Perm,
		Trace:          w.Trace,
	}
	return nil
}
