package trigene

import (
	"bytes"
	"context"
	"testing"

	"trigene/internal/store"
)

func internalSession(t *testing.T) *Session {
	t.Helper()
	mx, err := Generate(GenConfig{SNPs: 18, Samples: 240, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionBuildsEachEncodingAtMostOnce is the store's core economic
// guarantee: no matter how many searches a session serves, across
// every backend, each representation is constructed at most once.
func TestSessionBuildsEachEncodingAtMostOnce(t *testing.T) {
	s := internalSession(t)
	ctx := context.Background()
	gn1, err := GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	if b := s.store.Builds(); b != (store.Builds{}) {
		t.Fatalf("NewSession built encodings eagerly: %+v", b)
	}
	runs := []struct {
		name string
		opts []Option
	}{
		{"V1", []Option{WithApproach(V1Naive)}},
		{"V2", []Option{WithApproach(V2Split)}},
		{"V4", []Option{WithApproach(V4Vector)}},
		{"V4F", []Option{WithApproach(V4Fused)}},
		{"pairs", []Option{WithOrder(2)}},
		{"4-way", []Option{WithOrder(4)}},
		{"gpusim", []Option{WithBackend(GPUSim(gn1))}},
		{"baseline", []Option{WithBackend(Baseline())}},
		{"hetero", []Option{WithBackend(Hetero())}},
	}
	// Two passes: the second must add zero builds anywhere.
	for pass := 0; pass < 2; pass++ {
		for _, r := range runs {
			if _, err := s.Search(ctx, r.opts...); err != nil {
				t.Fatalf("pass %d %s: %v", pass, r.name, err)
			}
		}
		b := s.store.Builds()
		// One Binarized (V1), one Split (everything else on the CPU),
		// one ClassPlanes (baseline), one tiled Words32 (the gpusim and
		// hetero device halves share GN1's tile width).
		want := store.Builds{Binarized: 1, Split: 1, ClassPlanes: 1, Words32: 1}
		if b != want {
			t.Fatalf("pass %d: builds = %+v, want %+v", pass, b, want)
		}
	}
}

// TestSingleApproachBuildsOneEncoding asserts the lazy split: a
// session serving only V1 searches never constructs the phenotype-
// split form, and a V2-only session never constructs the naive
// three-plane form.
func TestSingleApproachBuildsOneEncoding(t *testing.T) {
	ctx := context.Background()

	v1 := internalSession(t)
	if _, err := v1.Search(ctx, WithApproach(V1Naive)); err != nil {
		t.Fatal(err)
	}
	if b := v1.store.Builds(); b.Binarized != 1 || b.Split != 0 {
		t.Fatalf("V1-only session builds = %+v; the split form must never be constructed", b)
	}

	v2 := internalSession(t)
	if _, err := v2.Search(ctx, WithApproach(V2Split)); err != nil {
		t.Fatal(err)
	}
	if b := v2.store.Builds(); b.Split != 1 || b.Binarized != 0 {
		t.Fatalf("V2-only session builds = %+v; the naive form must never be constructed", b)
	}

	v4 := internalSession(t)
	if _, err := v4.Search(ctx, WithApproach(V4Vector)); err != nil {
		t.Fatal(err)
	}
	if b := v4.store.Builds(); b.Split != 1 || b.Binarized != 0 {
		t.Fatalf("V4-only session builds = %+v; the naive form must never be constructed", b)
	}
}

// TestPackSessionAdoptsEncodings: a pack-loaded session starts with
// both hot encodings adopted (zero builds) and only ever builds the
// derived 32-bit forms.
func TestPackSessionAdoptsEncodings(t *testing.T) {
	s := internalSession(t)
	ctx := context.Background()
	var buf bytes.Buffer
	if err := s.WritePack(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range []Approach{V1Naive, V2Split, V4Vector} {
		if _, err := loaded.Search(ctx, WithApproach(ap)); err != nil {
			t.Fatalf("%v: %v", ap, err)
		}
	}
	if b := loaded.store.Builds(); b.Binarized != 0 || b.Split != 0 {
		t.Fatalf("pack-loaded session rebuilt adopted encodings: %+v", b)
	}
}
