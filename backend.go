package trigene

import (
	"context"
	"fmt"
	"time"

	"trigene/internal/combin"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/hetero"
	"trigene/internal/mpi3snp"
)

// Backend is a pluggable execution engine behind Session.Search. The
// four implementations — CPU, GPUSim, Baseline and Hetero — accept the
// same request contract and produce the same Report shape; backends
// that cannot honor a requested feature (sharding, top-K depth,
// approach selection) fail loudly instead of silently degrading.
//
// Backends are provided by this package; the interface is sealed.
type Backend interface {
	// Name identifies the backend in Reports ("cpu", "gpusim:GN1",
	// "baseline", "hetero").
	Name() string
	// search runs one configured search over a session's dataset.
	search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error)
}

// shardRange maps shard index of count onto the combination-rank space
// [0, total): contiguous slices whose sizes differ by at most one.
func shardRange(total int64, index, count int) combin.Range {
	n, i := int64(count), int64(index)
	base, rem := total/n, total%n
	lo := i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return combin.Range{Lo: lo, Hi: lo + size}
}

// shardInfo materializes the Report record for a shard.
func shardInfo(sp *shardSpec, rg combin.Range) *ShardInfo {
	return &ShardInfo{Index: sp.index, Count: sp.count, Lo: rg.Lo, Hi: rg.Hi}
}

// ---------------------------------------------------------------------
// CPU backend

type cpuBackend struct{}

// CPU returns the host CPU backend: the paper's four approaches across
// a dynamically scheduled worker pool. It supports every interaction
// order, top-K ranking, and — at order 3 on the rank-partitionable
// approaches V1/V2 — sharding.
func CPU() Backend { return cpuBackend{} }

// Name implements Backend.
func (cpuBackend) Name() string { return "cpu" }

func (cpuBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	obj, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	eopts := engine.Options{
		Workers:   cfg.workers,
		Objective: obj,
		TopK:      cfg.topK,
		Context:   ctx,
		Progress:  cfg.progress,
	}
	rep := &Report{
		Backend:   "cpu",
		Objective: objName,
		Order:     cfg.order,
		obj:       obj,
		topK:      cfg.topK,
	}

	switch cfg.order {
	case 2:
		if cfg.shard != nil {
			return nil, fmt.Errorf("trigene: cpu backend shards order-3 searches only (order %d requested)", cfg.order)
		}
		if cfg.approachSet {
			return nil, fmt.Errorf("trigene: order-%d searches use the fixed split kernel; WithApproach applies to order 3 only", cfg.order)
		}
		res, err := s.searcher.RunPairs(eopts)
		if err != nil {
			return nil, err
		}
		rep.Approach = "V2"
		for _, c := range res.TopK {
			rep.TopK = append(rep.TopK, SearchCandidate{SNPs: []int{c.Pair.I, c.Pair.J}, Score: c.Score})
		}
		fillStats(rep, res.Stats)

	case 3:
		ap := cfg.approach
		if cfg.shard != nil {
			// Sharding delegates to rank-range partitioning, which the
			// flat approaches support. Unless the caller pinned an
			// approach, use V2 (the fastest partitionable one).
			if !cfg.approachSet {
				ap = V2Split
			} else if ap != V1Naive && ap != V2Split {
				return nil, fmt.Errorf("trigene: approach %v cannot shard; use V1 or V2 (or leave the approach unset)", ap)
			}
			rg := shardRange(combin.Triples(s.SNPs()), cfg.shard.index, cfg.shard.count)
			eopts.RankRange = &rg
			rep.Shard = shardInfo(cfg.shard, rg)
		} else if ap == 0 {
			ap = V4Vector
		}
		eopts.Approach = ap
		res, err := s.searcher.Run(eopts)
		if err != nil {
			return nil, err
		}
		rep.Approach = ap.String()
		for _, c := range res.TopK {
			rep.TopK = append(rep.TopK, SearchCandidate{SNPs: []int{c.Triple.I, c.Triple.J, c.Triple.K}, Score: c.Score})
		}
		fillStats(rep, res.Stats)

	default:
		if cfg.shard != nil {
			return nil, fmt.Errorf("trigene: cpu backend shards order-3 searches only (order %d requested)", cfg.order)
		}
		if cfg.approachSet {
			return nil, fmt.Errorf("trigene: order-%d searches use the fixed split kernel; WithApproach applies to order 3 only", cfg.order)
		}
		res, err := s.searcher.RunK(cfg.order, eopts)
		if err != nil {
			return nil, err
		}
		rep.Approach = "V2"
		for _, c := range res.TopK {
			rep.TopK = append(rep.TopK, SearchCandidate{SNPs: c.SNPs, Score: c.Score})
		}
		fillStats(rep, res.Stats)
	}
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	}
	return rep, nil
}

// fillStats copies the engine's throughput accounting into a Report.
func fillStats(rep *Report, st engine.Stats) {
	rep.Combinations = st.Combinations
	rep.Elements = st.Elements
	rep.Duration = st.Duration
	rep.ElementsPerSec = st.ElementsPerSec
}

// ---------------------------------------------------------------------
// Simulated-GPU backend

type gpuBackend struct {
	dev GPUDevice
}

// GPUSim returns a backend that executes searches bit-exactly on a
// simulated Table II device with the paper's four GPU kernels and a
// coalescing-aware memory model. It supports order 3 only, reports the
// single best candidate, and shards via kernel rank ranges.
func GPUSim(dev GPUDevice) Backend { return gpuBackend{dev: dev} }

// Name implements Backend.
func (b gpuBackend) Name() string { return "gpusim:" + b.dev.ID }

func (b gpuBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	if cfg.order != 3 {
		return nil, fmt.Errorf("trigene: %s backend supports order 3 only (order %d requested)", b.Name(), cfg.order)
	}
	if cfg.topK > 1 {
		return nil, fmt.Errorf("trigene: %s backend reports the single best candidate (TopK %d requested)", b.Name(), cfg.topK)
	}
	obj, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	kernel := gpusim.K4Tiled
	if cfg.approachSet {
		kernel = gpusim.Kernel(cfg.approach)
	}
	gopts := gpusim.Options{
		Kernel:    kernel,
		Objective: obj,
		Context:   ctx,
	}
	rep := &Report{
		Backend:   b.Name(),
		Approach:  kernel.String(),
		Objective: objName,
		Order:     3,
		obj:       obj,
		topK:      cfg.topK,
	}
	if cfg.shard != nil {
		rg := shardRange(combin.Triples(s.SNPs()), cfg.shard.index, cfg.shard.count)
		rep.Shard = shardInfo(cfg.shard, rg)
		if rg.Len() == 0 {
			// An empty shard has no candidates. Returning early also
			// avoids RankLo == RankHi == 0, which the simulator reads
			// as "full space".
			return rep, nil
		}
		gopts.RankLo, gopts.RankHi = rg.Lo, rg.Hi
	}
	start := time.Now()
	res, err := gpusim.New(b.dev).Search(s.Matrix(), gopts)
	if err != nil {
		return nil, err
	}
	rep.Best = SearchCandidate{SNPs: []int{res.Best.I, res.Best.J, res.Best.K}, Score: res.Best.Score}
	rep.TopK = []SearchCandidate{rep.Best}
	rep.Combinations = res.Stats.Combinations
	rep.Elements = res.Stats.Elements
	rep.Duration = time.Since(start)
	rep.ElementsPerSec = res.Stats.ElementsPerSec // modeled device throughput
	stats := res.Stats
	rep.GPU = &stats
	return rep, nil
}

// ---------------------------------------------------------------------
// Baseline backend

type baselineBackend struct{}

// Baseline returns the MPI3SNP-style reference backend (three stored
// planes, no tiling, static scheduling, mutual information) — the
// Table III comparator. It supports order 3 and top-K ranking; it
// ranks by mutual information only and cannot shard.
func Baseline() Backend { return baselineBackend{} }

// Name implements Backend.
func (baselineBackend) Name() string { return "baseline" }

func (baselineBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	if cfg.order != 3 {
		return nil, fmt.Errorf("trigene: baseline backend supports order 3 only (order %d requested)", cfg.order)
	}
	if cfg.shard != nil {
		return nil, fmt.Errorf("trigene: baseline backend cannot shard (its MPI-style distribution is internal and static)")
	}
	if cfg.approachSet {
		return nil, fmt.Errorf("trigene: baseline backend has a fixed pipeline; WithApproach does not apply")
	}
	if cfg.objName != "" && cfg.objName != "mi" {
		return nil, fmt.Errorf("trigene: baseline backend ranks by mutual information only (objective %q requested)", cfg.objName)
	}
	obj, _, err := (&searchConfig{objName: "mi"}).objective(s.Samples())
	if err != nil {
		return nil, err
	}
	res, err := mpi3snp.Search(s.Matrix(), mpi3snp.Options{
		Ranks:   cfg.workers,
		TopK:    cfg.topK,
		Context: ctx,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Backend:   "baseline",
		Approach:  "mpi3snp",
		Objective: "mi",
		Order:     3,
		obj:       obj,
		topK:      cfg.topK,
	}
	for _, c := range res.TopK {
		rep.TopK = append(rep.TopK, SearchCandidate{SNPs: []int{c.I, c.J, c.K}, Score: c.MI})
	}
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	}
	rep.Combinations = res.Stats.Combinations
	rep.Elements = res.Stats.Elements
	rep.Duration = res.Stats.Duration
	rep.ElementsPerSec = res.Stats.ElementsPerSec
	return rep, nil
}

// ---------------------------------------------------------------------
// Heterogeneous backend

type heteroBackend struct {
	opts hetero.Options
}

// Hetero returns the collaborative CPU+GPU backend of the paper's
// Section V-D with the default device pairing (CI3 + GN1) and a
// throughput-proportional automatic split. It supports order 3 and the
// single best candidate; it cannot shard (it partitions the space
// internally between its two halves).
func Hetero() Backend { return heteroBackend{} }

// HeteroOn is Hetero with an explicit device pair and CPU fraction.
// cpuFraction 0 selects the modeled throughput-proportional split; use
// a negative value for an all-GPU run and 1 for an all-CPU run.
func HeteroOn(cpu CPUDevice, gpu GPUDevice, cpuFraction float64) Backend {
	return heteroBackend{opts: hetero.Options{
		CPUDevice:   cpu,
		GPUDevice:   gpu,
		CPUFraction: cpuFraction,
	}}
}

// Name implements Backend.
func (heteroBackend) Name() string { return "hetero" }

func (b heteroBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	if cfg.order != 3 {
		return nil, fmt.Errorf("trigene: hetero backend supports order 3 only (order %d requested)", cfg.order)
	}
	if cfg.shard != nil {
		return nil, fmt.Errorf("trigene: hetero backend cannot shard (it already partitions the space between CPU and GPU)")
	}
	if cfg.topK > 1 {
		return nil, fmt.Errorf("trigene: hetero backend reports the single best candidate (TopK %d requested)", cfg.topK)
	}
	if cfg.approachSet {
		return nil, fmt.Errorf("trigene: hetero backend runs V2 (CPU half) + V4 (GPU half); WithApproach does not apply")
	}
	obj, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	hopts := b.opts
	hopts.Workers = cfg.workers
	hopts.Objective = obj
	hopts.Context = ctx
	res, err := hetero.Search(s.Matrix(), hopts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Backend:   "hetero",
		Approach:  "V2+V4",
		Objective: objName,
		Order:     3,
		obj:       obj,
		topK:      cfg.topK,
	}
	rep.Best = SearchCandidate{
		SNPs:  []int{res.Best.Triple.I, res.Best.Triple.J, res.Best.Triple.K},
		Score: res.Best.Score,
	}
	rep.TopK = []SearchCandidate{rep.Best}
	rep.Combinations = combin.Triples(s.SNPs())
	rep.Elements = float64(rep.Combinations) * float64(s.Samples())
	rep.Duration = res.Duration
	if secs := res.Duration.Seconds(); secs > 0 {
		rep.ElementsPerSec = rep.Elements / secs
	}
	gpuStats := res.GPUStats
	rep.GPU = &gpuStats
	rep.Hetero = &HeteroInfo{
		CPUFraction:           res.CPUFraction,
		ModeledCombinedGElems: res.ModeledCombinedGElems,
	}
	return rep, nil
}
