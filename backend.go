package trigene

import (
	"context"
	"fmt"
	"time"

	"trigene/internal/combin"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/hetero"
	"trigene/internal/mpi3snp"
	"trigene/internal/sched"
)

// Backend is a pluggable execution engine behind Session.Search. The
// four implementations — CPU, GPUSim, Baseline and Hetero — accept the
// same request contract and produce the same Report shape; backends
// that cannot honor a requested feature (sharding, top-K depth,
// approach selection) fail loudly instead of silently degrading.
//
// Backends are provided by this package; the interface is sealed.
type Backend interface {
	// Name identifies the backend in Reports ("cpu", "gpusim:GN1",
	// "baseline", "hetero").
	Name() string
	// search runs one configured search over a session's dataset.
	search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error)
}

// shardRange maps shard index of count onto the combination-rank space
// [0, total) through the scheduler's shard math: contiguous slices
// whose sizes differ by at most one.
func shardRange(total int64, sp *shardSpec) combin.Range {
	sub, err := sched.NewSource(0, total, 1).Shard(sched.Shard{Index: sp.index, Count: sp.count})
	if err != nil {
		// Unreachable: WithShard validated the coordinates.
		panic(err)
	}
	return sub.Bounds()
}

// shardInfo materializes the Report record for a shard from the
// covered slice of the work space (nil space leaves Lo/Hi zero).
func shardInfo(sp *shardSpec, space *sched.Tile, units string) *ShardInfo {
	if sp == nil {
		return nil
	}
	si := &ShardInfo{Index: sp.index, Count: sp.count, Space: units}
	if space != nil {
		si.Lo, si.Hi = space.Lo, space.Hi
	}
	return si
}

// ---------------------------------------------------------------------
// CPU backend

type cpuBackend struct{}

// CPU returns the host CPU backend: the paper's four approaches across
// a dynamically scheduled worker pool fed by the tile scheduler. It
// supports every interaction order, top-K ranking, and sharding on
// every order and approach (V1/V2 and orders 2/k slice the
// combination-rank space; V3/V4 slice the block-triple space).
func CPU() Backend { return cpuBackend{} }

// Name implements Backend.
func (cpuBackend) Name() string { return "cpu" }

func (cpuBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	obj, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	eopts := engine.Options{
		Workers:   cfg.workers,
		Objective: obj,
		TopK:      cfg.topK,
		Context:   ctx,
		Progress:  cfg.progress,
		Grain:     cfg.planGrain,
		Metrics:   cfg.metrics,
	}
	if cfg.shard != nil {
		eopts.Shard = &sched.Shard{Index: cfg.shard.index, Count: cfg.shard.count}
	}
	rep := &Report{
		Backend:   "cpu",
		Objective: objName,
		Order:     cfg.order,
		obj:       obj,
		topK:      cfg.topK,
	}

	switch cfg.order {
	case 2:
		if cfg.approachSet {
			return nil, fmt.Errorf("trigene: order-%d searches use the fixed split kernel; WithApproach applies to order 3 only", cfg.order)
		}
		res, err := s.searcher.RunPairs(eopts)
		if err != nil {
			return nil, err
		}
		rep.Approach = "V2"
		for _, c := range res.TopK {
			rep.TopK = append(rep.TopK, SearchCandidate{SNPs: []int{c.Pair.I, c.Pair.J}, Score: c.Score})
		}
		rep.Shard = shardInfo(cfg.shard, res.Space, ShardSpaceRanks)
		fillStats(rep, res.Stats)

	case 3:
		ap := cfg.approach
		if ap == 0 {
			switch {
			case cfg.plannedApproach != 0:
				// An autotuned run defaults to the model's pick for the
				// device.
				ap = cfg.plannedApproach
			case cfg.shard != nil:
				// Unless the caller pinned an approach, a sharded search
				// uses V2, whose shards are exact near-equal rank slices;
				// the blocked approaches shard the coarser block-triple
				// space.
				ap = V2Split
			default:
				ap = V4Fused
			}
		}
		eopts.Approach = ap
		res, err := s.searcher.Run(eopts)
		if err != nil {
			return nil, err
		}
		rep.Approach = ap.String()
		for _, c := range res.TopK {
			rep.TopK = append(rep.TopK, SearchCandidate{SNPs: []int{c.Triple.I, c.Triple.J, c.Triple.K}, Score: c.Score})
		}
		space := ShardSpaceRanks
		if res.BlockSpace {
			space = ShardSpaceBlocks
		}
		rep.Shard = shardInfo(cfg.shard, res.Space, space)
		fillStats(rep, res.Stats)

	default:
		if cfg.approachSet {
			return nil, fmt.Errorf("trigene: order-%d searches use the fixed split kernel; WithApproach applies to order 3 only", cfg.order)
		}
		res, err := s.searcher.RunK(cfg.order, eopts)
		if err != nil {
			return nil, err
		}
		rep.Approach = "V2"
		for _, c := range res.TopK {
			rep.TopK = append(rep.TopK, SearchCandidate{SNPs: c.SNPs, Score: c.Score})
		}
		rep.Shard = shardInfo(cfg.shard, res.Space, ShardSpaceRanks)
		fillStats(rep, res.Stats)
	}
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	}
	return rep, nil
}

// fillStats copies the engine's throughput accounting into a Report.
func fillStats(rep *Report, st engine.Stats) {
	rep.Combinations = st.Combinations
	rep.Elements = st.Elements
	rep.Duration = st.Duration
	rep.ElementsPerSec = st.ElementsPerSec
}

// ---------------------------------------------------------------------
// Simulated-GPU backend

type gpuBackend struct {
	dev GPUDevice
}

// GPUSim returns a backend that executes searches bit-exactly on a
// simulated Table II device with the paper's four GPU kernels and a
// coalescing-aware memory model. It supports order 3 only, with
// top-K ranking and sharding via scheduler rank tiles.
func GPUSim(dev GPUDevice) Backend { return gpuBackend{dev: dev} }

// Name implements Backend.
func (b gpuBackend) Name() string { return "gpusim:" + b.dev.ID }

func (b gpuBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	if cfg.order != 3 {
		return nil, fmt.Errorf("trigene: %s backend supports order 3 only (order %d requested)", b.Name(), cfg.order)
	}
	obj, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	kernel := gpusim.K4Tiled
	if cfg.approachSet {
		if cfg.approach == V4Fused {
			// The CPU numbering has two fused variants; the GPU has one
			// fused kernel, so both map onto it.
			kernel = gpusim.K5Fused
		} else {
			kernel = gpusim.Kernel(cfg.approach)
		}
	}
	gopts := gpusim.Options{
		Kernel:    kernel,
		Objective: obj,
		TopK:      cfg.topK,
		Context:   ctx,
	}
	rep := &Report{
		Backend:   b.Name(),
		Approach:  kernel.String(),
		Objective: objName,
		Order:     3,
		obj:       obj,
		topK:      cfg.topK,
	}
	if cfg.shard != nil {
		rg := shardRange(combin.Triples(s.SNPs()), cfg.shard)
		rep.Shard = shardInfo(cfg.shard, &rg, ShardSpaceRanks)
		if rg.Len() == 0 {
			// An empty shard has no candidates. Returning early also
			// avoids RankLo == RankHi == 0, which the simulator reads
			// as "full space".
			return rep, nil
		}
		gopts.RankLo, gopts.RankHi = rg.Lo, rg.Hi
	}
	start := time.Now()
	res, err := gpusim.New(b.dev).Search(s.store, gopts)
	if err != nil {
		return nil, err
	}
	for _, c := range res.TopK {
		rep.TopK = append(rep.TopK, SearchCandidate{SNPs: []int{c.I, c.J, c.K}, Score: c.Score})
	}
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	}
	rep.Combinations = res.Stats.Combinations
	rep.Elements = res.Stats.Elements
	rep.Duration = time.Since(start)
	rep.ElementsPerSec = res.Stats.ElementsPerSec // modeled device throughput
	stats := res.Stats
	rep.GPU = &stats
	return rep, nil
}

// ---------------------------------------------------------------------
// Baseline backend

type baselineBackend struct{}

// Baseline returns the MPI3SNP-style reference backend (three stored
// planes, no tiling, static scheduling, mutual information) — the
// Table III comparator. It supports order 3, top-K ranking and
// sharding (the static distribution then covers the shard's rank
// slice); it ranks by mutual information only.
func Baseline() Backend { return baselineBackend{} }

// Name implements Backend.
func (baselineBackend) Name() string { return "baseline" }

func (baselineBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	if cfg.order != 3 {
		return nil, fmt.Errorf("trigene: baseline backend supports order 3 only (order %d requested)", cfg.order)
	}
	if cfg.approachSet {
		return nil, fmt.Errorf("trigene: baseline backend has a fixed pipeline; WithApproach does not apply")
	}
	if cfg.objName != "" && cfg.objName != "mi" {
		return nil, fmt.Errorf("trigene: baseline backend ranks by mutual information only (objective %q requested)", cfg.objName)
	}
	obj, _, err := (&searchConfig{objName: "mi"}).objective(s.Samples())
	if err != nil {
		return nil, err
	}
	bopts := mpi3snp.Options{
		Ranks:   cfg.workers,
		TopK:    cfg.topK,
		Context: ctx,
	}
	rep := &Report{
		Backend:   "baseline",
		Approach:  "mpi3snp",
		Objective: "mi",
		Order:     3,
		obj:       obj,
		topK:      cfg.topK,
	}
	if cfg.shard != nil {
		rg := shardRange(combin.Triples(s.SNPs()), cfg.shard)
		bopts.Range = &rg
		rep.Shard = shardInfo(cfg.shard, &rg, ShardSpaceRanks)
	}
	res, err := mpi3snp.Search(s.store, bopts)
	if err != nil {
		return nil, err
	}
	for _, c := range res.TopK {
		rep.TopK = append(rep.TopK, SearchCandidate{SNPs: []int{c.I, c.J, c.K}, Score: c.MI})
	}
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	}
	rep.Combinations = res.Stats.Combinations
	rep.Elements = res.Stats.Elements
	rep.Duration = res.Stats.Duration
	rep.ElementsPerSec = res.Stats.ElementsPerSec
	return rep, nil
}

// ---------------------------------------------------------------------
// Heterogeneous backend

type heteroBackend struct {
	opts hetero.Options
}

// Hetero returns the collaborative CPU+GPU backend of the paper's
// Section V-D with the default device pairing (CI3 + GN1): the CPU
// engine's workers and the simulated GPU steal tiles from one shared
// scheduler cursor, so a mis-modeled device ratio degrades into a
// different realized split instead of idling one side. It supports
// order 3, top-K ranking and sharding (each shard is itself
// work-stolen across both halves).
func Hetero() Backend { return heteroBackend{} }

// HeteroOn is Hetero with an explicit device pair and CPU fraction.
// cpuFraction 0 selects work-stealing from the shared cursor; a value
// in (0, 1] forces a static split at that fraction (1 = all-CPU). A
// negative value is kept as a compatibility spelling of an all-GPU
// run and maps to the heterogeneous engine's explicit all-GPU mode.
func HeteroOn(cpu CPUDevice, gpu GPUDevice, cpuFraction float64) Backend {
	opts := hetero.Options{CPUDevice: cpu, GPUDevice: gpu}
	if cpuFraction < 0 {
		opts.Mode = hetero.ModeAllGPU
	} else {
		opts.CPUFraction = cpuFraction
	}
	return heteroBackend{opts: opts}
}

// Name implements Backend.
func (heteroBackend) Name() string { return "hetero" }

func (b heteroBackend) search(ctx context.Context, s *Session, cfg *searchConfig) (*Report, error) {
	if cfg.order != 3 {
		return nil, fmt.Errorf("trigene: hetero backend supports order 3 only (order %d requested)", cfg.order)
	}
	if cfg.approachSet {
		return nil, fmt.Errorf("trigene: hetero backend runs V2 (CPU half) + V4 (GPU half); WithApproach does not apply")
	}
	obj, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	hopts := b.opts
	hopts.Searcher = s.searcher
	hopts.Workers = cfg.workers
	hopts.TopK = cfg.topK
	hopts.Objective = obj
	hopts.Context = ctx
	// Plan seeds (autotuned runs): cursor grain and the device's claim
	// multiplier; the run's throughput meter refines the latter.
	hopts.Grain = cfg.planGrain
	hopts.GPUGrains = cfg.planGPUGrains
	hopts.Metrics = cfg.metrics
	rep := &Report{
		Backend:   "hetero",
		Approach:  "V2+V4",
		Objective: objName,
		Order:     3,
		obj:       obj,
		topK:      cfg.topK,
	}
	if cfg.shard != nil {
		rg := shardRange(combin.Triples(s.SNPs()), cfg.shard)
		hopts.Range = &rg
		rep.Shard = shardInfo(cfg.shard, &rg, ShardSpaceRanks)
		if rg.Len() == 0 {
			return rep, nil
		}
	}
	res, err := hetero.Search(s.store, hopts)
	if err != nil {
		return nil, err
	}
	for _, c := range res.TopK {
		rep.TopK = append(rep.TopK, SearchCandidate{
			SNPs:  []int{c.Triple.I, c.Triple.J, c.Triple.K},
			Score: c.Score,
		})
	}
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	}
	rep.Combinations = res.CPUStats.Combinations + res.GPUStats.Combinations
	rep.Elements = float64(rep.Combinations) * float64(s.Samples())
	rep.Duration = res.Duration
	if secs := res.Duration.Seconds(); secs > 0 {
		rep.ElementsPerSec = rep.Elements / secs
	}
	gpuStats := res.GPUStats
	rep.GPU = &gpuStats
	rep.Hetero = &HeteroInfo{
		CPUFraction:           res.CPUFraction,
		ModeledCombinedGElems: res.ModeledCombinedGElems,
	}
	return rep, nil
}
