package trigene_test

import (
	"context"
	"fmt"
	"log"

	"trigene"
)

// ExampleSession_Search is the quickstart: plant a third-order signal,
// open a session, and recover the interaction with the default CPU
// search (approach V4, all cores, Bayesian K2).
func ExampleSession_Search() {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 32, Samples: 1200, Seed: 42, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{7, 19, 28},
			Penetrance: trigene.ThresholdPenetrance(3, 0.1, 0.9),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sess.Search(context.Background(), trigene.WithTopK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("backend:", rep.Backend, rep.Approach)
	fmt.Println("best:", rep.Best.SNPs)
	fmt.Println("candidates:", len(rep.TopK))
	// Output:
	// backend: cpu V4F
	// best: [7 19 28]
	// candidates: 3
}

// ExampleSession_Search_gpuSimulation runs the same search bit-exactly
// on a simulated Table II device by swapping the backend component.
func ExampleSession_Search_gpuSimulation() {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 32, Samples: 1200, Seed: 42, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{7, 19, 28},
			Penetrance: trigene.ThresholdPenetrance(3, 0.1, 0.9),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	cpu, err := sess.Search(ctx)
	if err != nil {
		log.Fatal(err)
	}
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		log.Fatal(err)
	}
	gpu, err := sess.Search(ctx, trigene.WithBackend(trigene.GPUSim(gn1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("backend:", gpu.Backend, gpu.Approach)
	fmt.Println("best:", gpu.Best.SNPs)
	fmt.Println("bit-exact vs CPU:", gpu.Best.Score == cpu.Best.Score)
	// Output:
	// backend: gpusim:GN1 V4
	// best: [7 19 28]
	// bit-exact vs CPU: true
}

// ExampleSession_PermutationTest estimates the significance of a
// scan's winning candidate by phenotype permutation.
func ExampleSession_PermutationTest() {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 24, Samples: 900, Seed: 11, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{3, 9, 15},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	rep, err := sess.Search(ctx)
	if err != nil {
		log.Fatal(err)
	}
	sig, err := sess.PermutationTest(ctx, rep.Best.SNPs,
		trigene.WithPermutations(199), trigene.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best:", rep.Best.SNPs)
	fmt.Printf("p-value: %.3f (%d/%d permutations as good)\n",
		sig.PValue, sig.AsGoodOrBetter, sig.Permutations)
	// Output:
	// best: [3 9 15]
	// p-value: 0.005 (0/199 permutations as good)
}

// ExampleMergeReports partitions a search across shards — the
// primitive distributed deployments use — and merges the per-shard
// Reports into the bit-exact full-space result.
func ExampleMergeReports() {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 32, Samples: 1200, Seed: 42, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{7, 19, 28},
			Penetrance: trigene.ThresholdPenetrance(3, 0.1, 0.9),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Each shard could run on a different machine; here they run in
	// sequence over one session.
	const shards = 4
	var parts []*trigene.Report
	for i := 0; i < shards; i++ {
		rep, err := sess.Search(ctx, trigene.WithTopK(5), trigene.WithShard(i, shards))
		if err != nil {
			log.Fatal(err)
		}
		parts = append(parts, rep)
	}
	merged, err := trigene.MergeReports(parts...)
	if err != nil {
		log.Fatal(err)
	}
	full, err := sess.Search(ctx, trigene.WithTopK(5))
	if err != nil {
		log.Fatal(err)
	}
	match := len(merged.TopK) == len(full.TopK)
	for i := range full.TopK {
		if merged.TopK[i].Score != full.TopK[i].Score {
			match = false
		}
	}
	fmt.Println("shards:", shards)
	fmt.Println("best:", merged.Best.SNPs)
	fmt.Println("matches unsharded top-K:", match)
	// Output:
	// shards: 4
	// best: [7 19 28]
	// matches unsharded top-K: true
}
