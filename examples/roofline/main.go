// roofline: the paper's Figure 2 — Cache-Aware Roofline Model
// characterization of the four approaches on the flagship devices
// (Ice Lake SP CPU, Iris Xe MAX GPU). CPU points come from the
// analytical approach models; GPU points from actually executing the
// kernels through the Session API's simulated-GPU backend on a
// scaled-down dataset.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"trigene"
	"trigene/internal/carm"
	"trigene/internal/device"
	"trigene/internal/report"
)

func main() {
	cpuSide()
	gpuSide()
}

func cpuSide() {
	ci3, err := device.CPUByID("CI3")
	if err != nil {
		log.Fatal(err)
	}
	model := carm.CPUModel(ci3, true)
	fmt.Printf("=== Figure 2a: CARM of %s (AVX-512 build) ===\n", model.Device)
	rt := report.NewTable("roofs", "name", "kind", "value")
	for _, r := range model.Roofs {
		kind := "GINTOPS"
		if r.Kind == carm.Memory {
			kind = "GB/s"
		}
		rt.AddRowf(r.Name, kind, r.Value)
	}
	render(rt)

	points, err := carm.CPUPoints(ci3, true, 2048, 16384)
	if err != nil {
		log.Fatal(err)
	}
	pt := report.NewTable("approaches (2048 SNPs x 16384 samples)", "point", "AI intop/B", "GINTOPS", "ceiling", "bound")
	for _, p := range points {
		ceiling := model.Attainable(p.AI)
		bound := "memory"
		if ceiling >= model.Roofs[0].Value || p.GIntops > 0.5*ceiling {
			bound = "compute"
		}
		pt.AddRowf(p.Name, p.AI, p.GIntops, ceiling, bound)
	}
	render(pt)
}

func gpuSide() {
	gi2, err := trigene.GPUByID("GI2")
	if err != nil {
		log.Fatal(err)
	}
	model := carm.GPUModel(gi2)
	fmt.Printf("=== Figure 2b: CARM of %s ===\n", model.Device)
	rt := report.NewTable("roofs", "name", "kind", "value")
	for _, r := range model.Roofs {
		kind := "GINTOPS"
		if r.Kind == carm.Memory {
			kind = "GB/s"
		}
		rt.AddRowf(r.Name, kind, r.Value)
	}
	render(rt)

	// Execute the four kernels through the simulated-GPU backend on a
	// scaled-down dataset (the characterization is size-independent in
	// AI and near-independent in per-element rate).
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 64, Samples: 2048, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	backend := trigene.GPUSim(gi2)
	pt := report.NewTable("kernels (simulated, 64 SNPs x 2048 samples)", "point", "AI intop/B", "GINTOPS", "G elem/s", "coalesced txn")
	for v := trigene.V1Naive; v <= trigene.V4Vector; v++ {
		rep, err := sess.Search(ctx, trigene.WithBackend(backend), trigene.WithApproach(v))
		if err != nil {
			log.Fatal(err)
		}
		p := carm.PointFromGPUStats(rep.Approach, *rep.GPU)
		pt.AddRowf(p.Name, p.AI, p.GIntops, rep.ElementsPerSec/1e9, rep.GPU.Transactions)
	}
	render(pt)
}

func render(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
}
