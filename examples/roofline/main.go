// roofline: the paper's Figure 2 — Cache-Aware Roofline Model
// characterization of the four approaches on the flagship devices
// (Ice Lake SP CPU, Iris Xe MAX GPU). CPU points come from the
// analytical approach models; GPU points from actually executing the
// kernels in the GPU simulator on a scaled-down dataset.
package main

import (
	"fmt"
	"log"
	"os"

	"trigene"
	"trigene/internal/carm"
	"trigene/internal/device"
	"trigene/internal/gpusim"
	"trigene/internal/report"
)

func main() {
	cpuSide()
	gpuSide()
}

func cpuSide() {
	ci3, err := device.CPUByID("CI3")
	if err != nil {
		log.Fatal(err)
	}
	model := carm.CPUModel(ci3, true)
	fmt.Printf("=== Figure 2a: CARM of %s (AVX-512 build) ===\n", model.Device)
	rt := report.NewTable("roofs", "name", "kind", "value")
	for _, r := range model.Roofs {
		kind := "GINTOPS"
		if r.Kind == carm.Memory {
			kind = "GB/s"
		}
		rt.AddRowf(r.Name, kind, r.Value)
	}
	render(rt)

	points, err := carm.CPUPoints(ci3, true, 2048, 16384)
	if err != nil {
		log.Fatal(err)
	}
	pt := report.NewTable("approaches (2048 SNPs x 16384 samples)", "point", "AI intop/B", "GINTOPS", "ceiling", "bound")
	for _, p := range points {
		ceiling := model.Attainable(p.AI)
		bound := "memory"
		if ceiling >= model.Roofs[0].Value || p.GIntops > 0.5*ceiling {
			bound = "compute"
		}
		pt.AddRowf(p.Name, p.AI, p.GIntops, ceiling, bound)
	}
	render(pt)
}

func gpuSide() {
	gi2, err := device.GPUByID("GI2")
	if err != nil {
		log.Fatal(err)
	}
	model := carm.GPUModel(gi2)
	fmt.Printf("=== Figure 2b: CARM of %s ===\n", model.Device)
	rt := report.NewTable("roofs", "name", "kind", "value")
	for _, r := range model.Roofs {
		kind := "GINTOPS"
		if r.Kind == carm.Memory {
			kind = "GB/s"
		}
		rt.AddRowf(r.Name, kind, r.Value)
	}
	render(rt)

	// Execute the four kernels in the simulator on a scaled-down
	// dataset (the characterization is size-independent in AI and
	// near-independent in per-element rate).
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 64, Samples: 2048, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	runner := gpusim.New(gi2)
	pt := report.NewTable("kernels (simulated, 64 SNPs x 2048 samples)", "point", "AI intop/B", "GINTOPS", "G elem/s", "coalesced txn")
	for k := gpusim.K1Naive; k <= gpusim.K4Tiled; k++ {
		res, err := runner.Search(mx, gpusim.Options{Kernel: k})
		if err != nil {
			log.Fatal(err)
		}
		p := carm.PointFromGPUStats(k.String(), res.Stats)
		pt.AddRowf(p.Name, p.AI, p.GIntops, res.Stats.ElementsPerSec/1e9, res.Stats.Transactions)
	}
	render(pt)
}

func render(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
}
