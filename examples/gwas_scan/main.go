// gwas_scan: a realistic exploratory scan. Generates a GWAS-scale
// synthetic dataset with a marginal-effect-free parity interaction (the
// workload that motivates exhaustive search: no single SNP shows a
// signal), scans it with every approach, and reports per-approach
// throughput alongside the recovered interaction.
//
// Flags allow scaling the workload up or down:
//
//	go run ./examples/gwas_scan -snps 256 -samples 4096
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"trigene"
)

func main() {
	snps := flag.Int("snps", 192, "number of SNPs")
	samples := flag.Int("samples", 4096, "number of samples")
	seed := flag.Int64("seed", 7, "generator seed")
	topK := flag.Int("topk", 5, "candidates to report")
	flag.Parse()

	target := [3]int{*snps / 5, *snps / 2, *snps - 3}
	interaction := &trigene.Interaction{
		SNPs:       target,
		Penetrance: trigene.XorPenetrance(0.15, 0.85),
	}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: *snps, Samples: *samples, Seed: *seed,
		MAFMin: 0.3, MAFMax: 0.5, Interaction: interaction,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	controls, cases := mx.ClassCounts()
	fmt.Printf("scan: %d SNPs x %d samples (%d/%d), %d workers\n",
		*snps, *samples, controls, cases, runtime.GOMAXPROCS(0))
	fmt.Printf("planted parity interaction at (%d,%d,%d) - no marginal effects\n\n",
		target[0], target[1], target[2])

	searcher, err := trigene.NewSearcher(mx)
	if err != nil {
		log.Fatalf("searcher: %v", err)
	}

	approaches := []trigene.Approach{trigene.V1Naive, trigene.V2Split, trigene.V3Blocked, trigene.V4Vector}
	var baseline float64
	for _, a := range approaches {
		res, err := searcher.Run(trigene.Options{Approach: a, TopK: *topK})
		if err != nil {
			log.Fatalf("%v: %v", a, err)
		}
		speedup := 1.0
		if baseline == 0 {
			baseline = res.Stats.Duration.Seconds()
		} else {
			speedup = baseline / res.Stats.Duration.Seconds()
		}
		fmt.Printf("%v: %8v  %6.2f G elements/s  (%.2fx vs V1)  best %v K2=%.2f\n",
			a, res.Stats.Duration.Round(1000000), res.Stats.ElementsPerSec/1e9,
			speedup, res.Best.Triple, res.Best.Score)
		if a == trigene.V4Vector {
			fmt.Println("\ntop candidates (V4):")
			for i, c := range res.TopK {
				marker := ""
				if c.Triple == (trigene.Triple{I: target[0], J: target[1], K: target[2]}) {
					marker = "  <- planted"
				}
				fmt.Printf("  %d. %v  K2 = %.3f%s\n", i+1, c.Triple, c.Score, marker)
			}
			if res.Best.Triple == (trigene.Triple{I: target[0], J: target[1], K: target[2]}) {
				fmt.Println("\nplanted interaction recovered by exhaustive search")
			}
		}
	}
}
