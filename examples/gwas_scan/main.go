// gwas_scan: a realistic exploratory scan. Generates a GWAS-scale
// synthetic dataset with a marginal-effect-free parity interaction (the
// workload that motivates exhaustive search: no single SNP shows a
// signal), scans it with every approach through one Session, and
// reports per-approach throughput alongside the recovered interaction.
//
// Flags allow scaling the workload up or down:
//
//	go run ./examples/gwas_scan -snps 256 -samples 4096
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"slices"

	"trigene"
)

func main() {
	snps := flag.Int("snps", 192, "number of SNPs")
	samples := flag.Int("samples", 4096, "number of samples")
	seed := flag.Int64("seed", 7, "generator seed")
	topK := flag.Int("topk", 5, "candidates to report")
	flag.Parse()

	target := []int{*snps / 5, *snps / 2, *snps - 3}
	interaction := &trigene.Interaction{
		SNPs:       [3]int{target[0], target[1], target[2]},
		Penetrance: trigene.XorPenetrance(0.15, 0.85),
	}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: *snps, Samples: *samples, Seed: *seed,
		MAFMin: 0.3, MAFMax: 0.5, Interaction: interaction,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	controls, cases := mx.ClassCounts()
	fmt.Printf("scan: %d SNPs x %d samples (%d/%d), %d workers\n",
		*snps, *samples, controls, cases, runtime.GOMAXPROCS(0))
	fmt.Printf("planted parity interaction at (%d,%d,%d) - no marginal effects\n\n",
		target[0], target[1], target[2])

	// One Session serves all four approach runs: the dataset is
	// validated and binarized exactly once.
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	ctx := context.Background()

	var baseline float64
	for a := trigene.V1Naive; a <= trigene.V4Vector; a++ {
		rep, err := sess.Search(ctx, trigene.WithApproach(a), trigene.WithTopK(*topK))
		if err != nil {
			log.Fatalf("%v: %v", a, err)
		}
		speedup := 1.0
		if baseline == 0 {
			baseline = rep.Duration.Seconds()
		} else {
			speedup = baseline / rep.Duration.Seconds()
		}
		fmt.Printf("%s: %8v  %6.2f G elements/s  (%.2fx vs V1)  best %v K2=%.2f\n",
			rep.Approach, rep.Duration.Round(1000000), rep.ElementsPerSec/1e9,
			speedup, rep.Best.SNPs, rep.Best.Score)
		if a == trigene.V4Vector {
			fmt.Println("\ntop candidates (V4):")
			for i, c := range rep.TopK {
				marker := ""
				if slices.Equal(c.SNPs, target) {
					marker = "  <- planted"
				}
				fmt.Printf("  %d. %v  K2 = %.3f%s\n", i+1, c.SNPs, c.Score, marker)
			}
			if slices.Equal(rep.Best.SNPs, target) {
				fmt.Println("\nplanted interaction recovered by exhaustive search")
			}
		}
	}
}
