// Cluster demo: a complete in-process tile-leasing cluster on the
// loopback interface — one coordinator, two workers — executing two
// named search jobs concurrently and proving the merged Reports
// bit-exact against local runs.
//
// Everything here maps one-to-one onto the multi-machine deployment:
// the coordinator is what `trigened serve` runs, each worker goroutine
// is a `trigened worker` process, and the submits are `trigened
// submit`. Only the transport (an httptest loopback server) is
// demo-specific.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"trigene"
	"trigene/internal/cluster"
)

func main() {
	// A dataset with a planted three-way signal at (7, 19, 31).
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 64, Samples: 2000, Seed: 42, MAFMin: 0.25, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{7, 19, 31},
			Penetrance: trigene.ThresholdPenetrance(3, 0.1, 0.9),
		},
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	// The coordinator: job queue + lease book behind the /v1 wire
	// contract (`trigened serve`). Leases live 5 seconds unless the
	// holder heartbeats; a worker that dies mid-tile has its tile
	// re-issued and the final Report is unaffected.
	coordinator := cluster.NewCoordinator(cluster.Config{LeaseTTL: 5 * time.Second})
	srv := httptest.NewServer(coordinator)
	defer srv.Close()
	fmt.Printf("coordinator on %s\n", srv.URL)

	// Two workers (`trigened worker`): each leases tiles, executes them
	// as ordinary sharded Session.Search calls, and posts tile Reports.
	ctx, stopWorkers := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &cluster.Worker{
			Client: cluster.NewClient(srv.URL),
			ID:     fmt.Sprintf("demo-worker-%d", i),
			Poll:   10 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	defer wg.Wait()
	defer stopWorkers()

	// Submit two named jobs (`trigened submit`): the job queue runs
	// them concurrently, each with its own spec and progress.
	client := cluster.NewClient(srv.URL)
	client.Poll = 20 * time.Millisecond
	specs := map[string]trigene.SearchSpec{
		"triples-k2": {TopK: 3, Workers: 1},
		"pairs-mi":   {Order: 2, TopK: 3, Objective: "mi", Workers: 1},
	}
	bg := context.Background()
	ids := make(map[string]string)
	for name, spec := range specs {
		id, err := client.Submit(bg, mx, spec, 8, name)
		if err != nil {
			log.Fatalf("submit %s: %v", name, err)
		}
		ids[name] = id
		fmt.Printf("submitted %-10s as %s (8 tiles)\n", name, id)
	}

	// Wait for both (`trigened result -wait`) and verify each merged
	// Report is bit-exact with a local single-node run — the cluster's
	// core guarantee, built on the scheduler's shard/merge parity.
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	for name, spec := range specs {
		remote, err := client.Wait(bg, ids[name])
		if err != nil {
			log.Fatalf("wait %s: %v", name, err)
		}
		opts, err := spec.Options()
		if err != nil {
			log.Fatalf("options %s: %v", name, err)
		}
		local, err := sess.Search(bg, opts...)
		if err != nil {
			log.Fatalf("local %s: %v", name, err)
		}
		exact := remote.Best.Score == local.Best.Score &&
			remote.Combinations == local.Combinations
		fmt.Printf("%-10s best %v  %s = %.4f  (%d combinations; bit-exact with local: %v)\n",
			name, remote.Best.SNPs, remote.Objective, remote.Best.Score, remote.Combinations, exact)
		if !exact {
			log.Fatalf("%s: cluster run diverged from local run", name)
		}
	}

	// The same cluster through the public API: WithCluster makes any
	// Session.Search a remote execution without changing its shape.
	rep, err := sess.Search(bg, trigene.WithCluster(client), trigene.WithTopK(3))
	if err != nil {
		log.Fatalf("WithCluster search: %v", err)
	}
	fmt.Printf("WithCluster best %v  k2 = %.4f\n", rep.Best.SNPs, rep.Best.Score)
}
