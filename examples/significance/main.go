// significance: the full analysis workflow a study would run — a 2-way
// scan, a 3-way scan, and phenotype-permutation significance testing of
// the winners, including a heterogeneous CPU+GPU execution of the 3-way
// scan.
package main

import (
	"fmt"
	"log"

	"trigene"
)

func main() {
	// Plant a 3-way parity interaction. Its pairwise shadows are weak
	// (subsets of the triple), so only the exhaustive triple scan
	// pinpoints the full interaction.
	target := trigene.Triple{I: 11, J: 29, K: 47}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 56, Samples: 1600, Seed: 77, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{target.I, target.J, target.K},
			Penetrance: trigene.XorPenetrance(0.2, 0.8),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	controls, cases := mx.ClassCounts()
	fmt.Printf("dataset: %d SNPs x %d samples (%d/%d)\n\n", mx.SNPs(), mx.Samples(), controls, cases)

	// Stage 1: pairwise scan. At best it finds a two-SNP shadow of the
	// planted triple, never the full interaction.
	pairs, err := trigene.SearchPairs(mx, trigene.Options{TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-way scan: best pair %+v  K2 = %.2f\n", pairs.Best.Pair, pairs.Best.Score)
	pp, err := trigene.PermutationTestPair(mx, pairs.Best.Pair, trigene.PermConfig{Permutations: 200, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  permutation test: p = %.4f (%d/%d permutations as good)\n\n",
		pp.PValue, pp.AsGoodOrBetter, pp.Permutations)

	// Stage 2: exhaustive 3-way scan, split between the CPU engine and
	// a simulated GPU as in the paper's Section V-D.
	het, err := trigene.SearchHeterogeneous(mx, trigene.HeteroOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-way heterogeneous scan (CPU fraction %.2f): best %v  K2 = %.2f\n",
		het.CPUFraction, het.Best.Triple, het.Best.Score)
	fmt.Printf("  CPU half: %d combos  GPU half: %d combos (modeled pair throughput %.0f G elem/s)\n",
		het.CPUStats.Combinations, het.GPUStats.Combinations, het.ModeledCombinedGElems)

	// Stage 3: significance of the 3-way winner.
	pt, err := trigene.PermutationTest(mx, het.Best.Triple, trigene.PermConfig{Permutations: 500, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  permutation test: p = %.4f (%d/%d permutations as good)\n\n",
		pt.PValue, pt.AsGoodOrBetter, pt.Permutations)

	switch {
	case het.Best.Triple == target && pt.PValue <= 0.01:
		fmt.Println("verdict: planted 3-way interaction recovered and significant")
	case het.Best.Triple == target:
		fmt.Println("verdict: planted triple recovered but not significant at 0.01")
	default:
		fmt.Printf("verdict: best triple %v differs from planted %v\n", het.Best.Triple, target)
	}
}
