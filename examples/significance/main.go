// significance: the full analysis workflow a study would run — a 2-way
// scan, a 3-way scan on the heterogeneous CPU+GPU backend, and
// phenotype-permutation significance testing of all the winners in one
// batched bit-plane pass — all through one Session and its unified
// Search/PermutationTestAll surface.
package main

import (
	"context"
	"fmt"
	"log"
	"slices"

	"trigene"
)

func main() {
	// Plant a 3-way parity interaction. Its pairwise shadows are weak
	// (subsets of the triple), so only the exhaustive triple scan
	// pinpoints the full interaction.
	target := []int{11, 29, 47}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 56, Samples: 1600, Seed: 77, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{target[0], target[1], target[2]},
			Penetrance: trigene.XorPenetrance(0.2, 0.8),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	controls, cases := mx.ClassCounts()
	fmt.Printf("dataset: %d SNPs x %d samples (%d/%d)\n\n", mx.SNPs(), mx.Samples(), controls, cases)

	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Stage 1: pairwise scan. At best it finds a two-SNP shadow of the
	// planted triple, never the full interaction.
	pairs, err := sess.Search(ctx, trigene.WithOrder(2), trigene.WithTopK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-way scan: best pair %v  K2 = %.2f\n\n", pairs.Best.SNPs, pairs.Best.Score)

	// Stage 2: exhaustive 3-way scan, split between the CPU engine and
	// a simulated GPU as in the paper's Section V-D — just a backend
	// swap on the same Session.
	het, err := sess.Search(ctx, trigene.WithBackend(trigene.Hetero()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-way heterogeneous scan (CPU fraction %.2f): best %v  K2 = %.2f\n",
		het.Hetero.CPUFraction, het.Best.SNPs, het.Best.Score)
	fmt.Printf("  %d combinations; GPU half modeled stats available; modeled pair throughput %.0f G elem/s\n",
		het.Combinations, het.Hetero.ModeledCombinedGElems)

	// Stage 3: significance of every winner at once. The pairwise top-3
	// and the 3-way winner go through one PermutationTestAll call, so
	// each permuted phenotype (the dominant per-permutation cost) is
	// shuffled once and shared across all four candidates.
	candidates := make([][]int, 0, len(pairs.TopK)+1)
	for _, c := range pairs.TopK {
		candidates = append(candidates, c.SNPs)
	}
	candidates = append(candidates, het.Best.SNPs)
	sig, err := sess.PermutationTestAll(ctx, candidates,
		trigene.WithPermutations(500), trigene.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batched permutation test (500 relabelings shared across all candidates):")
	for i, r := range sig {
		fmt.Printf("  %v: p = %.4f (%d/%d permutations as good)\n",
			candidates[i], r.PValue, r.AsGoodOrBetter, r.Permutations)
	}
	fmt.Println()
	pt := sig[len(sig)-1]

	recovered := slices.Equal(het.Best.SNPs, target)
	switch {
	case recovered && pt.PValue <= 0.01:
		fmt.Println("verdict: planted 3-way interaction recovered and significant")
	case recovered:
		fmt.Println("verdict: planted triple recovered but not significant at 0.01")
	default:
		fmt.Printf("verdict: best triple %v differs from planted %v\n", het.Best.SNPs, target)
	}
}
