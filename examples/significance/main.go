// significance: the full analysis workflow a study would run — a 2-way
// scan, a 3-way scan on the heterogeneous CPU+GPU backend, and
// phenotype-permutation significance testing of the winners — all
// through one Session and its unified Search/PermutationTest surface.
package main

import (
	"context"
	"fmt"
	"log"
	"slices"

	"trigene"
)

func main() {
	// Plant a 3-way parity interaction. Its pairwise shadows are weak
	// (subsets of the triple), so only the exhaustive triple scan
	// pinpoints the full interaction.
	target := []int{11, 29, 47}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 56, Samples: 1600, Seed: 77, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{target[0], target[1], target[2]},
			Penetrance: trigene.XorPenetrance(0.2, 0.8),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	controls, cases := mx.ClassCounts()
	fmt.Printf("dataset: %d SNPs x %d samples (%d/%d)\n\n", mx.SNPs(), mx.Samples(), controls, cases)

	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Stage 1: pairwise scan. At best it finds a two-SNP shadow of the
	// planted triple, never the full interaction.
	pairs, err := sess.Search(ctx, trigene.WithOrder(2), trigene.WithTopK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-way scan: best pair %v  K2 = %.2f\n", pairs.Best.SNPs, pairs.Best.Score)
	pp, err := sess.PermutationTest(ctx, pairs.Best.SNPs,
		trigene.WithPermutations(200), trigene.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  permutation test: p = %.4f (%d/%d permutations as good)\n\n",
		pp.PValue, pp.AsGoodOrBetter, pp.Permutations)

	// Stage 2: exhaustive 3-way scan, split between the CPU engine and
	// a simulated GPU as in the paper's Section V-D — just a backend
	// swap on the same Session.
	het, err := sess.Search(ctx, trigene.WithBackend(trigene.Hetero()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-way heterogeneous scan (CPU fraction %.2f): best %v  K2 = %.2f\n",
		het.Hetero.CPUFraction, het.Best.SNPs, het.Best.Score)
	fmt.Printf("  %d combinations; GPU half modeled stats available; modeled pair throughput %.0f G elem/s\n",
		het.Combinations, het.Hetero.ModeledCombinedGElems)

	// Stage 3: significance of the 3-way winner.
	pt, err := sess.PermutationTest(ctx, het.Best.SNPs,
		trigene.WithPermutations(500), trigene.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  permutation test: p = %.4f (%d/%d permutations as good)\n\n",
		pt.PValue, pt.AsGoodOrBetter, pt.Permutations)

	recovered := slices.Equal(het.Best.SNPs, target)
	switch {
	case recovered && pt.PValue <= 0.01:
		fmt.Println("verdict: planted 3-way interaction recovered and significant")
	case recovered:
		fmt.Println("verdict: planted triple recovered but not significant at 0.01")
	default:
		fmt.Printf("verdict: best triple %v differs from planted %v\n", het.Best.SNPs, target)
	}
}
