// device_survey: the paper's cross-device study (Figures 3 and 4 plus
// the Section V-D comparison) evaluated with the analytical performance
// models over the Table I / Table II catalogs.
package main

import (
	"fmt"
	"os"

	"trigene"
	"trigene/internal/device"
	"trigene/internal/perfmodel"
	"trigene/internal/report"
)

var snpSizes = []int{2048, 4096, 8192}

const samples = 16384

func main() {
	figure3()
	figure4()
	overall()
}

func figure3() {
	fmt.Println("=== Figure 3: CPU performance (modeled), 16384 samples ===")
	type variant struct {
		cpu    device.CPU
		avx512 bool
		label  string
	}
	var variants []variant
	for _, c := range trigene.CPUs() {
		if c.HasAVX512 {
			variants = append(variants, variant{c, true, c.ID + " AVX512"})
		}
		variants = append(variants, variant{c, false, c.ID + " AVX"})
	}
	tables := []struct {
		title string
		f     func(device.CPU, bool, int, int) float64
	}{
		{"(a) G elements/s/core", perfmodel.CPUPerCoreGElemPerSec},
		{"(b) elements/cycle/core", perfmodel.CPUPerCyclePerCore},
		{"(c) elements/cycle/(core x vector width)", perfmodel.CPUPerCyclePerCoreVec},
	}
	for _, spec := range tables {
		t := report.NewTable(spec.title, "device", "2048", "4096", "8192")
		for _, v := range variants {
			row := []interface{}{v.label}
			for _, m := range snpSizes {
				row = append(row, spec.f(v.cpu, v.avx512, m, samples))
			}
			t.AddRowf(row...)
		}
		render(t)
	}
}

func figure4() {
	fmt.Println("=== Figure 4: GPU performance (modeled), 16384 samples ===")
	tables := []struct {
		title string
		f     func(device.GPU, int, int) float64
	}{
		{"(a) G elements/s/CU", perfmodel.GPUPerCUGElemPerSec},
		{"(b) elements/cycle/CU", perfmodel.GPUPerCyclePerCU},
		{"(c) elements/cycle/stream core", perfmodel.GPUPerCyclePerStreamCore},
	}
	for _, spec := range tables {
		t := report.NewTable(spec.title, "device", "2048", "4096", "8192")
		for _, g := range trigene.GPUs() {
			row := []interface{}{g.ID + " " + g.Arch}
			for _, m := range snpSizes {
				row = append(row, spec.f(g, m, samples))
			}
			t.AddRowf(row...)
		}
		render(t)
	}
}

func overall() {
	fmt.Println("=== Section V-D: whole-device comparison, 8192 SNPs x 16384 samples ===")
	t := report.NewTable("", "device", "name", "G elem/s", "TDP W", "G elem/J")
	for _, r := range perfmodel.Overall(8192, samples) {
		t.AddRowf(r.DeviceID, r.Name, r.GElems, r.TDP, r.GElemsPerJoule)
	}
	render(t)

	ci3, _ := trigene.CPUByID("CI3")
	gn1, _ := trigene.GPUByID("GN1")
	hetero := perfmodel.CPUOverallGElemPerSec(ci3, true, 8192, samples) +
		perfmodel.GPUOverallGElemPerSec(gn1, 8192, samples)
	fmt.Printf("heterogeneous CI3+GN1 estimate: %.0f G elements/s (paper: ~3300)\n\n", hetero)
}

func render(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
}
