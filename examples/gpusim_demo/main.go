// gpusim_demo: runs the four GPU kernels on two simulated devices (a
// high-POPCNT NVIDIA Titan Xp and an Intel Iris Xe MAX), validates the
// results bit-exactly against the CPU engine, and shows how the memory
// layouts change coalescing behaviour — the core of the paper's GPU
// optimization story.
package main

import (
	"fmt"
	"log"
	"os"

	"trigene"
	"trigene/internal/report"
)

func main() {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 48, Samples: 2048, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := trigene.Search(mx, trigene.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU reference: best %v  K2 = %.4f\n\n", cpu.Best.Triple, cpu.Best.Score)

	for _, id := range []string{"GN1", "GI2"} {
		dev, err := trigene.GPUByID(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%s): %d CUs, %.0f POPCNT/CU/cycle, %.2f GHz ===\n",
			dev.ID, dev.Name, dev.CUs, dev.PopcntPerCU, dev.BoostGHz)
		t := report.NewTable("", "kernel", "layout", "txns", "L2 miss", "model ms", "G elem/s", "valid")
		layouts := map[trigene.GPUKernel]string{
			trigene.GPUNaive:      "row-major +phen",
			trigene.GPUSplit:      "row-major split",
			trigene.GPUTransposed: "transposed",
			trigene.GPUTiled:      "tiled",
		}
		for k := trigene.GPUNaive; k <= trigene.GPUTiled; k++ {
			res, err := trigene.SimulateGPU(dev, mx, trigene.GPUOptions{Kernel: k})
			if err != nil {
				log.Fatal(err)
			}
			valid := "ok"
			if res.Best.Score != cpu.Best.Score {
				valid = "MISMATCH"
			}
			t.AddRowf(k.String(), layouts[k], res.Stats.Transactions, res.Stats.L2Misses,
				res.Stats.ModelSeconds*1e3, res.Stats.ElementsPerSec/1e9, valid)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("note: transposed/tiled layouts coalesce warp loads into far fewer")
	fmt.Println("transactions than the row-major layouts, which is the paper's V3/V4 gain.")
}
