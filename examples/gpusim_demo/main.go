// gpusim_demo: swaps the Session's backend to two simulated devices (a
// high-POPCNT NVIDIA Titan Xp and an Intel Iris Xe MAX), runs the four
// GPU kernels, validates the results bit-exactly against the CPU
// backend, and shows how the memory layouts change coalescing
// behaviour — the core of the paper's GPU optimization story.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"trigene"
	"trigene/internal/report"
)

func main() {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 48, Samples: 2048, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	cpu, err := sess.Search(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU reference: best %v  K2 = %.4f\n\n", cpu.Best.SNPs, cpu.Best.Score)

	// The GPU kernels share the V1..V4 numbering; the memory layout is
	// what changes stage to stage.
	layouts := map[trigene.Approach]string{
		trigene.V1Naive:   "row-major +phen",
		trigene.V2Split:   "row-major split",
		trigene.V3Blocked: "transposed",
		trigene.V4Vector:  "tiled",
	}
	for _, id := range []string{"GN1", "GI2"} {
		dev, err := trigene.GPUByID(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%s): %d CUs, %.0f POPCNT/CU/cycle, %.2f GHz ===\n",
			dev.ID, dev.Name, dev.CUs, dev.PopcntPerCU, dev.BoostGHz)
		backend := trigene.GPUSim(dev)
		t := report.NewTable("", "kernel", "layout", "txns", "L2 miss", "model ms", "G elem/s", "valid")
		for v := trigene.V1Naive; v <= trigene.V4Vector; v++ {
			rep, err := sess.Search(ctx, trigene.WithBackend(backend), trigene.WithApproach(v))
			if err != nil {
				log.Fatal(err)
			}
			valid := "ok"
			if rep.Best.Score != cpu.Best.Score {
				valid = "MISMATCH"
			}
			t.AddRowf(rep.Approach, layouts[v], rep.GPU.Transactions, rep.GPU.L2Misses,
				rep.GPU.ModelSeconds*1e3, rep.ElementsPerSec/1e9, valid)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("note: transposed/tiled layouts coalesce warp loads into far fewer")
	fmt.Println("transactions than the row-major layouts, which is the paper's V3/V4 gain.")
}
