// Quickstart: generate a small synthetic case-control dataset with a
// planted three-way interaction and recover it with the default search
// (approach V4, all cores, Bayesian K2 score).
package main

import (
	"fmt"
	"log"

	"trigene"
)

func main() {
	// Plant a third-order signal at SNPs (7, 19, 31): genotype triples
	// carrying at least three minor alleles are cases with probability
	// 0.9, everything else with probability 0.1.
	interaction := &trigene.Interaction{
		SNPs:       [3]int{7, 19, 31},
		Penetrance: trigene.ThresholdPenetrance(3, 0.1, 0.9),
	}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs:        64,
		Samples:     2000,
		Seed:        42,
		MAFMin:      0.25,
		MAFMax:      0.5,
		Interaction: interaction,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	controls, cases := mx.ClassCounts()
	fmt.Printf("dataset: %d SNPs x %d samples (%d controls / %d cases)\n",
		mx.SNPs(), mx.Samples(), controls, cases)

	res, err := trigene.Search(mx, trigene.Options{TopK: 3})
	if err != nil {
		log.Fatalf("search: %v", err)
	}

	fmt.Printf("evaluated %d combinations in %v (%.2f G elements/s)\n",
		res.Stats.Combinations, res.Stats.Duration.Round(1000000),
		res.Stats.ElementsPerSec/1e9)
	fmt.Printf("best triple: %v  K2 = %.3f\n", res.Best.Triple, res.Best.Score)
	for i, c := range res.TopK {
		fmt.Printf("  top-%d: %v  K2 = %.3f\n", i+1, c.Triple, c.Score)
	}
	if res.Best.Triple == (trigene.Triple{I: 7, J: 19, K: 31}) {
		fmt.Println("planted interaction recovered")
	} else {
		fmt.Println("planted interaction NOT recovered (unexpected for this seed)")
	}
}
