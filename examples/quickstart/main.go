// Quickstart: generate a small synthetic case-control dataset with a
// planted three-way interaction and recover it through the unified
// Session API with the default search (CPU backend, approach V4, all
// cores, Bayesian K2 score).
package main

import (
	"context"
	"fmt"
	"log"
	"slices"

	"trigene"
)

func main() {
	// Plant a third-order signal at SNPs (7, 19, 31): genotype triples
	// carrying at least three minor alleles are cases with probability
	// 0.9, everything else with probability 0.1.
	interaction := &trigene.Interaction{
		SNPs:       [3]int{7, 19, 31},
		Penetrance: trigene.ThresholdPenetrance(3, 0.1, 0.9),
	}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs:        64,
		Samples:     2000,
		Seed:        42,
		MAFMin:      0.25,
		MAFMax:      0.5,
		Interaction: interaction,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	controls, cases := mx.ClassCounts()
	fmt.Printf("dataset: %d SNPs x %d samples (%d controls / %d cases)\n",
		mx.SNPs(), mx.Samples(), controls, cases)

	// A Session validates the dataset once and serves any number of
	// concurrent searches; it is the object a server holds per loaded
	// dataset.
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	rep, err := sess.Search(context.Background(), trigene.WithTopK(3))
	if err != nil {
		log.Fatalf("search: %v", err)
	}

	fmt.Printf("evaluated %d combinations in %v (%.2f G elements/s)\n",
		rep.Combinations, rep.Duration.Round(1000000), rep.ElementsPerSec/1e9)
	fmt.Printf("best triple: %v  K2 = %.3f\n", rep.Best.SNPs, rep.Best.Score)
	for i, c := range rep.TopK {
		fmt.Printf("  top-%d: %v  K2 = %.3f\n", i+1, c.SNPs, c.Score)
	}
	if slices.Equal(rep.Best.SNPs, []int{7, 19, 31}) {
		fmt.Println("planted interaction recovered")
	} else {
		fmt.Println("planted interaction NOT recovered (unexpected for this seed)")
	}
}
