// Autotune: the same search run twice over one dataset — once with a
// hand-picked backend, once under WithAutoTune, where the paper's
// analytical models (CARM roofline, per-approach throughput, DVFS
// energy) pick the execution parameters and the Report carries the
// decision trace. The candidate lists are bit-exact: plans steer only
// how the search executes, never what it finds.
package main

import (
	"context"
	"fmt"
	"log"

	"trigene"
)

func main() {
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs:    64,
		Samples: 2000,
		Seed:    42,
		MAFMin:  0.25,
		MAFMax:  0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{7, 19, 31},
			Penetrance: trigene.ThresholdPenetrance(3, 0.1, 0.9),
		},
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	ctx := context.Background()

	// Hand-picked: the CPU backend with its static defaults.
	manual, err := sess.Search(ctx, trigene.WithBackend(trigene.CPU()), trigene.WithTopK(3))
	if err != nil {
		log.Fatalf("manual search: %v", err)
	}
	fmt.Printf("hand-picked : %s/%s  %d combos in %v  best %v (K2 %.3f)\n",
		manual.Backend, manual.Approach, manual.Combinations,
		manual.Duration.Round(1000000), manual.Best.SNPs, manual.Best.Score)

	// Autotuned: the planner probes the host, picks the winning kernel
	// for it, sizes the scheduler tiles from the modeled throughput,
	// and leaves its trace on the Report.
	tuned, err := sess.Search(ctx, trigene.WithTopK(3), trigene.WithAutoTune())
	if err != nil {
		log.Fatalf("autotuned search: %v", err)
	}
	p := tuned.Plan
	fmt.Printf("autotuned   : %s/%s  %d combos in %v  best %v (K2 %.3f)\n",
		tuned.Backend, tuned.Approach, tuned.Combinations,
		tuned.Duration.Round(1000000), tuned.Best.SNPs, tuned.Best.Score)
	fmt.Printf("plan        : backend=%s approach=%s workers=%d grain=%d ranks/claim\n",
		p.Backend, p.Approach, p.Workers, p.Grain)
	fmt.Printf("plan        : predicted %.0f combos/s (%.1f tiles/s) on %s — %s\n",
		p.PredictedCombosPerSec, p.PredictedTilesPerSec, p.CPUDevice, p.Reason)

	// The same switch under an energy budget: the DVFS model picks the
	// highest clock whose modeled draw fits, and the plan records the
	// operating point.
	capped, err := sess.Search(ctx, trigene.WithTopK(3), trigene.WithEnergyBudget(45))
	if err != nil {
		log.Fatalf("budgeted search: %v", err)
	}
	bp := capped.Plan
	fmt.Printf("45 W budget : %.2f GHz CPU, modeled draw %.0f W, predicted %.0f combos/s\n",
		bp.TargetCPUGHz, bp.PredictedWatts, bp.PredictedCombosPerSec)

	// Bit-exactness is the contract: tuning never changes results.
	same := len(manual.TopK) == len(tuned.TopK)
	for i := range manual.TopK {
		if !same || tuned.TopK[i].Score != manual.TopK[i].Score {
			same = false
			break
		}
	}
	if same {
		fmt.Println("hand-picked and autotuned candidate lists are bit-exact")
	} else {
		fmt.Println("candidate lists diverged (this is a bug)")
	}
}
