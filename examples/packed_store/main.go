// packed_store demonstrates the encoded-dataset store lifecycle:
// generate a dataset, pre-encode it into a packed .tpack file, reopen
// it (memory-mapped where the platform allows) and search immediately
// — no re-parse, no re-binarization — with bit-exact results and a
// stable content hash.
//
// Run with: go run ./examples/packed_store
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"trigene"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A dataset with a planted 3-way interaction at (4, 11, 19).
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 48, Samples: 1200, Seed: 7, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{4, 11, 19},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		return err
	}

	// Path 1: the ordinary session. Its first search builds the needed
	// bit-plane encoding; WritePack then persists the encodings.
	sess, err := trigene.NewSession(mx)
	if err != nil {
		return err
	}
	warm, err := sess.Search(ctx, trigene.WithTopK(3))
	if err != nil {
		return err
	}
	fmt.Printf("fresh session:  best %v (%s=%.4f), hash %.12s…\n",
		warm.Best.SNPs, warm.Objective, warm.Best.Score, sess.DatasetHash())

	dir, err := os.MkdirTemp("", "packed-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "planted.tpack")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sess.WritePack(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes\n", filepath.Base(path), fi.Size())

	// Path 2: reopen the pack. OpenPack memory-maps the encodings, so
	// the session is ready to search in milliseconds — the path a
	// cluster worker or a CLI takes on a warm cache.
	start := time.Now()
	packed, err := trigene.OpenPack(path)
	if err != nil {
		return err
	}
	defer packed.Close()
	loadDur := time.Since(start)
	rep, err := packed.Search(ctx, trigene.WithTopK(3))
	if err != nil {
		return err
	}
	fmt.Printf("packed session: best %v (%s=%.4f), hash %.12s…\n",
		rep.Best.SNPs, rep.Objective, rep.Best.Score, packed.DatasetHash())
	fmt.Printf("pack opened in %v (mmap=%v); encodings adopted, not rebuilt\n",
		loadDur.Round(time.Microsecond), packed.PackMapped())

	if rep.Best.Score != warm.Best.Score || packed.DatasetHash() != sess.DatasetHash() {
		return fmt.Errorf("pack round-trip changed the result")
	}
	fmt.Println("bit-exact across the pack round-trip ✓")
	return nil
}
