package trigene

import (
	"context"
	"fmt"

	"trigene/internal/engine"
	"trigene/internal/permtest"
)

// Session is the unit of work a server holds per loaded dataset: it
// validates the dataset once, precomputes both binarized forms, and is
// safe for many concurrent Search and PermutationTest calls (each call
// is itself internally parallel).
type Session struct {
	searcher *engine.Searcher
}

// NewSession validates the dataset and precomputes its binarized
// forms.
func NewSession(mx *Matrix) (*Session, error) {
	s, err := engine.New(mx)
	if err != nil {
		return nil, err
	}
	return &Session{searcher: s}, nil
}

// Matrix returns the dataset the session was built from.
func (s *Session) Matrix() *Matrix { return s.searcher.Matrix() }

// SNPs returns the dataset's SNP count M.
func (s *Session) SNPs() int { return s.searcher.Matrix().SNPs() }

// Samples returns the dataset's sample count N.
func (s *Session) Samples() int { return s.searcher.Matrix().Samples() }

// Search runs one exhaustive interaction search. The zero
// configuration searches order 3 on the CPU backend with approach V4,
// the Bayesian K2 objective and all cores, returning the single best
// candidate; functional options select the order, backend, approach,
// objective, top-K depth, shard and parallelism. Cancellation of ctx
// is observed between work chunks on every backend and returns the
// context error.
func (s *Session) Search(ctx context.Context, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := newSearchConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.remote != nil {
		// Autotune crosses the wire inside the SearchSpec: each worker
		// plans for its own host rather than inheriting this machine's.
		return s.searchRemote(ctx, cfg)
	}
	if cfg.autotune {
		if err := s.applyPlan(cfg); err != nil {
			return nil, err
		}
	}
	rep, err := cfg.backend.search(ctx, s, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.planInfo != nil {
		rep.Plan = cfg.planInfo
	}
	return rep, nil
}

// searchRemote ships a configured search to a WithCluster executor.
func (s *Session) searchRemote(ctx context.Context, cfg *searchConfig) (*Report, error) {
	if cfg.shard != nil {
		return nil, fmt.Errorf("trigene: WithShard does not combine with WithCluster (the cluster partitions the space itself)")
	}
	if cfg.progress != nil {
		return nil, fmt.Errorf("trigene: WithProgress does not cross the wire; poll the cluster job status instead")
	}
	spec, err := cfg.spec()
	if err != nil {
		return nil, err
	}
	rep, err := cfg.remote.ExecuteSearch(ctx, s.Matrix(), spec)
	if err != nil {
		return nil, fmt.Errorf("trigene: cluster %s: %w", cfg.remote.Name(), err)
	}
	return rep, nil
}

// PermutationTest estimates the p-value of a candidate combination
// (any order in [2, 7], strictly increasing SNP indices — typically a
// Report's Best.SNPs) by phenotype permutation. Relevant options:
// WithPermutations, WithSeed, WithObjective (which must match the scan
// that produced the candidate) and WithWorkers.
func (s *Session) PermutationTest(ctx context.Context, snps []int, opts ...Option) (*PermResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := newSearchConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.shard != nil {
		return nil, fmt.Errorf("trigene: permutation tests cannot shard")
	}
	if cfg.remote != nil {
		return nil, fmt.Errorf("trigene: permutation tests run locally; WithCluster does not apply")
	}
	if _, isCPU := cfg.backend.(cpuBackend); !isCPU {
		return nil, fmt.Errorf("trigene: permutation tests run on the host; WithBackend does not apply")
	}
	if cfg.approachSet {
		return nil, fmt.Errorf("trigene: permutation tests re-score one candidate; WithApproach does not apply")
	}
	if cfg.autotune {
		return nil, fmt.Errorf("trigene: permutation tests re-score one candidate; WithAutoTune does not apply")
	}
	if cfg.topK != 1 {
		return nil, fmt.Errorf("trigene: permutation tests score one candidate; WithTopK does not apply")
	}
	if cfg.orderSet && cfg.order != len(snps) {
		return nil, fmt.Errorf("trigene: order %d conflicts with the %d-SNP candidate (the order is inferred from snps)", cfg.order, len(snps))
	}
	obj, _, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	return permtest.K(s.Matrix(), snps, permtest.Config{
		Permutations: cfg.permutations,
		Seed:         cfg.seed,
		Workers:      cfg.workers,
		Objective:    obj,
		Context:      ctx,
	})
}
