package trigene

import (
	"context"
	"fmt"
	"io"
	"time"

	"trigene/internal/engine"
	"trigene/internal/obs"
	"trigene/internal/store"
)

// Session is the unit of work a server holds per loaded dataset: it
// validates the dataset once, owns the dataset's encoded-dataset store
// (every bit-plane encoding is built lazily, exactly once, and shared
// by all backends), and is safe for many concurrent Search and
// PermutationTest calls (each call is itself internally parallel).
type Session struct {
	store    *store.Store
	searcher *engine.Searcher
}

// NewSession validates the dataset and wraps it in a fresh
// encoded-dataset store. No encoding is built until a search needs it:
// a V1-only session materializes just the naive three-plane form, a
// V2+ session just the phenotype-split form.
func NewSession(mx *Matrix) (*Session, error) {
	s, err := engine.New(mx)
	if err != nil {
		return nil, err
	}
	return &Session{store: s.Store(), searcher: s}, nil
}

// OpenPack opens a pre-encoded .tpack dataset (see Session.WritePack
// and the epistasis/trigened/datagen pack modes), memory-mapping it
// where the platform allows so the session is ready to search in
// milliseconds without re-parsing or re-binarizing the dataset. Call
// Close when done with the session.
func OpenPack(path string) (*Session, error) {
	st, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := engine.NewFromStore(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	return &Session{store: st, searcher: s}, nil
}

// ReadPack decodes a .tpack dataset from a byte stream (the wire form
// cluster workers receive) into a heap-backed session.
func ReadPack(r io.Reader) (*Session, error) {
	st, err := store.ReadPack(r)
	if err != nil {
		return nil, err
	}
	s, err := engine.NewFromStore(st)
	if err != nil {
		return nil, err
	}
	return &Session{store: st, searcher: s}, nil
}

// WritePack serializes the session's dataset in the packed .tpack
// format, building (and memoizing) the hot encodings if they do not
// exist yet. A pack round-trip preserves the dataset hash and every
// search result bit for bit.
func (s *Session) WritePack(w io.Writer) error { return s.store.WritePack(w) }

// DatasetHash returns the hex SHA-256 content hash identifying the
// session's dataset. Identical matrices hash identically regardless of
// the format they were loaded from; caches (the cluster worker's
// session cache, pack caches) key on it.
func (s *Session) DatasetHash() string { return s.store.Hash() }

// PackMapped reports whether the session's encodings are served from a
// memory-mapped .tpack.
func (s *Session) PackMapped() bool { return s.store.Mapped() }

// Close releases the mmap region of a session opened from a .tpack
// with OpenPack. The session must not be used afterwards. Sessions
// built any other way need no Close; calling it is a no-op.
func (s *Session) Close() error { return s.store.Close() }

// Matrix returns the dataset the session was built from (decoding it
// from the packed sections on pack-loaded sessions).
func (s *Session) Matrix() *Matrix { return s.store.Matrix() }

// SNPs returns the dataset's SNP count M.
func (s *Session) SNPs() int { return s.store.SNPs() }

// Samples returns the dataset's sample count N.
func (s *Session) Samples() int { return s.store.Samples() }

// ClassCounts returns the number of control and case samples.
func (s *Session) ClassCounts() (controls, cases int) { return s.store.ClassCounts() }

// Search runs one exhaustive interaction search. The zero
// configuration searches order 3 on the CPU backend with approach V4,
// the Bayesian K2 objective and all cores, returning the single best
// candidate; functional options select the order, backend, approach,
// objective, top-K depth, shard and parallelism. Cancellation of ctx
// is observed between work chunks on every backend and returns the
// context error.
func (s *Session) Search(ctx context.Context, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := newSearchConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.remote != nil {
		// Autotune crosses the wire inside the SearchSpec: each worker
		// plans for its own host rather than inheriting this machine's.
		return s.searchRemote(ctx, cfg)
	}
	s.store.Instrument(cfg.metrics)
	var tr *obs.Trace
	if cfg.trace {
		tr = obs.NewTrace()
	}
	if cfg.autotune {
		planDone := tr.Start("plan")
		err := s.applyPlan(cfg)
		planDone()
		if err != nil {
			return nil, err
		}
	}
	// The approach's encodings build lazily inside the backend, so the
	// "encode" span is the store's build-time delta across the search,
	// anchored at the search span's start (it nests inside "search").
	var encodeBefore float64
	if cfg.trace {
		encodeBefore = s.store.EncodeSeconds()
	}
	searchStart := tr.Since()
	searchDone := tr.Start("search")
	var rep *Report
	if cfg.screen != nil {
		rep, err = s.searchScreened(ctx, cfg, tr)
	} else {
		rep, err = cfg.backend.search(ctx, s, cfg)
	}
	searchDone()
	if err != nil {
		return nil, err
	}
	if cfg.planInfo != nil {
		rep.Plan = cfg.planInfo
	}
	if cfg.trace {
		if d := s.store.EncodeSeconds() - encodeBefore; d > 0 {
			tr.Add("encode", searchStart, time.Duration(d*float64(time.Second)))
		}
		rep.Trace = traceInfo(tr)
	}
	return rep, nil
}

// traceInfo converts a recorded obs.Trace into the Report's exported
// TraceInfo block.
func traceInfo(tr *obs.Trace) *TraceInfo {
	spans := tr.Spans()
	out := &TraceInfo{Spans: make([]TraceSpan, len(spans))}
	for i, sp := range spans {
		out.Spans[i] = TraceSpan{
			Name:       sp.Name,
			StartNs:    sp.Start.Nanoseconds(),
			DurationNs: sp.Duration.Nanoseconds(),
		}
	}
	return out
}

// searchRemote ships a configured search to a WithCluster executor.
func (s *Session) searchRemote(ctx context.Context, cfg *searchConfig) (*Report, error) {
	if cfg.shard != nil {
		return nil, fmt.Errorf("trigene: WithShard does not combine with WithCluster (the cluster partitions the space itself)")
	}
	if cfg.progress != nil {
		return nil, fmt.Errorf("trigene: WithProgress does not cross the wire; poll the cluster job status instead")
	}
	spec, err := cfg.spec()
	if err != nil {
		return nil, err
	}
	rep, err := cfg.remote.ExecuteSearch(ctx, s.Matrix(), spec)
	if err != nil {
		return nil, fmt.Errorf("trigene: cluster %s: %w", cfg.remote.Name(), err)
	}
	return rep, nil
}

// PermutationTest estimates the p-value of a candidate combination
// (any order in [2, 7], strictly increasing SNP indices — typically a
// Report's Best.SNPs) by phenotype permutation, on the bit-plane
// kernel. Relevant options: WithPermutations, WithSeed, WithObjective
// (which must match the scan that produced the candidate), WithWorkers,
// WithPermBatch and WithCluster (which fans the permutation range out
// over a cluster; merged p-values are bit-exact with a local run). Use
// PermutationTestAll to test a whole top-K sharing the permutation
// work.
func (s *Session) PermutationTest(ctx context.Context, snps []int, opts ...Option) (*PermResult, error) {
	res, err := s.PermutationTestAll(ctx, [][]int{snps}, opts...)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}
