package trigene_test

import (
	"trigene"
	"trigene/internal/store"
)

// encStore wraps a benchmark matrix in an encoded-dataset store,
// panicking on invalid fixtures.
func encStore(mx *trigene.Matrix) *store.Store {
	st, err := store.New(mx)
	if err != nil {
		panic(err)
	}
	return st
}
