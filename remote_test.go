package trigene_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"trigene"
)

// TestParseBackendRoundTrip: every backend's Name() parses back to a
// backend with the same name.
func TestParseBackendRoundTrip(t *testing.T) {
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []trigene.Backend{trigene.CPU(), trigene.Baseline(), trigene.Hetero(), trigene.GPUSim(gn1)} {
		got, err := trigene.ParseBackend(b.Name())
		if err != nil {
			t.Errorf("ParseBackend(%q): %v", b.Name(), err)
			continue
		}
		if got.Name() != b.Name() {
			t.Errorf("ParseBackend(%q).Name() = %q", b.Name(), got.Name())
		}
	}
	if got, err := trigene.ParseBackend(""); err != nil || got.Name() != "cpu" {
		t.Errorf("ParseBackend(\"\") = %v, %v; want cpu", got, err)
	}
	for _, bad := range []string{"tpu", "gpusim:NOPE", "cpu2"} {
		if _, err := trigene.ParseBackend(bad); err == nil {
			t.Errorf("ParseBackend(%q) accepted", bad)
		}
	}
}

// TestSearchSpecOptions: a spec's rebuilt options reproduce the direct
// call bit-exactly, on CPU and simulated-GPU backends.
func TestSearchSpecOptions(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	cases := []struct {
		name   string
		spec   trigene.SearchSpec
		direct []trigene.Option
	}{
		{
			"zero spec is the zero call",
			trigene.SearchSpec{},
			nil,
		},
		{
			"cpu order 2 mi top3",
			trigene.SearchSpec{Order: 2, TopK: 3, Objective: "mi", Backend: "cpu", Workers: 2},
			[]trigene.Option{trigene.WithOrder(2), trigene.WithTopK(3), trigene.WithObjective("mi"), trigene.WithWorkers(2)},
		},
		{
			"cpu pinned V1",
			trigene.SearchSpec{Approach: "V1"},
			[]trigene.Option{trigene.WithApproach(trigene.V1Naive)},
		},
		{
			"gpusim kernel V3",
			trigene.SearchSpec{Backend: "gpusim:GN1", Approach: "V3", TopK: 2},
			nil, // compared via metadata below
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts, err := tc.spec.Options()
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Search(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if tc.direct != nil || tc.spec == (trigene.SearchSpec{}) {
				want, err := s.Search(ctx, tc.direct...)
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, tc.name, got, want)
				return
			}
			if got.Backend != tc.spec.Backend || got.Approach != tc.spec.Approach || len(got.TopK) != tc.spec.TopK {
				t.Errorf("spec run metadata: backend=%q approach=%q topk=%d", got.Backend, got.Approach, len(got.TopK))
			}
		})
	}
	// Parse failures surface from Options, not from the search.
	for _, bad := range []trigene.SearchSpec{
		{Backend: "bogus"},
		{Approach: "V9"},
		{Backend: "gpusim:GN1", Approach: "blocked"}, // CPU-only name on a GPU backend
	} {
		if _, err := bad.Options(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
}

// recordingExecutor captures the spec WithCluster serializes and
// returns a canned report.
type recordingExecutor struct {
	spec    trigene.SearchSpec
	samples int
	rep     *trigene.Report
	err     error
}

func (e *recordingExecutor) Name() string { return "recording" }

func (e *recordingExecutor) ExecuteSearch(_ context.Context, mx *trigene.Matrix, spec trigene.SearchSpec) (*trigene.Report, error) {
	e.spec = spec
	e.samples = mx.Samples()
	return e.rep, e.err
}

// TestWithCluster checks the remote routing: the resolved
// configuration is serialized into the spec handed to the executor,
// the executor's report is returned as-is, and non-serializable
// configurations fail loudly.
func TestWithCluster(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	canned := &trigene.Report{Backend: "cpu", Approach: "V2", Objective: "k2", Order: 3}
	exec := &recordingExecutor{rep: canned}

	rep, err := s.Search(ctx, trigene.WithCluster(exec),
		trigene.WithOrder(2), trigene.WithTopK(4), trigene.WithObjective("gini"), trigene.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep != canned {
		t.Error("executor report not returned as-is")
	}
	want := trigene.SearchSpec{Order: 2, TopK: 4, Objective: "gini", Backend: "cpu", Workers: 3}
	if exec.spec != want {
		t.Errorf("serialized spec %+v, want %+v", exec.spec, want)
	}
	if exec.samples != s.Samples() {
		t.Errorf("executor saw %d samples, want %d", exec.samples, s.Samples())
	}

	// A pinned approach serializes; the spec round-trips to options.
	if _, err := s.Search(ctx, trigene.WithCluster(exec), trigene.WithApproach(trigene.V3Blocked)); err != nil {
		t.Fatal(err)
	}
	if exec.spec.Approach != "V3" {
		t.Errorf("approach serialized as %q, want V3", exec.spec.Approach)
	}
	if _, err := exec.spec.Options(); err != nil {
		t.Errorf("serialized spec does not rebuild: %v", err)
	}

	// Executor failures carry its name.
	exec.err = fmt.Errorf("coordinator down")
	if _, err := s.Search(ctx, trigene.WithCluster(exec)); err == nil || !strings.Contains(err.Error(), "recording") {
		t.Errorf("executor error = %v, want named wrap", err)
	}
	exec.err = nil

	// Loud failures: nil executor, sharding, progress, custom hetero,
	// and permutation tests.
	if _, err := s.Search(ctx, trigene.WithCluster(nil)); err == nil {
		t.Error("nil executor accepted")
	}
	if _, err := s.Search(ctx, trigene.WithCluster(exec), trigene.WithShard(0, 2)); err == nil {
		t.Error("WithShard + WithCluster accepted")
	}
	if _, err := s.Search(ctx, trigene.WithCluster(exec), trigene.WithProgress(func(done, total int64) {})); err == nil {
		t.Error("WithProgress + WithCluster accepted")
	}
	ci3, err := trigene.CPUByID("CI3")
	if err != nil {
		t.Fatal(err)
	}
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(ctx, trigene.WithCluster(exec),
		trigene.WithBackend(trigene.HeteroOn(ci3, gn1, 0.5))); err == nil {
		t.Error("custom HeteroOn + WithCluster accepted")
	}
	if _, err := s.PermutationTest(ctx, []int{1, 2, 3}, trigene.WithCluster(exec)); err == nil {
		t.Error("WithCluster on a permutation test accepted")
	}
}
