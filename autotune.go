package trigene

import (
	"fmt"
	"runtime"

	"trigene/internal/plan"
)

// applyPlan runs the model-driven planner for an autotuned search and
// folds its decisions into the resolved configuration: the backend
// when the caller left it open, the approach default, the scheduler
// tile grain, and the heterogeneous split seeds. The resulting
// decision trace is attached to the Report as Report.Plan.
//
// Plans steer execution only — which engine runs and how the space is
// cut — never search semantics, so an autotuned Report is bit-exact
// with an untuned one (enforced by the shard-parity tests).
func (s *Session) applyPlan(cfg *searchConfig) error {
	w := plan.Workload{
		SNPs:      s.SNPs(),
		Samples:   s.Samples(),
		Order:     cfg.order,
		Objective: cfg.objName,
	}
	cons := plan.Constraints{EnergyBudgetWatts: cfg.energyBudget}
	if cfg.backendSet {
		cons.Backend = cfg.backend.Name()
	}
	if cfg.approachSet {
		if _, isCPU := cfg.backend.(cpuBackend); isCPU {
			cons.Approach = cfg.approach.String()
		}
	}

	// The host description: the modeled device pair when the caller
	// chose the heterogeneous backend, the live machine otherwise (the
	// planner only places work on hardware the session will actually
	// drive; the simulated devices enter through an explicit backend).
	var h plan.Host
	if hb, ok := cfg.backend.(heteroBackend); ok && cfg.backendSet {
		cpu := hb.opts.CPUDevice
		if cpu.ID == "" {
			c, err := CPUByID("CI3")
			if err != nil {
				return err
			}
			cpu = c
		}
		gpu := hb.opts.GPUDevice
		if gpu.ID == "" {
			g, err := GPUByID("GN1")
			if err != nil {
				return err
			}
			gpu = g
		}
		h = plan.Host{CPU: cpu, GPU: &gpu}
	} else {
		h = plan.LiveHost()
	}
	if cfg.workers > 0 {
		h.Workers = cfg.workers
	} else if h.Workers == 0 {
		h.Workers = runtime.GOMAXPROCS(0)
	}

	p, err := plan.Decide(w, h, cons)
	if err != nil {
		return fmt.Errorf("trigene: autotune: %w", err)
	}
	if !cfg.backendSet {
		be, err := ParseBackend(p.Backend)
		if err != nil {
			return fmt.Errorf("trigene: autotune: %w", err)
		}
		cfg.backend = be
	}
	if !cfg.approachSet {
		if a, err := ParseApproach(p.Approach); err == nil {
			cfg.plannedApproach = a
		}
	}
	cfg.planGrain = p.Grain
	cfg.planGPUGrains = p.GPUGrains
	cfg.planInfo = planInfoFrom(p)
	return nil
}

// screenDecision is the session-side shape of the planner's two-stage
// verdict (plan.ScreenDecision).
type screenDecision struct {
	Survivors int
	Decline   bool
	Reason    string
}

// planScreen consults the planner's two-stage cost model for a
// budget-only screen: the largest survivor set whose stage-1 + stage-2
// cost fits the budget, or a decline when screening loses.
func planScreen(snps, samples int, cfg *searchConfig, budgetSec float64) (*screenDecision, error) {
	w := plan.Workload{
		SNPs:      snps,
		Samples:   samples,
		Order:     cfg.order,
		Objective: cfg.objName,
	}
	cons := plan.Constraints{EnergyBudgetWatts: cfg.energyBudget}
	if cfg.backendSet {
		cons.Backend = cfg.backend.Name()
	}
	h := plan.LiveHost()
	if cfg.workers > 0 {
		h.Workers = cfg.workers
	}
	d, err := plan.DecideScreen(w, h, cons, budgetSec)
	if err != nil {
		return nil, fmt.Errorf("trigene: screen planning: %w", err)
	}
	return &screenDecision{Survivors: d.Survivors, Decline: d.Decline, Reason: d.Reason}, nil
}

// planInfoFrom copies a planner decision into the Report's wire shape.
func planInfoFrom(p *plan.Plan) *PlanInfo {
	return &PlanInfo{
		Backend:               p.Backend,
		Approach:              p.Approach,
		Workers:               p.Workers,
		Grain:                 p.Grain,
		CPUFraction:           p.CPUFraction,
		GPUGrains:             p.GPUGrains,
		PredictedCPUGElems:    p.PredictedCPUGElems,
		PredictedGPUGElems:    p.PredictedGPUGElems,
		PredictedCombosPerSec: p.PredictedCombosPerSec,
		PredictedTilesPerSec:  p.PredictedTilesPerSec,
		EnergyBudgetWatts:     p.EnergyBudgetWatts,
		TargetCPUGHz:          p.TargetCPUGHz,
		TargetGPUGHz:          p.TargetGPUGHz,
		PredictedWatts:        p.PredictedWatts,
		CPUDevice:             p.CPUDevice,
		GPUDevice:             p.GPUDevice,
		Reason:                p.Reason,
	}
}
