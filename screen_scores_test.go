package trigene

import (
	"reflect"
	"testing"
)

// Unit tests for the survivor-selection machinery the cluster
// coordinator and the local screened search share: deterministic
// top-S selection with index tie-breaks, elementwise shard merges,
// and seed-list extraction.

// TestSelectSurvivorsDeterministic: survivors are the top-S seen SNPs
// under the scan's objective, ties broken by SNP index, returned in
// ascending index order with the cut-line score. Unseen SNPs never
// survive, however attractive their (stale) Best entry looks.
func TestSelectSurvivorsDeterministic(t *testing.T) {
	sc := &ScreenScores{
		SNPs: 6,
		// k2: lower is better. SNP 2 carries the best-looking score but
		// was never scanned, so it must not survive.
		Best:      []float64{5, 2, 0, 2, 1, 0.5},
		Seen:      []bool{true, true, false, true, true, true},
		Objective: "k2",
	}
	surv, thr, err := sc.SelectSurvivors(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(surv, []int{1, 4, 5}) {
		t.Errorf("survivors = %v, want [1 4 5]", surv)
	}
	if thr != 2 {
		t.Errorf("threshold = %g, want 2 (the weakest survivor)", thr)
	}

	// SNPs 1 and 3 tie at 2; the lower index survives first, so S=4
	// pulls in SNP 3 and the threshold stays at the tie score.
	surv, thr, err = sc.SelectSurvivors(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(surv, []int{1, 3, 4, 5}) {
		t.Errorf("survivors = %v, want [1 3 4 5]", surv)
	}
	if thr != 2 {
		t.Errorf("threshold = %g, want 2", thr)
	}

	// A budget past the seen count returns every seen SNP.
	surv, _, err = sc.SelectSurvivors(100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(surv, []int{0, 1, 3, 4, 5}) {
		t.Errorf("over-budget survivors = %v", surv)
	}

	// A scan with no usable objective cannot rank anything.
	bad := &ScreenScores{SNPs: 2, Objective: "nope"}
	if _, _, err := bad.SelectSurvivors(1); err == nil {
		t.Error("unknown objective accepted")
	}
}

// TestMergeScreensElementwise: shard scans merge to the full scan —
// per-SNP bests take the objective-better entry, unseen slots stay
// gated, pair counts and durations sum, and the seed lists re-rank
// into one list at the widest requested depth.
func TestMergeScreensElementwise(t *testing.T) {
	// mi: higher is better.
	a := &ScreenScores{
		SNPs:      4,
		Best:      []float64{0.5, 0.2, 0, 0},
		Seen:      []bool{true, true, false, false},
		Objective: "mi",
		Pairs:     3,
		TopPairs: []SearchCandidate{
			{SNPs: []int{0, 1}, Score: 0.5},
			{SNPs: []int{0, 2}, Score: 0.2},
		},
		TopPairLimit: 2,
		DurationNs:   5,
	}
	b := &ScreenScores{
		SNPs:      4,
		Best:      []float64{0.1, 0.9, 0.3, 0},
		Seen:      []bool{true, true, true, false},
		Objective: "mi",
		Pairs:     4,
		TopPairs: []SearchCandidate{
			{SNPs: []int{1, 3}, Score: 0.9},
			{SNPs: []int{2, 3}, Score: 0.3},
		},
		TopPairLimit: 2,
		DurationNs:   7,
	}
	out, err := MergeScreens(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Best, []float64{0.5, 0.9, 0.3, 0}) {
		t.Errorf("merged bests = %v", out.Best)
	}
	if !reflect.DeepEqual(out.Seen, []bool{true, true, true, false}) {
		t.Errorf("merged seen = %v", out.Seen)
	}
	if out.Pairs != 7 || out.DurationNs != 12 {
		t.Errorf("merged pairs/duration = %d/%d, want 7/12", out.Pairs, out.DurationNs)
	}
	wantSeeds := []SearchCandidate{
		{SNPs: []int{1, 3}, Score: 0.9},
		{SNPs: []int{0, 1}, Score: 0.5},
	}
	if !reflect.DeepEqual(out.TopPairs, wantSeeds) {
		t.Errorf("merged seeds = %+v, want %+v", out.TopPairs, wantSeeds)
	}

	// The merged scan selects survivors like a single scan would.
	surv, thr, err := out.SelectSurvivors(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(surv, []int{0, 1}) || thr != 0.5 {
		t.Errorf("merged survivors = %v (threshold %g), want [0 1] at 0.5", surv, thr)
	}
}

// TestMergeScreensRejections: merges across incompatible scans fail
// loudly instead of producing a silently wrong survivor set.
func TestMergeScreensRejections(t *testing.T) {
	ok := &ScreenScores{SNPs: 3, Best: make([]float64, 3), Seen: make([]bool, 3), Objective: "k2"}
	if _, err := MergeScreens(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := MergeScreens(nil); err == nil {
		t.Error("nil scan accepted")
	}
	if _, err := MergeScreens(ok, nil); err == nil {
		t.Error("trailing nil scan accepted")
	}
	if _, err := MergeScreens(ok, &ScreenScores{SNPs: 5, Objective: "k2"}); err == nil {
		t.Error("SNP-count mismatch accepted")
	}
	if _, err := MergeScreens(ok, &ScreenScores{SNPs: 3, Objective: "mi"}); err == nil {
		t.Error("objective mismatch accepted")
	}
	if _, err := MergeScreens(&ScreenScores{SNPs: 3, Objective: "nope"}); err == nil {
		t.Error("unknown objective accepted")
	}
}

// TestSeedListCapsAndFilters: the seed list takes the top-n scan
// pairs in rank order, tolerating a request past the list and
// skipping entries that are not pairs.
func TestSeedListCapsAndFilters(t *testing.T) {
	sc := &ScreenScores{TopPairs: []SearchCandidate{
		{SNPs: []int{0, 3}, Score: 1},
		{SNPs: []int{7}, Score: 2}, // not a pair; dropped, not misread
		{SNPs: []int{1, 2}, Score: 3},
	}}
	if got := sc.SeedList(10); !reflect.DeepEqual(got, [][2]int{{0, 3}, {1, 2}}) {
		t.Errorf("SeedList(10) = %v", got)
	}
	if got := sc.SeedList(1); !reflect.DeepEqual(got, [][2]int{{0, 3}}) {
		t.Errorf("SeedList(1) = %v", got)
	}
	if got := sc.SeedList(0); len(got) != 0 {
		t.Errorf("SeedList(0) = %v", got)
	}
}
