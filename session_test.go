package trigene_test

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"trigene"
)

// plantedSession builds a session over a dataset with a strong 3-way
// signal at (3, 9, 15).
func plantedSession(t *testing.T) *trigene.Session {
	t.Helper()
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 24, Samples: 900, Seed: 11, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{3, 9, 15},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantSNPs(t *testing.T, got []int, want ...int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("candidate %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %v, want %v", got, want)
		}
	}
}

// TestSessionBackendsAgree drives all four backends through the one
// Search entry point and checks they find the same planted triple.
func TestSessionBackendsAgree(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()

	cpu, err := s.Search(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, cpu.Best.SNPs, 3, 9, 15)
	if cpu.Backend != "cpu" || cpu.Approach != "V4F" || cpu.Objective != "k2" || cpu.Order != 3 {
		t.Errorf("cpu report metadata: %+v", cpu)
	}

	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := s.Search(ctx, trigene.WithBackend(trigene.GPUSim(gn1)))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, gpu.Best.SNPs, 3, 9, 15)
	if gpu.Best.Score != cpu.Best.Score {
		t.Errorf("gpu score %.9f != cpu %.9f", gpu.Best.Score, cpu.Best.Score)
	}
	if gpu.GPU == nil || gpu.GPU.Transactions == 0 {
		t.Error("gpu report missing modeled stats")
	}
	if gpu.Backend != "gpusim:GN1" {
		t.Errorf("gpu backend name %q", gpu.Backend)
	}

	base, err := s.Search(ctx, trigene.WithBackend(trigene.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, base.Best.SNPs, 3, 9, 15)
	if base.Objective != "mi" || base.Approach != "mpi3snp" {
		t.Errorf("baseline report metadata: %+v", base)
	}

	het, err := s.Search(ctx, trigene.WithBackend(trigene.Hetero()))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, het.Best.SNPs, 3, 9, 15)
	if het.Best.Score != cpu.Best.Score {
		t.Errorf("hetero score %.9f != cpu %.9f", het.Best.Score, cpu.Best.Score)
	}
	// Work-stealing: the realized split depends on the race between the
	// two sides, but the union must cover the space and the fraction
	// must be a valid share.
	if het.Hetero == nil || het.Hetero.CPUFraction < 0 || het.Hetero.CPUFraction >= 1 {
		t.Errorf("hetero split info: %+v", het.Hetero)
	}
	if het.Combinations != cpu.Combinations {
		t.Errorf("hetero covered %d combinations, want %d", het.Combinations, cpu.Combinations)
	}
}

// TestSessionOrdersShareReportType checks orders 2, 3 and k flow
// through the same entry point and Report shape.
func TestSessionOrdersShareReportType(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	for _, order := range []int{2, 3, 4} {
		rep, err := s.Search(ctx, trigene.WithOrder(order), trigene.WithTopK(3))
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if rep.Order != order || len(rep.Best.SNPs) != order || len(rep.TopK) != 3 {
			t.Errorf("order %d report: order=%d best=%v topk=%d",
				order, rep.Order, rep.Best.SNPs, len(rep.TopK))
		}
		if rep.Combinations <= 0 || rep.ElementsPerSec <= 0 {
			t.Errorf("order %d stats missing: %+v", order, rep)
		}
	}
}

// TestSessionShardBitExact runs every shard of a CPU search and checks
// the merged top-K is bit-exact against the unsharded run — the
// distributed-partitioning acceptance criterion.
func TestSessionShardBitExact(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()

	full, err := s.Search(ctx, trigene.WithTopK(10))
	if err != nil {
		t.Fatal(err)
	}

	const shards = 5
	var parts []*trigene.Report
	var combos int64
	for i := 0; i < shards; i++ {
		rep, err := s.Search(ctx, trigene.WithTopK(10), trigene.WithShard(i, shards))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if rep.Shard == nil || rep.Shard.Index != i || rep.Shard.Count != shards {
			t.Fatalf("shard %d info: %+v", i, rep.Shard)
		}
		if rep.Approach != "V2" {
			t.Errorf("shard %d approach %q, want rank-partitionable V2", i, rep.Approach)
		}
		combos += rep.Combinations
		parts = append(parts, rep)
	}
	if combos != full.Combinations {
		t.Errorf("shards cover %d combinations, full search %d", combos, full.Combinations)
	}

	merged, err := trigene.MergeReports(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.TopK) != len(full.TopK) {
		t.Fatalf("merged top-K %d entries, full %d", len(merged.TopK), len(full.TopK))
	}
	for i := range full.TopK {
		wantSNPs(t, merged.TopK[i].SNPs, full.TopK[i].SNPs...)
		if merged.TopK[i].Score != full.TopK[i].Score {
			t.Errorf("top-%d score %.12f != %.12f", i+1, merged.TopK[i].Score, full.TopK[i].Score)
		}
	}
}

// TestSessionShardGPU checks the shard primitive is backend-agnostic:
// sharded simulated-GPU runs merge to the full-space best.
func TestSessionShardGPU(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	gi2, err := trigene.GPUByID("GI2")
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Search(ctx, trigene.WithBackend(trigene.GPUSim(gi2)))
	if err != nil {
		t.Fatal(err)
	}
	var parts []*trigene.Report
	for i := 0; i < 3; i++ {
		rep, err := s.Search(ctx, trigene.WithBackend(trigene.GPUSim(gi2)), trigene.WithShard(i, 3))
		if err != nil {
			t.Fatalf("gpu shard %d: %v", i, err)
		}
		parts = append(parts, rep)
	}
	merged, err := trigene.MergeReports(parts...)
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, merged.Best.SNPs, full.Best.SNPs...)
	if merged.Best.Score != full.Best.Score {
		t.Errorf("merged gpu best %.12f != full %.12f", merged.Best.Score, full.Best.Score)
	}
}

// TestSessionShardEverywhere checks the scheduler made sharding a
// backend-agnostic property: configurations that failed loudly before
// the sched layer now run and carry shard metadata.
func TestSessionShardEverywhere(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	cases := []struct {
		name  string
		space string
		opts  []trigene.Option
	}{
		{"baseline", trigene.ShardSpaceRanks, []trigene.Option{trigene.WithBackend(trigene.Baseline()), trigene.WithShard(0, 2)}},
		{"hetero", trigene.ShardSpaceRanks, []trigene.Option{trigene.WithBackend(trigene.Hetero()), trigene.WithShard(0, 2)}},
		{"cpu order 2", trigene.ShardSpaceRanks, []trigene.Option{trigene.WithOrder(2), trigene.WithShard(0, 2)}},
		{"cpu order 4", trigene.ShardSpaceRanks, []trigene.Option{trigene.WithOrder(4), trigene.WithShard(0, 2)}},
		{"cpu V3 pinned", trigene.ShardSpaceBlocks, []trigene.Option{trigene.WithApproach(trigene.V3Blocked), trigene.WithShard(0, 2)}},
		{"cpu V4 pinned", trigene.ShardSpaceBlocks, []trigene.Option{trigene.WithApproach(trigene.V4Vector), trigene.WithShard(0, 2)}},
		{"cpu V3F pinned", trigene.ShardSpaceBlocks, []trigene.Option{trigene.WithApproach(trigene.V3Fused), trigene.WithShard(0, 2)}},
		{"cpu V4F pinned", trigene.ShardSpaceBlocks, []trigene.Option{trigene.WithApproach(trigene.V4Fused), trigene.WithShard(0, 2)}},
	}
	for _, tc := range cases {
		rep, err := s.Search(ctx, tc.opts...)
		if err != nil {
			t.Errorf("%s: sharded search failed: %v", tc.name, err)
			continue
		}
		if rep.Shard == nil || rep.Shard.Space != tc.space {
			t.Errorf("%s: shard info %+v, want space %q", tc.name, rep.Shard, tc.space)
		}
	}
	// Approach pinning still applies to order 3 only.
	for _, order := range []int{2, 4} {
		if _, err := s.Search(ctx, trigene.WithOrder(order), trigene.WithApproach(trigene.V1Naive)); err == nil {
			t.Errorf("order %d with pinned approach accepted, want error", order)
		}
	}
}

// TestSessionOptionErrors covers the loud-failure surface of the
// unified API.
func TestSessionOptionErrors(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []trigene.Option
	}{
		{"order too low", []trigene.Option{trigene.WithOrder(1)}},
		{"order too high", []trigene.Option{trigene.WithOrder(8)}},
		{"topk zero", []trigene.Option{trigene.WithTopK(0)}},
		{"bad objective", []trigene.Option{trigene.WithObjective("bogus")}},
		{"nil backend", []trigene.Option{trigene.WithBackend(nil)}},
		{"bad shard", []trigene.Option{trigene.WithShard(2, 2)}},
		{"bad approach", []trigene.Option{trigene.WithApproach(trigene.Approach(9))}},
		{"bad workers", []trigene.Option{trigene.WithWorkers(0)}},
		{"gpu order", []trigene.Option{trigene.WithBackend(trigene.GPUSim(gn1)), trigene.WithOrder(4)}},
		{"baseline objective", []trigene.Option{trigene.WithBackend(trigene.Baseline()), trigene.WithObjective("k2")}},
		{"baseline approach", []trigene.Option{trigene.WithBackend(trigene.Baseline()), trigene.WithApproach(trigene.V2Split)}},
		{"hetero order", []trigene.Option{trigene.WithBackend(trigene.Hetero()), trigene.WithOrder(2)}},
	}
	for _, tc := range cases {
		if _, err := s.Search(ctx, tc.opts...); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}

// TestSessionContextCancel checks every backend observes cancellation.
func TestSessionContextCancel(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 64, Samples: 512, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	backends := []trigene.Backend{trigene.CPU(), trigene.GPUSim(gn1), trigene.Baseline(), trigene.Hetero()}
	for _, b := range backends {
		if _, err := s.Search(ctx, trigene.WithBackend(b)); err == nil {
			t.Errorf("%s: cancelled search returned no error", b.Name())
		}
	}
	if _, err := s.PermutationTest(ctx, []int{0, 1, 2}); err == nil {
		t.Error("cancelled permutation test returned no error")
	}
}

// TestSessionProgress checks the progress callback fires and reaches
// the total on a sharded CPU run.
func TestSessionProgress(t *testing.T) {
	s := plantedSession(t)
	var calls, last atomic.Int64
	rep, err := s.Search(context.Background(),
		trigene.WithShard(0, 2),
		trigene.WithProgress(func(done, total int64) {
			calls.Add(1)
			// Callbacks race across workers; keep the furthest point.
			for {
				cur := last.Load()
				if done <= cur || last.CompareAndSwap(cur, done) {
					break
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never invoked")
	}
	if last.Load() != rep.Combinations {
		t.Errorf("final progress %d, want %d", last.Load(), rep.Combinations)
	}
}

// TestSessionPermutationTest checks the unified significance entry
// point across orders and its agreement with the scan objective.
func TestSessionPermutationTest(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	rep, err := s.Search(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := s.PermutationTest(ctx, rep.Best.SNPs,
		trigene.WithPermutations(100), trigene.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Observed != rep.Best.Score {
		t.Errorf("observed %.6f != scan score %.6f", sig.Observed, rep.Best.Score)
	}
	if sig.PValue > 0.02 {
		t.Errorf("planted triple p = %.4f, want tiny", sig.PValue)
	}

	// Order 4 flows through the generic path.
	if _, err := s.PermutationTest(ctx, []int{1, 5, 9, 13},
		trigene.WithPermutations(20), trigene.WithSeed(2)); err != nil {
		t.Errorf("order-4 permutation test: %v", err)
	}
	// Loud failures.
	if _, err := s.PermutationTest(ctx, []int{5, 5, 9}, trigene.WithPermutations(10)); err == nil {
		t.Error("non-increasing combination accepted")
	}
	if _, err := s.PermutationTest(ctx, rep.Best.SNPs, trigene.WithShard(0, 2)); err == nil {
		t.Error("sharded permutation test accepted")
	}
	if _, err := s.PermutationTest(ctx, rep.Best.SNPs, trigene.WithBackend(trigene.Baseline())); err == nil {
		t.Error("non-cpu permutation test accepted")
	}
	if _, err := s.PermutationTest(ctx, rep.Best.SNPs, trigene.WithTopK(5)); err == nil {
		t.Error("WithTopK on a permutation test accepted")
	}
	if _, err := s.PermutationTest(ctx, rep.Best.SNPs, trigene.WithApproach(trigene.V2Split)); err == nil {
		t.Error("WithApproach on a permutation test accepted")
	}
	if _, err := s.PermutationTest(ctx, rep.Best.SNPs, trigene.WithOrder(2)); err == nil {
		t.Error("conflicting WithOrder on a permutation test accepted")
	}
	// A matching explicit order is fine.
	if _, err := s.PermutationTest(ctx, rep.Best.SNPs, trigene.WithOrder(3),
		trigene.WithPermutations(10)); err != nil {
		t.Errorf("matching WithOrder rejected: %v", err)
	}
}

// TestMergeReportsSerialized checks the distributed workflow: shard
// Reports that crossed a JSON boundary still merge to the bit-exact
// full-space top-K.
func TestMergeReportsSerialized(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	full, err := s.Search(ctx, trigene.WithTopK(6))
	if err != nil {
		t.Fatal(err)
	}
	var wire []*trigene.Report
	for i := 0; i < 3; i++ {
		rep, err := s.Search(ctx, trigene.WithTopK(6), trigene.WithShard(i, 3))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var back trigene.Report
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		wire = append(wire, &back)
	}
	merged, err := trigene.MergeReports(wire...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.TopK) != len(full.TopK) {
		t.Fatalf("merged %d candidates, want %d", len(merged.TopK), len(full.TopK))
	}
	for i := range full.TopK {
		wantSNPs(t, merged.TopK[i].SNPs, full.TopK[i].SNPs...)
		if merged.TopK[i].Score != full.TopK[i].Score {
			t.Errorf("top-%d score %.12f != %.12f", i+1, merged.TopK[i].Score, full.TopK[i].Score)
		}
	}
}

// TestMergeReportsErrors covers the merge helper's validation.
func TestMergeReportsErrors(t *testing.T) {
	s := plantedSession(t)
	ctx := context.Background()
	if _, err := trigene.MergeReports(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := trigene.MergeReports(&trigene.Report{}); err == nil {
		t.Error("hand-built report accepted")
	}
	r2, err := s.Search(ctx, trigene.WithOrder(2))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := s.Search(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trigene.MergeReports(r2, r3); err == nil {
		t.Error("cross-order merge accepted")
	}
}

// TestParseRoundTrips checks the approach and kernel parsers accept
// descriptive, case-insensitive names and round-trip their String()
// forms.
func TestParseRoundTrips(t *testing.T) {
	for name, want := range map[string]trigene.Approach{
		"naive": trigene.V1Naive, "SPLIT": trigene.V2Split,
		"Blocked": trigene.V3Blocked, "vector": trigene.V4Vector,
		"v1": trigene.V1Naive, " V4 ": trigene.V4Vector, "2": trigene.V2Split,
	} {
		got, err := trigene.ParseApproach(name)
		if err != nil || got != want {
			t.Errorf("ParseApproach(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for a := trigene.V1Naive; a <= trigene.V4Vector; a++ {
		got, err := trigene.ParseApproach(a.String())
		if err != nil || got != a {
			t.Errorf("approach round trip %v: got %v, %v", a, got, err)
		}
	}
	for name, want := range map[string]trigene.GPUKernel{
		"naive": trigene.GPUNaive, "Split": trigene.GPUSplit,
		"TRANSPOSED": trigene.GPUTransposed, "tiled": trigene.GPUTiled,
		"v3": trigene.GPUTransposed, "4": trigene.GPUTiled,
	} {
		got, err := trigene.ParseGPUKernel(name)
		if err != nil || got != want {
			t.Errorf("ParseGPUKernel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for k := trigene.GPUNaive; k <= trigene.GPUTiled; k++ {
		got, err := trigene.ParseGPUKernel(k.String())
		if err != nil || got != k {
			t.Errorf("kernel round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := trigene.ParseApproach("blocky"); err == nil {
		t.Error("bad approach accepted")
	}
	if _, err := trigene.ParseGPUKernel("blocked"); err == nil {
		t.Error("GPU kernel parser accepted the CPU-only name \"blocked\"")
	}
}
