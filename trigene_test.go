package trigene_test

import (
	"bytes"
	"context"
	"testing"

	"trigene"
)

// The facade tests exercise the public API end to end, the way a
// downstream user would.

func TestPublicAPIEndToEnd(t *testing.T) {
	it := &trigene.Interaction{
		SNPs:       [3]int{3, 9, 15},
		Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
	}
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 24, Samples: 900, Seed: 11, MAFMin: 0.3, MAFMax: 0.5, Interaction: it,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// CPU search with defaults.
	res, err := sess.Search(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, res.Best.SNPs, 3, 9, 15)

	// GPU simulation on a Table II device agrees bit-exactly.
	gn1, err := trigene.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	gres, err := sess.Search(ctx, trigene.WithBackend(trigene.GPUSim(gn1)))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, gres.Best.SNPs, 3, 9, 15)
	if gres.Best.Score != res.Best.Score {
		t.Errorf("GPU score %.9f != CPU %.9f", gres.Best.Score, res.Best.Score)
	}

	// Baseline finds the same planted triple under MI.
	bres, err := sess.Search(ctx, trigene.WithBackend(trigene.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	wantSNPs(t, bres.Best.SNPs, 3, 9, 15)
}

func TestPublicAPICodecsRoundTrip(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 10, Samples: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var tb, bb bytes.Buffer
	if err := trigene.WriteText(&tb, mx); err != nil {
		t.Fatal(err)
	}
	if err := trigene.WriteBinary(&bb, mx); err != nil {
		t.Fatal(err)
	}
	fromText, err := trigene.ReadText(&tb)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := trigene.ReadBinary(&bb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mx.SNPs(); i++ {
		for j := 0; j < mx.Samples(); j++ {
			if fromText.Geno(i, j) != mx.Geno(i, j) || fromBin.Geno(i, j) != mx.Geno(i, j) {
				t.Fatal("codec round trip mismatch")
			}
		}
	}
}

func TestPublicAPIApproachesAndObjectives(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 15, Samples: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := trigene.ParseApproach("V2")
	if err != nil || a != trigene.V2Split {
		t.Fatalf("ParseApproach: %v %v", a, err)
	}
	var first *trigene.Report
	for _, ap := range []trigene.Approach{trigene.V1Naive, trigene.V2Split, trigene.V3Blocked, trigene.V4Vector} {
		rep, err := sess.Search(ctx, trigene.WithApproach(ap))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
		} else {
			wantSNPs(t, rep.Best.SNPs, first.Best.SNPs...)
			if rep.Best.Score != first.Best.Score {
				t.Errorf("approach %v disagrees", ap)
			}
		}
	}
	if _, err := sess.Search(ctx, trigene.WithObjective("mi")); err != nil {
		t.Fatal(err)
	}
	if _, err := trigene.NewObjective("bogus", 10); err == nil {
		t.Error("bogus objective accepted")
	}
}

func TestPublicAPICatalogs(t *testing.T) {
	if len(trigene.CPUs()) != 5 || len(trigene.GPUs()) != 9 {
		t.Errorf("catalog sizes: %d CPUs, %d GPUs", len(trigene.CPUs()), len(trigene.GPUs()))
	}
	if _, err := trigene.CPUByID("CI3"); err != nil {
		t.Error(err)
	}
	if _, err := trigene.GPUByID("nope"); err == nil {
		t.Error("unknown GPU accepted")
	}
}
