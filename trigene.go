// Package trigene is a pure-Go library for exhaustive third-order
// (3-way) epistasis detection in case-control GWAS datasets, together
// with the device-evaluation toolkit of the paper it reproduces:
//
//	"Unlocking Personalized Healthcare on Modern CPUs/GPUs:
//	 Three-way Gene Interaction Study" (Marques et al., IPDPS 2022)
//
// The package is a facade over the implementation packages:
//
//   - dataset handling: genotype matrices, binarized forms, synthetic
//     generation with planted interactions, text/binary codecs;
//   - the search engine with the paper's four CPU approaches (naive,
//     phenotype-split, cache-blocked, lane-vectorized) and K2/MI/Gini
//     objectives;
//   - a GPU simulator executing the paper's four GPU kernels with a
//     coalescing-aware memory model over the Table II device catalog;
//   - the tile scheduler: one work-distribution core every backend
//     consumes, which makes sharding and work-stealing heterogeneous
//     execution backend-agnostic properties of the search space;
//   - the distributed cluster: a coordinator leases tiles over
//     HTTP/JSON to worker processes (the trigened daemon), with
//     deadline-bearing heartbeat-renewed leases and exactly-once tile
//     accounting, reachable from the public API through WithCluster;
//   - the Cache-Aware Roofline Model and analytical device performance
//     models that regenerate the paper's figures and tables;
//   - the model-driven autotuner (WithAutoTune / WithEnergyBudget):
//     the same models pick the backend, approach, scheduler tile
//     grain, heterogeneous split and — under a watts budget — the
//     DVFS operating point, with the decision trace on Report.Plan.
//
// The public search surface is the Session/Backend API: a Session
// validates a dataset once and serves concurrent searches, a Backend
// makes every execution engine (CPU, GPUSim, Baseline, Hetero) a
// pluggable component, and the single context-first
// Session.Search(ctx, ...Option) call returns one order-generic
// Report on every path:
//
//	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 1000, Samples: 4000, Seed: 1})
//	if err != nil { ... }
//	sess, err := trigene.NewSession(mx)
//	if err != nil { ... }
//	rep, err := sess.Search(ctx, trigene.WithTopK(5))
//	if err != nil { ... }
//	fmt.Println(rep.Best.SNPs, rep.Best.Score)
//
// The pre-Session entry points (Search, SearchPairs, SearchK,
// SimulateGPU, BaselineSearch, SearchHeterogeneous, PermutationTest*)
// were removed after one deprecation release; see README.md for the
// migration table.
package trigene

import (
	"io"

	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/permtest"
	"trigene/internal/score"
)

// Matrix is a case-control genotype matrix: M SNPs by N samples with
// genotypes in {0,1,2} and phenotypes in {0 control, 1 case}.
type Matrix = dataset.Matrix

// GenConfig parameterizes the synthetic dataset generator.
type GenConfig = dataset.GenConfig

// Interaction plants a third-order epistatic signal in generated data.
type Interaction = dataset.Interaction

// PairInteraction plants a second-order signal in generated data.
type PairInteraction = dataset.PairInteraction

// NewMatrix returns a zeroed M-by-N genotype matrix.
func NewMatrix(m, n int) *Matrix { return dataset.NewMatrix(m, n) }

// Generate builds a synthetic case-control dataset.
func Generate(cfg GenConfig) (*Matrix, error) { return dataset.Generate(cfg) }

// ThresholdPenetrance builds a penetrance table where genotype triples
// carrying at least minMinor minor alleles have case probability high,
// the rest low.
func ThresholdPenetrance(minMinor int, low, high float64) [27]float64 {
	return dataset.ThresholdPenetrance(minMinor, low, high)
}

// XorPenetrance builds a marginal-effect-free parity penetrance table.
func XorPenetrance(low, high float64) [27]float64 {
	return dataset.XorPenetrance(low, high)
}

// ReadText parses the line-oriented dataset text format.
func ReadText(r io.Reader) (*Matrix, error) { return dataset.ReadText(r) }

// WriteText serializes a dataset in the text format.
func WriteText(w io.Writer, mx *Matrix) error { return dataset.WriteText(w, mx) }

// ReadBinary parses the compact binary dataset format.
func ReadBinary(r io.Reader) (*Matrix, error) { return dataset.ReadBinary(r) }

// WriteBinary serializes a dataset in the binary format.
func WriteBinary(w io.Writer, mx *Matrix) error { return dataset.WriteBinary(w, mx) }

// ReadPED parses a PLINK .ped file (samples in rows, two allele
// columns per SNP, phenotype 1=control / 2=case).
func ReadPED(r io.Reader) (*Matrix, error) { return dataset.ReadPED(r) }

// ReadRAW parses a PLINK additive-recode .raw file (samples in rows,
// one 0/1/2 dosage column per SNP, phenotype 1=control / 2=case).
func ReadRAW(r io.Reader) (*Matrix, error) { return dataset.ReadRAW(r) }

// ReadVCF parses a bi-allelic VCF subset; phen supplies per-sample
// phenotypes in header order.
func ReadVCF(r io.Reader, phen []uint8) (*Matrix, error) { return dataset.ReadVCF(r, phen) }

// Approach selects one of the paper's four CPU pipelines (V1Naive,
// V2Split, V3Blocked, V4Vector) or a fused pair-caching variant
// (V3Fused, V4Fused) that hoists the nine (y, z) pair-AND planes out
// of the blocked inner loop.
type Approach = engine.Approach

// The CPU approaches: the paper's four in optimization order, then
// the fused variants of the two blocked pipelines.
const (
	V1Naive   = engine.V1Naive
	V2Split   = engine.V2Split
	V3Blocked = engine.V3Blocked
	V4Vector  = engine.V4Vector
	V3Fused   = engine.V3Fused
	V4Fused   = engine.V4Fused
)

// ParseApproach accepts "V1".."V4", the fused "V3F"/"V4F" (or their
// numeric wire forms "V5"/"V6"), plain digits, or the descriptive
// names "naive", "split", "blocked", "vector", "fused-blocked" and
// "fused", all case-insensitively.
func ParseApproach(s string) (Approach, error) { return engine.ParseApproach(s) }

// ParseGPUKernel accepts "V1".."V4", the fused "V4F" (or its numeric
// wire form "V5"), plain digits, or the descriptive names "naive",
// "split", "transposed", "tiled" and "fused", case-insensitively.
func ParseGPUKernel(s string) (GPUKernel, error) { return gpusim.ParseKernel(s) }

// Objective ranks contingency tables; see NewObjective.
type Objective = score.Objective

// NewObjective returns the named objective: "k2" (Bayesian K2, the
// paper's criterion), "mi" (mutual information) or "gini".
func NewObjective(name string, maxSamples int) (Objective, error) {
	return score.New(name, maxSamples)
}

// GPUDevice describes one GPU from the paper's Table II.
type GPUDevice = device.GPU

// CPUDevice describes one CPU system from the paper's Table I.
type CPUDevice = device.CPU

// GPUs returns the Table II catalog in paper order.
func GPUs() []GPUDevice { return device.AllGPUs() }

// CPUs returns the Table I catalog in paper order.
func CPUs() []CPUDevice { return device.AllCPUs() }

// GPUByID looks up a Table II device by its paper label (e.g. "GN1").
func GPUByID(id string) (GPUDevice, error) { return device.GPUByID(id) }

// CPUByID looks up a Table I device by its paper label (e.g. "CI3").
func CPUByID(id string) (CPUDevice, error) { return device.CPUByID(id) }

// GPUKernel selects one of the paper's four GPU approaches
// (GPUNaive, GPUSplit, GPUTransposed, GPUTiled).
type GPUKernel = gpusim.Kernel

// The four GPU kernels, in the paper's optimization order.
const (
	GPUNaive      = gpusim.K1Naive
	GPUSplit      = gpusim.K2Split
	GPUTransposed = gpusim.K3Transposed
	GPUTiled      = gpusim.K4Tiled
)

// GPUStats aggregates the executed operations, memory behaviour and
// modeled timing of a simulated search (Report.GPU).
type GPUStats = gpusim.Stats

// PermResult summarizes a permutation test
// (Session.PermutationTest).
type PermResult = permtest.Result
