package trigene

import (
	"fmt"

	"trigene/internal/contingency"
	"trigene/internal/obs"
	"trigene/internal/score"
)

// Option configures a Session.Search or Session.PermutationTest call.
// Options are applied in order; a later option overrides an earlier
// one. Invalid combinations are reported by the call itself, so every
// configuration error surfaces through one code path.
type Option func(*searchConfig) error

// searchConfig is the resolved configuration of one call.
type searchConfig struct {
	order       int
	orderSet    bool
	topK        int
	objName     string
	backend     Backend
	backendSet  bool
	approach    Approach
	approachSet bool
	workers     int
	shard       *shardSpec
	progress    func(done, total int64)
	remote      RemoteExecutor
	metrics     *obs.Registry
	trace       bool
	screen      *ScreenSpec

	// Autotuning (WithAutoTune / WithEnergyBudget).
	autotune     bool
	energyBudget float64
	// Planner decisions, filled by Session.applyPlan: the approach to
	// default to, the scheduler tile grain, the heterogeneous claim
	// seeds, and the decision trace attached as Report.Plan.
	plannedApproach Approach
	planGrain       int64
	planGPUGrains   int64
	planInfo        *PlanInfo

	// Permutation-test knobs (ignored by Search).
	permutations int
	seed         int64
	permBatch    int
}

// shardSpec selects shard index of count equal slices of the
// combination-rank space.
type shardSpec struct {
	index, count int
}

func newSearchConfig(opts []Option) (*searchConfig, error) {
	cfg := &searchConfig{order: 3, topK: 1}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("trigene: nil Option")
		}
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.backend == nil {
		cfg.backend = CPU()
	}
	return cfg, nil
}

// objective builds the configured objective for a dataset of n samples
// (default: the paper's Bayesian K2). The returned name is the one
// recorded in Reports.
func (c *searchConfig) objective(n int) (score.Objective, string, error) {
	name := c.objName
	if name == "" {
		name = "k2"
	}
	obj, err := score.New(name, n)
	if err != nil {
		return nil, "", err
	}
	return obj, name, nil
}

// WithOrder sets the interaction order (default 3). Orders 2 and 3 use
// the specialized kernels; 4 and above use the generic k-way engine.
func WithOrder(k int) Option {
	return func(c *searchConfig) error {
		if k < 2 || k > contingency.MaxOrder {
			return fmt.Errorf("trigene: order %d out of [2,%d]", k, contingency.MaxOrder)
		}
		c.order = k
		c.orderSet = true
		return nil
	}
}

// WithTopK sets how many ranked candidates the Report carries
// (default 1). Every backend honors it, including gpusim and hetero,
// whose per-side lists merge bit-exactly.
func WithTopK(n int) Option {
	return func(c *searchConfig) error {
		if n < 1 {
			return fmt.Errorf("trigene: TopK must be positive, got %d", n)
		}
		c.topK = n
		return nil
	}
}

// WithObjective selects the ranking objective by name: "k2" (the
// paper's Bayesian criterion, the default), "mi" (mutual information)
// or "gini".
func WithObjective(name string) Option {
	return func(c *searchConfig) error {
		if _, err := score.New(name, 1); err != nil {
			return err
		}
		c.objName = name
		return nil
	}
}

// WithBackend selects the execution engine (default CPU()). Under
// WithAutoTune an explicit backend is a constraint: the planner tunes
// within it instead of choosing one.
func WithBackend(b Backend) Option {
	return func(c *searchConfig) error {
		if b == nil {
			return fmt.Errorf("trigene: nil Backend")
		}
		c.backend = b
		c.backendSet = true
		return nil
	}
}

// WithAutoTune turns on model-driven planning: before the search
// runs, the paper's analytical machinery (the CARM roofline, the
// per-approach throughput models, the DVFS energy model) picks the
// execution parameters — backend (unless pinned with WithBackend),
// approach, scheduler tile grain, and the heterogeneous split seeds —
// instead of the static defaults. The decision trace is returned as
// Report.Plan. Autotuning steers execution only, never search
// semantics: an autotuned Report is bit-exact with an untuned one.
func WithAutoTune() Option {
	return func(c *searchConfig) error {
		c.autotune = true
		return nil
	}
}

// WithEnergyBudget caps the modeled power draw at the given watts and
// implies WithAutoTune: the planner picks the highest DVFS operating
// point within the budget and derates its throughput predictions
// accordingly (Report.Plan records the chosen clocks and predicted
// draw). This repo cannot set host frequencies; the budget shapes the
// plan, and the trace is the contract a deployment would enforce.
func WithEnergyBudget(watts float64) Option {
	return func(c *searchConfig) error {
		if watts <= 0 {
			return fmt.Errorf("trigene: energy budget must be positive watts, got %g", watts)
		}
		c.autotune = true
		c.energyBudget = watts
		return nil
	}
}

// WithApproach selects the paper's optimization stage V1..V4 — or a
// fused pair-caching variant V3Fused/V4Fused ("V3F"/"V4F") — on
// backends with selectable pipelines: the CPU approaches
// (naive/split/blocked/vector/fused) or the simulated GPU kernels
// (naive/split/transposed/tiled/fused). The default is each backend's
// best (V4F on the CPU, V4 on the GPU). Use ParseApproach or
// ParseGPUKernel to obtain the value from a string.
func WithApproach(v Approach) Option {
	return func(c *searchConfig) error {
		if v < V1Naive || v > V4Fused {
			return fmt.Errorf("trigene: invalid approach %d", int(v))
		}
		c.approach = v
		c.approachSet = true
		return nil
	}
}

// WithShard restricts the search to shard index of count near-equal
// contiguous slices of the scheduler's work space — the primitive that
// distributed deployments partition on. Every backend shards: the
// flat CPU approaches, orders 2 and k, gpusim, baseline and hetero
// slice the combination-rank space; the blocked approaches V3/V4
// slice the block-triple space (see ShardInfo.Space). Running every
// shard and merging the Reports (MergeReports) reproduces the
// unsharded search bit-exactly.
func WithShard(index, count int) Option {
	return func(c *searchConfig) error {
		if count < 1 || index < 0 || index >= count {
			return fmt.Errorf("trigene: invalid shard %d of %d", index, count)
		}
		c.shard = &shardSpec{index: index, count: count}
		return nil
	}
}

// WithProgress installs a progress callback invoked with the
// cumulative number of evaluated combinations and the total. It must
// be safe for concurrent use and return quickly. Progress is reported
// by the CPU backend on every order and approach; other backends
// complete without intermediate callbacks.
func WithProgress(fn func(done, total int64)) Option {
	return func(c *searchConfig) error {
		c.progress = fn
		return nil
	}
}

// WithMetrics attaches a metrics registry to the call: the session
// instruments the dataset store (encoding builds, pack load mode) and
// the CPU engine (tiles and combinations scored per approach, the
// scheduler's claim series) against it, all under "trigene_"-prefixed
// names. The registry is typically shared with an HTTP /metrics
// endpoint via obs.Handler. Instrumentation is allocation-free on the
// hot path — metric pointers are resolved before the worker pool
// starts and updated with atomic adds — so attaching a registry does
// not perturb the throughput being measured. A nil registry is
// allowed and equivalent to omitting the option.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *searchConfig) error {
		c.metrics = reg
		return nil
	}
}

// WithTrace records the call's phase timeline — plan, encode, search,
// and (after MergeReports) merge spans — and attaches it to the Report
// as Trace. The trace travels with the Report through the JSON wire
// format. Tracing costs a handful of clock reads per call; it never
// touches the per-combination hot path.
func WithTrace() Option {
	return func(c *searchConfig) error {
		c.trace = true
		return nil
	}
}

// WithCluster routes the search to a cluster through the given
// executor (typically internal/cluster.Client pointed at a trigened
// coordinator): the dataset and the serialized configuration
// (SearchSpec) are submitted as a job, workers lease and execute
// tiles, and the merged Report comes back bit-exact with a local run
// of the same configuration. The other options keep their meaning —
// WithBackend/WithOrder/WithApproach select what every worker runs,
// WithWorkers the per-node parallelism. WithShard and WithProgress do
// not combine with WithCluster: the cluster owns the partitioning, and
// progress is observed by polling the job status.
func WithCluster(exec RemoteExecutor) Option {
	return func(c *searchConfig) error {
		if exec == nil {
			return fmt.Errorf("trigene: nil RemoteExecutor")
		}
		c.remote = exec
		return nil
	}
}

// WithWorkers sets the host parallelism (default: all cores). On the
// baseline backend this is the number of static "MPI ranks".
func WithWorkers(n int) Option {
	return func(c *searchConfig) error {
		if n < 1 {
			return fmt.Errorf("trigene: workers must be positive, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithPermutations sets the relabeling count of a PermutationTest
// (default 1000). Search ignores it.
func WithPermutations(n int) Option {
	return func(c *searchConfig) error {
		if n < 1 {
			return fmt.Errorf("trigene: permutations must be positive, got %d", n)
		}
		c.permutations = n
		return nil
	}
}

// WithSeed fixes the RNG seed of a PermutationTest, making it
// reproducible. Search ignores it.
func WithSeed(seed int64) Option {
	return func(c *searchConfig) error {
		c.seed = seed
		return nil
	}
}

// WithPermBatch sets how many permuted phenotype planes the bit-plane
// permutation kernel counts per pass (default: an L1-cache-sized batch
// derived from the sample count). Results are bit-identical for every
// batch size; this is a tuning knob for benchmarks and unusual cache
// hierarchies. Search ignores it.
func WithPermBatch(n int) Option {
	return func(c *searchConfig) error {
		if n < 1 {
			return fmt.Errorf("trigene: permutation batch must be positive, got %d", n)
		}
		c.permBatch = n
		return nil
	}
}
