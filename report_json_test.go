package trigene

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// goldenReport is a fully populated Report as built by a sharded
// simulated-GPU search.
func goldenReport() *Report {
	var gpu GPUStats
	gpu.Combinations = 120
	gpu.Elements = 480000
	gpu.Transactions = 77
	gpu.ModelSeconds = 0.25
	gpu.ElementsPerSec = 1920000
	gpu.ElementsPerCyclePer.CU = 1.5
	gpu.ElementsPerCyclePer.StreamCore = 0.25
	return &Report{
		Backend:   "gpusim:GN1",
		Approach:  "V4",
		Objective: "k2",
		Order:     3,
		Best:      SearchCandidate{SNPs: []int{3, 9, 15}, Score: 1234.5},
		TopK: []SearchCandidate{
			{SNPs: []int{3, 9, 15}, Score: 1234.5},
			{SNPs: []int{1, 2, 3}, Score: 1200.25},
		},
		topK:           5, // requested depth, deeper than the list
		Combinations:   120,
		Elements:       480000,
		Duration:       1500 * time.Millisecond,
		ElementsPerSec: 1920000,
		Shard:          &ShardInfo{Index: 1, Count: 4, Lo: 30, Hi: 60, Space: ShardSpaceRanks},
		GPU:            &gpu,
		Hetero:         &HeteroInfo{CPUFraction: 0.375, ModeledCombinedGElems: 3300},
		Screen: &ScreenInfo{
			PairsScanned: 276,
			Survivors:    12,
			SeedPairs:    4,
			Threshold:    987.125,
			Stage1Ns:     25000000,
			Stage2Ns:     75000000,
		},
	}
}

// goldenReportJSON pins the wire format: any change to these bytes is
// a breaking change of the cluster protocol and of the `trigened
// result` / `epistasis -json` output.
const goldenReportJSON = `{"backend":"gpusim:GN1","approach":"V4","objective":"k2","order":3,` +
	`"best":{"snps":[3,9,15],"score":1234.5},` +
	`"topK":[{"snps":[3,9,15],"score":1234.5},{"snps":[1,2,3],"score":1200.25}],"topKLimit":5,` +
	`"combinations":120,"elements":480000,"durationNs":1500000000,"elementsPerSec":1920000,` +
	`"shard":{"index":1,"count":4,"lo":30,"hi":60,"space":"combination-ranks"},` +
	`"gpu":{"combinations":120,"elements":480000,"aluOps":0,"popcntOps":0,"loads":0,` +
	`"requestedBytes":0,"transactions":77,"l2Hits":0,"l2Misses":0,"l2Bytes":0,"dramBytes":0,` +
	`"scheduledThreads":0,"activeThreads":0,"utilization":0,` +
	`"computeCycles":0,"memoryCycles":0,"cycles":0,"modelSeconds":0.25,` +
	`"elementsPerSec":1920000,"elementsPerCyclePer":{"cu":1.5,"streamCore":0.25}},` +
	`"hetero":{"cpuFraction":0.375,"modeledCombinedGElems":3300},` +
	`"screen":{"pairsScanned":276,"survivors":12,"seedPairs":4,"threshold":987.125,` +
	`"stage1Ns":25000000,"stage2Ns":75000000}}`

// TestReportJSONGolden pins the serialized bytes and the round trip:
// marshal matches the golden string, unmarshal reproduces the exported
// fields, and a re-marshal is byte-identical.
func TestReportJSONGolden(t *testing.T) {
	rep := goldenReport()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != goldenReportJSON {
		t.Errorf("wire format drifted:\n got %s\nwant %s", raw, goldenReportJSON)
	}

	var back Report
	if err := json.Unmarshal([]byte(goldenReportJSON), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, rep) {
		t.Errorf("round trip changed the report:\n got %+v\nwant %+v", back, *rep)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != goldenReportJSON {
		t.Errorf("re-marshal drifted:\n got %s", again)
	}
}

// goldenPlan is a fully populated autotune decision trace, as built
// by a budgeted heterogeneous plan.
func goldenPlan() *PlanInfo {
	return &PlanInfo{
		Backend:               "hetero",
		Approach:              "V4",
		Workers:               72,
		Grain:                 4096,
		CPUFraction:           0.25,
		GPUGrains:             12,
		PredictedCPUGElems:    822.5,
		PredictedGPUGElems:    2467.5,
		PredictedCombosPerSec: 200000,
		PredictedTilesPerSec:  48.83,
		EnergyBudgetWatts:     350,
		TargetCPUGHz:          2.1,
		TargetGPUGHz:          1.2,
		PredictedWatts:        349.5,
		CPUDevice:             "CI3",
		GPUDevice:             "GN1",
		Reason:                "split CI3:GN1 at 25% CPU by modeled throughput",
	}
}

// goldenPlanJSON pins the "plan" key of the wire format.
const goldenPlanJSON = `"plan":{"backend":"hetero","approach":"V4","workers":72,"grain":4096,` +
	`"cpuFraction":0.25,"gpuGrains":12,"predictedCpuGElems":822.5,"predictedGpuGElems":2467.5,` +
	`"predictedCombosPerSec":200000,"predictedTilesPerSec":48.83,"energyBudgetWatts":350,` +
	`"targetCpuGHz":2.1,"targetGpuGHz":1.2,"predictedWatts":349.5,` +
	`"cpuDevice":"CI3","gpuDevice":"GN1","reason":"split CI3:GN1 at 25% CPU by modeled throughput"}`

// TestReportJSONPlanGolden: an autotuned Report carries its decision
// trace on the wire, byte-stable and round-trip clean. (The plan-less
// goldens above prove the key is absent when no planner ran.)
func TestReportJSONPlanGolden(t *testing.T) {
	rep := goldenReport()
	rep.Plan = goldenPlan()
	// The wire struct orders "plan" before "screen".
	at := strings.Index(goldenReportJSON, `"screen":`)
	want := goldenReportJSON[:at] + goldenPlanJSON + "," + goldenReportJSON[at:]

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != want {
		t.Errorf("plan wire format drifted:\n got %s\nwant %s", raw, want)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, rep) {
		t.Errorf("plan round trip changed the report:\n got %+v\nwant %+v", back, *rep)
	}
	if !reflect.DeepEqual(back.Plan, rep.Plan) {
		t.Errorf("plan round trip: %+v != %+v", back.Plan, rep.Plan)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(raw) {
		t.Errorf("plan re-marshal drifted:\n got %s", again)
	}

	// A merge of deserialized shard Reports keeps the trace.
	merged, err := MergeReports(&back, &back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Plan, rep.Plan) {
		t.Errorf("merge dropped the plan: %+v", merged.Plan)
	}
}

// goldenTraceJSON pins the "trace" key of the wire format.
const goldenTraceJSON = `"trace":{"spans":[` +
	`{"name":"plan","startNs":0,"durationNs":2000000},` +
	`{"name":"search","startNs":2000000,"durationNs":1498000000},` +
	`{"name":"encode","startNs":2000000,"durationNs":40000000},` +
	`{"name":"merge","startNs":1500000000,"durationNs":3000000}]}`

// TestReportJSONTraceGolden: a traced Report (WithTrace) carries its
// phase timeline on the wire, byte-stable and round-trip clean. (The
// trace-less goldens above prove the key is absent when tracing is
// off.)
func TestReportJSONTraceGolden(t *testing.T) {
	rep := goldenReport()
	rep.Trace = &TraceInfo{Spans: []TraceSpan{
		{Name: "plan", StartNs: 0, DurationNs: 2e6},
		{Name: "search", StartNs: 2e6, DurationNs: 1498e6},
		{Name: "encode", StartNs: 2e6, DurationNs: 40e6},
		{Name: "merge", StartNs: 1500e6, DurationNs: 3e6},
	}}
	want := goldenReportJSON[:len(goldenReportJSON)-1] + "," + goldenTraceJSON + "}"

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != want {
		t.Errorf("trace wire format drifted:\n got %s\nwant %s", raw, want)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, rep) {
		t.Errorf("trace round trip changed the report:\n got %+v\nwant %+v", back, *rep)
	}
	if !reflect.DeepEqual(back.Trace, rep.Trace) {
		t.Errorf("trace round trip: %+v != %+v", back.Trace, rep.Trace)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(raw) {
		t.Errorf("trace re-marshal drifted:\n got %s", again)
	}

	// A merge of deserialized shard Reports keeps the timeline and
	// appends its own "merge" span after the last recorded one.
	merged, err := MergeReports(&back, &back)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Trace == nil {
		t.Fatal("merge dropped the trace")
	}
	spans := merged.Trace.Spans
	last := spans[len(spans)-1]
	if last.Name != "merge" {
		t.Errorf("merged trace does not end in a merge span: %+v", spans)
	}
	if len(spans) != len(rep.Trace.Spans)+1 {
		t.Errorf("merged trace has %d spans, want %d", len(spans), len(rep.Trace.Spans)+1)
	}
	if want := int64(1503e6); last.StartNs != want {
		t.Errorf("merge span starts at %d, want %d (end of the prior timeline)", last.StartNs, want)
	}
}

// TestReportJSONSparse: a minimal report (no shard/GPU/hetero, no
// candidates) omits its optional keys and survives the round trip.
func TestReportJSONSparse(t *testing.T) {
	rep := &Report{Backend: "cpu", Approach: "V2", Objective: "mi", Order: 2}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"backend":"cpu","approach":"V2","objective":"mi","order":2,` +
		`"best":{"snps":null,"score":0},"combinations":0,"elements":0,"durationNs":0,"elementsPerSec":0}`
	if string(raw) != want {
		t.Errorf("sparse wire format:\n got %s\nwant %s", raw, want)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, rep) {
		t.Errorf("sparse round trip changed the report: %+v", back)
	}
}

// TestReportJSONValueAndPointer: the codec applies whether the Report
// is marshaled as a value or through a pointer (both appear in
// handlers and tools).
func TestReportJSONValueAndPointer(t *testing.T) {
	rep := goldenReport()
	byValue, err := json.Marshal(*rep)
	if err != nil {
		t.Fatal(err)
	}
	byPointer, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(byValue) != string(byPointer) {
		t.Errorf("value/pointer marshal disagree:\n%s\n%s", byValue, byPointer)
	}
}
