package trigene

import (
	"context"
	"fmt"
	"sort"
	"time"

	"trigene/internal/engine"
	"trigene/internal/obs"
	"trigene/internal/sched"
	"trigene/internal/score"
	"trigene/internal/topk"
)

// Two-stage screened search. Stage 1 scans all C(M,2) pairs with the
// cheap 9-cell pair kernel, charging each pair's score to both
// participating SNPs; the top-S SNPs by best participating pair score
// survive (optionally with a seed list of top pairs). Stage 2 runs the
// full triple engine only over the survivors — a C(S,3) space instead
// of C(M,3) — plus, in seeded mode, every (seed pair, third SNP)
// extension outside it. The pruning decision is recorded as
// Report.Screen so results stay auditable.

// ScreenSpec configures the screen (WithScreen). Exactly how the
// survivor budget is set:
//
//   - MaxSurvivors > 0 keeps the top-S SNPs deterministically;
//   - BudgetSeconds > 0 (with MaxSurvivors 0) lets the planner derive
//     S from its cost models under the time budget — and decline the
//     screen entirely when exhaustive search fits the budget
//     (Report.Screen.Declined records why);
//   - Survivors/Seeds pin the stage-2 space outright, skipping stage 1
//     (the form cluster coordinators use for stage-2 grants).
//
// SeedPairs additionally keeps the top pairs of the scan as seeds and
// extends each by every third SNP, so a strong pair whose partners
// were pruned still surfaces (order-3 searches only).
type ScreenSpec struct {
	// MaxSurvivors is the survivor budget S (0 = planner-derived from
	// BudgetSeconds).
	MaxSurvivors int `json:"maxSurvivors,omitempty"`
	// SeedPairs is how many top pairs to keep as stage-2 seeds (0 =
	// none).
	SeedPairs int `json:"seedPairs,omitempty"`
	// BudgetSeconds is the end-to-end time budget the planner sizes the
	// screen for when MaxSurvivors is 0.
	BudgetSeconds float64 `json:"budgetSeconds,omitempty"`
	// Survivors pins the survivor set directly (strictly increasing SNP
	// indices); stage 1 is skipped. Set by cluster stage-2 grants.
	Survivors []int `json:"survivors,omitempty"`
	// Seeds pins the seed pair list (each {i, j} with i < j), used with
	// Survivors.
	Seeds [][2]int `json:"seeds,omitempty"`
}

// pinned reports whether the spec carries a pre-computed stage-2 space.
func (sp *ScreenSpec) pinned() bool { return len(sp.Survivors) > 0 }

// validate checks the m-independent invariants (WithScreen and submit
// validation share it).
func (sp *ScreenSpec) validate() error {
	if sp.MaxSurvivors < 0 {
		return fmt.Errorf("trigene: negative screen survivor budget %d", sp.MaxSurvivors)
	}
	if sp.SeedPairs < 0 {
		return fmt.Errorf("trigene: negative screen seed count %d", sp.SeedPairs)
	}
	if sp.BudgetSeconds < 0 {
		return fmt.Errorf("trigene: negative screen budget %gs", sp.BudgetSeconds)
	}
	if sp.MaxSurvivors == 0 && sp.BudgetSeconds == 0 && !sp.pinned() {
		return fmt.Errorf("trigene: empty ScreenSpec: set MaxSurvivors, BudgetSeconds or Survivors")
	}
	for i, p := range sp.Seeds {
		if p[0] < 0 || p[0] >= p[1] {
			return fmt.Errorf("trigene: invalid screen seed pair (%d,%d)", p[0], p[1])
		}
		_ = i
	}
	return nil
}

// validateFor checks the spec against a concrete dataset of m SNPs.
func (sp *ScreenSpec) validateFor(m int) error {
	if err := sp.validate(); err != nil {
		return err
	}
	if sp.MaxSurvivors > m {
		return fmt.Errorf("trigene: screen survivor budget %d exceeds the dataset's %d SNPs", sp.MaxSurvivors, m)
	}
	for i, c := range sp.Survivors {
		if c < 0 || c >= m {
			return fmt.Errorf("trigene: pinned survivor %d out of range [0,%d)", c, m)
		}
		if i > 0 && sp.Survivors[i-1] >= c {
			return fmt.Errorf("trigene: pinned survivors must be strictly increasing (%d after %d)", c, sp.Survivors[i-1])
		}
	}
	for _, p := range sp.Seeds {
		if p[1] >= m {
			return fmt.Errorf("trigene: screen seed pair (%d,%d) out of range for %d SNPs", p[0], p[1], m)
		}
	}
	return nil
}

// Validate checks the spec loudly against a dataset of the given SNP
// count — the submit-time validation cluster coordinators and the CLIs
// run so a bad screen fails at the door, not on the first worker. A
// snps of 0 checks only the dataset-independent invariants (negative
// budgets, malformed seed pairs, an empty spec).
func (sp ScreenSpec) Validate(snps int) error {
	if snps > 0 {
		return sp.validateFor(snps)
	}
	return sp.validate()
}

// WithScreen turns Session.Search into a two-stage screened search
// under the given spec. A permissive screen (MaxSurvivors = M) keeps
// every SNP and reproduces the unscreened result bit-exactly; smaller
// budgets trade exhaustiveness for the C(M,3)→C(S,3) collapse, with
// the decision audited in Report.Screen.
func WithScreen(spec ScreenSpec) Option {
	return func(c *searchConfig) error {
		if err := spec.validate(); err != nil {
			return err
		}
		sc := spec
		sc.Survivors = append([]int(nil), spec.Survivors...)
		sc.Seeds = append([][2]int(nil), spec.Seeds...)
		c.screen = &sc
		return nil
	}
}

// ScreenInfo is the Report's record of a screened search: what stage 1
// scanned, what survived, and where the time went. It travels the JSON
// wire under the stable "screen" key and is carried through
// MergeReports (shards of one screened job run the identical
// deterministic stage 1).
type ScreenInfo struct {
	// PairsScanned is the number of pairs stage 1 scored (0 when the
	// screen was declined or the stage-2 space was pinned).
	PairsScanned int64 `json:"pairsScanned"`
	// Survivors is the survivor count S.
	Survivors int `json:"survivors"`
	// SeedPairs is the seed list length of the seeded mode.
	SeedPairs int `json:"seedPairs,omitempty"`
	// Threshold is the best-participating-pair score of the weakest
	// survivor — the pruning cut line.
	Threshold float64 `json:"threshold"`
	// Stage1Ns and Stage2Ns split the wall time between the pair scan
	// and the triple search.
	Stage1Ns int64 `json:"stage1Ns"`
	Stage2Ns int64 `json:"stage2Ns"`
	// Declined records a planner decision not to screen (the search ran
	// exhaustively); Reason says why.
	Declined bool   `json:"declined,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// ScreenScores is the wire-safe outcome of a stage-1 scan: per-SNP
// best participating pair scores (Seen gates entries a sharded scan
// never touched — JSON cannot carry NaN), the scanned pair count, and
// the seed candidates. Cluster coordinators merge the per-shard scores
// elementwise and select survivors exactly like a local run.
type ScreenScores struct {
	// SNPs is M; Best and Seen have this length.
	SNPs int       `json:"snps"`
	Best []float64 `json:"best"`
	Seen []bool    `json:"seen"`
	// Objective names the ranking criterion the scores were computed
	// under; Merge and SelectSurvivors rebuild the ordering from it.
	Objective string `json:"objective"`
	// Pairs is how many pairs this scan scored.
	Pairs int64 `json:"pairs"`
	// TopPairs holds the scan's best pairs, best first (seed
	// candidates).
	TopPairs []SearchCandidate `json:"topPairs,omitempty"`
	// TopPairLimit is the requested seed depth (so merges of short
	// shard lists still fill it).
	TopPairLimit int `json:"topPairLimit,omitempty"`
	// DurationNs is the scan's wall time.
	DurationNs int64 `json:"durationNs"`
}

// MergeScreens combines sharded stage-1 scans into the full scan's
// scores: per-SNP bests merge elementwise under the shared objective,
// pair counts sum, and the seed lists re-rank. The result is bit-exact
// with an unsharded scan.
func MergeScreens(scores ...*ScreenScores) (*ScreenScores, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("trigene: MergeScreens needs at least one scan")
	}
	base := scores[0]
	if base == nil {
		return nil, fmt.Errorf("trigene: MergeScreens got a nil scan")
	}
	obj, err := score.New(base.Objective, 1)
	if err != nil {
		return nil, fmt.Errorf("trigene: MergeScreens: scan carries no usable objective: %w", err)
	}
	out := &ScreenScores{
		SNPs:      base.SNPs,
		Best:      make([]float64, base.SNPs),
		Seen:      make([]bool, base.SNPs),
		Objective: base.Objective,
	}
	cmp := candidateCmp(obj)
	k := 0
	for _, sc := range scores {
		if sc == nil {
			return nil, fmt.Errorf("trigene: MergeScreens got a nil scan")
		}
		if sc.SNPs != base.SNPs || sc.Objective != base.Objective {
			return nil, fmt.Errorf("trigene: cannot merge a %d-SNP %s scan with a %d-SNP %s scan",
				sc.SNPs, sc.Objective, base.SNPs, base.Objective)
		}
		if sc.TopPairLimit > k {
			k = sc.TopPairLimit
		}
	}
	if k == 0 {
		for _, sc := range scores {
			if len(sc.TopPairs) > k {
				k = len(sc.TopPairs)
			}
		}
	}
	out.TopPairLimit = k
	for _, sc := range scores {
		for i := 0; i < base.SNPs; i++ {
			if i >= len(sc.Seen) || !sc.Seen[i] {
				continue
			}
			if !out.Seen[i] || obj.Better(sc.Best[i], out.Best[i]) {
				out.Best[i], out.Seen[i] = sc.Best[i], true
			}
		}
		for _, c := range sc.TopPairs {
			out.TopPairs = topk.Insert(out.TopPairs, c, k, cmp)
		}
		out.Pairs += sc.Pairs
		out.DurationNs += sc.DurationNs
	}
	return out, nil
}

// SelectSurvivors picks the top-S SNPs by best participating pair
// score, deterministically (objective order, SNP index as tie-break),
// and returns them in ascending index order with the cut-line score.
// Fewer than S scored SNPs returns them all.
func (sc *ScreenScores) SelectSurvivors(s int) (survivors []int, threshold float64, err error) {
	obj, err := score.New(sc.Objective, 1)
	if err != nil {
		return nil, 0, fmt.Errorf("trigene: scan carries no usable objective: %w", err)
	}
	idx := make([]int, 0, sc.SNPs)
	for i := 0; i < sc.SNPs && i < len(sc.Seen); i++ {
		if sc.Seen[i] {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if sc.Best[ia] != sc.Best[ib] {
			return obj.Better(sc.Best[ia], sc.Best[ib])
		}
		return ia < ib
	})
	if s < len(idx) {
		idx = idx[:s]
	}
	if len(idx) > 0 {
		threshold = sc.Best[idx[len(idx)-1]]
	}
	sort.Ints(idx)
	return idx, threshold, nil
}

// SeedList converts the scan's top pairs into a pinned seed list for a
// ScreenSpec, capped at n.
func (sc *ScreenScores) SeedList(n int) [][2]int {
	if n > len(sc.TopPairs) {
		n = len(sc.TopPairs)
	}
	seeds := make([][2]int, 0, n)
	for _, c := range sc.TopPairs[:n] {
		if len(c.SNPs) == 2 {
			seeds = append(seeds, [2]int{c.SNPs[0], c.SNPs[1]})
		}
	}
	return seeds
}

// ScreenStage1 runs the stage-1 pairwise scan by itself and returns
// its wire-safe scores — the entry point cluster workers execute for a
// screened job's stage-1 tiles. Relevant options: WithObjective (must
// match the job), WithWorkers, WithShard (slices the pair-rank space;
// per-shard scores merge with MergeScreens), WithMetrics. seedPairs
// bounds the scan's seed-candidate list (0 = none).
func (s *Session) ScreenStage1(ctx context.Context, seedPairs int, opts ...Option) (*ScreenScores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := newSearchConfig(opts)
	if err != nil {
		return nil, err
	}
	if seedPairs < 0 {
		return nil, fmt.Errorf("trigene: negative screen seed count %d", seedPairs)
	}
	obj, objName, err := cfg.objective(s.Samples())
	if err != nil {
		return nil, err
	}
	eopts := engine.Options{
		Workers:   cfg.workers,
		Objective: obj,
		TopK:      seedPairs,
		Context:   ctx,
		Metrics:   cfg.metrics,
	}
	if cfg.shard != nil {
		eopts.Shard = &sched.Shard{Index: cfg.shard.index, Count: cfg.shard.count}
	}
	res, err := s.searcher.RunPairScreen(eopts)
	if err != nil {
		return nil, err
	}
	return screenScores(res, objName, seedPairs), nil
}

// screenScores converts an engine ScreenResult into the wire shape.
func screenScores(res *engine.ScreenResult, objName string, seedPairs int) *ScreenScores {
	sc := &ScreenScores{
		SNPs:         res.SNPs,
		Best:         res.Best,
		Seen:         res.Seen,
		Objective:    objName,
		Pairs:        res.Stats.Combinations,
		TopPairLimit: seedPairs,
		DurationNs:   res.Stats.Duration.Nanoseconds(),
	}
	for _, c := range res.TopPairs {
		sc.TopPairs = append(sc.TopPairs, SearchCandidate{SNPs: []int{c.Pair.I, c.Pair.J}, Score: c.Score})
	}
	return sc
}

// searchScreened orchestrates the two-stage pipeline inside a Search
// call: decide (or accept) the survivor budget, run stage 1, gather
// the survivors into a compact sub-session, run the configured backend
// unchanged over it, remap candidate indices back, fold in the seeded
// extensions, and attach the audit record.
func (s *Session) searchScreened(ctx context.Context, cfg *searchConfig, tr *obs.Trace) (*Report, error) {
	spec := cfg.screen
	m := s.SNPs()
	if err := spec.validateFor(m); err != nil {
		return nil, err
	}
	if spec.SeedPairs > 0 && cfg.order != 3 {
		return nil, fmt.Errorf("trigene: screen seed pairs extend to triples; they require order 3, have %d", cfg.order)
	}
	info := &ScreenInfo{}

	// Resolve the survivor set: pinned, user-budgeted, or
	// planner-derived (which may decline the screen).
	var survivors []int
	var seeds [][2]int
	switch {
	case spec.pinned():
		survivors = spec.Survivors
		seeds = spec.Seeds
		info.Survivors = len(survivors)
		info.SeedPairs = len(seeds)
	default:
		budget := spec.MaxSurvivors
		if budget == 0 {
			dec, err := s.decideScreen(cfg, spec.BudgetSeconds)
			if err != nil {
				return nil, err
			}
			if dec.Decline {
				info.Declined = true
				info.Reason = dec.Reason
				rep, err := cfg.backend.search(ctx, s, cfg)
				if err != nil {
					return nil, err
				}
				rep.Screen = info
				return rep, nil
			}
			info.Reason = dec.Reason
			budget = dec.Survivors
			if budget > m {
				budget = m
			}
		}
		screenDone := tr.Start("screen")
		stage1 := time.Now()
		scores, err := s.ScreenStage1(ctx, spec.SeedPairs,
			screenStage1Options(cfg)...)
		if err != nil {
			screenDone()
			return nil, err
		}
		survivors, info.Threshold, err = scores.SelectSurvivors(budget)
		if err != nil {
			screenDone()
			return nil, err
		}
		seeds = scores.SeedList(spec.SeedPairs)
		screenDone()
		info.PairsScanned = scores.Pairs
		info.Survivors = len(survivors)
		info.SeedPairs = len(seeds)
		info.Stage1Ns = time.Since(stage1).Nanoseconds()
		observeScreen(cfg.metrics, scores.Pairs, len(survivors), time.Duration(info.Stage1Ns))
	}
	if len(survivors) < cfg.order {
		return nil, fmt.Errorf("trigene: screen kept %d survivors, fewer than the order-%d search needs", len(survivors), cfg.order)
	}

	// Stage 2: the configured backend runs unchanged over the gathered
	// survivor columns; candidates come back in subset positions.
	stage2 := time.Now()
	sub, err := s.searcher.Subset(survivors)
	if err != nil {
		return nil, err
	}
	subSession := &Session{store: sub.Store(), searcher: sub}
	rep, err := cfg.backend.search(ctx, subSession, cfg)
	if err != nil {
		return nil, err
	}
	remapCandidates(rep, survivors)

	// Seeded extensions run over the original indices and fold into the
	// ranked list; triples fully inside the survivor set are skipped
	// (stage 2 already scored them).
	if len(seeds) > 0 {
		if err := s.runSeeded(ctx, cfg, rep, survivors, seeds); err != nil {
			return nil, err
		}
	}
	info.Stage2Ns = time.Since(stage2).Nanoseconds()
	rep.Screen = info
	return rep, nil
}

// screenStage1Options derives the stage-1 option list from the
// configured call. A locally sharded screened search (WithShard +
// WithScreen) runs the FULL deterministic stage 1 on every shard —
// identical survivor sets — and shards only stage 2, so shard merges
// stay bit-exact; cluster deployments shard stage 1 as its own phase
// through ScreenStage1 instead.
func screenStage1Options(cfg *searchConfig) []Option {
	opts := []Option{WithMetrics(cfg.metrics)}
	if cfg.workers > 0 {
		opts = append(opts, WithWorkers(cfg.workers))
	}
	if cfg.objName != "" {
		opts = append(opts, WithObjective(cfg.objName))
	}
	return opts
}

// runSeeded executes the seeded extension scan and merges it into the
// stage-2 report.
func (s *Session) runSeeded(ctx context.Context, cfg *searchConfig, rep *Report, survivors []int, seeds [][2]int) error {
	obj, _, err := cfg.objective(s.Samples())
	if err != nil {
		return err
	}
	inSubset := make([]bool, s.SNPs())
	for _, c := range survivors {
		inSubset[c] = true
	}
	eseeds := make([]engine.Pair, len(seeds))
	for i, p := range seeds {
		eseeds[i] = engine.Pair{I: p[0], J: p[1]}
	}
	eopts := engine.Options{
		Workers:   cfg.workers,
		Objective: obj,
		TopK:      cfg.topK,
		Context:   ctx,
		Metrics:   cfg.metrics,
	}
	if cfg.shard != nil {
		eopts.Shard = &sched.Shard{Index: cfg.shard.index, Count: cfg.shard.count}
	}
	res, err := s.searcher.RunSeeded(eseeds, inSubset, eopts)
	if err != nil {
		return err
	}
	cmp := candidateCmp(obj)
	for _, c := range res.TopK {
		rep.TopK = topk.Insert(rep.TopK, SearchCandidate{
			SNPs:  []int{c.Triple.I, c.Triple.J, c.Triple.K},
			Score: c.Score,
		}, cfg.topK, cmp)
	}
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	}
	rep.Combinations += res.Stats.Combinations
	rep.Elements += res.Stats.Elements
	return nil
}

// remapCandidates translates subset-position candidate indices back to
// original SNP indices through the ascending survivor list (which
// preserves order, so tie-breaks agree with an unscreened run).
func remapCandidates(rep *Report, survivors []int) {
	remap := func(c *SearchCandidate) {
		for i, p := range c.SNPs {
			if p >= 0 && p < len(survivors) {
				c.SNPs[i] = survivors[p]
			}
		}
	}
	for i := range rep.TopK {
		remap(&rep.TopK[i])
	}
	// Best aliases TopK[0]'s SNP slice on every backend; reassign rather
	// than remap it a second time through the survivor list.
	if len(rep.TopK) > 0 {
		rep.Best = rep.TopK[0]
	} else {
		remap(&rep.Best)
	}
}

// decideScreen consults the planner's two-stage cost model for a
// budget-only spec.
func (s *Session) decideScreen(cfg *searchConfig, budgetSec float64) (*screenDecision, error) {
	return planScreen(s.SNPs(), s.Samples(), cfg, budgetSec)
}

// observeScreen records the stage-1 counters: pairs scanned, survivors
// kept, and the scan's wall time. A nil registry is a no-op.
func observeScreen(reg *obs.Registry, pairs int64, survivors int, d time.Duration) {
	reg.Counter("trigene_screen_pairs_total", "Pairs scanned by stage-1 screens.").Add(pairs)
	reg.Gauge("trigene_screen_survivors", "Survivor count of the most recent stage-1 screen.").Set(float64(survivors))
	reg.Histogram("trigene_screen_seconds", "Stage-1 screen wall time in seconds.", obs.DurationBuckets).Observe(d.Seconds())
}
