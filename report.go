package trigene

import (
	"fmt"
	"time"

	"trigene/internal/score"
	"trigene/internal/topk"
)

// SearchCandidate is a scored SNP combination of any interaction
// order, the order-generic currency of the Report type.
type SearchCandidate struct {
	// SNPs holds the strictly increasing SNP indices of the
	// combination (length = Report.Order).
	SNPs []int `json:"snps"`
	// Score is the candidate's value under the Report's objective.
	Score float64 `json:"score"`
}

// Shard space units: what the ranks in ShardInfo.Lo/Hi count.
const (
	// ShardSpaceRanks: colexicographic combination ranks (flat CPU
	// approaches, orders 2 and k, gpusim, baseline, hetero).
	ShardSpaceRanks = "combination-ranks"
	// ShardSpaceBlocks: block-triple ranks (the blocked CPU approaches
	// V3/V4, whose cache tiles are the indivisible work unit).
	ShardSpaceBlocks = "block-triples"
)

// ShardInfo records which slice of the scheduler's work space a
// sharded Report covers.
type ShardInfo struct {
	// Index and Count identify the shard: slice Index of Count.
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo and Hi are the covered ranks [Lo, Hi) in Space units.
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// Space names the rank units: ShardSpaceRanks or ShardSpaceBlocks.
	Space string `json:"space"`
}

// PlanInfo is the decision trace of a model-driven autotuned search
// (WithAutoTune / WithEnergyBudget): what the planner chose, what the
// paper's models predicted, and — under an energy budget — the DVFS
// operating point. It records the decisions actually taken by the run
// that produced the Report; predictions are model outputs, never
// measurements.
type PlanInfo struct {
	// Backend and Approach are the planned engine and pipeline.
	Backend  string `json:"backend"`
	Approach string `json:"approach,omitempty"`
	// Workers is the CPU pool size the predictions assume.
	Workers int `json:"workers,omitempty"`
	// Grain is the scheduler tile size in ranks per claim.
	Grain int64 `json:"grain,omitempty"`
	// CPUFraction is the modeled CPU share (1 pure CPU, 0 pure GPU,
	// the throughput-proportional split on hetero plans); GPUGrains is
	// the device's seeded claim multiplier on a shared cursor.
	CPUFraction float64 `json:"cpuFraction,omitempty"`
	GPUGrains   int64   `json:"gpuGrains,omitempty"`
	// Predicted* are the model's throughput projections: per side in
	// G elements/s, and combined in scheduler currency.
	PredictedCPUGElems    float64 `json:"predictedCpuGElems,omitempty"`
	PredictedGPUGElems    float64 `json:"predictedGpuGElems,omitempty"`
	PredictedCombosPerSec float64 `json:"predictedCombosPerSec,omitempty"`
	PredictedTilesPerSec  float64 `json:"predictedTilesPerSec,omitempty"`
	// EnergyBudgetWatts echoes WithEnergyBudget; TargetCPUGHz /
	// TargetGPUGHz are the chosen DVFS clocks and PredictedWatts the
	// modeled draw at that operating point.
	EnergyBudgetWatts float64 `json:"energyBudgetWatts,omitempty"`
	TargetCPUGHz      float64 `json:"targetCpuGHz,omitempty"`
	TargetGPUGHz      float64 `json:"targetGpuGHz,omitempty"`
	PredictedWatts    float64 `json:"predictedWatts,omitempty"`
	// CPUDevice and GPUDevice name the device models consulted.
	CPUDevice string `json:"cpuDevice,omitempty"`
	GPUDevice string `json:"gpuDevice,omitempty"`
	// Reason is the human-readable decision trace.
	Reason string `json:"reason,omitempty"`
}

// HeteroInfo carries the heterogeneous backend's split accounting.
type HeteroInfo struct {
	// CPUFraction is the fraction of the evaluated ranks the CPU
	// engine scored; the rest ran on the simulated GPU. On the default
	// work-stealing run it is the realized split, not a configured
	// one.
	CPUFraction float64 `json:"cpuFraction"`
	// ModeledCombinedGElems is the device pair's projected joint
	// throughput in G elements/s (the paper's Section V-D estimate).
	ModeledCombinedGElems float64 `json:"modeledCombinedGElems"`
}

// TraceSpan is one timed phase of a search, offset-based so spans
// from one trace order and nest without wall-clock comparisons.
type TraceSpan struct {
	// Name identifies the phase: "plan", "encode", "search" or
	// "merge".
	Name string `json:"name"`
	// StartNs is the span's start offset from the trace origin (the
	// Search call's entry) in nanoseconds.
	StartNs int64 `json:"startNs"`
	// DurationNs is the span's length in nanoseconds.
	DurationNs int64 `json:"durationNs"`
}

// TraceInfo is the per-search phase timeline attached to a Report by
// WithTrace: where the wall time of the call went — planning (the
// autotuner's model evaluation), encoding (building or loading the
// bit-plane representations the approach consumes), the search itself,
// and shard merging. Spans are recorded by the session around the
// phases it drives; a backend's internal parallelism is summarized by
// the single "search" span, not expanded.
type TraceInfo struct {
	// Spans holds the recorded phases in start order.
	Spans []TraceSpan `json:"spans"`
}

// Report is the unified outcome of Session.Search: every backend and
// every interaction order produces this one shape.
type Report struct {
	// Backend names the engine that ran the search ("cpu",
	// "gpusim:GN1", "baseline", "hetero").
	Backend string
	// Approach is the pipeline variant within the backend ("V1".."V4",
	// "mpi3snp", "V2+V4").
	Approach string
	// Objective is the ranking criterion ("k2", "mi" or "gini").
	Objective string
	// Order is the interaction order searched.
	Order int

	// Best is the winning candidate; ties are broken by lexicographic
	// SNP order, so results are deterministic on every backend.
	Best SearchCandidate
	// TopK holds up to WithTopK candidates in best-first order.
	TopK []SearchCandidate

	// Combinations is the number of SNP combinations evaluated (the
	// shard's share when sharded).
	Combinations int64
	// Elements is the paper's work metric: Combinations x samples.
	Elements float64
	// Duration is the host wall time of the search phase.
	Duration time.Duration
	// ElementsPerSec is the backend's characteristic throughput:
	// host-measured for cpu/baseline/hetero, modeled for gpusim.
	ElementsPerSec float64

	// Shard is set when the search covered one shard of the space.
	Shard *ShardInfo
	// GPU carries the simulator's modeled execution statistics when a
	// simulated device participated (gpusim and hetero backends).
	GPU *GPUStats
	// Hetero is set by the heterogeneous backend.
	Hetero *HeteroInfo
	// Plan is the autotuner's decision trace on WithAutoTune /
	// WithEnergyBudget runs; nil otherwise.
	Plan *PlanInfo
	// Screen is the audit record of a screened search (WithScreen):
	// what stage 1 scanned, what survived, the cut line, and the stage
	// timings — or the planner's decision to decline; nil on unscreened
	// runs.
	Screen *ScreenInfo
	// Perm is the merged outcome of a cluster permutation-test job
	// (per-candidate observed scores, hit counts and p-values); nil on
	// search Reports.
	Perm *PermInfo
	// Trace is the phase timeline recorded under WithTrace; nil
	// otherwise.
	Trace *TraceInfo

	// obj preserves the objective's ordering for MergeReports.
	obj score.Objective
	// topK is the requested candidate cap.
	topK int
}

// betterCandidate is the deterministic candidate order shared by every
// backend: objective first, then lexicographic SNPs.
func betterCandidate(obj score.Objective, a, b SearchCandidate) bool {
	if a.Score != b.Score {
		return obj.Better(a.Score, b.Score)
	}
	for i := range a.SNPs {
		if i >= len(b.SNPs) {
			return false
		}
		if a.SNPs[i] != b.SNPs[i] {
			return a.SNPs[i] < b.SNPs[i]
		}
	}
	return false
}

// candidateCmp builds the bounded-insert comparator for one objective.
func candidateCmp(obj score.Objective) func(a, b SearchCandidate) bool {
	return func(a, b SearchCandidate) bool { return betterCandidate(obj, a, b) }
}

// MergeReports combines the Reports of a sharded search (one per
// shard, any backend mix) into one Report equivalent to the unsharded
// run: top-K candidates are re-ranked under the shared objective and
// the work statistics are summed. All inputs must come from
// Session.Search calls with the same order and objective. Reports
// that crossed a serialization boundary (a coordinator collecting
// JSON from shard machines) merge too: the candidate ordering is
// rebuilt from the Objective name.
func MergeReports(reports ...*Report) (*Report, error) {
	mergeStart := time.Now()
	if len(reports) == 0 {
		return nil, fmt.Errorf("trigene: MergeReports needs at least one report")
	}
	base := reports[0]
	if base == nil {
		return nil, fmt.Errorf("trigene: MergeReports got a nil report")
	}
	obj := base.obj
	if obj == nil {
		// Deserialized report: only the objective's ordering is
		// needed, so any table size works.
		o, err := score.New(base.Objective, 1)
		if err != nil {
			return nil, fmt.Errorf("trigene: MergeReports: report carries no usable objective: %w", err)
		}
		obj = o
	}
	k := 0
	space := ""
	for _, r := range reports {
		if r == nil {
			return nil, fmt.Errorf("trigene: MergeReports got a nil report")
		}
		if r.Order != base.Order || r.Objective != base.Objective {
			return nil, fmt.Errorf("trigene: cannot merge order-%d %s report with order-%d %s",
				r.Order, r.Objective, base.Order, base.Objective)
		}
		// Shards only union back to the full space when they sliced the
		// SAME space: a rank shard (V2, gpusim, ...) and a block-triple
		// shard (V3/V4) of the same (index, count) cover different
		// triples, so mixing them would silently double-count some
		// combinations and drop others. (One way to mix them by
		// accident: autotuning one shard of a search but not another —
		// the planner may repick the approach and with it the space.)
		if r.Shard != nil && r.Shard.Space != "" {
			if space == "" {
				space = r.Shard.Space
			} else if r.Shard.Space != space {
				return nil, fmt.Errorf("trigene: cannot merge a %s shard with a %s shard (the shards sliced different spaces; run every shard with the same approach/autotune configuration)",
					r.Shard.Space, space)
			}
		}
		if r.topK > k {
			k = r.topK
		}
	}
	if k == 0 {
		// Hand-built reports (or ones from a codec predating the
		// "topKLimit" wire field) carry no requested cap; the deepest
		// candidate list present is the best available stand-in.
		for _, r := range reports {
			if len(r.TopK) > k {
				k = len(r.TopK)
			}
		}
	}
	out := &Report{
		Backend:   base.Backend,
		Approach:  base.Approach,
		Objective: base.Objective,
		Order:     base.Order,
		obj:       obj,
		topK:      k,
	}
	// Shards of one autotuned job plan identically (same models, same
	// inputs); the first trace present speaks for the merge.
	for _, r := range reports {
		if r.Plan != nil {
			out.Plan = r.Plan
			break
		}
	}
	// Likewise for the screen audit: shards of one screened job run the
	// identical deterministic stage 1 (or carry the coordinator's
	// assembled record), so the first record present speaks for all.
	for _, r := range reports {
		if r.Screen != nil {
			out.Screen = r.Screen
			break
		}
	}
	// And for permutation results: the block is assembled once by the
	// coordinator from already-merged hit counts, so the first present
	// carries over.
	for _, r := range reports {
		if r.Perm != nil {
			out.Perm = r.Perm
			break
		}
	}
	cmp := candidateCmp(obj)
	for _, r := range reports {
		for _, c := range r.TopK {
			out.TopK = topk.Insert(out.TopK, c, k, cmp)
		}
		out.Combinations += r.Combinations
		out.Elements += r.Elements
		out.Duration += r.Duration
	}
	if len(out.TopK) > 0 {
		out.Best = out.TopK[0]
	}
	// Keep the throughput semantics of the inputs: gpusim shards carry
	// modeled device time (host wall time would be the simulator's own
	// cost), everything else is host-measured.
	modeled, allModeled := 0.0, true
	for _, r := range reports {
		if r.GPU == nil {
			allModeled = false
			break
		}
		modeled += r.GPU.ModelSeconds
	}
	switch {
	case allModeled && modeled > 0:
		out.ElementsPerSec = out.Elements / modeled
	case !allModeled && out.Duration > 0:
		out.ElementsPerSec = out.Elements / out.Duration.Seconds()
	}
	// Like Plan, the first trace present carries over (shards of one
	// traced job record the same phases); the merge's own cost is
	// appended as a "merge" span starting where the last span ended.
	for _, r := range reports {
		if r.Trace != nil {
			spans := append([]TraceSpan(nil), r.Trace.Spans...)
			last := int64(0)
			for _, sp := range spans {
				if end := sp.StartNs + sp.DurationNs; end > last {
					last = end
				}
			}
			spans = append(spans, TraceSpan{
				Name:       "merge",
				StartNs:    last,
				DurationNs: int64(time.Since(mergeStart)),
			})
			out.Trace = &TraceInfo{Spans: spans}
			break
		}
	}
	return out, nil
}
