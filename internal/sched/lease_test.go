package sched

import (
	"testing"
	"time"
)

func TestLeaseTableExactlyOnce(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Second
	lt := NewLeaseTable(3)

	// Drain the table: three distinct tiles, then nothing.
	var leases []TileLease
	for i := 0; i < 3; i++ {
		l, ok := lt.Acquire(now, ttl)
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		if l.Tile != i || l.Attempt != 1 {
			t.Fatalf("acquire %d = %+v", i, l)
		}
		leases = append(leases, l)
	}
	if _, ok := lt.Acquire(now, ttl); ok {
		t.Fatal("acquired a fourth lease from a 3-tile table")
	}
	if got := lt.Outstanding(now); got != 3 {
		t.Fatalf("outstanding = %d, want 3", got)
	}

	// First completion accepted, second is a duplicate.
	if st := lt.Complete(leases[0].Tile, leases[0].Seq); st != CompleteAccepted {
		t.Fatalf("first complete = %v", st)
	}
	if st := lt.Complete(leases[0].Tile, leases[0].Seq); st != CompleteDuplicate {
		t.Fatalf("second complete = %v", st)
	}
	if lt.Done() != 1 {
		t.Fatalf("done = %d, want 1", lt.Done())
	}

	// Unknown coordinates are classified, not counted.
	if st := lt.Complete(99, 1); st != CompleteUnknown {
		t.Fatalf("out-of-range complete = %v", st)
	}
	if st := lt.Complete(leases[1].Tile, 9999); st != CompleteUnknown {
		t.Fatalf("never-granted seq complete = %v", st)
	}
}

func TestLeaseTableExpiryReissue(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Second
	lt := NewLeaseTable(1)

	first, ok := lt.Acquire(now, ttl)
	if !ok {
		t.Fatal("acquire failed")
	}
	// Before the deadline the tile is covered.
	if _, ok := lt.Acquire(now.Add(ttl-1), ttl); ok {
		t.Fatal("re-acquired an unexpired lease")
	}
	// At the deadline it is re-issued with a new seq and attempt.
	second, ok := lt.Acquire(now.Add(ttl), ttl)
	if !ok {
		t.Fatal("expired tile not re-issued")
	}
	if second.Tile != first.Tile || second.Seq == first.Seq || second.Attempt != 2 {
		t.Fatalf("re-issue = %+v (first %+v)", second, first)
	}
	if lt.Attempts(0) != 2 {
		t.Fatalf("attempts = %d, want 2", lt.Attempts(0))
	}

	// The superseded holder's completion is stale; the new holder's
	// counts; a later completion by anyone is a duplicate.
	if st := lt.Complete(first.Tile, first.Seq); st != CompleteStale {
		t.Fatalf("superseded complete = %v", st)
	}
	if st := lt.Complete(second.Tile, second.Seq); st != CompleteAccepted {
		t.Fatalf("current complete = %v", st)
	}
	if st := lt.Complete(first.Tile, first.Seq); st != CompleteDuplicate {
		t.Fatalf("late complete = %v", st)
	}
	if lt.Done() != 1 {
		t.Fatalf("done = %d, want 1", lt.Done())
	}
}

func TestLeaseTableExpiredHolderStillCompletes(t *testing.T) {
	// A lease that expired but was NOT re-issued still completes: only
	// an actual re-issue forces recomputation.
	now := time.Unix(0, 0)
	lt := NewLeaseTable(1)
	l, _ := lt.Acquire(now, time.Second)
	if st := lt.Complete(l.Tile, l.Seq); st != CompleteAccepted {
		t.Fatalf("expired-but-current complete = %v", st)
	}
}

func TestLeaseTableRenew(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Second
	lt := NewLeaseTable(1)
	l, _ := lt.Acquire(now, ttl)

	// Renewal pushes the deadline forward, keeping the tile covered
	// past its original expiry.
	if !lt.Renew(l.Tile, l.Seq, now.Add(ttl/2), ttl) {
		t.Fatal("renew of live lease failed")
	}
	if _, ok := lt.Acquire(now.Add(ttl), ttl); ok {
		t.Fatal("renewed lease treated as expired")
	}

	// After expiry and re-issue, the old holder's renewal fails.
	re, ok := lt.Acquire(now.Add(ttl/2+ttl), ttl)
	if !ok {
		t.Fatal("renewed-then-expired tile not re-issued")
	}
	if lt.Renew(l.Tile, l.Seq, now, ttl) {
		t.Fatal("renew of superseded lease succeeded")
	}
	// Completion ends renewability.
	if st := lt.Complete(re.Tile, re.Seq); st != CompleteAccepted {
		t.Fatalf("complete = %v", st)
	}
	if lt.Renew(re.Tile, re.Seq, now, ttl) {
		t.Fatal("renew of completed tile succeeded")
	}
}

func TestLeaseTableEmpty(t *testing.T) {
	lt := NewLeaseTable(0)
	if lt.Tiles() != 0 || lt.Done() != 0 {
		t.Fatalf("empty table: tiles=%d done=%d", lt.Tiles(), lt.Done())
	}
	if _, ok := lt.Acquire(time.Now(), time.Second); ok {
		t.Fatal("acquired from an empty table")
	}
}

// TestLeaseTableRelease: a released live lease re-issues immediately,
// without the surrendered attempt counting toward a cap, while stale
// or completed coordinates refuse to release.
func TestLeaseTableRelease(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Minute
	lt := NewLeaseTable(2)

	l0, _ := lt.Acquire(now, ttl)
	if !lt.Release(l0.Tile, l0.Seq) {
		t.Fatal("live lease refused to release")
	}
	if lt.Release(l0.Tile, l0.Seq) {
		t.Fatal("released lease released twice")
	}
	// Immediate re-issue, well inside the original TTL, and the clean
	// hand-back did not count as an attempt.
	re, ok := lt.Acquire(now.Add(time.Second), ttl)
	if !ok || re.Tile != l0.Tile {
		t.Fatalf("re-acquire after release = %+v ok=%v", re, ok)
	}
	if re.Attempt != 1 {
		t.Fatalf("re-acquire attempt = %d, want 1 (release un-counts)", re.Attempt)
	}
	if re.Seq == l0.Seq {
		t.Fatal("re-issue reused the released seq")
	}
	// The released holder cannot complete the re-issued tile.
	if st := lt.Complete(l0.Tile, l0.Seq); st == CompleteAccepted {
		t.Fatalf("released holder's completion = %v", st)
	}
	// A completed tile refuses to release.
	if st := lt.Complete(re.Tile, re.Seq); st != CompleteAccepted {
		t.Fatalf("complete = %v", st)
	}
	if lt.Release(re.Tile, re.Seq) {
		t.Fatal("completed tile released")
	}
}

// TestLeaseTableLeased: Leased lists exactly the unexpired leases.
func TestLeaseTableLeased(t *testing.T) {
	now := time.Unix(0, 0)
	lt := NewLeaseTable(3)
	l0, _ := lt.Acquire(now, time.Second)
	lt.Acquire(now, time.Hour) // tile 1, long-lived
	lt.Complete(l0.Tile, l0.Seq)

	got := lt.Leased(now.Add(2 * time.Second))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("leased = %v, want [1]", got)
	}
}

// TestLeaseTableExportImport: the Export/Import round-trip reproduces
// grants, completions, deadlines and the seq counter, so a restored
// table continues exactly where the exported one stopped.
func TestLeaseTableExportImport(t *testing.T) {
	now := time.Unix(1000, 0)
	ttl := time.Minute
	lt := NewLeaseTable(4)

	l0, _ := lt.Acquire(now, ttl) // tile 0: will complete
	l1, _ := lt.Acquire(now, ttl) // tile 1: stays leased
	lt.Acquire(now, ttl)          // tile 2: expires, re-issues once
	lt.Complete(l0.Tile, l0.Seq)
	lt.Renew(l1.Tile, l1.Seq, now.Add(2*ttl), ttl) // tile 1 covered past the re-issue below
	l2b, _ := lt.Acquire(now.Add(2*ttl), ttl)      // re-issue of tile 2
	if l2b.Tile != 2 || l2b.Attempt != 2 {
		t.Fatalf("re-issue = %+v", l2b)
	}
	// Tile 3 never granted.

	seq, tiles := lt.Export()
	restored := ImportLeaseTable(seq, tiles)

	if restored.Done() != 1 || restored.Tiles() != 4 {
		t.Fatalf("restored done=%d tiles=%d", restored.Done(), restored.Tiles())
	}
	// The surviving holders' leases are intact: renew and complete
	// under the pre-export coordinates.
	if !restored.Renew(l1.Tile, l1.Seq, now.Add(2*ttl), ttl) {
		t.Fatal("restored lease refused renewal")
	}
	if st := restored.Complete(l2b.Tile, l2b.Seq); st != CompleteAccepted {
		t.Fatalf("restored re-issue completion = %v", st)
	}
	// The next acquire takes the never-granted tile with a fresh seq
	// above everything exported.
	l3, ok := restored.Acquire(now.Add(2*ttl+ttl/2), ttl)
	if !ok || l3.Tile != 3 || l3.Attempt != 1 {
		t.Fatalf("post-import acquire = %+v ok=%v", l3, ok)
	}
	if l3.Seq <= l2b.Seq {
		t.Fatalf("post-import seq %d did not advance past exported %d", l3.Seq, l2b.Seq)
	}
	// Tile 1's restored deadline is honored: past it, the tile
	// re-issues with the attempt count carried over.
	re1, ok := restored.Acquire(now.Add(10*ttl), ttl)
	if !ok || re1.Tile != 1 || re1.Attempt != 2 {
		t.Fatalf("expired restored lease re-issue = %+v ok=%v", re1, ok)
	}
}

// TestLeaseTableRestoreReplay: RestoreGrant/RestoreDone re-apply a
// journal tail on top of an imported snapshot — grants after a
// completion leave the done tile alone, and the seq counter tracks
// the replayed maximum.
func TestLeaseTableRestoreReplay(t *testing.T) {
	now := time.Unix(0, 0)
	lt := NewLeaseTable(3)
	lt.RestoreGrant(0, 7, 1, now.Add(time.Minute))
	lt.RestoreGrant(1, 8, 2, now.Add(time.Minute))
	lt.RestoreDone(1)
	lt.RestoreGrant(1, 9, 3, now.Add(time.Minute)) // late record; tile 1 stays done
	lt.RestoreDone(1)                              // idempotent

	if lt.Done() != 1 {
		t.Fatalf("done = %d, want 1", lt.Done())
	}
	if !lt.Current(0, 7) {
		t.Fatal("restored grant not current")
	}
	if lt.Current(1, 9) {
		t.Fatal("completed tile reports a current lease")
	}
	l, ok := lt.Acquire(now, time.Minute)
	if !ok || l.Tile != 2 {
		t.Fatalf("acquire = %+v ok=%v", l, ok)
	}
	if l.Seq <= 9 {
		t.Fatalf("seq %d did not advance past the replayed 9", l.Seq)
	}
}
