package sched

import (
	"testing"
	"time"
)

func TestLeaseTableExactlyOnce(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Second
	lt := NewLeaseTable(3)

	// Drain the table: three distinct tiles, then nothing.
	var leases []TileLease
	for i := 0; i < 3; i++ {
		l, ok := lt.Acquire(now, ttl)
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		if l.Tile != i || l.Attempt != 1 {
			t.Fatalf("acquire %d = %+v", i, l)
		}
		leases = append(leases, l)
	}
	if _, ok := lt.Acquire(now, ttl); ok {
		t.Fatal("acquired a fourth lease from a 3-tile table")
	}
	if got := lt.Outstanding(now); got != 3 {
		t.Fatalf("outstanding = %d, want 3", got)
	}

	// First completion accepted, second is a duplicate.
	if st := lt.Complete(leases[0].Tile, leases[0].Seq); st != CompleteAccepted {
		t.Fatalf("first complete = %v", st)
	}
	if st := lt.Complete(leases[0].Tile, leases[0].Seq); st != CompleteDuplicate {
		t.Fatalf("second complete = %v", st)
	}
	if lt.Done() != 1 {
		t.Fatalf("done = %d, want 1", lt.Done())
	}

	// Unknown coordinates are classified, not counted.
	if st := lt.Complete(99, 1); st != CompleteUnknown {
		t.Fatalf("out-of-range complete = %v", st)
	}
	if st := lt.Complete(leases[1].Tile, 9999); st != CompleteUnknown {
		t.Fatalf("never-granted seq complete = %v", st)
	}
}

func TestLeaseTableExpiryReissue(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Second
	lt := NewLeaseTable(1)

	first, ok := lt.Acquire(now, ttl)
	if !ok {
		t.Fatal("acquire failed")
	}
	// Before the deadline the tile is covered.
	if _, ok := lt.Acquire(now.Add(ttl-1), ttl); ok {
		t.Fatal("re-acquired an unexpired lease")
	}
	// At the deadline it is re-issued with a new seq and attempt.
	second, ok := lt.Acquire(now.Add(ttl), ttl)
	if !ok {
		t.Fatal("expired tile not re-issued")
	}
	if second.Tile != first.Tile || second.Seq == first.Seq || second.Attempt != 2 {
		t.Fatalf("re-issue = %+v (first %+v)", second, first)
	}
	if lt.Attempts(0) != 2 {
		t.Fatalf("attempts = %d, want 2", lt.Attempts(0))
	}

	// The superseded holder's completion is stale; the new holder's
	// counts; a later completion by anyone is a duplicate.
	if st := lt.Complete(first.Tile, first.Seq); st != CompleteStale {
		t.Fatalf("superseded complete = %v", st)
	}
	if st := lt.Complete(second.Tile, second.Seq); st != CompleteAccepted {
		t.Fatalf("current complete = %v", st)
	}
	if st := lt.Complete(first.Tile, first.Seq); st != CompleteDuplicate {
		t.Fatalf("late complete = %v", st)
	}
	if lt.Done() != 1 {
		t.Fatalf("done = %d, want 1", lt.Done())
	}
}

func TestLeaseTableExpiredHolderStillCompletes(t *testing.T) {
	// A lease that expired but was NOT re-issued still completes: only
	// an actual re-issue forces recomputation.
	now := time.Unix(0, 0)
	lt := NewLeaseTable(1)
	l, _ := lt.Acquire(now, time.Second)
	if st := lt.Complete(l.Tile, l.Seq); st != CompleteAccepted {
		t.Fatalf("expired-but-current complete = %v", st)
	}
}

func TestLeaseTableRenew(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Second
	lt := NewLeaseTable(1)
	l, _ := lt.Acquire(now, ttl)

	// Renewal pushes the deadline forward, keeping the tile covered
	// past its original expiry.
	if !lt.Renew(l.Tile, l.Seq, now.Add(ttl/2), ttl) {
		t.Fatal("renew of live lease failed")
	}
	if _, ok := lt.Acquire(now.Add(ttl), ttl); ok {
		t.Fatal("renewed lease treated as expired")
	}

	// After expiry and re-issue, the old holder's renewal fails.
	re, ok := lt.Acquire(now.Add(ttl/2+ttl), ttl)
	if !ok {
		t.Fatal("renewed-then-expired tile not re-issued")
	}
	if lt.Renew(l.Tile, l.Seq, now, ttl) {
		t.Fatal("renew of superseded lease succeeded")
	}
	// Completion ends renewability.
	if st := lt.Complete(re.Tile, re.Seq); st != CompleteAccepted {
		t.Fatalf("complete = %v", st)
	}
	if lt.Renew(re.Tile, re.Seq, now, ttl) {
		t.Fatal("renew of completed tile succeeded")
	}
}

func TestLeaseTableEmpty(t *testing.T) {
	lt := NewLeaseTable(0)
	if lt.Tiles() != 0 || lt.Done() != 0 {
		t.Fatalf("empty table: tiles=%d done=%d", lt.Tiles(), lt.Done())
	}
	if _, ok := lt.Acquire(time.Now(), time.Second); ok {
		t.Fatal("acquired from an empty table")
	}
}
