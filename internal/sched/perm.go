package sched

// Permutation-testing spaces. A permutation test over P relabelings is
// a flat index space: permutation p is fully determined by its absolute
// index (the shuffle is seeded per index), so any tiling of [0, P) into
// contiguous ranges is valid and every decomposition merges to the same
// hit counts. The source below gives permutation jobs the same tiling,
// sharding, and lease machinery the search spaces use.

// Permutations returns the tile source over a permutation index space:
// rank p is the p-th phenotype relabeling, tiled for the given consumer
// count. A tile's range is the half-open permutation interval the
// consumer evaluates with permtest.KAllRange; per-index seeding makes
// the union of any shard partition bit-exact with the unsharded run.
func Permutations(count, consumers int) Source {
	if count < 0 {
		count = 0
	}
	return Flat(int64(count), consumers)
}
