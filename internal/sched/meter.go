package sched

import (
	"sync/atomic"
	"time"
)

// ThroughputMeter measures the realized per-consumer throughput of a
// running search: every consumer records the items it finished and the
// time they took, and anyone — the consumer itself, a coordinator, a
// report — can read back items/sec rates while the run is live.
//
// It closes the planner's loop: the plan seeds claim grains and device
// multipliers from *modeled* rates, and the meter refines them
// mid-search from *measured* ones (a device consumer that turns out
// faster than modeled grows its claim span instead of idling between
// undersized tiles). All methods are safe for concurrent use; Record
// is two atomic adds, cheap enough for per-tile accounting.
type ThroughputMeter struct {
	cells []meterCell
}

// meterCell is one consumer's running totals.
type meterCell struct {
	items atomic.Int64
	ns    atomic.Int64
}

// NewThroughputMeter returns a meter over the given number of
// consumers (clamped to at least 1).
func NewThroughputMeter(consumers int) *ThroughputMeter {
	if consumers < 1 {
		consumers = 1
	}
	return &ThroughputMeter{cells: make([]meterCell, consumers)}
}

// Consumers returns how many consumer slots the meter tracks.
func (m *ThroughputMeter) Consumers() int { return len(m.cells) }

// Record adds items finished in d by the given consumer. Out-of-range
// consumers are ignored (a defensive no-op, not an error, so meters
// can be shared across layers with different consumer counts).
func (m *ThroughputMeter) Record(consumer int, items int64, d time.Duration) {
	if consumer < 0 || consumer >= len(m.cells) {
		return
	}
	c := &m.cells[consumer]
	c.items.Add(items)
	c.ns.Add(int64(d))
}

// Items returns the total items the consumer has recorded.
func (m *ThroughputMeter) Items(consumer int) int64 {
	if consumer < 0 || consumer >= len(m.cells) {
		return 0
	}
	return m.cells[consumer].items.Load()
}

// Rate returns the consumer's measured items/sec, or 0 before it has
// recorded any busy time.
func (m *ThroughputMeter) Rate(consumer int) float64 {
	if consumer < 0 || consumer >= len(m.cells) {
		return 0
	}
	c := &m.cells[consumer]
	ns := c.ns.Load()
	if ns <= 0 {
		return 0
	}
	return float64(c.items.Load()) / (float64(ns) / float64(time.Second))
}

// TotalRate returns the sum of all consumers' measured rates.
func (m *ThroughputMeter) TotalRate() float64 {
	var sum float64
	for i := range m.cells {
		sum += m.Rate(i)
	}
	return sum
}

// meterWarmupItems is how many items a consumer (and its peers) must
// have recorded before SuggestGrains trusts the measured ratio.
const meterWarmupItems = 1024

// SuggestGrains returns a claim-grain multiplier for the consumer:
// its measured rate over the mean rate of every *other* consumer with
// data, rounded and clamped to [1, max]. It returns 0 — "no
// suggestion, keep your seed" — until both sides have recorded enough
// items for the ratio to mean something.
func (m *ThroughputMeter) SuggestGrains(consumer int, max int64) int64 {
	if max < 1 {
		max = 1
	}
	mine := m.Rate(consumer)
	if mine <= 0 || m.Items(consumer) < meterWarmupItems {
		return 0
	}
	var others float64
	var n, items int64
	for i := range m.cells {
		if i == consumer {
			continue
		}
		if r := m.Rate(i); r > 0 {
			others += r
			n++
			items += m.Items(i)
		}
	}
	if n == 0 || items < meterWarmupItems {
		return 0
	}
	g := int64(mine/(others/float64(n)) + 0.5)
	if g < 1 {
		g = 1
	}
	if g > max {
		g = max
	}
	return g
}
