package sched

import (
	"sync"
	"testing"
	"time"
)

func TestMeterRates(t *testing.T) {
	m := NewThroughputMeter(3)
	if m.Consumers() != 3 {
		t.Fatalf("consumers = %d", m.Consumers())
	}
	m.Record(0, 1000, time.Second)
	m.Record(1, 4000, time.Second)
	if r := m.Rate(0); r < 999 || r > 1001 {
		t.Errorf("rate(0) = %g, want ~1000", r)
	}
	if r := m.Rate(1); r < 3999 || r > 4001 {
		t.Errorf("rate(1) = %g, want ~4000", r)
	}
	if r := m.Rate(2); r != 0 {
		t.Errorf("idle consumer rate = %g", r)
	}
	if tot := m.TotalRate(); tot < 4998 || tot > 5002 {
		t.Errorf("total rate = %g, want ~5000", tot)
	}
	if m.Items(1) != 4000 {
		t.Errorf("items(1) = %d", m.Items(1))
	}
}

func TestMeterOutOfRangeIsNoop(t *testing.T) {
	m := NewThroughputMeter(1)
	m.Record(-1, 100, time.Second)
	m.Record(5, 100, time.Second)
	if m.Items(0) != 0 || m.Rate(-1) != 0 || m.Items(9) != 0 {
		t.Error("out-of-range consumer leaked into the meter")
	}
}

// TestMeterSuggestGrains: the suggestion is the measured rate ratio,
// withheld until both sides have warmed up, and clamped.
func TestMeterSuggestGrains(t *testing.T) {
	m := NewThroughputMeter(2)
	// Cold meter: no suggestion either way.
	if g := m.SuggestGrains(1, 64); g != 0 {
		t.Errorf("cold suggestion = %d, want 0", g)
	}
	m.Record(0, 10*meterWarmupItems, time.Second) // CPU side: 10240/s
	// Device warmed but peers cold / vice versa still withholds.
	if g := m.SuggestGrains(0, 64); g != 0 {
		t.Errorf("half-warm suggestion = %d, want 0", g)
	}
	m.Record(1, 60*meterWarmupItems, time.Second) // device: 6x faster
	if g := m.SuggestGrains(1, 64); g != 6 {
		t.Errorf("suggestion = %d, want 6", g)
	}
	// The slow side never drops below 1.
	if g := m.SuggestGrains(0, 64); g != 1 {
		t.Errorf("slow-side suggestion = %d, want 1", g)
	}
	// The cap clamps.
	if g := m.SuggestGrains(1, 4); g != 4 {
		t.Errorf("capped suggestion = %d, want 4", g)
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewThroughputMeter(4)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Record(c, 10, time.Millisecond)
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < 4; c++ {
		if m.Items(c) != 10000 {
			t.Errorf("consumer %d items = %d, want 10000", c, m.Items(c))
		}
	}
}
