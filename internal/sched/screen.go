package sched

import "trigene/internal/combin"

// Screened-search spaces. Stage 2 of a two-stage screened search runs
// over the survivors of a pairwise screen, not the raw SNP axis, so
// its spaces get their own named constructors: the rank math is the
// ordinary colexicographic machinery, but the ranks index *survivor
// positions* (or seed extensions), and every consumer of these sources
// must remap back to original SNP indices after scoring.

// SubsetTriples returns the stage-2 source of a screened search: the
// C(survivors, 3) triple space over a survivor index subset, tiled for
// the given consumer count. Ranks are colexicographic triple ranks
// over survivor positions 0..survivors-1; callers translate positions
// back through their survivor list.
func SubsetTriples(survivors, consumers int) Source {
	if survivors < 0 {
		survivors = 0
	}
	return Flat(combin.Triples(survivors), consumers)
}

// SeededExtensions returns the seeded stage-2 source: for each of
// seeds seed pairs, every third SNP in [0, span) is one candidate
// extension, so the space is seeds×span ranks with
//
//	seed  = rank / span
//	third = rank % span
//
// Consumers skip ranks whose third SNP collides with the seed pair
// (and whatever triples another stage already covers); the space is
// deliberately dense so tiles stay contiguous and claimable.
func SeededExtensions(seeds, span, consumers int) Source {
	if seeds < 0 {
		seeds = 0
	}
	if span < 0 {
		span = 0
	}
	return Flat(int64(seeds)*int64(span), consumers)
}
