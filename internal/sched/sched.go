// Package sched is the backend-agnostic tile scheduler: the one
// work-distribution core every execution engine (CPU flat, CPU
// blocked, simulated GPU, MPI-style baseline, heterogeneous) consumes.
//
// A Source enumerates one search space as a contiguous run of ranks —
// colexicographic combination ranks for the flat pipelines (V1/V2,
// pairs, k-way, the GPU kernels) and block-triple ranks for the
// blocked pipelines (V3/V4) — cut into tiles of Grain ranks. A Cursor
// is a lock-free claiming cursor over a Source: any number of
// consumers, of any kind and speed, Claim tiles until the space is
// drained, which is exactly the paper's dynamically scheduled pool
// and, with consumers of different kinds sharing one Cursor, true
// work-stealing heterogeneous execution (Section V-D).
//
// Three consumption styles cover every backend:
//
//   - Drain: a homogeneous pool of n goroutine consumers (the CPU
//     engine's worker pool);
//   - Consume: a single caller-driven consumer loop (the GPU
//     simulator, or either half of a heterogeneous run sharing a
//     Cursor with the other half);
//   - Partition: a static up-front split with no cursor at all (the
//     MPI3SNP-style baseline, which distributes ranks the way an MPI
//     code would).
//
// Sharding is a first-class property of the space, not of any engine:
// Source.Shard returns the sub-Source covering slice index of count,
// so every backend that enumerates through a Source shards for free
// with bit-exact merge semantics.
package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"trigene/internal/combin"
)

// Tile is one claimed unit of work: a half-open range [Lo, Hi) of
// ranks in the space its Source enumerates.
type Tile = combin.Range

// Shard selects slice Index of Count near-equal contiguous slices of
// a tile space.
type Shard struct {
	Index, Count int
}

// Validate checks the shard coordinates.
func (sh Shard) Validate() error {
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("sched: invalid shard %d of %d", sh.Index, sh.Count)
	}
	return nil
}

// Source describes one search space as a claimable rank range with a
// preferred ranks-per-claim grain. The zero value is an empty space.
type Source struct {
	lo, hi int64
	grain  int64
}

// NewSource returns a Source over ranks [lo, hi) with the given claim
// grain (clamped to at least 1).
func NewSource(lo, hi, grain int64) Source {
	if hi < lo {
		hi = lo
	}
	if grain < 1 {
		grain = 1
	}
	return Source{lo: lo, hi: hi, grain: grain}
}

// Flat returns a Source over the flat rank space [0, total) with a
// grain balancing claim overhead against load balance for the given
// consumer count: ~64 claims per consumer, clamped to [256, 1<<20]
// ranks.
func Flat(total int64, consumers int) Source {
	return NewSource(0, total, AutoGrain(total, consumers))
}

// MinGrain and MaxGrain bound every grain heuristic: below MinGrain
// claim overhead dominates, above MaxGrain tiles get too coarse for
// load balance and cancellation latency. The planner's model-derived
// grains honor the same clamps.
const (
	MinGrain = 256
	MaxGrain = 1 << 20
)

// AutoGrain is the flat-space grain heuristic: aim for ~64 claims per
// consumer, clamped to [MinGrain, MaxGrain] ranks. It is total-order
// safe: non-positive totals and absurd consumer counts clamp instead
// of overflowing.
func AutoGrain(total int64, consumers int) int64 {
	if consumers < 1 {
		consumers = 1
	}
	// Divide before multiplying so total near MaxInt64 cannot overflow
	// int64(consumers)*64.
	grain := total / int64(consumers) / 64
	if grain < MinGrain {
		grain = MinGrain
	}
	if grain > MaxGrain {
		grain = MaxGrain
	}
	return grain
}

// SeededGrain reconciles a planner grain hint with the AutoGrain
// heuristic for a space of the given size: the hint wins only when it
// is finer than AutoGrain's cut, so a model-seeded grain can tighten
// tiles but never coarsen them into starving the consumer pool on a
// small (or small-sharded) space. hint <= 0 means no hint.
func SeededGrain(total int64, consumers int, hint int64) int64 {
	auto := AutoGrain(total, consumers)
	if hint > 0 && hint < auto {
		if hint < MinGrain {
			return MinGrain
		}
		return hint
	}
	return auto
}

// Bounds returns the rank range the source covers.
func (s Source) Bounds() Tile { return Tile{Lo: s.lo, Hi: s.hi} }

// Ranks returns the number of ranks in the space.
func (s Source) Ranks() int64 { return s.hi - s.lo }

// Grain returns the preferred ranks per claim.
func (s Source) Grain() int64 { return s.grain }

// WithGrain returns the source with a different claim grain.
func (s Source) WithGrain(grain int64) Source {
	return NewSource(s.lo, s.hi, grain)
}

// Shard returns the sub-source covering slice sh.Index of sh.Count:
// contiguous slices whose sizes differ by at most one. This is the
// primitive distributed deployments partition on; the union of all
// shards is the source, so per-shard results merge bit-exactly.
func (s Source) Shard(sh Shard) (Source, error) {
	if err := sh.Validate(); err != nil {
		return Source{}, err
	}
	total := s.Ranks()
	n, i := int64(sh.Count), int64(sh.Index)
	base, rem := total/n, total%n
	lo := s.lo + i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return NewSource(lo, lo+size, s.grain), nil
}

// Partition statically splits the source into at most parts
// contiguous tiles of near-equal size (the baseline's MPI-style
// distribution). Empty tiles are omitted.
func (s Source) Partition(parts int) []Tile {
	if parts < 1 {
		parts = 1
	}
	n := int64(parts)
	total := s.Ranks()
	out := make([]Tile, 0, parts)
	base, rem := total/n, total%n
	lo := s.lo
	for p := int64(0); p < n && lo < s.hi; p++ {
		size := base
		if p < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, Tile{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// Cursor hands tiles of one Source to any number of concurrent
// consumers: a lock-free claiming cursor. Claim is safe for
// concurrent use; the progress configuration must be set before the
// first claim.
type Cursor struct {
	src  Source
	next atomic.Int64 // ranks handed out, relative to src.lo
	done atomic.Int64 // items reported finished

	progressTotal int64
	progress      func(done, total int64)

	m cursorMetrics // resolved series; zero value is a no-op (see Instrument)
}

// NewCursor returns a claiming cursor over the source.
func NewCursor(src Source) *Cursor { return &Cursor{src: src} }

// Source returns the space the cursor distributes.
func (c *Cursor) Source() Source { return c.src }

// OnProgress installs a progress callback invoked after each finished
// tile with the cumulative number of finished items and the given
// total. It must be set before consumers start and be safe for
// concurrent use.
func (c *Cursor) OnProgress(total int64, fn func(done, total int64)) {
	c.progressTotal, c.progress = total, fn
}

// Claim atomically claims the next grains×Grain ranks. It returns
// false when the space is drained. Distinct consumers may claim with
// distinct multipliers (a device consumer amortizing launch overhead
// claims larger spans than a CPU worker).
func (c *Cursor) Claim(grains int64) (Tile, bool) {
	if grains < 1 {
		grains = 1
	}
	span := grains * c.src.grain
	lo := c.src.lo + c.next.Add(span) - span
	if lo >= c.src.hi {
		return Tile{}, false
	}
	hi := lo + span
	if hi > c.src.hi {
		hi = c.src.hi
	}
	c.m.tiles.Inc()
	c.m.ranks.Add(hi - lo)
	return Tile{Lo: lo, Hi: hi}, true
}

// Finish records items finished work units and fires the progress
// callback. Consume and Drain call it automatically; only consumers
// hand-rolling their own claim loop need to.
func (c *Cursor) Finish(items int64) {
	c.m.items.Add(items)
	done := c.done.Add(items)
	if c.progress != nil {
		c.progress(done, c.progressTotal)
	}
}

// Consume is a single consumer's claim loop: it claims grains×Grain
// ranks at a time and calls fn until the cursor drains, the context
// is cancelled, or fn fails. fn returns the number of finished work
// items the tile covered (for progress accounting; return t.Len() in
// flat spaces).
func (c *Cursor) Consume(ctx context.Context, grains int64, fn func(t Tile) (int64, error)) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		t, ok := c.Claim(grains)
		if !ok {
			return nil
		}
		n, err := fn(t)
		if err != nil {
			return err
		}
		c.Finish(n)
	}
}

// Drain runs a pool of consumers goroutine consumers over the cursor,
// each executing fn for every tile it claims, until the space drains,
// ctx is cancelled, or a consumer fails; the first error wins. fn
// receives the consumer index (for per-consumer scratch) and returns
// the number of finished work items.
func (c *Cursor) Drain(ctx context.Context, consumers int, fn func(consumer int, t Tile) (int64, error)) error {
	if consumers < 1 {
		consumers = 1
	}
	var firstErr errOnce
	var wg sync.WaitGroup
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := c.Consume(ctx, 1, func(t Tile) (int64, error) {
				return fn(w, t)
			})
			if err != nil {
				firstErr.set(err)
			}
		}(w)
	}
	wg.Wait()
	return firstErr.get()
}

// errOnce records the first error reported by any consumer.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
