package sched

import (
	"fmt"
	"sync"
	"time"
)

// LeaseTable is the bookkeeping side of distributed tile execution: n
// tiles, each of which is handed out under a deadline-bearing lease,
// renewed by heartbeats, re-issued when its deadline passes, and
// completed exactly once. It is the piece a network coordinator puts
// between a Source's tiles and remote consumers that can die mid-tile:
// whatever the interleaving of grants, expiries and late completions,
// each tile contributes exactly one result, so a merged report stays
// bit-exact with a single-node run.
//
// The clock is always passed in by the caller, which keeps expiry
// deterministic under test.
type LeaseTable struct {
	mu    sync.Mutex
	tiles []tileLease
	seq   uint64
	done  int
}

// tileLease is the per-tile lease state.
type tileLease struct {
	state    int // tileFree, tileLeased or tileDone
	seq      uint64
	deadline time.Time
	attempts int
}

const (
	tileFree = iota
	tileLeased
	tileDone
)

// TileLease identifies one granted lease: tile index, a grant sequence
// number distinguishing re-issues of the same tile, and the attempt
// count (1 on first grant).
type TileLease struct {
	Tile    int
	Seq     uint64
	Attempt int
}

// CompleteStatus is the outcome of LeaseTable.Complete.
type CompleteStatus int

const (
	// CompleteAccepted: first completion of the tile; its result counts.
	CompleteAccepted CompleteStatus = iota
	// CompleteDuplicate: the tile was already completed (a re-issued
	// worker and the original both finished); the result is discarded.
	CompleteDuplicate
	// CompleteStale: the lease was superseded by a re-issue that is
	// still outstanding; the result is discarded.
	CompleteStale
	// CompleteUnknown: the coordinates identify no granted lease.
	CompleteUnknown
)

// String names the status in logs.
func (s CompleteStatus) String() string {
	switch s {
	case CompleteAccepted:
		return "accepted"
	case CompleteDuplicate:
		return "duplicate"
	case CompleteStale:
		return "stale"
	case CompleteUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("CompleteStatus(%d)", int(s))
	}
}

// NewLeaseTable returns a table over n tiles, all unleased.
func NewLeaseTable(n int) *LeaseTable {
	if n < 0 {
		n = 0
	}
	return &LeaseTable{tiles: make([]tileLease, n)}
}

// Acquire grants a lease on the next available tile — one never
// granted, or one whose current lease deadline has passed — with a
// deadline of now+ttl. It returns false when every tile is either done
// or covered by an unexpired lease.
func (lt *LeaseTable) Acquire(now time.Time, ttl time.Duration) (TileLease, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for i := range lt.tiles {
		t := &lt.tiles[i]
		if t.state == tileDone || (t.state == tileLeased && now.Before(t.deadline)) {
			continue
		}
		lt.seq++
		t.state = tileLeased
		t.seq = lt.seq
		t.deadline = now.Add(ttl)
		t.attempts++
		return TileLease{Tile: i, Seq: t.seq, Attempt: t.attempts}, true
	}
	return TileLease{}, false
}

// AcquireBelow is Acquire restricted to tiles with index < limit: the
// phase gate of a two-stage job, where tiles [0, limit) are the
// stage-1 screen shards and nothing past them may be granted until
// every stage-1 tile completes. A limit at or above the table size
// behaves exactly like Acquire.
func (lt *LeaseTable) AcquireBelow(now time.Time, ttl time.Duration, limit int) (TileLease, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if limit > len(lt.tiles) {
		limit = len(lt.tiles)
	}
	for i := 0; i < limit; i++ {
		t := &lt.tiles[i]
		if t.state == tileDone || (t.state == tileLeased && now.Before(t.deadline)) {
			continue
		}
		lt.seq++
		t.state = tileLeased
		t.seq = lt.seq
		t.deadline = now.Add(ttl)
		t.attempts++
		return TileLease{Tile: i, Seq: t.seq, Attempt: t.attempts}, true
	}
	return TileLease{}, false
}

// DoneBelow returns how many tiles with index < limit have completed
// (the stage-1 completion check of a two-stage job).
func (lt *LeaseTable) DoneBelow(limit int) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if limit > len(lt.tiles) {
		limit = len(lt.tiles)
	}
	n := 0
	for i := 0; i < limit; i++ {
		if lt.tiles[i].state == tileDone {
			n++
		}
	}
	return n
}

// Renew extends the lease (tile, seq) to now+ttl. It reports false
// when the lease is no longer current — the tile completed, or the
// lease expired and was re-issued — telling the holder to abandon the
// tile.
func (lt *LeaseTable) Renew(tile int, seq uint64, now time.Time, ttl time.Duration) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if tile < 0 || tile >= len(lt.tiles) {
		return false
	}
	t := &lt.tiles[tile]
	if t.state != tileLeased || t.seq != seq {
		return false
	}
	t.deadline = now.Add(ttl)
	return true
}

// Complete records the result of lease (tile, seq): the first
// completion of a tile under its current grant is accepted, everything
// else is classified for the caller to discard. A holder whose lease
// expired but was not yet re-issued still completes successfully —
// re-computation is only forced when a re-issue actually happened.
func (lt *LeaseTable) Complete(tile int, seq uint64) CompleteStatus {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if tile < 0 || tile >= len(lt.tiles) {
		return CompleteUnknown
	}
	t := &lt.tiles[tile]
	switch {
	case t.state == tileDone:
		return CompleteDuplicate
	case t.state != tileLeased || seq == 0 || seq > t.seq:
		return CompleteUnknown
	case t.seq != seq:
		return CompleteStale
	}
	t.state = tileDone
	lt.done++
	return CompleteAccepted
}

// Current reports whether (tile, seq) is the tile's live lease: still
// leased and not superseded by a re-issue. Holders of non-current
// leases must not be allowed to speak for the tile (complete it, fail
// the job).
func (lt *LeaseTable) Current(tile int, seq uint64) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if tile < 0 || tile >= len(lt.tiles) {
		return false
	}
	t := &lt.tiles[tile]
	return t.state == tileLeased && t.seq == seq
}

// Tiles returns the table size.
func (lt *LeaseTable) Tiles() int { return len(lt.tiles) }

// Done returns how many tiles have completed.
func (lt *LeaseTable) Done() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.done
}

// Outstanding returns how many tiles are covered by an unexpired lease
// at the given instant.
func (lt *LeaseTable) Outstanding(now time.Time) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	n := 0
	for i := range lt.tiles {
		t := &lt.tiles[i]
		if t.state == tileLeased && now.Before(t.deadline) {
			n++
		}
	}
	return n
}

// Attempts returns how many times the tile has been granted.
func (lt *LeaseTable) Attempts(tile int) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if tile < 0 || tile >= len(lt.tiles) {
		return 0
	}
	return lt.tiles[tile].attempts
}

// Release gives up the live lease (tile, seq) before its deadline —
// a holder draining out cleanly — so the next Acquire re-issues the
// tile immediately instead of waiting for expiry. The surrendered
// attempt is un-counted (a clean hand-back must not push the tile
// toward an attempt cap). It reports false when the lease is not
// current (completed, or superseded by a re-issue).
func (lt *LeaseTable) Release(tile int, seq uint64) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if tile < 0 || tile >= len(lt.tiles) {
		return false
	}
	t := &lt.tiles[tile]
	if t.state != tileLeased || t.seq != seq {
		return false
	}
	t.state = tileFree
	if t.attempts > 0 {
		t.attempts--
	}
	return true
}

// Leased returns the tiles covered by an unexpired lease at the
// given instant, in tile order.
func (lt *LeaseTable) Leased(now time.Time) []int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var tiles []int
	for i := range lt.tiles {
		t := &lt.tiles[i]
		if t.state == tileLeased && now.Before(t.deadline) {
			tiles = append(tiles, i)
		}
	}
	return tiles
}

// Exported tile states (TileState.State).
const (
	// TileStateFree: never granted, expired-and-not-yet-reissued, or
	// released.
	TileStateFree = iota
	// TileStateLeased: covered by a grant (possibly past deadline).
	TileStateLeased
	// TileStateDone: completed exactly once.
	TileStateDone
)

// TileState is one tile's serializable lease state — the unit of the
// table's Export/Import round-trip, which a durable coordinator
// snapshots and replays so a restart resumes the lease book exactly
// where the crash left it.
type TileState struct {
	State          int    `json:"s"`
	Seq            uint64 `json:"q,omitempty"`
	DeadlineUnixNs int64  `json:"d,omitempty"`
	Attempts       int    `json:"a,omitempty"`
}

// Export snapshots the table: the grant-sequence counter and every
// tile's state. Import of the result reproduces the table exactly.
func (lt *LeaseTable) Export() (seq uint64, tiles []TileState) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	tiles = make([]TileState, len(lt.tiles))
	for i := range lt.tiles {
		t := &lt.tiles[i]
		ts := TileState{State: t.state, Seq: t.seq, Attempts: t.attempts}
		if !t.deadline.IsZero() {
			ts.DeadlineUnixNs = t.deadline.UnixNano()
		}
		tiles[i] = ts
	}
	return lt.seq, tiles
}

// ImportLeaseTable rebuilds a table from an Export. Unknown states
// come back free; the sequence counter is raised to cover every
// imported seq so re-granted tiles can never collide with
// pre-snapshot tokens.
func ImportLeaseTable(seq uint64, tiles []TileState) *LeaseTable {
	lt := NewLeaseTable(len(tiles))
	for i, ts := range tiles {
		t := &lt.tiles[i]
		switch ts.State {
		case TileStateLeased:
			t.state = tileLeased
		case TileStateDone:
			t.state = tileDone
			lt.done++
		default:
			t.state = tileFree
		}
		t.seq = ts.Seq
		t.attempts = ts.Attempts
		if ts.DeadlineUnixNs != 0 {
			t.deadline = time.Unix(0, ts.DeadlineUnixNs)
		}
		if ts.Seq > seq {
			seq = ts.Seq
		}
	}
	lt.seq = seq
	return lt
}

// RestoreGrant re-applies a journaled grant during replay: the tile
// becomes leased under exactly the recorded coordinates, so a worker
// that survived the coordinator crash can still renew and complete
// under its pre-crash token, and a dead worker's restored lease
// re-issues when its recorded deadline passes. Completed tiles are
// left alone (a grant record can precede the completion that
// superseded it in the same journal).
func (lt *LeaseTable) RestoreGrant(tile int, seq uint64, attempt int, deadline time.Time) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if tile < 0 || tile >= len(lt.tiles) {
		return
	}
	t := &lt.tiles[tile]
	if t.state != tileDone {
		t.state = tileLeased
		t.seq = seq
		t.deadline = deadline
		t.attempts = attempt
	}
	if seq > lt.seq {
		lt.seq = seq
	}
}

// RestoreDone re-applies a journaled completion during replay,
// marking the tile done regardless of its lease state.
func (lt *LeaseTable) RestoreDone(tile int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if tile < 0 || tile >= len(lt.tiles) {
		return
	}
	t := &lt.tiles[tile]
	if t.state != tileDone {
		t.state = tileDone
		lt.done++
	}
}
