package sched

import (
	"testing"
	"time"

	"trigene/internal/combin"
)

// TestSubsetTriplesSpace: the stage-2 source spans exactly the
// C(survivors, 3) triple ranks over survivor positions, with
// degenerate survivor counts clamped to an empty space.
func TestSubsetTriplesSpace(t *testing.T) {
	s := SubsetTriples(12, 4)
	if s.Ranks() != combin.Triples(12) {
		t.Errorf("ranks = %d, want C(12,3) = %d", s.Ranks(), combin.Triples(12))
	}
	if b := s.Bounds(); b.Lo != 0 || b.Hi != combin.Triples(12) {
		t.Errorf("bounds %+v", b)
	}
	if g := s.Grain(); g <= 0 {
		t.Errorf("grain = %d", g)
	}
	for _, survivors := range []int{-5, 0, 2} {
		if r := SubsetTriples(survivors, 2).Ranks(); r != 0 {
			t.Errorf("SubsetTriples(%d) spans %d ranks, want 0", survivors, r)
		}
	}
}

// TestSeededExtensionsSpace: the seeded source is the dense
// seeds×span rank grid (consumers skip collisions rank-locally), with
// negative inputs clamped to an empty space.
func TestSeededExtensionsSpace(t *testing.T) {
	s := SeededExtensions(3, 20, 2)
	if s.Ranks() != 60 {
		t.Errorf("ranks = %d, want 3*20", s.Ranks())
	}
	if b := s.Bounds(); b.Lo != 0 || b.Hi != 60 {
		t.Errorf("bounds %+v", b)
	}
	for _, dims := range [][2]int{{-1, 20}, {3, -7}, {0, 20}, {3, 0}} {
		if r := SeededExtensions(dims[0], dims[1], 2).Ranks(); r != 0 {
			t.Errorf("SeededExtensions(%d,%d) spans %d ranks, want 0", dims[0], dims[1], r)
		}
	}
}

// TestAcquireBelowPhaseGate: the two-stage lease gate. Tiles below
// the limit (the stage-1 screen shards) grant, expire and re-issue
// exactly like plain Acquire; tiles at or past the limit are
// untouchable until the caller raises it, and DoneBelow reports
// stage-1 completion so a coordinator knows when to open the gate.
func TestAcquireBelowPhaseGate(t *testing.T) {
	now := time.Unix(0, 0)
	ttl := time.Second
	lt := NewLeaseTable(5)

	l0, ok := lt.AcquireBelow(now, ttl, 2)
	if !ok || l0.Tile != 0 || l0.Attempt != 1 {
		t.Fatalf("first grant = %+v, %v", l0, ok)
	}
	l1, ok := lt.AcquireBelow(now, ttl, 2)
	if !ok || l1.Tile != 1 {
		t.Fatalf("second grant = %+v, %v", l1, ok)
	}
	// Tiles 2-4 are free, but the gate holds them back.
	if l, ok := lt.AcquireBelow(now, ttl, 2); ok {
		t.Fatalf("gated table granted tile %d", l.Tile)
	}
	if got := lt.DoneBelow(2); got != 0 {
		t.Fatalf("DoneBelow = %d before any completion", got)
	}

	if st := lt.Complete(l0.Tile, l0.Seq); st != CompleteAccepted {
		t.Fatalf("complete tile 0 = %v", st)
	}
	if got := lt.DoneBelow(2); got != 1 {
		t.Fatalf("DoneBelow = %d, want 1", got)
	}

	// An expired stage-1 lease re-issues inside the gate; the stale
	// holder's completion is discarded and the re-issue's counts.
	later := now.Add(2 * ttl)
	r1, ok := lt.AcquireBelow(later, ttl, 2)
	if !ok || r1.Tile != 1 || r1.Attempt != 2 {
		t.Fatalf("re-issue = %+v, %v", r1, ok)
	}
	if st := lt.Complete(l1.Tile, l1.Seq); st != CompleteStale {
		t.Fatalf("stale complete = %v", st)
	}
	if st := lt.Complete(r1.Tile, r1.Seq); st != CompleteAccepted {
		t.Fatalf("re-issued complete = %v", st)
	}
	if got := lt.DoneBelow(2); got != 2 {
		t.Fatalf("DoneBelow = %d, want 2 (stage 1 drained)", got)
	}

	// Stage 1 drained: a limit at or past the table size behaves like
	// Acquire and hands out the stage-2 tiles in order.
	for want := 2; want < 5; want++ {
		l, ok := lt.AcquireBelow(later, ttl, 99)
		if !ok || l.Tile != want {
			t.Fatalf("post-gate grant = %+v, %v (want tile %d)", l, ok, want)
		}
	}
	if _, ok := lt.AcquireBelow(later, ttl, 99); ok {
		t.Fatal("granted a sixth lease from a 5-tile table")
	}
	// DoneBelow clamps its limit to the table size.
	if got := lt.DoneBelow(99); got != 2 {
		t.Fatalf("DoneBelow(99) = %d, want 2", got)
	}
}
