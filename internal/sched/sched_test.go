package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSourceBoundsAndGrain(t *testing.T) {
	s := NewSource(10, 110, 7)
	if s.Ranks() != 100 || s.Grain() != 7 {
		t.Errorf("ranks=%d grain=%d", s.Ranks(), s.Grain())
	}
	if b := s.Bounds(); b.Lo != 10 || b.Hi != 110 {
		t.Errorf("bounds %+v", b)
	}
	// Inverted and zero-grain inputs are clamped, not accepted.
	if NewSource(5, 2, 0).Ranks() != 0 {
		t.Error("inverted range not clamped")
	}
	if NewSource(0, 10, -3).Grain() != 1 {
		t.Error("grain not clamped to 1")
	}
	if g := s.WithGrain(13).Grain(); g != 13 {
		t.Errorf("WithGrain = %d", g)
	}
}

func TestAutoGrainClamps(t *testing.T) {
	if g := AutoGrain(100, 4); g != 256 {
		t.Errorf("small space grain %d, want 256 floor", g)
	}
	if g := AutoGrain(1<<40, 1); g != 1<<20 {
		t.Errorf("huge space grain %d, want 1<<20 ceiling", g)
	}
	if g := AutoGrain(64*1000*8, 8); g != 1000 {
		t.Errorf("mid grain %d, want 1000", g)
	}
	if g := AutoGrain(1<<20, 0); g < 256 {
		t.Errorf("zero consumers grain %d", g)
	}
}

// TestAutoGrainBoundaries pins the heuristic at the edges of its
// domain: degenerate totals, more consumers than ranks, and totals
// near the int64 ceiling (where a naive consumers*64 multiplier would
// overflow before the clamp could apply).
func TestAutoGrainBoundaries(t *testing.T) {
	cases := []struct {
		name      string
		total     int64
		consumers int
		want      int64
	}{
		{"zero total", 0, 8, MinGrain},
		{"negative total", -100, 8, MinGrain},
		{"total smaller than consumers", 7, 64, MinGrain},
		{"one rank one consumer", 1, 1, MinGrain},
		{"negative consumers clamp to one", 1 << 20, -3, 1 << 20 / 64},
		{"max int64 total", math.MaxInt64, 1, MaxGrain},
		{"max int64 total, max consumers", math.MaxInt64, math.MaxInt32, MaxGrain},
		{"huge total huge pool stays clamped", math.MaxInt64 / 2, 1 << 20, MaxGrain},
	}
	for _, tc := range cases {
		if g := AutoGrain(tc.total, tc.consumers); g != tc.want {
			t.Errorf("%s: AutoGrain(%d, %d) = %d, want %d", tc.name, tc.total, tc.consumers, g, tc.want)
		}
	}
	// Every possible output respects the exported clamps.
	for _, total := range []int64{0, 1, MinGrain, 1 << 30, math.MaxInt64} {
		for _, cons := range []int{0, 1, 7, 1 << 16, math.MaxInt32} {
			g := AutoGrain(total, cons)
			if g < MinGrain || g > MaxGrain {
				t.Fatalf("AutoGrain(%d, %d) = %d escapes [%d, %d]", total, cons, g, MinGrain, MaxGrain)
			}
		}
	}
}

// TestShardCoversSpaceExactly: shards are contiguous, near-equal, and
// their union is the source — the bit-exact merge precondition.
func TestShardCoversSpaceExactly(t *testing.T) {
	for _, tc := range []struct {
		total int64
		count int
	}{{100, 3}, {7, 7}, {5, 9}, {0, 4}, {1 << 20, 13}} {
		src := NewSource(0, tc.total, 64)
		var lo int64
		var sizes []int64
		for i := 0; i < tc.count; i++ {
			sh, err := src.Shard(Shard{Index: i, Count: tc.count})
			if err != nil {
				t.Fatal(err)
			}
			b := sh.Bounds()
			if b.Lo != lo {
				t.Fatalf("total=%d count=%d shard %d starts at %d, want %d", tc.total, tc.count, i, b.Lo, lo)
			}
			lo = b.Hi
			sizes = append(sizes, sh.Ranks())
		}
		if lo != tc.total {
			t.Errorf("total=%d count=%d shards end at %d", tc.total, tc.count, lo)
		}
		for _, s := range sizes {
			if s < tc.total/int64(tc.count) || s > tc.total/int64(tc.count)+1 {
				t.Errorf("total=%d count=%d shard sizes %v not near-equal", tc.total, tc.count, sizes)
			}
		}
	}
	if _, err := NewSource(0, 10, 1).Shard(Shard{Index: 2, Count: 2}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := (Shard{Index: -1, Count: 3}).Validate(); err == nil {
		t.Error("negative shard index accepted")
	}
}

func TestPartitionStatic(t *testing.T) {
	src := NewSource(5, 25, 1)
	parts := src.Partition(3)
	if len(parts) != 3 {
		t.Fatalf("parts %v", parts)
	}
	lo := int64(5)
	for _, p := range parts {
		if p.Lo != lo {
			t.Errorf("gap at %d: %+v", lo, p)
		}
		lo = p.Hi
	}
	if lo != 25 {
		t.Errorf("partition ends at %d", lo)
	}
	// More parts than ranks: empty tiles are dropped.
	if got := NewSource(0, 2, 1).Partition(5); len(got) != 2 {
		t.Errorf("tiny partition %v", got)
	}
	if got := NewSource(0, 0, 1).Partition(4); len(got) != 0 {
		t.Errorf("empty partition %v", got)
	}
}

// TestPartitionCoversExactly: the static partition is contiguous,
// gap-free and near-equal for arbitrary sizes (the property the
// baseline's bit-exact shard merges rest on).
func TestPartitionCoversExactly(t *testing.T) {
	f := func(totalRaw uint32, partsRaw uint8) bool {
		total := int64(totalRaw % 100000)
		parts := int(partsRaw%64) + 1
		rs := NewSource(0, total, 1).Partition(parts)
		var sum, prev int64
		for _, r := range rs {
			if r.Lo != prev || r.Hi <= r.Lo {
				return false
			}
			sum += r.Len()
			prev = r.Hi
		}
		if total == 0 {
			return len(rs) == 0
		}
		minLen, maxLen := rs[0].Len(), rs[0].Len()
		for _, r := range rs {
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
		}
		return sum == total && prev == total && maxLen-minLen <= 1 && len(rs) <= parts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCursorClaimExactCoverage: concurrent consumers with mixed claim
// multipliers cover every rank exactly once.
func TestCursorClaimExactCoverage(t *testing.T) {
	const total = 100_000
	cur := NewCursor(NewSource(0, total, 64))
	var mu sync.Mutex
	covered := make([]bool, total)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		grains := int64(1 + w%3) // mixed per-consumer claim sizes
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tile, ok := cur.Claim(grains)
				if !ok {
					return
				}
				mu.Lock()
				for r := tile.Lo; r < tile.Hi; r++ {
					if covered[r] {
						t.Errorf("rank %d claimed twice", r)
					}
					covered[r] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for r, ok := range covered {
		if !ok {
			t.Fatalf("rank %d never claimed", r)
		}
	}
}

func TestDrainCountsAndProgress(t *testing.T) {
	src := NewSource(0, 10_000, 128)
	cur := NewCursor(src)
	var last atomic.Int64
	cur.OnProgress(src.Ranks(), func(done, total int64) {
		if total != 10_000 {
			t.Errorf("progress total %d", total)
		}
		for {
			prev := last.Load()
			if done <= prev || last.CompareAndSwap(prev, done) {
				break
			}
		}
	})
	var scored atomic.Int64
	err := cur.Drain(context.Background(), 4, func(_ int, tile Tile) (int64, error) {
		scored.Add(tile.Len())
		return tile.Len(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if scored.Load() != 10_000 || last.Load() != 10_000 {
		t.Errorf("scored %d, final progress %d", scored.Load(), last.Load())
	}
}

func TestDrainFirstErrorWins(t *testing.T) {
	cur := NewCursor(NewSource(0, 1000, 10))
	boom := errors.New("boom")
	err := cur.Drain(context.Background(), 3, func(_ int, tile Tile) (int64, error) {
		if tile.Lo >= 500 {
			return 0, boom
		}
		return tile.Len(), nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestConsumeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cur := NewCursor(NewSource(0, 1000, 10))
	err := cur.Consume(ctx, 1, func(t Tile) (int64, error) { return t.Len(), nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

// TestConsumeCancelWithinOneTile: cancellation mid-drain is observed
// between claims, so a consumer finishes at most the tile it holds and
// claims no further work.
func TestConsumeCancelWithinOneTile(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cur := NewCursor(NewSource(0, 1000, 10)) // 100 tiles
	var tiles int
	err := cur.Consume(ctx, 1, func(tile Tile) (int64, error) {
		tiles++
		cancel() // cancelled while the first tile is in flight
		return tile.Len(), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if tiles != 1 {
		t.Errorf("consumer processed %d tiles after cancellation, want 1", tiles)
	}
}

// TestDrainCancelWithinOneTilePerConsumer: each pool consumer finishes
// at most its in-flight tile, so a cancelled search returns within one
// tile per consumer instead of draining the space.
func TestDrainCancelWithinOneTilePerConsumer(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const consumers = 4
	cur := NewCursor(NewSource(0, 100000, 10)) // 10000 tiles
	var tiles atomic.Int64
	err := cur.Drain(ctx, consumers, func(w int, tile Tile) (int64, error) {
		tiles.Add(1)
		cancel()
		return tile.Len(), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if n := tiles.Load(); n > consumers {
		t.Errorf("pool processed %d tiles after cancellation, want at most %d (one in flight each)", n, consumers)
	}
}

// TestWorkStealingImbalance: a fast and a slow consumer sharing one
// cursor both finish when the space drains — the slow one cannot idle
// the fast one, which is the heterogeneous backend's guarantee.
func TestWorkStealingImbalance(t *testing.T) {
	cur := NewCursor(NewSource(0, 4096, 16))
	var fast, slow int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = cur.Consume(context.Background(), 1, func(t Tile) (int64, error) {
			atomic.AddInt64(&fast, t.Len())
			return t.Len(), nil
		})
	}()
	go func() {
		defer wg.Done()
		_ = cur.Consume(context.Background(), 4, func(t Tile) (int64, error) {
			for i := 0; i < 1000; i++ { // artificially slow consumer
				_ = fmt.Sprintf("%d", i)
			}
			atomic.AddInt64(&slow, t.Len())
			return t.Len(), nil
		})
	}()
	wg.Wait()
	if fast+slow != 4096 {
		t.Errorf("coverage %d + %d != 4096", fast, slow)
	}
	if fast == 0 || slow == 0 {
		t.Logf("one-sided split fast=%d slow=%d (allowed but unusual)", fast, slow)
	}
}

func TestClaimZeroGrainsClamped(t *testing.T) {
	cur := NewCursor(NewSource(0, 10, 4))
	tile, ok := cur.Claim(0)
	if !ok || tile.Len() != 4 {
		t.Errorf("claim(0) = %+v, %v", tile, ok)
	}
}
