package sched

import "testing"

// TestPermutationsSpace: the permutation source spans exactly the
// permutation count and shards into contiguous ranges that tile the
// whole space, with degenerate counts clamped to an empty space.
func TestPermutationsSpace(t *testing.T) {
	s := Permutations(1000, 4)
	if s.Ranks() != 1000 {
		t.Errorf("ranks = %d, want 1000", s.Ranks())
	}
	if b := s.Bounds(); b.Lo != 0 || b.Hi != 1000 {
		t.Errorf("bounds %+v", b)
	}
	if g := s.Grain(); g <= 0 {
		t.Errorf("grain = %d", g)
	}
	for _, count := range []int{-3, 0} {
		if r := Permutations(count, 2).Ranks(); r != 0 {
			t.Errorf("Permutations(%d) spans %d ranks, want 0", count, r)
		}
	}

	// Shards partition [0, count) contiguously and exhaustively — the
	// property the cluster's hit-count merge relies on.
	const shards = 7
	next := int64(0)
	for i := 0; i < shards; i++ {
		sub, err := s.Shard(Shard{Index: i, Count: shards})
		if err != nil {
			t.Fatal(err)
		}
		b := sub.Bounds()
		if b.Lo != next {
			t.Errorf("shard %d starts at %d, want %d", i, b.Lo, next)
		}
		next = b.Hi
	}
	if next != 1000 {
		t.Errorf("shards cover [0,%d), want [0,1000)", next)
	}
}
