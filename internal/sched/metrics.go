package sched

import (
	"strconv"

	"trigene/internal/obs"
)

// cursorMetrics is a Cursor's resolved series; the zero value (nil
// metrics) is a no-op, so the uninstrumented claim path pays only nil
// checks and the instrumented one two atomic adds per tile — both
// allocation-free.
type cursorMetrics struct {
	tiles *obs.Counter
	ranks *obs.Counter
	items *obs.Counter
}

// Instrument registers the cursor's series on reg, labeled by the
// space kind ("flat" or "blocked"), and starts recording: tiles and
// ranks claimed, work items finished, and the claim grain in use.
// Call before consumers start. A nil registry is a no-op.
func (c *Cursor) Instrument(reg *obs.Registry, space string) {
	if reg == nil {
		return
	}
	l := obs.L("space", space)
	c.m = cursorMetrics{
		tiles: reg.Counter("trigene_sched_tiles_claimed_total", "Tiles claimed from the scheduling cursor.", l),
		ranks: reg.Counter("trigene_sched_ranks_claimed_total", "Ranks covered by claimed tiles.", l),
		items: reg.Counter("trigene_sched_items_finished_total", "Work items reported finished.", l),
	}
	reg.Gauge("trigene_sched_grain", "Ranks per claim of the most recent instrumented cursor.", l).
		Set(float64(c.src.grain))
}

// Instrument registers a per-consumer realized-rate collector on reg:
// each scrape samples Rate for every consumer slot, labeled
// consumer="0".., under the given metric name (which must be a valid
// metric name; pass something namespaced like
// "trigene_engine_consumer_items_per_second"). Re-registering the
// name rebinds the collector to this meter — each search run's meter
// takes over the series. A nil registry is a no-op.
func (m *ThroughputMeter) Instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(name, "Realized per-consumer throughput in items/second.", func() []obs.Sample {
		samples := make([]obs.Sample, 0, len(m.cells))
		for i := range m.cells {
			samples = append(samples, obs.Sample{
				Value:  m.Rate(i),
				Labels: []obs.Label{obs.L("consumer", strconv.Itoa(i))},
			})
		}
		return samples
	})
}
