// Package device catalogs the 13 CPU and GPU devices of the paper's
// experimental evaluation (Tables I and II), extended with the
// microarchitectural parameters the roofline model, the GPU simulator
// and the analytical performance models need.
//
// Fields lifted verbatim from the paper's tables are marked "Table I"
// or "Table II" in the comments; the remaining parameters (cache sizes,
// bandwidths, TDP) come from vendor specification sheets and are only
// used to shape modeled results, never presented as measurements.
package device

import (
	"fmt"
	"runtime"
)

// CPU describes one CPU system from Table I.
type CPU struct {
	ID   string // paper's system label, e.g. "CI3"
	Name string
	Arch string

	Sockets        int     // number of packages in the system
	CoresPerSocket int     // physical cores per package
	BaseGHz        float64 // Table I base frequency
	VectorBits     int     // Table I vector width (AVX=256, AVX512=512; CA1 executes AVX as 2x128)

	// HasAVX512 marks CI2/CI3; such systems are also evaluated with the
	// 256-bit AVX build for fair cross-vendor comparison (Figure 3).
	HasAVX512 bool
	// HasVectorPopcnt marks Ice Lake SP's AVX512-VPOPCNTDQ: the single
	// feature the paper identifies as decisive for CPU performance.
	HasVectorPopcnt bool
	// ExtractsPerPopcnt is how many vector-extract instructions each
	// scalar POPCNT costs when vector POPCNT is missing (2 on Skylake
	// SP with 512-bit registers, 1 elsewhere).
	ExtractsPerPopcnt int
	// Pipes128 is the number of 128-bit vector execution halves: Zen 1
	// executes 256-bit AVX as two 128-bit uops (Table I lists CA1 at
	// 128-bit).
	Pipes128 bool
	// VectorDownclock is the frequency derating applied when running
	// the widest vector ISA (AVX-512 license downclocking on Skylake
	// SP).
	VectorDownclock float64

	L1dBytes int
	L1dWays  int
	L2Bytes  int
	L3Bytes  int // per socket

	DRAMGBs  float64 // peak memory bandwidth per socket
	L3GBs    float64 // sustained L3 bandwidth per socket (model parameter)
	TDPWatts float64 // per socket
}

// TotalCores returns cores across all sockets.
func (c CPU) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// VectorInt32Lanes returns how many 32-bit elements one vector register
// holds at the given ISA width.
func (c CPU) VectorInt32Lanes(avx512 bool) int {
	if avx512 && c.HasAVX512 {
		return 16
	}
	return 8
}

// GPU describes one GPU from Table II.
type GPU struct {
	ID   string // paper's system label, e.g. "GN1"
	Name string
	Arch string

	BoostGHz    float64 // Table II boost frequency
	CUs         int     // Table II compute units
	StreamCores int     // Table II stream cores (total)
	PopcntPerCU float64 // Table II POPCNT per cycle per CU

	WarpSize        int // scheduling granularity (32, or 64 on GCN/CDNA)
	L2Bytes         int
	L2BytesPerCycle float64 // aggregate L2 -> CU bandwidth
	DRAMGBs         float64
	TDPWatts        float64

	// SharedPopcntPipe marks devices where POPCNT executes on the same
	// execution units as the other ALU work (Intel Gen9.5/Gen12 EUs),
	// so the two cannot overlap. NVIDIA and AMD expose dedicated
	// integer paths that the paper's throughput numbers reflect.
	SharedPopcntPipe bool
}

// StreamCoresPerCU returns stream cores per compute unit.
func (g GPU) StreamCoresPerCU() int { return g.StreamCores / g.CUs }

// cpus lists Table I. Cache geometry and bandwidth from vendor specs.
var cpus = []CPU{
	{
		ID: "CI1", Name: "Intel Core i7-8700K", Arch: "SKL",
		Sockets: 1, CoresPerSocket: 6, BaseGHz: 3.7, VectorBits: 256,
		ExtractsPerPopcnt: 1, VectorDownclock: 1.0,
		L1dBytes: 32 << 10, L1dWays: 8, L2Bytes: 256 << 10, L3Bytes: 12 << 20,
		DRAMGBs: 41.6, L3GBs: 200, TDPWatts: 95,
	},
	{
		ID: "CI2", Name: "Intel Xeon Gold 6140 (x2)", Arch: "SKX",
		Sockets: 2, CoresPerSocket: 18, BaseGHz: 2.3, VectorBits: 512,
		HasAVX512: true, ExtractsPerPopcnt: 2, VectorDownclock: 0.80,
		L1dBytes: 32 << 10, L1dWays: 8, L2Bytes: 1 << 20, L3Bytes: 24750 << 10,
		DRAMGBs: 119.2, L3GBs: 350, TDPWatts: 140,
	},
	{
		ID: "CI3", Name: "Intel Xeon Platinum 8360Y (x2)", Arch: "ICX",
		Sockets: 2, CoresPerSocket: 36, BaseGHz: 2.4, VectorBits: 512,
		HasAVX512: true, HasVectorPopcnt: true, ExtractsPerPopcnt: 0, VectorDownclock: 0.95,
		L1dBytes: 48 << 10, L1dWays: 12, L2Bytes: 1280 << 10, L3Bytes: 54 << 20,
		DRAMGBs: 204.8, L3GBs: 500, TDPWatts: 250,
	},
	{
		ID: "CA1", Name: "AMD EPYC 7601", Arch: "Zen",
		Sockets: 2, CoresPerSocket: 32, BaseGHz: 2.2, VectorBits: 256,
		Pipes128: true, ExtractsPerPopcnt: 1, VectorDownclock: 1.0,
		L1dBytes: 32 << 10, L1dWays: 8, L2Bytes: 512 << 10, L3Bytes: 64 << 20,
		DRAMGBs: 170.7, L3GBs: 400, TDPWatts: 180,
	},
	{
		ID: "CA2", Name: "AMD EPYC 7302P", Arch: "Zen2",
		Sockets: 1, CoresPerSocket: 16, BaseGHz: 3.0, VectorBits: 256,
		ExtractsPerPopcnt: 1, VectorDownclock: 1.0,
		L1dBytes: 32 << 10, L1dWays: 8, L2Bytes: 512 << 10, L3Bytes: 128 << 20,
		DRAMGBs: 204.8, L3GBs: 450, TDPWatts: 155,
	},
}

// gpus lists Table II. The paper marks Intel and AMD POPCNT rates as
// obtained experimentally (4, ~12, ~10).
var gpus = []GPU{
	{
		ID: "GI1", Name: "Intel Graphics UHD P630", Arch: "Gen9.5",
		BoostGHz: 1.200, CUs: 24, StreamCores: 192, PopcntPerCU: 4,
		WarpSize: 32, L2Bytes: 768 << 10, L2BytesPerCycle: 64, DRAMGBs: 41.6, TDPWatts: 45, SharedPopcntPipe: true,
	},
	{
		ID: "GI2", Name: "Intel Iris Xe MAX", Arch: "Gen12",
		BoostGHz: 1.650, CUs: 96, StreamCores: 768, PopcntPerCU: 4,
		WarpSize: 32, L2Bytes: 16 << 20, L2BytesPerCycle: 128, DRAMGBs: 68, TDPWatts: 25, SharedPopcntPipe: true,
	},
	{
		ID: "GN1", Name: "NVIDIA Titan Xp", Arch: "Pascal",
		BoostGHz: 1.582, CUs: 30, StreamCores: 3840, PopcntPerCU: 32,
		WarpSize: 32, L2Bytes: 3 << 20, L2BytesPerCycle: 1024, DRAMGBs: 547.6, TDPWatts: 250,
	},
	{
		ID: "GN2", Name: "NVIDIA Titan V", Arch: "Volta",
		BoostGHz: 1.455, CUs: 80, StreamCores: 5120, PopcntPerCU: 16,
		WarpSize: 32, L2Bytes: 4608 << 10, L2BytesPerCycle: 2048, DRAMGBs: 652.8, TDPWatts: 250,
	},
	{
		ID: "GN3", Name: "NVIDIA Titan RTX", Arch: "Turing",
		BoostGHz: 1.770, CUs: 72, StreamCores: 4608, PopcntPerCU: 16,
		WarpSize: 32, L2Bytes: 6 << 20, L2BytesPerCycle: 2048, DRAMGBs: 672, TDPWatts: 280,
	},
	{
		ID: "GN4", Name: "NVIDIA A100 (250W)", Arch: "Ampere",
		BoostGHz: 1.410, CUs: 108, StreamCores: 6912, PopcntPerCU: 16,
		WarpSize: 32, L2Bytes: 40 << 20, L2BytesPerCycle: 4096, DRAMGBs: 1555, TDPWatts: 250,
	},
	{
		ID: "GA1", Name: "AMD Radeon Pro VII", Arch: "Vega20",
		BoostGHz: 1.700, CUs: 60, StreamCores: 3840, PopcntPerCU: 12,
		WarpSize: 64, L2Bytes: 4 << 20, L2BytesPerCycle: 1024, DRAMGBs: 1024, TDPWatts: 250,
	},
	{
		ID: "GA2", Name: "AMD Instinct MI100", Arch: "CDNA",
		BoostGHz: 1.502, CUs: 120, StreamCores: 7680, PopcntPerCU: 12,
		WarpSize: 64, L2Bytes: 8 << 20, L2BytesPerCycle: 2048, DRAMGBs: 1228.8, TDPWatts: 300,
	},
	{
		ID: "GA3", Name: "AMD Radeon RX 6900 XT", Arch: "RDNA2",
		BoostGHz: 2.250, CUs: 80, StreamCores: 5120, PopcntPerCU: 10,
		WarpSize: 32, L2Bytes: 4 << 20, L2BytesPerCycle: 1024, DRAMGBs: 512, TDPWatts: 300,
	},
}

// AllCPUs returns the Table I systems in paper order.
func AllCPUs() []CPU { return append([]CPU(nil), cpus...) }

// AllGPUs returns the Table II systems in paper order.
func AllGPUs() []GPU { return append([]GPU(nil), gpus...) }

// Host synthesizes a CPU entry describing the live machine, the
// planner's input when no catalog device is named. Only the core count
// is probed (pure Go cannot read vector ISA or clocks portably); every
// other parameter is a conservative contemporary default. The entry is
// a planning model, never presented as a measurement.
func Host() CPU {
	cores := runtime.NumCPU()
	if cores < 1 {
		cores = 1
	}
	return CPU{
		ID: "HOST", Name: "live host", Arch: "host",
		Sockets: 1, CoresPerSocket: cores, BaseGHz: 2.5, VectorBits: 256,
		ExtractsPerPopcnt: 1, VectorDownclock: 1.0,
		L1dBytes: 32 << 10, L1dWays: 8, L2Bytes: 512 << 10, L3Bytes: 16 << 20,
		DRAMGBs: 40, L3GBs: 250, TDPWatts: 15 + 6*float64(cores),
	}
}

// CPUByID looks a CPU up by its paper label (e.g. "CI3").
func CPUByID(id string) (CPU, error) {
	for _, c := range cpus {
		if c.ID == id {
			return c, nil
		}
	}
	return CPU{}, fmt.Errorf("device: unknown CPU %q", id)
}

// GPUByID looks a GPU up by its paper label (e.g. "GN1").
func GPUByID(id string) (GPU, error) {
	for _, g := range gpus {
		if g.ID == id {
			return g, nil
		}
	}
	return GPU{}, fmt.Errorf("device: unknown GPU %q", id)
}
