package device

import "testing"

// These tests pin the catalog to the paper's Tables I and II.

func TestTableICatalog(t *testing.T) {
	want := []struct {
		id         string
		arch       string
		ghz        float64
		cores      int
		vectorBits int
		avx512     bool
	}{
		{"CI1", "SKL", 3.7, 6, 256, false},
		{"CI2", "SKX", 2.3, 36, 512, true},
		{"CI3", "ICX", 2.4, 72, 512, true},
		{"CA1", "Zen", 2.2, 64, 256, false},
		{"CA2", "Zen2", 3.0, 16, 256, false},
	}
	all := AllCPUs()
	if len(all) != len(want) {
		t.Fatalf("catalog has %d CPUs, want %d", len(all), len(want))
	}
	for i, w := range want {
		c := all[i]
		if c.ID != w.id || c.Arch != w.arch || c.BaseGHz != w.ghz ||
			c.TotalCores() != w.cores || c.VectorBits != w.vectorBits || c.HasAVX512 != w.avx512 {
			t.Errorf("CPU %d = %+v, want %+v", i, c, w)
		}
	}
}

func TestTableIICatalog(t *testing.T) {
	want := []struct {
		id          string
		arch        string
		ghz         float64
		cus         int
		streamCores int
		popcnt      float64
	}{
		{"GI1", "Gen9.5", 1.200, 24, 192, 4},
		{"GI2", "Gen12", 1.650, 96, 768, 4},
		{"GN1", "Pascal", 1.582, 30, 3840, 32},
		{"GN2", "Volta", 1.455, 80, 5120, 16},
		{"GN3", "Turing", 1.770, 72, 4608, 16},
		{"GN4", "Ampere", 1.410, 108, 6912, 16},
		{"GA1", "Vega20", 1.700, 60, 3840, 12},
		{"GA2", "CDNA", 1.502, 120, 7680, 12},
		{"GA3", "RDNA2", 2.250, 80, 5120, 10},
	}
	all := AllGPUs()
	if len(all) != len(want) {
		t.Fatalf("catalog has %d GPUs, want %d", len(all), len(want))
	}
	for i, w := range want {
		g := all[i]
		if g.ID != w.id || g.Arch != w.arch || g.BoostGHz != w.ghz ||
			g.CUs != w.cus || g.StreamCores != w.streamCores || g.PopcntPerCU != w.popcnt {
			t.Errorf("GPU %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestOnlyICXHasVectorPopcnt(t *testing.T) {
	for _, c := range AllCPUs() {
		if c.HasVectorPopcnt != (c.ID == "CI3") {
			t.Errorf("%s: HasVectorPopcnt = %v", c.ID, c.HasVectorPopcnt)
		}
	}
}

func TestSKXExtractOverhead(t *testing.T) {
	c, err := CPUByID("CI2")
	if err != nil {
		t.Fatal(err)
	}
	if c.ExtractsPerPopcnt != 2 {
		t.Errorf("SKX extracts per popcnt = %d, want 2", c.ExtractsPerPopcnt)
	}
	if c.VectorDownclock >= 1.0 {
		t.Error("SKX should downclock under AVX-512")
	}
}

func TestVectorLanes(t *testing.T) {
	ci3, _ := CPUByID("CI3")
	if ci3.VectorInt32Lanes(true) != 16 || ci3.VectorInt32Lanes(false) != 8 {
		t.Error("ICX lanes wrong")
	}
	ca2, _ := CPUByID("CA2")
	if ca2.VectorInt32Lanes(true) != 8 { // no AVX-512: request is ignored
		t.Error("Zen2 lanes wrong")
	}
}

func TestStreamCoresPerCU(t *testing.T) {
	gn1, _ := GPUByID("GN1")
	if gn1.StreamCoresPerCU() != 128 {
		t.Errorf("Titan Xp stream cores per CU = %d, want 128", gn1.StreamCoresPerCU())
	}
	gi2, _ := GPUByID("GI2")
	if gi2.StreamCoresPerCU() != 8 {
		t.Errorf("Iris Xe MAX stream cores per CU = %d, want 8", gi2.StreamCoresPerCU())
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := CPUByID("CX9"); err == nil {
		t.Error("unknown CPU accepted")
	}
	if _, err := GPUByID("GX9"); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestCatalogCopiesAreIndependent(t *testing.T) {
	a := AllCPUs()
	a[0].BaseGHz = 99
	b := AllCPUs()
	if b[0].BaseGHz == 99 {
		t.Error("AllCPUs should return a copy")
	}
}

func TestPlausibleModelParameters(t *testing.T) {
	for _, c := range AllCPUs() {
		if c.L1dBytes <= 0 || c.L2Bytes <= 0 || c.L3Bytes <= 0 || c.DRAMGBs <= 0 || c.TDPWatts <= 0 {
			t.Errorf("%s has missing model parameters: %+v", c.ID, c)
		}
	}
	for _, g := range AllGPUs() {
		if g.L2Bytes <= 0 || g.DRAMGBs <= 0 || g.TDPWatts <= 0 || g.WarpSize <= 0 || g.L2BytesPerCycle <= 0 {
			t.Errorf("%s has missing model parameters: %+v", g.ID, g)
		}
		if g.StreamCores%g.CUs != 0 {
			t.Errorf("%s stream cores %d not divisible by CUs %d", g.ID, g.StreamCores, g.CUs)
		}
	}
}
