package engine

import (
	"testing"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/score"
)

func TestBuildSplitKMatchesReference(t *testing.T) {
	mx := randomMatrix(140, 9, 201) // odd N exercises pad correction
	s := dataset.SplitBinarize(mx)
	for _, snps := range [][]int{
		{0, 1}, {2, 7}, {0, 3, 6}, {1, 4, 8}, {0, 2, 4, 6}, {1, 3, 5, 7, 8},
	} {
		cells := contingency.CellsK(len(snps))
		gotC, gotK := make([]int32, cells), make([]int32, cells)
		wantC, wantK := make([]int32, cells), make([]int32, cells)
		if err := contingency.BuildSplitK(s, snps, gotC, gotK); err != nil {
			t.Fatal(err)
		}
		if err := contingency.BuildReferenceK(mx, snps, wantC, wantK); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cells; i++ {
			if gotC[i] != wantC[i] || gotK[i] != wantK[i] {
				t.Fatalf("snps %v cell %d: (%d,%d), want (%d,%d)",
					snps, i, gotC[i], gotK[i], wantC[i], wantK[i])
			}
		}
	}
}

func TestBuildSplitKOrder3MatchesTableBuilder(t *testing.T) {
	mx := randomMatrix(141, 7, 130)
	s := dataset.SplitBinarize(mx)
	tab := contingency.BuildSplit(s, 1, 3, 6)
	ctrl, cases := make([]int32, 27), make([]int32, 27)
	if err := contingency.BuildSplitK(s, []int{1, 3, 6}, ctrl, cases); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 27; i++ {
		if ctrl[i] != tab.Counts[dataset.Control][i] || cases[i] != tab.Counts[dataset.Case][i] {
			t.Fatalf("cell %d differs from specialized builder", i)
		}
	}
}

func TestRunKOrder3MatchesRun(t *testing.T) {
	mx := randomMatrix(142, 14, 160)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunK(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Score != want.Best.Score ||
		got.Best.SNPs[0] != want.Best.Triple.I ||
		got.Best.SNPs[1] != want.Best.Triple.J ||
		got.Best.SNPs[2] != want.Best.Triple.K {
		t.Errorf("RunK(3) best %v %.6f, Run best %v %.6f",
			got.Best.SNPs, got.Best.Score, want.Best.Triple, want.Best.Score)
	}
}

func TestRunKOrder2MatchesRunPairs(t *testing.T) {
	mx := randomMatrix(143, 16, 140)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.RunPairs(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunK(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.SNPs[0] != want.Best.Pair.I || got.Best.SNPs[1] != want.Best.Pair.J {
		t.Errorf("RunK(2) best %v, RunPairs best %+v", got.Best.SNPs, want.Best.Pair)
	}
	// Scores use different cell widths (9 embedded in 27 vs pure 9)
	// but must be numerically identical: empty cells contribute zero.
	if got.Best.Score != want.Best.Score {
		t.Errorf("RunK(2) score %.9f != RunPairs %.9f", got.Best.Score, want.Best.Score)
	}
}

func TestRunKOrder4BruteForce(t *testing.T) {
	mx := randomMatrix(144, 9, 90)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	// Brute force via the reference builder.
	bestScore := obj.Worst()
	var bestSNPs []int
	comb := []int{0, 1, 2, 3}
	for {
		ctrl, cases := make([]int32, 81), make([]int32, 81)
		if err := contingency.BuildReferenceK(mx, comb, ctrl, cases); err != nil {
			t.Fatal(err)
		}
		sc := score.K2Cells(ctrl, cases, score.NewLnFact(mx.Samples()+1))
		if obj.Better(sc, bestScore) {
			bestScore = sc
			bestSNPs = append([]int(nil), comb...)
		}
		if !combin.NextK(comb, 9) {
			break
		}
	}
	got, err := s.RunK(4, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Score != bestScore {
		t.Errorf("RunK(4) score %.9f, brute force %.9f", got.Best.Score, bestScore)
	}
	for i := range bestSNPs {
		if got.Best.SNPs[i] != bestSNPs[i] {
			t.Errorf("RunK(4) best %v, brute force %v", got.Best.SNPs, bestSNPs)
			break
		}
	}
	if got.Stats.Combinations != combin.Binomial(9, 4) {
		t.Errorf("combinations %d", got.Stats.Combinations)
	}
}

func TestRunKWorkerInvariance(t *testing.T) {
	mx := randomMatrix(145, 12, 100)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.RunK(4, Options{Workers: 1, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		res, err := s.RunK(4, Options{Workers: workers, TopK: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.TopK {
			if res.TopK[i].Score != base.TopK[i].Score {
				t.Errorf("workers=%d TopK[%d] differs", workers, i)
			}
		}
	}
}

func TestRunKValidation(t *testing.T) {
	mx := randomMatrix(146, 8, 50)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunK(1, Options{}); err == nil {
		t.Error("order 1 accepted")
	}
	if _, err := s.RunK(contingency.MaxOrder+1, Options{}); err == nil {
		t.Error("excessive order accepted")
	}
	if _, err := s.RunK(9, Options{}); err == nil {
		t.Error("order beyond SNP count accepted")
	}
}

func TestCellsKBounds(t *testing.T) {
	if contingency.CellsK(2) != 9 || contingency.CellsK(3) != 27 || contingency.CellsK(4) != 81 {
		t.Error("CellsK wrong")
	}
	for _, bad := range []int{0, contingency.MaxOrder + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CellsK(%d) should panic", bad)
				}
			}()
			contingency.CellsK(bad)
		}()
	}
	// Builder argument validation.
	mx := randomMatrix(147, 5, 40)
	s := dataset.SplitBinarize(mx)
	if err := contingency.BuildSplitK(s, []int{0}, make([]int32, 3), make([]int32, 3)); err == nil {
		t.Error("order 1 accepted by builder")
	}
	if err := contingency.BuildSplitK(s, []int{0, 1}, make([]int32, 5), make([]int32, 9)); err == nil {
		t.Error("wrong cell slice length accepted")
	}
	if err := contingency.BuildReferenceK(mx, []int{0, 1}, make([]int32, 5), make([]int32, 9)); err == nil {
		t.Error("reference builder accepted bad lengths")
	}
}
