package engine

import (
	"fmt"

	"trigene/internal/combin"
	"trigene/internal/sched"
)

// HotLoop exposes one consumer's steady-state claim→score step outside
// the worker pool, so tests and the benchsuite can measure the hot
// path directly: allocations per processed tile (which must be zero
// once warm) and tiles per second. It is not safe for concurrent use;
// Close returns the pooled scratch.
type HotLoop struct {
	flat    *flatWorker
	blocked *blockWorker
	src     sched.Source
	rm      runMetrics // resolved once; Process stays allocation-free
}

// NewHotLoop builds a single consumer for the configured approach over
// the full work space: combination-rank tiles for V1/V2, block-triple
// tiles for V3/V4.
func (s *Searcher) NewHotLoop(opts Options) (*HotLoop, error) {
	opts.Workers = 1
	o, err := opts.withDefaults(s.st.Samples())
	if err != nil {
		return nil, err
	}
	if o.Shard != nil || o.RankRange != nil || o.Tiles != nil {
		return nil, fmt.Errorf("engine: HotLoop probes the full space")
	}
	m := s.st.SNPs()
	rm := resolveRunMetrics(o.Metrics, o.Approach)
	switch o.Approach {
	case V1Naive, V2Split:
		fw := &flatWorker{o: &o, m: m, a: getArena(o.Objective, o.TopK, 0)}
		if o.Approach == V1Naive {
			fw.bin = s.st.Binarized()
		} else {
			fw.split = s.st.Split()
		}
		return &HotLoop{
			flat: fw,
			src:  sched.Flat(combin.Triples(m), 1),
			rm:   rm,
		}, nil
	default:
		bs := o.BlockSNPs
		if bs > m {
			bs = m
		}
		nb := combin.TripleBlocks(m, bs)
		return &HotLoop{
			blocked: newBlockWorker(s, &o, bs, nb),
			src:     sched.NewSource(0, combin.Triples(nb+2), 1),
			rm:      rm,
		}, nil
	}
}

// Tiles returns how many tiles the space holds.
func (h *HotLoop) Tiles() int64 {
	g := h.src.Grain()
	return (h.src.Ranks() + g - 1) / g
}

// Tile returns the i'th tile of the space.
func (h *HotLoop) Tile(i int64) sched.Tile {
	g := h.src.Grain()
	b := h.src.Bounds()
	lo := b.Lo + i*g
	hi := lo + g
	if hi > b.Hi {
		hi = b.Hi
	}
	return sched.Tile{Lo: lo, Hi: hi}
}

// Process runs the claim→score step for one tile and returns how many
// combinations it scored. After the first few tiles have warmed the
// top-K heap, Process performs zero heap allocations.
func (h *HotLoop) Process(t sched.Tile) int64 {
	var n int64
	if h.flat != nil {
		n = h.flat.tile(t)
	} else {
		n = h.blocked.tile(t)
	}
	h.rm.observe(n)
	return n
}

// Scored returns the cumulative combinations processed.
func (h *HotLoop) Scored() int64 {
	if h.flat != nil {
		return h.flat.a.scored
	}
	return h.blocked.a.scored
}

// Close releases the pooled scratch.
func (h *HotLoop) Close() {
	if h.flat != nil {
		h.flat.a.release()
		h.flat = nil
	}
	if h.blocked != nil {
		h.blocked.a.release()
		h.blocked = nil
	}
}
