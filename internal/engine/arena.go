package engine

import (
	"sync"

	"trigene/internal/contingency"
	"trigene/internal/score"
)

// arena is one consumer's reusable scratch for the claim→score loop:
// a contingency table (flat paths), a bank of block tables (blocked
// paths), the generic k-way buffers, and the consumer's top-K heap.
// Arenas are pooled across runs so a Session serving repeated
// searches allocates nothing in the steady state beyond warm-up.
type arena struct {
	// tab is the flat paths' single reusable table; taking its address
	// for the objective would otherwise heap-allocate per combination.
	tab contingency.Table
	// tables is the blocked paths' BS^3 table bank.
	tables []contingency.Table
	// pair is the fused paths' cached pair-AND plane buffer
	// (contingency.PairPlanes * BlockWords words).
	pair []uint64
	// comb/ctrl/cases are the generic k-way buffers.
	comb        []int
	ctrl, cases []int32
	// top accumulates this consumer's best candidates.
	top *topK
	// scored counts the combinations this consumer evaluated.
	scored int64
}

var arenaPool = sync.Pool{New: func() interface{} { return new(arena) }}

// getArena returns a pooled arena reset for one consumer: a top-K of
// depth k under obj and (for the blocked paths) a bank of tables
// block tables.
func getArena(obj score.Objective, k, tables int) *arena {
	a := arenaPool.Get().(*arena)
	a.scored = 0
	if a.top == nil {
		a.top = newTopK(obj, k)
	} else {
		a.top.reset(obj, k)
	}
	if cap(a.tables) < tables {
		a.tables = make([]contingency.Table, tables)
	}
	a.tables = a.tables[:tables]
	return a
}

// sizePair grows the arena's pair-plane buffer to hold words words, so
// the fused hot loop reuses it allocation-free across block triples.
func (a *arena) sizePair(words int) {
	if cap(a.pair) < words {
		a.pair = make([]uint64, words)
	}
	a.pair = a.pair[:words]
}

// sizeK grows the arena's k-way buffers for the given order.
func (a *arena) sizeK(order, cells int) {
	if cap(a.comb) < order {
		a.comb = make([]int, order)
	}
	a.comb = a.comb[:order]
	if cap(a.ctrl) < cells {
		a.ctrl = make([]int32, cells)
		a.cases = make([]int32, cells)
	}
	a.ctrl, a.cases = a.ctrl[:cells], a.cases[:cells]
}

// release returns the arena to the pool. The caller must have copied
// or merged everything it needs first (the top-K contents are reused
// by the next consumer).
func (a *arena) release() { arenaPool.Put(a) }
