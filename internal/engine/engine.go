// Package engine implements the paper's primary contribution: an
// exhaustive third-order epistasis search with four progressively
// optimized CPU approaches.
//
//	V1 (naive)      three stored genotype planes per SNP plus a
//	                phenotype vector; every frequency cell costs three
//	                plane ANDs, a phenotype AND/ANDNOT and two POPCNTs.
//	V2 (split)      dataset split by phenotype class and genotype-2
//	                planes inferred with NOR, removing the phenotype
//	                from the hot loop (~65% fewer compute operations,
//	                ~1/3 fewer bytes).
//	V3 (blocked)    V2 plus loop tiling: blocks of BS SNPs and BP
//	                samples sized so the BS^3 frequency tables plus the
//	                data block fit in the L1 data cache (Algorithm 1).
//	V4 (vector)     V3 with the multi-word lane kernels standing in for
//	                the paper's AVX/AVX-512 intrinsics.
//	V3F/V4F (fused) the blocked pipelines with the (i1, i2) pair-AND
//	                planes hoisted out of the innermost loop: the nine
//	                genotype-pair products are built once per word-block
//	                into an arena buffer and every i0 pass is a fused
//	                AND+POPCNT over the cached planes (V4F additionally
//	                streams two i0 per pass with multi-word unrolled
//	                popcounts, and is the default).
//
// Work is distributed over a pool of workers that claim chunks of the
// combination space (or of the block-triple space for V3/V4) from an
// atomic cursor, mirroring the paper's dynamically scheduled thread
// pool; every worker keeps a private best/top-K that is reduced at the
// end, so the hot path has no synchronization.
package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"trigene/internal/carm"
	"trigene/internal/combin"
	"trigene/internal/dataset"
	"trigene/internal/obs"
	"trigene/internal/sched"
	"trigene/internal/score"
	"trigene/internal/store"
)

// Approach selects one of the paper's four CPU pipelines.
type Approach int

const (
	// V1Naive is the Figure 1 baseline pipeline.
	V1Naive Approach = iota + 1
	// V2Split adds the phenotype split and NOR genotype inference.
	V2Split
	// V3Blocked adds L1-sized loop tiling (Algorithm 1).
	V3Blocked
	// V4Vector adds the lane-vectorized kernels.
	V4Vector
	// V3Fused restructures V3 so the (i1, i2) pair-AND planes are built
	// once per word-block into an arena buffer and reused across the
	// whole ii0 loop (1 NOR + 27 AND per combination word instead of
	// 3 NOR + 36 AND).
	V3Fused
	// V4Fused adds the multi-word unrolled popcount chains and the
	// two-i0-per-pass kernel on top of the cached pair planes — the
	// fused successor to V4 and the default pipeline.
	V4Fused
)

// String returns the approach name used in reports ("V1".."V4").
func (a Approach) String() string {
	switch a {
	case V1Naive:
		return "V1"
	case V2Split:
		return "V2"
	case V3Blocked:
		return "V3"
	case V4Vector:
		return "V4"
	case V3Fused:
		return "V3F"
	case V4Fused:
		return "V4F"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// ParseApproach accepts "V1".."V4", the fused variants "V3F"/"V4F"
// (also reachable as "V5"/"V6" for wire forms that serialize the
// numeric value), plain digits, or the descriptive names "naive",
// "split", "blocked", "vector", "fused-blocked" and "fused", all
// case-insensitively.
func ParseApproach(s string) (Approach, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "v1", "1", "naive":
		return V1Naive, nil
	case "v2", "2", "split":
		return V2Split, nil
	case "v3", "3", "blocked":
		return V3Blocked, nil
	case "v4", "4", "vector", "vectorized":
		return V4Vector, nil
	case "v3f", "v5", "5", "fused-blocked", "fusedblocked", "blocked-fused":
		return V3Fused, nil
	case "v4f", "v6", "6", "fused", "fused-vector", "fusedvector", "vector-fused":
		return V4Fused, nil
	default:
		return 0, fmt.Errorf("engine: unknown approach %q (want V1..V4, V3F/V4F, or naive/split/blocked/vector/fused)", s)
	}
}

// fused reports whether the approach drives the pair-AND-caching
// kernels.
func (a Approach) fused() bool { return a == V3Fused || a == V4Fused }

// blocked reports whether the approach runs the block-tiled path
// (anything past the flat V1/V2 pipelines).
func (a Approach) blocked() bool { return a >= V3Blocked }

// Triple identifies a SNP combination i < j < k.
type Triple struct {
	I, J, K int
}

// Less orders triples lexicographically; it breaks score ties so every
// approach and worker count returns the same winner.
func (t Triple) Less(o Triple) bool {
	if t.I != o.I {
		return t.I < o.I
	}
	if t.J != o.J {
		return t.J < o.J
	}
	return t.K < o.K
}

// String renders the triple as "(i,j,k)".
func (t Triple) String() string { return fmt.Sprintf("(%d,%d,%d)", t.I, t.J, t.K) }

// Candidate is a scored SNP triple.
type Candidate struct {
	Triple Triple
	Score  float64
}

// Stats reports the volume and speed of a completed search.
type Stats struct {
	// Combinations is the number of SNP triples evaluated: C(M,3).
	Combinations int64
	// Elements is the paper's work metric: Combinations x N.
	Elements float64
	// Duration is the wall time of the search phase (excluding dataset
	// binarization, which Searcher performs once up front).
	Duration time.Duration
	// ElementsPerSec is Elements / Duration.
	ElementsPerSec float64
}

// Result is the outcome of an exhaustive search.
type Result struct {
	// Best is the winning candidate (ties broken by lexicographic
	// triple order, so results are deterministic).
	Best Candidate
	// TopK holds the best candidates in best-first order, up to
	// Options.TopK entries.
	TopK []Candidate
	// Stats describes the completed run.
	Stats Stats
	// Space is the covered slice of the scheduler's work space when
	// Shard or RankRange restricted the run; nil means the full space.
	// For the flat approaches the ranks are colexicographic
	// combination ranks; for the blocked approaches (BlockSpace true)
	// they are block-triple ranks.
	Space *sched.Tile
	// BlockSpace reports whether Space ranks are block triples.
	BlockSpace bool
}

// Options configures a search. The zero value means: V4F, all CPUs,
// K2 objective, top-1, auto-tiled for a 32 KiB L1d, 8 lanes.
type Options struct {
	// Approach selects the pipeline (default V4Fused).
	Approach Approach
	// Workers is the pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// Objective ranks candidates (default Bayesian K2).
	Objective score.Objective
	// TopK is how many candidates to return (default 1).
	TopK int
	// BlockSNPs (BS) and BlockWords (BP, in 64-bit words) tile the
	// blocked approaches. Zero derives both from L1DataBytes with the
	// paper's sizing rule.
	BlockSNPs  int
	BlockWords int
	// L1DataBytes is the L1 data cache size used to derive tile
	// parameters (default 32 KiB).
	L1DataBytes int
	// Lanes selects the V4 kernel width: 1, 4 or 8 (default 8).
	Lanes int
	// Context optionally allows cancellation; a nil Context means
	// context.Background(). Cancellation is observed between work
	// chunks and returns the context error.
	Context context.Context
	// RankRange restricts the search to combination ranks [Lo, Hi) in
	// colexicographic order. Nil means the full space. Supported by
	// the flat approaches (V1, V2) only; Shard is the backend-agnostic
	// generalization.
	RankRange *combin.Range
	// Shard restricts the search to slice Index of Count of the
	// scheduler's work space: combination ranks for the flat
	// approaches and orders 2/k, block-triple ranks for V3/V4. Every
	// approach and order supports it; mutually exclusive with
	// RankRange.
	Shard *sched.Shard
	// Grain overrides the flat source's ranks-per-claim tile size
	// (0 = the AutoGrain heuristic). The planner seeds it from the
	// modeled per-worker throughput; it never affects results, only
	// how the space is cut. Clamped to sched's [MinGrain, MaxGrain].
	Grain int64
	// Meter, when non-nil, receives per-consumer throughput samples as
	// workers finish tiles: worker w records into consumer MeterBase+w.
	// A heterogeneous run shares one meter between the CPU pool and
	// the device consumer so the realized split is observable live.
	Meter *sched.ThroughputMeter
	// MeterBase offsets this run's worker indices inside Meter.
	MeterBase int
	// Tiles optionally supplies an externally shared claiming cursor:
	// the run's workers then steal work from the same space as any
	// other consumer of that cursor (the heterogeneous backend's CPU
	// half). Flat approaches only; RankRange, Shard and Progress are
	// ignored when set (the cursor owns the space and its progress).
	Tiles *sched.Cursor
	// Progress, when non-nil, is invoked from worker goroutines as
	// work chunks complete, with the cumulative number of evaluated
	// combinations and the total. It must be safe for concurrent use
	// and should return quickly.
	Progress func(done, total int64)
	// Metrics, when non-nil, receives the run's counters: tiles and
	// combinations scored per approach, plus the scheduler's claim
	// series. Metric pointers are resolved before the pool starts and
	// updated once per drained tile with plain atomic adds, so the hot
	// path stays allocation-free with a live registry attached.
	Metrics *obs.Registry
}

func (o Options) withDefaults(maxSamples int) (Options, error) {
	if o.Approach == 0 {
		o.Approach = V4Fused
	}
	if o.Approach < V1Naive || o.Approach > V4Fused {
		return o, fmt.Errorf("engine: invalid approach %d", int(o.Approach))
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("engine: negative worker count %d", o.Workers)
	}
	if o.Objective == nil {
		o.Objective = score.NewK2(maxSamples)
	}
	if o.TopK == 0 {
		o.TopK = 1
	}
	if o.TopK < 0 {
		return o, fmt.Errorf("engine: negative TopK %d", o.TopK)
	}
	if o.L1DataBytes == 0 {
		o.L1DataBytes = 32 << 10
	}
	if o.L1DataBytes < 1024 {
		return o, fmt.Errorf("engine: implausible L1 size %d bytes", o.L1DataBytes)
	}
	if o.BlockSNPs == 0 && o.BlockWords == 0 {
		if o.Approach.fused() {
			o.BlockSNPs, o.BlockWords = FusedTileParams(o.L1DataBytes)
		} else {
			o.BlockSNPs, o.BlockWords = TileParams(o.L1DataBytes)
		}
	}
	if o.BlockSNPs < 1 || o.BlockWords < 1 {
		if o.Approach.blocked() {
			return o, fmt.Errorf("engine: invalid tile %dx%d", o.BlockSNPs, o.BlockWords)
		}
		o.BlockSNPs, o.BlockWords = 1, 1
	}
	if o.Lanes == 0 {
		o.Lanes = 8
	}
	if o.Lanes != 1 && o.Lanes != 4 && o.Lanes != 8 {
		return o, fmt.Errorf("engine: lanes must be 1, 4 or 8, got %d", o.Lanes)
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if r := o.RankRange; r != nil {
		if o.Approach != V1Naive && o.Approach != V2Split {
			return o, fmt.Errorf("engine: RankRange requires approach V1 or V2, have %v", o.Approach)
		}
		if r.Lo < 0 || r.Hi < r.Lo {
			return o, fmt.Errorf("engine: invalid rank range [%d,%d)", r.Lo, r.Hi)
		}
		if o.Shard != nil {
			return o, fmt.Errorf("engine: RankRange and Shard are mutually exclusive")
		}
	}
	if o.Shard != nil {
		if err := o.Shard.Validate(); err != nil {
			return o, err
		}
	}
	if o.Tiles != nil && o.Approach != V1Naive && o.Approach != V2Split {
		return o, fmt.Errorf("engine: a shared tile cursor requires approach V1 or V2, have %v", o.Approach)
	}
	if o.Grain < 0 {
		return o, fmt.Errorf("engine: negative grain %d", o.Grain)
	}
	if o.Grain > 0 {
		if o.Grain < sched.MinGrain {
			o.Grain = sched.MinGrain
		}
		if o.Grain > sched.MaxGrain {
			o.Grain = sched.MaxGrain
		}
	}
	return o, nil
}

// TileParams derives the paper's loop-tiling parameters from an L1
// data cache budget: the frequency-table region gets ~7/12 of the
// cache (the paper uses 7 ways) and the data block ~1/3, so
//
//	BS = floor(cbrt(sizeFT / (2*27*4)))          [paper's beta_int = 4]
//	BP = sizeBlock / (BS * 4 * 2)  samples, rounded down to whole
//	     64-bit words (at least one).
func TileParams(l1Bytes int) (blockSNPs, blockWords int) {
	sizeFT := l1Bytes * 7 / 12
	sizeBlock := l1Bytes / 3
	bs := int(math.Cbrt(float64(sizeFT) / (2 * 27 * 4)))
	if bs < 2 {
		bs = 2
	}
	bp := sizeBlock / (bs * 4 * 2) // samples
	bw := bp / 64
	if bw < 1 {
		bw = 1
	}
	return bs, bw
}

// fusedXBatch is how many i0 candidates the fused V4 kernel streams
// against one cached pair-plane pass (AccumulateFusedX2).
const fusedXBatch = 2

// FusedTileParams derives the fused kernels' tile from the same L1
// budget split as TileParams, with the word-block resized by
// carm.FusedTileWords: the data third of the cache must now hold the
// nine cached pair-AND planes plus the streamed x planes instead of
// six per-combination planes.
func FusedTileParams(l1Bytes int) (blockSNPs, blockWords int) {
	bs, _ := TileParams(l1Bytes)
	return bs, carm.FusedTileWords(l1Bytes, fusedXBatch)
}

// Searcher runs exhaustive searches over one dataset through its
// encoded-dataset store, which builds each binarized form lazily and
// memoizes it across runs: a V1 run materializes only the naive
// three-plane form, every other approach only the phenotype-split
// form. It is safe for concurrent use once constructed (runs
// themselves are internally parallel).
type Searcher struct {
	st *store.Store
}

// New validates the dataset and wraps it in a fresh encoded-dataset
// store. No encoding is built until the first run needs it.
func New(mx *dataset.Matrix) (*Searcher, error) {
	if mx.SNPs() < 3 {
		return nil, fmt.Errorf("engine: need at least 3 SNPs, have %d", mx.SNPs())
	}
	st, err := store.New(mx)
	if err != nil {
		return nil, err
	}
	return NewFromStore(st)
}

// NewFromStore wraps an existing encoded-dataset store (a Session's,
// or one loaded from a .tpack) so its memoized encodings are shared
// instead of rebuilt.
func NewFromStore(st *store.Store) (*Searcher, error) {
	if st.SNPs() < 3 {
		return nil, fmt.Errorf("engine: need at least 3 SNPs, have %d", st.SNPs())
	}
	return &Searcher{st: st}, nil
}

// Matrix returns the dataset the searcher was built from (decoding it
// on stores loaded from a pack).
func (s *Searcher) Matrix() *dataset.Matrix { return s.st.Matrix() }

// Store exposes the searcher's encoded-dataset store.
func (s *Searcher) Store() *store.Store { return s.st }

// Split exposes the phenotype-split form, building it on first use.
func (s *Searcher) Split() *dataset.Split { return s.st.Split() }

// Binarized exposes the naive three-plane form, building it on first
// use.
func (s *Searcher) Binarized() *dataset.Binarized { return s.st.Binarized() }

// Search is a convenience wrapper: build a Searcher and run once.
func Search(mx *dataset.Matrix, opts Options) (*Result, error) {
	s, err := New(mx)
	if err != nil {
		return nil, err
	}
	return s.Run(opts)
}

// Run executes an exhaustive search with the given options.
func (s *Searcher) Run(opts Options) (*Result, error) {
	o, err := opts.withDefaults(s.st.Samples())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var res *Result
	switch o.Approach {
	case V1Naive, V2Split:
		res, err = s.runFlat(o)
	default:
		res, err = s.runBlocked(o)
	}
	if err != nil {
		return nil, err
	}
	// Combinations is the count the workers actually scored, which is
	// the claimed share of the space on sharded and shared-cursor runs.
	res.Stats.Elements = float64(res.Stats.Combinations) * float64(s.st.Samples())
	res.Stats.Duration = time.Since(start)
	if secs := res.Stats.Duration.Seconds(); secs > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / secs
	}
	return res, nil
}
