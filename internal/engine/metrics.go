package engine

import "trigene/internal/obs"

// runMetrics is one run's resolved series, looked up before the
// worker pool starts so the drain callback does one nil check and two
// atomic adds per tile — never a registry lookup, never an
// allocation. The zero value is a no-op.
type runMetrics struct {
	tiles  *obs.Counter
	combos *obs.Counter
}

// resolveRunMetrics registers (or finds) the engine's per-approach
// series. A nil registry yields no-op metrics.
func resolveRunMetrics(reg *obs.Registry, a Approach) runMetrics {
	l := obs.L("approach", a.String())
	return runMetrics{
		tiles:  reg.Counter("trigene_engine_tiles_total", "Tiles scored by the search engine, by approach.", l),
		combos: reg.Counter("trigene_engine_combinations_total", "SNP combinations scored, by approach.", l),
	}
}

// observe records one drained tile.
func (rm *runMetrics) observe(combos int64) {
	rm.tiles.Inc()
	rm.combos.Add(combos)
}
