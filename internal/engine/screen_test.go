package engine

import (
	"testing"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/sched"
	"trigene/internal/score"
)

// TestPairScreenMatchesBruteForce: the stage-1 scan's per-SNP planes
// must equal a reference pair enumeration (every pair's score charged
// to both SNPs, best kept), and its seed list must equal the pair
// engine's own ranking — the screen is the pair search with a
// different accumulator, nothing more.
func TestPairScreenMatchesBruteForce(t *testing.T) {
	const m = 20
	mx := randomMatrix(300, m, 160)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	best := make([]float64, m)
	for i := range best {
		best[i] = obj.Worst()
	}
	combin.ForEachPair(m, func(i, j int) {
		tab := contingency.BuildReferencePair(mx, i, j)
		sc := obj.Score(&tab)
		if obj.Better(sc, best[i]) {
			best[i] = sc
		}
		if obj.Better(sc, best[j]) {
			best[j] = sc
		}
	})

	res, err := s.RunPairScreen(Options{Workers: 3, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SNPs != m {
		t.Fatalf("SNPs = %d, want %d", res.SNPs, m)
	}
	if res.Stats.Combinations != combin.Pairs(m) {
		t.Errorf("scanned %d pairs, want %d", res.Stats.Combinations, combin.Pairs(m))
	}
	if res.Space != nil {
		t.Errorf("unsharded scan recorded a Space: %+v", res.Space)
	}
	for i := 0; i < m; i++ {
		if !res.Seen[i] {
			t.Errorf("SNP %d unseen by a full scan", i)
			continue
		}
		if res.Best[i] != best[i] {
			t.Errorf("SNP %d best = %g, brute force %g", i, res.Best[i], best[i])
		}
	}

	pairs, err := s.RunPairs(Options{Workers: 2, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopPairs) != len(pairs.TopK) {
		t.Fatalf("seed list %d entries, pair search %d", len(res.TopPairs), len(pairs.TopK))
	}
	for i := range res.TopPairs {
		if res.TopPairs[i] != pairs.TopK[i] {
			t.Errorf("seed[%d] = %+v, pair search %+v", i, res.TopPairs[i], pairs.TopK[i])
		}
	}
}

// TestPairScreenShardedMergeMatchesFull: shards of the pair-rank
// space, merged elementwise (best-of per SNP, seed lists re-ranked),
// reproduce the full scan — the property cluster coordinators rely on
// when they run stage 1 as its own sharded phase.
func TestPairScreenShardedMergeMatchesFull(t *testing.T) {
	const m = 18
	mx := randomMatrix(301, m, 140)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	full, err := s.RunPairScreen(Options{TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{2, 3, 5} {
		best := make([]float64, m)
		seen := make([]bool, m)
		merged := newPairTopK(obj, 4)
		var combos int64
		for i := 0; i < count; i++ {
			res, err := s.RunPairScreen(Options{TopK: 4,
				Shard: &sched.Shard{Index: i, Count: count}})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, count, err)
			}
			if res.Space == nil {
				t.Fatalf("shard %d/%d: no Space recorded", i, count)
			}
			combos += res.Stats.Combinations
			for k := 0; k < m; k++ {
				if !res.Seen[k] {
					continue
				}
				if !seen[k] || obj.Better(res.Best[k], best[k]) {
					best[k], seen[k] = res.Best[k], true
				}
			}
			for _, c := range res.TopPairs {
				merged.offer(c)
			}
		}
		if combos != full.Stats.Combinations {
			t.Errorf("%d shards scanned %d pairs, full %d", count, combos, full.Stats.Combinations)
		}
		for k := 0; k < m; k++ {
			if seen[k] != full.Seen[k] || best[k] != full.Best[k] {
				t.Errorf("%d shards: SNP %d merged (%g,%v), full (%g,%v)",
					count, k, best[k], seen[k], full.Best[k], full.Seen[k])
			}
		}
		if len(merged.items) != len(full.TopPairs) {
			t.Fatalf("%d shards merge %d seeds, full %d", count, len(merged.items), len(full.TopPairs))
		}
		for i := range merged.items {
			if merged.items[i] != full.TopPairs[i] {
				t.Errorf("%d shards: seed[%d] = %+v, full %+v", count, i, merged.items[i], full.TopPairs[i])
			}
		}
	}
}

// TestSubsetValidation: the remap layer rejects malformed column
// lists loudly instead of building a corrupt sub-dataset.
func TestSubsetValidation(t *testing.T) {
	mx := randomMatrix(302, 10, 90)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	for _, cols := range [][]int{
		nil,
		{4},
		{0, 1},     // fewer than a triple needs
		{0, 5, 10}, // out of range high
		{-1, 2, 4}, // out of range low
		{3, 3, 5},  // duplicate
		{4, 2, 7},  // not increasing
	} {
		if _, err := s.Subset(cols); err == nil {
			t.Errorf("Subset(%v) accepted", cols)
		}
	}
}

// TestSubsetSearchMatchesRestrictedBruteForce: a search over the
// subset searcher, with positions translated back through the column
// list, equals a brute-force scan of exactly the triples drawn from
// those columns on the original matrix — the stage-2 correctness
// property of the screened pipeline.
func TestSubsetSearchMatchesRestrictedBruteForce(t *testing.T) {
	const m = 16
	mx := randomMatrix(303, m, 120)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	cols := []int{0, 2, 3, 7, 8, 11, 15}
	sub, err := s.Subset(cols)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	ref := newTopK(obj, 5)
	combin.ForEachTriple(len(cols), func(a, b, c int) {
		tab := contingency.BuildReference(mx, cols[a], cols[b], cols[c])
		ref.offer(Candidate{
			Triple: Triple{I: cols[a], J: cols[b], K: cols[c]},
			Score:  obj.Score(&tab),
		})
	})
	want := ref.list()

	for _, a := range []Approach{V2Split, V4Vector, V3Fused, V4Fused} {
		res, err := sub.Run(Options{Approach: a, TopK: 5})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Stats.Combinations != combin.Triples(len(cols)) {
			t.Errorf("%v: scored %d triples, want C(%d,3) = %d",
				a, res.Stats.Combinations, len(cols), combin.Triples(len(cols)))
		}
		if len(res.TopK) != len(want) {
			t.Fatalf("%v: top-K %d entries, want %d", a, len(res.TopK), len(want))
		}
		for i, c := range res.TopK {
			got := Candidate{
				Triple: Triple{I: cols[c.Triple.I], J: cols[c.Triple.J], K: cols[c.Triple.K]},
				Score:  c.Score,
			}
			if got != want[i] {
				t.Errorf("%v: TopK[%d] remaps to %+v, want %+v", a, i, got, want[i])
			}
		}
	}
}

// seededReference enumerates the triples RunSeeded must score: every
// triple containing at least one seed pair, minus those fully inside
// the subset mask, each exactly once.
func seededReference(m int, seeds []Pair, inSubset []bool) map[Triple]bool {
	isSeed := make(map[Pair]bool, len(seeds))
	for _, p := range seeds {
		isSeed[p] = true
	}
	want := make(map[Triple]bool)
	combin.ForEachTriple(m, func(i, j, k int) {
		if !isSeed[Pair{i, j}] && !isSeed[Pair{i, k}] && !isSeed[Pair{j, k}] {
			return
		}
		if inSubset != nil && inSubset[i] && inSubset[j] && inSubset[k] {
			return
		}
		want[Triple{I: i, J: j, K: k}] = true
	})
	return want
}

// TestSeededCoversEachExtensionOnce: the seeded stage-2 scan scores
// exactly the extension set — triples sharing a pair with the seed
// list, outside the survivor subset — and scores none of them twice,
// even when seeds overlap (two seeds inside one triple) or repeat
// (duplicate seed entries resolve to one canonical owner).
func TestSeededCoversEachExtensionOnce(t *testing.T) {
	const m = 14
	mx := randomMatrix(304, m, 110)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	// Subset {1,3,8}; seeds overlap on triple (1,3,5) and entry 3
	// duplicates entry 0. Triple (1,3,8) contains a seed but is fully
	// inside the subset, so stage 2 owns it and the scan must skip it.
	inSubset := make([]bool, m)
	for _, c := range []int{1, 3, 8} {
		inSubset[c] = true
	}
	seeds := []Pair{{1, 3}, {3, 5}, {2, 9}, {1, 3}}
	want := seededReference(m, seeds, inSubset)

	res, err := s.RunSeeded(seeds, inSubset, Options{Workers: 3, TopK: 2 * m * m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Combinations != int64(len(want)) {
		t.Errorf("scored %d extensions, reference has %d", res.Stats.Combinations, len(want))
	}
	if len(res.TopK) != len(want) {
		t.Fatalf("top-K holds %d candidates, reference has %d", len(res.TopK), len(want))
	}
	seenTriples := make(map[Triple]bool)
	for _, c := range res.TopK {
		if seenTriples[c.Triple] {
			t.Errorf("triple %+v scored twice", c.Triple)
		}
		seenTriples[c.Triple] = true
		if !want[c.Triple] {
			t.Errorf("triple %+v outside the extension set", c.Triple)
		}
		tab := contingency.BuildReference(mx, c.Triple.I, c.Triple.J, c.Triple.K)
		if sc := obj.Score(&tab); sc != c.Score {
			t.Errorf("triple %+v score %g, reference %g", c.Triple, c.Score, sc)
		}
	}

	// A nil mask widens the set to every seed-bearing triple.
	wantAll := seededReference(m, seeds, nil)
	all, err := s.RunSeeded(seeds, nil, Options{Workers: 2, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if all.Stats.Combinations != int64(len(wantAll)) {
		t.Errorf("maskless scan scored %d, reference %d", all.Stats.Combinations, len(wantAll))
	}
}

// TestSeededShardedMatchesFull: shards of the dense seeds×M extension
// space merge back to the full seeded result.
func TestSeededShardedMatchesFull(t *testing.T) {
	const m = 13
	mx := randomMatrix(305, m, 100)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	inSubset := make([]bool, m)
	for _, c := range []int{0, 4, 6, 10} {
		inSubset[c] = true
	}
	seeds := []Pair{{0, 4}, {2, 7}, {5, 11}}
	full, err := s.RunSeeded(seeds, inSubset, Options{TopK: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{2, 3} {
		merged := newTopK(obj, 6)
		var combos int64
		for i := 0; i < count; i++ {
			res, err := s.RunSeeded(seeds, inSubset, Options{TopK: 6,
				Shard: &sched.Shard{Index: i, Count: count}})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, count, err)
			}
			combos += res.Stats.Combinations
			for _, c := range res.TopK {
				merged.offer(c)
			}
		}
		if combos != full.Stats.Combinations {
			t.Errorf("%d shards scored %d extensions, full %d", count, combos, full.Stats.Combinations)
		}
		got := merged.list()
		if len(got) != len(full.TopK) {
			t.Fatalf("%d shards merge %d candidates, full %d", count, len(got), len(full.TopK))
		}
		for i := range got {
			if got[i] != full.TopK[i] {
				t.Errorf("%d shards: TopK[%d] = %+v, full %+v", count, i, got[i], full.TopK[i])
			}
		}
	}
}

// TestSeededInvalidInputs: malformed seeds and masks fail at the
// door, before any worker starts.
func TestSeededInvalidInputs(t *testing.T) {
	const m = 8
	mx := randomMatrix(306, m, 80)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	for _, seeds := range [][]Pair{
		{{3, 3}},  // i == j
		{{5, 2}},  // inverted
		{{-1, 2}}, // negative
		{{0, m}},  // out of range
	} {
		if _, err := s.RunSeeded(seeds, nil, Options{TopK: 2}); err == nil {
			t.Errorf("seeds %v accepted", seeds)
		}
	}
	if _, err := s.RunSeeded([]Pair{{0, 1}}, make([]bool, m-1), Options{TopK: 2}); err == nil {
		t.Error("short subset mask accepted")
	}
}
