package engine

import (
	"sync"
	"sync/atomic"

	"trigene/internal/combin"
	"trigene/internal/contingency"
)

// runFlat executes approaches V1 and V2: one full-length frequency
// table per combination, no tiling. Workers claim contiguous rank
// chunks of the combination space from an atomic cursor.
func (s *Searcher) runFlat(o Options) (*Result, error) {
	m := s.mx.SNPs()
	base, total := int64(0), combin.Triples(m)
	if r := o.RankRange; r != nil {
		base = r.Lo
		if r.Hi < total {
			total = r.Hi
		}
		if base >= total {
			return assemble(nil, o), nil
		}
	}
	chunk := flatChunkSize(total-base, o.Workers)

	var cursor, done atomic.Int64
	var firstErr errOnce
	tops := make([]*topK, o.Workers)
	var wg sync.WaitGroup
	for wk := 0; wk < o.Workers; wk++ {
		top := newTopK(o.Objective, o.TopK)
		tops[wk] = top
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable table per worker: taking its address for the
			// objective would otherwise heap-allocate per combination.
			var tab contingency.Table
			for {
				if err := o.Context.Err(); err != nil {
					firstErr.set(err)
					return
				}
				lo := base + cursor.Add(chunk) - chunk
				if lo >= total {
					return
				}
				hi := lo + chunk
				if hi > total {
					hi = total
				}
				i, j, k := combin.UnrankTriple(lo, m)
				for r := lo; r < hi; r++ {
					if o.Approach == V1Naive {
						tab = contingency.BuildNaive(s.bin, i, j, k)
					} else {
						tab = contingency.BuildSplit(s.split, i, j, k)
					}
					top.offer(Candidate{
						Triple: Triple{I: i, J: j, K: k},
						Score:  o.Objective.Score(&tab),
					})
					i, j, k, _ = combin.NextTriple(i, j, k, m)
				}
				if o.Progress != nil {
					o.Progress(done.Add(hi-lo), total-base)
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	return assemble(tops, o), nil
}

// errOnce records the first error reported by any worker.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// flatChunkSize balances scheduling overhead against load balance:
// aim for ~64 chunks per worker, clamped to [256, 1<<20] triples.
func flatChunkSize(total int64, workers int) int64 {
	chunk := total / (int64(workers) * 64)
	if chunk < 256 {
		chunk = 256
	}
	if chunk > 1<<20 {
		chunk = 1 << 20
	}
	return chunk
}

// assemble merges per-worker accumulators into a Result.
func assemble(tops []*topK, o Options) *Result {
	merged := newTopK(o.Objective, o.TopK)
	for _, t := range tops {
		merged.merge(t)
	}
	res := &Result{TopK: merged.list()}
	if len(res.TopK) > 0 {
		res.Best = res.TopK[0]
	}
	return res
}
