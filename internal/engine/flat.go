package engine

import (
	"time"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/sched"
)

// runFlat executes approaches V1 and V2: one full-length frequency
// table per combination, no tiling. Consumers claim tiles of
// combination ranks from a sched.Cursor — the run's own, or a shared
// one when another consumer (the simulated GPU of a heterogeneous
// run) is stealing from the same space.
func (s *Searcher) runFlat(o Options) (*Result, error) {
	res := &Result{}
	cur := o.Tiles
	if cur == nil {
		src, space, err := flatSpace(combin.Triples(s.st.SNPs()), &o)
		if err != nil {
			return nil, err
		}
		res.Space = space
		cur = sched.NewCursor(src)
		if o.Progress != nil {
			cur.OnProgress(src.Ranks(), o.Progress)
		}
	}

	// Resolve exactly the encoding this approach consumes — V1 the
	// naive three-plane form, V2 the phenotype-split form — once,
	// before the pool starts; the store memoizes it for every later
	// run.
	var bin *dataset.Binarized
	var split *dataset.Split
	if o.Approach == V1Naive {
		bin = s.st.Binarized()
	} else {
		split = s.st.Split()
	}
	workers := make([]*flatWorker, o.Workers)
	for w := range workers {
		workers[w] = &flatWorker{o: &o, m: s.st.SNPs(), bin: bin, split: split, a: getArena(o.Objective, o.TopK, 0)}
	}
	cur.Instrument(o.Metrics, "flat")
	rm := resolveRunMetrics(o.Metrics, o.Approach)
	err := cur.Drain(o.Context, o.Workers, func(w int, t sched.Tile) (int64, error) {
		if o.Meter == nil {
			n := workers[w].tile(t)
			rm.observe(n)
			return n, nil
		}
		start := time.Now()
		n := workers[w].tile(t)
		o.Meter.Record(o.MeterBase+w, n, time.Since(start))
		rm.observe(n)
		return n, nil
	})
	if err != nil {
		return nil, err
	}
	assembleFlat(res, &o, workers)
	return res, nil
}

// flatSpace builds the claimable source of a flat-rank run from the
// total space and the RankRange/Shard options, returning the covered
// slice when the options restricted it. The claim grain is sized from
// the restricted range, not the full space, so a small shard of a
// huge space still spreads across every worker.
func flatSpace(total int64, o *Options) (sched.Source, *sched.Tile, error) {
	lo, hi := int64(0), total
	var space *sched.Tile
	if r := o.RankRange; r != nil {
		if hi = r.Hi; hi > total {
			hi = total
		}
		if lo = r.Lo; lo > hi {
			lo = hi
		}
		space = &sched.Tile{Lo: lo, Hi: hi}
	}
	src := sched.NewSource(lo, hi, flatGrain(hi-lo, o))
	if o.Shard != nil {
		sub, err := src.Shard(*o.Shard)
		if err != nil {
			return src, nil, err
		}
		src = sub.WithGrain(flatGrain(sub.Ranks(), o))
		b := src.Bounds()
		space = &b
	}
	return src, space, nil
}

// flatGrain picks the ranks-per-claim for a flat run: the planner's
// hint reconciled with the AutoGrain heuristic (sched.SeededGrain
// owns that policy for every consumer of the scheduler).
func flatGrain(ranks int64, o *Options) int64 {
	return sched.SeededGrain(ranks, o.Workers, o.Grain)
}

// flatWorker is one consumer of the flat tile stream. Its arena holds
// the reusable table and top-K, so the steady-state tile loop
// allocates nothing.
type flatWorker struct {
	o     *Options
	m     int
	bin   *dataset.Binarized // V1 only
	split *dataset.Split     // V2 only
	a     *arena
}

// tile scores every combination rank in [t.Lo, t.Hi) and returns the
// count.
func (w *flatWorker) tile(t sched.Tile) int64 {
	naive := w.o.Approach == V1Naive
	obj := w.o.Objective
	i, j, k := combin.UnrankTriple(t.Lo, w.m)
	for r := t.Lo; r < t.Hi; r++ {
		if naive {
			w.a.tab = contingency.BuildNaive(w.bin, i, j, k)
		} else {
			w.a.tab = contingency.BuildSplit(w.split, i, j, k)
		}
		w.a.top.offer(Candidate{
			Triple: Triple{I: i, J: j, K: k},
			Score:  obj.Score(&w.a.tab),
		})
		i, j, k, _ = combin.NextTriple(i, j, k, w.m)
	}
	w.a.scored += t.Len()
	return t.Len()
}

// assembleFlat merges the workers' accumulators into res and returns
// their arenas to the pool.
func assembleFlat(res *Result, o *Options, workers []*flatWorker) {
	merged := newTopK(o.Objective, o.TopK)
	for _, w := range workers {
		merged.merge(w.a.top)
		res.Stats.Combinations += w.a.scored
		w.a.release()
	}
	res.TopK = merged.list()
	if len(res.TopK) > 0 {
		res.Best = res.TopK[0]
	}
}
