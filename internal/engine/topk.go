package engine

import (
	"sort"

	"trigene/internal/score"
)

// topK accumulates the k best candidates for one worker. The slice is
// kept sorted best-first; k is small (typically 1-100), so insertion
// sort beats a heap in practice and keeps the output ordering trivially
// deterministic.
type topK struct {
	obj   score.Objective
	k     int
	items []Candidate
}

func newTopK(obj score.Objective, k int) *topK {
	return &topK{obj: obj, k: k, items: make([]Candidate, 0, k)}
}

// better orders candidates: objective score first, lexicographic triple
// as the deterministic tie-break.
func (t *topK) better(a, b Candidate) bool {
	if a.Score != b.Score {
		return t.obj.Better(a.Score, b.Score)
	}
	return a.Triple.Less(b.Triple)
}

// offer inserts the candidate if it ranks among the k best seen.
func (t *topK) offer(c Candidate) {
	if t.k == 0 {
		return
	}
	if len(t.items) == t.k && !t.better(c, t.items[len(t.items)-1]) {
		return
	}
	pos := sort.Search(len(t.items), func(i int) bool { return t.better(c, t.items[i]) })
	if len(t.items) < t.k {
		t.items = append(t.items, Candidate{})
	}
	copy(t.items[pos+1:], t.items[pos:])
	t.items[pos] = c
}

// merge folds another accumulator's candidates into t.
func (t *topK) merge(o *topK) {
	for _, c := range o.items {
		t.offer(c)
	}
}

// list returns the accumulated candidates, best first.
func (t *topK) list() []Candidate { return t.items }
