package engine

import (
	"trigene/internal/score"
	"trigene/internal/topk"
)

// topK accumulates the k best candidates for one worker through the
// shared bounded sorted-insert (internal/topk). The comparator is
// built once per reset, so offer is allocation-free once the slice
// has grown to k entries — the hot-path requirement the scheduler
// arenas rely on.
type topK struct {
	obj   score.Objective
	k     int
	items []Candidate
	cmp   func(a, b Candidate) bool
}

func newTopK(obj score.Objective, k int) *topK {
	t := &topK{obj: obj, k: k, items: make([]Candidate, 0, k)}
	t.cmp = t.better
	return t
}

// reset prepares a pooled accumulator for a new consumer, keeping the
// backing array.
func (t *topK) reset(obj score.Objective, k int) {
	t.obj, t.k = obj, k
	t.items = t.items[:0]
	if t.cmp == nil {
		t.cmp = t.better
	}
}

// better orders candidates: objective score first, lexicographic triple
// as the deterministic tie-break.
func (t *topK) better(a, b Candidate) bool {
	if a.Score != b.Score {
		return t.obj.Better(a.Score, b.Score)
	}
	return a.Triple.Less(b.Triple)
}

// offer inserts the candidate if it ranks among the k best seen.
func (t *topK) offer(c Candidate) {
	t.items = topk.Insert(t.items, c, t.k, t.cmp)
}

// merge folds another accumulator's candidates into t.
func (t *topK) merge(o *topK) {
	for _, c := range o.items {
		t.offer(c)
	}
}

// list returns a copy of the accumulated candidates, best first. The
// copy detaches the result from the pooled backing array.
func (t *topK) list() []Candidate {
	if len(t.items) == 0 {
		return nil
	}
	return append([]Candidate(nil), t.items...)
}
