package engine

import (
	"testing"

	"trigene/internal/obs"
	"trigene/internal/sched"
	"trigene/internal/score"
)

// TestHotPathAllocs proves the steady-state claim→score loop performs
// zero heap allocations per scored combination on the approaches the
// paper's throughput story rests on: V2 (flat split kernel), V4
// (blocked lane-vectorized kernel) and the fused pair-AND variants.
// The per-consumer arenas (pooled contingency tables, the pair-plane
// buffer, reused top-K heaps) are what make this hold. The guarantee
// must survive instrumentation, so every approach is probed twice:
// without metrics and with a live registry attached (counters are
// resolved at construction; the per-tile update is atomic adds only).
// The screened search's index-remap layer (Searcher.Subset) must
// preserve the guarantee — its sub-searcher is probed alongside the
// full one, since stage 2 runs the same hot loops over survivors.
func TestHotPathAllocs(t *testing.T) {
	mx := randomMatrix(200, 32, 320)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	survivors := make([]int, 0, 24)
	for c := 0; c < 32; c++ {
		if c%4 != 1 { // 24 survivors of 32, with gaps to exercise the remap
			survivors = append(survivors, c)
		}
	}
	sub, err := s.Subset(survivors)
	if err != nil {
		t.Fatal(err)
	}
	searchers := []struct {
		name string
		s    *Searcher
	}{{"full", s}, {"subset", sub}}
	for _, probe := range searchers {
		for _, reg := range []*obs.Registry{nil, obs.NewRegistry()} {
			for _, a := range []Approach{V2Split, V4Vector, V3Fused, V4Fused} {
				h, err := probe.s.NewHotLoop(Options{Approach: a, TopK: 4, Metrics: reg})
				if err != nil {
					t.Fatal(err)
				}
				tiles := h.Tiles()
				if tiles < 2 {
					t.Fatalf("%s/%v: space too small to probe (%d tiles)", probe.name, a, tiles)
				}
				// Warm-up: grow the top-K heap to depth and fault in the scratch.
				for i := int64(0); i < tiles; i++ {
					h.Process(h.Tile(i))
				}
				var idx int64
				allocs := testing.AllocsPerRun(32, func() {
					h.Process(h.Tile(idx % tiles))
					idx++
				})
				if allocs != 0 {
					t.Errorf("%s/%v (metrics=%v): %.1f allocs per tile in steady state, want 0",
						probe.name, a, reg != nil, allocs)
				}
				h.Close()
			}
		}
	}
}

// TestHotLoopMatchesRun checks the probe scores the same space as the
// real worker pool.
func TestHotLoopMatchesRun(t *testing.T) {
	mx := randomMatrix(201, 18, 150)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Approach{V2Split, V4Vector, V4Fused} {
		want, err := s.Run(Options{Approach: a, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.NewHotLoop(Options{Approach: a, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < h.Tiles(); i++ {
			h.Process(h.Tile(i))
		}
		if h.Scored() != want.Stats.Combinations {
			t.Errorf("%v: probe scored %d, run %d", a, h.Scored(), want.Stats.Combinations)
		}
		var top *topK
		if h.flat != nil {
			top = h.flat.a.top
		} else {
			top = h.blocked.a.top
		}
		if len(top.items) != len(want.TopK) {
			t.Fatalf("%v: probe top-K %d entries, run %d", a, len(top.items), len(want.TopK))
		}
		for i := range top.items {
			if top.items[i] != want.TopK[i] {
				t.Errorf("%v: probe TopK[%d] = %+v, run %+v", a, i, top.items[i], want.TopK[i])
			}
		}
		h.Close()
	}
}

// TestShardedRunsMatchFull is the engine-level shard parity property:
// every approach, sharded any way, merges back to the full result —
// including V3/V4, whose shards slice the block-triple space.
func TestShardedRunsMatchFull(t *testing.T) {
	mx := randomMatrix(202, 26, 180)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Approach{V1Naive, V2Split, V3Blocked, V4Vector, V3Fused, V4Fused} {
		full, err := s.Run(Options{Approach: a, TopK: 7})
		if err != nil {
			t.Fatal(err)
		}
		obj := score.NewK2(mx.Samples())
		for _, count := range []int{2, 3, 5} {
			merged := newTopK(obj, 7)
			var combos int64
			for i := 0; i < count; i++ {
				res, err := s.Run(Options{Approach: a, TopK: 7,
					Shard: &sched.Shard{Index: i, Count: count}})
				if err != nil {
					t.Fatalf("%v shard %d/%d: %v", a, i, count, err)
				}
				if res.Space == nil {
					t.Fatalf("%v shard %d/%d: no Space recorded", a, i, count)
				}
				blocked := a.blocked()
				if res.BlockSpace != blocked {
					t.Errorf("%v shard: BlockSpace = %v", a, res.BlockSpace)
				}
				combos += res.Stats.Combinations
				for _, c := range res.TopK {
					merged.offer(c)
				}
			}
			if combos != full.Stats.Combinations {
				t.Errorf("%v %d shards cover %d combinations, full %d", a, count, combos, full.Stats.Combinations)
			}
			got := merged.list()
			if len(got) != len(full.TopK) {
				t.Fatalf("%v %d shards merge to %d candidates, full %d", a, count, len(got), len(full.TopK))
			}
			for i := range got {
				if got[i] != full.TopK[i] {
					t.Errorf("%v %d shards: TopK[%d] = %+v, full %+v", a, count, i, got[i], full.TopK[i])
				}
			}
		}
	}
}
