package engine

import (
	"fmt"
	"time"

	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/sched"
)

// Seeded stage-2 mode: instead of (or alongside) the C(S,3) subset
// space, enumerate the (pair, third-SNP) extensions of a seed list of
// top pairs — every triple containing a seed pair. Each rank of the
// sched.SeededExtensions space is one (seed, third) candidate; the
// skip rules below are rank-local and deterministic, so the space
// shards exactly like any flat space.

// RunSeeded scores every extension of the seed pairs by a third SNP.
// Triples whose three SNPs all fall inside the survivor subset are
// skipped when inSubset is non-nil (the subset search already covers
// them), and a triple containing several seed pairs is charged to the
// earliest seed only, so no triple is scored twice. Candidates come
// back in original SNP indices. Options are interpreted as for Run;
// Shard slices the seeds×M extension-rank space.
func (s *Searcher) RunSeeded(seeds []Pair, inSubset []bool, opts Options) (*Result, error) {
	o, err := opts.withDefaults(s.st.Samples())
	if err != nil {
		return nil, err
	}
	m := s.st.SNPs()
	if inSubset != nil && len(inSubset) != m {
		return nil, fmt.Errorf("engine: subset mask covers %d SNPs, dataset has %d", len(inSubset), m)
	}
	for _, p := range seeds {
		if !(0 <= p.I && p.I < p.J && p.J < m) {
			return nil, fmt.Errorf("engine: invalid seed pair (%d,%d) for %d SNPs", p.I, p.J, m)
		}
	}
	// The seed-rank map resolves each of a triple's pairs to the
	// earliest seed that generates it; built once, read-only across
	// workers.
	seedRank := make(map[int64]int, len(seeds))
	for idx, p := range seeds {
		key := int64(p.I)*int64(m) + int64(p.J)
		if _, dup := seedRank[key]; !dup {
			seedRank[key] = idx
		}
	}

	res := &Result{}
	src, space, err := flatSpace(sched.SeededExtensions(len(seeds), m, o.Workers).Ranks(), &o)
	if err != nil {
		return nil, err
	}
	res.Space = space
	cur := sched.NewCursor(src)
	if o.Progress != nil {
		cur.OnProgress(src.Ranks(), o.Progress)
	}

	start := time.Now()
	split := s.st.Split()
	workers := make([]*seededWorker, o.Workers)
	for w := range workers {
		workers[w] = &seededWorker{o: &o, split: split, m: m,
			seeds: seeds, seedRank: seedRank, inSubset: inSubset,
			a: getArena(o.Objective, o.TopK, 0)}
	}
	err = cur.Drain(o.Context, o.Workers, func(w int, t sched.Tile) (int64, error) {
		return workers[w].tile(t), nil
	})
	if err != nil {
		return nil, err
	}
	assembleSeeded(res, &o, workers)
	res.Stats.Elements = float64(res.Stats.Combinations) * float64(s.st.Samples())
	res.Stats.Duration = time.Since(start)
	if secs := res.Stats.Duration.Seconds(); secs > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / secs
	}
	return res, nil
}

// seededWorker is one consumer of the extension tile stream.
type seededWorker struct {
	o        *Options
	split    *dataset.Split
	m        int
	seeds    []Pair
	seedRank map[int64]int
	inSubset []bool
	a        *arena
}

// tile scores the extensions with ranks in [t.Lo, t.Hi) and returns
// the number of triples actually scored (skipped ranks do not count as
// combinations).
func (w *seededWorker) tile(t sched.Tile) int64 {
	obj := w.o.Objective
	span := int64(w.m)
	var scored int64
	for r := t.Lo; r < t.Hi; r++ {
		sIdx := int(r / span)
		third := int(r % span)
		p := w.seeds[sIdx]
		if third == p.I || third == p.J {
			continue
		}
		i, j, k := sortTriple(p.I, p.J, third)
		if w.inSubset != nil && w.inSubset[i] && w.inSubset[j] && w.inSubset[k] {
			continue
		}
		if w.ownedByEarlierSeed(i, j, k, sIdx) {
			continue
		}
		w.a.tab = contingency.BuildSplit(w.split, i, j, k)
		w.a.top.offer(Candidate{
			Triple: Triple{I: i, J: j, K: k},
			Score:  obj.Score(&w.a.tab),
		})
		scored++
	}
	w.a.scored += scored
	return t.Len()
}

// ownedByEarlierSeed reports whether another of the triple's pairs is
// a seed with a smaller index than cur — the canonical-owner dedup
// that keeps each triple scored exactly once across the seed list.
func (w *seededWorker) ownedByEarlierSeed(i, j, k, cur int) bool {
	span := int64(w.m)
	for _, key := range [3]int64{
		int64(i)*span + int64(j),
		int64(i)*span + int64(k),
		int64(j)*span + int64(k),
	} {
		if idx, ok := w.seedRank[key]; ok && idx < cur {
			return true
		}
	}
	return false
}

// sortTriple orders three distinct indices ascending.
func sortTriple(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// assembleSeeded merges the workers' accumulators into res and returns
// their arenas to the pool.
func assembleSeeded(res *Result, o *Options, workers []*seededWorker) {
	merged := newTopK(o.Objective, o.TopK)
	for _, w := range workers {
		merged.merge(w.a.top)
		res.Stats.Combinations += w.a.scored
		w.a.release()
	}
	res.TopK = merged.list()
	if len(res.TopK) > 0 {
		res.Best = res.TopK[0]
	}
}
