package engine

import (
	"time"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/sched"
)

// Stage 1 of the two-stage screened search: an exhaustive pairwise
// scan that charges every pair's score to both participating SNPs, so
// the survivor selection ("top-S SNPs by best participating pair
// score") and the seed list ("top pairs") fall out of one pass over
// C(M,2). The scan reuses the pair engine's split kernel, scheduler
// and sharding; only the accumulator differs.

// ScreenResult is the outcome of a stage-1 pairwise screen.
type ScreenResult struct {
	// SNPs is M, the length of Best/Seen.
	SNPs int
	// Best[i] is the best score of any scanned pair containing SNP i,
	// valid only where Seen[i] is true (a sharded scan may never touch
	// some SNPs; NaN cannot ride the JSON wire, so presence is a
	// separate plane).
	Best []float64
	Seen []bool
	// TopPairs holds the best pairs seen, up to Options.TopK entries,
	// best first — the seed list of the seeded stage-2 mode.
	TopPairs []PairCandidate
	// Stats describes the scan (Combinations counts pairs).
	Stats Stats
	// Space is the covered slice of pair ranks when Shard restricted
	// the scan; nil means the full space.
	Space *sched.Tile
}

// RunPairScreen executes the stage-1 screen scan. Options are
// interpreted as for RunPairs: TopK bounds the seed pair list, Shard
// slices the colexicographic pair-rank space (each shard charges only
// the pairs it scanned, and sharded results merge with MergeScreens).
func (s *Searcher) RunPairScreen(opts Options) (*ScreenResult, error) {
	o, err := opts.withDefaults(s.st.Samples())
	if err != nil {
		return nil, err
	}
	m := s.st.SNPs()
	res := &ScreenResult{SNPs: m}
	src, space, err := flatSpace(combin.Pairs(m), &o)
	if err != nil {
		return nil, err
	}
	res.Space = space
	cur := sched.NewCursor(src)
	if o.Progress != nil {
		cur.OnProgress(src.Ranks(), o.Progress)
	}

	start := time.Now()
	split := s.st.Split()
	workers := make([]*screenWorker, o.Workers)
	for w := range workers {
		workers[w] = &screenWorker{o: &o, split: split, m: m,
			a:    getArena(o.Objective, 0, 0),
			best: make([]float64, m), seen: make([]bool, m),
			top: newPairTopK(o.Objective, o.TopK)}
	}
	err = cur.Drain(o.Context, o.Workers, func(w int, t sched.Tile) (int64, error) {
		return workers[w].tile(t), nil
	})
	if err != nil {
		return nil, err
	}

	res.Best = make([]float64, m)
	res.Seen = make([]bool, m)
	merged := newPairTopK(o.Objective, o.TopK)
	for _, w := range workers {
		for i := 0; i < m; i++ {
			if !w.seen[i] {
				continue
			}
			if !res.Seen[i] || o.Objective.Better(w.best[i], res.Best[i]) {
				res.Best[i], res.Seen[i] = w.best[i], true
			}
		}
		for _, c := range w.top.items {
			merged.offer(c)
		}
		res.Stats.Combinations += w.a.scored
		w.a.release()
	}
	res.TopPairs = merged.items
	res.Stats.Elements = float64(res.Stats.Combinations) * float64(s.st.Samples())
	res.Stats.Duration = time.Since(start)
	if secs := res.Stats.Duration.Seconds(); secs > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / secs
	}
	return res, nil
}

// screenWorker is one consumer of the screen's pair tile stream. Its
// best/seen planes are private, so the scan has no synchronization in
// the hot loop; they merge once at the end.
type screenWorker struct {
	o     *Options
	split *dataset.Split
	m     int
	a     *arena
	best  []float64
	seen  []bool
	top   *pairTopK
}

// tile scores every pair rank in [t.Lo, t.Hi), charging each score to
// both SNPs, and returns the pair count.
func (w *screenWorker) tile(t sched.Tile) int64 {
	obj := w.o.Objective
	i, j := combin.UnrankPair(t.Lo, w.m)
	for r := t.Lo; r < t.Hi; r++ {
		w.a.tab = contingency.BuildSplitPair(w.split, i, j)
		sc := obj.Score(&w.a.tab)
		if !w.seen[i] || obj.Better(sc, w.best[i]) {
			w.best[i], w.seen[i] = sc, true
		}
		if !w.seen[j] || obj.Better(sc, w.best[j]) {
			w.best[j], w.seen[j] = sc, true
		}
		w.top.offer(PairCandidate{Pair: Pair{I: i, J: j}, Score: sc})
		if i+1 < j {
			i++
		} else {
			i, j = 0, j+1
		}
	}
	w.a.scored += t.Len()
	return t.Len()
}
