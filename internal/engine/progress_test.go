package engine

import (
	"sync"
	"testing"

	"trigene/internal/combin"
	"trigene/internal/sched"
)

func TestProgressReportingFlatAndBlocked(t *testing.T) {
	mx := randomMatrix(130, 32, 200)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Approach{V2Split, V4Vector, V4Fused} {
		var mu sync.Mutex
		var last, calls, reportedTotal int64
		res, err := s.Run(Options{
			Approach: a,
			Workers:  3,
			Progress: func(done, total int64) {
				mu.Lock()
				defer mu.Unlock()
				calls++
				if done > last {
					last = done
				}
				reportedTotal = total
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls == 0 {
			t.Fatalf("%v: no progress calls", a)
		}
		want := combin.Triples(32)
		if last != want {
			t.Errorf("%v: final progress %d, want %d", a, last, want)
		}
		if reportedTotal != want {
			t.Errorf("%v: reported total %d, want %d", a, reportedTotal, want)
		}
		if res.Stats.Combinations != want {
			t.Errorf("%v: stats combos %d", a, res.Stats.Combinations)
		}
	}
}

func TestProgressWithRankRange(t *testing.T) {
	mx := randomMatrix(131, 20, 100)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	rg := &combin.Range{Lo: 100, Hi: 600}
	var mu sync.Mutex
	var last int64
	_, err = s.Run(Options{
		Approach:  V2Split,
		RankRange: rg,
		Progress: func(done, total int64) {
			mu.Lock()
			defer mu.Unlock()
			if done > last {
				last = done
			}
			if total != rg.Len() {
				t.Errorf("total %d, want range length %d", total, rg.Len())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != rg.Len() {
		t.Errorf("final progress %d, want %d", last, rg.Len())
	}
}

func TestRankRangeResultsMatchSubEnumeration(t *testing.T) {
	mx := randomMatrix(132, 15, 120)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Run(Options{Approach: V2Split, TopK: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Split the space in three and merge manually: the union must
	// reproduce the full result.
	total := combin.Triples(15)
	var all []Candidate
	for _, rg := range sched.NewSource(0, total, 1).Partition(3) {
		rg := rg
		res, err := s.Run(Options{Approach: V2Split, TopK: 1000, RankRange: &rg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Combinations != rg.Len() {
			t.Errorf("range %+v: combos %d", rg, res.Stats.Combinations)
		}
		all = append(all, res.TopK...)
	}
	if int64(len(all)) != total {
		t.Fatalf("union has %d candidates, want %d", len(all), total)
	}
	seen := map[Triple]float64{}
	for _, c := range all {
		seen[c.Triple] = c.Score
	}
	for _, c := range full.TopK {
		if got, ok := seen[c.Triple]; !ok || got != c.Score {
			t.Errorf("triple %v missing or rescored in union", c.Triple)
		}
	}
}

func TestRankRangeRejectedForBlocked(t *testing.T) {
	mx := randomMatrix(133, 10, 60)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Options{Approach: V4Vector, RankRange: &combin.Range{Lo: 0, Hi: 10}}); err == nil {
		t.Error("RankRange accepted for blocked approach")
	}
	if _, err := s.Run(Options{Approach: V2Split, RankRange: &combin.Range{Lo: 5, Hi: 2}}); err == nil {
		t.Error("inverted range accepted")
	}
}
