package engine

import (
	"fmt"

	"trigene/internal/dataset"
)

// Subset is the index-remap layer of the screened search: it gathers
// the named SNP columns into a compact dataset and wraps it in a fresh
// Searcher, so every approach — including the fused V3F/V4F hot loops
// — runs unchanged over survivor positions 0..len(cols)-1 with its
// zero-alloc steady state intact. Candidates come back in subset
// positions; callers translate through cols (which must be strictly
// increasing, so position order is SNP order and tie-breaks agree with
// an unscreened run).
func (s *Searcher) Subset(cols []int) (*Searcher, error) {
	m := s.st.SNPs()
	if len(cols) < 3 {
		return nil, fmt.Errorf("engine: subset needs at least 3 SNPs, have %d", len(cols))
	}
	for p, c := range cols {
		if c < 0 || c >= m {
			return nil, fmt.Errorf("engine: subset SNP %d out of range [0,%d)", c, m)
		}
		if p > 0 && cols[p-1] >= c {
			return nil, fmt.Errorf("engine: subset indices must be strictly increasing (%d after %d)", c, cols[p-1])
		}
	}
	src := s.st.Matrix()
	n := src.Samples()
	sub := dataset.NewMatrix(len(cols), n)
	for p, c := range cols {
		copy(sub.Row(p), src.Row(c))
	}
	copy(sub.Phenotypes(), src.Phenotypes())
	return New(sub)
}
