package engine

import (
	"context"
	"testing"
	"testing/quick"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/score"
)

func TestPairSearchMatchesBruteForce(t *testing.T) {
	mx := randomMatrix(110, 20, 150)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	best := PairCandidate{Score: obj.Worst()}
	combin.ForEachPair(20, func(i, j int) {
		tab := contingency.BuildReferencePair(mx, i, j)
		sc := obj.Score(&tab)
		c := PairCandidate{Pair: Pair{i, j}, Score: sc}
		if sc != best.Score && obj.Better(sc, best.Score) || sc == best.Score && c.Pair.Less(best.Pair) {
			best = c
		}
	})
	res, err := s.RunPairs(Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != best {
		t.Errorf("best = %+v, want %+v", res.Best, best)
	}
	if res.Stats.Combinations != combin.Pairs(20) {
		t.Errorf("combinations = %d", res.Stats.Combinations)
	}
}

func TestPairSplitKernelMatchesReference(t *testing.T) {
	mx := randomMatrix(111, 10, 173) // odd N exercises the pad correction
	s := dataset.SplitBinarize(mx)
	combin.ForEachPair(10, func(i, j int) {
		got := contingency.BuildSplitPair(s, i, j)
		want := contingency.BuildReferencePair(mx, i, j)
		if !got.Equal(&want) {
			t.Fatalf("pair (%d,%d): split table differs from reference", i, j)
		}
	})
}

func TestPairEmbeddedTableScoresLikeNineCells(t *testing.T) {
	// The embedded representation must leave the unused 18 cells at
	// zero so K2/MI/Gini see pure pair semantics.
	mx := randomMatrix(112, 5, 80)
	tab := contingency.BuildReferencePair(mx, 1, 3)
	used := map[int]bool{}
	for gx := 0; gx < 3; gx++ {
		for gy := 0; gy < 3; gy++ {
			used[contingency.PairComboIndex(gx, gy)] = true
		}
	}
	for class := 0; class < 2; class++ {
		for cell, v := range tab.Counts[class] {
			if !used[cell] && v != 0 {
				t.Fatalf("unused cell %d has count %d", cell, v)
			}
		}
	}
	controls, cases := mx.ClassCounts()
	if err := tab.Validate(controls, cases); err != nil {
		t.Fatal(err)
	}
}

func TestPairPlantedInteractionRecovered(t *testing.T) {
	// A pair penetrance rewarding double-minor carriers.
	var pen [9]float64
	for c := range pen {
		if c/3+c%3 >= 2 {
			pen[c] = 0.9
		} else {
			pen[c] = 0.1
		}
	}
	mx, err := dataset.Generate(dataset.GenConfig{
		SNPs: 40, Samples: 1500, Seed: 13, MAFMin: 0.3, MAFMax: 0.5,
		PairInteraction: &dataset.PairInteraction{SNPs: [2]int{8, 23}, Penetrance: pen},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SearchPairs(mx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Pair != (Pair{I: 8, J: 23}) {
		t.Errorf("best pair %v, want planted (8,23)", res.Best.Pair)
	}
}

func TestPairWorkerInvarianceAndTopK(t *testing.T) {
	mx := randomMatrix(113, 30, 200)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.RunPairs(Options{Workers: 1, TopK: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.TopK) != 7 {
		t.Fatalf("TopK = %d", len(base.TopK))
	}
	obj := score.NewK2(mx.Samples())
	for i := 1; i < len(base.TopK); i++ {
		a, b := base.TopK[i-1], base.TopK[i]
		if a.Score != b.Score && !obj.Better(a.Score, b.Score) {
			t.Errorf("TopK not sorted at %d", i)
		}
	}
	for _, workers := range []int{2, 6} {
		res, err := s.RunPairs(Options{Workers: workers, TopK: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.TopK {
			if res.TopK[i] != base.TopK[i] {
				t.Errorf("workers=%d TopK[%d] differs", workers, i)
			}
		}
	}
}

func TestPairGeneratorValidation(t *testing.T) {
	_, err := dataset.Generate(dataset.GenConfig{
		SNPs: 10, Samples: 50, Seed: 1,
		Interaction:     &dataset.Interaction{SNPs: [3]int{0, 1, 2}},
		PairInteraction: &dataset.PairInteraction{SNPs: [2]int{3, 4}},
	})
	if err == nil {
		t.Error("both interactions accepted")
	}
	_, err = dataset.Generate(dataset.GenConfig{
		SNPs: 10, Samples: 50, Seed: 1,
		PairInteraction: &dataset.PairInteraction{SNPs: [2]int{3, 3}},
	})
	if err == nil {
		t.Error("duplicate pair SNPs accepted")
	}
}

func TestPairCancellation(t *testing.T) {
	mx := randomMatrix(114, 200, 256)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunPairs(Options{Context: ctx}); err == nil {
		t.Error("cancelled pair run returned no error")
	}
}

// Property: pair iteration used inside the worker (the inlined
// next-pair step) matches colex enumeration.
func TestPairIterationProperty(t *testing.T) {
	f := func(mRaw uint8) bool {
		m := int(mRaw%40) + 2
		i, j := 0, 1
		ok := true
		combin.ForEachPair(m, func(ei, ej int) {
			if ei != i || ej != j {
				ok = false
			}
			if i+1 < j {
				i++
			} else {
				i, j = 0, j+1
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairLessAndTypes(t *testing.T) {
	if !(Pair{1, 2}).Less(Pair{1, 3}) || !(Pair{1, 2}).Less(Pair{2, 0}) || (Pair{1, 3}).Less(Pair{1, 2}) {
		t.Error("Pair.Less ordering wrong")
	}
}
