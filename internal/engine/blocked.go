package engine

import (
	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/sched"
)

// runBlocked executes approaches V3 and V4 (Algorithm 1): SNPs are
// grouped into blocks of BS, the sample dimension is walked in tiles of
// BlockWords 64-bit words, and each worker holds BS^3 private frequency
// tables so the tile data and the tables stay L1-resident across the
// intra-block combination loops.
//
// One scheduler rank is one block triple (b0 <= b1 <= b2), via the
// bijection between multisets of size 3 over nb blocks and strict
// triples over nb+2 items. Because block triples partition the
// combination space, a Shard over block-triple ranks is a disjoint
// sub-search whose results merge bit-exactly — the property that makes
// V3/V4 shardable at all.
func (s *Searcher) runBlocked(o Options) (*Result, error) {
	m := s.st.SNPs()
	bs := o.BlockSNPs
	if bs > m {
		bs = m
	}
	nb := combin.TripleBlocks(m, bs)
	totalBlocks := combin.Triples(nb + 2) // multiset triples over nb blocks

	res := &Result{}
	src := sched.NewSource(0, totalBlocks, 1)
	if o.Shard != nil {
		sub, err := src.Shard(*o.Shard)
		if err != nil {
			return nil, err
		}
		src = sub
		b := src.Bounds()
		res.Space = &b
		res.BlockSpace = true
	}
	cur := sched.NewCursor(src)
	if o.Progress != nil {
		cur.OnProgress(s.blockSpaceCombos(src, bs, nb), o.Progress)
	}

	workers := make([]*blockWorker, o.Workers)
	for w := range workers {
		workers[w] = newBlockWorker(s, &o, bs, nb)
	}
	cur.Instrument(o.Metrics, "blocked")
	rm := resolveRunMetrics(o.Metrics, o.Approach)
	err := cur.Drain(o.Context, o.Workers, func(w int, t sched.Tile) (int64, error) {
		n := workers[w].tile(t)
		rm.observe(n)
		return n, nil
	})
	if err != nil {
		return nil, err
	}

	merged := newTopK(o.Objective, o.TopK)
	for _, w := range workers {
		merged.merge(w.a.top)
		res.Stats.Combinations += w.a.scored
		w.a.release()
	}
	res.TopK = merged.list()
	if len(res.TopK) > 0 {
		res.Best = res.TopK[0]
	}
	return res, nil
}

// blockSpaceCombos counts the combinations covered by a range of
// block-triple ranks — the progress denominator of a (possibly
// sharded) blocked run. One O(1) count per block triple.
func (s *Searcher) blockSpaceCombos(src sched.Source, bs, nb int) int64 {
	b := src.Bounds()
	if b.Lo == 0 && b.Hi == combin.Triples(nb+2) {
		return combin.Triples(s.st.SNPs())
	}
	var total int64
	for rank := b.Lo; rank < b.Hi; rank++ {
		a, bb, c := combin.UnrankTriple(rank, nb+2)
		total += s.blockTripleCombos(a, bb-1, c-2, bs)
	}
	return total
}

// blockTripleCombos counts the strict combinations (i0 < i1 < i2) with
// i0 in block b0, i1 in block b1, i2 in block b2 (b0 <= b1 <= b2).
func (s *Searcher) blockTripleCombos(b0, b1, b2, bs int) int64 {
	m := s.st.SNPs()
	l0 := int64(blockLim(b0*bs, bs, m))
	l1 := int64(blockLim(b1*bs, bs, m))
	l2 := int64(blockLim(b2*bs, bs, m))
	switch {
	case b0 == b1 && b1 == b2:
		return l0 * (l0 - 1) * (l0 - 2) / 6
	case b0 == b1:
		return l0 * (l0 - 1) / 2 * l2
	case b1 == b2:
		return l0 * (l1 * (l1 - 1) / 2)
	default:
		return l0 * l1 * l2
	}
}

// blockWorker holds one worker's reusable state for the blocked paths.
// The unfused approaches drive kernel; the fused approaches drive
// fusedK (one x plane pair against the cached pair planes) and, for
// V4F, fusedX2 (two x plane pairs per pass).
type blockWorker struct {
	s       *Searcher
	o       *Options
	split   *dataset.Split
	bs      int
	nb      int
	a       *arena
	kernel  func(*[contingency.Cells]int32, []uint64, []uint64, []uint64, []uint64, []uint64, []uint64)
	fusedK  func(*[contingency.Cells]int32, []uint64, []uint64, []uint64)
	fusedX2 func(*[contingency.Cells]int32, *[contingency.Cells]int32, []uint64, []uint64, []uint64, []uint64, []uint64)
}

// newBlockWorker builds a consumer with a pooled arena sized for the
// BS^3 table bank (plus the pair-plane buffer on the fused paths).
func newBlockWorker(s *Searcher, o *Options, bs, nb int) *blockWorker {
	w := &blockWorker{
		s:     s,
		o:     o,
		split: s.st.Split(),
		bs:    bs,
		nb:    nb,
		a:     getArena(o.Objective, o.TopK, bs*bs*bs),
	}
	switch o.Approach {
	case V3Fused:
		w.fusedK = contingency.AccumulateFused
	case V4Fused:
		switch o.Lanes {
		case 1:
			w.fusedK = contingency.AccumulateFused
		case 4:
			w.fusedK = contingency.AccumulateFusedLanes4
		default:
			w.fusedK = contingency.AccumulateFusedLanes8
		}
		w.fusedX2 = contingency.AccumulateFusedX2
	case V4Vector:
		switch o.Lanes {
		case 4:
			w.kernel = contingency.AccumulateSplitLanes4
		case 8:
			w.kernel = contingency.AccumulateSplitLanes8
		default:
			w.kernel = contingency.AccumulateSplit
		}
	default:
		w.kernel = contingency.AccumulateSplit
	}
	if o.Approach.fused() {
		w.a.sizePair(contingency.PairPlanes * o.BlockWords)
	}
	return w
}

// tile evaluates the block triples with ranks in [t.Lo, t.Hi) and
// returns how many combinations it scored.
func (w *blockWorker) tile(t sched.Tile) int64 {
	var scored int64
	for rank := t.Lo; rank < t.Hi; rank++ {
		// Unrank the multiset triple: strict triple over nb+2 minus the
		// staircase offsets.
		a, b, c := combin.UnrankTriple(rank, w.nb+2)
		if w.fusedK != nil {
			scored += w.processBlockTripleFused(a, b-1, c-2)
		} else {
			scored += w.processBlockTriple(a, b-1, c-2)
		}
	}
	w.a.scored += scored
	return scored
}

// processBlockTriple evaluates every valid combination (i0 < i1 < i2)
// with i0 in block b0, i1 in block b1, i2 in block b2, and returns how
// many combinations it scored.
func (w *blockWorker) processBlockTriple(b0, b1, b2 int) int64 {
	m := w.s.st.SNPs()
	bs := w.bs
	base0, base1, base2 := b0*bs, b1*bs, b2*bs
	lim0, lim1, lim2 := blockLim(base0, bs, m), blockLim(base1, bs, m), blockLim(base2, bs, m)

	tables := w.a.tables
	w.zeroTables(lim0, lim1, lim2)

	split := w.split
	bw := w.o.BlockWords
	for class := 0; class < 2; class++ {
		words := split.Words[class]
		for w0 := 0; w0 < words; w0 += bw {
			w1 := w0 + bw
			if w1 > words {
				w1 = words
			}
			for ii2 := 0; ii2 < lim2; ii2++ {
				gi2 := base2 + ii2
				z0 := split.PlaneRange(class, gi2, 0, w0, w1)
				z1 := split.PlaneRange(class, gi2, 1, w0, w1)
				for ii1 := 0; ii1 < lim1; ii1++ {
					gi1 := base1 + ii1
					if gi1 >= gi2 {
						break
					}
					y0 := split.PlaneRange(class, gi1, 0, w0, w1)
					y1 := split.PlaneRange(class, gi1, 1, w0, w1)
					for ii0 := 0; ii0 < lim0; ii0++ {
						gi0 := base0 + ii0
						if gi0 >= gi1 {
							break
						}
						x0 := split.PlaneRange(class, gi0, 0, w0, w1)
						x1 := split.PlaneRange(class, gi0, 1, w0, w1)
						idx := (ii0*bs+ii1)*bs + ii2
						w.kernel(&tables[idx].Counts[class], x0, x1, y0, y1, z0, z1)
					}
				}
			}
		}
	}

	return w.scoreTables(base0, base1, base2, lim0, lim1, lim2)
}

// processBlockTripleFused is processBlockTriple with the pair-AND
// hoisting: for each (ii1, ii2) the nine genotype-pair products of the
// y/z planes are built once into the arena's pair buffer, then the
// whole ii0 run streams against the cached planes with the fused
// kernels (two i0 per pass on V4F, single-x remainder otherwise). The
// pair buffer is sized by FusedTileParams/carm.FusedTileWords so the
// planes stay L1-resident across the run.
func (w *blockWorker) processBlockTripleFused(b0, b1, b2 int) int64 {
	m := w.s.st.SNPs()
	bs := w.bs
	base0, base1, base2 := b0*bs, b1*bs, b2*bs
	lim0, lim1, lim2 := blockLim(base0, bs, m), blockLim(base1, bs, m), blockLim(base2, bs, m)

	tables := w.a.tables
	w.zeroTables(lim0, lim1, lim2)

	split := w.split
	bw := w.o.BlockWords
	for class := 0; class < 2; class++ {
		words := split.Words[class]
		for w0 := 0; w0 < words; w0 += bw {
			w1 := w0 + bw
			if w1 > words {
				w1 = words
			}
			for ii2 := 0; ii2 < lim2; ii2++ {
				gi2 := base2 + ii2
				z0 := split.PlaneRange(class, gi2, 0, w0, w1)
				z1 := split.PlaneRange(class, gi2, 1, w0, w1)
				for ii1 := 0; ii1 < lim1; ii1++ {
					gi1 := base1 + ii1
					if gi1 >= gi2 {
						break
					}
					// Valid ii0 run: gi0 = base0+ii0 < gi1.
					n0 := lim0
					if v := gi1 - base0; v < n0 {
						n0 = v
					}
					if n0 <= 0 {
						continue
					}
					pair := w.a.pair[:contingency.PairPlanes*(w1-w0)]
					contingency.BuildPairPlanes(pair,
						split.PlaneRange(class, gi1, 0, w0, w1),
						split.PlaneRange(class, gi1, 1, w0, w1),
						z0, z1)
					row := ii1*bs + ii2
					ii0 := 0
					if w.fusedX2 != nil {
						for ; ii0+2 <= n0; ii0 += 2 {
							gi0 := base0 + ii0
							fta := &tables[ii0*bs*bs+row].Counts[class]
							ftb := &tables[(ii0+1)*bs*bs+row].Counts[class]
							w.fusedX2(fta, ftb,
								split.PlaneRange(class, gi0, 0, w0, w1),
								split.PlaneRange(class, gi0, 1, w0, w1),
								split.PlaneRange(class, gi0+1, 0, w0, w1),
								split.PlaneRange(class, gi0+1, 1, w0, w1),
								pair)
						}
					}
					for ; ii0 < n0; ii0++ {
						gi0 := base0 + ii0
						w.fusedK(&tables[ii0*bs*bs+row].Counts[class],
							split.PlaneRange(class, gi0, 0, w0, w1),
							split.PlaneRange(class, gi0, 1, w0, w1),
							pair)
					}
				}
			}
		}
	}

	return w.scoreTables(base0, base1, base2, lim0, lim1, lim2)
}

// zeroTables clears the valid (lim0 x lim1 x lim2) slab of the arena's
// BS^3 table bank — boundary triples only touch that slab, so the rest
// of the bank (stale from earlier triples) is never read or written.
func (w *blockWorker) zeroTables(lim0, lim1, lim2 int) {
	bs := w.bs
	tables := w.a.tables
	if lim0 == bs && lim1 == bs && lim2 == bs {
		for i := range tables {
			tables[i] = contingency.Table{}
		}
		return
	}
	for ii0 := 0; ii0 < lim0; ii0++ {
		for ii1 := 0; ii1 < lim1; ii1++ {
			row := (ii0*bs + ii1) * bs
			slab := tables[row : row+lim2]
			for i := range slab {
				slab[i] = contingency.Table{}
			}
		}
	}
}

// scoreTables applies the pad correction and scores every valid
// combination of the block triple, returning how many it scored.
func (w *blockWorker) scoreTables(base0, base1, base2, lim0, lim1, lim2 int) int64 {
	bs := w.bs
	split := w.split
	tables := w.a.tables
	var scored int64
	for ii0 := 0; ii0 < lim0; ii0++ {
		gi0 := base0 + ii0
		for ii1 := 0; ii1 < lim1; ii1++ {
			gi1 := base1 + ii1
			if gi1 <= gi0 {
				continue
			}
			for ii2 := 0; ii2 < lim2; ii2++ {
				gi2 := base2 + ii2
				if gi2 <= gi1 {
					continue
				}
				idx := (ii0*bs+ii1)*bs + ii2
				tab := &tables[idx]
				tab.Counts[dataset.Control][contingency.Cells-1] -= int32(split.Pad[dataset.Control])
				tab.Counts[dataset.Case][contingency.Cells-1] -= int32(split.Pad[dataset.Case])
				w.a.top.offer(Candidate{
					Triple: Triple{I: gi0, J: gi1, K: gi2},
					Score:  w.o.Objective.Score(tab),
				})
				scored++
			}
		}
	}
	return scored
}

// blockLim returns how many SNPs of a block starting at base exist in a
// dataset of m SNPs.
func blockLim(base, bs, m int) int {
	if base >= m {
		return 0
	}
	if base+bs > m {
		return m - base
	}
	return bs
}
