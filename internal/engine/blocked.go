package engine

import (
	"sync"
	"sync/atomic"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
)

// runBlocked executes approaches V3 and V4 (Algorithm 1): SNPs are
// grouped into blocks of BS, the sample dimension is walked in tiles of
// BlockWords 64-bit words, and each worker holds BS^3 private frequency
// tables so the tile data and the tables stay L1-resident across the
// intra-block combination loops.
//
// One work unit is one block triple (b0 <= b1 <= b2). Block triples are
// claimed from an atomic cursor via the bijection between multisets of
// size 3 over nb blocks and strict triples over nb+2 items.
func (s *Searcher) runBlocked(o Options) (*Result, error) {
	m := s.mx.SNPs()
	bs := o.BlockSNPs
	if bs > m {
		bs = m
	}
	nb := combin.TripleBlocks(m, bs)
	totalBlocks := combin.Triples(nb + 2) // multiset triples over nb blocks

	kernel := contingency.AccumulateSplit
	if o.Approach == V4Vector {
		switch o.Lanes {
		case 4:
			kernel = contingency.AccumulateSplitLanes4
		case 8:
			kernel = contingency.AccumulateSplitLanes8
		}
	}

	var cursor, done atomic.Int64
	totalCombos := combin.Triples(m)
	var firstErr errOnce
	tops := make([]*topK, o.Workers)
	var wg sync.WaitGroup
	for wk := 0; wk < o.Workers; wk++ {
		top := newTopK(o.Objective, o.TopK)
		tops[wk] = top
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &blockWorker{
				s:      s,
				o:      o,
				bs:     bs,
				tables: make([]contingency.Table, bs*bs*bs),
				top:    top,
				kernel: kernel,
			}
			for {
				if err := o.Context.Err(); err != nil {
					firstErr.set(err)
					return
				}
				rank := cursor.Add(1) - 1
				if rank >= totalBlocks {
					return
				}
				// Unrank the multiset triple: strict triple over nb+2
				// minus the staircase offsets.
				a, b, c := combin.UnrankTriple(rank, nb+2)
				n := w.processBlockTriple(a, b-1, c-2)
				if o.Progress != nil && n > 0 {
					o.Progress(done.Add(n), totalCombos)
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	return assemble(tops, o), nil
}

// blockWorker holds one worker's reusable state for the blocked paths.
type blockWorker struct {
	s      *Searcher
	o      Options
	bs     int
	tables []contingency.Table
	top    *topK
	kernel func(*[contingency.Cells]int32, []uint64, []uint64, []uint64, []uint64, []uint64, []uint64)
}

// processBlockTriple evaluates every valid combination (i0 < i1 < i2)
// with i0 in block b0, i1 in block b1, i2 in block b2, and returns how
// many combinations it scored.
func (w *blockWorker) processBlockTriple(b0, b1, b2 int) int64 {
	m := w.s.mx.SNPs()
	bs := w.bs
	base0, base1, base2 := b0*bs, b1*bs, b2*bs
	lim0, lim1, lim2 := blockLim(base0, bs, m), blockLim(base1, bs, m), blockLim(base2, bs, m)

	for i := range w.tables {
		w.tables[i] = contingency.Table{}
	}

	split := w.s.split
	bw := w.o.BlockWords
	for class := 0; class < 2; class++ {
		words := split.Words[class]
		for w0 := 0; w0 < words; w0 += bw {
			w1 := w0 + bw
			if w1 > words {
				w1 = words
			}
			for ii2 := 0; ii2 < lim2; ii2++ {
				gi2 := base2 + ii2
				z0 := split.PlaneRange(class, gi2, 0, w0, w1)
				z1 := split.PlaneRange(class, gi2, 1, w0, w1)
				for ii1 := 0; ii1 < lim1; ii1++ {
					gi1 := base1 + ii1
					if gi1 >= gi2 {
						break
					}
					y0 := split.PlaneRange(class, gi1, 0, w0, w1)
					y1 := split.PlaneRange(class, gi1, 1, w0, w1)
					for ii0 := 0; ii0 < lim0; ii0++ {
						gi0 := base0 + ii0
						if gi0 >= gi1 {
							break
						}
						x0 := split.PlaneRange(class, gi0, 0, w0, w1)
						x1 := split.PlaneRange(class, gi0, 1, w0, w1)
						idx := (ii0*bs+ii1)*bs + ii2
						w.kernel(&w.tables[idx].Counts[class], x0, x1, y0, y1, z0, z1)
					}
				}
			}
		}
	}

	// Pad correction and scoring for every valid combination.
	var scored int64
	for ii0 := 0; ii0 < lim0; ii0++ {
		gi0 := base0 + ii0
		for ii1 := 0; ii1 < lim1; ii1++ {
			gi1 := base1 + ii1
			if gi1 <= gi0 {
				continue
			}
			for ii2 := 0; ii2 < lim2; ii2++ {
				gi2 := base2 + ii2
				if gi2 <= gi1 {
					continue
				}
				idx := (ii0*bs+ii1)*bs + ii2
				tab := &w.tables[idx]
				tab.Counts[dataset.Control][contingency.Cells-1] -= int32(split.Pad[dataset.Control])
				tab.Counts[dataset.Case][contingency.Cells-1] -= int32(split.Pad[dataset.Case])
				w.top.offer(Candidate{
					Triple: Triple{I: gi0, J: gi1, K: gi2},
					Score:  w.o.Objective.Score(tab),
				})
				scored++
			}
		}
	}
	return scored
}

// blockLim returns how many SNPs of a block starting at base exist in a
// dataset of m SNPs.
func blockLim(base, bs, m int) int {
	if base >= m {
		return 0
	}
	if base+bs > m {
		return m - base
	}
	return bs
}
