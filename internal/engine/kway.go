package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/score"
)

// Arbitrary-order exhaustive search. The paper's introduction motivates
// interactions "of three or more SNPs"; RunK generalizes the split
// kernel to any order in [2, contingency.MaxOrder], using the generic
// 3^k-cell builder and the objectives' cell-scoring interface.
// Orders 2 and 3 have specialized fast paths (RunPairs, Run); RunK is
// the correctness-first generalization.

// KCandidate is a scored SNP combination of arbitrary order.
type KCandidate struct {
	SNPs  []int
	Score float64
}

// KResult is the outcome of an exhaustive k-way search.
type KResult struct {
	Order int
	Best  KCandidate
	TopK  []KCandidate
	Stats Stats
}

// RunK executes an exhaustive search of the given interaction order.
// Options are interpreted as for Run; the Objective must implement
// score.CellScorer (all built-in objectives do).
func (s *Searcher) RunK(order int, opts Options) (*KResult, error) {
	o, err := opts.withDefaults(s.mx.Samples())
	if err != nil {
		return nil, err
	}
	if order < 2 || order > contingency.MaxOrder {
		return nil, fmt.Errorf("engine: order %d out of [2,%d]", order, contingency.MaxOrder)
	}
	if order > s.mx.SNPs() {
		return nil, fmt.Errorf("engine: order %d exceeds %d SNPs", order, s.mx.SNPs())
	}
	scorer, ok := o.Objective.(score.CellScorer)
	if !ok {
		return nil, fmt.Errorf("engine: objective %q cannot score %d-way tables", o.Objective.Name(), order)
	}

	m := s.mx.SNPs()
	total := combin.Binomial(m, order)
	chunk := flatChunkSize(total, o.Workers)
	cells := contingency.CellsK(order)

	var cursor atomic.Int64
	var firstErr errOnce
	tops := make([]*kTopK, o.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < o.Workers; wk++ {
		top := &kTopK{obj: o.Objective, k: o.TopK}
		tops[wk] = top
		wg.Add(1)
		go func() {
			defer wg.Done()
			comb := make([]int, order)
			ctrl := make([]int32, cells)
			cases := make([]int32, cells)
			for {
				if err := o.Context.Err(); err != nil {
					firstErr.set(err)
					return
				}
				lo := cursor.Add(chunk) - chunk
				if lo >= total {
					return
				}
				hi := lo + chunk
				if hi > total {
					hi = total
				}
				combin.UnrankK(lo, m, comb)
				for r := lo; r < hi; r++ {
					for i := range ctrl {
						ctrl[i], cases[i] = 0, 0
					}
					if err := contingency.BuildSplitK(s.split, comb, ctrl, cases); err != nil {
						firstErr.set(err)
						return
					}
					top.offer(comb, scorer.ScoreCells(ctrl, cases))
					combin.NextK(comb, m)
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return nil, err
	}

	merged := &kTopK{obj: o.Objective, k: o.TopK}
	for _, t := range tops {
		for _, c := range t.items {
			merged.offer(c.SNPs, c.Score)
		}
	}
	res := &KResult{Order: order, TopK: merged.items}
	if len(merged.items) > 0 {
		res.Best = merged.items[0]
	}
	res.Stats.Combinations = total
	res.Stats.Elements = float64(total) * float64(s.mx.Samples())
	res.Stats.Duration = time.Since(start)
	if secs := res.Stats.Duration.Seconds(); secs > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / secs
	}
	return res, nil
}

// kTopK accumulates the k best arbitrary-order candidates.
type kTopK struct {
	obj   score.Objective
	k     int
	items []KCandidate
}

func (t *kTopK) better(aScore float64, aSNPs []int, b KCandidate) bool {
	if aScore != b.Score {
		return t.obj.Better(aScore, b.Score)
	}
	for i := range aSNPs {
		if aSNPs[i] != b.SNPs[i] {
			return aSNPs[i] < b.SNPs[i]
		}
	}
	return false
}

// offer copies snps if the candidate ranks among the k best.
func (t *kTopK) offer(snps []int, sc float64) {
	if t.k == 0 {
		return
	}
	if len(t.items) == t.k && !t.better(sc, snps, t.items[len(t.items)-1]) {
		return
	}
	pos := len(t.items)
	for pos > 0 && t.better(sc, snps, t.items[pos-1]) {
		pos--
	}
	if len(t.items) < t.k {
		t.items = append(t.items, KCandidate{})
	} else if pos == len(t.items) {
		return
	}
	copy(t.items[pos+1:], t.items[pos:])
	t.items[pos] = KCandidate{SNPs: append([]int(nil), snps...), Score: sc}
}
