package engine

import (
	"fmt"
	"time"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/sched"
	"trigene/internal/score"
	"trigene/internal/topk"
)

// Arbitrary-order exhaustive search. The paper's introduction motivates
// interactions "of three or more SNPs"; RunK generalizes the split
// kernel to any order in [2, contingency.MaxOrder], using the generic
// 3^k-cell builder and the objectives' cell-scoring interface.
// Orders 2 and 3 have specialized fast paths (RunPairs, Run); RunK is
// the correctness-first generalization.

// KCandidate is a scored SNP combination of arbitrary order.
type KCandidate struct {
	SNPs  []int
	Score float64
}

// KResult is the outcome of an exhaustive k-way search.
type KResult struct {
	Order int
	Best  KCandidate
	TopK  []KCandidate
	Stats Stats
	// Space is the covered slice of combination ranks when Shard
	// restricted the run; nil means the full space.
	Space *sched.Tile
}

// RunK executes an exhaustive search of the given interaction order.
// Options are interpreted as for Run; the Objective must implement
// score.CellScorer (all built-in objectives do). Shard slices the
// colexicographic k-combination rank space.
func (s *Searcher) RunK(order int, opts Options) (*KResult, error) {
	o, err := opts.withDefaults(s.st.Samples())
	if err != nil {
		return nil, err
	}
	if order < 2 || order > contingency.MaxOrder {
		return nil, fmt.Errorf("engine: order %d out of [2,%d]", order, contingency.MaxOrder)
	}
	if order > s.st.SNPs() {
		return nil, fmt.Errorf("engine: order %d exceeds %d SNPs", order, s.st.SNPs())
	}
	scorer, ok := o.Objective.(score.CellScorer)
	if !ok {
		return nil, fmt.Errorf("engine: objective %q cannot score %d-way tables", o.Objective.Name(), order)
	}

	m := s.st.SNPs()
	res := &KResult{Order: order}
	src, space, err := flatSpace(combin.Binomial(m, order), &o)
	if err != nil {
		return nil, err
	}
	res.Space = space
	cur := sched.NewCursor(src)
	if o.Progress != nil {
		cur.OnProgress(src.Ranks(), o.Progress)
	}
	cells := contingency.CellsK(order)

	start := time.Now()
	split := s.st.Split()
	workers := make([]*kWorker, o.Workers)
	for w := range workers {
		a := getArena(o.Objective, 0, 0)
		a.sizeK(order, cells)
		workers[w] = &kWorker{split: split, m: m, a: a, scorer: scorer,
			top: newKTopK(o.Objective, o.TopK)}
	}
	err = cur.Drain(o.Context, o.Workers, func(w int, t sched.Tile) (int64, error) {
		return workers[w].tile(t)
	})
	if err != nil {
		return nil, err
	}

	merged := newKTopK(o.Objective, o.TopK)
	for _, w := range workers {
		for _, c := range w.top.items {
			merged.offer(c.SNPs, c.Score)
		}
		res.Stats.Combinations += w.a.scored
		w.a.release()
	}
	res.TopK = merged.items
	if len(merged.items) > 0 {
		res.Best = merged.items[0]
	}
	res.Stats.Elements = float64(res.Stats.Combinations) * float64(s.st.Samples())
	res.Stats.Duration = time.Since(start)
	if secs := res.Stats.Duration.Seconds(); secs > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / secs
	}
	return res, nil
}

// kWorker is one consumer of the k-combination tile stream.
type kWorker struct {
	split  *dataset.Split
	m      int
	a      *arena
	scorer score.CellScorer
	top    *kTopK
}

// tile scores every combination rank in [t.Lo, t.Hi).
func (w *kWorker) tile(t sched.Tile) (int64, error) {
	comb, ctrl, cases := w.a.comb, w.a.ctrl, w.a.cases
	combin.UnrankK(t.Lo, w.m, comb)
	for r := t.Lo; r < t.Hi; r++ {
		for i := range ctrl {
			ctrl[i], cases[i] = 0, 0
		}
		if err := contingency.BuildSplitK(w.split, comb, ctrl, cases); err != nil {
			return 0, err
		}
		w.top.offer(comb, w.scorer.ScoreCells(ctrl, cases))
		combin.NextK(comb, w.m)
	}
	w.a.scored += t.Len()
	return t.Len(), nil
}

// kTopK accumulates the k best arbitrary-order candidates.
type kTopK struct {
	k     int
	items []KCandidate
	cmp   func(a, b KCandidate) bool
}

func newKTopK(obj score.Objective, k int) *kTopK {
	return &kTopK{k: k, cmp: func(a, b KCandidate) bool {
		if a.Score != b.Score {
			return obj.Better(a.Score, b.Score)
		}
		for i := range a.SNPs {
			if a.SNPs[i] != b.SNPs[i] {
				return a.SNPs[i] < b.SNPs[i]
			}
		}
		return false
	}}
}

// offer copies snps only if the candidate ranks among the k best (the
// buffer is the worker's reused enumeration scratch).
func (t *kTopK) offer(snps []int, sc float64) {
	if t.k == 0 {
		return
	}
	probe := KCandidate{SNPs: snps, Score: sc}
	if len(t.items) == t.k && !t.cmp(probe, t.items[len(t.items)-1]) {
		return
	}
	t.items = topk.Insert(t.items, KCandidate{SNPs: append([]int(nil), snps...), Score: sc}, t.k, t.cmp)
}
