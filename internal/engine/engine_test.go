package engine

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/score"
)

func randomMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	// Guarantee both classes.
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	return mx
}

func TestApproachParseAndString(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Approach
	}{
		{"V1", V1Naive}, {"v2", V2Split}, {"3", V3Blocked}, {"V4", V4Vector},
		{"V3F", V3Fused}, {"v3f", V3Fused}, {"V5", V3Fused}, {"fused-blocked", V3Fused},
		{"V4F", V4Fused}, {"v4f", V4Fused}, {"v6", V4Fused}, {"FUSED", V4Fused},
		{"fused-vector", V4Fused}, {" Fused ", V4Fused},
	} {
		got, err := ParseApproach(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseApproach(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseApproach("V9"); err == nil {
		t.Error("expected error for V9")
	}
	if V1Naive.String() != "V1" || V4Vector.String() != "V4" {
		t.Error("approach names wrong")
	}
	if V3Fused.String() != "V3F" || V4Fused.String() != "V4F" {
		t.Error("fused approach names wrong")
	}
	if Approach(9).String() == "" {
		t.Error("unknown approach should render")
	}
}

func TestTileParams(t *testing.T) {
	// Paper example: 48 KiB L1d (Ice Lake SP) with 7 ways for the table
	// gives BS <= 5.1 -> 5.
	bs, bw := TileParams(48 << 10)
	if bs != 5 {
		t.Errorf("BS for 48 KiB = %d, want 5", bs)
	}
	if bw < 1 {
		t.Errorf("BP words = %d", bw)
	}
	// 32 KiB: sizeFT = 18658 -> cbrt(86.4) = 4.4 -> 4.
	bs32, _ := TileParams(32 << 10)
	if bs32 < 4 || bs32 > 5 {
		t.Errorf("BS for 32 KiB = %d, want 4-5", bs32)
	}
	// Tiny cache still yields usable parameters.
	bsT, bwT := TileParams(1024)
	if bsT < 2 || bwT < 1 {
		t.Errorf("tiny cache params %d/%d", bsT, bwT)
	}
}

func TestAllApproachesAgree(t *testing.T) {
	mx := randomMatrix(60, 24, 333)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	var results [6]*Result
	for a := V1Naive; a <= V4Fused; a++ {
		res, err := s.Run(Options{Approach: a, Workers: 3, TopK: 5})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		results[a-1] = res
	}
	for a := V2Split; a <= V4Fused; a++ {
		got, want := results[a-1], results[0]
		if got.Best != want.Best {
			t.Errorf("%v best %v (%.6f) != V1 best %v (%.6f)",
				a, got.Best.Triple, got.Best.Score, want.Best.Triple, want.Best.Score)
		}
		if len(got.TopK) != len(want.TopK) {
			t.Fatalf("%v TopK length %d != %d", a, len(got.TopK), len(want.TopK))
		}
		for i := range got.TopK {
			if got.TopK[i] != want.TopK[i] {
				t.Errorf("%v TopK[%d] = %+v, want %+v", a, i, got.TopK[i], want.TopK[i])
			}
		}
	}
	if results[0].Stats.Combinations != combin.Triples(24) {
		t.Errorf("combinations = %d", results[0].Stats.Combinations)
	}
}

func TestBestMatchesBruteForce(t *testing.T) {
	mx := randomMatrix(61, 12, 100)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	obj := score.NewK2(mx.Samples())
	best := Candidate{Score: obj.Worst()}
	combin.ForEachTriple(12, func(i, j, k int) {
		tab := contingency.BuildReference(mx, i, j, k)
		sc := obj.Score(&tab)
		c := Candidate{Triple: Triple{i, j, k}, Score: sc}
		if sc != best.Score && obj.Better(sc, best.Score) || sc == best.Score && c.Triple.Less(best.Triple) {
			best = c
		}
	})
	for a := V1Naive; a <= V4Vector; a++ {
		res, err := s.Run(Options{Approach: a, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best != best {
			t.Errorf("%v best = %+v, want %+v", a, res.Best, best)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	mx := randomMatrix(62, 20, 200)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Run(Options{Approach: V4Vector, Workers: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		res, err := s.Run(Options{Approach: V4Vector, Workers: workers, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best != base.Best {
			t.Errorf("workers=%d best %+v != %+v", workers, res.Best, base.Best)
		}
		for i := range res.TopK {
			if res.TopK[i] != base.TopK[i] {
				t.Errorf("workers=%d TopK[%d] differs", workers, i)
			}
		}
	}
}

func TestPlantedInteractionRecovered(t *testing.T) {
	it := &dataset.Interaction{SNPs: [3]int{5, 11, 17}, Penetrance: dataset.ThresholdPenetrance(3, 0.05, 0.95)}
	mx, err := dataset.Generate(dataset.GenConfig{
		SNPs: 30, Samples: 1200, Seed: 8, MAFMin: 0.3, MAFMax: 0.5, Interaction: it,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(mx, Options{Approach: V4Vector})
	if err != nil {
		t.Fatal(err)
	}
	want := Triple{I: 5, J: 11, K: 17}
	if res.Best.Triple != want {
		t.Errorf("best = %v, want planted %v", res.Best.Triple, want)
	}
}

func TestObjectiveVariants(t *testing.T) {
	it := &dataset.Interaction{SNPs: [3]int{2, 7, 12}, Penetrance: dataset.ThresholdPenetrance(2, 0.05, 0.95)}
	mx, err := dataset.Generate(dataset.GenConfig{
		SNPs: 16, Samples: 1500, Seed: 21, MAFMin: 0.3, MAFMax: 0.5, Interaction: it,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Triple{I: 2, J: 7, K: 12}
	for _, name := range []string{"k2", "mi", "gini"} {
		obj, err := score.New(name, mx.Samples())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(mx, Options{Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Triple != want {
			t.Errorf("%s: best %v, want %v", name, res.Best.Triple, want)
		}
	}
}

func TestTopKOrderingAndSize(t *testing.T) {
	mx := randomMatrix(63, 15, 150)
	res, err := Search(mx, Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 10 {
		t.Fatalf("TopK size %d, want 10", len(res.TopK))
	}
	obj := score.NewK2(mx.Samples())
	for i := 1; i < len(res.TopK); i++ {
		a, b := res.TopK[i-1], res.TopK[i]
		if a.Score != b.Score && !obj.Better(a.Score, b.Score) {
			t.Errorf("TopK not sorted at %d: %g vs %g", i, a.Score, b.Score)
		}
	}
	// TopK larger than the space returns everything.
	small := randomMatrix(64, 4, 40)
	resAll, err := Search(small, Options{TopK: 100})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(resAll.TopK)) != combin.Triples(4) {
		t.Errorf("TopK = %d, want %d", len(resAll.TopK), combin.Triples(4))
	}
}

func TestBlockParameterRobustness(t *testing.T) {
	mx := randomMatrix(65, 23, 170) // M not a multiple of BS
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(Options{Approach: V2Split})
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 2, 3, 5, 7, 23, 64} {
		for _, bw := range []int{1, 2, 5} {
			for _, a := range []Approach{V3Blocked, V3Fused, V4Fused} {
				res, err := s.Run(Options{Approach: a, BlockSNPs: bs, BlockWords: bw})
				if err != nil {
					t.Fatalf("%v bs=%d bw=%d: %v", a, bs, bw, err)
				}
				if res.Best != want.Best {
					t.Errorf("%v bs=%d bw=%d: best %+v, want %+v", a, bs, bw, res.Best, want.Best)
				}
			}
		}
	}
}

func TestLaneVariants(t *testing.T) {
	mx := randomMatrix(66, 18, 260)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(Options{Approach: V3Blocked})
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 4, 8} {
		for _, a := range []Approach{V4Vector, V4Fused} {
			res, err := s.Run(Options{Approach: a, Lanes: lanes})
			if err != nil {
				t.Fatal(err)
			}
			if res.Best != want.Best {
				t.Errorf("%v lanes=%d best differs", a, lanes)
			}
		}
	}
}

func TestOptionValidation(t *testing.T) {
	mx := randomMatrix(67, 6, 50)
	bad := []Options{
		{Approach: Approach(9)},
		{Workers: -1},
		{TopK: -2},
		{Lanes: 3},
		{L1DataBytes: 10},
		{Approach: V3Blocked, BlockSNPs: -1, BlockWords: 2},
	}
	for i, o := range bad {
		if _, err := Search(mx, o); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
}

func TestNewRejectsBadDatasets(t *testing.T) {
	if _, err := New(randomMatrix(68, 2, 10)); err == nil {
		t.Error("2 SNPs accepted")
	}
	oneClass := dataset.NewMatrix(5, 10) // all controls
	if _, err := New(oneClass); err == nil {
		t.Error("single-class dataset accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	mx := randomMatrix(69, 64, 512)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, a := range []Approach{V2Split, V4Vector} {
		if _, err := s.Run(Options{Approach: a, Context: ctx}); err == nil {
			t.Errorf("%v: cancelled run returned no error", a)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	mx := randomMatrix(70, 10, 128)
	res, err := Search(mx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Combinations != combin.Triples(10) {
		t.Errorf("combinations %d", res.Stats.Combinations)
	}
	if res.Stats.Elements != float64(combin.Triples(10))*128 {
		t.Errorf("elements %g", res.Stats.Elements)
	}
	if res.Stats.Duration <= 0 || res.Stats.ElementsPerSec <= 0 {
		t.Errorf("timing not populated: %+v", res.Stats)
	}
}

// Property: V2, V4 and V4F agree on arbitrary random datasets, including
// awkward shapes (class imbalance, tiny N, N not a word multiple).
func TestApproachEquivalenceProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8, nRaw uint16, imbalance bool) bool {
		m := int(mRaw%12) + 5
		n := int(nRaw%300) + 10
		r := rand.New(rand.NewSource(seed))
		mx := dataset.NewMatrix(m, n)
		for i := 0; i < m; i++ {
			row := mx.Row(i)
			for j := range row {
				row[j] = uint8(r.Intn(3))
			}
		}
		caseEvery := 2
		if imbalance {
			caseEvery = 7
		}
		for j := 0; j < n; j++ {
			if j%caseEvery == 0 {
				mx.SetPhen(j, dataset.Case)
			}
		}
		s, err := New(mx)
		if err != nil {
			return false
		}
		r2, err2 := s.Run(Options{Approach: V2Split, Workers: 2})
		r4, err4 := s.Run(Options{Approach: V4Vector, Workers: 2})
		rf, errf := s.Run(Options{Approach: V4Fused, Workers: 2})
		return err2 == nil && err4 == nil && errf == nil &&
			r2.Best == r4.Best && r2.Best == rf.Best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTripleLessAndString(t *testing.T) {
	a := Triple{1, 2, 3}
	b := Triple{1, 2, 4}
	c := Triple{1, 3, 3}
	d := Triple{2, 2, 3}
	if !a.Less(b) || !a.Less(c) || !a.Less(d) || b.Less(a) {
		t.Error("Less ordering wrong")
	}
	if a.String() != "(1,2,3)" {
		t.Errorf("String = %q", a.String())
	}
}
