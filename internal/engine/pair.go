package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
)

// Second-order (2-way) search: the interaction order targeted by
// GBOOST, episNP and GWISFI and supported by MPI3SNP. It shares the
// phenotype-split data, the NOR inference, the dynamic scheduling and
// the objectives with the 3-way engine; only the table kernel differs
// (9 cells embedded in a Table).

// Pair identifies a SNP combination i < j.
type Pair struct {
	I, J int
}

// Less orders pairs lexicographically (the deterministic tie-break).
func (p Pair) Less(o Pair) bool {
	if p.I != o.I {
		return p.I < o.I
	}
	return p.J < o.J
}

// PairCandidate is a scored SNP pair.
type PairCandidate struct {
	Pair  Pair
	Score float64
}

// PairResult is the outcome of an exhaustive 2-way search.
type PairResult struct {
	Best  PairCandidate
	TopK  []PairCandidate
	Stats Stats
}

// RunPairs executes an exhaustive second-order search. Options are
// interpreted as for Run; Approach is ignored (the split kernel is
// always used — the pair table is too small for tiling to matter).
func (s *Searcher) RunPairs(opts Options) (*PairResult, error) {
	o, err := opts.withDefaults(s.mx.Samples())
	if err != nil {
		return nil, err
	}
	m := s.mx.SNPs()
	total := combin.Pairs(m)
	chunk := flatChunkSize(total, o.Workers)

	var cursor atomic.Int64
	var firstErr errOnce
	tops := make([]*pairTopK, o.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < o.Workers; wk++ {
		top := &pairTopK{topK: newTopK(o.Objective, o.TopK)}
		tops[wk] = top
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Reused per worker so the interface call does not force a
			// heap allocation per combination.
			var tab contingency.Table
			for {
				if err := o.Context.Err(); err != nil {
					firstErr.set(err)
					return
				}
				lo := cursor.Add(chunk) - chunk
				if lo >= total {
					return
				}
				hi := lo + chunk
				if hi > total {
					hi = total
				}
				i, j := combin.UnrankPair(lo, m)
				for r := lo; r < hi; r++ {
					tab = contingency.BuildSplitPair(s.split, i, j)
					top.offer(PairCandidate{
						Pair:  Pair{I: i, J: j},
						Score: o.Objective.Score(&tab),
					})
					if i+1 < j {
						i++
					} else {
						i, j = 0, j+1
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return nil, err
	}

	merged := &pairTopK{topK: newTopK(o.Objective, o.TopK)}
	for _, t := range tops {
		for _, c := range t.items {
			merged.offer(c)
		}
	}
	res := &PairResult{TopK: merged.items}
	if len(merged.items) > 0 {
		res.Best = merged.items[0]
	}
	res.Stats.Combinations = total
	res.Stats.Elements = combin.Elements(m, s.mx.Samples(), 2)
	res.Stats.Duration = time.Since(start)
	if secs := res.Stats.Duration.Seconds(); secs > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / secs
	}
	return res, nil
}

// SearchPairs is a convenience wrapper: build a Searcher and run one
// 2-way search.
func SearchPairs(mx *dataset.Matrix, opts Options) (*PairResult, error) {
	s, err := New(mx)
	if err != nil {
		return nil, err
	}
	return s.RunPairs(opts)
}

// pairTopK adapts the candidate accumulator to pairs: it reuses the
// ordering logic of topK through an embedded comparator.
type pairTopK struct {
	*topK
	items []PairCandidate
}

func (t *pairTopK) offer(c PairCandidate) {
	if t.k == 0 {
		return
	}
	betterThan := func(a, b PairCandidate) bool {
		if a.Score != b.Score {
			return t.obj.Better(a.Score, b.Score)
		}
		return a.Pair.Less(b.Pair)
	}
	if len(t.items) == t.k && !betterThan(c, t.items[len(t.items)-1]) {
		return
	}
	pos := len(t.items)
	for pos > 0 && betterThan(c, t.items[pos-1]) {
		pos--
	}
	if len(t.items) < t.k {
		t.items = append(t.items, PairCandidate{})
	} else if pos == len(t.items) {
		return
	}
	copy(t.items[pos+1:], t.items[pos:])
	t.items[pos] = c
}
