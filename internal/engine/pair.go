package engine

import (
	"time"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/sched"
	"trigene/internal/score"
	"trigene/internal/topk"
)

// Second-order (2-way) search: the interaction order targeted by
// GBOOST, episNP and GWISFI and supported by MPI3SNP. It shares the
// phenotype-split data, the NOR inference, the tile scheduler and the
// objectives with the 3-way engine; only the table kernel differs
// (9 cells embedded in a Table).

// Pair identifies a SNP combination i < j.
type Pair struct {
	I, J int
}

// Less orders pairs lexicographically (the deterministic tie-break).
func (p Pair) Less(o Pair) bool {
	if p.I != o.I {
		return p.I < o.I
	}
	return p.J < o.J
}

// PairCandidate is a scored SNP pair.
type PairCandidate struct {
	Pair  Pair
	Score float64
}

// PairResult is the outcome of an exhaustive 2-way search.
type PairResult struct {
	Best  PairCandidate
	TopK  []PairCandidate
	Stats Stats
	// Space is the covered slice of pair ranks when Shard restricted
	// the run; nil means the full space.
	Space *sched.Tile
}

// RunPairs executes an exhaustive second-order search. Options are
// interpreted as for Run; Approach is ignored (the split kernel is
// always used — the pair table is too small for tiling to matter).
// Shard slices the colexicographic pair-rank space.
func (s *Searcher) RunPairs(opts Options) (*PairResult, error) {
	o, err := opts.withDefaults(s.st.Samples())
	if err != nil {
		return nil, err
	}
	m := s.st.SNPs()
	res := &PairResult{}
	src, space, err := flatSpace(combin.Pairs(m), &o)
	if err != nil {
		return nil, err
	}
	res.Space = space
	cur := sched.NewCursor(src)
	if o.Progress != nil {
		cur.OnProgress(src.Ranks(), o.Progress)
	}

	start := time.Now()
	split := s.st.Split()
	workers := make([]*pairWorker, o.Workers)
	for w := range workers {
		workers[w] = &pairWorker{o: &o, split: split, m: m, a: getArena(o.Objective, 0, 0),
			top: newPairTopK(o.Objective, o.TopK)}
	}
	err = cur.Drain(o.Context, o.Workers, func(w int, t sched.Tile) (int64, error) {
		return workers[w].tile(t), nil
	})
	if err != nil {
		return nil, err
	}

	merged := newPairTopK(o.Objective, o.TopK)
	for _, w := range workers {
		for _, c := range w.top.items {
			merged.offer(c)
		}
		res.Stats.Combinations += w.a.scored
		w.a.release()
	}
	res.TopK = merged.items
	if len(merged.items) > 0 {
		res.Best = merged.items[0]
	}
	res.Stats.Elements = float64(res.Stats.Combinations) * float64(s.st.Samples())
	res.Stats.Duration = time.Since(start)
	if secs := res.Stats.Duration.Seconds(); secs > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / secs
	}
	return res, nil
}

// pairWorker is one consumer of the pair tile stream.
type pairWorker struct {
	o     *Options
	split *dataset.Split
	m     int
	a     *arena
	top   *pairTopK
}

// tile scores every pair rank in [t.Lo, t.Hi) and returns the count.
func (w *pairWorker) tile(t sched.Tile) int64 {
	obj := w.o.Objective
	i, j := combin.UnrankPair(t.Lo, w.m)
	for r := t.Lo; r < t.Hi; r++ {
		w.a.tab = contingency.BuildSplitPair(w.split, i, j)
		w.top.offer(PairCandidate{
			Pair:  Pair{I: i, J: j},
			Score: obj.Score(&w.a.tab),
		})
		if i+1 < j {
			i++
		} else {
			i, j = 0, j+1
		}
	}
	w.a.scored += t.Len()
	return t.Len()
}

// SearchPairs is a convenience wrapper: build a Searcher and run one
// 2-way search.
func SearchPairs(mx *dataset.Matrix, opts Options) (*PairResult, error) {
	s, err := New(mx)
	if err != nil {
		return nil, err
	}
	return s.RunPairs(opts)
}

// pairTopK adapts the candidate accumulator to pairs, keeping the
// shared objective-then-lexicographic ordering.
type pairTopK struct {
	k     int
	items []PairCandidate
	cmp   func(a, b PairCandidate) bool
}

func newPairTopK(obj score.Objective, k int) *pairTopK {
	return &pairTopK{k: k, cmp: func(a, b PairCandidate) bool {
		if a.Score != b.Score {
			return obj.Better(a.Score, b.Score)
		}
		return a.Pair.Less(b.Pair)
	}}
}

func (t *pairTopK) offer(c PairCandidate) {
	t.items = topk.Insert(t.items, c, t.k, t.cmp)
}
