package engine

import (
	"testing"

	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/gpusim"

	"trigene/internal/device"
)

// Edge-case hardening: degenerate genotype distributions, minimal
// dimensions, and extreme class imbalance must not break any pipeline.

func TestMonomorphicSNPs(t *testing.T) {
	// Every sample carries genotype 0 at every SNP: all counts land in
	// cell (0,0,0), split by class.
	mx := dataset.NewMatrix(6, 100)
	for j := 0; j < 100; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	tab := contingency.BuildSplit(s.Split(), 0, 1, 2)
	if tab.Cell(dataset.Control, 0, 0, 0) != 50 || tab.Cell(dataset.Case, 0, 0, 0) != 50 {
		t.Fatalf("monomorphic table wrong:\n%s", tab.String())
	}
	for a := V1Naive; a <= V4Fused; a++ {
		res, err := s.Run(Options{Approach: a})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		// All triples tie; the lexicographic tie-break picks (0,1,2).
		if res.Best.Triple != (Triple{0, 1, 2}) {
			t.Errorf("%v: best %v, want (0,1,2)", a, res.Best.Triple)
		}
	}
}

func TestAllGenotypeTwoSNPs(t *testing.T) {
	// All genotype 2 exercises the NOR-inferred plane plus the padding
	// correction maximally: the derived plane is all ones.
	mx := dataset.NewMatrix(5, 77) // odd N: padded last word
	for i := 0; i < 5; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = 2
		}
	}
	for j := 0; j < 77; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	tab := contingency.BuildSplit(s.Split(), 0, 2, 4)
	want := contingency.BuildReference(mx, 0, 2, 4)
	if !tab.Equal(&want) {
		t.Fatalf("all-g2 table differs:\n%s", tab.String())
	}
	if _, err := s.Run(Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeClassImbalance(t *testing.T) {
	// One case, everyone else control.
	mx := randomMatrix(150, 10, 200)
	for j := 0; j < 200; j++ {
		mx.SetPhen(j, dataset.Control)
	}
	mx.SetPhen(137, dataset.Case)
	s, err := New(mx)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Run(Options{Approach: V2Split})
	if err != nil {
		t.Fatal(err)
	}
	v4, err := s.Run(Options{Approach: V4Vector})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Best != v4.Best {
		t.Error("imbalanced dataset breaks approach equivalence")
	}
	// GPU simulator handles the 1-sample class (single padded word).
	gn1, err := device.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpusim.New(gn1).Search(encStore(mx), gpusim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Best.Score != v2.Best.Score {
		t.Errorf("gpusim score %.9f != engine %.9f", g.Best.Score, v2.Best.Score)
	}
}

func TestMinimalDimensions(t *testing.T) {
	// M = 3 has exactly one combination; N = 2 is the smallest
	// two-class sample set.
	mx := dataset.NewMatrix(3, 2)
	mx.SetGeno(0, 0, 1)
	mx.SetGeno(1, 1, 2)
	mx.SetPhen(1, dataset.Case)
	res, err := Search(mx, Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Combinations != 1 || len(res.TopK) != 1 {
		t.Fatalf("M=3: combos %d, topK %d", res.Stats.Combinations, len(res.TopK))
	}
	if res.Best.Triple != (Triple{0, 1, 2}) {
		t.Errorf("best %v", res.Best.Triple)
	}
}

func TestSampleCountOfOneWordBoundary(t *testing.T) {
	// Class sizes of exactly 64 and 65 straddle the word boundary.
	for _, n := range []int{128, 129, 130} {
		mx := randomMatrix(151, 8, n)
		s, err := New(mx)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := s.Run(Options{Approach: V2Split})
		if err != nil {
			t.Fatal(err)
		}
		v4, err := s.Run(Options{Approach: V4Vector})
		if err != nil {
			t.Fatal(err)
		}
		if v2.Best != v4.Best {
			t.Errorf("n=%d: V2/V4 disagree", n)
		}
	}
}

func TestWorkersExceedWork(t *testing.T) {
	mx := randomMatrix(152, 4, 50) // 4 combinations, 64 workers
	res, err := Search(mx, Options{Workers: 64, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 4 {
		t.Errorf("TopK = %d, want 4", len(res.TopK))
	}
}
