package bitvec

import (
	"math/rand"
	"testing"
)

func benchWords(n int) (x, y, z []uint64) {
	r := rand.New(rand.NewSource(1))
	mk := func() []uint64 {
		w := make([]uint64, n)
		for i := range w {
			w[i] = r.Uint64()
		}
		return w
	}
	return mk(), mk(), mk()
}

const benchN = 256 // 16384 samples

func BenchmarkPopCount(b *testing.B) {
	x, _, _ := benchWords(benchN)
	b.SetBytes(benchN * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += PopCount(x)
	}
	_ = sink
}

func BenchmarkPopCountLanes4(b *testing.B) {
	x, _, _ := benchWords(benchN)
	b.SetBytes(benchN * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += PopCountLanes4(x)
	}
	_ = sink
}

func BenchmarkPopCountAnd3(b *testing.B) {
	x, y, z := benchWords(benchN)
	b.SetBytes(benchN * 8 * 3)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += PopCountAnd3(x, y, z)
	}
	_ = sink
}

func BenchmarkPopCountAnd3Lanes4(b *testing.B) {
	x, y, z := benchWords(benchN)
	b.SetBytes(benchN * 8 * 3)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += PopCountAnd3Lanes4(x, y, z)
	}
	_ = sink
}

func BenchmarkPopCountAnd3Lanes8(b *testing.B) {
	x, y, z := benchWords(benchN)
	b.SetBytes(benchN * 8 * 3)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += PopCountAnd3Lanes8(x, y, z)
	}
	_ = sink
}

func BenchmarkNor(b *testing.B) {
	x, y, _ := benchWords(benchN)
	dst := make([]uint64, benchN)
	b.SetBytes(benchN * 8 * 2)
	for i := 0; i < b.N; i++ {
		Nor(dst, x, y)
	}
}
