package bitvec

import "math/bits"

// This file holds the fused word-parallel kernels used by the frequency
// table builders. They correspond to the instruction sequences in the
// paper's Figure 1 and Algorithms 1-2 (AND / NOR / POPCNT chains).
//
// Scalar kernels process one 64-bit word per iteration. Lane kernels
// process several words per iteration with independent accumulators,
// emulating the paper's AVX (4 lanes ~ 256 bit) and AVX-512 (8 lanes ~
// 512 bit) variants: the compiler can schedule the independent lane
// operations in parallel, which is the same ILP exposure SIMD gives.

// PopCountAnd2 returns popcount(x & y) over equally sized slices.
func PopCountAnd2(x, y []uint64) int {
	if len(y) == 0 {
		return 0
	}
	_ = x[len(y)-1]
	c := 0
	for i := range y {
		c += bits.OnesCount64(x[i] & y[i])
	}
	return c
}

// PopCountAnd3 returns popcount(x & y & z). This is the frequency-table
// cell kernel once the phenotype has been factored out of the dataset
// (approaches V2+).
func PopCountAnd3(x, y, z []uint64) int {
	if len(z) == 0 {
		return 0
	}
	_ = x[len(z)-1]
	_ = y[len(z)-1]
	c := 0
	for i := range z {
		c += bits.OnesCount64(x[i] & y[i] & z[i])
	}
	return c
}

// PopCountAnd3P returns popcount(x & y & z & p): the case-column kernel
// of the naive approach (V1), where p is the phenotype vector.
func PopCountAnd3P(x, y, z, p []uint64) int {
	if len(p) == 0 {
		return 0
	}
	_ = x[len(p)-1]
	_ = y[len(p)-1]
	_ = z[len(p)-1]
	c := 0
	for i := range p {
		c += bits.OnesCount64(x[i] & y[i] & z[i] & p[i])
	}
	return c
}

// PopCountAnd3NotP returns popcount(x & y & z & ^p): the control-column
// kernel of the naive approach (V1). The negated phenotype cannot set
// tail bits in the result because x, y and z are tail-clean.
func PopCountAnd3NotP(x, y, z, p []uint64) int {
	if len(p) == 0 {
		return 0
	}
	_ = x[len(p)-1]
	_ = y[len(p)-1]
	_ = z[len(p)-1]
	c := 0
	for i := range p {
		c += bits.OnesCount64(x[i] & y[i] & z[i] &^ p[i])
	}
	return c
}

// Nor writes ^(x|y) into dst without tail masking. Callers must mask or
// correct for tail bits themselves.
func Nor(dst, x, y []uint64) {
	if len(dst) == 0 {
		return
	}
	_ = x[len(dst)-1]
	_ = y[len(dst)-1]
	for i := range dst {
		dst[i] = ^(x[i] | y[i])
	}
}

// PopCountLanes4 counts set bits using 4 independent accumulator lanes.
// It is the 256-bit "vector" analogue of PopCount.
func PopCountLanes4(w []uint64) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(w); i += 4 {
		c0 += bits.OnesCount64(w[i])
		c1 += bits.OnesCount64(w[i+1])
		c2 += bits.OnesCount64(w[i+2])
		c3 += bits.OnesCount64(w[i+3])
	}
	for ; i < len(w); i++ {
		c0 += bits.OnesCount64(w[i])
	}
	return c0 + c1 + c2 + c3
}

// PopCountAnd3Lanes4 is PopCountAnd3 with 4 accumulator lanes.
func PopCountAnd3Lanes4(x, y, z []uint64) int {
	n := len(z)
	if n == 0 {
		return 0
	}
	_ = x[n-1]
	_ = y[n-1]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= n; i += 4 {
		c0 += bits.OnesCount64(x[i] & y[i] & z[i])
		c1 += bits.OnesCount64(x[i+1] & y[i+1] & z[i+1])
		c2 += bits.OnesCount64(x[i+2] & y[i+2] & z[i+2])
		c3 += bits.OnesCount64(x[i+3] & y[i+3] & z[i+3])
	}
	for ; i < n; i++ {
		c0 += bits.OnesCount64(x[i] & y[i] & z[i])
	}
	return c0 + c1 + c2 + c3
}

// PopCountAnd3Lanes8 is PopCountAnd3 with 8 accumulator lanes
// (the 512-bit analogue).
func PopCountAnd3Lanes8(x, y, z []uint64) int {
	n := len(z)
	if n == 0 {
		return 0
	}
	_ = x[n-1]
	_ = y[n-1]
	var c0, c1, c2, c3, c4, c5, c6, c7 int
	i := 0
	for ; i+8 <= n; i += 8 {
		c0 += bits.OnesCount64(x[i] & y[i] & z[i])
		c1 += bits.OnesCount64(x[i+1] & y[i+1] & z[i+1])
		c2 += bits.OnesCount64(x[i+2] & y[i+2] & z[i+2])
		c3 += bits.OnesCount64(x[i+3] & y[i+3] & z[i+3])
		c4 += bits.OnesCount64(x[i+4] & y[i+4] & z[i+4])
		c5 += bits.OnesCount64(x[i+5] & y[i+5] & z[i+5])
		c6 += bits.OnesCount64(x[i+6] & y[i+6] & z[i+6])
		c7 += bits.OnesCount64(x[i+7] & y[i+7] & z[i+7])
	}
	for ; i < n; i++ {
		c0 += bits.OnesCount64(x[i] & y[i] & z[i])
	}
	return c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7
}
