package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randWords(r *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = r.Uint64()
	}
	return w
}

// refPopCountAnd3 is a bit-by-bit reference implementation.
func refPopCountAnd3(x, y, z []uint64) int {
	c := 0
	for i := range z {
		for b := 0; b < 64; b++ {
			m := uint64(1) << b
			if x[i]&m != 0 && y[i]&m != 0 && z[i]&m != 0 {
				c++
			}
		}
	}
	return c
}

func TestPopCountKernelsAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33} {
		x, y, z, p := randWords(r, n), randWords(r, n), randWords(r, n), randWords(r, n)
		want := refPopCountAnd3(x, y, z)
		if got := PopCountAnd3(x, y, z); got != want {
			t.Errorf("n=%d PopCountAnd3 = %d, want %d", n, got, want)
		}
		if got := PopCountAnd3Lanes4(x, y, z); got != want {
			t.Errorf("n=%d PopCountAnd3Lanes4 = %d, want %d", n, got, want)
		}
		if got := PopCountAnd3Lanes8(x, y, z); got != want {
			t.Errorf("n=%d PopCountAnd3Lanes8 = %d, want %d", n, got, want)
		}
		// Case + control split of the naive kernel must cover the AND3 count.
		cs := PopCountAnd3P(x, y, z, p)
		ct := PopCountAnd3NotP(x, y, z, p)
		if cs+ct != want {
			t.Errorf("n=%d case(%d)+control(%d) != and3(%d)", n, cs, ct, want)
		}
		// And2 with an all-ones third operand equals And3.
		ones := make([]uint64, n)
		for i := range ones {
			ones[i] = ^uint64(0)
		}
		if got := PopCountAnd2(x, y); got != PopCountAnd3(x, y, ones) {
			t.Errorf("n=%d PopCountAnd2 inconsistent with And3", n)
		}
	}
}

func TestPopCountLanes4MatchesPopCount(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 17, 64} {
		w := randWords(r, n)
		if PopCountLanes4(w) != PopCount(w) {
			t.Errorf("n=%d lanes4 != scalar", n)
		}
	}
}

func TestNorKernel(t *testing.T) {
	x := []uint64{0xF0F0, 0}
	y := []uint64{0x0F0F, ^uint64(0)}
	dst := make([]uint64, 2)
	Nor(dst, x, y)
	if dst[0] != ^uint64(0xFFFF) {
		t.Errorf("Nor word0 = %x", dst[0])
	}
	if dst[1] != 0 {
		t.Errorf("Nor word1 = %x", dst[1])
	}
}

// Property: kernels agree with each other for arbitrary word content.
func TestKernelEquivalenceProperty(t *testing.T) {
	f := func(x, y, z []uint64) bool {
		n := min3(len(x), len(y), len(z))
		x, y, z = x[:n], y[:n], z[:n]
		a := PopCountAnd3(x, y, z)
		return a == PopCountAnd3Lanes4(x, y, z) && a == PopCountAnd3Lanes8(x, y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the 27-cell decomposition identity. For any disjoint planes,
// summing AND3 popcounts over all genotype combinations counts each
// sample exactly once.
func TestTwentySevenCellPartitionProperty(t *testing.T) {
	f := func(seed int64, wordsRaw uint8) bool {
		nw := int(wordsRaw%6) + 1
		r := rand.New(rand.NewSource(seed))
		mk := func() [3][]uint64 {
			var p [3][]uint64
			for g := range p {
				p[g] = make([]uint64, nw)
			}
			for w := 0; w < nw; w++ {
				for b := 0; b < 64; b++ {
					p[r.Intn(3)][w] |= 1 << b
				}
			}
			return p
		}
		x, y, z := mk(), mk(), mk()
		total := 0
		for gx := 0; gx < 3; gx++ {
			for gy := 0; gy < 3; gy++ {
				for gz := 0; gz < 3; gz++ {
					total += PopCountAnd3(x[gx], y[gy], z[gz])
				}
			}
		}
		return total == nw*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
