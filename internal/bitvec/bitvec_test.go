package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := WordsFor(c.n); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTailMask(t *testing.T) {
	if TailMask(0) != ^uint64(0) {
		t.Errorf("TailMask(0) = %x, want all ones", TailMask(0))
	}
	if TailMask(64) != ^uint64(0) {
		t.Errorf("TailMask(64) = %x, want all ones", TailMask(64))
	}
	if TailMask(1) != 1 {
		t.Errorf("TailMask(1) = %x, want 1", TailMask(1))
	}
	if TailMask(65) != 1 {
		t.Errorf("TailMask(65) = %x, want 1", TailMask(65))
	}
	if TailMask(10) != (1<<10)-1 {
		t.Errorf("TailMask(10) = %x, want %x", TailMask(10), uint64(1<<10)-1)
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.OnesCount() != len(idx) {
		t.Errorf("OnesCount = %d, want %d", v.OnesCount(), len(idx))
	}
	for _, i := range idx {
		v.Clear(i)
	}
	if v.OnesCount() != 0 {
		t.Errorf("OnesCount after clear = %d, want 0", v.OnesCount())
	}
}

func TestSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	if !v.Get(3) {
		t.Error("SetTo(3,true) did not set")
	}
	v.SetTo(3, false)
	if v.Get(3) {
		t.Error("SetTo(3,false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Get(10) },
		func() { v.Get(-1) },
		func() { v.Set(10) },
		func() { v.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestFromWords(t *testing.T) {
	w := []uint64{0xff, 0x1}
	v := FromWords(65, w)
	if v.OnesCount() != 9 {
		t.Errorf("OnesCount = %d, want 9", v.OnesCount())
	}
	// Mutating the shared slice is visible through the vector.
	w[0] = 0
	if v.OnesCount() != 1 {
		t.Errorf("OnesCount after mutation = %d, want 1", v.OnesCount())
	}
}

func TestFromWordsBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong word count")
		}
	}()
	FromWords(65, []uint64{0})
}

func TestFromWordsDirtyTailPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for dirty tail bits")
		}
	}()
	FromWords(10, []uint64{1 << 11})
}

func randVec(r *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestBooleanOpsAgainstBitLoop(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 63, 64, 65, 200, 1024} {
		a, b := randVec(r, n), randVec(r, n)
		and, or, xor, andnot, nor, not := New(n), New(n), New(n), New(n), New(n), New(n)
		and.And(a, b)
		or.Or(a, b)
		xor.Xor(a, b)
		andnot.AndNot(a, b)
		nor.Nor(a, b)
		not.Not(a)
		for i := 0; i < n; i++ {
			ab, bb := a.Get(i), b.Get(i)
			if and.Get(i) != (ab && bb) {
				t.Fatalf("n=%d And bit %d wrong", n, i)
			}
			if or.Get(i) != (ab || bb) {
				t.Fatalf("n=%d Or bit %d wrong", n, i)
			}
			if xor.Get(i) != (ab != bb) {
				t.Fatalf("n=%d Xor bit %d wrong", n, i)
			}
			if andnot.Get(i) != (ab && !bb) {
				t.Fatalf("n=%d AndNot bit %d wrong", n, i)
			}
			if nor.Get(i) != (!ab && !bb) {
				t.Fatalf("n=%d Nor bit %d wrong", n, i)
			}
			if not.Get(i) != !ab {
				t.Fatalf("n=%d Not bit %d wrong", n, i)
			}
		}
		// Tail invariant must hold for the complementing ops.
		for _, v := range []*Vector{nor, not} {
			if len(v.w) > 0 && v.w[len(v.w)-1]&^TailMask(n) != 0 {
				t.Fatalf("n=%d tail bits leaked", n)
			}
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b, dst := New(10), New(11), New(10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for length mismatch")
		}
	}()
	dst.And(a, b)
}

func TestCloneEqual(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randVec(r, 100)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(0)
	c.Clear(1)
	if a.Equal(c) && (a.Get(0) != c.Get(0) || a.Get(1) != c.Get(1)) {
		t.Fatal("mutating clone affected original comparison")
	}
	if a.Equal(New(101)) {
		t.Fatal("vectors of different length compared equal")
	}
}

func TestString(t *testing.T) {
	v := New(5)
	v.Set(1)
	v.Set(4)
	if got := v.String(); got != "01001" {
		t.Errorf("String = %q, want 01001", got)
	}
}

// Property: NOR-derived plane equals direct complement of union, and
// the three planes of a partition always popcount to n.
func TestNorPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		r := rand.New(rand.NewSource(seed))
		// Build two disjoint planes as a genotype encoding would.
		p0, p1 := New(n), New(n)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				p0.Set(i)
			case 1:
				p1.Set(i)
			}
		}
		p2 := New(n)
		p2.Nor(p0, p1)
		return p0.OnesCount()+p1.OnesCount()+p2.OnesCount() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
