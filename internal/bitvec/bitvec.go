// Package bitvec provides bit-packed sample vectors and the word-parallel
// Boolean/population-count kernels that underpin epistasis detection.
//
// The paper stores genotype presence/absence as one bit per sample and
// drives the hot loop with LOAD/NOR/AND/POPCNT instructions, vectorized
// with AVX or AVX-512 intrinsics where available. Go has no vector
// intrinsics, so this package substitutes:
//
//   - 64-bit machine words (two of the paper's 32-bit units per word) as
//     the scalar primitive, counted with math/bits.OnesCount64;
//   - unrolled multi-word "lane" kernels (4 lanes ~ 256-bit AVX,
//     8 lanes ~ 512-bit AVX-512) that expose the same instruction-level
//     parallelism a SIMD implementation would.
//
// All vectors maintain the invariant that bits at positions >= Len() are
// zero. Kernels that derive a plane with NOR (which would set those tail
// bits) either mask the final word or let the caller apply the known
// padding correction; see package contingency.
package bitvec

import (
	"fmt"
	"math/bits"
)

// WordBits is the number of sample bits packed into one storage word.
const WordBits = 64

// Vector is a fixed-length bit vector packed into 64-bit words.
// The zero value is an empty vector of length 0.
type Vector struct {
	n int
	w []uint64
}

// New returns a zeroed Vector holding n bits.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, w: make([]uint64, WordsFor(n))}
}

// FromWords wraps the given words as a Vector of length n. The slice is
// used directly (not copied). Tail bits beyond n must already be zero;
// FromWords panics if they are not, since every kernel relies on that
// invariant.
func FromWords(n int, w []uint64) *Vector {
	if len(w) != WordsFor(n) {
		panic(fmt.Sprintf("bitvec: %d words cannot hold exactly %d bits", len(w), n))
	}
	if m := TailMask(n); m != ^uint64(0) && len(w) > 0 && w[len(w)-1]&^m != 0 {
		panic("bitvec: nonzero tail bits")
	}
	return &Vector{n: n, w: w}
}

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n int) int { return (n + WordBits - 1) / WordBits }

// TailMask returns a mask with ones at every valid bit position of the
// final word of an n-bit vector. For n that is a multiple of WordBits
// (including n == 0) it returns all ones.
func TailMask(n int) uint64 {
	r := n % WordBits
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << r) - 1
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words. Mutating them is allowed as long as
// the tail-zero invariant is preserved.
func (v *Vector) Words() []uint64 { return v.w }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.w[i/WordBits] |= 1 << (uint(i) % WordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.w[i/WordBits] &^= 1 << (uint(i) % WordBits)
}

// SetTo sets bit i to the given value.
func (v *Vector) SetTo(i int, bit bool) {
	if bit {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Get reports whether bit i is 1.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.w[i/WordBits]>>(uint(i)%WordBits)&1 != 0
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int { return PopCount(v.w) }

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.w))
	copy(w, v.w)
	return &Vector{n: v.n, w: w}
}

// Equal reports whether v and o have the same length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// String renders the vector as a 0/1 string, bit 0 first. Intended for
// tests and small examples only.
func (v *Vector) String() string {
	b := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// And sets v = a & b. All three vectors must have the same length.
func (v *Vector) And(a, b *Vector) {
	v.pairCheck(a, b)
	for i := range v.w {
		v.w[i] = a.w[i] & b.w[i]
	}
}

// Or sets v = a | b.
func (v *Vector) Or(a, b *Vector) {
	v.pairCheck(a, b)
	for i := range v.w {
		v.w[i] = a.w[i] | b.w[i]
	}
}

// Xor sets v = a ^ b.
func (v *Vector) Xor(a, b *Vector) {
	v.pairCheck(a, b)
	for i := range v.w {
		v.w[i] = a.w[i] ^ b.w[i]
	}
}

// AndNot sets v = a &^ b.
func (v *Vector) AndNot(a, b *Vector) {
	v.pairCheck(a, b)
	for i := range v.w {
		v.w[i] = a.w[i] &^ b.w[i]
	}
}

// Nor sets v = ^(a | b), masking tail bits so the invariant holds.
// This is the genotype-2 inference primitive from the paper: with only
// the genotype-0 and genotype-1 planes stored, the genotype-2 plane is
// NOR(plane0, plane1).
func (v *Vector) Nor(a, b *Vector) {
	v.pairCheck(a, b)
	for i := range v.w {
		v.w[i] = ^(a.w[i] | b.w[i])
	}
	if len(v.w) > 0 {
		v.w[len(v.w)-1] &= TailMask(v.n)
	}
}

// Not sets v = ^a, masking tail bits.
func (v *Vector) Not(a *Vector) {
	if v.n != a.n {
		panic("bitvec: length mismatch")
	}
	for i := range v.w {
		v.w[i] = ^a.w[i]
	}
	if len(v.w) > 0 {
		v.w[len(v.w)-1] &= TailMask(v.n)
	}
}

func (v *Vector) pairCheck(a, b *Vector) {
	if v.n != a.n || v.n != b.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d/%d/%d", v.n, a.n, b.n))
	}
}

// PopCount returns the total number of set bits across the words.
func PopCount(w []uint64) int {
	c := 0
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}
