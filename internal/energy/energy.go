// Package energy models power consumption and energy efficiency of the
// epistasis kernels under dynamic voltage-frequency scaling — the
// paper's stated future direction ("inclusion of DVFS techniques to
// further improve the efficiency of bioinformatics applications").
//
// The model is the standard CMOS decomposition: device power splits
// into a frequency-independent static part and a dynamic part scaling
// cubically with frequency (voltage tracks frequency on the DVFS
// curve),
//
//	P(f) = Pstatic + Pdynamic * (f/f0)^3
//
// while the best epistasis approaches are compute bound (Section V-D),
// so throughput scales linearly with frequency. Energy efficiency
// rate(f)/P(f) then has the closed-form optimum
//
//	f* = f0 * cbrt(Pstatic / (2 * Pdynamic))
//
// clamped to the device's DVFS range.
package energy

import (
	"fmt"
	"math"

	"trigene/internal/device"
	"trigene/internal/perfmodel"
)

// DVFSModel describes one device's frequency/power/throughput surface
// for the best epistasis kernel at a fixed workload.
type DVFSModel struct {
	Device     string
	NominalGHz float64
	// StaticWatts is the frequency-independent power (leakage, uncore,
	// memory). DynamicWatts is the switching power at NominalGHz;
	// their sum is the device TDP.
	StaticWatts  float64
	DynamicWatts float64
	// RateAtNominal is the modeled throughput at NominalGHz, in
	// G elements/s.
	RateAtNominal float64
	// MinGHz and MaxGHz bound the DVFS range.
	MinGHz, MaxGHz float64
}

// staticShare is the assumed static fraction of TDP at nominal
// frequency (a typical value for the modeled process nodes).
const staticShare = 0.3

// ForCPU builds the DVFS model of a Table I CPU at the given workload
// (AVX-512 build on devices that support it, as in Section V-D).
func ForCPU(c device.CPU, snps, samples int) DVFSModel {
	tdp := c.TDPWatts * float64(c.Sockets)
	return DVFSModel{
		Device:        c.ID,
		NominalGHz:    c.BaseGHz,
		StaticWatts:   tdp * staticShare,
		DynamicWatts:  tdp * (1 - staticShare),
		RateAtNominal: perfmodel.CPUOverallGElemPerSec(c, true, snps, samples),
		MinGHz:        c.BaseGHz * 0.4,
		MaxGHz:        c.BaseGHz * 1.2,
	}
}

// ForGPU builds the DVFS model of a Table II GPU at the given workload.
func ForGPU(g device.GPU, snps, samples int) DVFSModel {
	return DVFSModel{
		Device:        g.ID,
		NominalGHz:    g.BoostGHz,
		StaticWatts:   g.TDPWatts * staticShare,
		DynamicWatts:  g.TDPWatts * (1 - staticShare),
		RateAtNominal: perfmodel.GPUOverallGElemPerSec(g, snps, samples),
		MinGHz:        g.BoostGHz * 0.4,
		MaxGHz:        g.BoostGHz,
	}
}

// PowerAt returns the modeled power draw (watts) at the given clock.
func (m DVFSModel) PowerAt(ghz float64) float64 {
	r := ghz / m.NominalGHz
	return m.StaticWatts + m.DynamicWatts*r*r*r
}

// RateAt returns the modeled throughput (G elements/s) at the given
// clock: the kernel is compute bound, so the rate is linear in
// frequency.
func (m DVFSModel) RateAt(ghz float64) float64 {
	return m.RateAtNominal * ghz / m.NominalGHz
}

// EfficiencyAt returns G elements per joule at the given clock.
func (m DVFSModel) EfficiencyAt(ghz float64) float64 {
	return m.RateAt(ghz) / m.PowerAt(ghz)
}

// OptimalGHz returns the clock maximizing energy efficiency within the
// DVFS range: f* = f0 * cbrt(Ps / (2 Pd)), clamped.
func (m DVFSModel) OptimalGHz() float64 {
	f := m.NominalGHz * math.Cbrt(m.StaticWatts/(2*m.DynamicWatts))
	if f < m.MinGHz {
		return m.MinGHz
	}
	if f > m.MaxGHz {
		return m.MaxGHz
	}
	return f
}

// GHzForPower returns the highest clock in the DVFS range whose
// modeled power stays within the budget — the planner's
// power-capped operating point. ok is false when even MinGHz exceeds
// the budget; the clamped MinGHz is still returned so callers can
// plan a best-effort run and report the shortfall.
func (m DVFSModel) GHzForPower(watts float64) (ghz float64, ok bool) {
	if m.PowerAt(m.MinGHz) > watts {
		return m.MinGHz, false
	}
	if m.PowerAt(m.MaxGHz) <= watts {
		return m.MaxGHz, true
	}
	// Invert P(f) = Ps + Pd (f/f0)^3 for the budget.
	f := m.NominalGHz * math.Cbrt((watts-m.StaticWatts)/m.DynamicWatts)
	if f < m.MinGHz {
		f = m.MinGHz
	}
	if f > m.MaxGHz {
		f = m.MaxGHz
	}
	return f, true
}

// SweepPoint is one frequency step of a DVFS sweep.
type SweepPoint struct {
	GHz        float64
	Watts      float64
	GElems     float64
	Efficiency float64 // G elements/J
}

// Sweep samples the DVFS range at the given number of steps
// (inclusive endpoints; steps must be >= 2).
func (m DVFSModel) Sweep(steps int) ([]SweepPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("energy: need at least 2 sweep steps, got %d", steps)
	}
	out := make([]SweepPoint, steps)
	for i := range out {
		f := m.MinGHz + (m.MaxGHz-m.MinGHz)*float64(i)/float64(steps-1)
		out[i] = SweepPoint{
			GHz:        f,
			Watts:      m.PowerAt(f),
			GElems:     m.RateAt(f),
			Efficiency: m.EfficiencyAt(f),
		}
	}
	return out, nil
}
