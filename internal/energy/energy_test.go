package energy

import (
	"math"
	"testing"

	"trigene/internal/device"
	"trigene/internal/perfmodel"
)

func gi2Model(t *testing.T) DVFSModel {
	t.Helper()
	g, err := device.GPUByID("GI2")
	if err != nil {
		t.Fatal(err)
	}
	return ForGPU(g, 8192, 16384)
}

func TestNominalPowerIsTDP(t *testing.T) {
	m := gi2Model(t)
	if math.Abs(m.PowerAt(m.NominalGHz)-25) > 1e-9 {
		t.Errorf("GI2 power at nominal = %.2f W, want TDP 25", m.PowerAt(m.NominalGHz))
	}
	ci3, err := device.CPUByID("CI3")
	if err != nil {
		t.Fatal(err)
	}
	cm := ForCPU(ci3, 8192, 16384)
	if math.Abs(cm.PowerAt(cm.NominalGHz)-500) > 1e-9 {
		t.Errorf("CI3 power at nominal = %.2f W, want 2x250", cm.PowerAt(cm.NominalGHz))
	}
}

func TestEfficiencyAtNominalMatchesSectionVD(t *testing.T) {
	m := gi2Model(t)
	g, _ := device.GPUByID("GI2")
	want := perfmodel.GElemPerJoule(perfmodel.GPUOverallGElemPerSec(g, 8192, 16384), g.TDPWatts)
	if math.Abs(m.EfficiencyAt(m.NominalGHz)-want) > 1e-9 {
		t.Errorf("nominal efficiency %.3f != Section V-D %.3f", m.EfficiencyAt(m.NominalGHz), want)
	}
}

func TestCubicPowerScaling(t *testing.T) {
	m := gi2Model(t)
	half := m.PowerAt(m.NominalGHz / 2)
	want := m.StaticWatts + m.DynamicWatts/8
	if math.Abs(half-want) > 1e-9 {
		t.Errorf("power at f0/2 = %.3f, want %.3f", half, want)
	}
	// Rate is linear.
	if math.Abs(m.RateAt(m.NominalGHz/2)-m.RateAtNominal/2) > 1e-9 {
		t.Error("rate should halve at half clock")
	}
}

func TestOptimalGHzClosedForm(t *testing.T) {
	m := gi2Model(t)
	opt := m.OptimalGHz()
	if opt < m.MinGHz || opt > m.MaxGHz {
		t.Fatalf("optimum %.3f outside range [%.3f, %.3f]", opt, m.MinGHz, m.MaxGHz)
	}
	// The closed form must beat nearby clocks (when interior).
	interior := opt > m.MinGHz && opt < m.MaxGHz
	if interior {
		for _, d := range []float64{-0.05, 0.05} {
			if m.EfficiencyAt(opt+d) > m.EfficiencyAt(opt)+1e-12 {
				t.Errorf("efficiency at %.3f beats the claimed optimum %.3f", opt+d, opt)
			}
		}
	}
	// Downclocking a 30%-static device always helps efficiency vs
	// nominal: cbrt(0.3/1.4) ~ 0.6 < 1.
	if m.EfficiencyAt(opt) < m.EfficiencyAt(m.MaxGHz) {
		t.Error("optimal efficiency below max-clock efficiency")
	}
}

func TestSweep(t *testing.T) {
	m := gi2Model(t)
	pts, err := m.Sweep(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if math.Abs(pts[0].GHz-m.MinGHz) > 1e-12 || math.Abs(pts[10].GHz-m.MaxGHz) > 1e-12 {
		t.Error("sweep endpoints wrong")
	}
	// Throughput increases monotonically with frequency; the sweep's
	// best efficiency is near the closed-form optimum.
	bestEff, bestGHz := 0.0, 0.0
	for i, p := range pts {
		if i > 0 && p.GElems <= pts[i-1].GElems {
			t.Error("rate not monotone in frequency")
		}
		if p.Efficiency > bestEff {
			bestEff, bestGHz = p.Efficiency, p.GHz
		}
	}
	if math.Abs(bestGHz-m.OptimalGHz()) > (m.MaxGHz-m.MinGHz)/10+1e-9 {
		t.Errorf("sweep optimum %.3f far from closed form %.3f", bestGHz, m.OptimalGHz())
	}
	if _, err := m.Sweep(1); err == nil {
		t.Error("1-step sweep accepted")
	}
}

func TestDeviceEfficiencyOrderingPreserved(t *testing.T) {
	// GI2 stays the efficiency leader under DVFS at its optimum too.
	var bestID string
	bestEff := 0.0
	for _, g := range device.AllGPUs() {
		m := ForGPU(g, 8192, 16384)
		if e := m.EfficiencyAt(m.OptimalGHz()); e > bestEff {
			bestEff, bestID = e, g.ID
		}
	}
	if bestID != "GI2" {
		t.Errorf("most efficient GPU under DVFS = %s, want GI2", bestID)
	}
}
