package perfmodel

import (
	"math"
	"testing"

	"trigene/internal/device"
)

// The perfmodel tests pin the modeled results to the paper's findings:
// exact values are calibration, but orderings and rough factors are the
// reproduction target.

func cpu(t *testing.T, id string) device.CPU {
	t.Helper()
	c, err := device.CPUByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func gpu(t *testing.T, id string) device.GPU {
	t.Helper()
	g, err := device.GPUByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const (
	figSNPs    = 8192
	figSamples = 16384
)

func TestICXVectorPopcntDominatesFigure3(t *testing.T) {
	ci3 := cpu(t, "CI3")
	got := CPUPerCoreGElemPerSec(ci3, true, figSNPs, figSamples)
	// Paper: ~15.4 G elements/s/core at 8192 SNPs.
	if got < 11 || got > 18 {
		t.Errorf("CI3 AVX512 per-core = %.1f G/s, want ~15.4", got)
	}
	// Paper: 2.5x over CI1 and 4.8x over AVX512 CI2.
	ci1 := CPUPerCoreGElemPerSec(cpu(t, "CI1"), false, figSNPs, figSamples)
	ci2 := CPUPerCoreGElemPerSec(cpu(t, "CI2"), true, figSNPs, figSamples)
	if r := got / ci1; r < 1.8 || r > 3.2 {
		t.Errorf("CI3/CI1 = %.2f, paper 2.5", r)
	}
	if r := got / ci2; r < 3.5 || r > 6.5 {
		t.Errorf("CI3/CI2(AVX512) = %.2f, paper 4.8", r)
	}
	// Paper: 4x over CA1 and 3x over CA2 per core.
	ca1 := CPUPerCoreGElemPerSec(cpu(t, "CA1"), false, figSNPs, figSamples)
	ca2 := CPUPerCoreGElemPerSec(cpu(t, "CA2"), false, figSNPs, figSamples)
	if r := got / ca1; r < 2.5 || r > 5.5 {
		t.Errorf("CI3/CA1 = %.2f, paper 4", r)
	}
	if r := got / ca2; r < 2.0 || r > 4.0 {
		t.Errorf("CI3/CA2 = %.2f, paper 3", r)
	}
}

func TestFigure3bPerCycleOrdering(t *testing.T) {
	// Paper: with AVX, all devices land at similar elements/cycle/core;
	// AVX512 CI3 is ~3.8x above the rest.
	ci3 := CPUPerCyclePerCore(cpu(t, "CI3"), true, figSNPs, figSamples)
	avx := []float64{
		CPUPerCyclePerCore(cpu(t, "CI1"), false, figSNPs, figSamples),
		CPUPerCyclePerCore(cpu(t, "CI2"), false, figSNPs, figSamples),
		CPUPerCyclePerCore(cpu(t, "CI3"), false, figSNPs, figSamples),
		CPUPerCyclePerCore(cpu(t, "CA1"), false, figSNPs, figSamples),
		CPUPerCyclePerCore(cpu(t, "CA2"), false, figSNPs, figSamples),
	}
	for i, v := range avx {
		if r := ci3 / v; r < 2.5 || r > 5.5 {
			t.Errorf("CI3 AVX512 / AVX device %d = %.2f, paper ~3.8", i, r)
		}
	}
	// AVX parity: max/min within 1.5x.
	minV, maxV := avx[0], avx[0]
	for _, v := range avx {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV/minV > 1.5 {
		t.Errorf("AVX per-cycle spread %.2f, paper shows parity", maxV/minV)
	}
}

func TestFigure3cVectorEfficiency(t *testing.T) {
	// Paper: CA1 (128-bit pipes) and AVX512 CI3 peak at ~0.4; CA2 is
	// half of CA1; CI1 is ~2.4x CI2 (AVX512).
	ca1 := CPUPerCyclePerCoreVec(cpu(t, "CA1"), false, figSNPs, figSamples)
	ci3 := CPUPerCyclePerCoreVec(cpu(t, "CI3"), true, figSNPs, figSamples)
	ca2 := CPUPerCyclePerCoreVec(cpu(t, "CA2"), false, figSNPs, figSamples)
	ci1 := CPUPerCyclePerCoreVec(cpu(t, "CI1"), false, figSNPs, figSamples)
	ci2 := CPUPerCyclePerCoreVec(cpu(t, "CI2"), true, figSNPs, figSamples)
	for name, v := range map[string]float64{"CA1": ca1, "CI3": ci3} {
		if v < 0.3 || v > 0.55 {
			t.Errorf("%s vector efficiency = %.2f, paper ~0.4", name, v)
		}
	}
	if r := ca1 / ca2; r < 1.6 || r > 2.4 {
		t.Errorf("CA1/CA2 = %.2f, paper ~2", r)
	}
	if r := ci1 / ci2; r < 1.9 || r > 3.0 {
		t.Errorf("CI1/CI2 = %.2f, paper ~2.4", r)
	}
}

func TestFigure4aTitanXpLeadsPerCU(t *testing.T) {
	snps, samples := 2048, 16384
	gn1 := GPUPerCUGElemPerSec(gpu(t, "GN1"), snps, samples)
	gn2 := GPUPerCUGElemPerSec(gpu(t, "GN2"), snps, samples)
	gn3 := GPUPerCUGElemPerSec(gpu(t, "GN3"), snps, samples)
	gn4 := GPUPerCUGElemPerSec(gpu(t, "GN4"), snps, samples)
	// Paper: GN1 2x GN2, 1.4x GN3, 1.9x GN4.
	if r := gn1 / gn2; r < 1.6 || r > 2.6 {
		t.Errorf("GN1/GN2 = %.2f, paper 2.0", r)
	}
	if r := gn1 / gn3; r < 1.2 || r > 2.2 {
		t.Errorf("GN1/GN3 = %.2f, paper 1.4", r)
	}
	if r := gn1 / gn4; r < 1.5 || r > 2.6 {
		t.Errorf("GN1/GN4 = %.2f, paper 1.9", r)
	}
	// AMD: GA3's frequency beats GA1/GA2 per second...
	ga1 := GPUPerCUGElemPerSec(gpu(t, "GA1"), snps, samples)
	ga3 := GPUPerCUGElemPerSec(gpu(t, "GA3"), snps, samples)
	if ga3 <= ga1 {
		t.Errorf("GA3 (%.1f) should beat GA1 (%.1f) per second/CU", ga3, ga1)
	}
	// ...but loses per cycle (Figure 4b).
	if GPUPerCyclePerCU(gpu(t, "GA3"), snps, samples) >= GPUPerCyclePerCU(gpu(t, "GA1"), snps, samples) {
		t.Error("GA1 should beat GA3 per cycle/CU")
	}
	// Intel: GI2 slightly ahead per second, equal per cycle.
	gi1, gi2 := gpu(t, "GI1"), gpu(t, "GI2")
	if GPUPerCUGElemPerSec(gi2, snps, samples) <= GPUPerCUGElemPerSec(gi1, snps, samples) {
		t.Error("GI2 should beat GI1 per second/CU")
	}
	if math.Abs(GPUPerCyclePerCU(gi1, snps, samples)-GPUPerCyclePerCU(gi2, snps, samples)) > 1e-9 {
		t.Error("GI1 and GI2 should tie per cycle/CU")
	}
}

func TestFigure4cStreamCoreOccupancy(t *testing.T) {
	snps, samples := 8192, 16384
	// Paper: NVIDIA/Intel between ~0.23-0.27, AMD 0.175-0.21.
	for _, id := range []string{"GN1", "GN2", "GN3", "GN4", "GI1", "GI2"} {
		v := GPUPerCyclePerStreamCore(gpu(t, id), snps, samples)
		if v < 0.15 || v > 0.40 {
			t.Errorf("%s per stream core = %.3f, paper 0.23-0.27", id, v)
		}
	}
	for _, id := range []string{"GA1", "GA2", "GA3"} {
		v := GPUPerCyclePerStreamCore(gpu(t, id), snps, samples)
		if v < 0.08 || v > 0.25 {
			t.Errorf("%s per stream core = %.3f, paper 0.175-0.21", id, v)
		}
	}
	// AMD occupancy below NVIDIA's.
	if GPUPerCyclePerStreamCore(gpu(t, "GA1"), snps, samples) >=
		GPUPerCyclePerStreamCore(gpu(t, "GN2"), snps, samples) {
		t.Error("AMD stream-core occupancy should trail NVIDIA")
	}
}

func TestSectionVDOverall(t *testing.T) {
	rows := Overall(8192, 16384)
	if len(rows) != 14 {
		t.Fatalf("Overall rows = %d, want 14 (5 CPU + 9 GPU)", len(rows))
	}
	byID := map[string]OverallRow{}
	for _, r := range rows {
		byID[r.DeviceID] = r
	}
	// Paper: GN3 ~2200, CI3 ~1100 (half), CI1 ~36.5, CA1 ~241 G elem/s.
	if v := byID["GN3"].GElems; v < 1500 || v > 3000 {
		t.Errorf("GN3 overall = %.0f, paper ~2200", v)
	}
	if v := byID["CI3"].GElems; v < 700 || v > 1500 {
		t.Errorf("CI3 overall = %.0f, paper ~1100", v)
	}
	if r := byID["GN3"].GElems / byID["CI3"].GElems; r < 1.4 || r > 3.0 {
		t.Errorf("GN3/CI3 = %.2f, paper ~2", r)
	}
	if v := byID["CI1"].GElems; v < 20 || v > 60 {
		t.Errorf("CI1 overall = %.0f, paper ~36.5", v)
	}
	if v := byID["CA1"].GElems; v < 150 || v > 400 {
		t.Errorf("CA1 overall = %.0f, paper ~241", v)
	}
	// Paper: only A100 surpasses MI100; MI100 beats Titan RTX.
	if byID["GA2"].GElems <= byID["GN3"].GElems {
		t.Error("MI100 should beat Titan RTX overall")
	}
	if byID["GN4"].GElems <= byID["GA2"].GElems {
		t.Error("A100 should beat MI100 overall")
	}
	// Efficiency: GI2 (25 W) is the most efficient device.
	best := rows[0]
	for _, r := range rows {
		if r.GElemsPerJoule > best.GElemsPerJoule {
			best = r
		}
	}
	if best.DeviceID != "GI2" {
		t.Errorf("most efficient device = %s, paper says GI2", best.DeviceID)
	}
	// Paper: GI2 ~11.3 vs GN3 ~7.9 G elements/J.
	if r := byID["GI2"].GElemsPerJoule / byID["GN3"].GElemsPerJoule; r < 1.0 || r > 2.5 {
		t.Errorf("GI2/GN3 efficiency = %.2f, paper 1.43", r)
	}
}

func TestTable3SpeedupShape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(table3Baselines) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OursGElems <= 0 {
			t.Errorf("%s %s: no modeled throughput", r.Work, r.DeviceID)
		}
		if r.SoAGElems == 0 {
			continue // N/A baseline
		}
		switch {
		case r.Work == "MPI3SNP" && r.IsGPU:
			// Paper: 1.49-1.64x small, 3.3-3.8x large.
			want := r.PaperSpeedup
			if r.Speedup < want*0.5 || r.Speedup > want*2 {
				t.Errorf("MPI3SNP %s %dx%d: speedup %.2f, paper %.2f", r.DeviceID, r.SNPs, r.Samples, r.Speedup, want)
			}
		case r.Work == "MPI3SNP":
			// CPU rows: large gains, growing with dataset size.
			if r.Speedup < 2 {
				t.Errorf("MPI3SNP CPU %s: speedup %.2f, paper %.2f", r.DeviceID, r.Speedup, r.PaperSpeedup)
			}
		case r.Work == "Nobre et al. [29]":
			// Paper: parity (0.89-1.05x).
			if r.Speedup < 0.6 || r.Speedup > 1.6 {
				t.Errorf("[29] %s: speedup %.2f, paper %.2f", r.DeviceID, r.Speedup, r.PaperSpeedup)
			}
		case r.Work == "Campos et al. [30]":
			// Paper: ~10.5x.
			if r.Speedup < 3 || r.Speedup > 25 {
				t.Errorf("[30] %s: speedup %.2f, paper %.2f", r.DeviceID, r.Speedup, r.PaperSpeedup)
			}
		}
	}
	// The big-dataset CPU row is the headline: ~21x on CI3 because
	// MPI3SNP's throughput stays flat while ours grows with N.
	var small, large float64
	for _, r := range rows {
		if r.Work == "MPI3SNP" && r.DeviceID == "CI3" {
			if r.SNPs == 10000 {
				small = r.Speedup
			} else {
				large = r.Speedup
			}
		}
	}
	if large <= small {
		t.Errorf("CI3 speedup should grow with dataset: %.1f -> %.1f", small, large)
	}
}

func TestCPUApproachProgression(t *testing.T) {
	// Figure 2a story on CI3: V2 processes elements ~2x faster than V1,
	// V3 ~1.2x over V2, V4 well above V3, total near an order of
	// magnitude.
	ci3 := cpu(t, "CI3")
	var rate [7]float64
	for a := 1; a <= 6; a++ {
		v, err := CPUApproachGElemPerSec(ci3, a, true, 2048, 16384)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Fatalf("approach %d rate = %g", a, v)
		}
		rate[a] = v
	}
	if r := rate[2] / rate[1]; r < 1.3 || r > 2.8 {
		t.Errorf("V2/V1 = %.2f, paper ~2", r)
	}
	if r := rate[3] / rate[2]; r < 1.05 || r > 1.5 {
		t.Errorf("V3/V2 = %.2f, paper ~1.2", r)
	}
	if r := rate[4] / rate[3]; r < 2 {
		t.Errorf("V4/V3 = %.2f, paper ~7.5 (smaller without real SIMD)", r)
	}
	// Fused variants: V3F modestly above V3 (fewer scalar ops), V4F
	// modestly above V4 (smaller pre-popcount budget) — each the best
	// of its pipeline class, so BestCPUApproach lands on V4F.
	if r := rate[5] / rate[3]; r < 1.05 || r > 1.3 {
		t.Errorf("V3F/V3 = %.2f, want the 93/82 scalar-op ratio", r)
	}
	if r := rate[6] / rate[4]; r <= 1 || r > 1.3 {
		t.Errorf("V4F/V4 = %.2f, want a modest fused gain", r)
	}
	if _, err := CPUApproachGElemPerSec(ci3, 7, true, 2048, 16384); err == nil {
		t.Error("approach 7 accepted")
	}
}

func TestApproachCosts(t *testing.T) {
	v1, err := CostOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if v1.AI() != 162.0/40 {
		t.Errorf("V1 AI = %g, want 4.05", v1.AI())
	}
	v2, err := CostOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.AI() != 57.0/24 {
		t.Errorf("V2 AI = %g, want 2.375", v2.AI())
	}
	// AI drops from V1 to V2 (the paper's key CARM observation).
	if v2.AI() >= v1.AI() {
		t.Error("V2 AI should be below V1 AI")
	}
	if v1.OpsPerElement() != 162.0/32 {
		t.Errorf("V1 ops/element = %g", v1.OpsPerElement())
	}
	for _, a := range []int{3, 4} {
		c, err := CostOf(a)
		if err != nil || c != v2 {
			t.Errorf("approach %d cost should equal V2's", a)
		}
	}
	// The fused variants execute fewer ops per element but touch the
	// nine cached pair planes, so their AI sits below V2's while the
	// op count drops from 57 to 55.
	vf, err := CostOf(6)
	if err != nil {
		t.Fatal(err)
	}
	if vf.AI() != 55.0/44 || vf.AI() >= v2.AI() {
		t.Errorf("V4F AI = %g, want 1.25 (below V2's %g)", vf.AI(), v2.AI())
	}
	if v3f, err := CostOf(5); err != nil || v3f != vf {
		t.Error("approach 5 cost should equal V4F's")
	}
	if _, err := CostOf(9); err == nil {
		t.Error("unknown approach accepted")
	}
	if ApproachName(4) != "V4" || ApproachName(5) != "V3F" || ApproachName(6) != "V4F" {
		t.Error("approach names wrong")
	}
}

func TestEfficiencyFactorsMonotone(t *testing.T) {
	prevM, prevNC, prevNG := 0.0, 0.0, 0.0
	for _, m := range []int{512, 1024, 2048, 8192, 40000} {
		v := SNPEfficiency(m)
		if v <= prevM || v >= 1 {
			t.Errorf("SNPEfficiency(%d) = %.3f not monotone in (0,1)", m, v)
		}
		prevM = v
	}
	for _, n := range []int{400, 1600, 6400, 16384} {
		c, g := CPUSampleEfficiency(n), GPUSampleEfficiency(n)
		if c <= prevNC || g <= prevNG || c >= 1 || g >= 1 {
			t.Errorf("sample efficiency at %d not monotone: cpu %.3f gpu %.3f", n, c, g)
		}
		prevNC, prevNG = c, g
	}
	// GPUs amortize faster than CPUs at small N.
	if GPUSampleEfficiency(1600) <= CPUSampleEfficiency(1600) {
		t.Error("GPU sample efficiency should exceed CPU's at N=1600")
	}
}

func TestGElemPerJoule(t *testing.T) {
	if GElemPerJoule(282.1, 25) < 11 || GElemPerJoule(282.1, 25) > 12 {
		t.Errorf("GI2 efficiency example = %.2f, want ~11.3", GElemPerJoule(282.1, 25))
	}
}
