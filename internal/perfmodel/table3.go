package perfmodel

import (
	"fmt"

	"trigene/internal/device"
)

// Table3Row is one line of the paper's Table III: the state-of-the-art
// work's throughput on a device (as the paper measured it) against this
// work's modeled throughput on the same device.
type Table3Row struct {
	Work     string // baseline label
	SNPs     int
	Samples  int
	DeviceID string
	IsGPU    bool
	AVX512   bool // CPU rows: whether the AVX-512 build applies

	SoAGElems    float64 // paper-measured baseline throughput (G elements/s); 0 = N/A
	OursGElems   float64 // this reproduction's modeled throughput
	Speedup      float64 // OursGElems / SoAGElems (0 when SoA is N/A)
	PaperSpeedup float64 // the speedup the paper reports, for comparison
}

// table3Baselines pins the baseline throughputs the paper measured
// (Table III, "Performance of SoA Work"). The starred CPU rows of the
// 40000x6400 dataset reuse the small-dataset throughput, exactly as the
// paper extrapolates them.
var table3Baselines = []Table3Row{
	{Work: "MPI3SNP", SNPs: 10000, Samples: 1600, DeviceID: "GN2", IsGPU: true, SoAGElems: 663.4, PaperSpeedup: 1.64},
	{Work: "MPI3SNP", SNPs: 10000, Samples: 1600, DeviceID: "GN3", IsGPU: true, SoAGElems: 716.9, PaperSpeedup: 1.49},
	{Work: "MPI3SNP", SNPs: 10000, Samples: 1600, DeviceID: "CI3", AVX512: true, SoAGElems: 38.8, PaperSpeedup: 5.78},
	{Work: "MPI3SNP", SNPs: 10000, Samples: 1600, DeviceID: "CA2", SoAGElems: 11.7, PaperSpeedup: 5.74},
	{Work: "MPI3SNP", SNPs: 40000, Samples: 6400, DeviceID: "GN2", IsGPU: true, SoAGElems: 570.7, PaperSpeedup: 3.31},
	{Work: "MPI3SNP", SNPs: 40000, Samples: 6400, DeviceID: "GN3", IsGPU: true, SoAGElems: 573.6, PaperSpeedup: 3.78},
	{Work: "MPI3SNP", SNPs: 40000, Samples: 6400, DeviceID: "CI3", AVX512: true, SoAGElems: 38.8, PaperSpeedup: 21.09},
	{Work: "MPI3SNP", SNPs: 40000, Samples: 6400, DeviceID: "CA2", SoAGElems: 11.7, PaperSpeedup: 6.70},
	{Work: "Nobre et al. [29]", SNPs: 8000, Samples: 8000, DeviceID: "GN1", IsGPU: true, SoAGElems: 1443, PaperSpeedup: 0.89},
	{Work: "Nobre et al. [29]", SNPs: 8000, Samples: 8000, DeviceID: "GN2", IsGPU: true, SoAGElems: 1876, PaperSpeedup: 1.03},
	{Work: "Nobre et al. [29]", SNPs: 8000, Samples: 8000, DeviceID: "GN3", IsGPU: true, SoAGElems: 2140, PaperSpeedup: 1.05},
	{Work: "Nobre et al. [29]", SNPs: 8000, Samples: 8000, DeviceID: "GN4", IsGPU: true, SoAGElems: 2694, PaperSpeedup: 1.01},
	{Work: "Nobre et al. [29]", SNPs: 8000, Samples: 8000, DeviceID: "GA2", IsGPU: true, SoAGElems: 0, PaperSpeedup: 0}, // [29] cannot run on AMD
	{Work: "Campos et al. [30]", SNPs: 1000, Samples: 4000, DeviceID: "GI1", IsGPU: true, SoAGElems: 5.9, PaperSpeedup: 10.56},
	{Work: "Campos et al. [30]", SNPs: 1000, Samples: 4000, DeviceID: "CI1", SoAGElems: 2.9, PaperSpeedup: 10.45},
}

// Table3 evaluates this work's model on every Table III row and returns
// the populated comparison.
func Table3() ([]Table3Row, error) {
	rows := make([]Table3Row, len(table3Baselines))
	for i, r := range table3Baselines {
		if r.IsGPU {
			g, err := device.GPUByID(r.DeviceID)
			if err != nil {
				return nil, fmt.Errorf("perfmodel: table III row %d: %w", i, err)
			}
			r.OursGElems = GPUOverallGElemPerSec(g, r.SNPs, r.Samples)
		} else {
			c, err := device.CPUByID(r.DeviceID)
			if err != nil {
				return nil, fmt.Errorf("perfmodel: table III row %d: %w", i, err)
			}
			r.OursGElems = CPUOverallGElemPerSec(c, r.AVX512, r.SNPs, r.Samples)
		}
		if r.SoAGElems > 0 {
			r.Speedup = r.OursGElems / r.SoAGElems
		}
		rows[i] = r
	}
	return rows, nil
}

// OverallRow is one device's whole-system throughput and energy
// efficiency for the Section V-D comparison.
type OverallRow struct {
	DeviceID       string
	Name           string
	IsGPU          bool
	GElems         float64 // G elements/s
	TDP            float64
	GElemsPerJoule float64
}

// Overall returns the Section V-D device comparison (best approach per
// device) at the given workload, CPUs first then GPUs, in catalog order.
func Overall(snps, samples int) []OverallRow {
	var rows []OverallRow
	for _, c := range device.AllCPUs() {
		perf := CPUOverallGElemPerSec(c, true, snps, samples)
		tdp := c.TDPWatts * float64(c.Sockets)
		rows = append(rows, OverallRow{
			DeviceID: c.ID, Name: c.Name, GElems: perf,
			TDP: tdp, GElemsPerJoule: GElemPerJoule(perf, tdp),
		})
	}
	for _, g := range device.AllGPUs() {
		perf := GPUOverallGElemPerSec(g, snps, samples)
		rows = append(rows, OverallRow{
			DeviceID: g.ID, Name: g.Name, IsGPU: true, GElems: perf,
			TDP: g.TDPWatts, GElemsPerJoule: GElemPerJoule(perf, g.TDPWatts),
		})
	}
	return rows
}
