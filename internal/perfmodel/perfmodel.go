// Package perfmodel is the analytical throughput model that projects
// the epistasis kernels onto the paper's 13 devices, reproducing
// Figures 3 and 4, the device comparisons of Section V-D, and the
// state-of-the-art comparison of Table III.
//
// The model follows the paper's own explanations of its measurements:
// CPU performance is decided by the vector width, the availability of
// vector POPCNT (only Ice Lake SP), the extract overhead scalar POPCNT
// pays per 64-bit lane (two extracts on Skylake SP with 512-bit
// registers), AVX-512 license downclocking, and the clock; GPU
// performance is decided by POPCNT throughput per compute unit, the
// stream-core count and the clock. Two amortization factors shape the
// dataset-size dependence the paper's figures show: a SNP-count factor
// (block-edge and scheduling overhead) and a sample-count factor (the
// per-combination scoring overhead that dominates at small N).
//
// All constants below are calibration, not measurement; EXPERIMENTS.md
// records modeled-vs-paper values for every figure and table.
package perfmodel

import (
	"math"

	"trigene/internal/device"
)

// Per-class, per-vector-group instruction counts of the best CPU kernel
// (V4): 6 loads + 6 NOR halves (OR+XOR) + 36 AND, then the POPCNT path.
const (
	cpuVectorCycles = 24.0 // 48 vector uops at IPC 2
	// cpuFusedVectorCycles is the V4F pre-popcount budget: caching the
	// nine (y, z) pair-AND planes replaces the 6 loads + 6 NOR halves +
	// 36 AND of V4 with 11 loads + 2 NOR halves + 27 AND = 40 vector
	// uops at IPC 2 (the pair-plane build amortizes over the BS-deep
	// ii0 run and is folded away like the paper folds table updates).
	cpuFusedVectorCycles = 20.0
	cpuScalarIPC         = 3.0  // extract/popcnt/add dispatch on 3 scalar ports
	vpopcntReduce        = 2.0  // uops per _mm512_reduce_add_epi32 (amortized)
	gpuALUPerWord        = 66.0 // 3 NOR + 36 AND + 27 table adds
	gpuPopPerWord        = 27.0
	gpuEfficiency        = 0.9 // occupancy/scheduling derate
)

// CPUElementsPerCyclePerCore returns the modeled per-core, per-cycle
// element throughput of approach V4 (elements = combinations x samples,
// so this is "samples processed per cycle"). avx512 selects the 512-bit
// build on devices that support it; others always run the 256-bit
// build, as in Figure 3.
func CPUElementsPerCyclePerCore(c device.CPU, avx512 bool) float64 {
	return cpuElementsPerCyclePerCore(c, avx512, cpuVectorCycles)
}

// CPUFusedElementsPerCyclePerCore is the V4F analogue: same popcount
// path, smaller pre-popcount budget thanks to the cached pair planes.
func CPUFusedElementsPerCyclePerCore(c device.CPU, avx512 bool) float64 {
	return cpuElementsPerCyclePerCore(c, avx512, cpuFusedVectorCycles)
}

func cpuElementsPerCyclePerCore(c device.CPU, avx512 bool, vectorCycles float64) float64 {
	useAVX512 := avx512 && c.HasAVX512
	v := 256.0
	if useAVX512 {
		v = 512.0
	}
	var popCycles float64
	if useAVX512 && c.HasVectorPopcnt {
		// 27 vpopcnt + 27 reduce + 27 accumulate at vector IPC 2.
		popCycles = (27 + 27*vpopcntReduce + 27) / 2
	} else {
		// Per cell and 64-bit lane: E extracts + popcnt + add. The
		// extract count is width-dependent: one _mm256_extract_epi64
		// per lane at 256 bits on every device; at 512 bits Skylake SP
		// pays two extracts per lane (the paper's explanation for CI2's
		// AVX-512 regression).
		extracts := 1.0
		if useAVX512 {
			extracts = float64(c.ExtractsPerPopcnt)
		}
		lanes := v / 64
		popCycles = 27 * lanes * (extracts + 2) / cpuScalarIPC
	}
	return v / (vectorCycles + popCycles)
}

// cpuGHz returns the effective clock for the chosen build.
func cpuGHz(c device.CPU, avx512 bool) float64 {
	ghz := c.BaseGHz
	if avx512 && c.HasAVX512 {
		ghz *= c.VectorDownclock
	}
	return ghz
}

// SNPEfficiency models the block-edge and scheduling overhead that
// shrinks with the SNP count (the figures' mild growth from 2048 to
// 8192 SNPs).
func SNPEfficiency(snps int) float64 {
	return float64(snps) / (float64(snps) + 512)
}

// CPUSampleEfficiency models the per-combination scoring overhead: at
// small sample counts the 27-cell K2 evaluation rivals the counting
// kernel itself (the paper's 10000x1600 CPU results sit far below the
// 16384-sample figures).
func CPUSampleEfficiency(samples int) float64 {
	return 1 / (1 + math.Pow(2200/float64(samples), 1.5))
}

// GPUSampleEfficiency is the GPU analogue; per-thread bookkeeping
// amortizes faster there.
func GPUSampleEfficiency(samples int) float64 {
	return 1 / (1 + math.Pow(1250/float64(samples), 1.5))
}

// CPUPerCoreGElemPerSec returns Figure 3a's metric: Giga elements per
// second per core, for the given workload size.
func CPUPerCoreGElemPerSec(c device.CPU, avx512 bool, snps, samples int) float64 {
	return CPUElementsPerCyclePerCore(c, avx512) * cpuGHz(c, avx512) *
		SNPEfficiency(snps) * CPUSampleEfficiency(samples)
}

// CPUPerCyclePerCore returns Figure 3b's metric: elements per cycle and
// per core at the given workload size.
func CPUPerCyclePerCore(c device.CPU, avx512 bool, snps, samples int) float64 {
	return CPUElementsPerCyclePerCore(c, avx512) *
		SNPEfficiency(snps) * CPUSampleEfficiency(samples)
}

// CPUPerCyclePerCoreVec returns Figure 3c's metric: elements per cycle
// per (core x vector width in 32-bit lanes). Zen counts as 128-bit
// (4 lanes) as in the paper's Table I.
func CPUPerCyclePerCoreVec(c device.CPU, avx512 bool, snps, samples int) float64 {
	lanes := float64(c.VectorInt32Lanes(avx512))
	if c.Pipes128 {
		lanes = 4
	}
	return CPUPerCyclePerCore(c, avx512, snps, samples) / lanes
}

// CPUOverallGElemPerSec returns the whole-device throughput in Giga
// elements per second (Section V-D and Table III).
func CPUOverallGElemPerSec(c device.CPU, avx512 bool, snps, samples int) float64 {
	return CPUPerCoreGElemPerSec(c, avx512, snps, samples) * float64(c.TotalCores())
}

// CPUFusedOverallGElemPerSec returns the whole-device throughput of the
// fused V4F pipeline in Giga elements per second.
func CPUFusedOverallGElemPerSec(c device.CPU, avx512 bool, snps, samples int) float64 {
	return CPUFusedElementsPerCyclePerCore(c, avx512) * cpuGHz(c, avx512) *
		SNPEfficiency(snps) * CPUSampleEfficiency(samples) * float64(c.TotalCores())
}

// GPUElementsPerCyclePerCU returns the raw modeled per-CU, per-cycle
// element throughput of the best GPU kernel (V4): 32 samples per word,
// bounded by POPCNT throughput and stream-core ALU throughput. On
// devices where POPCNT shares the ALU pipes (Intel) the two serialize.
func GPUElementsPerCyclePerCU(g device.GPU) float64 {
	popCyc := gpuPopPerWord / g.PopcntPerCU
	aluCyc := gpuALUPerWord / float64(g.StreamCoresPerCU())
	var cyclesPerWord float64
	if g.SharedPopcntPipe {
		cyclesPerWord = popCyc + aluCyc
	} else {
		cyclesPerWord = popCyc
		if aluCyc > cyclesPerWord {
			cyclesPerWord = aluCyc
		}
	}
	return 32 / cyclesPerWord * gpuEfficiency
}

// GPUPerCUGElemPerSec returns Figure 4a's metric: Giga elements per
// second per compute unit.
func GPUPerCUGElemPerSec(g device.GPU, snps, samples int) float64 {
	return GPUElementsPerCyclePerCU(g) * g.BoostGHz *
		SNPEfficiency(snps) * GPUSampleEfficiency(samples)
}

// GPUPerCyclePerCU returns Figure 4b's metric.
func GPUPerCyclePerCU(g device.GPU, snps, samples int) float64 {
	return GPUElementsPerCyclePerCU(g) * SNPEfficiency(snps) * GPUSampleEfficiency(samples)
}

// GPUPerCyclePerStreamCore returns Figure 4c's metric.
func GPUPerCyclePerStreamCore(g device.GPU, snps, samples int) float64 {
	return GPUPerCyclePerCU(g, snps, samples) / float64(g.StreamCoresPerCU())
}

// GPUOverallGElemPerSec returns the whole-device throughput in Giga
// elements per second.
func GPUOverallGElemPerSec(g device.GPU, snps, samples int) float64 {
	return GPUPerCUGElemPerSec(g, snps, samples) * float64(g.CUs)
}

// GElemPerJoule returns the Section V-D efficiency metric: Giga
// elements per second divided by TDP watts = Giga elements per joule.
func GElemPerJoule(overallGElemPerSec, tdpWatts float64) float64 {
	return overallGElemPerSec / tdpWatts
}
