package perfmodel

import (
	"fmt"

	"trigene/internal/device"
)

// This file models the four CPU approaches individually (Figure 2a's
// characterization needs V1-V3, not just the best V4) and defines the
// per-approach operation/byte accounting shared with the roofline
// model.
//
// Counting convention (paper, Section IV): per 32-bit word of samples,
// the naive approach executes 27 x 6 = 162 instructions and streams 10
// words (nine genotype planes and the phenotype); the split approaches
// execute 3 NOR + 27 x (AND + POPCNT) = 57 instructions (plus table
// updates, which the paper folds away) and stream 6 words.

// ApproachCost describes one approach's arithmetic-intensity inputs.
type ApproachCost struct {
	OpsPerWord   float64 // instructions per 32-bit sample word
	BytesPerWord float64 // streamed bytes per 32-bit sample word
}

// AI returns the arithmetic intensity in intops/byte.
func (a ApproachCost) AI() float64 { return a.OpsPerWord / a.BytesPerWord }

// OpsPerElement converts the per-word count to per-element (32 samples
// per word).
func (a ApproachCost) OpsPerElement() float64 { return a.OpsPerWord / 32 }

// CostOf returns the paper's op/byte accounting for approach 1..6
// (V3 and V4 move the same data and execute the same ops as V2; only
// where the bytes are served from changes). The fused approaches
// (5 = V3F, 6 = V4F) cache the nine (y, z) pair-AND planes across the
// ii0 run: per combination word they execute 1 NOR + 27 AND + 27
// POPCNT = 55 ops and touch 11 words (2 stored x planes + 9 cached
// pair planes, all L1-resident by construction) — a lower arithmetic
// intensity that still sits on the compute ceiling because the bytes
// come off the L1 slope. The amortized pair-plane build (2 NOR + 9 AND
// per BS-deep ii0 run) is folded away like the paper folds table
// updates.
func CostOf(approach int) (ApproachCost, error) {
	switch approach {
	case 1:
		return ApproachCost{OpsPerWord: 162, BytesPerWord: 40}, nil
	case 2, 3, 4:
		return ApproachCost{OpsPerWord: 57, BytesPerWord: 24}, nil
	case 5, 6:
		return ApproachCost{OpsPerWord: 55, BytesPerWord: 44}, nil
	default:
		return ApproachCost{}, fmt.Errorf("perfmodel: unknown approach %d", approach)
	}
}

// ApproachName maps the numeric approach (1..6) to its report name:
// "V1".."V4" for the paper's four pipelines, "V3F"/"V4F" for the fused
// variants.
func ApproachName(approach int) string {
	switch approach {
	case 5:
		return "V3F"
	case 6:
		return "V4F"
	default:
		return fmt.Sprintf("V%d", approach)
	}
}

// Scalar-pipeline element rates (64-bit words, three scalar ports).
const (
	naiveScalarOpsPerWord = 162.0 // per 64-bit word: same instruction count, 64 samples
	splitScalarOpsPerWord = 93.0  // 3 NOR + 36 AND + 27 POPCNT + 27 ADD
	fusedScalarOpsPerWord = 82.0  // 1 NOR + 27 AND + 27 POPCNT + 27 ADD (pair planes cached)
	v2StreamStall         = 0.85  // L3-latency stall factor while streaming (no tiling)
)

// CPUApproachGElemPerSec returns the modeled whole-device element
// throughput (Giga elements/s) of approach 1..6 on a CPU, at the given
// workload. avx512 only affects the vector approaches 4 and 6 (V1-V3
// and the fused scalar V3F are scalar in the paper's progression).
func CPUApproachGElemPerSec(c device.CPU, approach int, avx512 bool, snps, samples int) (float64, error) {
	eff := SNPEfficiency(snps) * CPUSampleEfficiency(samples)
	cores := float64(c.TotalCores())
	l3Total := c.L3GBs * float64(c.Sockets) // GB/s across sockets
	switch approach {
	case 1:
		// Scalar, streaming three planes + phenotype: bound by the
		// slower cache levels (the paper's "scalar L3 roof").
		compute := 64 * cpuScalarIPC / naiveScalarOpsPerWord * c.BaseGHz * cores
		mem := l3Total / (80.0 / 64) // 10 x 8-byte loads per 64 samples
		return minf(compute, mem) * eff, nil
	case 2:
		// Scalar split kernel, still streaming (lower AI, same roof).
		compute := 64 * cpuScalarIPC / splitScalarOpsPerWord * c.BaseGHz * cores
		mem := l3Total / (48.0 / 64) // 6 x 8-byte loads per 64 samples
		return minf(compute, mem) * v2StreamStall * eff, nil
	case 3:
		// Blocking serves the block from L1: pure scalar compute bound.
		compute := 64 * cpuScalarIPC / splitScalarOpsPerWord * c.BaseGHz * cores
		return compute * eff, nil
	case 4:
		return CPUOverallGElemPerSec(c, avx512, snps, samples), nil
	case 5:
		// Fused blocked scalar kernel: still L1-served and compute
		// bound, with the pair-AND work hoisted out of the inner loop.
		compute := 64 * cpuScalarIPC / fusedScalarOpsPerWord * c.BaseGHz * cores
		return compute * eff, nil
	case 6:
		return CPUFusedOverallGElemPerSec(c, avx512, snps, samples), nil
	default:
		return 0, fmt.Errorf("perfmodel: unknown approach %d", approach)
	}
}

// GPUCost returns the op/byte accounting of the GPU split kernels
// (66 ALU + 27 POPCNT ops per 32-sample word over six streamed words),
// the GPU-side analogue of CostOf for roofline capping.
func GPUCost() ApproachCost {
	return ApproachCost{OpsPerWord: gpuALUPerWord + gpuPopPerWord, BytesPerWord: 24}
}

// BestCPUApproach returns the approach (1..6, including the fused
// 5 = V3F and 6 = V4F) with the highest modeled throughput on the
// device at the given workload, and that throughput in G elements/s —
// the planner's per-device kernel selection (the paper's Figure 2
// conclusion, computed instead of plotted, extended with the fused
// kernels' arithmetic intensity).
func BestCPUApproach(c device.CPU, avx512 bool, snps, samples int) (approach int, gElemPerSec float64) {
	for a := 1; a <= 6; a++ {
		rate, err := CPUApproachGElemPerSec(c, a, avx512, snps, samples)
		if err != nil {
			continue // unreachable for 1..6
		}
		if rate > gElemPerSec {
			approach, gElemPerSec = a, rate
		}
	}
	return approach, gElemPerSec
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
