package wal

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the journal record
// codec. The invariants: decoding never panics, never claims more
// bytes than it was given, returns only records whose re-encoding
// reproduces exactly the consumed prefix (so replay is a pure
// function of the intact prefix), and the bytes after the consumed
// prefix never form a full intact record at that position.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	var seed []byte
	seed = EncodeRecord(seed, []byte(`{"t":"submit","job":"j1","tiles":4}`))
	seed = EncodeRecord(seed, []byte(`{"t":"grant","job":"j1","tile":0,"seq":1}`))
	seed = EncodeRecord(seed, nil)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := append([]byte(nil), seed...)
	flipped[10] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		records, consumed := DecodeRecords(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		var rebuilt []byte
		for _, rec := range records {
			rebuilt = EncodeRecord(rebuilt, rec)
		}
		if !bytes.Equal(rebuilt, data[:consumed]) {
			t.Fatalf("re-encoding %d records does not reproduce the consumed prefix", len(records))
		}
		// The stop was genuine: decoding the remainder alone must not
		// yield a record either (otherwise DecodeRecords dropped data).
		if rest, n := DecodeRecords(data[consumed:]); len(rest) != 0 || n != 0 {
			t.Fatalf("decoder stopped early: %d more records after offset %d", len(rest), consumed)
		}
	})
}
