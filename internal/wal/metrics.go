package wal

import (
	"time"

	"trigene/internal/obs"
)

// metrics holds the log's resolved series. The zero value (all nil
// metrics) is fully functional: every update is a no-op, so the
// uninstrumented log pays nothing but nil checks.
type metrics struct {
	appends       *obs.Counter
	appendBytes   *obs.Counter
	syncs         *obs.Counter
	syncSeconds   *obs.Histogram
	snapshots     *obs.Counter
	snapshotBytes *obs.Gauge
	snapSeconds   *obs.Histogram
}

// Instrument registers the log's metrics on reg and starts recording:
// appended records and bytes, fsync count and latency, snapshot
// count, size and duration. Safe to call with a nil registry (a
// no-op) and idempotent per registry.
func (l *Log) Instrument(reg *obs.Registry) {
	l.m = metrics{
		appends:       reg.Counter("trigene_wal_appends_total", "Records appended to the write-ahead journal."),
		appendBytes:   reg.Counter("trigene_wal_append_bytes_total", "Payload bytes appended to the write-ahead journal."),
		syncs:         reg.Counter("trigene_wal_fsyncs_total", "Journal flush+fsync calls."),
		syncSeconds:   reg.Histogram("trigene_wal_fsync_seconds", "Journal flush+fsync latency.", obs.DurationBuckets),
		snapshots:     reg.Counter("trigene_wal_snapshots_total", "Snapshots written."),
		snapshotBytes: reg.Gauge("trigene_wal_snapshot_bytes", "Size of the last snapshot written."),
		snapSeconds:   reg.Histogram("trigene_wal_snapshot_seconds", "Snapshot write+cutover latency.", obs.DurationBuckets),
	}
}

// observeSync wraps a Sync with its counter and latency histogram.
func (l *Log) observeSync(start time.Time) {
	l.m.syncs.Inc()
	l.m.syncSeconds.Observe(time.Since(start).Seconds())
}
