// Package wal is the durability substrate of the cluster coordinator:
// an append-only, length-prefixed, checksummed record journal with
// periodic snapshots and deterministic replay.
//
// A Log owns one directory holding at most two files:
//
//	snapshot.snap    the latest compacted state (atomic rename)
//	journal-<g>.wal  records appended since that snapshot
//
// Each snapshot carries a generation number g; the journal that
// follows it is journal-<g>.wal, so a crash between writing a new
// snapshot and resetting the journal can never replay a record twice:
// Open loads the snapshot, opens exactly the journal of its
// generation (creating it when the crash landed in between), and
// deletes journals of any other generation.
//
// Records are opaque bytes framed as
//
//	[payload length  u32 LE][CRC-32C of payload  u32 LE][payload]
//
// and appended through a buffer: Append is cheap enough for the hot
// path (a lease grant), Sync flushes and fsyncs before a state
// transition is acknowledged to a client. Replay stops at the first
// torn or corrupt record and truncates the file there — the tail a
// crash interrupted mid-write is discarded, everything before it is
// trusted by checksum.
//
// The Log is not safe for concurrent use; callers serialize (the
// coordinator appends under its own mutex).
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

const (
	journalMagic = "TWJ1"
	snapMagic    = "TWS1"
	// headerLen is the journal file header: magic + generation.
	headerLen = 4 + 8
	// recordOverhead frames every record: length + CRC.
	recordOverhead = 4 + 4
	// MaxRecord bounds one record's payload; a longer length prefix is
	// treated as corruption (it is far beyond anything the coordinator
	// journals, and it stops a flipped length bit from swallowing the
	// rest of the file as one giant "record").
	MaxRecord = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an open write-ahead log: the recovered state (snapshot +
// journal records) plus an append head.
type Log struct {
	dir string
	gen uint64

	f        *os.File
	w        *bufio.Writer
	appended int // records appended since the last snapshot (or open)

	snapshot []byte
	records  [][]byte

	m metrics // resolved series; zero value is a no-op (see Instrument)
}

// Open opens (creating if needed) the log in dir and recovers it:
// after Open, Snapshot and Records hold everything a deterministic
// replay needs, in order.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir}
	if err := l.readSnapshot(); err != nil {
		return nil, err
	}
	if err := l.openJournal(); err != nil {
		return nil, err
	}
	l.dropStaleJournals()
	return l, nil
}

// Snapshot returns the recovered snapshot payload (nil when none was
// ever written). Valid until the next WriteSnapshot.
func (l *Log) Snapshot() []byte { return l.snapshot }

// Records returns the journal records recovered after the snapshot,
// oldest first. Valid until the next WriteSnapshot.
func (l *Log) Records() [][]byte { return l.records }

// Generation returns the current snapshot/journal generation.
func (l *Log) Generation() uint64 { return l.gen }

// AppendedSinceSnapshot counts records appended (plus recovered) on
// the current journal generation — the snapshot-trigger currency.
func (l *Log) AppendedSinceSnapshot() int { return l.appended + len(l.records) }

// Append frames and buffers one record. It does NOT reach the disk
// until Sync (or the buffer fills): callers acknowledging a state
// transition must Sync first; callers journaling transitions that are
// safe to lose in a crash (a lease grant — the tile simply re-issues)
// may leave the flush to the next critical record.
func (l *Log) Append(rec []byte) error {
	if len(rec) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(rec), MaxRecord)
	}
	var frame [recordOverhead]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(rec, castagnoli))
	if _, err := l.w.Write(frame[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(rec); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.appended++
	l.m.appends.Inc()
	l.m.appendBytes.Add(int64(len(rec)))
	return nil
}

// Sync flushes buffered appends and fsyncs the journal: every record
// appended before Sync survives a machine crash once it returns.
func (l *Log) Sync() error {
	start := time.Now()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.observeSync(start)
	return nil
}

// WriteSnapshot atomically replaces the snapshot with state and
// starts a fresh journal generation: the records compacted into the
// snapshot will not replay again. The recovered Snapshot/Records
// views are reset accordingly.
func (l *Log) WriteSnapshot(state []byte) error {
	snapStart := time.Now()
	newGen := l.gen + 1

	// Write the snapshot beside its final name and rename into place,
	// fsyncing file then directory, so a crash leaves either the old or
	// the new snapshot — never a torn one.
	tmp, err := os.CreateTemp(l.dir, "snapshot.*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	var hdr [4 + 8 + 8]byte
	copy(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], newGen)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(state)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(state, castagnoli))
	_, err = tmp.Write(hdr[:])
	if err == nil {
		_, err = tmp.Write(crc[:])
	}
	if err == nil {
		_, err = tmp.Write(state)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(l.dir, "snapshot.snap"))
	}
	if err == nil {
		err = syncDir(l.dir)
	}
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}

	// The snapshot is durable; cut over to the new journal generation
	// and drop the compacted one.
	old := l.f
	l.gen = newGen
	l.snapshot = append([]byte(nil), state...)
	l.records = nil
	l.appended = 0
	if err := l.createJournal(); err != nil {
		return err
	}
	if old != nil {
		old.Close()
		os.Remove(filepath.Join(l.dir, journalName(newGen-1)))
	}
	l.m.snapshots.Inc()
	l.m.snapshotBytes.Set(float64(len(state)))
	l.m.snapSeconds.Observe(time.Since(snapStart).Seconds())
	return nil
}

// Close flushes and closes the journal. The recovered views stay
// readable; appends after Close fail.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// readSnapshot loads and validates snapshot.snap, if present. A
// corrupt snapshot is a hard error: it is written atomically, so
// damage means the storage itself lied, and silently starting empty
// would re-execute everything the snapshot recorded.
func (l *Log) readSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(l.dir, "snapshot.snap"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(raw) < 4+8+8+4 || string(raw[0:4]) != snapMagic {
		return fmt.Errorf("wal: %s/snapshot.snap is not a snapshot", l.dir)
	}
	gen := binary.LittleEndian.Uint64(raw[4:12])
	size := binary.LittleEndian.Uint64(raw[12:20])
	sum := binary.LittleEndian.Uint32(raw[20:24])
	body := raw[24:]
	if uint64(len(body)) != size {
		return fmt.Errorf("wal: snapshot: %d payload bytes, header says %d", len(body), size)
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return fmt.Errorf("wal: snapshot: checksum mismatch")
	}
	l.gen = gen
	l.snapshot = body
	return nil
}

// openJournal opens (creating) the current generation's journal and
// recovers its records, truncating a torn tail.
func (l *Log) openJournal() error {
	path := filepath.Join(l.dir, journalName(l.gen))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		// Either a brand-new log, or a crash after WriteSnapshot renamed
		// the snapshot but before the fresh journal existed.
		return l.createJournal()
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if len(raw) < headerLen || string(raw[0:4]) != journalMagic ||
		binary.LittleEndian.Uint64(raw[4:headerLen]) != l.gen {
		f.Close()
		return fmt.Errorf("wal: %s is not generation-%d journal", path, l.gen)
	}
	records, good := DecodeRecords(raw[headerLen:])
	keep := int64(headerLen + good)
	if keep < int64(len(raw)) {
		// A crash tore the tail mid-append; everything after the last
		// intact record is garbage and must not interleave with new
		// appends.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.records = records
	return nil
}

// createJournal starts an empty journal for the current generation.
func (l *Log) createJournal() error {
	path := filepath.Join(l.dir, journalName(l.gen))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], journalMagic)
	binary.LittleEndian.PutUint64(hdr[4:], l.gen)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

// dropStaleJournals deletes journal files of any generation other
// than the current one (left behind by a crash inside WriteSnapshot's
// cut-over; their records are all inside the snapshot).
func (l *Log) dropStaleJournals() {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		if name != journalName(l.gen) {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
}

func journalName(gen uint64) string {
	return "journal-" + strconv.FormatUint(gen, 10) + ".wal"
}

// DecodeRecords parses a framed record stream, returning the intact
// records and how many bytes they occupy. Parsing stops — without
// error — at the first torn or corrupt frame: a short header, a
// length beyond MaxRecord, a truncated payload, or a checksum
// mismatch. The slice aliases data.
func DecodeRecords(data []byte) (records [][]byte, consumed int) {
	off := 0
	for {
		if len(data)-off < recordOverhead {
			return records, off
		}
		size := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if size > MaxRecord || int(size) > len(data)-off-recordOverhead {
			return records, off
		}
		payload := data[off+recordOverhead : off+recordOverhead+int(size)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, off
		}
		records = append(records, payload)
		off += recordOverhead + int(size)
	}
}

// EncodeRecord appends one framed record to buf — the exact bytes
// Append writes — and returns the extended buffer. It is the codec's
// encode half, exported so tests and fuzzers can pin the round-trip.
func EncodeRecord(buf, rec []byte) []byte {
	var frame [recordOverhead]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(rec, castagnoli))
	buf = append(buf, frame[:]...)
	return append(buf, rec...)
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
