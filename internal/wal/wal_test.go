package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen closes l (if non-nil) and opens the directory fresh —
// the recovery path every test drives.
func reopen(t *testing.T, l *Log, dir string) *Log {
	t.Helper()
	if l != nil {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	nl, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func wantRecords(t *testing.T, l *Log, want ...string) {
	t.Helper()
	got := l.Records()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLogRoundTrip: records appended and synced come back in order on
// reopen, with no snapshot involved.
func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.Snapshot() != nil || len(l.Records()) != 0 {
		t.Fatalf("fresh log recovered state: snap=%v records=%d", l.Snapshot(), len(l.Records()))
	}
	appendAll(t, l, "alpha", "", "gamma with a longer payload")

	l = reopen(t, l, dir)
	defer l.Close()
	wantRecords(t, l, "alpha", "", "gamma with a longer payload")
	if l.Snapshot() != nil {
		t.Error("snapshot appeared from nowhere")
	}
	// Appending after recovery extends the same journal.
	appendAll(t, l, "delta")
	l = reopen(t, l, dir)
	defer l.Close()
	wantRecords(t, l, "alpha", "", "gamma with a longer payload", "delta")
}

// TestLogSnapshotCompaction: WriteSnapshot replaces the recovered
// state, rotates the journal generation, and only post-snapshot
// records replay.
func TestLogSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "old-1", "old-2")
	if err := l.WriteSnapshot([]byte("state@2")); err != nil {
		t.Fatal(err)
	}
	if l.AppendedSinceSnapshot() != 0 {
		t.Errorf("appended-since-snapshot = %d after snapshot", l.AppendedSinceSnapshot())
	}
	appendAll(t, l, "new-1")

	gen := l.Generation()
	l = reopen(t, l, dir)
	defer l.Close()
	if l.Generation() != gen {
		t.Errorf("generation = %d, want %d", l.Generation(), gen)
	}
	if string(l.Snapshot()) != "state@2" {
		t.Errorf("snapshot = %q", l.Snapshot())
	}
	wantRecords(t, l, "new-1")

	// Exactly one journal file remains — the compacted one is gone.
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0] != filepath.Join(dir, journalName(gen)) {
		t.Errorf("journal files = %v", matches)
	}
}

// TestLogTornTailTruncated: a crash mid-append leaves a torn tail;
// recovery keeps every intact record, drops the tail, and appends
// cleanly after it.
func TestLogTornTailTruncated(t *testing.T) {
	for _, tear := range []struct {
		name string
		cut  func(raw []byte) []byte
	}{
		{"short header", func(raw []byte) []byte {
			return append(raw, 0x03, 0x00)
		}},
		{"truncated payload", func(raw []byte) []byte {
			return EncodeRecord(raw, []byte("doomed"))[:len(raw)+recordOverhead+2]
		}},
		{"corrupt checksum", func(raw []byte) []byte {
			raw = EncodeRecord(raw, []byte("doomed"))
			raw[len(raw)-1] ^= 0xff
			return raw
		}},
		{"absurd length", func(raw []byte) []byte {
			var frame [recordOverhead]byte
			binary.LittleEndian.PutUint32(frame[0:4], MaxRecord+1)
			return append(raw, frame[:]...)
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, "ok-1", "ok-2")
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, journalName(0))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear.cut(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			l = reopen(t, nil, dir)
			wantRecords(t, l, "ok-1", "ok-2")
			appendAll(t, l, "ok-3")
			l = reopen(t, l, dir)
			defer l.Close()
			wantRecords(t, l, "ok-1", "ok-2", "ok-3")
		})
	}
}

// TestLogCrashBetweenSnapshotAndJournal: if the new snapshot lands
// but the fresh journal never does (or the old one survives), Open
// reconstructs a consistent view — snapshot plus an empty journal —
// and deletes the stale generation.
func TestLogCrashBetweenSnapshotAndJournal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "compacted-1", "compacted-2")
	if err := l.WriteSnapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: resurrect the pre-snapshot journal and
	// delete the fresh one.
	stale := filepath.Join(dir, journalName(0))
	f, err := os.Create(stale)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], journalMagic)
	f.Write(hdr[:]) // generation 0
	f.Write(EncodeRecord(nil, []byte("compacted-1")))
	f.Close()
	if err := os.Remove(filepath.Join(dir, journalName(1))); err != nil {
		t.Fatal(err)
	}

	l = reopen(t, nil, dir)
	defer l.Close()
	if string(l.Snapshot()) != "snap" {
		t.Errorf("snapshot = %q", l.Snapshot())
	}
	wantRecords(t, l) // the compacted record must NOT replay
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale journal survived recovery: %v", err)
	}
}

// TestLogCorruptSnapshotIsFatal: snapshot damage is storage-level and
// must fail loudly rather than silently replaying from empty.
func TestLogCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("precious")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshot.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt snapshot opened without error")
	}
}

// TestLogOversizeRecordRejected: Append refuses a record beyond the
// codec bound instead of writing a frame replay would discard.
func TestLogOversizeRecordRejected(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

// TestDecodeEncodeRoundTrip pins the codec: encoding any record list
// and decoding it returns the same list and consumes every byte.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	var buf []byte
	var want []string
	for i := 0; i < 50; i++ {
		rec := fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i*7))
		want = append(want, rec)
		buf = EncodeRecord(buf, []byte(rec))
	}
	records, consumed := DecodeRecords(buf)
	if consumed != len(buf) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
	}
	if len(records) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(records), len(want))
	}
	for i := range want {
		if string(records[i]) != want[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}
