// Bit-plane permutation kernel: the batched, allocation-free engine
// behind KAll/KAllRange. A candidate's 3^k genotype-combination cells
// are materialized once as combo bit planes (the AND of its per-SNP
// genotype planes), so re-scoring under a permuted phenotype reduces to
// one popcount per cell: cases = popcount(comboPlane AND permPlane),
// controls = cellTotal − cases. Permuted phenotypes are packed into
// case bit planes in batches of B, and the counting loop runs cells
// outer / batch inner so each combo plane is loaded once per B
// permutations while the whole batch stays L1-resident.
//
// Determinism contract: permutation p draws its shuffle from a source
// seeded with Seed + p*7919 — exactly the scalar reference path — so
// hit counts are bit-identical to run/runCells for any worker count,
// any batch size, and any decomposition of the permutation range
// (which is what lets the cluster merge KAllRange tiles into p-values
// bit-exact with a single-node run).
package permtest

import (
	"fmt"
	"math/rand"
	"sync"

	"trigene/internal/bitvec"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/score"
)

// l1PermBudget is the cache footprint the batched counting loop aims
// for: one combo plane streaming against B resident perm planes plus
// the B×cells count matrix. A third of a typical 32 KiB L1D goes to
// each, mirroring the CARM sizing used by carm.FusedTileWords; the
// constant is local so the kernel does not drag the planner in.
const l1PermBudget = 24 << 10

// Batch size bounds: below minPermBatch the per-batch bookkeeping
// dominates, above maxPermBatch the batch spills L1 on wide samples.
const (
	minPermBatch = 4
	maxPermBatch = 64
)

// batchSize picks how many permuted phenotype planes to count per
// kernel pass for the given plane width and cell count.
func batchSize(words, cells int) int {
	b := l1PermBudget / (words*8 + cells*4)
	if b < minPermBatch {
		b = minPermBatch
	}
	if b > maxPermBatch {
		b = maxPermBatch
	}
	return b
}

// RangeResult is the raw outcome of KAllRange over a permutation index
// range: per-candidate observed scores and as-good-or-better hit counts
// for Count permutations. Ranges over disjoint index sets sum: the
// cluster coordinator adds Hits and Count across tiles and the result
// is bit-exact with a single-node run over the union.
type RangeResult struct {
	// Observed holds each candidate's score on the real phenotypes,
	// in candidate order.
	Observed []float64
	// Hits counts, per candidate, the permutations in the range whose
	// score ties or beats Observed.
	Hits []int
	// Count is the number of permutations evaluated (the range size).
	Count int
}

// planeCand is one candidate's prebuilt kernel state.
type planeCand struct {
	cells  int
	planes []uint64 // cells combo planes, words each, contiguous
	totals []int32  // popcount per combo plane (cell sample totals)
	obs    float64
	table  bool // score through contingency.Table (orders 2–3)
}

// KAll permutation-tests every candidate at once, sharing each permuted
// phenotype across all of them: the Fisher–Yates shuffle and the plane
// packing — the dominant per-permutation cost — are paid once per
// permutation instead of once per permutation per candidate. Results
// are bit-identical to calling K on each candidate separately with the
// same Config. Candidates may mix orders 2 through contingency.MaxOrder.
func KAll(mx *dataset.Matrix, candidates [][]int, cfg Config) ([]*Result, error) {
	c, err := cfg.withDefaults(mx.Samples())
	if err != nil {
		return nil, err
	}
	rr, err := KAllRange(mx, candidates, 0, c.Permutations, c)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(candidates))
	for i := range out {
		out[i] = &Result{
			Observed:       rr.Observed[i],
			AsGoodOrBetter: rr.Hits[i],
			Permutations:   c.Permutations,
			PValue:         float64(rr.Hits[i]+1) / float64(c.Permutations+1),
		}
	}
	return out, nil
}

// KAllRange runs the bit-plane kernel over permutation indices
// [offset, offset+count) only — the primitive a cluster tile executes.
// Config.Permutations is ignored; the range arguments govern. Because
// permutation p is seeded by its absolute index, any partition of an
// index range yields Hits that sum to the single-range result exactly.
func KAllRange(mx *dataset.Matrix, candidates [][]int, offset, count int, cfg Config) (*RangeResult, error) {
	c, err := cfg.withDefaults(mx.Samples())
	if err != nil {
		return nil, err
	}
	if offset < 0 || count < 1 {
		return nil, fmt.Errorf("permtest: invalid permutation range [%d,%d)", offset, offset+count)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("permtest: no candidates")
	}
	if c.Batch < 0 {
		return nil, fmt.Errorf("permtest: invalid batch size %d", c.Batch)
	}
	bin := c.Planes
	if bin == nil {
		bin = dataset.Binarize(mx)
	}
	if bin.M != mx.SNPs() || bin.N != mx.Samples() {
		return nil, fmt.Errorf("permtest: planes are %d×%d, matrix is %d×%d",
			bin.M, bin.N, mx.SNPs(), mx.Samples())
	}

	scorer, _ := c.Objective.(score.CellScorer)
	cands := make([]planeCand, len(candidates))
	maxCells := 0
	for i, snps := range candidates {
		if err := buildCand(mx, bin, snps, c.Objective, scorer, &cands[i]); err != nil {
			return nil, err
		}
		if cands[i].cells > maxCells {
			maxCells = cands[i].cells
		}
	}

	words := bin.Words
	n := mx.Samples()
	batch := c.Batch
	if batch == 0 {
		batch = batchSize(words, maxCells)
	}
	phen := mx.Phenotypes()

	hitsPer := make([][]int, c.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps := newPermScratch(c.Objective, len(cands), words, n, batch, maxCells)
			hitsPer[w] = ps.permWorker(c, cands, phen, words, n, batch, offset, count, w)
		}()
	}
	wg.Wait()
	if err := c.Context.Err(); err != nil {
		return nil, err
	}

	rr := &RangeResult{
		Observed: make([]float64, len(cands)),
		Hits:     make([]int, len(cands)),
		Count:    count,
	}
	for i := range cands {
		rr.Observed[i] = cands[i].obs
	}
	for _, hits := range hitsPer {
		for i, h := range hits {
			rr.Hits[i] += h
		}
	}
	return rr, nil
}

// buildCand validates one candidate and materializes its kernel state:
// combo planes, cell totals, and the observed score computed through
// the same oracle as the scalar reference path (Table scoring for
// orders 2–3, CellScorer beyond), so observed-vs-permuted comparisons
// are bit-identical to K.
func buildCand(mx *dataset.Matrix, bin *dataset.Binarized, snps []int, obj score.Objective, scorer score.CellScorer, out *planeCand) error {
	k := len(snps)
	if k < 2 || k > contingency.MaxOrder {
		return fmt.Errorf("permtest: order %d out of [2,%d]", k, contingency.MaxOrder)
	}
	for i, v := range snps {
		if v < 0 || v >= mx.SNPs() || (i > 0 && snps[i-1] >= v) {
			return fmt.Errorf("permtest: invalid combination %v", snps)
		}
	}
	cells := contingency.CellsK(k)
	words := bin.Words
	out.cells = cells
	out.table = k <= 3
	out.planes = make([]uint64, cells*words)
	out.totals = make([]int32, cells)
	if !out.table && scorer == nil {
		return fmt.Errorf("permtest: objective %q cannot score %d-way tables", obj.Name(), k)
	}

	// Cell c's combo plane is the AND of one genotype plane per SNP;
	// the digit order matches contingency.ComboIndex/PairComboIndex
	// (first SNP is the most significant base-3 digit). Genotype
	// planes are tail-clean, so the ANDs are too.
	pow := 1
	for i := 0; i < k-1; i++ {
		pow *= 3
	}
	for cell := 0; cell < cells; cell++ {
		dst := out.planes[cell*words : (cell+1)*words]
		copy(dst, bin.Plane(snps[0], cell/pow))
		rem, div := cell%pow, pow/3
		for d := 1; d < k; d++ {
			p := bin.Plane(snps[d], rem/div)
			for i := range dst {
				dst[i] &= p[i]
			}
			rem, div = rem%div, div/3
		}
		out.totals[cell] = int32(bitvec.PopCount(dst))
	}

	switch k {
	case 2:
		obs := contingency.BuildReferencePair(mx, snps[0], snps[1])
		out.obs = obj.Score(&obs)
	case 3:
		obs := contingency.BuildReference(mx, snps[0], snps[1], snps[2])
		out.obs = obj.Score(&obs)
	default:
		ctrl, cases := make([]int32, cells), make([]int32, cells)
		if err := contingency.BuildReferenceK(mx, snps, ctrl, cases); err != nil {
			return err
		}
		out.obs = scorer.ScoreCells(ctrl, cases)
	}
	return nil
}

// permScratch is one worker's preallocated state: label buffer, the
// B-plane batch, the B×cells count matrix, scoring slices, and the
// reseedable RNG. Everything the steady-state loop touches lives here,
// so the loop itself is allocation-free.
type permScratch struct {
	local  []uint8
	planes []uint64 // batch perm planes, words each
	cnt    []int32  // batch × maxCells count matrix
	ctrl   []int32
	cases  []int32
	hits   []int
	tab    contingency.Table
	scorer score.CellScorer
	// Reseeding a single source per permutation reproduces the scalar
	// path's rand.New(rand.NewSource(...)) stream without its per-
	// permutation allocations.
	src rand.Source
	rng *rand.Rand
}

func newPermScratch(obj score.Objective, nCands, words, n, batch, maxCells int) *permScratch {
	ps := &permScratch{
		local:  make([]uint8, n),
		planes: make([]uint64, batch*words),
		cnt:    make([]int32, batch*maxCells),
		ctrl:   make([]int32, maxCells),
		cases:  make([]int32, maxCells),
		hits:   make([]int, nCands),
		src:    rand.NewSource(0),
	}
	ps.scorer, _ = obj.(score.CellScorer)
	ps.rng = rand.New(ps.src)
	return ps
}

// permWorker runs one worker's strided share of the permutation range:
// shuffle, pack, and once batch planes accumulate, count and score the
// whole batch against every candidate. The returned slice is
// ps.hits — per-candidate as-good-or-better counts for this worker's
// stride.
func (ps *permScratch) permWorker(c Config, cands []planeCand, phen []uint8, words, n, batch, offset, count, w int) []int {
	for i := range ps.hits {
		ps.hits[i] = 0
	}
	nb := 0
	for p := offset + w; p < offset+count; p += c.Workers {
		if c.Context.Err() != nil {
			return ps.hits
		}
		copy(ps.local, phen)
		ps.src.Seed(c.Seed + int64(p)*7919)
		for s := n - 1; s > 0; s-- {
			t := ps.rng.Intn(s + 1)
			ps.local[s], ps.local[t] = ps.local[t], ps.local[s]
		}
		// The shuffled labels become a case bit plane. Unwritten tail
		// words stay zero, so the AND results are tail-clean.
		plane := ps.planes[nb*words : (nb+1)*words]
		for i := range plane {
			plane[i] = 0
		}
		for s, v := range ps.local {
			plane[s>>6] |= uint64(v) << (uint(s) & 63)
		}
		nb++
		if nb == batch {
			ps.flush(c, cands, words, nb)
			nb = 0
		}
	}
	if nb > 0 {
		ps.flush(c, cands, words, nb)
	}
	return ps.hits
}

// flush counts and scores the nb accumulated perm planes against every
// candidate.
func (ps *permScratch) flush(c Config, cands []planeCand, words, nb int) {
	for ci := range cands {
		cand := &cands[ci]
		cells := cand.cells
		// Cells outer, batch inner: one combo plane streams against
		// the resident batch, loading each combo word once per nb
		// permutations.
		for cell := 0; cell < cells; cell++ {
			combo := cand.planes[cell*words : (cell+1)*words]
			for b := 0; b < nb; b++ {
				ps.cnt[b*cells+cell] = int32(bitvec.PopCountAnd2(combo, ps.planes[b*words:(b+1)*words]))
			}
		}
		for b := 0; b < nb; b++ {
			row := ps.cnt[b*cells : (b+1)*cells]
			var sc float64
			if cand.table {
				ps.tab = contingency.Table{}
				for cell, cs := range row {
					ps.tab.Counts[dataset.Case][cell] = cs
					ps.tab.Counts[dataset.Control][cell] = cand.totals[cell] - cs
				}
				sc = c.Objective.Score(&ps.tab)
			} else {
				for cell, cs := range row {
					ps.cases[cell] = cs
					ps.ctrl[cell] = cand.totals[cell] - cs
				}
				sc = ps.scorer.ScoreCells(ps.ctrl[:cells], ps.cases[:cells])
			}
			if sc == cand.obs || c.Objective.Better(sc, cand.obs) {
				ps.hits[ci]++
			}
		}
	}
}
