// Package permtest estimates the statistical significance of candidate
// interactions by phenotype permutation — the standard GWAS follow-up
// once an exhaustive scan has produced its best combinations. Under the
// null hypothesis the phenotype labels carry no information about the
// genotypes, so re-scoring a candidate under random relabelings draws
// from its null score distribution; the p-value is the (add-one
// smoothed) fraction of permutations scoring at least as well as the
// observed data.
package permtest

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/score"
)

// Config parameterizes a permutation test.
type Config struct {
	// Permutations is the number of phenotype relabelings (default
	// 1000; the p-value resolution is 1/(Permutations+1)).
	Permutations int
	// Seed makes the test reproducible. Results are deterministic for
	// a given seed regardless of Workers.
	Seed int64
	// Workers is the parallelism (default all cores).
	Workers int
	// Objective must match the objective used by the scan that
	// produced the candidate (default Bayesian K2).
	Objective score.Objective
	// Context optionally allows cancellation; nil means
	// context.Background(). Cancellation is observed between
	// permutations and returns the context error.
	Context context.Context
	// Planes optionally supplies prebuilt genotype bit planes for the
	// bit-plane kernel (KAll/KAllRange); nil binarizes the matrix on
	// first use. Scalar paths ignore it.
	Planes *dataset.Binarized
	// Batch is the number of permuted phenotype planes counted per
	// kernel pass (0 picks an L1-sized batch). Scalar paths ignore it.
	Batch int
}

// Result summarizes a permutation test.
type Result struct {
	// Observed is the candidate's score on the real phenotypes.
	Observed float64
	// AsGoodOrBetter counts permutations whose score ties or beats
	// Observed.
	AsGoodOrBetter int
	// Permutations is the number of relabelings evaluated.
	Permutations int
	// PValue is (AsGoodOrBetter + 1) / (Permutations + 1).
	PValue float64
}

func (c Config) withDefaults(maxSamples int) (Config, error) {
	if c.Permutations == 0 {
		c.Permutations = 1000
	}
	if c.Permutations < 1 {
		return c, fmt.Errorf("permtest: invalid permutation count %d", c.Permutations)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("permtest: invalid worker count %d", c.Workers)
	}
	if c.Objective == nil {
		c.Objective = score.NewK2(maxSamples)
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	return c, nil
}

// Triple tests the significance of the 3-way candidate (i, j, k).
func Triple(mx *dataset.Matrix, i, j, k int, cfg Config) (*Result, error) {
	if !(0 <= i && i < j && j < k && k < mx.SNPs()) {
		return nil, fmt.Errorf("permtest: invalid triple (%d,%d,%d)", i, j, k)
	}
	combos := comboRow3(mx, i, j, k)
	obs := contingency.BuildReference(mx, i, j, k)
	return run(mx, combos, &obs, cfg)
}

// Pair tests the significance of the 2-way candidate (i, j).
func Pair(mx *dataset.Matrix, i, j int, cfg Config) (*Result, error) {
	if !(0 <= i && i < j && j < mx.SNPs()) {
		return nil, fmt.Errorf("permtest: invalid pair (%d,%d)", i, j)
	}
	combos := comboRow2(mx, i, j)
	obs := contingency.BuildReferencePair(mx, i, j)
	return run(mx, combos, &obs, cfg)
}

// K tests the significance of an arbitrary-order candidate; the order
// is len(snps), in [2, contingency.MaxOrder], and snps must be strictly
// increasing. Orders 2 and 3 take the specialized table paths; higher
// orders require an Objective implementing score.CellScorer (all
// built-in objectives do).
func K(mx *dataset.Matrix, snps []int, cfg Config) (*Result, error) {
	k := len(snps)
	if k < 2 || k > contingency.MaxOrder {
		return nil, fmt.Errorf("permtest: order %d out of [2,%d]", k, contingency.MaxOrder)
	}
	for i, v := range snps {
		if v < 0 || v >= mx.SNPs() || (i > 0 && snps[i-1] >= v) {
			return nil, fmt.Errorf("permtest: invalid combination %v", snps)
		}
	}
	switch k {
	case 2:
		return Pair(mx, snps[0], snps[1], cfg)
	case 3:
		return Triple(mx, snps[0], snps[1], snps[2], cfg)
	}
	c, err := cfg.withDefaults(mx.Samples())
	if err != nil {
		return nil, err
	}
	scorer, ok := c.Objective.(score.CellScorer)
	if !ok {
		return nil, fmt.Errorf("permtest: objective %q cannot score %d-way tables", c.Objective.Name(), k)
	}
	cells := contingency.CellsK(k)
	obsCtrl, obsCases := make([]int32, cells), make([]int32, cells)
	if err := contingency.BuildReferenceK(mx, snps, obsCtrl, obsCases); err != nil {
		return nil, err
	}
	combos := comboRowK(mx, snps)
	return runCells(mx, combos, cells, scorer.ScoreCells(obsCtrl, obsCases), c)
}

// comboRow3 precomputes each sample's genotype-combination cell for the
// triple, so each permutation only pays one table fill.
func comboRow3(mx *dataset.Matrix, i, j, k int) []uint8 {
	n := mx.Samples()
	out := make([]uint8, n)
	ri, rj, rk := mx.Row(i), mx.Row(j), mx.Row(k)
	for s := 0; s < n; s++ {
		out[s] = uint8(contingency.ComboIndex(int(ri[s]), int(rj[s]), int(rk[s])))
	}
	return out
}

func comboRow2(mx *dataset.Matrix, i, j int) []uint8 {
	n := mx.Samples()
	out := make([]uint8, n)
	ri, rj := mx.Row(i), mx.Row(j)
	for s := 0; s < n; s++ {
		out[s] = uint8(contingency.PairComboIndex(int(ri[s]), int(rj[s])))
	}
	return out
}

// comboRowK is the arbitrary-order analogue; 3^k cells exceed a uint8
// beyond order 5, hence the wider element type.
func comboRowK(mx *dataset.Matrix, snps []int) []uint16 {
	n := mx.Samples()
	out := make([]uint16, n)
	rows := make([][]uint8, len(snps))
	for d, snp := range snps {
		rows[d] = mx.Row(snp)
	}
	for s := 0; s < n; s++ {
		cell := 0
		for _, row := range rows {
			cell = cell*3 + int(row[s])
		}
		out[s] = uint16(cell)
	}
	return out
}

// runCells is the generic-order permutation loop over 3^k cell slices.
func runCells(mx *dataset.Matrix, combos []uint16, cells int, obsScore float64, c Config) (*Result, error) {
	scorer := c.Objective.(score.CellScorer)
	phen := append([]uint8(nil), mx.Phenotypes()...)
	n := len(phen)

	counts := make([]int, c.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := append([]uint8(nil), phen...)
			ctrl := make([]int32, cells)
			cases := make([]int32, cells)
			// One RNG per worker, reseeded per permutation: Seed resets
			// the source to the exact state rand.NewSource would mint, so
			// the shuffle order is bit-identical to the historical
			// per-permutation rand.New at zero steady-state allocations.
			src := rand.NewSource(0)
			rng := rand.New(src)
			hits := 0
			for p := w; p < c.Permutations; p += c.Workers {
				if c.Context.Err() != nil {
					return
				}
				copy(local, phen)
				src.Seed(c.Seed + int64(p)*7919)
				for s := n - 1; s > 0; s-- {
					t := rng.Intn(s + 1)
					local[s], local[t] = local[t], local[s]
				}
				for i := range ctrl {
					ctrl[i], cases[i] = 0, 0
				}
				for s := 0; s < n; s++ {
					if local[s] == dataset.Case {
						cases[combos[s]]++
					} else {
						ctrl[combos[s]]++
					}
				}
				sc := scorer.ScoreCells(ctrl, cases)
				if sc == obsScore || c.Objective.Better(sc, obsScore) {
					hits++
				}
			}
			counts[w] = hits
		}()
	}
	wg.Wait()
	if err := c.Context.Err(); err != nil {
		return nil, err
	}

	total := 0
	for _, h := range counts {
		total += h
	}
	return &Result{
		Observed:       obsScore,
		AsGoodOrBetter: total,
		Permutations:   c.Permutations,
		PValue:         float64(total+1) / float64(c.Permutations+1),
	}, nil
}

func run(mx *dataset.Matrix, combos []uint8, observed *contingency.Table, cfg Config) (*Result, error) {
	c, err := cfg.withDefaults(mx.Samples())
	if err != nil {
		return nil, err
	}
	obsScore := c.Objective.Score(observed)

	// The permuted tables only depend on how many cases land in each
	// combo cell; shuffle a copy of the phenotype vector and recount.
	phen := append([]uint8(nil), mx.Phenotypes()...)
	n := len(phen)

	counts := make([]int, c.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := append([]uint8(nil), phen...)
			// Per-permutation reseeding of a reused source: deterministic
			// under any worker count, allocation-free in steady state
			// (Seed restores the exact rand.NewSource state).
			src := rand.NewSource(0)
			rng := rand.New(src)
			hits := 0
			for p := w; p < c.Permutations; p += c.Workers {
				if c.Context.Err() != nil {
					return
				}
				copy(local, phen)
				src.Seed(c.Seed + int64(p)*7919)
				for s := n - 1; s > 0; s-- {
					t := rng.Intn(s + 1)
					local[s], local[t] = local[t], local[s]
				}
				var tab contingency.Table
				for s := 0; s < n; s++ {
					tab.Counts[local[s]][combos[s]]++
				}
				sc := c.Objective.Score(&tab)
				if sc == obsScore || c.Objective.Better(sc, obsScore) {
					hits++
				}
			}
			counts[w] = hits
		}()
	}
	wg.Wait()
	if err := c.Context.Err(); err != nil {
		return nil, err
	}

	total := 0
	for _, h := range counts {
		total += h
	}
	return &Result{
		Observed:       obsScore,
		AsGoodOrBetter: total,
		Permutations:   c.Permutations,
		PValue:         float64(total+1) / float64(c.Permutations+1),
	}, nil
}
