// Package permtest estimates the statistical significance of candidate
// interactions by phenotype permutation — the standard GWAS follow-up
// once an exhaustive scan has produced its best combinations. Under the
// null hypothesis the phenotype labels carry no information about the
// genotypes, so re-scoring a candidate under random relabelings draws
// from its null score distribution; the p-value is the (add-one
// smoothed) fraction of permutations scoring at least as well as the
// observed data.
package permtest

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/score"
)

// Config parameterizes a permutation test.
type Config struct {
	// Permutations is the number of phenotype relabelings (default
	// 1000; the p-value resolution is 1/(Permutations+1)).
	Permutations int
	// Seed makes the test reproducible. Results are deterministic for
	// a given seed regardless of Workers.
	Seed int64
	// Workers is the parallelism (default all cores).
	Workers int
	// Objective must match the objective used by the scan that
	// produced the candidate (default Bayesian K2).
	Objective score.Objective
}

// Result summarizes a permutation test.
type Result struct {
	// Observed is the candidate's score on the real phenotypes.
	Observed float64
	// AsGoodOrBetter counts permutations whose score ties or beats
	// Observed.
	AsGoodOrBetter int
	// Permutations is the number of relabelings evaluated.
	Permutations int
	// PValue is (AsGoodOrBetter + 1) / (Permutations + 1).
	PValue float64
}

func (c Config) withDefaults(maxSamples int) (Config, error) {
	if c.Permutations == 0 {
		c.Permutations = 1000
	}
	if c.Permutations < 1 {
		return c, fmt.Errorf("permtest: invalid permutation count %d", c.Permutations)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("permtest: invalid worker count %d", c.Workers)
	}
	if c.Objective == nil {
		c.Objective = score.NewK2(maxSamples)
	}
	return c, nil
}

// Triple tests the significance of the 3-way candidate (i, j, k).
func Triple(mx *dataset.Matrix, i, j, k int, cfg Config) (*Result, error) {
	if !(0 <= i && i < j && j < k && k < mx.SNPs()) {
		return nil, fmt.Errorf("permtest: invalid triple (%d,%d,%d)", i, j, k)
	}
	combos := comboRow3(mx, i, j, k)
	obs := contingency.BuildReference(mx, i, j, k)
	return run(mx, combos, &obs, cfg)
}

// Pair tests the significance of the 2-way candidate (i, j).
func Pair(mx *dataset.Matrix, i, j int, cfg Config) (*Result, error) {
	if !(0 <= i && i < j && j < mx.SNPs()) {
		return nil, fmt.Errorf("permtest: invalid pair (%d,%d)", i, j)
	}
	combos := comboRow2(mx, i, j)
	obs := contingency.BuildReferencePair(mx, i, j)
	return run(mx, combos, &obs, cfg)
}

// comboRow3 precomputes each sample's genotype-combination cell for the
// triple, so each permutation only pays one table fill.
func comboRow3(mx *dataset.Matrix, i, j, k int) []uint8 {
	n := mx.Samples()
	out := make([]uint8, n)
	ri, rj, rk := mx.Row(i), mx.Row(j), mx.Row(k)
	for s := 0; s < n; s++ {
		out[s] = uint8(contingency.ComboIndex(int(ri[s]), int(rj[s]), int(rk[s])))
	}
	return out
}

func comboRow2(mx *dataset.Matrix, i, j int) []uint8 {
	n := mx.Samples()
	out := make([]uint8, n)
	ri, rj := mx.Row(i), mx.Row(j)
	for s := 0; s < n; s++ {
		out[s] = uint8(contingency.PairComboIndex(int(ri[s]), int(rj[s])))
	}
	return out
}

func run(mx *dataset.Matrix, combos []uint8, observed *contingency.Table, cfg Config) (*Result, error) {
	c, err := cfg.withDefaults(mx.Samples())
	if err != nil {
		return nil, err
	}
	obsScore := c.Objective.Score(observed)

	// The permuted tables only depend on how many cases land in each
	// combo cell; shuffle a copy of the phenotype vector and recount.
	phen := append([]uint8(nil), mx.Phenotypes()...)
	n := len(phen)

	counts := make([]int, c.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := append([]uint8(nil), phen...)
			hits := 0
			for p := w; p < c.Permutations; p += c.Workers {
				// Per-permutation RNG and a fresh copy of the labels:
				// deterministic under any worker count.
				copy(local, phen)
				rng := rand.New(rand.NewSource(c.Seed + int64(p)*7919))
				for s := n - 1; s > 0; s-- {
					t := rng.Intn(s + 1)
					local[s], local[t] = local[t], local[s]
				}
				var tab contingency.Table
				for s := 0; s < n; s++ {
					tab.Counts[local[s]][combos[s]]++
				}
				sc := c.Objective.Score(&tab)
				if sc == obsScore || c.Objective.Better(sc, obsScore) {
					hits++
				}
			}
			counts[w] = hits
		}()
	}
	wg.Wait()

	total := 0
	for _, h := range counts {
		total += h
	}
	return &Result{
		Observed:       obsScore,
		AsGoodOrBetter: total,
		Permutations:   c.Permutations,
		PValue:         float64(total+1) / float64(c.Permutations+1),
	}, nil
}
