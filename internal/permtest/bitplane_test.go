package permtest

import (
	"testing"

	"trigene/internal/dataset"
	"trigene/internal/score"
)

// TestBitPlaneParityOrders checks the bit-plane kernel against the
// scalar reference for every supported order and several ragged/odd
// sample counts: Observed and AsGoodOrBetter must be bit-identical.
func TestBitPlaneParityOrders(t *testing.T) {
	combos := map[int][]int{
		2: {1, 9},
		3: {0, 4, 11},
		4: {2, 5, 7, 10},
		5: {0, 3, 6, 9, 11},
		6: {1, 2, 4, 7, 8, 10},
		7: {0, 1, 3, 5, 8, 9, 11},
	}
	for _, n := range []int{64, 65, 101, 127, 300} {
		mx := nullMatrix(50+int64(n), 12, n)
		for k := 2; k <= 7; k++ {
			snps := combos[k]
			cfg := Config{Permutations: 40, Seed: 9}
			want, err := K(mx, snps, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := KAll(mx, [][]int{snps}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if *got[0] != *want {
				t.Errorf("n=%d order %d: bit-plane %+v != scalar %+v", n, k, got[0], want)
			}
		}
	}
}

// TestBitPlaneParityObjectives runs the parity check under every
// built-in objective, including one beyond the Table-scoring orders.
func TestBitPlaneParityObjectives(t *testing.T) {
	mx := nullMatrix(51, 10, 250)
	objectives := []score.Objective{
		score.NewK2(mx.Samples()),
		score.MIObjective{},
		score.GiniObjective{},
	}
	for _, obj := range objectives {
		for _, snps := range [][]int{{0, 5}, {1, 4, 8}, {0, 2, 4, 6, 8}} {
			cfg := Config{Permutations: 50, Seed: 10, Objective: obj}
			want, err := K(mx, snps, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := KAll(mx, [][]int{snps}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if *got[0] != *want {
				t.Errorf("%s %v: bit-plane %+v != scalar %+v", obj.Name(), snps, got[0], want)
			}
		}
	}
}

// TestBitPlaneMultiCandidate checks that sharing permuted planes across
// a mixed-order candidate set changes nothing: each candidate's result
// equals its standalone scalar test.
func TestBitPlaneMultiCandidate(t *testing.T) {
	mx := nullMatrix(52, 14, 333)
	candidates := [][]int{{0, 1, 2}, {3, 9}, {2, 5, 8, 11}, {1, 6, 13}}
	cfg := Config{Permutations: 80, Seed: 11}
	got, err := KAll(mx, candidates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, snps := range candidates {
		want, err := K(mx, snps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *got[i] != *want {
			t.Errorf("candidate %v: %+v != %+v", snps, got[i], want)
		}
	}
}

// TestBitPlaneWorkersAndBatches: the kernel is deterministic across
// worker counts and batch sizes.
func TestBitPlaneWorkersAndBatches(t *testing.T) {
	mx := nullMatrix(53, 10, 200)
	candidates := [][]int{{0, 3, 7}, {2, 8}}
	var first []*Result
	for _, workers := range []int{1, 2, 5} {
		for _, batch := range []int{0, 1, 7, 64} {
			cfg := Config{Permutations: 64, Seed: 12, Workers: workers, Batch: batch}
			res, err := KAll(mx, candidates, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = res
				continue
			}
			for i := range res {
				if *res[i] != *first[i] {
					t.Errorf("workers=%d batch=%d candidate %d: %+v != %+v",
						workers, batch, i, res[i], first[i])
				}
			}
		}
	}
}

// TestBitPlaneRangeDecomposition: hit counts over disjoint permutation
// ranges sum to the whole-range count — the property cluster merging
// relies on for bit-exact p-values.
func TestBitPlaneRangeDecomposition(t *testing.T) {
	mx := nullMatrix(54, 10, 180)
	candidates := [][]int{{1, 4, 9}, {0, 6}}
	cfg := Config{Seed: 13}
	const total = 90
	whole, err := KAllRange(mx, candidates, 0, total, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]int, len(candidates))
	for _, r := range [][2]int{{0, 17}, {17, 40}, {57, 33}} {
		part, err := KAllRange(mx, candidates, r[0], r[1], cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range part.Observed {
			if part.Observed[i] != whole.Observed[i] {
				t.Errorf("range %v candidate %d observed %v != %v", r, i, part.Observed[i], whole.Observed[i])
			}
		}
		for i, h := range part.Hits {
			sum[i] += h
		}
	}
	for i := range sum {
		if sum[i] != whole.Hits[i] {
			t.Errorf("candidate %d: tiled hits %d != whole-range %d", i, sum[i], whole.Hits[i])
		}
	}
}

// TestBitPlanePrebuiltPlanes: supplying Config.Planes gives the same
// results as letting the kernel binarize.
func TestBitPlanePrebuiltPlanes(t *testing.T) {
	mx := nullMatrix(55, 8, 150)
	candidates := [][]int{{0, 2, 5}}
	base := Config{Permutations: 30, Seed: 14}
	want, err := KAll(mx, candidates, base)
	if err != nil {
		t.Fatal(err)
	}
	withPlanes := base
	withPlanes.Planes = dataset.Binarize(mx)
	got, err := KAll(mx, candidates, withPlanes)
	if err != nil {
		t.Fatal(err)
	}
	if *got[0] != *want[0] {
		t.Errorf("prebuilt planes %+v != self-binarized %+v", got[0], want[0])
	}
}

func TestBitPlaneValidation(t *testing.T) {
	mx := nullMatrix(56, 6, 100)
	if _, err := KAll(mx, nil, Config{}); err == nil {
		t.Error("empty candidate set accepted")
	}
	if _, err := KAll(mx, [][]int{{3, 1}}, Config{}); err == nil {
		t.Error("unordered candidate accepted")
	}
	if _, err := KAll(mx, [][]int{{4}}, Config{}); err == nil {
		t.Error("order-1 candidate accepted")
	}
	if _, err := KAll(mx, [][]int{{0, 9}}, Config{}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	if _, err := KAll(mx, [][]int{{0, 1}}, Config{Batch: -2}); err == nil {
		t.Error("negative batch accepted")
	}
	if _, err := KAllRange(mx, [][]int{{0, 1}}, -1, 10, Config{}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := KAllRange(mx, [][]int{{0, 1}}, 0, 0, Config{}); err == nil {
		t.Error("empty range accepted")
	}
	other := nullMatrix(57, 6, 99)
	if _, err := KAll(mx, [][]int{{0, 1}}, Config{Planes: dataset.Binarize(other)}); err == nil {
		t.Error("mismatched planes accepted")
	}
}

// TestBitPlaneSteadyStateAllocs: the per-permutation loop — shuffle,
// pack, count, score — must not allocate at all once the per-worker
// scratch exists. The probe preallocates the scratch and drives the
// worker loop directly, asserting exactly zero allocations per run.
func TestBitPlaneSteadyStateAllocs(t *testing.T) {
	mx := nullMatrix(58, 10, 256)
	candidates := [][]int{{0, 2, 4}, {1, 7}, {3, 5, 8, 9}}
	cfg := Config{Seed: 15, Workers: 1, Planes: dataset.Binarize(mx)}
	c, err := cfg.withDefaults(mx.Samples())
	if err != nil {
		t.Fatal(err)
	}
	scorer, _ := c.Objective.(score.CellScorer)
	cands := make([]planeCand, len(candidates))
	maxCells := 0
	for i, snps := range candidates {
		if err := buildCand(mx, c.Planes, snps, c.Objective, scorer, &cands[i]); err != nil {
			t.Fatal(err)
		}
		if cands[i].cells > maxCells {
			maxCells = cands[i].cells
		}
	}
	words := c.Planes.Words
	n := mx.Samples()
	batch := batchSize(words, maxCells)
	phen := mx.Phenotypes()
	ps := newPermScratch(c.Objective, len(cands), words, n, batch, maxCells)

	const perms = 64
	avg := testing.AllocsPerRun(10, func() {
		ps.permWorker(c, cands, phen, words, n, batch, 0, perms, 0)
	})
	if avg != 0 {
		t.Errorf("hot path allocates: %.1f allocs per %d permutations, want 0", avg, perms)
	}
}
