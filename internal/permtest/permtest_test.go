package permtest

import (
	"math/rand"
	"testing"

	"trigene/internal/dataset"
	"trigene/internal/engine"
	"trigene/internal/score"
)

func nullMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(r.Intn(2)))
	}
	return mx
}

func TestPlantedInteractionIsSignificant(t *testing.T) {
	it := &dataset.Interaction{SNPs: [3]int{2, 8, 14}, Penetrance: dataset.ThresholdPenetrance(3, 0.05, 0.95)}
	mx, err := dataset.Generate(dataset.GenConfig{
		SNPs: 20, Samples: 1000, Seed: 40, MAFMin: 0.3, MAFMax: 0.5, Interaction: it,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Triple(mx, 2, 8, 14, Config{Permutations: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A strong planted signal should beat every permutation.
	if res.AsGoodOrBetter != 0 {
		t.Errorf("planted triple beaten by %d permutations", res.AsGoodOrBetter)
	}
	if res.PValue > 1.0/200 {
		t.Errorf("p-value %.4f, want <= %.4f", res.PValue, 1.0/200)
	}
}

func TestNullTripleNotSignificant(t *testing.T) {
	mx := nullMatrix(41, 12, 800)
	// A fixed arbitrary triple on null data should not be extreme.
	res, err := Triple(mx, 1, 5, 9, Config{Permutations: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("null triple p-value %.4f suspiciously small", res.PValue)
	}
	if res.Permutations != 200 {
		t.Errorf("permutations = %d", res.Permutations)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	mx := nullMatrix(42, 10, 300)
	var first *Result
	for _, workers := range []int{1, 2, 5} {
		res, err := Triple(mx, 0, 4, 8, Config{Permutations: 60, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else if *res != *first {
			t.Errorf("workers=%d result %+v != %+v", workers, res, first)
		}
	}
}

func TestPairPermutationTest(t *testing.T) {
	var pen [9]float64
	for c := range pen {
		if c/3+c%3 >= 2 {
			pen[c] = 0.9
		} else {
			pen[c] = 0.1
		}
	}
	mx, err := dataset.Generate(dataset.GenConfig{
		SNPs: 15, Samples: 900, Seed: 43, MAFMin: 0.3, MAFMax: 0.5,
		PairInteraction: &dataset.PairInteraction{SNPs: [2]int{3, 11}, Penetrance: pen},
	})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := Pair(mx, 3, 11, Config{Permutations: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sig.PValue > 0.02 {
		t.Errorf("planted pair p-value %.4f, want tiny", sig.PValue)
	}
	null, err := Pair(mx, 0, 1, Config{Permutations: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if null.PValue < 0.01 {
		t.Errorf("null pair p-value %.4f suspiciously small", null.PValue)
	}
}

func TestEndToEndScanThenTest(t *testing.T) {
	// The intended workflow: scan finds the best triple, permtest
	// quantifies it.
	it := &dataset.Interaction{SNPs: [3]int{1, 7, 13}, Penetrance: dataset.ThresholdPenetrance(2, 0.1, 0.9)}
	mx, err := dataset.Generate(dataset.GenConfig{
		SNPs: 18, Samples: 800, Seed: 44, MAFMin: 0.3, MAFMax: 0.5, Interaction: it,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Triple(mx, scan.Best.Triple.I, scan.Best.Triple.J, scan.Best.Triple.K,
		Config{Permutations: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed != scan.Best.Score {
		t.Errorf("observed %.6f != scan score %.6f", res.Observed, scan.Best.Score)
	}
	if res.PValue > 0.05 {
		t.Errorf("best-of-scan p-value %.4f, want small", res.PValue)
	}
}

func TestObjectiveConsistency(t *testing.T) {
	mx := nullMatrix(45, 8, 200)
	obj := score.MIObjective{}
	res, err := Triple(mx, 0, 3, 6, Config{Permutations: 50, Seed: 7, Objective: obj})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue <= 0 || res.PValue > 1 {
		t.Errorf("p-value %.4f out of range", res.PValue)
	}
}

func TestValidation(t *testing.T) {
	mx := nullMatrix(46, 6, 100)
	if _, err := Triple(mx, 3, 1, 5, Config{}); err == nil {
		t.Error("unordered triple accepted")
	}
	if _, err := Triple(mx, 0, 1, 6, Config{}); err == nil {
		t.Error("out-of-range triple accepted")
	}
	if _, err := Pair(mx, 2, 2, Config{}); err == nil {
		t.Error("degenerate pair accepted")
	}
	if _, err := Triple(mx, 0, 1, 2, Config{Permutations: -5}); err == nil {
		t.Error("negative permutations accepted")
	}
	if _, err := Triple(mx, 0, 1, 2, Config{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
}
