// Package hetero implements the heterogeneous CPU+GPU execution mode
// the paper discusses in Section V-D (and that reference [30] builds):
// the CPU engine's workers and the (simulated) GPU consume the 3-way
// combination space concurrently and the results are merged.
//
// By default the two sides share one claiming cursor of the tile
// scheduler — true work-stealing: each side pulls the next tile when
// it finishes its last one, so a mis-modeled device ratio degrades
// into a slightly different split instead of idling half the machine.
// A fixed CPUFraction instead splits the rank space statically at the
// throughput-proportional cut, which is what the paper's analytical
// Section V-D estimate describes.
package hetero

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"trigene/internal/combin"
	"trigene/internal/device"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/obs"
	"trigene/internal/perfmodel"
	"trigene/internal/sched"
	"trigene/internal/score"
	"trigene/internal/store"
	"trigene/internal/topk"
)

// Mode selects which sides of a heterogeneous run participate. It
// replaces the old "CPUFraction: -1 means all-GPU" sentinel: one-sided
// runs are first-class requests, not magic fraction values.
type Mode int

const (
	// ModeAuto (the zero value) runs both sides: work-stealing from a
	// shared cursor when CPUFraction is 0, a static split at
	// CPUFraction in (0, 1]. This is the only mode that consults
	// CPUFraction.
	ModeAuto Mode = iota
	// ModeAllCPU routes every rank to the CPU engine.
	ModeAllCPU
	// ModeAllGPU routes every rank to the simulated device.
	ModeAllGPU
)

// String names the mode in errors and logs.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeAllCPU:
		return "all-cpu"
	case ModeAllGPU:
		return "all-gpu"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a heterogeneous search.
type Options struct {
	// CPUDevice and GPUDevice select the modeled device pair for the
	// combined-throughput projection (and, with a fixed CPUFraction,
	// the static split ratio). Defaults: CI3 and GN1 (the paper's
	// Section V-D pairing).
	CPUDevice device.CPU
	GPUDevice device.GPU

	// Mode selects the participating sides (default ModeAuto: both).
	Mode Mode

	// CPUFraction fixes the fraction of combination ranks evaluated on
	// the CPU engine with a static split, and applies only in
	// ModeAuto. Zero means work-stealing: both sides pull tiles from
	// one shared cursor and the realized fraction is whatever the
	// hardware delivers. Negative values are rejected — request a
	// one-sided run with ModeAllGPU / ModeAllCPU instead.
	CPUFraction float64

	// Grain overrides the shared cursor's ranks-per-claim tile size on
	// a work-stealing run (0 = the AutoGrain heuristic). The planner
	// seeds it from the modeled per-consumer throughput.
	Grain int64
	// GPUGrains seeds the device consumer's claim-span multiplier on
	// the shared cursor (0 = 4, the legacy default). The planner sets
	// it to the modeled device/CPU-worker throughput ratio, and the
	// run's throughput meter refines it mid-search from measured
	// rates.
	GPUGrains int64

	// Searcher optionally supplies a prebuilt engine.Searcher over the
	// same dataset, reusing its precomputed binarized forms (a Session
	// holds one). Nil builds a fresh one.
	Searcher *engine.Searcher
	// Workers is the CPU engine pool size (0 = all cores).
	Workers int
	// TopK is how many ranked candidates to return (default 1). Both
	// sides keep full top-K lists; the merge is bit-exact.
	TopK int
	// Objective ranks candidates (default Bayesian K2).
	Objective score.Objective
	// Range restricts the search to combination ranks [Lo, Hi) — the
	// shard primitive. Nil means the full space.
	Range *combin.Range
	// Context optionally allows cancellation of both halves; nil means
	// context.Background().
	Context context.Context

	// Metrics optionally instruments the CPU half's engine run (tile
	// and combination counters, scheduler claim series); nil disables.
	Metrics *obs.Registry
}

// Result is the outcome of a heterogeneous search.
type Result struct {
	Best engine.Candidate
	// TopK holds up to Options.TopK candidates in best-first order,
	// merged from both sides under the shared objective-then-
	// lexicographic ordering.
	TopK []engine.Candidate

	// CPUFraction is the fraction of the evaluated ranks that ran on
	// the CPU engine: the realized work-stealing split, or the
	// configured one on a static run.
	CPUFraction float64
	// CPUStats/GPUStats describe the two halves. The CPU half is a real
	// host measurement; the GPU half carries the simulator's modeled
	// timing.
	CPUStats engine.Stats
	GPUStats gpusim.Stats

	// ModeledCombinedGElems is the device pair's projected joint
	// throughput (G elements/s) at this workload, the Section V-D
	// estimate.
	ModeledCombinedGElems float64

	// Grain is the shared cursor's ranks-per-claim on a work-stealing
	// run (0 on static runs, which have no cursor).
	Grain int64
	// MeasuredCPUCombosPerSec and MeasuredGPUCombosPerSec are the
	// throughput meter's realized per-side rates on a work-stealing
	// run (combinations/sec of busy time; 0 when a side was idle or
	// the run was static).
	MeasuredCPUCombosPerSec, MeasuredGPUCombosPerSec float64

	// Duration is the wall time of the heterogeneous run.
	Duration time.Duration
}

// Search runs the 3-way combination space across the CPU engine and
// the GPU simulator — work-stealing from a shared tile cursor by
// default, statically split on a fixed CPUFraction — and merges the
// results. The merge is bit-exact: both halves compute the same
// tables and scores, and the top-K ordering is the one every backend
// shares.
func Search(st *store.Store, opts Options) (*Result, error) {
	if opts.CPUDevice.ID == "" {
		c, err := device.CPUByID("CI3")
		if err != nil {
			return nil, err
		}
		opts.CPUDevice = c
	}
	if opts.GPUDevice.ID == "" {
		g, err := device.GPUByID("GN1")
		if err != nil {
			return nil, err
		}
		opts.GPUDevice = g
	}
	if opts.Objective == nil {
		opts.Objective = score.NewK2(st.Samples())
	}
	if opts.TopK == 0 {
		opts.TopK = 1
	}
	if opts.TopK < 0 {
		return nil, fmt.Errorf("hetero: invalid TopK %d", opts.TopK)
	}
	if opts.Context == nil {
		opts.Context = context.Background()
	}
	if opts.Mode < ModeAuto || opts.Mode > ModeAllGPU {
		return nil, fmt.Errorf("hetero: invalid mode %d", int(opts.Mode))
	}
	if opts.CPUFraction < 0 {
		return nil, fmt.Errorf("hetero: negative CPUFraction %g (request a one-sided run with ModeAllGPU)", opts.CPUFraction)
	}
	if opts.CPUFraction > 1 {
		return nil, fmt.Errorf("hetero: CPUFraction %g out of range", opts.CPUFraction)
	}
	if opts.Mode != ModeAuto && opts.CPUFraction != 0 {
		return nil, fmt.Errorf("hetero: CPUFraction %g conflicts with mode %v (the mode owns the placement)", opts.CPUFraction, opts.Mode)
	}
	m, n := st.SNPs(), st.Samples()

	lo, hi := int64(0), combin.Triples(m)
	if r := opts.Range; r != nil {
		if r.Lo < 0 || r.Hi < r.Lo || r.Hi > hi {
			return nil, fmt.Errorf("hetero: invalid rank range [%d,%d) of %d", r.Lo, r.Hi, hi)
		}
		lo, hi = r.Lo, r.Hi
	}
	total := hi - lo

	cpuRate := perfmodel.CPUOverallGElemPerSec(opts.CPUDevice, true, m, n)
	gpuRate := perfmodel.GPUOverallGElemPerSec(opts.GPUDevice, m, n)
	out := &Result{ModeledCombinedGElems: cpuRate + gpuRate}
	if total == 0 {
		out.Best = engine.Candidate{Score: opts.Objective.Worst()}
		return out, nil
	}

	if opts.Searcher == nil {
		s, err := engine.NewFromStore(st)
		if err != nil {
			return nil, err
		}
		opts.Searcher = s
	}

	start := time.Now()
	var cpuRes *engine.Result
	var gpuRes *gpusim.Result
	var err error
	switch {
	case opts.Mode == ModeAllCPU:
		cpuRes, gpuRes, err = runStatic(st, &opts, lo, hi, 1)
	case opts.Mode == ModeAllGPU:
		cpuRes, gpuRes, err = runStatic(st, &opts, lo, hi, 0)
	case opts.CPUFraction == 0:
		cpuRes, gpuRes, err = runStealing(st, &opts, lo, hi, out)
	default:
		cpuRes, gpuRes, err = runStatic(st, &opts, lo, hi, opts.CPUFraction)
	}
	if err != nil {
		return nil, err
	}
	out.Duration = time.Since(start)

	merged := &topList{obj: opts.Objective, k: opts.TopK}
	if cpuRes != nil {
		out.CPUStats = cpuRes.Stats
		for _, c := range cpuRes.TopK {
			merged.offer(c)
		}
	}
	if gpuRes != nil {
		out.GPUStats = gpuRes.Stats
		for _, c := range gpuRes.TopK {
			merged.offer(engine.Candidate{
				Triple: engine.Triple{I: c.I, J: c.J, K: c.K},
				Score:  c.Score,
			})
		}
	}
	out.TopK = merged.items
	if len(merged.items) > 0 {
		out.Best = merged.items[0]
	} else {
		out.Best = engine.Candidate{Score: opts.Objective.Worst()}
	}
	out.CPUFraction = float64(out.CPUStats.Combinations) / float64(total)
	if covered := out.CPUStats.Combinations + out.GPUStats.Combinations; covered != total {
		return nil, fmt.Errorf("hetero: halves cover %d of %d ranks", covered, total)
	}
	return out, nil
}

// runStealing drains one shared tile cursor from both sides: the GPU
// consumer claims first (Search waits for its opening claim before
// unleashing the CPU pool), then each side pulls the next tile
// whenever it finishes one. The cursor's grain and the device's claim
// multiplier come from the plan seeds when given; a shared throughput
// meter measures both sides and refines the device's claim span
// mid-search, recording the realized rates into out.
func runStealing(st *store.Store, opts *Options, lo, hi int64, out *Result) (*engine.Result, *gpusim.Result, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	grain := sched.SeededGrain(hi-lo, workers+1, opts.Grain)
	src := sched.NewSource(lo, hi, grain)
	cur := sched.NewCursor(src)
	meter := sched.NewThroughputMeter(workers + 1)
	out.Grain = grain

	type gpuOut struct {
		res *gpusim.Result
		err error
	}
	gpuCh := make(chan gpuOut, 1)
	claimed := make(chan struct{})
	go func() {
		res, err := gpusim.New(opts.GPUDevice).Search(st, gpusim.Options{
			Kernel:        gpusim.K4Tiled,
			Objective:     opts.Objective,
			TopK:          opts.TopK,
			Context:       opts.Context,
			Tiles:         cur,
			Started:       func() { close(claimed) },
			ClaimGrains:   opts.GPUGrains,
			Meter:         meter,
			MeterConsumer: workers,
		})
		gpuCh <- gpuOut{res: res, err: err}
	}()

	// Wait for the device's opening claim (or its early failure) so a
	// fast CPU pool cannot drain the space before the device joins.
	var gpu *gpuOut
	select {
	case <-claimed:
	case g := <-gpuCh:
		gpu = &g
	}
	if gpu != nil && gpu.err != nil {
		return nil, nil, fmt.Errorf("hetero: GPU half: %w", gpu.err)
	}

	cpuRes, cpuErr := opts.Searcher.Run(engine.Options{
		Approach:  engine.V2Split, // rank-partitionable approach
		Workers:   opts.Workers,
		Objective: opts.Objective,
		TopK:      opts.TopK,
		Context:   opts.Context,
		Tiles:     cur,
		Meter:     meter,
		Metrics:   opts.Metrics,
	})
	if gpu == nil {
		g := <-gpuCh
		gpu = &g
	}
	if cpuErr != nil {
		return nil, nil, fmt.Errorf("hetero: CPU half: %w", cpuErr)
	}
	if gpu.err != nil {
		return nil, nil, fmt.Errorf("hetero: GPU half: %w", gpu.err)
	}
	for c := 0; c < workers; c++ {
		out.MeasuredCPUCombosPerSec += meter.Rate(c)
	}
	out.MeasuredGPUCombosPerSec = meter.Rate(workers)
	return cpuRes, gpu.res, nil
}

// runStatic splits [lo, hi) at the given fraction and runs the halves
// concurrently — the paper's throughput-proportional static split,
// kept for analytical comparisons and forced placements (the one-
// sided modes are its 0 and 1 endpoints).
func runStatic(st *store.Store, opts *Options, lo, hi int64, frac float64) (*engine.Result, *gpusim.Result, error) {
	cut := lo + int64(frac*float64(hi-lo))
	if cut > hi {
		cut = hi
	}

	type cpuOut struct {
		res *engine.Result
		err error
	}
	cpuCh := make(chan cpuOut, 1)
	go func() {
		if cut == lo {
			cpuCh <- cpuOut{res: &engine.Result{}}
			return
		}
		res, err := opts.Searcher.Run(engine.Options{
			Approach:  engine.V2Split,
			Workers:   opts.Workers,
			Objective: opts.Objective,
			TopK:      opts.TopK,
			Context:   opts.Context,
			RankRange: &combin.Range{Lo: lo, Hi: cut},
			Metrics:   opts.Metrics,
		})
		cpuCh <- cpuOut{res: res, err: err}
	}()

	var gpuRes *gpusim.Result
	var gpuErr error
	if cut < hi {
		gpuRes, gpuErr = gpusim.New(opts.GPUDevice).Search(st, gpusim.Options{
			Kernel:    gpusim.K4Tiled,
			Objective: opts.Objective,
			TopK:      opts.TopK,
			Context:   opts.Context,
			RankLo:    cut,
			RankHi:    hi,
		})
	}
	cpu := <-cpuCh
	if cpu.err != nil {
		return nil, nil, fmt.Errorf("hetero: CPU half: %w", cpu.err)
	}
	if gpuErr != nil {
		return nil, nil, fmt.Errorf("hetero: GPU half: %w", gpuErr)
	}
	return cpu.res, gpuRes, nil
}

// topList accumulates the k best candidates under the shared
// objective-then-lexicographic ordering.
type topList struct {
	obj   score.Objective
	k     int
	items []engine.Candidate
}

func (t *topList) better(a, b engine.Candidate) bool {
	if a.Score != b.Score {
		return t.obj.Better(a.Score, b.Score)
	}
	return a.Triple.Less(b.Triple)
}

func (t *topList) offer(c engine.Candidate) {
	t.items = topk.Insert(t.items, c, t.k, t.better)
}
