// Package hetero implements the heterogeneous CPU+GPU execution mode
// the paper discusses in Section V-D (and that reference [30] builds):
// the combination space is partitioned by rank between the CPU engine
// and the (simulated) GPU, both halves run concurrently, and the
// results are merged.
//
// The split fraction defaults to the analytical models' throughput
// ratio for the chosen device pair — the paper's CI3+GN1 estimate sums
// the two devices' throughputs, which is exactly what a
// throughput-proportional static split achieves.
package hetero

import (
	"context"
	"fmt"
	"time"

	"trigene/internal/combin"
	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/engine"
	"trigene/internal/gpusim"
	"trigene/internal/perfmodel"
	"trigene/internal/score"
)

// Options configures a heterogeneous search.
type Options struct {
	// CPUDevice and GPUDevice select the modeled device pair for the
	// split ratio and the combined-throughput projection. Defaults:
	// CI3 and GN1 (the paper's Section V-D pairing).
	CPUDevice device.CPU
	GPUDevice device.GPU

	// CPUFraction fixes the fraction of combination ranks evaluated on
	// the CPU engine. Zero means automatic: the modeled CPU share of
	// the pair's combined throughput. Use a negative value to force an
	// all-GPU run and 1 for an all-CPU run.
	CPUFraction float64

	// Workers is the CPU engine pool size (0 = all cores).
	Workers int
	// Objective ranks candidates (default Bayesian K2).
	Objective score.Objective
	// Context optionally allows cancellation of both halves; nil means
	// context.Background().
	Context context.Context
}

// Result is the outcome of a heterogeneous search.
type Result struct {
	Best engine.Candidate

	// CPUFraction is the fraction of ranks that ran on the CPU side.
	CPUFraction float64
	// CPUStats/GPUStats describe the two halves. The CPU half is a real
	// host measurement; the GPU half carries the simulator's modeled
	// timing.
	CPUStats engine.Stats
	GPUStats gpusim.Stats

	// ModeledCombinedGElems is the device pair's projected joint
	// throughput (G elements/s) at this workload, the Section V-D
	// estimate.
	ModeledCombinedGElems float64

	// Duration is the wall time of the heterogeneous run.
	Duration time.Duration
}

// Search partitions the 3-way combination space between the CPU engine
// and the GPU simulator and merges the results. The merged best is
// bit-exact: both halves compute the same tables and scores.
func Search(mx *dataset.Matrix, opts Options) (*Result, error) {
	if opts.CPUDevice.ID == "" {
		c, err := device.CPUByID("CI3")
		if err != nil {
			return nil, err
		}
		opts.CPUDevice = c
	}
	if opts.GPUDevice.ID == "" {
		g, err := device.GPUByID("GN1")
		if err != nil {
			return nil, err
		}
		opts.GPUDevice = g
	}
	if opts.Objective == nil {
		opts.Objective = score.NewK2(mx.Samples())
	}
	m, n := mx.SNPs(), mx.Samples()

	cpuRate := perfmodel.CPUOverallGElemPerSec(opts.CPUDevice, true, m, n)
	gpuRate := perfmodel.GPUOverallGElemPerSec(opts.GPUDevice, m, n)
	frac := opts.CPUFraction
	switch {
	case frac == 0:
		frac = cpuRate / (cpuRate + gpuRate)
	case frac < 0:
		frac = 0
	case frac > 1:
		return nil, fmt.Errorf("hetero: CPUFraction %g out of range", opts.CPUFraction)
	}

	total := combin.Triples(m)
	cut := int64(frac * float64(total))
	if cut > total {
		cut = total
	}

	start := time.Now()
	type cpuOut struct {
		res *engine.Result
		err error
	}
	cpuCh := make(chan cpuOut, 1)
	go func() {
		if cut == 0 {
			cpuCh <- cpuOut{res: &engine.Result{}}
			return
		}
		res, err := engine.Search(mx, engine.Options{
			Approach:  engine.V2Split, // rank-partitionable approach
			Workers:   opts.Workers,
			Objective: opts.Objective,
			Context:   opts.Context,
			RankRange: &combin.Range{Lo: 0, Hi: cut},
		})
		cpuCh <- cpuOut{res: res, err: err}
	}()

	var gpuRes *gpusim.Result
	var gpuErr error
	if cut < total {
		gpuRes, gpuErr = gpusim.New(opts.GPUDevice).Search(mx, gpusim.Options{
			Kernel:    gpusim.K4Tiled,
			Objective: opts.Objective,
			Context:   opts.Context,
			RankLo:    cut,
			RankHi:    total,
		})
	}
	cpu := <-cpuCh
	if cpu.err != nil {
		return nil, fmt.Errorf("hetero: CPU half: %w", cpu.err)
	}
	if gpuErr != nil {
		return nil, fmt.Errorf("hetero: GPU half: %w", gpuErr)
	}

	out := &Result{
		CPUFraction:           frac,
		ModeledCombinedGElems: cpuRate + gpuRate,
		Duration:              time.Since(start),
	}
	best := engine.Candidate{Score: opts.Objective.Worst()}
	haveBest := false
	if cut > 0 {
		out.CPUStats = cpu.res.Stats
		best = cpu.res.Best
		haveBest = true
	}
	if gpuRes != nil {
		out.GPUStats = gpuRes.Stats
		g := engine.Candidate{
			Triple: engine.Triple{I: gpuRes.Best.I, J: gpuRes.Best.J, K: gpuRes.Best.K},
			Score:  gpuRes.Best.Score,
		}
		if !haveBest || betterCandidate(opts.Objective, g, best) {
			best = g
		}
	}
	out.Best = best
	return out, nil
}

func betterCandidate(obj score.Objective, a, b engine.Candidate) bool {
	if a.Score != b.Score {
		return obj.Better(a.Score, b.Score)
	}
	return a.Triple.Less(b.Triple)
}
