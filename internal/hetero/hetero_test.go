package hetero

import (
	"math/rand"
	"testing"

	"trigene/internal/combin"
	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/engine"
	"trigene/internal/sched"
	"trigene/internal/score"
)

func randomMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	return mx
}

func TestHeterogeneousMatchesFullSearch(t *testing.T) {
	mx := randomMatrix(120, 18, 200)
	want, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.001, 0.3, 0.5, 0.9, 0.999} {
		res, err := Search(encStore(mx), Options{CPUFraction: frac})
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		if res.Best != want.Best {
			t.Errorf("frac %g: best %+v, want %+v", frac, res.Best, want.Best)
		}
		// Both halves must have evaluated their share.
		sum := res.CPUStats.Combinations + res.GPUStats.Combinations
		if sum != want.Stats.Combinations {
			t.Errorf("frac %g: halves cover %d of %d combinations", frac, sum, want.Stats.Combinations)
		}
	}
}

func TestHeterogeneousEdgesAllCPUAllGPU(t *testing.T) {
	mx := randomMatrix(121, 12, 130)
	want, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	allCPU, err := Search(encStore(mx), Options{Mode: ModeAllCPU})
	if err != nil {
		t.Fatal(err)
	}
	if allCPU.Best != want.Best || allCPU.GPUStats.Combinations != 0 {
		t.Errorf("all-CPU run wrong: %+v", allCPU.Best)
	}
	if allCPU.CPUFraction != 1 {
		t.Errorf("all-CPU realized fraction %g", allCPU.CPUFraction)
	}
	allGPU, err := Search(encStore(mx), Options{Mode: ModeAllGPU})
	if err != nil {
		t.Fatal(err)
	}
	if allGPU.Best != want.Best || allGPU.CPUStats.Combinations != 0 {
		t.Errorf("all-GPU run wrong: %+v", allGPU.Best)
	}
	if allGPU.CPUFraction != 0 {
		t.Errorf("all-GPU realized fraction %g", allGPU.CPUFraction)
	}
}

// TestModeSemantics pins the Options contract: ModeAuto with
// CPUFraction 0 work-steals, a fraction in (0, 1] splits statically,
// one-sided runs are requested through the mode (never a fraction
// sentinel), negative fractions are rejected, and a mode does not
// combine with a fraction.
func TestModeSemantics(t *testing.T) {
	mx := randomMatrix(127, 10, 100)
	if _, err := Search(encStore(mx), Options{CPUFraction: -1}); err == nil {
		t.Error("negative CPUFraction accepted; the all-GPU sentinel is gone")
	}
	if _, err := Search(encStore(mx), Options{CPUFraction: -0.25}); err == nil {
		t.Error("negative CPUFraction accepted")
	}
	if _, err := Search(encStore(mx), Options{Mode: ModeAllGPU, CPUFraction: 0.5}); err == nil {
		t.Error("mode + fraction combination accepted")
	}
	if _, err := Search(encStore(mx), Options{Mode: Mode(99)}); err == nil {
		t.Error("invalid mode accepted")
	}
	// CPUFraction 0 still means auto (work-stealing): both sides run.
	res, err := Search(encStore(mx), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grain == 0 {
		t.Error("work-stealing run reports no cursor grain")
	}
	if res.GPUStats.Combinations == 0 {
		t.Error("auto mode gave the device no work")
	}
	// A static fraction has no shared cursor to report.
	res, err = Search(encStore(mx), Options{CPUFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grain != 0 || res.MeasuredCPUCombosPerSec != 0 {
		t.Errorf("static run reports work-stealing telemetry: grain=%d cpuRate=%g", res.Grain, res.MeasuredCPUCombosPerSec)
	}
}

// TestPlanSeeds: a seeded grain and device claim multiplier change how
// the space is cut, never what comes back. The seed applies when finer
// than the AutoGrain heuristic; a coarser seed is capped so it cannot
// starve the pool.
func TestPlanSeeds(t *testing.T) {
	mx := randomMatrix(128, 60, 60) // C(60,3) = 34220 ranks
	want, err := engine.Search(mx, engine.Options{TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := combin.Triples(60)
	for _, seed := range []int64{260, 1 << 30} {
		res, err := Search(encStore(mx), Options{TopK: 4, Workers: 1, Grain: seed, GPUGrains: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best != want.Best || len(res.TopK) != len(want.TopK) {
			t.Fatalf("seed %d: run diverged: %+v", seed, res.Best)
		}
		for i := range want.TopK {
			if res.TopK[i] != want.TopK[i] {
				t.Errorf("seed %d: TopK[%d] = %+v, want %+v", seed, i, res.TopK[i], want.TopK[i])
			}
		}
		auto := sched.AutoGrain(total, 2) // 1 worker + 1 device consumer
		wantGrain := auto
		if seed < auto {
			wantGrain = seed
		}
		if res.Grain != wantGrain {
			t.Errorf("seed %d: grain %d, want %d", seed, res.Grain, wantGrain)
		}
	}
}

// TestHeterogeneousWorkStealing: the default mode shares one cursor
// between the CPU pool and the simulated GPU. Both sides get work
// (the device's opening claim is sequenced before the CPU pool
// starts), the union covers the space exactly, and the merged best is
// bit-exact against a pure CPU run.
func TestHeterogeneousWorkStealing(t *testing.T) {
	mx := randomMatrix(122, 22, 150)
	want, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(encStore(mx), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != want.Best {
		t.Errorf("best %+v, want %+v", res.Best, want.Best)
	}
	sum := res.CPUStats.Combinations + res.GPUStats.Combinations
	if sum != want.Stats.Combinations {
		t.Errorf("halves cover %d of %d combinations", sum, want.Stats.Combinations)
	}
	// The device claims its opening tiles before the CPU pool starts,
	// so the realized fraction is strictly inside (0, 1).
	if res.GPUStats.Combinations == 0 {
		t.Error("work-stealing run gave the GPU no tiles")
	}
	if res.CPUFraction < 0 || res.CPUFraction >= 1 {
		t.Errorf("realized CPU fraction = %.3f", res.CPUFraction)
	}
	if res.ModeledCombinedGElems <= 0 {
		t.Error("combined throughput not populated")
	}
}

// TestHeterogeneousTopKMerge: WithTopK-depth lists survive the merge
// from both sides, bit-exact against the CPU engine's list.
func TestHeterogeneousTopKMerge(t *testing.T) {
	mx := randomMatrix(125, 16, 140)
	want, err := engine.Search(mx, engine.Options{TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.5} {
		res, err := Search(encStore(mx), Options{CPUFraction: frac, TopK: 8})
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		if len(res.TopK) != len(want.TopK) {
			t.Fatalf("frac %g: top-K %d entries, want %d", frac, len(res.TopK), len(want.TopK))
		}
		for i := range want.TopK {
			if res.TopK[i] != want.TopK[i] {
				t.Errorf("frac %g: TopK[%d] = %+v, want %+v", frac, i, res.TopK[i], want.TopK[i])
			}
		}
	}
}

// TestHeterogeneousShardRange: a Range-restricted run covers exactly
// the range, and two half ranges union to the full result.
func TestHeterogeneousShardRange(t *testing.T) {
	mx := randomMatrix(126, 14, 120)
	total := combin.Triples(14)
	full, err := Search(encStore(mx), Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	cut := total / 2
	a, err := Search(encStore(mx), Options{TopK: 5, Range: &combin.Range{Lo: 0, Hi: cut}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(encStore(mx), Options{TopK: 5, Range: &combin.Range{Lo: cut, Hi: total}})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.CPUStats.Combinations + a.GPUStats.Combinations; got != cut {
		t.Errorf("low shard covers %d of %d", got, cut)
	}
	merged := &topList{obj: score.NewK2(mx.Samples()), k: 5}
	for _, c := range a.TopK {
		merged.offer(c)
	}
	for _, c := range b.TopK {
		merged.offer(c)
	}
	if len(merged.items) != len(full.TopK) {
		t.Fatalf("merged %d entries, full %d", len(merged.items), len(full.TopK))
	}
	for i := range full.TopK {
		if merged.items[i] != full.TopK[i] {
			t.Errorf("TopK[%d] = %+v, full %+v", i, merged.items[i], full.TopK[i])
		}
	}
	if _, err := Search(encStore(mx), Options{Range: &combin.Range{Lo: 5, Hi: total + 1}}); err == nil {
		t.Error("out-of-bounds range accepted")
	}
}

func TestHeterogeneousCustomDevices(t *testing.T) {
	mx := randomMatrix(123, 10, 100)
	ca2, err := device.CPUByID("CA2")
	if err != nil {
		t.Fatal(err)
	}
	gi2, err := device.GPUByID("GI2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(encStore(mx), Options{CPUDevice: ca2, GPUDevice: gi2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != want.Best {
		t.Errorf("best %+v, want %+v", res.Best, want.Best)
	}
}

func TestHeterogeneousBadFraction(t *testing.T) {
	mx := randomMatrix(124, 8, 60)
	if _, err := Search(encStore(mx), Options{CPUFraction: 1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := Search(encStore(mx), Options{CPUFraction: -0.5}); err == nil {
		t.Error("negative fraction accepted")
	}
}
