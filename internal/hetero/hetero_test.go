package hetero

import (
	"math/rand"
	"testing"

	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/engine"
)

func randomMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	return mx
}

func TestHeterogeneousMatchesFullSearch(t *testing.T) {
	mx := randomMatrix(120, 18, 200)
	want, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.001, 0.3, 0.5, 0.9, 0.999} {
		res, err := Search(mx, Options{CPUFraction: frac})
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		if res.Best != want.Best {
			t.Errorf("frac %g: best %+v, want %+v", frac, res.Best, want.Best)
		}
		// Both halves must have evaluated their share.
		sum := res.CPUStats.Combinations + res.GPUStats.Combinations
		if sum != want.Stats.Combinations {
			t.Errorf("frac %g: halves cover %d of %d combinations", frac, sum, want.Stats.Combinations)
		}
	}
}

func TestHeterogeneousEdgesAllCPUAllGPU(t *testing.T) {
	mx := randomMatrix(121, 12, 130)
	want, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	allCPU, err := Search(mx, Options{CPUFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if allCPU.Best != want.Best || allCPU.GPUStats.Combinations != 0 {
		t.Errorf("all-CPU run wrong: %+v", allCPU.Best)
	}
	allGPU, err := Search(mx, Options{CPUFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if allGPU.Best != want.Best || allGPU.CPUStats.Combinations != 0 {
		t.Errorf("all-GPU run wrong: %+v", allGPU.Best)
	}
}

func TestHeterogeneousAutoFraction(t *testing.T) {
	mx := randomMatrix(122, 14, 150)
	res, err := Search(mx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Default pairing CI3+GN1: the paper says CI3 delivers roughly half
	// a GN1-class GPU, so the CPU share should be meaningful but
	// minority.
	if res.CPUFraction <= 0.05 || res.CPUFraction >= 0.6 {
		t.Errorf("auto CPU fraction = %.3f, want in (0.05, 0.6)", res.CPUFraction)
	}
	// Section V-D estimate: CI3+GN1 combined throughput beats GN1 alone.
	gn1, err := device.GPUByID("GN1")
	if err != nil {
		t.Fatal(err)
	}
	_ = gn1
	if res.ModeledCombinedGElems <= 0 {
		t.Error("combined throughput not populated")
	}
}

func TestHeterogeneousCustomDevices(t *testing.T) {
	mx := randomMatrix(123, 10, 100)
	ca2, err := device.CPUByID("CA2")
	if err != nil {
		t.Fatal(err)
	}
	gi2, err := device.GPUByID("GI2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(mx, Options{CPUDevice: ca2, GPUDevice: gi2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Search(mx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != want.Best {
		t.Errorf("best %+v, want %+v", res.Best, want.Best)
	}
	// CA2 vs the tiny GI2: CPU fraction should be sizeable.
	if res.CPUFraction < 0.1 {
		t.Errorf("CA2/GI2 CPU fraction = %.3f, expected >= 0.1", res.CPUFraction)
	}
}

func TestHeterogeneousBadFraction(t *testing.T) {
	mx := randomMatrix(124, 8, 60)
	if _, err := Search(mx, Options{CPUFraction: 1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
}
