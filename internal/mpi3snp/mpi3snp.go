// Package mpi3snp reimplements the kernel strategy of MPI3SNP
// (Ponte-Fernández et al., IJHPCA 2020), the reference third-order
// exhaustive epistasis tool the paper compares against in Table III.
//
// Faithful strategy, single host: the dataset is split by phenotype
// class and binarized, but — unlike this work's engine — all three
// genotype planes are stored and loaded (no NOR inference), there is no
// cache tiling, combinations are distributed statically across ranks
// (MPI-style) rather than through a dynamic pool, and candidates are
// ranked by mutual information. Running this baseline and the engine's
// V4 under the same Go runtime isolates the algorithmic differences the
// paper credits for its speedups.
package mpi3snp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"trigene/internal/bitvec"
	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/sched"
	"trigene/internal/score"
	"trigene/internal/store"
	"trigene/internal/topk"
)

// Options configures a baseline search.
type Options struct {
	// Ranks is the number of static workers ("MPI processes");
	// default runtime.GOMAXPROCS(0).
	Ranks int
	// TopK is how many candidates to return (default 1; MPI3SNP itself
	// reports a ranked list).
	TopK int
	// Range restricts the search to combination ranks [Lo, Hi) in
	// colexicographic order — the shard primitive. Nil means the full
	// space. The static MPI-style distribution then partitions the
	// range instead of the whole space, so sharded runs merge
	// bit-exactly with unsharded ones.
	Range *combin.Range
	// Context optionally allows cancellation; nil means
	// context.Background(). Cancellation is observed periodically
	// inside each rank's static block and returns the context error.
	Context context.Context
}

// Candidate is a scored SNP triple.
type Candidate struct {
	I, J, K int
	MI      float64
}

// Stats reports the volume and speed of a completed search.
type Stats struct {
	Combinations   int64
	Elements       float64
	Duration       time.Duration
	ElementsPerSec float64
}

// Result is the outcome of a baseline search.
type Result struct {
	Best  Candidate
	TopK  []Candidate
	Stats Stats
}

// Search runs the exhaustive baseline search. The per-class
// three-plane encoding (MPI3SNP's data layout) comes from the
// encoded-dataset store, which builds it once and shares it across
// runs.
func Search(st *store.Store, opts Options) (*Result, error) {
	if st.SNPs() < 3 {
		return nil, fmt.Errorf("mpi3snp: need at least 3 SNPs, have %d", st.SNPs())
	}
	if opts.Ranks == 0 {
		opts.Ranks = runtime.GOMAXPROCS(0)
	}
	if opts.Ranks < 1 {
		return nil, fmt.Errorf("mpi3snp: invalid rank count %d", opts.Ranks)
	}
	if opts.TopK == 0 {
		opts.TopK = 1
	}
	if opts.TopK < 0 {
		return nil, fmt.Errorf("mpi3snp: invalid TopK %d", opts.TopK)
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	cp := st.ClassPlanes()
	m := st.SNPs()
	lo, hi := int64(0), combin.Triples(m)
	if r := opts.Range; r != nil {
		if r.Lo < 0 || r.Hi < r.Lo || r.Hi > hi {
			return nil, fmt.Errorf("mpi3snp: invalid rank range [%d,%d) of %d", r.Lo, r.Hi, hi)
		}
		lo, hi = r.Lo, r.Hi
	}

	// Static block distribution over combination ranks, as an MPI code
	// would partition up front: the scheduler's Partition, not its
	// claiming cursor, because static assignment is the point of this
	// baseline.
	ranges := sched.NewSource(lo, hi, 1).Partition(opts.Ranks)
	tops := make([][]Candidate, len(ranges))
	var wg sync.WaitGroup
	for rk, rg := range ranges {
		wg.Add(1)
		go func(rk int, rg combin.Range) {
			defer wg.Done()
			tops[rk] = searchRange(ctx, cp, m, rg, opts.TopK)
		}(rk, rg)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	merged := mergeTopK(tops, opts.TopK)
	res := &Result{TopK: merged}
	if len(merged) > 0 {
		res.Best = merged[0]
	}
	res.Stats.Combinations = hi - lo
	res.Stats.Elements = float64(hi-lo) * float64(st.Samples())
	res.Stats.Duration = time.Since(start)
	if s := res.Stats.Duration.Seconds(); s > 0 {
		res.Stats.ElementsPerSec = res.Stats.Elements / s
	}
	return res, nil
}

func searchRange(ctx context.Context, cp *dataset.ClassPlanes, m int, rg combin.Range, topK int) []Candidate {
	var top []Candidate
	var tab contingency.Table // reused across combinations
	i, j, k := combin.UnrankTriple(rg.Lo, m)
	for r := rg.Lo; r < rg.Hi; r++ {
		if (r-rg.Lo)%8192 == 0 && ctx.Err() != nil {
			return nil
		}
		for class := 0; class < 2; class++ {
			for gx := 0; gx < 3; gx++ {
				x := cp.Plane(class, i, gx)
				for gy := 0; gy < 3; gy++ {
					y := cp.Plane(class, j, gy)
					for gz := 0; gz < 3; gz++ {
						z := cp.Plane(class, k, gz)
						tab.Counts[class][contingency.ComboIndex(gx, gy, gz)] =
							int32(bitvec.PopCountAnd3(x, y, z))
					}
				}
			}
		}
		top = insertTopK(top, Candidate{I: i, J: j, K: k, MI: score.MutualInformation(&tab)}, topK)
		i, j, k, _ = combin.NextTriple(i, j, k, m)
	}
	return top
}

// insertTopK keeps the list sorted by MI descending (ties: smaller
// triple first) and capped at k entries.
func insertTopK(top []Candidate, c Candidate, k int) []Candidate {
	return topk.Insert(top, c, k, better)
}

func better(a, b Candidate) bool {
	if a.MI != b.MI {
		return a.MI > b.MI
	}
	if a.I != b.I {
		return a.I < b.I
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.K < b.K
}

func mergeTopK(tops [][]Candidate, k int) []Candidate {
	var merged []Candidate
	for _, t := range tops {
		for _, c := range t {
			merged = insertTopK(merged, c, k)
		}
	}
	return merged
}
