package mpi3snp

import (
	"math/rand"
	"testing"

	"trigene/internal/combin"
	"trigene/internal/contingency"
	"trigene/internal/dataset"
	"trigene/internal/engine"
	"trigene/internal/score"
	"trigene/internal/store"
)

func randomMatrix(seed int64, m, n int) *dataset.Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := dataset.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	return mx
}

func TestBaselineAgreesWithEngineOnMI(t *testing.T) {
	mx := randomMatrix(100, 18, 230)
	base, err := Search(encStore(mx), Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Search(mx, engine.Options{Objective: score.MIObjective{}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Best.I != eng.Best.Triple.I || base.Best.J != eng.Best.Triple.J ||
		base.Best.K != eng.Best.Triple.K {
		t.Errorf("baseline best (%d,%d,%d), engine best %v",
			base.Best.I, base.Best.J, base.Best.K, eng.Best.Triple)
	}
	if base.Best.MI != eng.Best.Score {
		t.Errorf("baseline MI %.9f != engine %.9f", base.Best.MI, eng.Best.Score)
	}
}

func TestBaselineTablesMatchReference(t *testing.T) {
	// The baseline builds tables from three stored planes; spot-check
	// against the oracle through the MI score of a known triple.
	mx := randomMatrix(101, 6, 97)
	base, err := Search(encStore(mx), Options{TopK: int(combin.Triples(6))})
	if err != nil {
		t.Fatal(err)
	}
	// Every combination's MI must match a reference computation.
	want := map[[3]int]float64{}
	combin.ForEachTriple(6, func(i, j, k int) {
		tab := contingency.BuildReference(mx, i, j, k)
		want[[3]int{i, j, k}] = score.MutualInformation(&tab)
	})
	if int64(len(base.TopK)) != combin.Triples(6) {
		t.Fatalf("TopK = %d, want all %d", len(base.TopK), combin.Triples(6))
	}
	for _, c := range base.TopK {
		if w := want[[3]int{c.I, c.J, c.K}]; c.MI != w {
			t.Errorf("(%d,%d,%d): MI %.9f, want %.9f", c.I, c.J, c.K, c.MI, w)
		}
	}
}

func TestBaselineRankInvariance(t *testing.T) {
	mx := randomMatrix(102, 14, 150)
	base1, err := Search(encStore(mx), Options{Ranks: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 5, 9} {
		res, err := Search(encStore(mx), Options{Ranks: ranks, TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best != base1.Best {
			t.Errorf("ranks=%d best differs", ranks)
		}
		for i := range res.TopK {
			if res.TopK[i] != base1.TopK[i] {
				t.Errorf("ranks=%d TopK[%d] differs", ranks, i)
			}
		}
	}
}

func TestBaselineTopKSorted(t *testing.T) {
	mx := randomMatrix(103, 12, 120)
	res, err := Search(encStore(mx), Options{TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 8 {
		t.Fatalf("TopK = %d", len(res.TopK))
	}
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i-1].MI < res.TopK[i].MI {
			t.Errorf("TopK not sorted at %d", i)
		}
	}
}

func TestBaselineValidation(t *testing.T) {
	if _, err := Search(encStore(randomMatrix(104, 2, 10)), Options{}); err == nil {
		t.Error("2-SNP dataset accepted")
	}
	if _, err := Search(encStore(randomMatrix(105, 5, 10)), Options{Ranks: -1}); err == nil {
		t.Error("negative ranks accepted")
	}
	if _, err := Search(encStore(randomMatrix(106, 5, 10)), Options{TopK: -1}); err == nil {
		t.Error("negative TopK accepted")
	}
	// Degenerate datasets are rejected when the store is built, before
	// any engine sees them.
	oneClass := dataset.NewMatrix(5, 10)
	if _, err := store.New(oneClass); err == nil {
		t.Error("single-class dataset accepted")
	}
}

func TestBaselineStats(t *testing.T) {
	mx := randomMatrix(107, 10, 64)
	res, err := Search(encStore(mx), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Combinations != combin.Triples(10) {
		t.Errorf("combinations = %d", res.Stats.Combinations)
	}
	if res.Stats.ElementsPerSec <= 0 {
		t.Error("throughput not populated")
	}
}

func TestBaselinePlantedInteraction(t *testing.T) {
	it := &dataset.Interaction{SNPs: [3]int{1, 6, 9}, Penetrance: dataset.ThresholdPenetrance(3, 0.05, 0.95)}
	mx, err := dataset.Generate(dataset.GenConfig{
		SNPs: 12, Samples: 1200, Seed: 30, MAFMin: 0.3, MAFMax: 0.5, Interaction: it,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(encStore(mx), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.I != 1 || res.Best.J != 6 || res.Best.K != 9 {
		t.Errorf("best (%d,%d,%d), want planted (1,6,9)", res.Best.I, res.Best.J, res.Best.K)
	}
}
