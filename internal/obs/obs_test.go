package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden locks the exact text-format output: HELP/TYPE
// lines, counter/gauge/histogram rendering, cumulative buckets with
// +Inf, label quoting, and deterministic ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("trigene_tiles_total", "Tiles scored.", L("approach", "V4F")).Add(7)
	r.Counter("trigene_tiles_total", "Tiles scored.", L("approach", "V2")).Add(3)
	r.Gauge("trigene_queue_depth", "Unleased tiles.").Set(4)
	h := r.Histogram("trigene_fsync_seconds", "Fsync latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)
	r.GaugeFunc("trigene_worker_staleness_seconds", "Seconds since last heartbeat.", func() []Sample {
		return []Sample{
			{Value: 1.5, Labels: []Label{L("worker", `w"1`)}},
			{Value: 3, Labels: []Label{L("worker", "w2")}},
		}
	})

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP trigene_tiles_total Tiles scored.
# TYPE trigene_tiles_total counter
trigene_tiles_total{approach="V2"} 3
trigene_tiles_total{approach="V4F"} 7
# HELP trigene_queue_depth Unleased tiles.
# TYPE trigene_queue_depth gauge
trigene_queue_depth 4
# HELP trigene_fsync_seconds Fsync latency.
# TYPE trigene_fsync_seconds histogram
trigene_fsync_seconds_bucket{le="0.001"} 2
trigene_fsync_seconds_bucket{le="0.01"} 2
trigene_fsync_seconds_bucket{le="0.1"} 3
trigene_fsync_seconds_bucket{le="+Inf"} 4
trigene_fsync_seconds_sum 2.051
trigene_fsync_seconds_count 4
# HELP trigene_worker_staleness_seconds Seconds since last heartbeat.
# TYPE trigene_worker_staleness_seconds gauge
trigene_worker_staleness_seconds{worker="w\"1"} 1.5
trigene_worker_staleness_seconds{worker="w2"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1<<10)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Errorf("body missing series: %q", buf[:n])
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", L("k", "v"))
	b := r.Counter("c_total", "help", L("k", "v"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := r.Counter("c_total", "help", L("k", "other")); c == a {
		t.Error("different label value returned the same series")
	}
}

func TestValidationPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"bad metric name": func(r *Registry) { r.Counter("1bad", "h") },
		"bad label name":  func(r *Registry) { r.Counter("ok_total", "h", L("0k", "v")) },
		"duplicate label": func(r *Registry) { r.Counter("ok_total", "h", L("a", "1"), L("a", "2")) },
		"kind conflict":   func(r *Registry) { r.Counter("m", "h"); r.Gauge("m", "h") },
		"help conflict":   func(r *Registry) { r.Counter("m_total", "h1"); r.Counter("m_total", "h2") },
		"label conflict":  func(r *Registry) { r.Counter("m_total", "h", L("a", "1")); r.Counter("m_total", "h", L("b", "1")) },
		"bucket order":    func(r *Registry) { r.Histogram("h", "h", []float64{2, 1}) },
		"bucket conflict": func(r *Registry) { r.Histogram("h", "h", []float64{1}); r.Histogram("h", "h", []float64{2}) },
		"nil gaugefunc":   func(r *Registry) { r.GaugeFunc("g", "h", nil) },
		"colon in label":  func(r *Registry) { r.Counter("ok_total", "h", L("a:b", "v")) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f(NewRegistry())
		}()
	}
}

// TestNilSafety exercises every mutator on nil metrics and a nil
// registry — the contract instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("x", "h")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("x_h", "h", DurationBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	r.GaugeFunc("f", "h", nil) // must not panic on nil registry
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil WriteTo = %d, %v", n, err)
	}
	var tr *Trace
	tr.Start("x")()
	tr.Add("y", 0, time.Second)
	if tr.Spans() != nil {
		t.Error("nil trace has spans")
	}
}

// TestConcurrentScrape hammers registration, updates and scrapes
// concurrently; run under -race this is the data-race gate for the
// whole package.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("hot_total", "h", L("w", string(rune('a'+i))))
			h := r.Histogram("lat_seconds", "h", DurationBuckets, L("w", string(rune('a'+i))))
			g := r.Gauge("depth", "h")
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
					g.Add(1)
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		if _, err := r.WriteTo(&strings.Builder{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	done := tr.Start("plan")
	time.Sleep(time.Millisecond)
	done()
	tr.Add("encode", tr.Since(), 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "plan" || spans[0].Duration <= 0 {
		t.Errorf("plan span = %+v", spans[0])
	}
	if spans[1].Name != "encode" || spans[1].Duration != 5*time.Millisecond {
		t.Errorf("encode span = %+v", spans[1])
	}
}
