package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteTo writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, then one line per series, families in registration order
// and series sorted by label signature so output is deterministic.
// A nil Registry writes nothing.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	// Snapshot the family list, then release: GaugeFunc collectors may
	// take their own locks (the coordinator's scrape takes c.mu) and
	// concurrent registration must not deadlock against a scrape.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	cw := &countWriter{w: w}
	for _, f := range fams {
		if err := f.write(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// Handler returns an http.Handler serving the exposition at any path
// (mount it at GET /metrics). A nil Registry serves an empty body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WriteTo(w)
	})
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func (f *family) write(w io.Writer) error {
	var b strings.Builder
	if f.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')

	if f.kind == kindGaugeFunc {
		for _, s := range f.fn() {
			writeSeries(&b, f.name, labelString(s.Labels), s.Value)
		}
		_, err := io.WriteString(w, b.String())
		return err
	}

	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		switch m := f.series[sig].(type) {
		case *Counter:
			writeSeries(&b, f.name, sig, float64(m.Value()))
		case *Gauge:
			writeSeries(&b, f.name, sig, m.Value())
		case *Histogram:
			var cum int64
			for i, ub := range m.upper {
				cum += m.buckets[i].Load()
				writeSeries(&b, f.name+"_bucket", addLabel(sig, "le", formatFloat(ub)), float64(cum))
			}
			cum += m.buckets[len(m.upper)].Load()
			writeSeries(&b, f.name+"_bucket", addLabel(sig, "le", "+Inf"), float64(cum))
			writeSeries(&b, f.name+"_sum", sig, m.Sum())
			writeSeries(&b, f.name+"_count", sig, float64(m.Count()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries renders one `name{labels} value` line.
func writeSeries(b *strings.Builder, name, sig string, v float64) {
	b.WriteString(name)
	if sig != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// labelString renders collect-time labels in sorted order, validating
// names (GaugeFunc labels are only seen at scrape).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if !labelOK(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q in GaugeFunc sample", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// addLabel appends one more pair to a rendered signature (used for
// the histogram le label, which sorts into place naturally because
// exposition does not require sorted label order within a line).
func addLabel(sig, name, value string) string {
	pair := name + "=" + strconv.Quote(value)
	if sig == "" {
		return pair
	}
	return sig + "," + pair
}

// formatFloat renders a value the way Prometheus expects: integers
// without a decimal point, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
