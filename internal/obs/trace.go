package obs

import (
	"sync"
	"time"
)

// Span is one completed phase of a traced operation: its name, when
// it started relative to the trace's own start, and how long it ran.
type Span struct {
	Name     string
	Start    time.Duration // offset from Trace start
	Duration time.Duration
}

// Trace records the phase spans of one operation (one search): plan,
// encode, search, merge. It is deliberately minimal — a handful of
// appends behind a mutex, far off any hot path; per-tile work is the
// metrics registry's job, not the trace's.
//
// The nil *Trace is valid: Start returns a no-op closer, Spans
// returns nil — callers thread a trace through unconditionally.
type Trace struct {
	mu    sync.Mutex
	base  time.Time
	spans []Span
}

// NewTrace starts a trace; its clock zero is now.
func NewTrace() *Trace {
	return &Trace{base: time.Now()}
}

// Start opens a span and returns the closure that ends it. Typical
// use:
//
//	done := tr.Start("search")
//	... the phase ...
//	done()
//
// Spans may overlap and nest freely; the trace records them in
// completion order. Safe for concurrent use; no-op on a nil Trace.
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{
			Name:     name,
			Start:    start.Sub(t.base),
			Duration: end.Sub(start),
		})
		t.mu.Unlock()
	}
}

// Add records an already-measured span (used when a phase's duration
// is computed rather than clocked, e.g. the encode time a store
// reports). No-op on a nil Trace.
func (t *Trace) Add(name string, start, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Duration: d})
	t.mu.Unlock()
}

// Since returns the offset of now from the trace's clock zero (0 on
// nil), for pairing with Add.
func (t *Trace) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.base)
}

// Spans returns a copy of the recorded spans (nil on a nil Trace).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}
