// Package obs is the repository's dependency-free observability
// toolkit: a named metrics Registry (atomic counters, gauges and
// fixed-bucket histograms) with Prometheus text-format exposition,
// and a lightweight per-search Trace of phase spans.
//
// The design constraints, in order:
//
//   - Hot-path safe. Every metric mutator is a handful of atomic
//     operations with zero allocations, and every metric type is
//     nil-receiver safe — instrumented code writes c.Inc() without
//     guarding, so the uninstrumented configuration pays one
//     predictable nil check and the engine's zero-allocation
//     guarantee (TestHotPathAllocs) holds with a live registry.
//   - Dependency-free. Only the standard library; the exposition is
//     the Prometheus text format written by hand, so daemons scrape
//     without pulling a client library into the module.
//   - Registration is idempotent: asking for the same name with the
//     same type, help and label signature returns the same metric,
//     so package-level instrumentation can re-resolve its series
//     without coordination. Conflicting re-registration panics —
//     a programming error, caught in tests.
//
// Metric and label names must match the Prometheus data model
// ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*); violations
// panic at registration time.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind discriminates the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family groups every series registered under one metric name: they
// share the kind, help text and label names, and differ only in label
// values.
type family struct {
	name string
	help string
	kind metricKind

	// series, keyed by the rendered label signature. The zero-label
	// series uses the empty key.
	series map[string]any

	// fn is set for GaugeFunc families; collected at scrape time.
	fn func() []Sample

	// buckets is set for histogram families (upper bounds, ascending,
	// +Inf implicit).
	buckets []float64
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is valid
// everywhere: every constructor returns a nil metric, and nil metrics
// accept updates as no-ops — instrumentation never branches.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameOK  = regexpLike("[a-zA-Z_:][a-zA-Z0-9_:]*")
	labelOK = regexpLike("[a-zA-Z_][a-zA-Z0-9_]*")
)

// regexpLike returns a validator for the two fixed character-class
// patterns above without pulling regexp into every binary's init.
func regexpLike(pattern string) func(string) bool {
	extended := strings.Contains(pattern, ":")
	return func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			case c == ':' && extended:
			case c >= '0' && c <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
}

// checkLabels validates the label set and returns its canonical
// signature (sorted by name) used as the series key.
func checkLabels(metric string, labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if !labelOK(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Name, metric))
		}
		if i > 0 {
			if ls[i-1].Name == l.Name {
				panic(fmt.Sprintf("obs: duplicate label %q on metric %q", l.Name, metric))
			}
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// labelNames extracts the sorted label-name signature, for detecting
// re-registration with a different label set.
func labelNames(sig string) string {
	if sig == "" {
		return ""
	}
	var names []string
	for _, part := range splitSeries(sig) {
		names = append(names, part[:strings.IndexByte(part, '=')])
	}
	return strings.Join(names, ",")
}

// splitSeries splits a label signature on the commas that separate
// pairs (values are strconv-quoted, so embedded commas are escaped —
// but quotes may contain commas, so walk the quoting).
func splitSeries(sig string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(sig); i++ {
		switch sig[i] {
		case '"':
			if i == 0 || sig[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, sig[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, sig[start:])
}

// lookup finds or creates the family, enforcing consistency.
func (r *Registry) lookup(name, help string, kind metricKind, sig string, buckets []float64) *family {
	if !nameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any), buckets: buckets}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different help", name))
	}
	for existing := range f.series {
		if labelNames(existing) != labelNames(sig) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different label names", name))
		}
		break
	}
	if kind == kindHistogram && !equalBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	return f
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing integer series. The nil
// Counter accepts updates as no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers (or finds) a counter series. The exposed name
// should end in _total by Prometheus convention; this is not
// enforced. Nil receiver returns a nil (no-op) Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sig := checkLabels(name, labels)
	f := r.lookup(name, help, kindCounter, sig, nil)
	if m, ok := f.series[sig]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[sig] = c
	return c
}

// Gauge is a float64 series that can go up and down. The nil Gauge
// accepts updates as no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge registers (or finds) a gauge series. Nil receiver returns a
// nil (no-op) Gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sig := checkLabels(name, labels)
	f := r.lookup(name, help, kindGauge, sig, nil)
	if m, ok := f.series[sig]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[sig] = g
	return g
}

// Histogram is a fixed-bucket distribution: cumulative bucket counts,
// a running sum, and a total count, all updated atomically. The nil
// Histogram accepts updates as no-ops.
type Histogram struct {
	upper   []float64
	buckets []atomic.Int64 // non-cumulative; summed at scrape
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~16) and the scan is
	// branch-predictable; a binary search would not win here.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets is a general-purpose latency bucket ladder in
// seconds, from 100µs to ~100s.
var DurationBuckets = []float64{
	1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 1e-1, 2.5e-1, 1, 2.5, 10, 100,
}

// SizeBuckets is a general-purpose byte-size bucket ladder, from 1KiB
// to 1GiB.
var SizeBuckets = []float64{
	1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 23, 1 << 26, 1 << 30,
}

// Histogram registers (or finds) a histogram series with the given
// ascending upper bounds (+Inf is implicit). Nil receiver returns a
// nil (no-op) Histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sig := checkLabels(name, labels)
	f := r.lookup(name, help, kindHistogram, sig, buckets)
	if m, ok := f.series[sig]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{upper: f.buckets, buckets: make([]atomic.Int64, len(f.buckets)+1)}
	f.series[sig] = h
	return h
}

// Sample is one collect-time gauge reading from a GaugeFunc.
type Sample struct {
	Value  float64
	Labels []Label
}

// GaugeFunc registers a gauge family whose samples are produced by fn
// at scrape time — the shape for values that live behind a mutex
// (queue depth, per-worker staleness) where mirroring into an atomic
// on every change would be invasive. fn must be safe for concurrent
// use and return quickly; each returned Sample may carry its own
// label values. Repeated registration of the same name replaces fn
// (last wins), so a recovered coordinator can rebind its collectors.
func (r *Registry) GaugeFunc(name, help string, fn func() []Sample) {
	if r == nil {
		return
	}
	if fn == nil {
		panic(fmt.Sprintf("obs: nil GaugeFunc for metric %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGaugeFunc, "", nil)
	f.fn = fn
}
