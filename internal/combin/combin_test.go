package combin

import (
	"testing"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {5, 3, 10},
		{10, 3, 120}, {2, 3, 0}, {52, 5, 2598960},
		{2048, 3, 1429559296}, {8192, 3, 91592417280},
		{40000, 3, 10665866680000},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascalProperty(t *testing.T) {
	for n := 1; n <= 60; n++ {
		for k := 1; k <= n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at C(%d,%d)", n, k)
			}
		}
	}
}

func TestBinomialNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Binomial(-1, 2)
}

func TestBinomialOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Binomial(1<<40, 3)
}

func TestElements(t *testing.T) {
	// 10000 SNPs, 1600 samples, order 3 (Table III row 1 workload).
	got := Elements(10000, 1600, 3)
	want := float64(Binomial(10000, 3)) * 1600
	if got != want {
		t.Errorf("Elements = %g, want %g", got, want)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	const m = 25
	var rank int64
	ForEachTriple(m, func(i, j, k int) {
		if got := RankTriple(i, j, k); got != rank {
			t.Fatalf("RankTriple(%d,%d,%d) = %d, want %d", i, j, k, got, rank)
		}
		gi, gj, gk := UnrankTriple(rank, m)
		if gi != i || gj != j || gk != k {
			t.Fatalf("UnrankTriple(%d) = (%d,%d,%d), want (%d,%d,%d)", rank, gi, gj, gk, i, j, k)
		}
		rank++
	})
	if rank != Triples(m) {
		t.Fatalf("enumerated %d triples, want %d", rank, Triples(m))
	}
}

func TestRankUnrankLargeM(t *testing.T) {
	// Spot-check the bijection at scale without enumerating.
	const m = 40000
	total := Triples(m)
	for _, r := range []int64{0, 1, total / 3, total / 2, total - 2, total - 1} {
		i, j, k := UnrankTriple(r, m)
		if !(0 <= i && i < j && j < k && k < m) {
			t.Fatalf("UnrankTriple(%d) = invalid (%d,%d,%d)", r, i, j, k)
		}
		if back := RankTriple(i, j, k); back != r {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d", r, i, j, k, back)
		}
	}
}

func TestNextTripleMatchesEnumeration(t *testing.T) {
	const m = 12
	i, j, k := 0, 1, 2
	count := int64(1)
	ForEachTriple(m, func(ei, ej, ek int) {
		if ei != i || ej != j || ek != k {
			t.Fatalf("NextTriple drift: have (%d,%d,%d), want (%d,%d,%d)", i, j, k, ei, ej, ek)
		}
		var ok bool
		i, j, k, ok = NextTriple(i, j, k, m)
		if ok {
			count++
		}
	})
	if count != Triples(m) {
		t.Fatalf("NextTriple visited %d, want %d", count, Triples(m))
	}
}

func TestPairRankUnrank(t *testing.T) {
	const m = 30
	var rank int64
	ForEachPair(m, func(i, j int) {
		if got := RankPair(i, j); got != rank {
			t.Fatalf("RankPair(%d,%d) = %d, want %d", i, j, got, rank)
		}
		gi, gj := UnrankPair(rank, m)
		if gi != i || gj != j {
			t.Fatalf("UnrankPair(%d) = (%d,%d), want (%d,%d)", rank, gi, gj, i, j)
		}
		rank++
	})
	if rank != Pairs(m) {
		t.Fatalf("enumerated %d pairs, want %d", rank, Pairs(m))
	}
}

func TestUnrankOutOfRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { UnrankTriple(-1, 10) },
		func() { UnrankTriple(Triples(10), 10) },
		func() { UnrankPair(Pairs(10), 10) },
		func() { RankTriple(2, 1, 3) },
		func() { RankPair(3, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTripleBlocks(t *testing.T) {
	cases := []struct{ m, bs, want int }{
		{10, 5, 2}, {11, 5, 3}, {5, 5, 1}, {1, 5, 1}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := TripleBlocks(c.m, c.bs); got != c.want {
			t.Errorf("TripleBlocks(%d,%d) = %d, want %d", c.m, c.bs, got, c.want)
		}
	}
}

func TestRankUnrankKMatchesTriples(t *testing.T) {
	const m = 15
	comb := []int{0, 1, 2}
	var rank int64
	for {
		if got := RankK(comb); got != rank {
			t.Fatalf("RankK(%v) = %d, want %d", comb, got, rank)
		}
		if got := RankTriple(comb[0], comb[1], comb[2]); got != rank {
			t.Fatalf("RankK disagrees with RankTriple at %v", comb)
		}
		back := UnrankK(rank, m, make([]int, 3))
		for i := range comb {
			if back[i] != comb[i] {
				t.Fatalf("UnrankK(%d) = %v, want %v", rank, back, comb)
			}
		}
		rank++
		if !NextK(comb, m) {
			break
		}
	}
	if rank != Triples(m) {
		t.Fatalf("NextK visited %d, want %d", rank, Triples(m))
	}
}

func TestRankUnrankKOrder4(t *testing.T) {
	const m, k = 12, 4
	comb := []int{0, 1, 2, 3}
	var rank int64
	for {
		if got := RankK(comb); got != rank {
			t.Fatalf("RankK(%v) = %d, want %d", comb, got, rank)
		}
		back := UnrankK(rank, m, make([]int, k))
		for i := range comb {
			if back[i] != comb[i] {
				t.Fatalf("UnrankK(%d) = %v, want %v", rank, back, comb)
			}
		}
		// Strictly increasing invariant.
		for i := 1; i < k; i++ {
			if back[i-1] >= back[i] {
				t.Fatalf("UnrankK produced non-increasing %v", back)
			}
		}
		rank++
		if !NextK(comb, m) {
			break
		}
	}
	if rank != Binomial(m, k) {
		t.Fatalf("visited %d, want C(%d,%d)=%d", rank, m, k, Binomial(m, k))
	}
}

func TestRankKPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { RankK([]int{3, 3}) },
		func() { UnrankK(-1, 10, make([]int, 2)) },
		func() { UnrankK(Binomial(10, 2), 10, make([]int, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
