// Package combin provides combination counting, enumeration and
// colexicographic ranking for the exhaustive k-way interaction search.
//
// The search space of third-order epistasis detection over M SNPs is the
// set of C(M,3) strictly increasing triples (i, j, k). The engine splits
// that space into contiguous rank ranges for dynamic scheduling, which
// requires a rank/unrank bijection; the colexicographic order
//
//	rank(i<j<k) = C(k,3) + C(j,2) + C(i,1)
//
// is used because unranking is a sequence of inverse-binomial searches.
package combin

import (
	"fmt"
	"math"
)

// Binomial returns C(n, k) as an int64. It panics if the result would
// overflow int64 or if the arguments are negative.
func Binomial(n, k int) int64 {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("combin: negative argument C(%d,%d)", n, k))
	}
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var r int64 = 1
	for i := 1; i <= k; i++ {
		// r * (n-k+i) / i is exact at every step because r holds C(n-k+i-1, i-1)
		// times earlier exact divisions; guard the multiply.
		f := int64(n - k + i)
		if r > math.MaxInt64/f {
			panic(fmt.Sprintf("combin: C(%d,%d) overflows int64", n, k))
		}
		r = r * f / int64(i)
	}
	return r
}

// Triples returns C(m, 3): the number of 3-way combinations of m items.
func Triples(m int) int64 { return Binomial(m, 3) }

// Pairs returns C(m, 2).
func Pairs(m int) int64 { return Binomial(m, 2) }

// Elements returns the paper's work metric for a dataset of m SNPs and
// n samples at interaction order k: nCr(m, k) * n.
func Elements(m, n, k int) float64 {
	return float64(Binomial(m, k)) * float64(n)
}

// RankTriple returns the colexicographic rank of the triple i < j < k.
func RankTriple(i, j, k int) int64 {
	if !(0 <= i && i < j && j < k) {
		panic(fmt.Sprintf("combin: invalid triple (%d,%d,%d)", i, j, k))
	}
	return Binomial(k, 3) + Binomial(j, 2) + int64(i)
}

// UnrankTriple inverts RankTriple: it returns the triple i < j < k with
// the given colexicographic rank. m bounds the search (the rank must be
// < C(m,3)).
func UnrankTriple(rank int64, m int) (i, j, k int) {
	if rank < 0 || rank >= Triples(m) {
		panic(fmt.Sprintf("combin: rank %d out of range for m=%d", rank, m))
	}
	k = invBinomial(rank, 3, m)
	rank -= Binomial(k, 3)
	j = invBinomial(rank, 2, k)
	rank -= Binomial(j, 2)
	i = int(rank)
	return i, j, k
}

// invBinomial returns the largest v < bound with C(v, k) <= target.
func invBinomial(target int64, k, bound int) int {
	lo, hi := k-1, bound-1 // C(k-1, k) == 0 <= target always holds
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if Binomial(mid, k) <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// NextTriple advances (i, j, k) to the next triple in colexicographic
// order over m items. It reports false when the input is the last triple.
func NextTriple(i, j, k, m int) (ni, nj, nk int, ok bool) {
	switch {
	case i+1 < j:
		return i + 1, j, k, true
	case j+1 < k:
		return 0, j + 1, k, true
	case k+1 < m:
		return 0, 1, k + 1, true
	default:
		return 0, 0, 0, false
	}
}

// ForEachTriple calls fn for every triple 0 <= i < j < k < m in
// colexicographic order.
func ForEachTriple(m int, fn func(i, j, k int)) {
	for k := 2; k < m; k++ {
		for j := 1; j < k; j++ {
			for i := 0; i < j; i++ {
				fn(i, j, k)
			}
		}
	}
}

// ForEachPair calls fn for every pair 0 <= i < j < m in colexicographic
// order (used by the 2-way search extension).
func ForEachPair(m int, fn func(i, j int)) {
	for j := 1; j < m; j++ {
		for i := 0; i < j; i++ {
			fn(i, j)
		}
	}
}

// RankPair returns the colexicographic rank of the pair i < j.
func RankPair(i, j int) int64 {
	if !(0 <= i && i < j) {
		panic(fmt.Sprintf("combin: invalid pair (%d,%d)", i, j))
	}
	return Binomial(j, 2) + int64(i)
}

// UnrankPair inverts RankPair for pairs over m items.
func UnrankPair(rank int64, m int) (i, j int) {
	if rank < 0 || rank >= Pairs(m) {
		panic(fmt.Sprintf("combin: pair rank %d out of range for m=%d", rank, m))
	}
	j = invBinomial(rank, 2, m)
	i = int(rank - Binomial(j, 2))
	return i, j
}

// Range is a half-open interval [Lo, Hi) of combination ranks.
type Range struct {
	Lo, Hi int64
}

// Len returns the number of ranks in the range.
func (r Range) Len() int64 { return r.Hi - r.Lo }

// TripleBlocks returns the number of blocks of size bs needed to cover m
// items: ceil(m/bs).
func TripleBlocks(m, bs int) int { return (m + bs - 1) / bs }

// Generic k-combination support (the engine's arbitrary-order search
// mode). Combinations are strictly increasing index slices.

// RankK returns the colexicographic rank of the combination comb
// (strictly increasing).
func RankK(comb []int) int64 {
	var r int64
	for i, v := range comb {
		if i > 0 && comb[i-1] >= v {
			panic(fmt.Sprintf("combin: combination %v not strictly increasing", comb))
		}
		r += Binomial(v, i+1)
	}
	return r
}

// UnrankK writes the combination with the given colexicographic rank
// over m items into dst (whose length fixes k) and returns dst.
func UnrankK(rank int64, m int, dst []int) []int {
	k := len(dst)
	if rank < 0 || rank >= Binomial(m, k) {
		panic(fmt.Sprintf("combin: rank %d out of range for C(%d,%d)", rank, m, k))
	}
	bound := m
	for i := k - 1; i >= 0; i-- {
		v := invBinomial(rank, i+1, bound)
		dst[i] = v
		rank -= Binomial(v, i+1)
		bound = v
	}
	return dst
}

// NextK advances comb to the next combination over m items in
// colexicographic order, in place. It reports false at the last one.
func NextK(comb []int, m int) bool {
	k := len(comb)
	for i := 0; i < k; i++ {
		limit := m
		if i+1 < k {
			limit = comb[i+1]
		}
		if comb[i]+1 < limit {
			comb[i]++
			for j := 0; j < i; j++ {
				comb[j] = j
			}
			return true
		}
	}
	return false
}
