package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"trigene"
	"trigene/internal/obs"
	"trigene/internal/sched"
	"trigene/internal/store"
)

// Worker executes leased tiles against one coordinator: it acquires a
// lease, fetches (and caches) the job's dataset as a Session, runs the
// tile as an ordinary sharded Session.Search, heartbeats the lease
// while computing, and posts the tile Report back. One Worker runs one
// tile at a time — the search itself is internally parallel — so a
// machine contributes capacity by running one Worker, not many.
type Worker struct {
	// Client connects to the coordinator.
	Client *Client
	// ID names the worker in coordinator logs (default "host:pid").
	ID string
	// Capacity is the worker's advertised relative capability (an
	// operator-assigned weight: cores, machine class, ...; default 1).
	// The coordinator sizes lease batches by it until this worker's
	// measured throughput — reported on every lease request and
	// heartbeat — takes over.
	Capacity float64
	// Poll is the idle wait between lease attempts when the
	// coordinator has no work or is unreachable (default 500ms).
	Poll time.Duration
	// CacheEntries bounds the in-memory LRU of per-dataset Sessions
	// (default 4). Each entry holds a dataset's decoded encodings, so
	// the bound is the worker's memory ceiling across job grants.
	CacheEntries int
	// CacheDir, when set, persists fetched datasets as
	// <contentHash>.tpack files there and checks it before asking the
	// coordinator, so a restarted worker (or several workers sharing a
	// disk) skips both the fetch and the re-encode.
	CacheDir string
	// Logger receives worker events as structured records; every line
	// carries the worker ID, and tile-level lines carry the job ID,
	// tile index and lease token (default: discard).
	Logger *slog.Logger

	// rate is the EWMA of measured tiles/sec, stored as float64 bits
	// (the heartbeat goroutine reads it while the search loop writes).
	rate atomic.Uint64

	// Drain support: draining is set once by Drain, drainCh (built
	// lazily under drainMu) wakes an idle Run loop immediately, and
	// idOnce makes the default ID computable from any goroutine.
	draining  atomic.Bool
	drainOnce sync.Once
	drainMu   sync.Mutex
	drainCh   chan struct{}
	idOnce    sync.Once

	// logOnce/log cache the worker-tagged logger built from Logger.
	logOnce sync.Once
	log     *slog.Logger

	// sessions caches Sessions by dataset content hash so a worker
	// decodes each dataset once, not once per tile. The key is the
	// grant's DatasetSHA256 (the store content hash), never the job ID:
	// job IDs restart from j1 with the coordinator, and a long-lived
	// worker must not execute a new job against a stale cached dataset
	// (identical datasets across jobs dedupe for free instead).
	sessions sessionCache

	// wm holds the metric hooks installed by Instrument (zero value:
	// no-ops); reg is the registry handed to each tile's Search.
	wm  workerMetrics
	reg *obs.Registry
}

// tilesPerSec returns the current measured-throughput report.
func (w *Worker) tilesPerSec() float64 { return math.Float64frombits(w.rate.Load()) }

// observe folds one tile's wall time into the throughput EWMA.
func (w *Worker) observe(d time.Duration) {
	secs := d.Seconds()
	if secs <= 0 {
		return
	}
	inst := 1 / secs
	cur := w.tilesPerSec()
	next := inst
	if cur > 0 {
		const alpha = 0.3
		next = alpha*inst + (1-alpha)*cur
	}
	w.rate.Store(math.Float64bits(next))
}

// sessionCache is a bounded LRU of per-dataset Sessions: keys is
// recency-ordered (least recent first), and evicted sessions are
// Closed so pack-mapped ones release their mappings.
type sessionCache struct {
	cap  int
	keys []string
	vals map[string]*trigene.Session
}

const defaultSessionCacheCap = 4

func (sc *sessionCache) get(id string) (*trigene.Session, bool) {
	s, ok := sc.vals[id]
	if ok {
		sc.touch(id)
	}
	return s, ok
}

// touch moves id to the most-recent end.
func (sc *sessionCache) touch(id string) {
	for i, k := range sc.keys {
		if k == id {
			sc.keys = append(append(sc.keys[:i:i], sc.keys[i+1:]...), id)
			return
		}
	}
}

func (sc *sessionCache) put(id string, s *trigene.Session) {
	if sc.vals == nil {
		sc.vals = make(map[string]*trigene.Session)
	}
	if sc.cap <= 0 {
		sc.cap = defaultSessionCacheCap
	}
	if _, ok := sc.vals[id]; ok {
		sc.vals[id] = s
		sc.touch(id)
		return
	}
	for len(sc.keys) >= sc.cap {
		victim := sc.keys[0]
		sc.vals[victim].Close()
		delete(sc.vals, victim)
		sc.keys = sc.keys[1:]
	}
	sc.keys = append(sc.keys, id)
	sc.vals[id] = s
}

// ensureID fills the default worker identity ("host:pid") exactly
// once; Run and Drain both need it, from different goroutines.
func (w *Worker) ensureID() {
	w.idOnce.Do(func() {
		if w.ID == "" {
			host, _ := os.Hostname()
			w.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
	})
}

// logger returns the worker's structured logger, tagged once with the
// worker ID (discard when Logger is unset). Safe from any goroutine.
func (w *Worker) logger() *slog.Logger {
	w.logOnce.Do(func() {
		w.ensureID()
		l := w.Logger
		if l == nil {
			l = discardLogger()
		}
		w.log = l.With("worker", w.ID)
	})
	return w.log
}

// drainSignal returns the channel Drain closes, creating it on first
// use so Drain may be called before or after Run starts.
func (w *Worker) drainSignal() chan struct{} {
	w.drainMu.Lock()
	defer w.drainMu.Unlock()
	if w.drainCh == nil {
		w.drainCh = make(chan struct{})
	}
	return w.drainCh
}

// Drain asks the worker to leave the fleet cleanly: it finishes the
// tile batch it is executing (completions still count), then
// deregisters from the coordinator — which releases any lease still
// charged to it for immediate re-issue — and Run returns nil. The
// drain is announced to the coordinator right away so no further
// leases are granted meanwhile. Safe to call from a signal handler
// goroutine; subsequent calls are no-ops.
func (w *Worker) Drain(ctx context.Context) {
	w.drainOnce.Do(func() {
		w.ensureID()
		// Announce before tripping the flag: Run leaves (deregisters) as
		// soon as it observes the flag, and a drain announcement landing
		// after the leave would resurrect the worker in the registry.
		if w.Client != nil {
			if err := w.Client.Drain(ctx, w.ID); err != nil && ctx.Err() == nil {
				w.logger().Warn("announcing drain failed", "error", err)
			}
		}
		w.draining.Store(true)
		w.wm.draining.Set(1)
		close(w.drainSignal())
	})
}

// Draining reports whether Drain has been called: the worker is
// finishing held leases and taking no new ones. Health endpoints use
// it to flip readiness before the process exits.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Run leases and executes tiles until ctx is cancelled (returned as
// ctx's error) or the worker is drained (Run returns nil after
// deregistering). A Worker must not be shared across goroutines; run
// several Workers for concurrent tiles.
func (w *Worker) Run(ctx context.Context) error {
	w.ensureID()
	if w.Poll <= 0 {
		w.Poll = 500 * time.Millisecond
	}
	if w.Capacity <= 0 {
		w.Capacity = 1
	}
	if w.CacheEntries > 0 {
		w.sessions.cap = w.CacheEntries
	}
	for {
		if w.draining.Load() {
			// Between batches with nothing in flight: hand back
			// whatever the coordinator still charges to this worker
			// and leave the fleet.
			if released, err := w.Client.Leave(ctx, w.ID); err != nil {
				if ctx.Err() == nil {
					w.logger().Warn("drain: leave failed; leases will expire by TTL", "error", err)
				}
			} else if released > 0 {
				w.logger().Info("drained; abandoned leases released for re-issue", "released", released)
			} else {
				w.logger().Info("drained cleanly")
			}
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, ok, err := w.Client.lease(ctx, LeaseRequest{
			Worker:      w.ID,
			Capacity:    w.Capacity,
			TilesPerSec: w.tilesPerSec(),
		})
		switch {
		case err != nil:
			// Coordinator unreachable (restart, network blip): idle and
			// retry rather than dying.
			if ctx.Err() == nil {
				w.logger().Warn("lease request failed; retrying", "error", err, "retryIn", w.Poll)
			}
			w.idle(ctx)
		case !ok:
			w.idle(ctx)
		default:
			w.execute(ctx, grant)
		}
	}
}

// idle sleeps one poll interval, or until cancellation or a drain
// request (a draining idle worker should leave now, not a poll later).
func (w *Worker) idle(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-w.drainSignal():
	case <-time.After(w.Poll):
	}
}

// execute runs one granted batch of tiles end to end, sequentially.
// Every tile keeps its own lease token: the shared heartbeat renews
// all of them while any tile of the batch is still pending, so tile 3
// stays covered while tiles 1 and 2 compute, and exactly-once
// accounting is per tile exactly as with single grants.
func (w *Worker) execute(ctx context.Context, grant LeaseGrant) {
	tiles := grant.Granted
	if len(tiles) == 0 {
		tiles = []TileGrant{{Token: grant.Token, Tile: grant.Tile}}
	}
	sess, err := w.session(ctx, grant)
	if err != nil {
		// Dataset load failures are treated as transient (coordinator
		// restarting, job finished meanwhile): abandon the leases and
		// let expiry re-issue the tiles — MaxAttempts brakes a
		// persistent cause.
		if ctx.Err() == nil {
			w.logger().Warn("loading dataset failed; abandoning leases", "job", grant.Job, "error", err)
		}
		return
	}
	var opts []trigene.Option
	if grant.Stage != "screen" {
		// Stage-1 grants run ScreenStage1, which takes its own narrow
		// option set; only search grants rebuild the full spec.
		opts, err = grant.Spec.Options()
		if err != nil {
			// The coordinator validated the spec at submit; a rebuild error
			// here is deterministic (version skew), so fail the job loudly.
			w.logger().Error("rebuilding spec failed; failing the job",
				"job", grant.Job, "tile", tiles[0].Tile, "token", tiles[0].Token, "error", err)
			w.failJob(ctx, tiles[0].Token, fmt.Sprintf("rebuilding spec: %v", err))
			return
		}
	}

	hb := w.startHeartbeats(ctx, grant, tiles)
	defer hb.stop()
	for _, tg := range tiles {
		if ctx.Err() != nil {
			// Shutdown: remaining leases expire and re-issue.
			return
		}
		if hb.lost(tg.Token) {
			w.logger().Info("lease lost before start; skipping tile",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
			continue
		}
		ok := false
		switch {
		case grant.Stage == "screen":
			ok = w.executeScreenTile(ctx, hb, grant, tg, sess)
		case grant.Spec.Perm != nil:
			ok = w.executePermTile(ctx, hb, grant, tg, sess, opts)
		default:
			ok = w.executeTile(ctx, hb, grant, tg, sess, opts)
		}
		if !ok {
			return
		}
	}
}

// shardCoords maps a lease-unit index onto the shard the tile's phase
// covers: unscreened jobs shard the whole space (Tile of Tiles), a
// two-phase job's grants shard within their stage.
func shardCoords(grant LeaseGrant, tg TileGrant) (index, count int) {
	if grant.StageCount > 0 {
		return tg.Tile - grant.StageBase, grant.StageCount
	}
	return tg.Tile, grant.Tiles
}

// executeScreenTile runs one stage-1 shard of a screened job — the
// pairwise scan over shard (Tile−StageBase) of StageCount — and posts
// its ScreenScores; the coordinator merges the shards and pins the
// survivor set when the last one lands. Reports false when the whole
// batch should be abandoned.
func (w *Worker) executeScreenTile(ctx context.Context, hb *heartbeats, grant LeaseGrant, tg TileGrant, sess *trigene.Session) bool {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hb.setCurrent(tg.Token, cancel)
	defer hb.clearCurrent()

	index, count := shardCoords(grant, tg)
	opts := []trigene.Option{trigene.WithShard(index, count), trigene.WithMetrics(w.reg)}
	if grant.Spec.Objective != "" {
		opts = append(opts, trigene.WithObjective(grant.Spec.Objective))
	}
	if grant.Spec.Workers != 0 {
		opts = append(opts, trigene.WithWorkers(grant.Spec.Workers))
	}
	seedPairs := 0
	if grant.Spec.Screen != nil {
		seedPairs = grant.Spec.Screen.SeedPairs
	}

	w.logger().Info("executing screen tile",
		"job", grant.Job, "tile", tg.Tile, "shard", index, "shards", count, "token", tg.Token)
	start := time.Now()
	scores, err := sess.ScreenStage1(sctx, seedPairs, opts...)

	switch {
	case err == nil:
		elapsed := time.Since(start)
		w.observe(elapsed)
		w.wm.tiles.Inc()
		w.wm.tileSeconds.Observe(elapsed.Seconds())
		hb.finish(tg.Token)
		accepted, cerr := w.Client.completeScreen(ctx, tg.Token, scores)
		switch {
		case errors.Is(cerr, errLeaseLost):
			w.logger().Info("completed after lease loss; result discarded",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
		case cerr != nil:
			w.logger().Warn("posting screen scores failed",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token, "error", cerr)
		case !accepted:
			w.logger().Info("duplicate result discarded by coordinator",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
		}
	case hb.lost(tg.Token):
		w.logger().Info("lease lost mid-scan; abandoning tile",
			"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
	case ctx.Err() != nil:
		// Shutdown: leave the leases to expire and be re-issued.
	default:
		w.logger().Error("screen tile failed; failing the job",
			"job", grant.Job, "tile", tg.Tile, "token", tg.Token, "error", err)
		w.failJob(ctx, tg.Token, err.Error())
		return false
	}
	return true
}

// executePermTile runs one permutation-range tile of a permutation job:
// the grant's shard of the [0, P) permutation index space, evaluated
// with Session.PermutationSlice and posted back as PermScores. Because
// every permutation seeds its shuffle by absolute index, the range the
// shard covers is bit-exact regardless of which worker runs it or how
// the space was cut. Reports false when the whole batch should be
// abandoned (the job was failed deterministically).
func (w *Worker) executePermTile(ctx context.Context, hb *heartbeats, grant LeaseGrant, tg TileGrant, sess *trigene.Session, opts []trigene.Option) bool {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hb.setCurrent(tg.Token, cancel)
	defer hb.clearCurrent()

	index, count := shardCoords(grant, tg)
	src, serr := sched.Permutations(grant.Spec.Perm.PermutationCount(), count).Shard(sched.Shard{Index: index, Count: count})
	if serr != nil {
		// The coordinator sized the space at submit; a shard error here
		// is deterministic, so fail the job loudly.
		w.logger().Error("sharding permutation space failed; failing the job",
			"job", grant.Job, "tile", tg.Tile, "token", tg.Token, "error", serr)
		w.failJob(ctx, tg.Token, fmt.Sprintf("sharding permutation space: %v", serr))
		return false
	}
	b := src.Bounds()
	offset, n := int(b.Lo), int(b.Hi-b.Lo)

	topts := make([]trigene.Option, 0, len(opts)+1)
	topts = append(topts, opts...)
	topts = append(topts, trigene.WithMetrics(w.reg))

	w.logger().Info("executing perm tile",
		"job", grant.Job, "tile", tg.Tile, "offset", offset, "count", n, "token", tg.Token)
	start := time.Now()
	scores, err := sess.PermutationSlice(sctx, grant.Spec.Perm.SNPs, offset, n, topts...)

	switch {
	case err == nil:
		elapsed := time.Since(start)
		w.observe(elapsed)
		w.wm.tiles.Inc()
		w.wm.tileSeconds.Observe(elapsed.Seconds())
		hb.finish(tg.Token)
		accepted, cerr := w.Client.completePerm(ctx, tg.Token, scores)
		switch {
		case errors.Is(cerr, errLeaseLost):
			w.logger().Info("completed after lease loss; result discarded",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
		case cerr != nil:
			w.logger().Warn("posting perm scores failed",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token, "error", cerr)
		case !accepted:
			w.logger().Info("duplicate result discarded by coordinator",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
		}
	case hb.lost(tg.Token):
		w.logger().Info("lease lost mid-test; abandoning tile",
			"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
	case ctx.Err() != nil:
		// Shutdown: leave the leases to expire and be re-issued.
	default:
		w.logger().Error("perm tile failed; failing the job",
			"job", grant.Job, "tile", tg.Tile, "token", tg.Token, "error", err)
		w.failJob(ctx, tg.Token, err.Error())
		return false
	}
	return true
}

// executeTile runs one tile of a batch; it reports false when the
// whole batch should be abandoned (the job was failed deterministically).
func (w *Worker) executeTile(ctx context.Context, hb *heartbeats, grant LeaseGrant, tg TileGrant, sess *trigene.Session, opts []trigene.Option) bool {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hb.setCurrent(tg.Token, cancel)
	defer hb.clearCurrent()

	index, count := shardCoords(grant, tg)
	topts := make([]trigene.Option, 0, len(opts)+2)
	topts = append(topts, opts...)
	topts = append(topts, trigene.WithShard(index, count))
	topts = append(topts, trigene.WithMetrics(w.reg))

	w.logger().Info("executing tile",
		"job", grant.Job, "tile", tg.Tile, "tiles", grant.Tiles, "token", tg.Token)
	start := time.Now()
	rep, err := sess.Search(sctx, topts...)

	switch {
	case err == nil:
		elapsed := time.Since(start)
		w.observe(elapsed)
		w.wm.tiles.Inc()
		w.wm.tileSeconds.Observe(elapsed.Seconds())
		hb.finish(tg.Token)
		accepted, cerr := w.complete(ctx, tg.Token, rep)
		switch {
		case errors.Is(cerr, errLeaseLost):
			w.logger().Info("completed after lease loss; result discarded",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
		case cerr != nil:
			// The result is lost; the lease expires and the tile is
			// re-issued. Nothing to clean up.
			w.logger().Warn("posting result failed",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token, "error", cerr)
		case !accepted:
			w.logger().Info("duplicate result discarded by coordinator",
				"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
		}
	case hb.lost(tg.Token):
		w.logger().Info("lease lost mid-search; abandoning tile",
			"job", grant.Job, "tile", tg.Tile, "token", tg.Token)
	case ctx.Err() != nil:
		// Shutdown: leave the leases to expire and be re-issued.
	default:
		// A deterministic execution error: retrying elsewhere cannot
		// help, so fail the job loudly (and drop the rest of the batch
		// — its leases die with the job).
		w.logger().Error("tile failed; failing the job",
			"job", grant.Job, "tile", tg.Tile, "token", tg.Token, "error", err)
		w.failJob(ctx, tg.Token, err.Error())
		return false
	}
	return true
}

// heartbeats renews every outstanding lease of one grant batch at
// TTL/3 until stopped. A token whose renewal comes back "gone" is
// marked lost, and if it belongs to the currently running tile, that
// search is cancelled so the worker stops burning cycles on a tile it
// no longer owns.
type heartbeats struct {
	w    *Worker
	done chan struct{}
	quit chan struct{}

	mu        sync.Mutex
	live      map[string]bool
	lostSet   map[string]bool
	curToken  string
	curCancel context.CancelFunc
}

func (w *Worker) startHeartbeats(ctx context.Context, grant LeaseGrant, tiles []TileGrant) *heartbeats {
	hb := &heartbeats{
		w:       w,
		done:    make(chan struct{}),
		quit:    make(chan struct{}),
		live:    make(map[string]bool, len(tiles)),
		lostSet: make(map[string]bool),
	}
	for _, tg := range tiles {
		hb.live[tg.Token] = true
	}
	interval := time.Duration(grant.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(hb.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-hb.quit:
				return
			case <-ticker.C:
				hb.renewAll(ctx)
			}
		}
	}()
	return hb
}

// renewAll heartbeats every live token once.
func (hb *heartbeats) renewAll(ctx context.Context) {
	hb.mu.Lock()
	tokens := make([]string, 0, len(hb.live))
	for tok := range hb.live {
		tokens = append(tokens, tok)
	}
	hb.mu.Unlock()
	for _, tok := range tokens {
		if ctx.Err() != nil {
			return
		}
		if err := hb.w.renewOnce(ctx, tok); err != nil {
			hb.w.wm.leasesLost.Inc()
			hb.mu.Lock()
			delete(hb.live, tok)
			hb.lostSet[tok] = true
			cancel := hb.curCancel
			isCurrent := hb.curToken == tok
			hb.mu.Unlock()
			if isCurrent && cancel != nil {
				cancel()
			}
		}
	}
}

// setCurrent marks the tile now computing, so a lost lease can cancel
// exactly that search.
func (hb *heartbeats) setCurrent(token string, cancel context.CancelFunc) {
	hb.mu.Lock()
	hb.curToken, hb.curCancel = token, cancel
	hb.mu.Unlock()
}

func (hb *heartbeats) clearCurrent() {
	hb.mu.Lock()
	hb.curToken, hb.curCancel = "", nil
	hb.mu.Unlock()
}

// finish stops renewing a completed tile's token.
func (hb *heartbeats) finish(token string) {
	hb.mu.Lock()
	delete(hb.live, token)
	hb.mu.Unlock()
}

// lost reports whether the token's lease is gone.
func (hb *heartbeats) lost(token string) bool {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	return hb.lostSet[token]
}

// stop terminates the heartbeat goroutine and waits for it.
func (hb *heartbeats) stop() {
	close(hb.quit)
	<-hb.done
}

// session returns the cached Session for a grant's dataset. On a cache
// miss it tries the on-disk pack cache, then fetches from the
// coordinator — packed .tpack bytes, decoded without re-binarizing —
// and verifies the loaded dataset's content hash against the grant
// before trusting it.
func (w *Worker) session(ctx context.Context, grant LeaseGrant) (*trigene.Session, error) {
	if s, ok := w.sessions.get(grant.DatasetSHA256); ok {
		w.wm.datasetLoad("memory")
		return s, nil
	}
	if s := w.sessionFromDisk(grant.DatasetSHA256); s != nil {
		w.wm.datasetLoad("disk")
		w.sessions.put(grant.DatasetSHA256, s)
		return s, nil
	}
	raw, err := w.Client.dataset(ctx, grant.Job)
	if err != nil {
		return nil, err
	}
	w.wm.datasetLoad("fetch")
	var s *trigene.Session
	if store.IsPack(raw) {
		s, err = trigene.ReadPack(bytes.NewReader(raw))
	} else {
		// Compatibility: an old coordinator serving the raw binary form.
		var mx *trigene.Matrix
		if mx, err = trigene.ReadBinary(bytes.NewReader(raw)); err == nil {
			s, err = trigene.NewSession(mx)
		}
	}
	if err != nil {
		return nil, err
	}
	// Verify the fetched dataset against the grant: this coordinator
	// names the content hash; an old one hashed the raw bytes, so the
	// binary-compat path accepts that fingerprint too.
	contentMatch := s.DatasetHash() == grant.DatasetSHA256
	if !contentMatch {
		if legacy := fmt.Sprintf("%x", sha256.Sum256(raw)); legacy != grant.DatasetSHA256 {
			// The job behind this ID changed under us (coordinator
			// restart between grant and fetch); abandon rather than
			// compute on the wrong data.
			return nil, fmt.Errorf("dataset fingerprint mismatch: fetched %.12s… (content %.12s…), lease names %.12s…",
				legacy, s.DatasetHash(), grant.DatasetSHA256)
		}
	}
	if contentMatch {
		// Only content-hash-named packs go to disk: a legacy byte-hash
		// key would fail sessionFromDisk's self-check on reload.
		w.persistPack(grant.DatasetSHA256, raw, s)
	}
	w.sessions.put(grant.DatasetSHA256, s)
	return s, nil
}

// sessionFromDisk loads <hash>.tpack from the worker's pack cache,
// discarding entries that fail to load or hash to something else.
func (w *Worker) sessionFromDisk(hash string) *trigene.Session {
	if w.CacheDir == "" {
		return nil
	}
	path := filepath.Join(w.CacheDir, hash+".tpack")
	s, err := trigene.OpenPack(path)
	if err != nil {
		return nil
	}
	if s.DatasetHash() != hash {
		s.Close()
		w.logger().Warn("pack cache entry names the wrong dataset; removing", "path", path)
		os.Remove(path)
		return nil
	}
	w.logger().Info("dataset loaded from pack cache", "dataset", hash)
	return s
}

// persistPack writes a verified dataset into the pack cache (atomic
// rename so concurrent workers sharing the directory never read a
// torn file). Failures only cost the cache, not the tile.
func (w *Worker) persistPack(hash string, raw []byte, s *trigene.Session) {
	if w.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(w.CacheDir, 0o755); err != nil {
		w.logger().Warn("pack cache write failed", "error", err)
		return
	}
	tmp, err := os.CreateTemp(w.CacheDir, hash+".*.tmp")
	if err != nil {
		w.logger().Warn("pack cache write failed", "error", err)
		return
	}
	defer os.Remove(tmp.Name())
	if store.IsPack(raw) {
		_, err = tmp.Write(raw)
	} else {
		err = s.WritePack(tmp)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(w.CacheDir, hash+".tpack"))
	}
	if err != nil {
		w.logger().Warn("pack cache write failed", "error", err)
	}
}

// renewOnce heartbeats the lease, carrying the current capability
// report, and tolerates transient transport errors (only an
// authoritative "gone" loses the lease).
func (w *Worker) renewOnce(ctx context.Context, token string) error {
	err := w.Client.renew(ctx, token, RenewRequest{Worker: w.ID, TilesPerSec: w.tilesPerSec()})
	if errors.Is(err, errLeaseLost) {
		return err
	}
	if err != nil && ctx.Err() == nil {
		w.logger().Warn("renew failed; will retry", "token", token, "error", err)
	}
	return nil
}

// complete posts the tile Report.
func (w *Worker) complete(ctx context.Context, token string, rep *trigene.Report) (bool, error) {
	return w.Client.complete(ctx, token, rep)
}

// failJob reports a deterministic failure.
func (w *Worker) failJob(ctx context.Context, token, msg string) {
	if err := w.Client.fail(ctx, token, msg); err != nil && !errors.Is(err, errLeaseLost) && ctx.Err() == nil {
		w.logger().Warn("reporting job failure failed", "token", token, "error", err)
	}
}
