package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"trigene"
)

// Worker executes leased tiles against one coordinator: it acquires a
// lease, fetches (and caches) the job's dataset as a Session, runs the
// tile as an ordinary sharded Session.Search, heartbeats the lease
// while computing, and posts the tile Report back. One Worker runs one
// tile at a time — the search itself is internally parallel — so a
// machine contributes capacity by running one Worker, not many.
type Worker struct {
	// Client connects to the coordinator.
	Client *Client
	// ID names the worker in coordinator logs (default "host:pid").
	ID string
	// Poll is the idle wait between lease attempts when the
	// coordinator has no work or is unreachable (default 500ms).
	Poll time.Duration
	// Logf receives worker events (default: discard).
	Logf func(format string, args ...any)

	// sessions caches Sessions by dataset fingerprint so a worker
	// binarizes each dataset once, not once per tile. The key is the
	// grant's DatasetSHA256, never the job ID: job IDs restart from j1
	// with the coordinator, and a long-lived worker must not execute a
	// new job against a stale cached dataset (identical datasets across
	// jobs dedupe for free instead).
	sessions sessionCache
}

// sessionCache is a small insertion-ordered cache of per-dataset
// Sessions.
type sessionCache struct {
	keys []string
	vals map[string]*trigene.Session
}

const sessionCacheCap = 4

func (sc *sessionCache) get(id string) (*trigene.Session, bool) {
	s, ok := sc.vals[id]
	return s, ok
}

func (sc *sessionCache) put(id string, s *trigene.Session) {
	if sc.vals == nil {
		sc.vals = make(map[string]*trigene.Session)
	}
	if _, ok := sc.vals[id]; ok {
		sc.vals[id] = s
		return
	}
	if len(sc.keys) >= sessionCacheCap {
		delete(sc.vals, sc.keys[0])
		sc.keys = sc.keys[1:]
	}
	sc.keys = append(sc.keys, id)
	sc.vals[id] = s
}

// Run leases and executes tiles until ctx is cancelled (its only
// normal exit, returned as ctx's error). A Worker must not be shared
// across goroutines; run several Workers for concurrent tiles.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		host, _ := os.Hostname()
		w.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if w.Poll <= 0 {
		w.Poll = 500 * time.Millisecond
	}
	if w.Logf == nil {
		w.Logf = func(string, ...any) {}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, ok, err := w.Client.lease(ctx, w.ID)
		switch {
		case err != nil:
			// Coordinator unreachable (restart, network blip): idle and
			// retry rather than dying.
			if ctx.Err() == nil {
				w.Logf("lease: %v; retrying in %v", err, w.Poll)
			}
			w.idle(ctx)
		case !ok:
			w.idle(ctx)
		default:
			w.execute(ctx, grant)
		}
	}
}

// idle sleeps one poll interval or until cancellation.
func (w *Worker) idle(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(w.Poll):
	}
}

// execute runs one granted tile end to end.
func (w *Worker) execute(ctx context.Context, grant LeaseGrant) {
	sess, err := w.session(ctx, grant)
	if err != nil {
		// Dataset load failures are treated as transient (coordinator
		// restarting, job finished meanwhile): abandon the lease and
		// let expiry re-issue the tile — MaxAttempts brakes a
		// persistent cause.
		if ctx.Err() == nil {
			w.Logf("tile %d of %s: loading dataset: %v; abandoning lease", grant.Tile, grant.Job, err)
		}
		return
	}
	opts, err := grant.Spec.Options()
	if err != nil {
		// The coordinator validated the spec at submit; a rebuild error
		// here is deterministic (version skew), so fail the job loudly.
		w.Logf("tile %d of %s: rebuilding spec: %v; failing the job", grant.Tile, grant.Job, err)
		w.failJob(ctx, grant.Token, fmt.Sprintf("rebuilding spec: %v", err))
		return
	}
	opts = append(opts, trigene.WithShard(grant.Tile, grant.Tiles))

	// Heartbeat while the search runs: renew at TTL/3; a lost lease
	// (expired and re-issued elsewhere) cancels the search so the
	// worker stops burning cycles on a tile it no longer owns.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var leaseLost atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(grant.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-ticker.C:
				if err := w.renewOnce(sctx, grant.Token); err != nil {
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	w.Logf("tile %d/%d of job %s", grant.Tile, grant.Tiles, grant.Job)
	rep, err := sess.Search(sctx, opts...)
	cancel()
	<-hbDone

	switch {
	case err == nil:
		accepted, cerr := w.complete(ctx, grant.Token, rep)
		switch {
		case errors.Is(cerr, errLeaseLost):
			w.Logf("tile %d of %s: completed after lease loss; result discarded", grant.Tile, grant.Job)
		case cerr != nil:
			// The result is lost; the lease expires and the tile is
			// re-issued. Nothing to clean up.
			w.Logf("tile %d of %s: posting result: %v", grant.Tile, grant.Job, cerr)
		case !accepted:
			w.Logf("tile %d of %s: duplicate result discarded by coordinator", grant.Tile, grant.Job)
		}
	case leaseLost.Load():
		w.Logf("tile %d of %s: lease lost mid-search; abandoning", grant.Tile, grant.Job)
	case ctx.Err() != nil:
		// Shutdown: leave the lease to expire and be re-issued.
	default:
		// A deterministic execution error: retrying elsewhere cannot
		// help, so fail the job loudly.
		w.Logf("tile %d of %s: %v; failing the job", grant.Tile, grant.Job, err)
		w.failJob(ctx, grant.Token, err.Error())
	}
}

// session returns the cached Session for a grant's dataset, fetching,
// verifying and binarizing it on first use.
func (w *Worker) session(ctx context.Context, grant LeaseGrant) (*trigene.Session, error) {
	if s, ok := w.sessions.get(grant.DatasetSHA256); ok {
		return s, nil
	}
	raw, err := w.Client.dataset(ctx, grant.Job)
	if err != nil {
		return nil, err
	}
	if sum := fmt.Sprintf("%x", sha256.Sum256(raw)); sum != grant.DatasetSHA256 {
		// The job behind this ID changed under us (coordinator restart
		// between grant and fetch); abandon rather than compute on the
		// wrong data.
		return nil, fmt.Errorf("dataset fingerprint mismatch: fetched %.12s…, lease names %.12s…", sum, grant.DatasetSHA256)
	}
	mx, err := trigene.ReadBinary(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	s, err := trigene.NewSession(mx)
	if err != nil {
		return nil, err
	}
	w.sessions.put(grant.DatasetSHA256, s)
	return s, nil
}

// renewOnce heartbeats the lease, tolerating transient transport
// errors (only an authoritative "gone" loses the lease).
func (w *Worker) renewOnce(ctx context.Context, token string) error {
	err := w.Client.renew(ctx, token)
	if errors.Is(err, errLeaseLost) {
		return err
	}
	if err != nil && ctx.Err() == nil {
		w.Logf("renew: %v (will retry)", err)
	}
	return nil
}

// complete posts the tile Report.
func (w *Worker) complete(ctx context.Context, token string, rep *trigene.Report) (bool, error) {
	return w.Client.complete(ctx, token, rep)
}

// failJob reports a deterministic failure.
func (w *Worker) failJob(ctx context.Context, token, msg string) {
	if err := w.Client.fail(ctx, token, msg); err != nil && !errors.Is(err, errLeaseLost) && ctx.Err() == nil {
		w.Logf("reporting failure: %v", err)
	}
}
