package cluster

import (
	"trigene/internal/obs"
)

// coordMetrics is the coordinator's instrumentation handle. The zero
// value (no registry attached) makes every hook a no-op, so the
// request handlers never branch on whether metrics are enabled.
type coordMetrics struct {
	submitted     *obs.Counter
	finished      map[string]*obs.Counter // by terminal job state
	leasesGranted *obs.Counter
	leasesRenewed *obs.Counter
	leasesExpired *obs.Counter // renewals rejected: the lease lapsed or was superseded
	reissued      *obs.Counter // grants with Attempt > 1
	released      *obs.Counter // explicit releases (worker leave)
	completed     *obs.Counter
	discarded     *obs.Counter // duplicate/stale completions
}

// Instrument registers the coordinator's metric series on reg and
// installs the live collectors: job and lease counters on the request
// paths, plus queue-depth and per-worker staleness gauges computed
// under the coordinator's lock at scrape time. Call it once, before
// serving traffic (after Recover on durable coordinators, so replay
// does not count as live traffic). A nil registry is a no-op.
func (c *Coordinator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.cm.submitted = reg.Counter("trigene_coord_jobs_submitted_total",
		"Jobs accepted (journaled and acknowledged) by the coordinator.")
	c.cm.finished = map[string]*obs.Counter{
		StateDone:      reg.Counter("trigene_coord_jobs_finished_total", "Jobs that left the running state, by outcome.", obs.L("state", StateDone)),
		StateFailed:    reg.Counter("trigene_coord_jobs_finished_total", "Jobs that left the running state, by outcome.", obs.L("state", StateFailed)),
		StateCancelled: reg.Counter("trigene_coord_jobs_finished_total", "Jobs that left the running state, by outcome.", obs.L("state", StateCancelled)),
	}
	c.cm.leasesGranted = reg.Counter("trigene_coord_leases_granted_total",
		"Tile leases granted to workers.")
	c.cm.leasesRenewed = reg.Counter("trigene_coord_leases_renewed_total",
		"Lease heartbeats accepted.")
	c.cm.leasesExpired = reg.Counter("trigene_coord_leases_expired_total",
		"Lease heartbeats rejected because the lease lapsed or was superseded.")
	c.cm.reissued = reg.Counter("trigene_coord_leases_reissued_total",
		"Tile leases granted for a second or later attempt.")
	c.cm.released = reg.Counter("trigene_coord_leases_released_total",
		"Leases released early by a departing worker.")
	c.cm.completed = reg.Counter("trigene_coord_tiles_completed_total",
		"Tile completions accepted into job results.")
	c.cm.discarded = reg.Counter("trigene_coord_completions_discarded_total",
		"Tile completions discarded as duplicate or stale.")
	reg.GaugeFunc("trigene_coord_jobs_running",
		"Jobs currently in the running state.",
		func() []obs.Sample {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, j := range c.jobs {
				if j.state == StateRunning {
					n++
				}
			}
			return []obs.Sample{{Value: float64(n)}}
		})
	reg.GaugeFunc("trigene_coord_queue_tiles",
		"Unfinished tiles across running jobs (the coordinator's queue depth).",
		func() []obs.Sample {
			c.mu.Lock()
			defer c.mu.Unlock()
			var pending int64
			for _, j := range c.jobs {
				if j.state == StateRunning {
					pending += int64(j.tiles - j.leases.Done())
				}
			}
			return []obs.Sample{{Value: float64(pending)}}
		})
	c.mu.Lock()
	if c.log != nil {
		c.log.Instrument(reg)
	}
	c.mu.Unlock()
	reg.GaugeFunc("trigene_coord_worker_staleness_seconds",
		"Seconds since each registered worker was last seen.",
		func() []obs.Sample {
			now := c.cfg.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			out := make([]obs.Sample, 0, len(c.workers))
			for id, wi := range c.workers {
				out = append(out, obs.Sample{
					Value:  now.Sub(wi.lastSeen).Seconds(),
					Labels: []obs.Label{obs.L("worker", id)},
				})
			}
			return out
		})
}

// finishCount records a job leaving the running state.
func (cm *coordMetrics) finishCount(state string) {
	if cm.finished != nil {
		cm.finished[state].Inc()
	}
}

// workerMetrics is the worker's instrumentation handle; zero value =
// no-op, like coordMetrics.
type workerMetrics struct {
	datasetLoads map[string]*obs.Counter // by source: memory, disk, fetch
	tiles        *obs.Counter
	tileSeconds  *obs.Histogram
	leasesLost   *obs.Counter
	draining     *obs.Gauge
}

// datasetLoad records where one tile's dataset came from.
func (wm *workerMetrics) datasetLoad(source string) {
	if wm.datasetLoads != nil {
		wm.datasetLoads[source].Inc()
	}
}

// Instrument registers the worker's metric series on reg. The same
// registry is handed to every tile's Session.Search (WithMetrics), so
// a worker's /metrics endpoint exposes the engine and store series
// alongside its own. Call before Run; a nil registry is a no-op.
func (w *Worker) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.reg = reg
	const loadHelp = "Dataset loads per tile batch, by source: the in-memory session LRU, the on-disk pack cache, or a coordinator fetch."
	w.wm.datasetLoads = map[string]*obs.Counter{
		"memory": reg.Counter("trigene_worker_dataset_loads_total", loadHelp, obs.L("source", "memory")),
		"disk":   reg.Counter("trigene_worker_dataset_loads_total", loadHelp, obs.L("source", "disk")),
		"fetch":  reg.Counter("trigene_worker_dataset_loads_total", loadHelp, obs.L("source", "fetch")),
	}
	w.wm.tiles = reg.Counter("trigene_worker_tiles_executed_total",
		"Tiles executed to completion (whether or not the result was accepted).")
	w.wm.tileSeconds = reg.Histogram("trigene_worker_tile_seconds",
		"Wall time of one tile's search.", obs.DurationBuckets)
	w.wm.leasesLost = reg.Counter("trigene_worker_leases_lost_total",
		"Leases lost to expiry or re-issue while this worker held them.")
	w.wm.draining = reg.Gauge("trigene_worker_draining",
		"1 while the worker is draining (finishing held leases, taking no new ones).")
	reg.GaugeFunc("trigene_worker_tiles_per_sec",
		"EWMA of this worker's measured tile throughput.",
		func() []obs.Sample {
			return []obs.Sample{{Value: w.tilesPerSec()}}
		})
}
