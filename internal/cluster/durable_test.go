package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trigene"
	"trigene/internal/sched"
)

// coordinatorProxy fronts a durable coordinator with a stable URL so a
// test can crash and replace the backend without disturbing clients or
// workers (which see the outage as transient transport errors, exactly
// like a real restart).
type coordinatorProxy struct {
	mu sync.RWMutex
	co *Coordinator
}

func (p *coordinatorProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The read lock is held for the whole request, so crash() (write
	// lock) doubles as a barrier: once it returns, no request is still
	// executing against the abandoned coordinator.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.co == nil {
		http.Error(w, "coordinator down", http.StatusServiceUnavailable)
		return
	}
	p.co.ServeHTTP(w, r)
}

// crash abandons the current coordinator WITHOUT Close — the SIGKILL
// analog: journal records still sitting in the append buffer die with
// the process, only fsynced state survives on disk.
func (p *coordinatorProxy) crash() {
	p.mu.Lock()
	p.co = nil
	p.mu.Unlock()
}

// resume recovers a fresh coordinator from cfg.StateDir and routes
// traffic to it.
func (p *coordinatorProxy) resume(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	co, err := Recover(cfg)
	if err != nil {
		t.Fatalf("recovering from %s: %v", cfg.StateDir, err)
	}
	p.mu.Lock()
	p.co = co
	p.mu.Unlock()
	return co
}

// newDurableCluster recovers a coordinator from cfg.StateDir behind a
// crashable proxy and returns a fast-polling client for it.
func newDurableCluster(t *testing.T, cfg Config) (*Client, *coordinatorProxy, *Coordinator) {
	t.Helper()
	p := &coordinatorProxy{}
	co := p.resume(t, cfg)
	srv := httptest.NewServer(p)
	t.Cleanup(func() {
		srv.Close()
		p.mu.Lock()
		if p.co != nil {
			p.co.Close()
		}
		p.mu.Unlock()
	})
	cl := NewClient(srv.URL)
	cl.Poll = 5 * time.Millisecond
	return cl, p, co
}

// completeTile computes one granted tile exactly as a worker would —
// the grant's spec plus the tile shard — and posts the result.
func completeTile(t *testing.T, ctx context.Context, cl *Client, sess *trigene.Session, g LeaseGrant, tg TileGrant) bool {
	t.Helper()
	opts, err := g.Spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Search(ctx, append(opts, trigene.WithShard(tg.Tile, g.Tiles))...)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := cl.complete(ctx, tg.Token, rep)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// TestDurableRecoveryMidJob drives a crash deterministically with an
// injected clock: a job with one completed tile, one live lease and a
// queued second job is SIGKILLed and recovered. The completed tile
// stays done (its duplicate is discarded), the surviving worker renews
// and completes under its pre-crash token, the remaining tiles issue
// fresh, the queued job re-queues, and both merged Reports are
// bit-exact with uninterrupted runs — across a second restart too.
func TestDurableRecoveryMidJob(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var mu sync.Mutex
	now := time.Unix(2000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	ttl := 10 * time.Second
	cfg := Config{LeaseTTL: ttl, Now: clock, StateDir: t.TempDir()}
	cl, proxy, _ := newDurableCluster(t, cfg)

	spec := trigene.SearchSpec{TopK: 4, Workers: 1}
	const tiles = 4
	id, err := cl.Submit(ctx, mx, spec, tiles, "crashy")
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(ctx, mx, trigene.SearchSpec{Order: 2, TopK: 3, Workers: 1}, 2, "queued")
	if err != nil {
		t.Fatal(err)
	}

	// survivor completes one tile (fsynced, durable); doomed holds a
	// live lease the completion's sync also made durable.
	gs, ok, err := cl.lease(ctx, LeaseRequest{Worker: "survivor"})
	if err != nil || !ok {
		t.Fatalf("survivor lease: ok=%v err=%v", ok, err)
	}
	gd, ok, err := cl.lease(ctx, LeaseRequest{Worker: "doomed"})
	if err != nil || !ok {
		t.Fatalf("doomed lease: ok=%v err=%v", ok, err)
	}
	if !completeTile(t, ctx, cl, sess, gs, gs.Granted[0]) {
		t.Fatal("survivor completion discarded")
	}

	proxy.crash()
	co2 := proxy.resume(t, cfg)

	// The recovered job: the completed tile survived, the queued job is
	// back in line, and the running job's dataset reloaded from the
	// pack store bit-exactly.
	st, err := cl.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.Done != 1 || st.Tiles != tiles || st.Leased != 1 {
		t.Fatalf("recovered status: %+v", st)
	}
	if st, err := cl.Status(ctx, queued); err != nil || st.State != StateRunning || st.Done != 0 {
		t.Fatalf("queued job after recovery: %+v, %v", st, err)
	}
	raw, err := cl.dataset(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := trigene.ReadPack(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.DatasetHash() != sess.DatasetHash() {
		t.Fatalf("recovered dataset hash %.12s…, want %.12s…", reloaded.DatasetHash(), sess.DatasetHash())
	}
	if _, err := os.Stat(co2.packPath(sess.DatasetHash())); err != nil {
		t.Fatalf("running job's pack missing after recovery: %v", err)
	}

	// Exactly-once across the restart: re-posting the already-counted
	// tile is discarded, not re-merged.
	if acc, err := cl.complete(ctx, gs.Token, &trigene.Report{}); err != nil || acc {
		t.Fatalf("duplicate completion after recovery: accepted=%v err=%v", acc, err)
	}
	// The surviving holder's lease was restored: it renews and
	// completes under the pre-crash token.
	if err := cl.renew(ctx, gd.Token, RenewRequest{Worker: "doomed"}); err != nil {
		t.Fatalf("renewing restored lease: %v", err)
	}
	if !completeTile(t, ctx, cl, sess, gd, gd.Granted[0]) {
		t.Fatal("restored-lease completion discarded")
	}

	// The remaining two tiles issue fresh; the queued job follows FIFO
	// (nothing from it until the first job is fully leased).
	var fromFirst, fromSecond int
	for {
		g, ok, err := cl.lease(ctx, LeaseRequest{Worker: "survivor"})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		switch g.Job {
		case id:
			if fromSecond > 0 {
				t.Fatalf("FIFO violated: job %s granted after %s started", id, queued)
			}
			fromFirst += len(g.Granted)
		case queued:
			fromSecond += len(g.Granted)
		default:
			t.Fatalf("grant from unexpected job %s", g.Job)
		}
		for _, tg := range g.Granted {
			if !completeTile(t, ctx, cl, sess, g, tg) {
				t.Fatalf("tile %d of %s discarded", tg.Tile, g.Job)
			}
		}
	}
	if fromFirst != tiles-2 || fromSecond != 2 {
		t.Errorf("post-recovery grants: %d from %s (want %d) and %d from %s (want 2)",
			fromFirst, id, tiles-2, fromSecond, queued)
	}

	remote, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "recovered job", remote, local)

	remoteQ, err := cl.Wait(ctx, queued)
	if err != nil {
		t.Fatal(err)
	}
	localQ, err := sess.Search(ctx, trigene.WithOrder(2), trigene.WithTopK(3), trigene.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "re-queued job", remoteQ, localQ)

	// Finished results are durable too: a second crash loses nothing,
	// and with no running jobs the recovered pack store is empty.
	proxy.crash()
	proxy.resume(t, cfg)
	again, err := cl.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "result after second restart", again, local)
	if entries, err := os.ReadDir(filepath.Join(cfg.StateDir, "packs")); err == nil && len(entries) != 0 {
		t.Errorf("pack store holds %d orphans after all jobs finished", len(entries))
	}
}

// TestDurableRecoveryBackendParity is the acceptance gate for
// durability: for every backend the shard-parity tests cover, a job
// with one pre-crash completed tile finishes after a SIGKILL and
// restart with a merged Report bit-exact with the uninterrupted local
// run — the journaled tile report round-trips exactly.
func TestDurableRecoveryBackendParity(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cases := []struct {
		name string
		spec trigene.SearchSpec
	}{
		{"cpu/order2", trigene.SearchSpec{Order: 2, TopK: 6, Workers: 2}},
		{"cpu/order3", trigene.SearchSpec{Order: 3, TopK: 6, Workers: 2}},
		{"cpu/order4", trigene.SearchSpec{Order: 4, TopK: 6, Workers: 2}},
		{"cpu/order3-V1", trigene.SearchSpec{Order: 3, TopK: 6, Approach: "V1", Workers: 2}},
		{"cpu/order3-V4", trigene.SearchSpec{Order: 3, TopK: 6, Approach: "V4", Workers: 2}},
		{"gpusim/order3", trigene.SearchSpec{Backend: "gpusim:GN1", TopK: 6}},
		{"baseline/order3", trigene.SearchSpec{Backend: "baseline", TopK: 6, Workers: 2}},
		{"hetero/order3", trigene.SearchSpec{Backend: "hetero", TopK: 6, Workers: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{LeaseTTL: 10 * time.Second, StateDir: t.TempDir()}
			cl, proxy, _ := newDurableCluster(t, cfg)
			const tiles = 3
			id, err := cl.Submit(ctx, mx, tc.spec, tiles, tc.name)
			if err != nil {
				t.Fatal(err)
			}
			g, ok, err := cl.lease(ctx, LeaseRequest{Worker: "pre"})
			if err != nil || !ok {
				t.Fatalf("pre-crash lease: ok=%v err=%v", ok, err)
			}
			doneTile := g.Granted[0].Tile
			if !completeTile(t, ctx, cl, sess, g, g.Granted[0]) {
				t.Fatal("pre-crash completion discarded")
			}

			proxy.crash()
			proxy.resume(t, cfg)

			for {
				g, ok, err := cl.lease(ctx, LeaseRequest{Worker: "post"})
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				for _, tg := range g.Granted {
					if tg.Tile == doneTile {
						t.Fatalf("completed tile %d re-issued after recovery", tg.Tile)
					}
					completeTile(t, ctx, cl, sess, g, tg)
				}
			}
			remote, err := cl.Wait(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			opts, err := tc.spec.Options()
			if err != nil {
				t.Fatal(err)
			}
			local, err := sess.Search(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, tc.name, remote, local)
		})
	}
}

// TestDurableCrashWithWorkers is the integration path: live workers,
// real clock, coordinator SIGKILLed mid-job and recovered while the
// workers keep hammering the same URL. The job converges to the
// bit-exact Report, and no tile completed before the crash is ever
// granted again.
func TestDurableCrashWithWorkers(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 120, Samples: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := trigene.SearchSpec{TopK: 5, Workers: 1}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{LeaseTTL: 250 * time.Millisecond, StateDir: t.TempDir()}
	cl, proxy, co1 := newDurableCluster(t, cfg)
	startWorkers(t, cl, 2)
	const tiles = 4
	id, err := cl.Submit(ctx, mx, spec, tiles, "crash-live")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no tile completed before the crash window")
		}
		time.Sleep(time.Millisecond)
	}

	proxy.crash()
	// crash() barriers on in-flight requests, so co1 is quiescent: read
	// which tiles its clients saw acknowledged (every acked completion
	// was fsynced).
	ackedDone := map[int]int{} // tile -> attempts
	co1.mu.Lock()
	if j := co1.jobs[id]; j != nil {
		_, states := j.leases.Export()
		for tile, ts := range states {
			if ts.State == sched.TileStateDone {
				ackedDone[tile] = ts.Attempts
			}
		}
	}
	co1.mu.Unlock()
	if len(ackedDone) == 0 {
		t.Fatal("status saw a completed tile but the lease table has none")
	}

	co2 := proxy.resume(t, cfg)
	co2.mu.Lock()
	j := co2.jobs[id]
	if j == nil {
		co2.mu.Unlock()
		t.Fatal("job lost in recovery")
	}
	_, states := j.leases.Export()
	co2.mu.Unlock()
	for tile, attempts := range ackedDone {
		if states[tile].State != sched.TileStateDone {
			t.Errorf("tile %d was acked done before the crash but recovered %v", tile, states[tile].State)
		}
		if states[tile].Attempts != attempts {
			t.Errorf("tile %d recovered with %d attempts, want %d", tile, states[tile].Attempts, attempts)
		}
	}

	remote, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "crash with live workers", remote, local)

	// Completed-before-crash tiles were never re-executed: their
	// attempt counters are untouched by the post-crash run.
	co2.mu.Lock()
	j = co2.jobs[id]
	_, final := j.leases.Export()
	co2.mu.Unlock()
	for tile, attempts := range ackedDone {
		if final[tile].Attempts != attempts {
			t.Errorf("tile %d re-granted after recovery: %d attempts, want %d", tile, final[tile].Attempts, attempts)
		}
	}
}

// TestDurableSnapshotCompactionAndRetention: snapshots bound the
// journal (generation advances), recovery reproduces the retention
// eviction exactly, and retained results stay bit-exact.
func TestDurableSnapshotCompactionAndRetention(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cfg := Config{LeaseTTL: 5 * time.Second, Retain: 2, SnapshotEvery: 4, StateDir: t.TempDir()}
	cl, proxy, _ := newDurableCluster(t, cfg)
	startWorkers(t, cl, 2)

	spec := trigene.SearchSpec{TopK: 3, Workers: 1}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := cl.Submit(ctx, mx, spec, 2, "ret")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	proxy.crash()
	co2 := proxy.resume(t, cfg)
	if co2.log.Generation() == 0 {
		t.Error("journal never compacted despite SnapshotEvery=4")
	}
	if matches, _ := filepath.Glob(filepath.Join(cfg.StateDir, "journal-*.wal")); len(matches) != 1 {
		t.Errorf("journal files after compaction: %v", matches)
	}
	if _, err := os.Stat(filepath.Join(cfg.StateDir, "snapshot.snap")); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}

	jobs, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want the 2 retained", len(jobs))
	}
	if _, err := cl.Status(ctx, ids[0]); err == nil {
		t.Error("evicted job resurrected by recovery")
	}
	local, err := sess.Search(ctx, trigene.WithTopK(3), trigene.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		rep, err := cl.Result(ctx, id)
		if err != nil {
			t.Fatalf("retained job %s lost its result: %v", id, err)
		}
		reportsEqual(t, "retained "+id, rep, local)
	}

	// A fresh submission on the recovered coordinator must not reuse a
	// replayed job ID.
	id, err := cl.Submit(ctx, mx, spec, 2, "after")
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if id == old {
			t.Fatalf("recovered coordinator re-minted job ID %s", id)
		}
	}
	if _, err := cl.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
}

// TestDurableDeadlineSurvivesRestart: a job's wall-clock budget is
// measured from its durable submission instant, so a restart does not
// reset the deadline.
func TestDurableDeadlineSurvivesRestart(t *testing.T) {
	mx := plantedMatrix(t)
	ctx := context.Background()

	var mu sync.Mutex
	now := time.Unix(3000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	cfg := Config{LeaseTTL: 10 * time.Second, Now: clock, StateDir: t.TempDir()}
	cl, proxy, _ := newDurableCluster(t, cfg)
	id, err := cl.Submit(ctx, mx, trigene.SearchSpec{TopK: 2, DeadlineMillis: 5000}, 2, "budgeted")
	if err != nil {
		t.Fatal(err)
	}

	proxy.crash()
	mu.Lock()
	now = now.Add(6 * time.Second)
	mu.Unlock()
	proxy.resume(t, cfg)

	st, err := cl.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("state after restart past deadline = %q, want failed", st.State)
	}
}
