package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"trigene"
	"trigene/internal/sched"
	"trigene/internal/store"
	"trigene/internal/wal"
)

// discardLogger is the default when no Logger is configured.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Config tunes a Coordinator. The zero value is usable.
type Config struct {
	// LeaseTTL is how long a granted tile stays covered without a
	// heartbeat renewal (default 15s). Workers renew at TTL/3, so the
	// TTL bounds how stale a dead worker's tile can get before
	// re-issue.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one tile is granted before the
	// job is declared failed — the brake against a tile that kills
	// every worker that touches it (default 5).
	MaxAttempts int
	// Retain is how many finished jobs (done, failed or cancelled) keep
	// their status and merged result before the oldest are evicted
	// (default 64).
	Retain int
	// Logger receives coordinator events as structured records; every
	// line carries the IDs it concerns (job, worker, tile) as
	// attributes. Default: discard.
	Logger *slog.Logger
	// Now supplies the clock (default time.Now); tests inject it.
	Now func() time.Time
	// StateDir is the durability root used by Recover: a write-ahead
	// journal plus snapshots under it make every acknowledged state
	// transition survive a coordinator crash. NewCoordinator ignores it
	// (in-memory coordinator); Recover requires it.
	StateDir string
	// SnapshotEvery is how many journal records accumulate before the
	// full state is compacted into a snapshot and the journal reset
	// (default 256). Only meaningful with StateDir.
	SnapshotEvery int
}

// Coordinator owns the job queue and the lease book of a cluster. It
// is an http.Handler serving the /v1 wire contract. State lives in
// memory; a Coordinator built by Recover additionally journals every
// state transition to a write-ahead log (see durable.go), so a
// restart replays to exactly the acknowledged state.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order; finished jobs stay until evicted
	seq     int
	workers map[string]*workerInfo

	// log is the write-ahead journal (nil for an in-memory
	// coordinator); replaying suppresses journaling while recovery
	// re-applies the log to itself.
	log       *wal.Log
	replaying bool

	// cm holds the metric hooks installed by Instrument (zero value:
	// every hook is a no-op).
	cm coordMetrics
}

// workerInfo is one worker's capability record, built from its lease
// requests (registration) and heartbeats.
type workerInfo struct {
	id          string
	capacity    float64 // advertised relative weight (default 1)
	tilesPerSec float64 // worker-measured throughput (0 = none yet)
	granted     int
	completed   int
	lastSeen    time.Time
	draining    bool // announced drain: no new leases for this worker
}

// maxLeaseBatch caps how many tiles one grant bundles: enough for a
// fast worker to stay busy between round trips, small enough that a
// dead worker's batch re-issues quickly.
const maxLeaseBatch = 4

// workerRetention bounds the capability registry: a worker unseen
// this long is deleted (worker IDs default to host:pid, so restarts
// mint new entries; without eviction a long-lived coordinator leaks).
const workerRetention = time.Hour

// staleAfter is how long a silent worker keeps influencing weighted
// lease sizing. A live worker is never silent this long: it polls
// every Poll while idle and heartbeats at TTL/3 while computing.
func (c *Coordinator) staleAfter() time.Duration {
	return 4 * c.cfg.LeaseTTL
}

// weight returns the worker's lease weight in the given currency.
func (w *workerInfo) weight(measured bool) float64 {
	if measured {
		return w.tilesPerSec
	}
	return w.capacity
}

// job is the coordinator-side state of one search.
type job struct {
	id, name string
	spec     trigene.SearchSpec
	tiles    int
	state    string
	err      string

	dataset       []byte // packed .tpack bytes; released when the job leaves StateRunning
	datasetSHA    string // dataset content hash (Session.DatasetHash)
	snps, samples int

	leases  *sched.LeaseTable
	reports []*trigene.Report  // one slot per tile
	grantee map[int]granteeRef // tile -> holder of its current lease
	result  *trigene.Report

	// Two-phase screened jobs (spec.Screen set, survivors not pinned):
	// lease units [0, screenTiles) are the stage-1 pair-scan shards,
	// units [screenTiles, tiles) the stage-2 search tiles. Stage-2 units
	// are granted only once every stage-1 unit completed and the merged
	// scores were pinned into stage2 (the spec stage-2 grants carry,
	// with Survivors/Seeds filled). screenTiles is 0 for unscreened
	// jobs, and everything below is nil/zero then.
	screenTiles int
	screens     []*trigene.ScreenScores // one slot per stage-1 tile
	stage2      *trigene.SearchSpec
	screenInfo  *trigene.ScreenInfo
	pinnedAt    time.Time

	// Permutation jobs (spec.Perm set): tiles shard the permutation
	// index range and complete with PermScores instead of Reports.
	perms []*trigene.PermScores // one slot per tile

	submitted time.Time
	finished  time.Time
}

// screened reports whether the job runs the two-phase screen protocol.
func (j *job) screened() bool { return j.screenTiles > 0 }

// perm reports whether the job is a permutation test.
func (j *job) perm() bool { return j.spec.Perm != nil }

// screenDone reports whether every stage-1 shard completed.
func (j *job) screenDone() bool { return j.leases.DoneBelow(j.screenTiles) == j.screenTiles }

// acquire grants the next free lease unit, holding stage-2 units back
// while a screened job's stage-1 phase is still open (un-pinned).
func (j *job) acquire(now time.Time, ttl time.Duration) (sched.TileLease, bool) {
	if j.screened() && j.stage2 == nil {
		return j.leases.AcquireBelow(now, ttl, j.screenTiles)
	}
	return j.leases.Acquire(now, ttl)
}

// granteeRef names the holder of one tile's current lease — worker ID
// for accounting, grant seq so a draining worker's leases can be
// released under exactly the coordinates it holds.
type granteeRef struct {
	worker string
	seq    uint64
}

// NewCoordinator returns a Coordinator serving the /v1 wire contract.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 256
	}
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Coordinator{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		workers: make(map[string]*workerInfo),
		mux:     http.NewServeMux(),
	}
	c.mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	c.mux.HandleFunc("POST /v1/workers/{id}/drain", c.handleDrain)
	c.mux.HandleFunc("POST /v1/workers/{id}/leave", c.handleLeave)
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs", c.handleList)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	c.mux.HandleFunc("GET /v1/jobs/{id}/dataset", c.handleDataset)
	c.mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	c.mux.HandleFunc("POST /v1/jobs/{id}/cancel", c.handleCancel)
	c.mux.HandleFunc("POST /v1/lease", c.handleLease)
	c.mux.HandleFunc("POST /v1/lease/{token}/renew", c.handleRenew)
	c.mux.HandleFunc("POST /v1/lease/{token}/done", c.handleComplete)
	c.mux.HandleFunc("POST /v1/lease/{token}/fail", c.handleFail)
	return c
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// LeaseTTL returns the configured lease duration.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding submit request: %v", err)
		return
	}
	if req.Tiles < 1 {
		writeErr(w, http.StatusBadRequest, "tiles must be ≥ 1, got %d", req.Tiles)
		return
	}
	// Fail configuration and dataset errors at the door, not on the
	// first worker.
	if _, err := req.Spec.Options(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	if req.Spec.MaxWorkers < 0 || req.Spec.DeadlineMillis < 0 {
		writeErr(w, http.StatusBadRequest, "invalid spec: maxWorkers and deadlineMillis must be ≥ 0")
		return
	}
	if req.ScreenTiles < 0 {
		writeErr(w, http.StatusBadRequest, "screenTiles must be ≥ 0, got %d", req.ScreenTiles)
		return
	}
	// Accept the dataset as trigene binary or pre-encoded .tpack, and
	// hold (and serve) it packed either way: the coordinator encodes a
	// binary submission exactly once, so every worker that fetches the
	// job starts from the shared encodings instead of re-binarizing.
	var sess *trigene.Session
	var packed []byte
	if store.IsPack(req.Dataset) {
		s, err := trigene.ReadPack(bytes.NewReader(req.Dataset))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid dataset: %v", err)
			return
		}
		sess, packed = s, req.Dataset
	} else {
		mx, err := trigene.ReadBinary(bytes.NewReader(req.Dataset))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid dataset: %v", err)
			return
		}
		s, err := trigene.NewSession(mx)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid dataset: %v", err)
			return
		}
		var buf bytes.Buffer
		if err := s.WritePack(&buf); err != nil {
			writeErr(w, http.StatusInternalServerError, "packing dataset: %v", err)
			return
		}
		sess, packed = s, buf.Bytes()
	}

	// Permutation submissions are validated loudly at the door: the
	// candidates against the dataset, and the search-shaping fields —
	// which a permutation job cannot honor — rejected rather than
	// silently ignored. Tiles shard the permutation index range, so
	// there must be at least one permutation per tile.
	if pm := req.Spec.Perm; pm != nil {
		if err := pm.Validate(sess.SNPs()); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid spec: %v", err)
			return
		}
		if req.Spec.Screen != nil || req.Spec.AutoTune || req.Spec.EnergyBudgetWatts > 0 ||
			req.Spec.Approach != "" || req.Spec.Order != 0 || req.Spec.TopK > 1 {
			writeErr(w, http.StatusBadRequest,
				"invalid spec: permutation jobs do not combine with screen/autoTune/approach/order/topK")
			return
		}
		if perms := pm.PermutationCount(); req.Tiles > perms {
			writeErr(w, http.StatusBadRequest,
				"tiles (%d) must not exceed the permutation count (%d)", req.Tiles, perms)
			return
		}
	}

	// Screened submissions are validated loudly at the door — negative
	// budgets, survivors exceeding the dataset's SNP count, malformed
	// seeds — and sized as two phases: screenTiles stage-1 pair-scan
	// shards ahead of the req.Tiles stage-2 search tiles. A spec with
	// pinned survivors skips the stage-1 phase (each tile runs the
	// pinned screened search directly).
	screenTiles := 0
	if sc := req.Spec.Screen; sc != nil {
		if err := sc.Validate(sess.SNPs()); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid spec: %v", err)
			return
		}
		if len(sc.Survivors) == 0 {
			if sc.MaxSurvivors == 0 {
				writeErr(w, http.StatusBadRequest,
					"invalid spec: cluster screens need an explicit survivor budget (maxSurvivors); the planner's time budget is a single-host notion")
				return
			}
			screenTiles = req.ScreenTiles
			if screenTiles == 0 {
				screenTiles = req.Tiles
			}
		}
	}

	c.mu.Lock()
	c.seq++
	units := req.Tiles + screenTiles
	j := &job{
		id:          "j" + strconv.Itoa(c.seq),
		name:        req.Name,
		spec:        req.Spec,
		tiles:       units,
		state:       StateRunning,
		dataset:     packed,
		datasetSHA:  sess.DatasetHash(),
		snps:        sess.SNPs(),
		samples:     sess.Samples(),
		leases:      sched.NewLeaseTable(units),
		reports:     make([]*trigene.Report, units),
		grantee:     make(map[int]granteeRef),
		screenTiles: screenTiles,
		submitted:   c.cfg.Now(),
	}
	if screenTiles > 0 {
		j.screens = make([]*trigene.ScreenScores, screenTiles)
	}
	if j.perm() {
		j.perms = make([]*trigene.PermScores, units)
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	// The submission must be durable before it is acknowledged: the
	// dataset goes to the pack store and the submit record is fsynced.
	// On failure the job is rolled back — an unacknowledged submission
	// must not run.
	if err := c.journalSubmitLocked(j); err != nil {
		delete(c.jobs, j.id)
		c.order = c.order[:len(c.order)-1]
		c.seq--
		c.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, "journaling submission: %v", err)
		return
	}
	c.mu.Unlock()
	c.cm.submitted.Inc()
	c.cfg.Logger.Info("job submitted",
		"job", j.id, "name", j.name, "tiles", j.tiles,
		"snps", j.snps, "samples", j.samples, "backend", req.Spec.Backend)
	writeJSON(w, http.StatusCreated, SubmitResponse{ID: j.id, Tiles: j.tiles})
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	now := c.cfg.Now()
	c.mu.Lock()
	// Deadlines are enforced lazily, on observation; iterate a copy
	// because a tripped deadline can evict finished jobs from c.order.
	order := append([]string(nil), c.order...)
	list := JobList{Jobs: make([]JobStatus, 0, len(order))}
	for _, id := range order {
		j := c.jobs[id]
		if j == nil {
			continue
		}
		c.enforceDeadlineLocked(j, now)
	}
	for _, id := range c.order {
		list.Jobs = append(list.Jobs, c.jobs[id].status(now))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := c.cfg.Now()
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	if !ok {
		c.mu.Unlock()
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	c.enforceDeadlineLocked(j, now)
	st := j.status(now)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleDataset(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	var data []byte
	if ok {
		data = j.dataset
	}
	c.mu.Unlock()
	switch {
	case !ok:
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	case data == nil:
		writeErr(w, http.StatusGone, "job %s is finished; its dataset is released", r.PathValue("id"))
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = j.status(c.cfg.Now())
	}
	result := (*trigene.Report)(nil)
	if ok {
		result = j.result
	}
	c.mu.Unlock()
	switch {
	case !ok:
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	case st.State == StateRunning:
		writeErr(w, http.StatusConflict, "job %s still running: %d/%d tiles done", st.ID, st.Done, st.Tiles)
	case result == nil:
		writeErr(w, http.StatusGone, "job %s %s: %s", st.ID, st.State, st.Error)
	default:
		writeJSON(w, http.StatusOK, result)
	}
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	if ok && j.state == StateRunning {
		c.finishLocked(j, StateCancelled, "cancelled by request")
		if err := c.commitLocked(); err != nil {
			c.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, "journaling cancel: %v", err)
			return
		}
	}
	c.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	wi := c.touchWorkerLocked(req.Worker, now)
	if req.Capacity > 0 {
		wi.capacity = req.Capacity
	}
	if req.TilesPerSec > 0 {
		wi.tilesPerSec = req.TilesPerSec
	}
	if wi.draining {
		// A draining worker is finishing what it holds; granting it
		// more would delay both the drain and the tiles.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	batch := c.leaseBatchLocked(wi, now)
	// First running job (submission order) with an available tile: a
	// FIFO queue in which later jobs still progress once earlier ones
	// are fully leased. A batch never spans jobs. Iterate a copy: a
	// tripped deadline can evict finished jobs from c.order.
	for _, id := range append([]string(nil), c.order...) {
		j := c.jobs[id]
		if j == nil {
			continue
		}
		c.enforceDeadlineLocked(j, now)
		if j.state != StateRunning {
			continue
		}
		if !c.underWorkerCapLocked(j, req.Worker, now) {
			continue
		}
		var grants []sched.TileLease
		failed := false
		for len(grants) < batch {
			// Screened jobs gate stage 2 behind the screen: while the
			// stage-1 phase is open, only its shards are grantable, so a
			// batch never mixes stages.
			l, ok := j.acquire(now, c.cfg.LeaseTTL)
			if !ok {
				break
			}
			if l.Attempt > c.cfg.MaxAttempts {
				c.cfg.Logger.Error("tile exhausted its attempts; failing the job",
					"job", j.id, "tile", l.Tile, "maxAttempts", c.cfg.MaxAttempts)
				c.finishLocked(j, StateFailed,
					fmt.Sprintf("tile %d of %d was re-issued %d times without completing", l.Tile, j.tiles, c.cfg.MaxAttempts))
				failed = true
				break
			}
			if l.Attempt > 1 {
				c.cm.reissued.Inc()
				c.cfg.Logger.Warn("re-issuing tile",
					"job", j.id, "tile", l.Tile, "attempt", l.Attempt, "worker", req.Worker)
			}
			grants = append(grants, l)
		}
		if failed || len(grants) == 0 {
			continue
		}
		granted := make([]TileGrant, len(grants))
		for i, l := range grants {
			granted[i] = TileGrant{Token: leaseToken(j.id, l), Tile: l.Tile}
			j.grantee[l.Tile] = granteeRef{worker: req.Worker, seq: l.Seq}
			// Grants are journaled without an fsync: losing one in a
			// crash is benign (the restored table's seq counter stays
			// below the lost grant, so its holder's completion answers
			// Unknown and the tile simply re-issues), and keeping the
			// grant path buffer-only keeps lease throughput at
			// in-memory speed.
			c.journalLocked(walRecord{T: recGrant, Job: j.id, Tile: l.Tile,
				Seq: l.Seq, Attempt: l.Attempt, Worker: req.Worker,
				UnixNs: now.Add(c.cfg.LeaseTTL).UnixNano()})
		}
		wi.granted += len(grants)
		c.cm.leasesGranted.Add(int64(len(grants)))
		if len(grants) > 1 {
			c.cfg.Logger.Debug("weighted tile batch granted",
				"job", j.id, "tiles", len(grants), "worker", req.Worker)
		}
		resp := LeaseGrant{
			Token:         granted[0].Token,
			Job:           j.id,
			DatasetSHA256: j.datasetSHA,
			Spec:          j.spec,
			Tile:          granted[0].Tile,
			Tiles:         j.tiles,
			Granted:       granted,
			TTLMillis:     c.cfg.LeaseTTL.Milliseconds(),
		}
		if j.screened() {
			if granted[0].Tile < j.screenTiles {
				resp.Stage = "screen"
				resp.StageBase, resp.StageCount = 0, j.screenTiles
			} else {
				// Stage 2: the pinned spec, with the merged screen's
				// survivors and seeds baked in.
				resp.Spec = *j.stage2
				resp.StageBase, resp.StageCount = j.screenTiles, j.tiles-j.screenTiles
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// touchWorkerLocked returns (creating if needed) the worker's
// capability record, stamps its last-seen instant, and evicts
// registry entries past retention.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerInfo {
	for oid, o := range c.workers {
		if now.Sub(o.lastSeen) > workerRetention {
			delete(c.workers, oid)
		}
	}
	wi := c.workers[id]
	if wi == nil {
		wi = &workerInfo{id: id, capacity: 1}
		c.workers[id] = wi
	}
	wi.lastSeen = now
	return wi
}

// leaseBatchLocked sizes this worker's next grant: its weight over the
// slowest live worker's, so fast workers get proportionally bigger
// batches. Weights compare measured tiles/sec once every live worker
// has reported one, and advertised capacities until then — never a
// mix of the two currencies. Workers silent past the staleness window
// neither anchor the base nor block the measured currency: a dead
// slow worker must not leave the survivors over-batched forever.
func (c *Coordinator) leaseBatchLocked(wi *workerInfo, now time.Time) int {
	stale := c.staleAfter()
	measured := true
	for _, o := range c.workers {
		if now.Sub(o.lastSeen) > stale {
			continue
		}
		if o.tilesPerSec <= 0 {
			measured = false
			break
		}
	}
	weight := wi.weight(measured)
	base := weight
	for _, o := range c.workers {
		if now.Sub(o.lastSeen) > stale {
			continue
		}
		if ow := o.weight(measured); ow > 0 && ow < base {
			base = ow
		}
	}
	if weight <= 0 || base <= 0 {
		return 1
	}
	n := int(weight/base + 0.5)
	if n < 1 {
		n = 1
	}
	if n > maxLeaseBatch {
		n = maxLeaseBatch
	}
	return n
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	now := c.cfg.Now()
	c.mu.Lock()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	list := WorkerList{Workers: make([]WorkerStatus, 0, len(ids))}
	for _, id := range ids {
		wi := c.workers[id]
		list.Workers = append(list.Workers, WorkerStatus{
			ID:             wi.id,
			Capacity:       wi.capacity,
			TilesPerSec:    wi.tilesPerSec,
			Granted:        wi.granted,
			Completed:      wi.completed,
			LastSeenUnixMs: wi.lastSeen.UnixMilli(),
			AgeMs:          now.Sub(wi.lastSeen).Milliseconds(),
			Stale:          now.Sub(wi.lastSeen) > c.staleAfter(),
			Draining:       wi.draining,
		})
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

// handleDrain marks a worker as draining: it keeps (and finishes) the
// leases it holds, but is granted nothing new. Workers announce their
// own drain on SIGTERM; operators may also call it directly.
func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	now := c.cfg.Now()
	c.mu.Lock()
	wi := c.touchWorkerLocked(id, now)
	wi.draining = true
	c.mu.Unlock()
	c.cfg.Logger.Info("worker draining", "worker", id)
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleLeave deregisters a worker and releases every lease it still
// holds, so its tiles re-issue on the next lease request instead of
// idling until TTL expiry. The releases are journaled and fsynced
// before the worker is told it may exit.
func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	now := c.cfg.Now()
	c.mu.Lock()
	released := c.releaseWorkerLeasesLocked(id, now)
	delete(c.workers, id)
	err := c.commitLocked()
	c.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "journaling leave: %v", err)
		return
	}
	c.cfg.Logger.Info("worker left; leases released for immediate re-issue",
		"worker", id, "released", released)
	writeJSON(w, http.StatusOK, LeaveResponse{Released: released})
}

// releaseWorkerLeasesLocked frees every live lease the worker holds
// across all running jobs, journaling each release.
func (c *Coordinator) releaseWorkerLeasesLocked(worker string, now time.Time) int {
	released := 0
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != StateRunning {
			continue
		}
		for tile, g := range j.grantee {
			if g.worker != worker {
				continue
			}
			if j.leases.Release(tile, g.seq) {
				delete(j.grantee, tile)
				c.journalLocked(walRecord{T: recRelease, Job: j.id, Tile: tile, Seq: g.seq})
				c.cm.released.Inc()
				released++
			}
		}
	}
	return released
}

// underWorkerCapLocked enforces a job's MaxWorkers policy: when set,
// only workers already holding a live lease on the job may take more
// tiles once the cap many distinct holders exist.
func (c *Coordinator) underWorkerCapLocked(j *job, worker string, now time.Time) bool {
	if j.spec.MaxWorkers <= 0 {
		return true
	}
	holders := make(map[string]bool)
	for _, tile := range j.leases.Leased(now) {
		if g, ok := j.grantee[tile]; ok {
			holders[g.worker] = true
		}
	}
	return holders[worker] || len(holders) < j.spec.MaxWorkers
}

// enforceDeadlineLocked fails a running job whose wall-clock budget
// (SearchSpec.DeadlineMillis, measured from submission) has elapsed.
// Deadlines are checked on observation — lease, renew, complete,
// status — not by a timer, which keeps expiry deterministic under
// injected clocks and replays identically after recovery (the
// submission instant is durable).
func (c *Coordinator) enforceDeadlineLocked(j *job, now time.Time) {
	if j.state != StateRunning || j.spec.DeadlineMillis <= 0 {
		return
	}
	budget := time.Duration(j.spec.DeadlineMillis) * time.Millisecond
	if now.Sub(j.submitted) >= budget {
		c.cfg.Logger.Warn("job deadline exceeded", "job", j.id, "budget", budget)
		c.finishLocked(j, StateFailed,
			fmt.Sprintf("deadline of %dms exceeded with %d/%d tiles done", j.spec.DeadlineMillis, j.leases.Done(), j.tiles))
	}
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	jobID, tile, seq, err := parseLeaseToken(r.PathValue("token"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Heartbeats double as capability reports; the body is optional.
	var req RenewRequest
	json.NewDecoder(r.Body).Decode(&req)
	now := c.cfg.Now()
	c.mu.Lock()
	if req.Worker != "" {
		wi := c.touchWorkerLocked(req.Worker, now)
		if req.TilesPerSec > 0 {
			wi.tilesPerSec = req.TilesPerSec
		}
	}
	j, ok := c.jobs[jobID]
	if ok {
		c.enforceDeadlineLocked(j, now)
	}
	renewed := ok && j.state == StateRunning && j.leases.Renew(tile, seq, now, c.cfg.LeaseTTL)
	c.mu.Unlock()
	if !renewed {
		if ok {
			c.cm.leasesExpired.Inc()
		}
		writeErr(w, http.StatusGone, "lease %s is no longer current", r.PathValue("token"))
		return
	}
	c.cm.leasesRenewed.Inc()
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	jobID, tile, seq, err := parseLeaseToken(r.PathValue("token"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding completion: %v", err)
		return
	}

	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if ok {
		c.enforceDeadlineLocked(j, now)
	}
	if !ok || j.state != StateRunning {
		writeErr(w, http.StatusGone, "job %s is not running", jobID)
		return
	}
	// Decode (and sanity-check) the payload the tile's stage expects
	// before touching the lease table, so a malformed body never marks
	// a tile done.
	screenTile := j.screened() && tile < j.screenTiles
	var rep trigene.Report
	var scores trigene.ScreenScores
	var perm trigene.PermScores
	switch {
	case screenTile:
		if err := json.Unmarshal(req.Screen, &scores); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding stage-1 screen scores: %v", err)
			return
		}
		if scores.SNPs != j.snps {
			writeErr(w, http.StatusBadRequest, "stage-1 scores cover %d SNPs; the job's dataset has %d", scores.SNPs, j.snps)
			return
		}
	case j.perm():
		if err := json.Unmarshal(req.Perm, &perm); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding tile perm scores: %v", err)
			return
		}
		if err := perm.ValidateShape(); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid tile perm scores: %v", err)
			return
		}
		if len(perm.SNPs) != len(j.spec.Perm.SNPs) {
			writeErr(w, http.StatusBadRequest, "tile perm scores cover %d candidates; the job tests %d",
				len(perm.SNPs), len(j.spec.Perm.SNPs))
			return
		}
	default:
		if err := json.Unmarshal(req.Report, &rep); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding tile report: %v", err)
			return
		}
	}
	switch st := j.leases.Complete(tile, seq); st {
	case sched.CompleteAccepted:
		switch {
		case screenTile:
			j.screens[tile] = &scores
		case j.perm():
			j.perms[tile] = &perm
		default:
			j.reports[tile] = &rep
		}
		if wi := c.workers[j.grantee[tile].worker]; wi != nil {
			wi.completed++
		}
		// The completion — and, when it was the last tile, the finish
		// record mergeLocked appends — must be durable before the
		// worker is told its result counted, or a crash would lose an
		// acknowledged tile and re-execute it.
		c.journalLocked(walRecord{T: recComplete, Job: j.id, Tile: tile, Seq: seq, Report: req.Report, Screen: req.Screen, Perm: req.Perm})
		if screenTile && j.stage2 == nil && j.screenDone() {
			// Last stage-1 shard: merge the scores, pin the survivor set,
			// and open the stage-2 phase. Pinning is deterministic from
			// the journaled per-shard scores, so recovery recomputes the
			// identical stage-2 spec instead of journaling it.
			c.pinStage2Locked(j)
		}
		if j.state == StateRunning && j.leases.Done() == j.tiles {
			c.mergeLocked(j)
		}
		if err := c.commitLocked(); err != nil {
			writeErr(w, http.StatusInternalServerError, "journaling completion: %v", err)
			return
		}
		c.cm.completed.Inc()
		writeJSON(w, http.StatusOK, CompleteResponse{Accepted: true})
	case sched.CompleteDuplicate, sched.CompleteStale:
		// Exactly-once accounting: the tile's first result already
		// counted (or a re-issued lease owns it); this one is discarded.
		c.cm.discarded.Inc()
		c.cfg.Logger.Debug("discarding completion",
			"job", jobID, "tile", tile, "status", st.String())
		writeJSON(w, http.StatusOK, CompleteResponse{Accepted: false})
	default:
		writeErr(w, http.StatusGone, "lease %s was never granted", r.PathValue("token"))
	}
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	jobID, tile, seq, err := parseLeaseToken(r.PathValue("token"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding failure: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok || j.state != StateRunning {
		writeErr(w, http.StatusGone, "job %s is not running", jobID)
		return
	}
	// Only the tile's live lease may fail the job: a superseded holder
	// (its tile was re-issued, possibly to a worker that handles the
	// spec fine) must not kill everyone else's work.
	if !j.leases.Current(tile, seq) {
		writeErr(w, http.StatusGone, "lease %s is no longer current", r.PathValue("token"))
		return
	}
	c.cfg.Logger.Error("tile failed deterministically",
		"job", jobID, "tile", tile, "error", req.Error)
	c.finishLocked(j, StateFailed, fmt.Sprintf("tile %d: %s", tile, req.Error))
	if err := c.commitLocked(); err != nil {
		writeErr(w, http.StatusInternalServerError, "journaling failure: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// pinStage2Locked closes a screened job's stage-1 phase: merge the
// per-shard scores bit-exactly (MergeScreens), select the survivor set
// under the submitted budget, and pin survivors and seeds into the
// spec every stage-2 grant carries. Deterministic given the shard
// scores, so journal replay recomputes the identical pin. Selection
// failures (scores that cannot seat an order-k search) fail the job —
// re-running stage 1 would reproduce them.
func (c *Coordinator) pinStage2Locked(j *job) {
	merged, err := trigene.MergeScreens(j.screens...)
	if err != nil {
		c.finishLocked(j, StateFailed, fmt.Sprintf("merging stage-1 scores: %v", err))
		return
	}
	survivors, threshold, err := merged.SelectSurvivors(j.spec.Screen.MaxSurvivors)
	if err != nil {
		c.finishLocked(j, StateFailed, fmt.Sprintf("selecting screen survivors: %v", err))
		return
	}
	order := j.spec.Order
	if order == 0 {
		order = 3
	}
	if len(survivors) < order {
		c.finishLocked(j, StateFailed,
			fmt.Sprintf("screen kept %d survivors, fewer than the order-%d search needs", len(survivors), order))
		return
	}
	seeds := merged.SeedList(j.spec.Screen.SeedPairs)
	sp := j.spec
	sp.Screen = &trigene.ScreenSpec{Survivors: survivors, Seeds: seeds}
	j.stage2 = &sp
	j.screenInfo = &trigene.ScreenInfo{
		PairsScanned: merged.Pairs,
		Survivors:    len(survivors),
		SeedPairs:    len(seeds),
		Threshold:    threshold,
		Stage1Ns:     merged.DurationNs,
	}
	j.pinnedAt = c.cfg.Now()
	c.cfg.Logger.Info("screen stage 1 complete; stage 2 opened",
		"job", j.id, "pairsScanned", merged.Pairs, "survivors", len(survivors), "seeds", len(seeds))
}

// mergeLocked assembles the final Report from the per-tile Reports (in
// tile order — MergeReports' candidate ordering is order-independent,
// but determinism is easier to audit this way). Screened jobs merge
// only their stage-2 slots and carry the coordinator-assembled
// ScreenInfo (the per-tile reports ran pinned and know nothing of the
// stage-1 scan). Permutation jobs sum per-range hit counts instead
// (MergePerms) and answer with a Report whose Perm block carries the
// finalized p-values — bit-exact with a single-node run because every
// range seeded its shuffles by absolute permutation index.
func (c *Coordinator) mergeLocked(j *job) {
	if j.perm() {
		merged, err := trigene.MergePerms(j.perms...)
		if err != nil {
			c.finishLocked(j, StateFailed, fmt.Sprintf("merging permutation ranges: %v", err))
			return
		}
		rep, err := trigene.FinalizePerms(j.spec.Perm, merged, j.tiles)
		if err != nil {
			c.finishLocked(j, StateFailed, fmt.Sprintf("finalizing permutation test: %v", err))
			return
		}
		j.result = rep
		c.finishLocked(j, StateDone, "")
		c.cfg.Logger.Info("permutation job done",
			"job", j.id, "candidates", len(merged.SNPs), "permutations", merged.Count)
		return
	}
	reports := j.reports
	if j.screened() {
		reports = j.reports[j.screenTiles:]
	}
	merged, err := trigene.MergeReports(reports...)
	if err != nil {
		c.finishLocked(j, StateFailed, fmt.Sprintf("merging tile reports: %v", err))
		return
	}
	if j.screened() && j.screenInfo != nil {
		info := *j.screenInfo
		if !j.pinnedAt.IsZero() {
			info.Stage2Ns = c.cfg.Now().Sub(j.pinnedAt).Nanoseconds()
		}
		merged.Screen = &info
	}
	j.result = merged
	c.finishLocked(j, StateDone, "")
	c.cfg.Logger.Info("job done",
		"job", j.id, "combinations", merged.Combinations, "best", fmt.Sprint(merged.Best.SNPs))
}

// finishLocked moves a job out of StateRunning: records the outcome,
// releases the dataset, kills future lease traffic (renew/complete on
// a finished job answer 410 Gone) and evicts the oldest finished jobs
// beyond the retention cap.
func (c *Coordinator) finishLocked(j *job, state, errMsg string) {
	c.cm.finishCount(state)
	j.state = state
	j.err = errMsg
	j.dataset = nil
	j.reports = nil
	j.screens = nil
	j.perms = nil
	j.grantee = nil
	j.finished = c.cfg.Now()
	c.journalFinishLocked(j)
	c.evictFinishedLocked()
}

// evictFinishedLocked drops the oldest finished jobs beyond the
// retention cap. It is shared by the live path (finishLocked) and
// journal replay, so eviction reproduces identically on recovery.
func (c *Coordinator) evictFinishedLocked() {
	finished := 0
	for _, id := range c.order {
		if c.jobs[id].state != StateRunning {
			finished++
		}
	}
	for i := 0; finished > c.cfg.Retain && i < len(c.order); {
		id := c.order[i]
		if c.jobs[id].state == StateRunning {
			i++
			continue
		}
		delete(c.jobs, id)
		c.order = append(c.order[:i], c.order[i+1:]...)
		finished--
	}
}

// status snapshots a job (caller holds c.mu).
func (j *job) status(now time.Time) JobStatus {
	st := JobStatus{
		ID:              j.id,
		Name:            j.name,
		State:           j.state,
		Spec:            j.spec,
		SNPs:            j.snps,
		Samples:         j.samples,
		Tiles:           j.tiles,
		Done:            j.leases.Done(),
		Leased:          j.leases.Outstanding(now),
		Error:           j.err,
		SubmittedUnixMs: j.submitted.UnixMilli(),
	}
	if j.screened() {
		st.ScreenTiles = j.screenTiles
		st.ScreenDone = j.leases.DoneBelow(j.screenTiles)
	}
	if !j.finished.IsZero() {
		st.DurationMs = float64(j.finished.Sub(j.submitted)) / float64(time.Millisecond)
	}
	return st
}

// leaseToken encodes a granted lease as "job.tile.seq" — opaque to
// workers, self-describing to the coordinator (no token table to leak).
func leaseToken(jobID string, l sched.TileLease) string {
	return jobID + "." + strconv.Itoa(l.Tile) + "." + strconv.FormatUint(l.Seq, 10)
}

// parseLeaseToken is the inverse of leaseToken.
func parseLeaseToken(tok string) (jobID string, tile int, seq uint64, err error) {
	parts := strings.Split(tok, ".")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("malformed lease token %q", tok)
	}
	tile, err = strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, 0, fmt.Errorf("malformed lease token %q", tok)
	}
	seq, err = strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("malformed lease token %q", tok)
	}
	return parts[0], tile, seq, nil
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr writes the uniform JSON error body.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}
