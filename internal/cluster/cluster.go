// Package cluster is the network-distributed execution subsystem: a
// Coordinator owns a queue of named search jobs and leases their tiles
// over HTTP/JSON to any number of Worker processes on other machines.
//
// The design splits the distribution concern along the same seam the
// tile scheduler (internal/sched) cut for in-process execution: a job's
// search space is the sched shard space — tile t of a T-tile job is
// exactly Session.Search(WithShard(t, T)) — so a worker executes a tile
// with the ordinary public API and the Coordinator reassembles the full
// Report with MergeReports, whose bit-exact merge guarantee is already
// enforced per backend and order by the repo's shard-parity tests.
//
// Fault tolerance is lease-based (sched.LeaseTable): every granted
// tile carries a deadline, workers renew it by heartbeat while they
// compute, and a tile whose lease expires — the worker died, hung, or
// lost the network — is re-issued to the next worker that asks. The
// table accepts exactly one completion per tile, so a resurrected
// worker's late result is discarded and the merged Report is identical
// to a single-node run no matter how many leases were lost on the way.
//
// Wire contract (all JSON unless noted), rooted at /v1:
//
//	POST /v1/jobs                  submit a job (spec + tiles + dataset)
//	GET  /v1/jobs                  list job statuses
//	GET  /v1/jobs/{id}             one job's status
//	GET  /v1/jobs/{id}/dataset     the job's dataset (packed .tpack bytes)
//	GET  /v1/jobs/{id}/result      the merged Report (409 until done)
//	POST /v1/jobs/{id}/cancel      cancel a running job
//	POST /v1/lease                 acquire a tile lease (204 when none)
//	POST /v1/lease/{token}/renew   heartbeat-extend the lease deadline
//	POST /v1/lease/{token}/done    post the tile's Report
//	POST /v1/lease/{token}/fail    report a deterministic execution error
//	POST /v1/workers/{id}/drain    stop granting new leases to a worker
//	POST /v1/workers/{id}/leave    release a worker's leases, deregister
//
// A Coordinator built by Recover additionally journals every state
// transition to a write-ahead log under Config.StateDir (see
// durable.go), so a crashed coordinator restarted on the same state
// directory resumes its jobs with exactly-once semantics: completed
// tiles are never re-executed and the merged Report is bit-exact with
// an uninterrupted run.
//
// Client implements trigene.RemoteExecutor, so
// Session.Search(ctx, trigene.WithCluster(client)) runs any search on
// the cluster without changing the public API's shape. The trigened
// binary fronts all three roles (serve / worker / submit-status-result).
package cluster

import (
	"encoding/json"

	"trigene"
)

// Job states reported in JobStatus.State.
const (
	// StateRunning: tiles are pending or leased.
	StateRunning = "running"
	// StateDone: every tile completed; the merged result is retained.
	StateDone = "done"
	// StateFailed: a worker reported a deterministic execution error,
	// or a tile exhausted its re-issue attempts.
	StateFailed = "failed"
	// StateCancelled: cancelled by request; outstanding leases die.
	StateCancelled = "cancelled"
)

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	// Name optionally labels the job for humans; it need not be unique.
	Name string `json:"name,omitempty"`
	// Spec is the search configuration every tile executes.
	Spec trigene.SearchSpec `json:"spec"`
	// Tiles is how many lease units the space is cut into (≥ 1). For a
	// screened job (Spec.Screen set, survivors not pinned) this counts
	// the stage-2 tiles; the stage-1 pair scan is leased as its own
	// ScreenTiles units ahead of them.
	Tiles int `json:"tiles"`
	// ScreenTiles is how many shards the stage-1 pair scan of a screened
	// job is cut into (0 = same as Tiles). Ignored for unscreened jobs
	// and for specs with pinned survivors.
	ScreenTiles int `json:"screenTiles,omitempty"`
	// Dataset is the dataset in the trigene binary format or the
	// packed .tpack format (base64 in JSON). The coordinator holds and
	// serves it packed either way, encoding a binary submission exactly
	// once so workers never re-binarize.
	Dataset []byte `json:"dataset"`
}

// SubmitResponse is the body answering POST /v1/jobs.
type SubmitResponse struct {
	ID    string `json:"id"`
	Tiles int    `json:"tiles"`
}

// JobStatus is one job's public state.
type JobStatus struct {
	ID    string             `json:"id"`
	Name  string             `json:"name,omitempty"`
	State string             `json:"state"`
	Spec  trigene.SearchSpec `json:"spec"`
	// SNPs and Samples describe the job's dataset.
	SNPs    int `json:"snps"`
	Samples int `json:"samples"`
	// Tiles, Done and Leased count lease units: total, completed, and
	// currently under an unexpired lease. A screened job's units are its
	// ScreenTiles stage-1 shards followed by the stage-2 tiles.
	Tiles  int `json:"tiles"`
	Done   int `json:"done"`
	Leased int `json:"leased"`
	// ScreenTiles and ScreenDone track the stage-1 phase of a screened
	// job (both 0 for unscreened jobs); stage 2 is granted only once
	// ScreenDone reaches ScreenTiles and the survivor set is pinned.
	ScreenTiles int `json:"screenTiles,omitempty"`
	ScreenDone  int `json:"screenDone,omitempty"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// SubmittedUnixMs and DurationMs time the job: submission instant
	// and, once finished, submit-to-finish wall time.
	SubmittedUnixMs int64   `json:"submittedUnixMs"`
	DurationMs      float64 `json:"durationMs,omitempty"`
}

// JobList is the body answering GET /v1/jobs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	// Worker identifies the requester in statuses and logs.
	Worker string `json:"worker"`
	// Capacity is the worker's advertised relative capability (cores,
	// an operator-assigned weight, ...; 0 = 1). The coordinator sizes
	// lease batches by it until measured throughput takes over.
	Capacity float64 `json:"capacity,omitempty"`
	// TilesPerSec is the worker's own measured recent tile throughput
	// (0 = none yet). Once every registered worker reports one, the
	// measured rates replace advertised capacities as lease weights.
	TilesPerSec float64 `json:"tilesPerSec,omitempty"`
}

// LeaseGrant is the body answering POST /v1/lease: one tile of one
// job, to be executed as Search(spec.Options()..., WithShard(Tile,
// Tiles)) and completed — under heartbeat renewal every TTL/3 or so —
// at /v1/lease/{token}/done.
type LeaseGrant struct {
	// Token names the lease in renew/done/fail calls. Opaque.
	Token string `json:"token"`
	// Job is the job the tile belongs to; its dataset is at
	// /v1/jobs/{job}/dataset.
	Job string `json:"job"`
	// DatasetSHA256 is the hex SHA-256 content hash of the job's
	// dataset (the encoded-dataset store's identity, format
	// independent). Workers key their per-job Session caches on it (job
	// IDs restart from j1 with the coordinator, a fingerprint never
	// aliases) and verify the fetched dataset against it.
	DatasetSHA256 string `json:"datasetSha256"`
	// Spec is the job's search configuration.
	Spec trigene.SearchSpec `json:"spec"`
	// Tile and Tiles are the shard coordinates to execute.
	Tile  int `json:"tile"`
	Tiles int `json:"tiles"`
	// Stage marks the phase of a two-phase screened job: "screen" grants
	// execute Session.ScreenStage1 over shard (Tile−StageBase) of
	// StageCount and post ScreenScores; empty grants execute an ordinary
	// sharded Search. A batch never mixes stages.
	Stage string `json:"stage,omitempty"`
	// StageBase and StageCount locate this grant's phase inside the
	// job's lease-unit space: the phase's first tile index and its tile
	// count. Zero StageCount means the whole space is one phase (every
	// unscreened job) and Tile/Tiles are the shard coordinates directly.
	StageBase  int `json:"stageBase,omitempty"`
	StageCount int `json:"stageCount,omitempty"`
	// Granted lists every tile of this grant (weighted leasing hands
	// fast workers several tiles per round trip); Granted[0] always
	// mirrors Token/Tile. Empty means the single Token/Tile lease.
	// Each tile is executed, heartbeat-renewed and completed under its
	// own token, so exactly-once accounting is untouched.
	Granted []TileGrant `json:"granted,omitempty"`
	// TTLMillis is the lease duration; renew well before it elapses.
	TTLMillis int64 `json:"ttlMillis"`
}

// TileGrant is one tile of a (possibly batched) lease grant.
type TileGrant struct {
	Token string `json:"token"`
	Tile  int    `json:"tile"`
}

// RenewRequest is the optional body of POST /v1/lease/{token}/renew:
// heartbeats double as capability reports, so the coordinator's view
// of a worker's throughput stays fresh while it computes. An empty
// body is accepted (older workers).
type RenewRequest struct {
	Worker      string  `json:"worker,omitempty"`
	TilesPerSec float64 `json:"tilesPerSec,omitempty"`
}

// WorkerStatus is one worker's entry in the coordinator's capability
// registry, built from lease requests and heartbeats.
type WorkerStatus struct {
	ID string `json:"id"`
	// Capacity is the advertised relative weight; TilesPerSec the
	// worker's last reported measured throughput (0 = none yet).
	Capacity    float64 `json:"capacity"`
	TilesPerSec float64 `json:"tilesPerSec,omitempty"`
	// Granted and Completed count tiles over the worker's lifetime.
	Granted   int `json:"granted"`
	Completed int `json:"completed"`
	// LastSeenUnixMs is the instant of the worker's last request;
	// AgeMs is how long ago that was at response time.
	LastSeenUnixMs int64 `json:"lastSeenUnixMs"`
	AgeMs          int64 `json:"ageMs"`
	// Stale means the worker has been silent past the staleness window
	// (4×LeaseTTL): it no longer influences weighted lease sizing and
	// is presumed dead.
	Stale bool `json:"stale,omitempty"`
	// Draining means the worker announced it is leaving: it finishes
	// the leases it holds but is granted nothing new.
	Draining bool `json:"draining,omitempty"`
}

// WorkerList is the body answering GET /v1/workers.
type WorkerList struct {
	Workers []WorkerStatus `json:"workers"`
}

// CompleteRequest is the body of POST /v1/lease/{token}/done.
type CompleteRequest struct {
	// Report is the tile's Report in the stable wire format (search
	// tiles).
	Report json.RawMessage `json:"report,omitempty"`
	// Screen is the tile's ScreenScores (stage-1 tiles of a screened
	// job); Perm the tile's PermScores (permutation jobs). Exactly one
	// of Report, Screen and Perm is set.
	Screen json.RawMessage `json:"screen,omitempty"`
	Perm   json.RawMessage `json:"perm,omitempty"`
}

// CompleteResponse is the body answering a completion.
type CompleteResponse struct {
	// Accepted is false when the result was discarded — the tile was
	// already completed under a re-issued lease (exactly-once
	// accounting keeps the first result).
	Accepted bool `json:"accepted"`
}

// FailRequest is the body of POST /v1/lease/{token}/fail: a
// deterministic execution error (bad spec for the dataset, order
// unsupported by the backend, ...) that retrying on another worker
// cannot fix, so it fails the whole job.
type FailRequest struct {
	Error string `json:"error"`
}

// LeaveResponse is the body answering POST /v1/workers/{id}/leave.
type LeaveResponse struct {
	// Released counts the leases freed for immediate re-issue.
	Released int `json:"released"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}
