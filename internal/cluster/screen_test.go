package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"trigene"
)

// screenedSpec is the two-phase configuration the screened cluster
// tests submit: a real pruning budget plus seed pairs, deep enough
// top-K that merge ordering is exercised.
func screenedSpec() trigene.SearchSpec {
	return trigene.SearchSpec{
		Order: 3, TopK: 5, Workers: 2,
		Screen: &trigene.ScreenSpec{MaxSurvivors: 12, SeedPairs: 3},
	}
}

// localScreened runs the reference single-node screened search for a
// spec (same options the cluster workers rebuild).
func localScreened(t *testing.T, sess *trigene.Session, spec trigene.SearchSpec) *trigene.Report {
	t.Helper()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Search(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestClusterScreenedParity distributes a screened job — stage 1 as
// its own sharded phase, survivors pinned into the stage-2 grants —
// and requires the merged Report to match the single-node screened run
// bit-exactly, including the stage-1 audit trail.
func TestClusterScreenedParity(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	spec := screenedSpec()
	want := localScreened(t, sess, spec)
	if want.Screen == nil {
		t.Fatal("local screened run carries no ScreenInfo")
	}

	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	cl.Tiles = 5 // both phases cut into 5 shards
	startWorkers(t, cl, 3)
	got, err := cl.ExecuteSearch(context.Background(), mx, spec)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "screened cluster", got, want)
	if got.Screen == nil {
		t.Fatal("merged cluster Report carries no ScreenInfo")
	}
	if got.Screen.PairsScanned != want.Screen.PairsScanned {
		t.Errorf("cluster screen scanned %d pairs, local %d", got.Screen.PairsScanned, want.Screen.PairsScanned)
	}
	if got.Screen.Survivors != want.Screen.Survivors {
		t.Errorf("cluster screen kept %d survivors, local %d", got.Screen.Survivors, want.Screen.Survivors)
	}
	if got.Screen.Threshold != want.Screen.Threshold {
		t.Errorf("cluster screen threshold %v, local %v", got.Screen.Threshold, want.Screen.Threshold)
	}
	if got.Screen.SeedPairs != want.Screen.SeedPairs {
		t.Errorf("cluster screen kept %d seeds, local %d", got.Screen.SeedPairs, want.Screen.SeedPairs)
	}
}

// TestClusterScreenedPhaseGate verifies the two-phase protocol on the
// wire: stage-2 tiles are withheld while stage-1 shards are open, and
// stage-2 grants carry the pinned survivor spec, not the submitted
// budget.
func TestClusterScreenedPhaseGate(t *testing.T) {
	mx := plantedMatrix(t)
	cl, co := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	id, err := cl.Submit(context.Background(), mx, screenedSpec(), 3, "gate")
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tiles != 6 || st.ScreenTiles != 3 {
		t.Fatalf("screened job sized %d tiles / %d screen tiles, want 6 / 3", st.Tiles, st.ScreenTiles)
	}

	// Drain every grantable lease: only the 3 stage-1 shards may come
	// out while the screen is unpinned.
	var stage1 []LeaseGrant
	for {
		g, ok, err := cl.lease(context.Background(), LeaseRequest{Worker: "gate-w"})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if g.Stage != "screen" {
			t.Fatalf("pre-pin grant for tile %d has stage %q, want \"screen\"", g.Tile, g.Stage)
		}
		if g.StageBase != 0 || g.StageCount != 3 {
			t.Fatalf("stage-1 grant coords base=%d count=%d, want 0/3", g.StageBase, g.StageCount)
		}
		stage1 = append(stage1, g)
	}
	granted := 0
	for _, g := range stage1 {
		granted += max(1, len(g.Granted))
	}
	if granted != 3 {
		t.Fatalf("phase gate leaked: %d tiles granted while stage 1 open, want 3", granted)
	}

	// Complete the stage-1 shards with real scans; the last completion
	// must pin stage 2 and open its grants.
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range stage1 {
		tiles := g.Granted
		if len(tiles) == 0 {
			tiles = []TileGrant{{Token: g.Token, Tile: g.Tile}}
		}
		for _, tg := range tiles {
			scores, err := sess.ScreenStage1(context.Background(), 3,
				trigene.WithShard(tg.Tile, 3), trigene.WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			if accepted, err := cl.completeScreen(context.Background(), tg.Token, scores); err != nil || !accepted {
				t.Fatalf("stage-1 completion tile %d: accepted=%v err=%v", tg.Tile, accepted, err)
			}
		}
	}
	g, ok, err := cl.lease(context.Background(), LeaseRequest{Worker: "gate-w"})
	if err != nil || !ok {
		t.Fatalf("no stage-2 grant after stage 1 completed: ok=%v err=%v", ok, err)
	}
	if g.Stage != "" || g.StageBase != 3 || g.StageCount != 3 {
		t.Fatalf("stage-2 grant stage=%q base=%d count=%d, want \"\"/3/3", g.Stage, g.StageBase, g.StageCount)
	}
	if g.Spec.Screen == nil || len(g.Spec.Screen.Survivors) != 12 {
		t.Fatalf("stage-2 grant spec not pinned: %+v", g.Spec.Screen)
	}
	if g.Spec.Screen.MaxSurvivors != 0 {
		t.Fatalf("stage-2 grant still carries the submitted budget: %+v", g.Spec.Screen)
	}
	_ = co
}

// TestClusterScreenedSubmitValidation: bad screens fail at the door
// with the trigene validation text, and budget-only screens are
// rejected as a cluster submission.
func TestClusterScreenedSubmitValidation(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{})
	cases := []struct {
		name string
		spec trigene.SearchSpec
		want string
	}{
		{"negative-survivors",
			trigene.SearchSpec{Screen: &trigene.ScreenSpec{MaxSurvivors: -1}},
			"negative screen survivor budget"},
		{"survivors-exceed-m",
			trigene.SearchSpec{Screen: &trigene.ScreenSpec{MaxSurvivors: 1000}},
			"exceeds the dataset's 24 SNPs"},
		{"budget-only",
			trigene.SearchSpec{Screen: &trigene.ScreenSpec{BudgetSeconds: 1.5}},
			"explicit survivor budget"},
		{"empty-spec",
			trigene.SearchSpec{Screen: &trigene.ScreenSpec{}},
			"empty ScreenSpec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.Submit(context.Background(), mx, tc.spec, 2, tc.name)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("submit error %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

// TestClusterScreenedPinnedSubmit: a spec with pinned survivors skips
// the stage-1 phase entirely — no screen tiles, ordinary grants.
func TestClusterScreenedPinnedSubmit(t *testing.T) {
	mx := plantedMatrix(t)
	spec := trigene.SearchSpec{
		Order: 3, TopK: 4, Workers: 2,
		Screen: &trigene.ScreenSpec{Survivors: []int{1, 3, 5, 9, 11, 15, 20}},
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	want := localScreened(t, sess, spec)

	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	cl.Tiles = 3
	startWorkers(t, cl, 2)
	id, err := cl.Submit(context.Background(), mx, spec, 3, "pinned")
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ScreenTiles != 0 || st.Tiles != 3 {
		t.Fatalf("pinned screened job sized %d tiles / %d screen tiles, want 3 / 0", st.Tiles, st.ScreenTiles)
	}
	got, err := cl.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "pinned screened cluster", got, want)
}

// TestDurableScreenedRecovery crashes a coordinator once mid-stage-1
// and once after the screen pinned, and requires the two-phase
// protocol to survive both: replayed stage-1 scores stay counted, the
// pin is recomputed deterministically from them on recovery, and the
// final merged Report is bit-exact with a local screened run.
func TestDurableScreenedRecovery(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	spec := screenedSpec()
	want := localScreened(t, sess, spec)

	cfg := Config{StateDir: t.TempDir(), LeaseTTL: 5 * time.Second}
	cl, proxy, _ := newDurableCluster(t, cfg)
	ctx := context.Background()
	id, err := cl.Submit(ctx, mx, spec, 2, "screened-durable")
	if err != nil {
		t.Fatal(err)
	}

	// Complete one stage-1 shard, then crash before the second lands.
	g1, ok, err := cl.lease(ctx, LeaseRequest{Worker: "d1"})
	if err != nil || !ok || g1.Stage != "screen" {
		t.Fatalf("first grant: ok=%v stage=%q err=%v", ok, g1.Stage, err)
	}
	scores, err := sess.ScreenStage1(ctx, 3, trigene.WithShard(g1.Tile, g1.StageCount), trigene.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if acc, err := cl.completeScreen(ctx, g1.Token, scores); err != nil || !acc {
		t.Fatalf("stage-1 completion: accepted=%v err=%v", acc, err)
	}
	proxy.crash()
	proxy.resume(t, cfg)

	st, err := cl.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ScreenTiles != 2 || st.ScreenDone != 1 {
		t.Fatalf("after first crash: screen %d/%d done, want 1/2", st.ScreenDone, st.ScreenTiles)
	}

	// Finish stage 1; the pin happens, then crash again — recovery must
	// recompute the identical pin from the journaled scores.
	g2, ok, err := cl.lease(ctx, LeaseRequest{Worker: "d1"})
	if err != nil || !ok || g2.Stage != "screen" {
		t.Fatalf("second stage-1 grant: ok=%v err=%v", ok, err)
	}
	scores, err = sess.ScreenStage1(ctx, 3, trigene.WithShard(g2.Tile, g2.StageCount), trigene.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if acc, err := cl.completeScreen(ctx, g2.Token, scores); err != nil || !acc {
		t.Fatalf("stage-1 completion: accepted=%v err=%v", acc, err)
	}
	proxy.crash()
	proxy.resume(t, cfg)

	// Stage-2 grants must come out pinned after recovery.
	var pinned *trigene.ScreenSpec
	for {
		g, ok, err := cl.lease(ctx, LeaseRequest{Worker: "d1"})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if g.Stage != "" || g.Spec.Screen == nil || len(g.Spec.Screen.Survivors) == 0 {
			t.Fatalf("post-recovery grant not a pinned stage-2 grant: stage=%q screen=%+v", g.Stage, g.Spec.Screen)
		}
		pinned = g.Spec.Screen
		tiles := g.Granted
		if len(tiles) == 0 {
			tiles = []TileGrant{{Token: g.Token, Tile: g.Tile}}
		}
		for _, tg := range tiles {
			opts, err := g.Spec.Options()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sess.Search(ctx, append(opts,
				trigene.WithShard(tg.Tile-g.StageBase, g.StageCount))...)
			if err != nil {
				t.Fatal(err)
			}
			if acc, err := cl.complete(ctx, tg.Token, rep); err != nil || !acc {
				t.Fatalf("stage-2 completion tile %d: accepted=%v err=%v", tg.Tile, acc, err)
			}
		}
	}
	if pinned == nil {
		t.Fatal("no stage-2 grants after recovery")
	}
	if len(pinned.Survivors) != want.Screen.Survivors {
		t.Fatalf("recovered pin kept %d survivors, local screen kept %d", len(pinned.Survivors), want.Screen.Survivors)
	}

	got, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "screened durable", got, want)
	if got.Screen == nil || got.Screen.PairsScanned != want.Screen.PairsScanned {
		t.Fatalf("recovered ScreenInfo %+v, want pairsScanned %d", got.Screen, want.Screen.PairsScanned)
	}
}
