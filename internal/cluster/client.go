package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"trigene"
)

// Client talks to a Coordinator. It is safe for concurrent use and
// implements trigene.RemoteExecutor, so
//
//	sess.Search(ctx, trigene.WithCluster(cluster.NewClient(url)))
//
// runs the search on the cluster.
type Client struct {
	// BaseURL is the coordinator's root, e.g. "http://host:9321".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Tiles is how many lease units ExecuteSearch cuts a submitted
	// search into (default 16) — more tiles mean finer re-issue
	// granularity and better balance across heterogeneous workers, at
	// more wire round-trips.
	Tiles int
	// Poll is the job-status polling interval of Wait (default 150ms).
	Poll time.Duration
}

// NewClient returns a Client for the coordinator at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Name implements trigene.RemoteExecutor.
func (c *Client) Name() string { return "cluster(" + c.BaseURL + ")" }

// ExecuteSearch implements trigene.RemoteExecutor: submit, wait,
// fetch the merged Report.
func (c *Client) ExecuteSearch(ctx context.Context, mx *trigene.Matrix, spec trigene.SearchSpec) (*trigene.Report, error) {
	tiles := c.Tiles
	if tiles <= 0 {
		tiles = 16
	}
	id, err := c.Submit(ctx, mx, spec, tiles, "")
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// ExecutePerm implements trigene.PermExecutor: submit the permutation
// job (spec.Perm set), wait, fetch the Report whose Perm block carries
// the merged hit counts. The tile count is clamped to the permutation
// count so every leased range is non-empty.
func (c *Client) ExecutePerm(ctx context.Context, mx *trigene.Matrix, spec trigene.SearchSpec) (*trigene.Report, error) {
	if spec.Perm == nil {
		return nil, fmt.Errorf("cluster: ExecutePerm requires a spec with Perm set")
	}
	tiles := c.Tiles
	if tiles <= 0 {
		tiles = 16
	}
	if p := spec.Perm.PermutationCount(); tiles > p {
		tiles = p
	}
	id, err := c.Submit(ctx, mx, spec, tiles, "")
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// Submit uploads a dataset and a search spec as a new job cut into the
// given number of tiles, returning the job ID.
func (c *Client) Submit(ctx context.Context, mx *trigene.Matrix, spec trigene.SearchSpec, tiles int, name string) (string, error) {
	var data bytes.Buffer
	if err := trigene.WriteBinary(&data, mx); err != nil {
		return "", fmt.Errorf("serializing dataset: %w", err)
	}
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", SubmitRequest{
		Name:    name,
		Spec:    spec,
		Tiles:   tiles,
		Dataset: data.Bytes(),
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// SubmitSession uploads a session's dataset in the packed .tpack form
// — exact for sessions opened from a pack, and sparing the coordinator
// the one-time encode either way — as a new job cut into the given
// number of tiles, returning the job ID.
func (c *Client) SubmitSession(ctx context.Context, sess *trigene.Session, spec trigene.SearchSpec, tiles int, name string) (string, error) {
	var data bytes.Buffer
	if err := sess.WritePack(&data); err != nil {
		return "", fmt.Errorf("packing dataset: %w", err)
	}
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", SubmitRequest{
		Name:    name,
		Spec:    spec,
		Tiles:   tiles,
		Dataset: data.Bytes(),
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Jobs lists every job the coordinator retains, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var list JobList
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &list); err != nil {
		return nil, err
	}
	return list.Jobs, nil
}

// Status returns one job's status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result returns the merged Report of a finished job. It fails while
// the job is still running; use Wait to block.
func (c *Client) Result(ctx context.Context, id string) (*trigene.Report, error) {
	var rep trigene.Report
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Cancel cancels a running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", struct{}{}, nil)
}

// Wait polls the job until it finishes, then returns its merged
// Report (or the job's failure as an error).
func (c *Client) Wait(ctx context.Context, id string) (*trigene.Report, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 150 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case StateDone:
			return c.Result(ctx, id)
		case StateFailed, StateCancelled:
			return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Workers lists the coordinator's per-worker capability registry
// (advertised capacity, reported throughput, grant/completion counts).
func (c *Client) Workers(ctx context.Context) ([]WorkerStatus, error) {
	var list WorkerList
	if err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &list); err != nil {
		return nil, err
	}
	return list.Workers, nil
}

// Drain marks a worker as draining: the coordinator grants it no new
// leases while it finishes what it holds. Workers announce their own
// drain; operators can also call it to take a worker out of rotation.
func (c *Client) Drain(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/drain", struct{}{}, nil)
}

// Leave deregisters a worker, releasing every lease it still holds so
// its tiles re-issue immediately instead of idling until TTL expiry.
// It returns how many leases were released.
func (c *Client) Leave(ctx context.Context, workerID string) (int, error) {
	var resp LeaveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/leave", struct{}{}, &resp); err != nil {
		return 0, err
	}
	return resp.Released, nil
}

// dataset fetches a job's raw dataset bytes (workers verify them
// against the lease grant's fingerprint before parsing).
func (c *Client) dataset(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/dataset", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// lease asks for a tile batch, advertising the worker's capability;
// ok is false when the coordinator has no work.
func (c *Client) lease(ctx context.Context, lr LeaseRequest) (LeaseGrant, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/lease", jsonBody(lr))
	if err != nil {
		return LeaseGrant{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return LeaseGrant{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return LeaseGrant{}, false, nil
	case http.StatusOK:
		var grant LeaseGrant
		if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
			return LeaseGrant{}, false, err
		}
		return grant, true, nil
	default:
		return LeaseGrant{}, false, decodeError(resp)
	}
}

// renew heartbeats a lease, carrying the worker's current capability
// report. A coordinator answer of 410 Gone comes back as errLeaseLost.
func (c *Client) renew(ctx context.Context, token string, rr RenewRequest) error {
	err := c.do(ctx, http.MethodPost, "/v1/lease/"+token+"/renew", rr, nil)
	return leaseLostOr(err)
}

// complete posts a tile's Report; discarded reports the coordinator's
// exactly-once accounting (false when this result was a duplicate).
func (c *Client) complete(ctx context.Context, token string, rep *trigene.Report) (accepted bool, err error) {
	raw, err := json.Marshal(rep)
	if err != nil {
		return false, err
	}
	var resp CompleteResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lease/"+token+"/done", CompleteRequest{Report: raw}, &resp); err != nil {
		return false, leaseLostOr(err)
	}
	return resp.Accepted, nil
}

// completeScreen posts a stage-1 tile's ScreenScores (screened jobs).
func (c *Client) completeScreen(ctx context.Context, token string, sc *trigene.ScreenScores) (accepted bool, err error) {
	raw, err := json.Marshal(sc)
	if err != nil {
		return false, err
	}
	var resp CompleteResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lease/"+token+"/done", CompleteRequest{Screen: raw}, &resp); err != nil {
		return false, leaseLostOr(err)
	}
	return resp.Accepted, nil
}

// completePerm posts a permutation tile's PermScores (permutation jobs).
func (c *Client) completePerm(ctx context.Context, token string, ps *trigene.PermScores) (accepted bool, err error) {
	raw, err := json.Marshal(ps)
	if err != nil {
		return false, err
	}
	var resp CompleteResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lease/"+token+"/done", CompleteRequest{Perm: raw}, &resp); err != nil {
		return false, leaseLostOr(err)
	}
	return resp.Accepted, nil
}

// fail reports a deterministic tile failure (fails the job).
func (c *Client) fail(ctx context.Context, token, msg string) error {
	err := c.do(ctx, http.MethodPost, "/v1/lease/"+token+"/fail", FailRequest{Error: msg}, nil)
	return leaseLostOr(err)
}

// statusError is a non-2xx coordinator answer.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("coordinator: %s (HTTP %d)", e.msg, e.code)
}

// errLeaseLost marks a lease the coordinator no longer honors: the
// holder abandons the tile (someone else owns it now).
var errLeaseLost = fmt.Errorf("cluster: lease lost")

// leaseLostOr maps 410 Gone onto errLeaseLost.
func leaseLostOr(err error) error {
	var se *statusError
	if errors.As(err, &se) && se.code == http.StatusGone {
		return errLeaseLost
	}
	return err
}

// do performs one JSON request; a nil out discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		body = jsonBody(in)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// jsonBody marshals v for a request body (marshal errors surface as
// request errors through the failed read).
func jsonBody(v any) io.Reader {
	raw, err := json.Marshal(v)
	if err != nil {
		return &failingReader{err: err}
	}
	return bytes.NewReader(raw)
}

type failingReader struct{ err error }

func (f *failingReader) Read([]byte) (int, error) { return 0, f.err }

// decodeError turns a non-2xx response into a *statusError, using the
// uniform error body when present.
func decodeError(resp *http.Response) error {
	var eb errorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return &statusError{code: resp.StatusCode, msg: eb.Error}
	}
	return &statusError{code: resp.StatusCode, msg: strings.TrimSpace(string(raw))}
}
