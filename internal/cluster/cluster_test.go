package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"trigene"
)

// plantedMatrix is the shared test dataset: a strong 3-way signal at
// (3, 9, 15), small enough that every backend searches it in
// milliseconds.
func plantedMatrix(t *testing.T) *trigene.Matrix {
	t.Helper()
	mx, err := trigene.Generate(trigene.GenConfig{
		SNPs: 24, Samples: 900, Seed: 11, MAFMin: 0.3, MAFMax: 0.5,
		Interaction: &trigene.Interaction{
			SNPs:       [3]int{3, 9, 15},
			Penetrance: trigene.ThresholdPenetrance(3, 0.05, 0.95),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

// newTestCluster starts a loopback coordinator and returns a client
// with fast polling.
func newTestCluster(t *testing.T, cfg Config) (*Client, *Coordinator) {
	t.Helper()
	co := NewCoordinator(cfg)
	srv := httptest.NewServer(co)
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL)
	cl.Poll = 5 * time.Millisecond
	return cl, co
}

// startWorkers runs n loopback workers until the test ends.
func startWorkers(t *testing.T, cl *Client, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{Client: cl, ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// reportsEqual asserts bit-exact candidates and identical coverage.
func reportsEqual(t *testing.T, label string, got, want *trigene.Report) {
	t.Helper()
	if got.Combinations != want.Combinations {
		t.Errorf("%s: %d combinations, want %d", label, got.Combinations, want.Combinations)
	}
	if len(got.TopK) != len(want.TopK) {
		t.Fatalf("%s: top-K %d entries, want %d", label, len(got.TopK), len(want.TopK))
	}
	for i := range want.TopK {
		w, g := want.TopK[i], got.TopK[i]
		if len(g.SNPs) != len(w.SNPs) {
			t.Fatalf("%s: top-%d %v, want %v", label, i+1, g.SNPs, w.SNPs)
		}
		for k := range w.SNPs {
			if g.SNPs[k] != w.SNPs[k] {
				t.Fatalf("%s: top-%d %v, want %v", label, i+1, g.SNPs, w.SNPs)
			}
		}
		if g.Score != w.Score {
			t.Errorf("%s: top-%d score %.12f != %.12f", label, i+1, g.Score, w.Score)
		}
	}
}

// TestClusterLoopbackParity is the acceptance gate: a coordinator and
// 4 loopback workers produce a Report bit-exact with the single-node
// run for every backend and every order it supports, through both the
// RemoteExecutor surface and the public WithCluster option.
func TestClusterLoopbackParity(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	cl.Tiles = 7 // odd tile count: uneven shards, some possibly empty
	startWorkers(t, cl, 4)
	ctx := context.Background()

	cases := []struct {
		name string
		spec trigene.SearchSpec
	}{
		{"cpu/order2", trigene.SearchSpec{Order: 2, TopK: 6, Workers: 2}},
		{"cpu/order3", trigene.SearchSpec{Order: 3, TopK: 6, Workers: 2}},
		{"cpu/order4", trigene.SearchSpec{Order: 4, TopK: 6, Workers: 2}},
		{"cpu/order3-V1", trigene.SearchSpec{Order: 3, TopK: 6, Approach: "V1", Workers: 2}},
		{"cpu/order3-V4", trigene.SearchSpec{Order: 3, TopK: 6, Approach: "V4", Workers: 2}},
		{"gpusim/order3", trigene.SearchSpec{Backend: "gpusim:GN1", TopK: 6}},
		{"baseline/order3", trigene.SearchSpec{Backend: "baseline", TopK: 6, Workers: 2}},
		{"hetero/order3", trigene.SearchSpec{Backend: "hetero", TopK: 6, Workers: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts, err := tc.spec.Options()
			if err != nil {
				t.Fatal(err)
			}
			local, err := sess.Search(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := cl.ExecuteSearch(ctx, mx, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, tc.name, remote, local)
		})
	}

	// The public wiring: Session.Search + WithCluster goes through the
	// same client and stays bit-exact.
	local, err := sess.Search(ctx, trigene.WithTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sess.Search(ctx, trigene.WithCluster(cl), trigene.WithTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "WithCluster", remote, local)
}

// TestClusterTopKDeeperThanTiles: the requested top-K depth survives
// the wire. With many tiles over a small space each tile Report
// carries only a couple of candidates, but the merge must still fill
// the full requested depth from their union — not shrink to the
// deepest per-tile list.
func TestClusterTopKDeeperThanTiles(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 10, Samples: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	startWorkers(t, cl, 2)
	ctx := context.Background()

	spec := trigene.SearchSpec{TopK: 5, Workers: 1}
	// C(10,3) = 120 ranks over 60 tiles: at most 2 candidates per tile.
	id, err := cl.Submit(ctx, mx, spec, 60, "deep-topk")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(local.TopK) != 5 {
		t.Fatalf("local depth %d, want 5", len(local.TopK))
	}
	reportsEqual(t, "deep top-K", remote, local)
}

// TestClusterWorkerKilledMidSearch kills a worker that holds a lease
// and checks the cluster still converges to the identical Report: the
// dead worker's tile expires and is re-issued to a healthy worker.
func TestClusterWorkerKilledMidSearch(t *testing.T) {
	// A dataset big enough that one tile takes tens of milliseconds on
	// one core, so the kill lands mid-tile.
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 120, Samples: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	spec := trigene.SearchSpec{TopK: 5, Workers: 1}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}

	cl, _ := newTestCluster(t, Config{LeaseTTL: 120 * time.Millisecond})
	id, err := cl.Submit(ctx, mx, spec, 3, "kill-test")
	if err != nil {
		t.Fatal(err)
	}

	// The victim starts alone, so it must take the first lease.
	victimCtx, killVictim := context.WithCancel(context.Background())
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		(&Worker{Client: cl, ID: "victim", Poll: 2 * time.Millisecond}).Run(victimCtx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Leased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a tile")
		}
		time.Sleep(time.Millisecond)
	}
	killVictim()
	<-victimDone

	// Healthy workers finish the job, including the re-issued tile.
	startWorkers(t, cl, 2)
	remote, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "after worker death", remote, local)
}

// TestClusterExactlyOnce drives the lease lifecycle deterministically
// with an injected clock: an expired lease is re-issued, the
// superseded holder's completion is discarded, and the first accepted
// result per tile is the one that feeds the merge.
func TestClusterExactlyOnce(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	ttl := 10 * time.Second
	cl, _ := newTestCluster(t, Config{LeaseTTL: ttl, Now: clock})
	spec := trigene.SearchSpec{TopK: 4}
	id, err := cl.Submit(ctx, mx, spec, 2, "")
	if err != nil {
		t.Fatal(err)
	}

	// Tile 0 leased, expires, re-issued.
	g1, ok, err := cl.lease(ctx, LeaseRequest{Worker: "zombie"})
	if err != nil || !ok {
		t.Fatalf("first lease: ok=%v err=%v", ok, err)
	}
	advance(ttl + time.Second)
	g2, ok, err := cl.lease(ctx, LeaseRequest{Worker: "healthy"})
	if err != nil || !ok {
		t.Fatalf("re-lease: ok=%v err=%v", ok, err)
	}
	if g2.Tile != g1.Tile || g2.Token == g1.Token {
		t.Fatalf("re-lease = %+v, want re-issue of %+v", g2, g1)
	}

	// Both holders compute the tile; the zombie's (stale) completion is
	// discarded, the healthy holder's is accepted.
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	tileRep, err := sess.Search(ctx, append(opts, trigene.WithShard(g1.Tile, g1.Tiles))...)
	if err != nil {
		t.Fatal(err)
	}
	if acc, err := cl.complete(ctx, g1.Token, tileRep); err != nil || acc {
		t.Fatalf("stale completion: accepted=%v err=%v, want discarded", acc, err)
	}
	if acc, err := cl.complete(ctx, g2.Token, tileRep); err != nil || !acc {
		t.Fatalf("current completion: accepted=%v err=%v", acc, err)
	}
	// A duplicate after acceptance is discarded too.
	if acc, err := cl.complete(ctx, g2.Token, tileRep); err != nil || acc {
		t.Fatalf("duplicate completion: accepted=%v err=%v, want discarded", acc, err)
	}

	// Renewal of the dead lease fails; the live lease renews until the
	// tile completes.
	g3, ok, err := cl.lease(ctx, LeaseRequest{Worker: "healthy"})
	if err != nil || !ok {
		t.Fatalf("tile 1 lease: ok=%v err=%v", ok, err)
	}
	if err := cl.renew(ctx, g1.Token, RenewRequest{}); !errors.Is(err, errLeaseLost) {
		t.Fatalf("renew of superseded lease = %v, want lease lost", err)
	}
	if err := cl.renew(ctx, g3.Token, RenewRequest{}); err != nil {
		t.Fatalf("renew of live lease: %v", err)
	}

	// A superseded holder must not be able to fail the job either: the
	// zombie's version-skew error is its own problem, not the job's.
	if err := cl.fail(ctx, g1.Token, "zombie says the spec is bad"); !errors.Is(err, errLeaseLost) {
		t.Fatalf("stale fail = %v, want lease lost", err)
	}
	if st, err := cl.Status(ctx, id); err != nil || st.State != StateRunning {
		t.Fatalf("job after stale fail: %+v, %v", st, err)
	}

	rep1, err := sess.Search(ctx, append(opts, trigene.WithShard(g3.Tile, g3.Tiles))...)
	if err != nil {
		t.Fatal(err)
	}
	if acc, err := cl.complete(ctx, g3.Token, rep1); err != nil || !acc {
		t.Fatalf("tile 1 completion: accepted=%v err=%v", acc, err)
	}

	// The job is done and bit-exact despite the lease churn.
	remote, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "exactly-once", remote, local)

	// Lease traffic for a finished job answers "gone".
	if err := cl.renew(ctx, g3.Token, RenewRequest{}); !errors.Is(err, errLeaseLost) {
		t.Fatalf("renew after job done = %v, want lease lost", err)
	}
	if _, err := cl.complete(ctx, g3.Token, rep1); !errors.Is(err, errLeaseLost) {
		t.Fatalf("complete after job done = %v, want lease lost", err)
	}
}

// TestClusterJobQueue: multiple named jobs run concurrently, each with
// its own spec, progress and retained result.
func TestClusterJobQueue(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	ctx := context.Background()

	specs := map[string]trigene.SearchSpec{
		"pairs":   {Order: 2, TopK: 3, Workers: 2},
		"triples": {Order: 3, TopK: 3, Workers: 2},
		"mi":      {Order: 3, TopK: 3, Objective: "mi", Workers: 2},
	}
	ids := make(map[string]string)
	for name, sp := range specs {
		id, err := cl.Submit(ctx, mx, sp, 3, name)
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		ids[name] = id
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jobs))
	}
	for _, j := range jobs {
		if j.State != StateRunning || j.SNPs != mx.SNPs() || j.Samples != mx.Samples() {
			t.Errorf("job %s status: %+v", j.ID, j)
		}
	}

	startWorkers(t, cl, 3)
	for name, sp := range specs {
		remote, err := cl.Wait(ctx, ids[name])
		if err != nil {
			t.Fatalf("wait %s: %v", name, err)
		}
		opts, err := sp.Options()
		if err != nil {
			t.Fatal(err)
		}
		local, err := sess.Search(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, name, remote, local)
		// Results are retained: a second fetch still answers.
		again, err := cl.Result(ctx, ids[name])
		if err != nil {
			t.Fatalf("re-fetch %s: %v", name, err)
		}
		reportsEqual(t, name+" retained", again, local)
	}
}

// TestClusterCancelAndRetention: cancel kills a job's leases, and the
// retention cap evicts the oldest finished jobs.
func TestClusterCancelAndRetention(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second, Retain: 2})
	ctx := context.Background()
	spec := trigene.SearchSpec{TopK: 2, Workers: 1}

	cancelled, err := cl.Submit(ctx, mx, spec, 2, "to-cancel")
	if err != nil {
		t.Fatal(err)
	}
	g, ok, err := cl.lease(ctx, LeaseRequest{Worker: "w"})
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if err := cl.Cancel(ctx, cancelled); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(ctx, cancelled)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state after cancel = %q", st.State)
	}
	if err := cl.renew(ctx, g.Token, RenewRequest{}); !errors.Is(err, errLeaseLost) {
		t.Fatalf("renew after cancel = %v, want lease lost", err)
	}
	if _, err := cl.Result(ctx, cancelled); err == nil {
		t.Fatal("result of a cancelled job answered")
	}

	// Finish three more jobs; with Retain=2 the cancelled job and the
	// first finished one are evicted.
	startWorkers(t, cl, 2)
	var finished []string
	for i := 0; i < 3; i++ {
		id, err := cl.Submit(ctx, mx, spec, 2, fmt.Sprintf("job%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
		finished = append(finished, id)
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(jobs))
	}
	if _, err := cl.Status(ctx, cancelled); err == nil {
		t.Error("evicted job still has status")
	}
	if _, err := cl.Result(ctx, finished[len(finished)-1]); err != nil {
		t.Errorf("retained job lost its result: %v", err)
	}
}

// TestClusterSubmitValidation: malformed submissions fail at the door.
func TestClusterSubmitValidation(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{})
	ctx := context.Background()

	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{}, 0, ""); err == nil {
		t.Error("zero tiles accepted")
	}
	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{Backend: "bogus"}, 2, ""); err == nil {
		t.Error("bogus backend accepted")
	}
	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{Approach: "V9"}, 2, ""); err == nil {
		t.Error("bogus approach accepted")
	}
	// A lease against an empty queue answers no-content, not an error.
	if _, ok, err := cl.lease(ctx, LeaseRequest{Worker: "w"}); err != nil || ok {
		t.Errorf("lease on empty queue: ok=%v err=%v", ok, err)
	}
	// Unknown job IDs answer not-found.
	if _, err := cl.Status(ctx, "j999"); err == nil {
		t.Error("unknown job status answered")
	}
	if _, err := cl.Result(ctx, "j999"); err == nil {
		t.Error("unknown job result answered")
	}
}

// TestClusterDeterministicFailure: a spec that parses but cannot
// execute (gpusim only supports order 3) fails the job with the
// worker's error, instead of re-issuing the tile forever.
func TestClusterDeterministicFailure(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	ctx := context.Background()
	startWorkers(t, cl, 1)

	id, err := cl.Submit(ctx, mx, trigene.SearchSpec{Backend: "gpusim:GN1", Order: 4}, 2, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Wait(ctx, id)
	if err == nil {
		t.Fatal("doomed job completed")
	}
	st, serr := cl.Status(ctx, id)
	if serr != nil {
		t.Fatal(serr)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Errorf("doomed job status: %+v", st)
	}
}

// TestClusterResultWhileRunning: the result endpoint refuses until the
// job finishes.
func TestClusterResultWhileRunning(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	ctx := context.Background()
	id, err := cl.Submit(ctx, mx, trigene.SearchSpec{}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Result(ctx, id); err == nil {
		t.Fatal("result of a running job answered")
	}
	st, err := cl.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.Done != 0 || st.Tiles != 2 {
		t.Errorf("fresh job status: %+v", st)
	}
}

// TestWeightedLeaseBatches pins the capability-weighted grant sizing:
// a worker advertising 4x the capacity of the slowest registered
// worker receives 4 tiles per grant (each under its own token), and
// the coordinator's worker registry records the traffic.
func TestWeightedLeaseBatches(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	ctx := context.Background()
	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{TopK: 2}, 8, ""); err != nil {
		t.Fatal(err)
	}

	slow, ok, err := cl.lease(ctx, LeaseRequest{Worker: "slow", Capacity: 1})
	if err != nil || !ok {
		t.Fatalf("slow lease: ok=%v err=%v", ok, err)
	}
	if len(slow.Granted) != 1 || slow.Granted[0].Token != slow.Token || slow.Granted[0].Tile != slow.Tile {
		t.Fatalf("slow grant = %+v, want a single self-consistent tile", slow)
	}

	fast, ok, err := cl.lease(ctx, LeaseRequest{Worker: "fast", Capacity: 4})
	if err != nil || !ok {
		t.Fatalf("fast lease: ok=%v err=%v", ok, err)
	}
	if len(fast.Granted) != 4 {
		t.Fatalf("fast grant carries %d tiles, want 4: %+v", len(fast.Granted), fast.Granted)
	}
	seen := map[int]bool{slow.Tile: true}
	for _, tg := range fast.Granted {
		if seen[tg.Tile] {
			t.Fatalf("tile %d granted twice", tg.Tile)
		}
		seen[tg.Tile] = true
		if tg.Token == "" {
			t.Fatalf("tile %d has no token", tg.Tile)
		}
	}
	if fast.Granted[0].Token != fast.Token || fast.Granted[0].Tile != fast.Tile {
		t.Errorf("batch head does not mirror Token/Tile: %+v", fast)
	}

	// The batch cap holds no matter the advertised ratio.
	huge, ok, err := cl.lease(ctx, LeaseRequest{Worker: "huge", Capacity: 1000})
	if err != nil || !ok {
		t.Fatalf("huge lease: ok=%v err=%v", ok, err)
	}
	if len(huge.Granted) != 3 { // 8 tiles - 1 - 4 = 3 left, under the cap of 4
		t.Fatalf("huge grant carries %d tiles, want the 3 remaining", len(huge.Granted))
	}

	ws, err := cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]WorkerStatus{}
	for _, w := range ws {
		byID[w.ID] = w
	}
	if byID["slow"].Granted != 1 || byID["fast"].Granted != 4 || byID["huge"].Granted != 3 {
		t.Errorf("registry grants: %+v", byID)
	}
	if byID["fast"].Capacity != 4 {
		t.Errorf("fast capacity = %g", byID["fast"].Capacity)
	}
}

// TestWeightedLeaseMeasuredRates: once every registered worker reports
// a measured tiles/sec, the measured currency replaces advertised
// capacity for batch sizing.
func TestWeightedLeaseMeasuredRates(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	ctx := context.Background()
	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{TopK: 2}, 12, ""); err != nil {
		t.Fatal(err)
	}
	// Advertised capacities say "equal"; measured rates say 3x.
	g, ok, err := cl.lease(ctx, LeaseRequest{Worker: "a", Capacity: 1, TilesPerSec: 2})
	if err != nil || !ok || len(g.Granted) != 1 {
		t.Fatalf("a: ok=%v err=%v grant=%+v", ok, err, g)
	}
	g, ok, err = cl.lease(ctx, LeaseRequest{Worker: "b", Capacity: 1, TilesPerSec: 6})
	if err != nil || !ok {
		t.Fatalf("b: ok=%v err=%v", ok, err)
	}
	if len(g.Granted) != 3 {
		t.Fatalf("b grant carries %d tiles, want 3 (measured 6 vs 2)", len(g.Granted))
	}
}

// TestWeightedLeaseConvergence is the acceptance check: workers
// advertising unequal capabilities converge a job to the same merged
// Report as a single-node run, with every tile accounted exactly once.
func TestWeightedLeaseConvergence(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	ctx := context.Background()

	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i, capacity := range []float64{1, 4, 2} {
		w := &Worker{Client: cl, ID: fmt.Sprintf("cap%d", i), Capacity: capacity, Poll: 5 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(wctx)
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })

	spec := trigene.SearchSpec{TopK: 6, Workers: 1}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	const tiles = 16
	id, err := cl.Submit(ctx, mx, spec, tiles, "weighted")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "weighted cluster", remote, local)

	ws, err := cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range ws {
		total += w.Completed
		if w.Completed > w.Granted {
			t.Errorf("worker %s completed %d of %d granted", w.ID, w.Completed, w.Granted)
		}
	}
	if total != tiles {
		t.Errorf("registry accounts %d completed tiles, want %d", total, tiles)
	}
}

// TestClusterAutotunedParity: AutoTune crosses the wire — each worker
// plans per tile, the tile Reports carry the trace, and the merged
// Report stays bit-exact with local autotuned and untuned runs.
func TestClusterAutotunedParity(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	cl.Tiles = 7
	startWorkers(t, cl, 4)
	ctx := context.Background()

	plain, err := sess.Search(ctx, trigene.WithTopK(5))
	if err != nil {
		t.Fatal(err)
	}
	localTuned, err := sess.Search(ctx, trigene.WithTopK(5), trigene.WithAutoTune())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "local autotuned", localTuned, plain)

	remote, err := sess.Search(ctx, trigene.WithCluster(cl), trigene.WithTopK(5), trigene.WithAutoTune())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "cluster autotuned", remote, plain)
	if remote.Plan == nil {
		t.Fatal("cluster-autotuned Report lost the plan trace on the wire")
	}
	if remote.Plan.Backend != "cpu" || remote.Plan.Grain <= 0 {
		t.Errorf("cluster plan trace: %+v", remote.Plan)
	}
}
