package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trigene"
	"trigene/internal/store"
)

// testLogger routes slog records into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// sessionFor builds a Session over mx, failing the test on error.
func sessionFor(t *testing.T, mx *trigene.Matrix) *trigene.Session {
	t.Helper()
	s, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCoordinatorServesPackedDataset: whatever the submission format,
// the dataset a worker fetches is .tpack bytes carrying the submitted
// matrix, and the lease grant names the content hash (not a byte
// hash), so binary and packed submissions of one dataset share cache
// entries.
func TestCoordinatorServesPackedDataset(t *testing.T) {
	mx := plantedMatrix(t)
	sess := sessionFor(t, mx)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	ctx := context.Background()

	binID, err := cl.Submit(ctx, mx, trigene.SearchSpec{}, 2, "binary-submit")
	if err != nil {
		t.Fatal(err)
	}
	packID, err := cl.SubmitSession(ctx, sess, trigene.SearchSpec{}, 2, "packed-submit")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{binID, packID} {
		raw, err := cl.dataset(ctx, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !store.IsPack(raw) {
			t.Fatalf("%s: served dataset is not a .tpack (magic %q)", id, raw[:4])
		}
		got, err := trigene.ReadPack(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: served pack does not load: %v", id, err)
		}
		if got.DatasetHash() != sess.DatasetHash() {
			t.Fatalf("%s: served pack hash %s != %s", id, got.DatasetHash(), sess.DatasetHash())
		}
	}
	// Both submissions carry the same content hash in their grants.
	grant, ok, err := cl.lease(ctx, LeaseRequest{Worker: "probe"})
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if grant.DatasetSHA256 != sess.DatasetHash() {
		t.Fatalf("grant names %s, want content hash %s", grant.DatasetSHA256, sess.DatasetHash())
	}
}

// TestPackedSubmitParity: a job submitted as a pre-encoded pack and
// executed by loopback workers merges bit-exact with the local run.
func TestPackedSubmitParity(t *testing.T) {
	mx := plantedMatrix(t)
	sess := sessionFor(t, mx)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	startWorkers(t, cl, 2)
	ctx := context.Background()

	spec := trigene.SearchSpec{TopK: 5}
	id, err := cl.SubmitSession(ctx, sess, spec, 5, "packed")
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Search(ctx, trigene.WithTopK(5))
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "packed submit", got, want)
}

// TestSessionCacheLRU: the worker's session cache is a bounded LRU —
// recently used datasets survive, the least recently used is evicted,
// and re-putting an existing key refreshes its recency.
func TestSessionCacheLRU(t *testing.T) {
	sessions := make([]*trigene.Session, 4)
	for i := range sessions {
		mx, err := trigene.Generate(trigene.GenConfig{SNPs: 6, Samples: 40, Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sessionFor(t, mx)
	}
	sc := sessionCache{cap: 2}
	sc.put("a", sessions[0])
	sc.put("b", sessions[1])
	if _, ok := sc.get("a"); !ok {
		t.Fatal("a missing")
	}
	// a is now most recent; inserting c must evict b.
	sc.put("c", sessions[2])
	if _, ok := sc.get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := sc.get("c"); !ok {
		t.Fatal("c missing")
	}
	if _, ok := sc.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	// a was touched after c, so inserting d evicts c.
	sc.put("d", sessions[3])
	if _, ok := sc.get("c"); ok {
		t.Fatal("c survived eviction")
	}
	if len(sc.keys) != 2 || len(sc.vals) != 2 {
		t.Fatalf("cache holds %d/%d entries, want 2", len(sc.keys), len(sc.vals))
	}
}

// TestSessionCacheDefaultCap: the zero-value cache bounds itself.
func TestSessionCacheDefaultCap(t *testing.T) {
	var sc sessionCache
	for i := 0; i < 3*defaultSessionCacheCap; i++ {
		mx, err := trigene.Generate(trigene.GenConfig{SNPs: 5, Samples: 30, Seed: int64(200 + i)})
		if err != nil {
			t.Fatal(err)
		}
		sc.put(fmt.Sprintf("k%d", i), sessionFor(t, mx))
	}
	if len(sc.keys) != defaultSessionCacheCap {
		t.Fatalf("cache grew to %d entries, want %d", len(sc.keys), defaultSessionCacheCap)
	}
}

// TestWorkerPackDiskCache: a worker with a cache dir persists the
// fetched dataset as <hash>.tpack, and a second worker sharing the
// directory loads it without touching the coordinator.
func TestWorkerPackDiskCache(t *testing.T) {
	mx := plantedMatrix(t)
	sess := sessionFor(t, mx)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Client: cl, ID: "cacher", Poll: 5 * time.Millisecond, CacheDir: dir, Logger: testLogger(t)}
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()

	id, err := cl.SubmitSession(ctx, sess, trigene.SearchSpec{}, 2, "cached")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done

	path := filepath.Join(dir, sess.DatasetHash()+".tpack")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("pack not persisted: %v", err)
	}

	// A fresh worker loads it from disk: point it at an unreachable
	// coordinator so a fetch attempt would fail loudly.
	w2 := &Worker{Client: NewClient("http://127.0.0.1:1"), CacheDir: dir, Logger: testLogger(t)}
	s := w2.sessionFromDisk(sess.DatasetHash())
	if s == nil {
		t.Fatal("disk cache miss for a persisted pack")
	}
	defer s.Close()
	if s.DatasetHash() != sess.DatasetHash() {
		t.Fatalf("disk cache returned %s, want %s", s.DatasetHash(), sess.DatasetHash())
	}
}

// TestWorkerLegacyByteHashGrant: a pre-store coordinator serves the
// raw binary dataset and names sha256(bytes) in the grant; the worker
// must accept that fingerprint (and reject a wrong one) so mixed
// versions fail over instead of looping forever.
func TestWorkerLegacyByteHashGrant(t *testing.T) {
	mx := plantedMatrix(t)
	var bin bytes.Buffer
	if err := trigene.WriteBinary(&bin, mx); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/dataset", func(w http.ResponseWriter, r *http.Request) {
		w.Write(bin.Bytes())
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	w := &Worker{Client: NewClient(srv.URL), Logger: testLogger(t)}
	legacy := fmt.Sprintf("%x", sha256.Sum256(bin.Bytes()))
	s, err := w.session(context.Background(), LeaseGrant{Job: "j1", DatasetSHA256: legacy})
	if err != nil {
		t.Fatalf("legacy byte-hash grant rejected: %v", err)
	}
	if s.SNPs() != mx.SNPs() {
		t.Fatalf("session has %d SNPs, want %d", s.SNPs(), mx.SNPs())
	}
	if _, err := w.session(context.Background(), LeaseGrant{Job: "j1", DatasetSHA256: "0badc0de"}); err == nil {
		t.Fatal("wrong fingerprint accepted")
	}
}
