package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"trigene"
)

// TestClusterPermParity is the permutation-job acceptance gate: a
// coordinator and loopback workers produce per-candidate hit counts and
// p-values bit-exact with the single-node bit-plane kernel, through
// both the PermExecutor surface and the public WithCluster option. The
// odd tile count exercises uneven permutation ranges.
func TestClusterPermParity(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	cl.Tiles = 7
	startWorkers(t, cl, 3)
	ctx := context.Background()

	candidates := [][]int{{3, 9, 15}, {0, 1}, {2, 5, 7, 11}}
	opts := []trigene.Option{trigene.WithPermutations(120), trigene.WithSeed(42), trigene.WithWorkers(2)}

	local, err := sess.PermutationTestAll(ctx, candidates, opts...)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sess.PermutationTestAll(ctx, candidates, append(opts, trigene.WithCluster(cl))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("cluster returned %d results, want %d", len(remote), len(local))
	}
	for i := range local {
		if *remote[i] != *local[i] {
			t.Errorf("candidate %v: cluster %+v != local %+v", candidates[i], *remote[i], *local[i])
		}
	}

	// The executor surface directly: the Report's Perm block carries the
	// same merged counts.
	spec := trigene.SearchSpec{
		Perm: &trigene.PermSpec{SNPs: candidates, Permutations: 120, Seed: 42},
	}
	rep, err := cl.ExecutePerm(ctx, mx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Perm == nil {
		t.Fatal("perm job Report carries no Perm block")
	}
	if rep.Perm.Permutations != 120 || rep.Perm.Seed != 42 {
		t.Errorf("Perm block = %d permutations seed %d, want 120/42", rep.Perm.Permutations, rep.Perm.Seed)
	}
	if rep.Perm.Tiles != 7 {
		t.Errorf("Perm block merged %d tiles, want 7", rep.Perm.Tiles)
	}
	if len(rep.Perm.Results) != len(local) {
		t.Fatalf("Perm block carries %d results, want %d", len(rep.Perm.Results), len(local))
	}
	for i, pc := range rep.Perm.Results {
		want := local[i]
		if pc.Observed != want.Observed || pc.AsGoodOrBetter != want.AsGoodOrBetter || pc.PValue != want.PValue {
			t.Errorf("candidate %v: cluster %+v != local %+v", candidates[i], pc, *want)
		}
	}
}

// TestClusterPermJSONRoundTrip: the Perm block survives the stable
// Report wire format (the same codec `trigened result` emits).
func TestClusterPermJSONRoundTrip(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{LeaseTTL: 5 * time.Second})
	cl.Tiles = 4
	startWorkers(t, cl, 2)

	spec := trigene.SearchSpec{Perm: &trigene.PermSpec{SNPs: [][]int{{3, 9, 15}}, Permutations: 60, Seed: 7}}
	rep, err := cl.ExecutePerm(context.Background(), mx, spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back trigene.Report
	if err := back.UnmarshalJSON(raw); err != nil {
		t.Fatal(err)
	}
	if back.Perm == nil || len(back.Perm.Results) != 1 {
		t.Fatalf("Perm block lost in round trip: %+v", back.Perm)
	}
	got, want := back.Perm.Results[0], rep.Perm.Results[0]
	if got.Observed != want.Observed || got.AsGoodOrBetter != want.AsGoodOrBetter || got.PValue != want.PValue {
		t.Errorf("round-tripped result %+v != %+v", got, want)
	}
}

// TestClusterPermSubmitValidation: malformed permutation submissions
// are rejected at the door, not discovered by workers.
func TestClusterPermSubmitValidation(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{LeaseTTL: time.Second})
	ctx := context.Background()

	cases := []struct {
		name  string
		spec  trigene.SearchSpec
		tiles int
		want  string
	}{
		{"no candidates", trigene.SearchSpec{Perm: &trigene.PermSpec{}}, 2, "no candidate combinations"},
		{"order 1", trigene.SearchSpec{Perm: &trigene.PermSpec{SNPs: [][]int{{5}}}}, 2, "order"},
		{"unsorted", trigene.SearchSpec{Perm: &trigene.PermSpec{SNPs: [][]int{{9, 3}}}}, 2, "increasing"},
		{"out of range", trigene.SearchSpec{Perm: &trigene.PermSpec{SNPs: [][]int{{3, 900}}}}, 2, "out of range"},
		{"with screen", trigene.SearchSpec{
			Perm:   &trigene.PermSpec{SNPs: [][]int{{3, 9}}},
			Screen: &trigene.ScreenSpec{MaxSurvivors: 8},
		}, 2, "do not combine"},
		{"with order", trigene.SearchSpec{Order: 3, Perm: &trigene.PermSpec{SNPs: [][]int{{3, 9}}}}, 2, "do not combine"},
		{"too many tiles", trigene.SearchSpec{Perm: &trigene.PermSpec{SNPs: [][]int{{3, 9}}, Permutations: 4}}, 5, "must not exceed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.Submit(ctx, mx, tc.spec, tc.tiles, "")
			if err == nil {
				t.Fatal("submit accepted, want rejection")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
