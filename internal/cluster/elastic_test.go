package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"trigene"
)

// TestWorkerDrainAndLeave drives the drain protocol on the wire
// directly: a draining worker gets no new grants, leave releases every
// lease it still holds for immediate re-issue (no TTL wait), the
// released tiles re-grant at attempt 1 (a clean hand-back is not a
// strike against the tile), and the leaver's stale completion is
// discarded.
func TestWorkerDrainAndLeave(t *testing.T) {
	mx := plantedMatrix(t)
	ctx := context.Background()
	// A TTL far beyond the test duration: only the release path can
	// make the leaver's tiles grantable again.
	cl, co := newTestCluster(t, Config{LeaseTTL: time.Hour})
	id, err := cl.Submit(ctx, mx, trigene.SearchSpec{TopK: 2, Workers: 1}, 4, "drainy")
	if err != nil {
		t.Fatal(err)
	}

	ga1, ok, err := cl.lease(ctx, LeaseRequest{Worker: "leaver"})
	if err != nil || !ok {
		t.Fatalf("lease 1: ok=%v err=%v", ok, err)
	}
	ga2, ok, err := cl.lease(ctx, LeaseRequest{Worker: "leaver"})
	if err != nil || !ok {
		t.Fatalf("lease 2: ok=%v err=%v", ok, err)
	}

	if err := cl.Drain(ctx, "leaver"); err != nil {
		t.Fatal(err)
	}
	ws, err := cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range ws {
		if w.ID == "leaver" {
			found = true
			if !w.Draining {
				t.Error("registry does not show the worker draining")
			}
		}
	}
	if !found {
		t.Fatal("draining worker missing from the registry")
	}
	if _, ok, err := cl.lease(ctx, LeaseRequest{Worker: "leaver"}); err != nil || ok {
		t.Fatalf("draining worker got a grant: ok=%v err=%v", ok, err)
	}

	released, err := cl.Leave(ctx, "leaver")
	if err != nil {
		t.Fatal(err)
	}
	if released != 2 {
		t.Fatalf("leave released %d leases, want 2", released)
	}
	ws, err = cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.ID == "leaver" {
			t.Fatal("left worker still registered")
		}
	}

	// The released tiles re-issue immediately — and as fresh attempts.
	gb, ok, err := cl.lease(ctx, LeaseRequest{Worker: "stayer"})
	if err != nil || !ok {
		t.Fatalf("post-leave lease: ok=%v err=%v", ok, err)
	}
	if gb.Tile != ga1.Tile {
		t.Fatalf("post-leave grant = tile %d, want released tile %d", gb.Tile, ga1.Tile)
	}
	co.mu.Lock()
	attempts := co.jobs[id].leases.Attempts(gb.Tile)
	co.mu.Unlock()
	if attempts != 1 {
		t.Errorf("released tile re-granted at attempt %d, want 1", attempts)
	}

	// The leaver's abandoned token is dead: its completion is discarded.
	if acc, err := cl.complete(ctx, ga1.Token, &trigene.Report{}); err != nil || acc {
		t.Fatalf("left worker's completion: accepted=%v err=%v, want discarded", acc, err)
	}
	_ = ga2
}

// TestWorkerDrainHandsOffMidJob is the elastic integration path: a
// lone worker starts a job, drains mid-job (finishing its current
// batch, Run returning nil), and a worker joining mid-job finishes the
// rest immediately — with an hour-long TTL, only the leave-time lease
// release makes that possible — to a bit-exact Report.
func TestWorkerDrainHandsOffMidJob(t *testing.T) {
	mx, err := trigene.Generate(trigene.GenConfig{SNPs: 120, Samples: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := trigene.SearchSpec{TopK: 5, Workers: 1}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Search(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}

	cl, _ := newTestCluster(t, Config{LeaseTTL: time.Hour})
	id, err := cl.Submit(ctx, mx, spec, 6, "handoff")
	if err != nil {
		t.Fatal(err)
	}

	leaver := &Worker{Client: cl, ID: "leaver", Poll: 2 * time.Millisecond}
	lctx, lcancel := context.WithCancel(ctx)
	t.Cleanup(lcancel)
	runErr := make(chan error, 1)
	go func() { runErr <- leaver.Run(lctx) }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leaver never completed a tile")
		}
		time.Sleep(time.Millisecond)
	}
	leaver.Drain(ctx)
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained Run returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drained worker never exited")
	}

	// A new worker joins mid-job and finishes what the leaver left.
	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		(&Worker{Client: cl, ID: "joiner", Poll: 2 * time.Millisecond}).Run(wctx)
	}()
	t.Cleanup(func() { cancel(); wg.Wait() })

	remote, err := cl.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "drain hand-off", remote, local)

	ws, err := cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.ID == "leaver" {
			t.Error("drained worker still in the registry")
		}
	}
}

// TestWorkerDrainWhileIdle: a drain reaches an idle worker through the
// poll wait — Run returns nil promptly, not a poll interval later.
func TestWorkerDrainWhileIdle(t *testing.T) {
	cl, _ := newTestCluster(t, Config{LeaseTTL: time.Minute})
	w := &Worker{Client: cl, ID: "idler", Poll: time.Hour}
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Run reach its idle wait
	w.Drain(context.Background())
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("idle drained Run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle worker ignored the drain")
	}
}

// TestJobMaxWorkers: a job's MaxWorkers cap admits only that many
// distinct live-lease holders; completion and expiry both free a slot.
func TestJobMaxWorkers(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var mu sync.Mutex
	now := time.Unix(4000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	ttl := 10 * time.Second
	cl, _ := newTestCluster(t, Config{LeaseTTL: ttl, Now: clock})
	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{TopK: 2, Workers: 1, MaxWorkers: 1}, 4, "capped"); err != nil {
		t.Fatal(err)
	}

	ga, ok, err := cl.lease(ctx, LeaseRequest{Worker: "a"})
	if err != nil || !ok {
		t.Fatalf("a: ok=%v err=%v", ok, err)
	}
	// The cap is full; a second worker is refused…
	if _, ok, err := cl.lease(ctx, LeaseRequest{Worker: "b"}); err != nil || ok {
		t.Fatalf("b admitted past MaxWorkers=1: ok=%v err=%v", ok, err)
	}
	// …but the existing holder may keep taking tiles.
	ga2, ok, err := cl.lease(ctx, LeaseRequest{Worker: "a"})
	if err != nil || !ok {
		t.Fatalf("a second tile: ok=%v err=%v", ok, err)
	}

	// Completing a's tiles frees the slot for b.
	if !completeTile(t, ctx, cl, sess, ga, ga.Granted[0]) || !completeTile(t, ctx, cl, sess, ga2, ga2.Granted[0]) {
		t.Fatal("a's completions discarded")
	}
	gb, ok, err := cl.lease(ctx, LeaseRequest{Worker: "b"})
	if err != nil || !ok {
		t.Fatalf("b after slot freed: ok=%v err=%v", ok, err)
	}
	// b holds the only live lease now; a is the one shut out…
	if _, ok, err := cl.lease(ctx, LeaseRequest{Worker: "a"}); err != nil || ok {
		t.Fatalf("a admitted alongside b: ok=%v err=%v", ok, err)
	}
	// …until b's lease expires, which frees the slot again.
	advance(ttl + time.Second)
	gc, ok, err := cl.lease(ctx, LeaseRequest{Worker: "c"})
	if err != nil || !ok {
		t.Fatalf("c after expiry: ok=%v err=%v", ok, err)
	}
	if gc.Tile != gb.Tile {
		t.Errorf("c granted tile %d, want b's expired tile %d re-issued", gc.Tile, gb.Tile)
	}
}

// TestJobDeadline: a job still running past its wall-clock budget is
// failed on observation, with completed work accounted in the error.
func TestJobDeadline(t *testing.T) {
	mx := plantedMatrix(t)
	sess, err := trigene.NewSession(mx)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var mu sync.Mutex
	now := time.Unix(5000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	cl, _ := newTestCluster(t, Config{LeaseTTL: 10 * time.Second, Now: clock})
	id, err := cl.Submit(ctx, mx, trigene.SearchSpec{TopK: 2, Workers: 1, DeadlineMillis: 5000}, 2, "late")
	if err != nil {
		t.Fatal(err)
	}
	// An uncapped job submitted alongside must be untouched by the
	// neighbor's deadline.
	free, err := cl.Submit(ctx, mx, trigene.SearchSpec{TopK: 2, Workers: 1}, 2, "free")
	if err != nil {
		t.Fatal(err)
	}

	g, ok, err := cl.lease(ctx, LeaseRequest{Worker: "w"})
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if !completeTile(t, ctx, cl, sess, g, g.Granted[0]) {
		t.Fatal("completion discarded")
	}

	mu.Lock()
	now = now.Add(6 * time.Second)
	mu.Unlock()

	st, err := cl.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("state past deadline = %q, want failed", st.State)
	}
	if want := "deadline of 5000ms exceeded with 1/2 tiles done"; st.Error != want {
		t.Errorf("deadline error = %q, want %q", st.Error, want)
	}
	if _, err := cl.Result(ctx, id); err == nil {
		t.Error("result of a deadline-failed job answered")
	}
	// Lease traffic for the failed job is dead; the uncapped job still
	// grants.
	g2, ok, err := cl.lease(ctx, LeaseRequest{Worker: "w"})
	if err != nil || !ok {
		t.Fatalf("lease after deadline: ok=%v err=%v", ok, err)
	}
	if g2.Job != free {
		t.Errorf("grant from %s, want the uncapped job %s", g2.Job, free)
	}
	if st, err := cl.Status(ctx, free); err != nil || st.State != StateRunning {
		t.Errorf("uncapped job: %+v, %v", st, err)
	}
}

// TestElasticSpecValidation: negative policy fields fail at the door.
func TestElasticSpecValidation(t *testing.T) {
	mx := plantedMatrix(t)
	cl, _ := newTestCluster(t, Config{})
	ctx := context.Background()
	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{MaxWorkers: -1}, 2, ""); err == nil {
		t.Error("negative MaxWorkers accepted")
	}
	if _, err := cl.Submit(ctx, mx, trigene.SearchSpec{DeadlineMillis: -5}, 2, ""); err == nil {
		t.Error("negative DeadlineMillis accepted")
	}
}
