// Durable coordinator state: a write-ahead journal plus snapshots
// (internal/wal) under Config.StateDir make every acknowledged state
// transition of the Coordinator survive a crash.
//
// The journal records the coordinator's state machine, not its bytes:
// one JSON record per transition — submit, grant, complete, release,
// finish — replayed in order on top of the latest snapshot. Datasets
// are deliberately kept out of the journal; they are content-addressed
// files under StateDir/packs/<sha256>.tpack, written (and fsynced)
// before the submit record that references them, and garbage-collected
// on recovery once no running job needs them.
//
// Durability policy is sync-on-ack: transitions a client builds on
// (submit accepted, tile result counted, job finished, worker released)
// are fsynced before the response; lease grants are journaled through
// the buffer only, because losing a grant is benign — the restored
// sequence counter stays below the lost grant's, so its holder's
// completion answers Unknown, the worker abandons the tile, and the
// tile re-issues. That asymmetry keeps the grant path at in-memory
// speed (see the durable benchsuite experiment's regression gate).
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"trigene"
	"trigene/internal/sched"
	"trigene/internal/wal"
)

// Journal record types (walRecord.T).
const (
	recSubmit   = "submit"
	recGrant    = "grant"
	recComplete = "complete"
	recRelease  = "release"
	recFinish   = "finish"
)

// walRecord is one journaled state transition. T selects the type;
// the other fields are per-type (UnixNs is the submission instant of
// a submit, the lease deadline of a grant, the finish instant of a
// finish).
type walRecord struct {
	T   string `json:"t"`
	Job string `json:"job,omitempty"`

	// submit
	Name        string              `json:"name,omitempty"`
	Spec        *trigene.SearchSpec `json:"spec,omitempty"`
	Tiles       int                 `json:"tiles,omitempty"`
	ScreenTiles int                 `json:"screenTiles,omitempty"`
	SHA         string              `json:"sha,omitempty"`
	SNPs        int                 `json:"snps,omitempty"`
	Samples     int                 `json:"samples,omitempty"`

	// grant / complete / release
	Tile    int    `json:"tile,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Worker  string `json:"worker,omitempty"`

	// complete: Report for search tiles, Screen for a screened job's
	// stage-1 tiles, Perm for a permutation job's range tiles. The
	// stage-2 pin is deliberately not journaled — recovery recomputes it
	// deterministically from the replayed scores.
	Report json.RawMessage `json:"report,omitempty"`
	Screen json.RawMessage `json:"screen,omitempty"`
	Perm   json.RawMessage `json:"perm,omitempty"`

	// finish
	State  string          `json:"state,omitempty"`
	Err    string          `json:"err,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`

	UnixNs int64 `json:"ns,omitempty"`
}

// walSnapshot is the full coordinator state a snapshot compacts the
// journal into. The worker capability registry is deliberately absent:
// it is a cache rebuilt from the first post-restart lease requests and
// heartbeats.
type walSnapshot struct {
	Seq  int      `json:"seq"`
	Jobs []walJob `json:"jobs"` // submission order
}

// walJob is one job's snapshot state.
type walJob struct {
	ID              string             `json:"id"`
	Name            string             `json:"name,omitempty"`
	Spec            trigene.SearchSpec `json:"spec"`
	Tiles           int                `json:"tiles"`
	State           string             `json:"state"`
	Err             string             `json:"err,omitempty"`
	SHA             string             `json:"sha,omitempty"`
	SNPs            int                `json:"snps,omitempty"`
	Samples         int                `json:"samples,omitempty"`
	LeaseSeq        uint64             `json:"leaseSeq,omitempty"`
	TileStates      []sched.TileState  `json:"tileStates,omitempty"`
	Grantees        []walGrantee       `json:"grantees,omitempty"`
	Reports         []json.RawMessage  `json:"reports,omitempty"`
	ScreenTiles     int                `json:"screenTiles,omitempty"`
	Screens         []json.RawMessage  `json:"screens,omitempty"`
	Perms           []json.RawMessage  `json:"perms,omitempty"`
	Result          json.RawMessage    `json:"result,omitempty"`
	SubmittedUnixNs int64              `json:"sub"`
	FinishedUnixNs  int64              `json:"fin,omitempty"`
}

// walGrantee is one tile's lease holder in a snapshot.
type walGrantee struct {
	Tile   int    `json:"tile"`
	Worker string `json:"worker"`
	Seq    uint64 `json:"seq"`
}

// Recover opens (creating if empty) the durable state under
// cfg.StateDir and returns a Coordinator journaling to it, with every
// job the journal records rebuilt: finished jobs keep their merged
// results, running jobs keep their queue position, completed tiles and
// restored leases — a worker that survived the coordinator crash can
// renew and complete under its pre-crash tokens, and a dead worker's
// tiles re-issue when their restored deadlines pass. A job whose last
// tile completed but whose finish record was lost with the crash is
// merged during recovery, so its result is bit-exact with the
// uninterrupted run.
func Recover(cfg Config) (*Coordinator, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("cluster: Recover requires Config.StateDir")
	}
	c := NewCoordinator(cfg)
	l, err := wal.Open(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	c.log = l
	c.mu.Lock()
	err = c.recoverLocked()
	c.mu.Unlock()
	if err != nil {
		l.Close()
		return nil, err
	}
	return c, nil
}

// Close flushes and closes the journal; the coordinator must not
// serve requests afterwards. It is a no-op for in-memory coordinators.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.Close()
	c.log = nil
	return err
}

// recoverLocked rebuilds the coordinator from the opened log:
// snapshot, then journal replay, then the fixups replay cannot express
// as records — reloading running jobs' datasets from the pack store,
// merging jobs whose finish record the crash swallowed, and collecting
// packs no running job references. Ends by compacting the recovered
// state into a fresh snapshot, so journals stay bounded across
// repeated restarts.
func (c *Coordinator) recoverLocked() error {
	c.replaying = true
	if snap := c.log.Snapshot(); len(snap) > 0 {
		if err := c.importSnapshotLocked(snap); err != nil {
			c.replaying = false
			return err
		}
	}
	replayed := len(c.log.Records())
	for _, raw := range c.log.Records() {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// Records are CRC-framed, so this is a version mismatch,
			// not corruption; skipping one transition beats refusing
			// every job in the log.
			c.cfg.Logger.Warn("wal: skipping undecodable record", "error", err)
			continue
		}
		c.applyLocked(rec)
	}
	c.replaying = false

	running := 0
	for _, id := range append([]string(nil), c.order...) {
		j := c.jobs[id]
		if j == nil || j.state != StateRunning {
			continue
		}
		if j.screened() && j.stage2 == nil && j.screenDone() {
			// The stage-1 phase finished but the crash swallowed the pin:
			// recompute it from the replayed scores — MergeScreens and
			// SelectSurvivors are deterministic, so the stage-2 spec is
			// identical to the one pre-crash grants carried.
			c.pinStage2Locked(j)
			if j.state != StateRunning {
				continue
			}
		}
		if j.leases.Done() == j.tiles {
			// Every tile completed but the finish record was lost with
			// the crash: merge now, exactly as the uninterrupted run
			// would have.
			c.mergeLocked(j)
			continue
		}
		data, err := os.ReadFile(c.packPath(j.datasetSHA))
		if err != nil {
			c.cfg.Logger.Error("dataset pack lost after recovery", "job", j.id, "error", err)
			c.finishLocked(j, StateFailed, fmt.Sprintf("dataset missing after recovery: %v", err))
			continue
		}
		j.dataset = data
		running++
	}
	c.gcPacksLocked()
	if replayed > 0 {
		if err := c.snapshotLocked(); err != nil {
			return err
		}
	}
	if err := c.commitLocked(); err != nil {
		return err
	}
	c.cfg.Logger.Info("recovered durable state",
		"jobs", len(c.order), "running", running, "stateDir", c.cfg.StateDir)
	return nil
}

// applyLocked replays one journal record onto the in-memory state.
// Every case tolerates records referencing jobs that later finished
// and were evicted (their submit replays, their finish evicts again).
func (c *Coordinator) applyLocked(rec walRecord) {
	switch rec.T {
	case recSubmit:
		j := &job{
			id:          rec.Job,
			name:        rec.Name,
			tiles:       rec.Tiles,
			state:       StateRunning,
			datasetSHA:  rec.SHA,
			snps:        rec.SNPs,
			samples:     rec.Samples,
			leases:      sched.NewLeaseTable(rec.Tiles),
			reports:     make([]*trigene.Report, rec.Tiles),
			grantee:     make(map[int]granteeRef),
			screenTiles: rec.ScreenTiles,
			submitted:   time.Unix(0, rec.UnixNs),
		}
		if rec.ScreenTiles > 0 {
			j.screens = make([]*trigene.ScreenScores, rec.ScreenTiles)
		}
		if rec.Spec != nil {
			j.spec = *rec.Spec
		}
		if j.perm() {
			j.perms = make([]*trigene.PermScores, rec.Tiles)
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		// Job IDs are "j<n>"; the counter resumes past every replayed
		// ID so restarts never mint an ID a worker may still hold.
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "j")); err == nil && n > c.seq {
			c.seq = n
		}
	case recGrant:
		j := c.jobs[rec.Job]
		if j == nil || j.state != StateRunning {
			return
		}
		j.leases.RestoreGrant(rec.Tile, rec.Seq, rec.Attempt, time.Unix(0, rec.UnixNs))
		j.grantee[rec.Tile] = granteeRef{worker: rec.Worker, seq: rec.Seq}
	case recComplete:
		j := c.jobs[rec.Job]
		if j == nil || j.state != StateRunning {
			return
		}
		if j.screened() && rec.Tile < j.screenTiles {
			var scores trigene.ScreenScores
			if err := json.Unmarshal(rec.Screen, &scores); err != nil {
				c.cfg.Logger.Warn("wal: undecodable stage-1 scores",
					"job", rec.Job, "tile", rec.Tile, "error", err)
				return
			}
			j.leases.RestoreDone(rec.Tile)
			j.screens[rec.Tile] = &scores
			return
		}
		if j.perm() {
			var perm trigene.PermScores
			if err := json.Unmarshal(rec.Perm, &perm); err != nil {
				c.cfg.Logger.Warn("wal: undecodable tile perm scores",
					"job", rec.Job, "tile", rec.Tile, "error", err)
				return
			}
			j.leases.RestoreDone(rec.Tile)
			j.perms[rec.Tile] = &perm
			return
		}
		var rep trigene.Report
		if err := json.Unmarshal(rec.Report, &rep); err != nil {
			c.cfg.Logger.Warn("wal: undecodable tile report",
				"job", rec.Job, "tile", rec.Tile, "error", err)
			return
		}
		j.leases.RestoreDone(rec.Tile)
		j.reports[rec.Tile] = &rep
	case recRelease:
		j := c.jobs[rec.Job]
		if j == nil || j.state != StateRunning {
			return
		}
		if j.leases.Release(rec.Tile, rec.Seq) {
			delete(j.grantee, rec.Tile)
		}
	case recFinish:
		j := c.jobs[rec.Job]
		if j == nil {
			return
		}
		j.state = rec.State
		j.err = rec.Err
		j.dataset = nil
		j.reports = nil
		j.perms = nil
		j.grantee = nil
		j.finished = time.Unix(0, rec.UnixNs)
		if len(rec.Result) > 0 {
			var rep trigene.Report
			if err := json.Unmarshal(rec.Result, &rep); err == nil {
				j.result = &rep
			}
		}
		c.evictFinishedLocked()
	default:
		c.cfg.Logger.Warn("wal: skipping record of unknown type", "type", rec.T)
	}
}

// importSnapshotLocked rebuilds jobs from a compacted snapshot.
func (c *Coordinator) importSnapshotLocked(data []byte) error {
	var snap walSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("cluster: decoding snapshot: %w", err)
	}
	c.seq = snap.Seq
	for _, wj := range snap.Jobs {
		j := &job{
			id:         wj.ID,
			name:       wj.Name,
			spec:       wj.Spec,
			tiles:      wj.Tiles,
			state:      wj.State,
			err:        wj.Err,
			datasetSHA: wj.SHA,
			snps:       wj.SNPs,
			samples:    wj.Samples,
			leases:     sched.ImportLeaseTable(wj.LeaseSeq, wj.TileStates),
			submitted:  time.Unix(0, wj.SubmittedUnixNs),
		}
		if wj.TileStates == nil {
			j.leases = sched.NewLeaseTable(wj.Tiles)
		}
		if wj.FinishedUnixNs != 0 {
			j.finished = time.Unix(0, wj.FinishedUnixNs)
		}
		if len(wj.Result) > 0 {
			var rep trigene.Report
			if err := json.Unmarshal(wj.Result, &rep); err == nil {
				j.result = &rep
			}
		}
		if wj.State == StateRunning {
			j.reports = make([]*trigene.Report, wj.Tiles)
			for i, raw := range wj.Reports {
				if i >= wj.Tiles || len(raw) == 0 {
					continue
				}
				var rep trigene.Report
				if err := json.Unmarshal(raw, &rep); err == nil {
					j.reports[i] = &rep
				}
			}
			j.screenTiles = wj.ScreenTiles
			if wj.ScreenTiles > 0 {
				j.screens = make([]*trigene.ScreenScores, wj.ScreenTiles)
				for i, raw := range wj.Screens {
					if i >= wj.ScreenTiles || len(raw) == 0 {
						continue
					}
					var sc trigene.ScreenScores
					if err := json.Unmarshal(raw, &sc); err == nil {
						j.screens[i] = &sc
					}
				}
			}
			if j.perm() {
				j.perms = make([]*trigene.PermScores, wj.Tiles)
				for i, raw := range wj.Perms {
					if i >= wj.Tiles || len(raw) == 0 {
						continue
					}
					var ps trigene.PermScores
					if err := json.Unmarshal(raw, &ps); err == nil {
						j.perms[i] = &ps
					}
				}
			}
			j.grantee = make(map[int]granteeRef, len(wj.Grantees))
			for _, g := range wj.Grantees {
				j.grantee[g.Tile] = granteeRef{worker: g.Worker, seq: g.Seq}
			}
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
	}
	return nil
}

// exportLocked snapshots the full coordinator state.
func (c *Coordinator) exportLocked() walSnapshot {
	snap := walSnapshot{Seq: c.seq, Jobs: make([]walJob, 0, len(c.order))}
	for _, id := range c.order {
		j := c.jobs[id]
		wj := walJob{
			ID:              j.id,
			Name:            j.name,
			Spec:            j.spec,
			Tiles:           j.tiles,
			State:           j.state,
			Err:             j.err,
			SHA:             j.datasetSHA,
			SNPs:            j.snps,
			Samples:         j.samples,
			SubmittedUnixNs: j.submitted.UnixNano(),
		}
		wj.LeaseSeq, wj.TileStates = j.leases.Export()
		if !j.finished.IsZero() {
			wj.FinishedUnixNs = j.finished.UnixNano()
		}
		if j.result != nil {
			wj.Result, _ = json.Marshal(j.result)
		}
		if j.state == StateRunning {
			wj.Reports = make([]json.RawMessage, j.tiles)
			for i, rep := range j.reports {
				if rep != nil {
					wj.Reports[i], _ = json.Marshal(rep)
				}
			}
			wj.ScreenTiles = j.screenTiles
			if j.screenTiles > 0 {
				wj.Screens = make([]json.RawMessage, j.screenTiles)
				for i, sc := range j.screens {
					if sc != nil {
						wj.Screens[i], _ = json.Marshal(sc)
					}
				}
			}
			if j.perm() {
				wj.Perms = make([]json.RawMessage, j.tiles)
				for i, ps := range j.perms {
					if ps != nil {
						wj.Perms[i], _ = json.Marshal(ps)
					}
				}
			}
			wj.Grantees = make([]walGrantee, 0, len(j.grantee))
			for tile, g := range j.grantee {
				wj.Grantees = append(wj.Grantees, walGrantee{Tile: tile, Worker: g.worker, Seq: g.seq})
			}
			sort.Slice(wj.Grantees, func(a, b int) bool { return wj.Grantees[a].Tile < wj.Grantees[b].Tile })
		}
		snap.Jobs = append(snap.Jobs, wj)
	}
	return snap
}

// journalLocked appends one record to the journal buffer. It is a
// no-op for in-memory coordinators and during replay. Append errors
// are logged, not returned: the in-memory transition has already
// happened, and the callers that must not acknowledge un-durable
// state catch the problem in commitLocked.
func (c *Coordinator) journalLocked(rec walRecord) {
	if c.log == nil || c.replaying {
		return
	}
	raw, err := json.Marshal(rec)
	if err == nil {
		err = c.log.Append(raw)
	}
	if err != nil {
		c.cfg.Logger.Error("wal: journaling failed", "type", rec.T, "error", err)
	}
}

// commitLocked makes everything journaled so far durable (flush +
// fsync) and compacts the journal into a snapshot when it has grown
// past SnapshotEvery records. Handlers call it before acknowledging a
// transition a client builds on.
func (c *Coordinator) commitLocked() error {
	if c.log == nil {
		return nil
	}
	if err := c.log.Sync(); err != nil {
		return err
	}
	if c.log.AppendedSinceSnapshot() >= c.cfg.SnapshotEvery {
		if err := c.snapshotLocked(); err != nil {
			// The journal is intact and durable; a failed compaction
			// only costs replay time.
			c.cfg.Logger.Warn("wal: snapshot failed", "error", err)
		}
	}
	return nil
}

// snapshotLocked compacts the current state into a snapshot, resetting
// the journal.
func (c *Coordinator) snapshotLocked() error {
	state, err := json.Marshal(c.exportLocked())
	if err != nil {
		return fmt.Errorf("cluster: encoding snapshot: %w", err)
	}
	return c.log.WriteSnapshot(state)
}

// journalFinishLocked records a job leaving StateRunning, carrying the
// merged result for done jobs. Called from finishLocked, so every
// finish path — merge, deterministic failure, cancel, deadline,
// attempt exhaustion — journals identically.
func (c *Coordinator) journalFinishLocked(j *job) {
	if c.log == nil || c.replaying {
		return
	}
	rec := walRecord{T: recFinish, Job: j.id, State: j.state, Err: j.err, UnixNs: j.finished.UnixNano()}
	if j.result != nil {
		rec.Result, _ = json.Marshal(j.result)
	}
	c.journalLocked(rec)
}

// journalSubmitLocked persists a new job: the dataset into the pack
// store first, then the fsynced submit record referencing it — so a
// replayed submit always finds its pack.
func (c *Coordinator) journalSubmitLocked(j *job) error {
	if c.log == nil {
		return nil
	}
	if err := c.writePack(j.datasetSHA, j.dataset); err != nil {
		return err
	}
	c.journalLocked(walRecord{T: recSubmit, Job: j.id, Name: j.name, Spec: &j.spec,
		Tiles: j.tiles, ScreenTiles: j.screenTiles,
		SHA: j.datasetSHA, SNPs: j.snps, Samples: j.samples,
		UnixNs: j.submitted.UnixNano()})
	return c.commitLocked()
}

// packPath is where a dataset with the given content hash lives.
func (c *Coordinator) packPath(sha string) string {
	return filepath.Join(c.cfg.StateDir, "packs", sha+".tpack")
}

// writePack stores a dataset content-addressed (atomic rename, file
// and directory fsynced). An existing pack under the same hash is the
// same dataset; resubmissions cost nothing.
func (c *Coordinator) writePack(sha string, data []byte) error {
	path := c.packPath(sha)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, sha+".*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	_, err = tmp.Write(data)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err == nil {
		err = fsyncDir(dir)
	}
	return err
}

// gcPacksLocked deletes packs no running job references — finished
// jobs released their datasets, so after recovery their packs are
// orphans.
func (c *Coordinator) gcPacksLocked() {
	dir := filepath.Join(c.cfg.StateDir, "packs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	needed := make(map[string]bool)
	for _, id := range c.order {
		if j := c.jobs[id]; j.state == StateRunning {
			needed[j.datasetSHA+".tpack"] = true
		}
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tpack") && !needed[e.Name()] {
			os.Remove(filepath.Join(dir, e.Name()))
			c.cfg.Logger.Info("pack store: collected orphan", "pack", e.Name())
		}
	}
}

// fsyncDir makes a rename inside dir durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
