// Package score implements the objective functions that rank SNP
// combinations from their contingency tables.
//
// The paper uses the Bayesian K2 score (equation 1): for each genotype
// combination i with class counts r_i0 (controls) and r_i1 (cases) and
// row total r_i = r_i0 + r_i1,
//
//	K2 = Σ_i [ Σ_{b=1}^{r_i+1} log b  −  Σ_j Σ_{d=1}^{r_ij} log d ]
//	   = Σ_i [ lnFact(r_i + 1) − lnFact(r_i0) − lnFact(r_i1) ]
//
// The combination with the LOWEST K2 score is the best candidate.
// Mutual information (the MPI3SNP objective, higher is better) and Gini
// impurity (lower is better) are provided as alternatives.
package score

import (
	"fmt"
	"math"

	"trigene/internal/contingency"
)

// LnFact caches ln(n!) for n in [0, max].
type LnFact struct {
	table []float64
}

// NewLnFact builds a table of ln(n!) up to and including maxN.
func NewLnFact(maxN int) *LnFact {
	if maxN < 0 {
		panic(fmt.Sprintf("score: negative table size %d", maxN))
	}
	t := make([]float64, maxN+1)
	for i := 2; i <= maxN; i++ {
		t[i] = t[i-1] + math.Log(float64(i))
	}
	return &LnFact{table: t}
}

// Max returns the largest argument the table covers.
func (l *LnFact) Max() int { return len(l.table) - 1 }

// At returns ln(n!).
func (l *LnFact) At(n int) float64 {
	return l.table[n]
}

// K2 computes the Bayesian K2 score of a contingency table.
// Lower is better. The LnFact table must cover N+1 where N is the
// total sample count.
func K2(t *contingency.Table, lf *LnFact) float64 {
	score := 0.0
	for combo := 0; combo < contingency.Cells; combo++ {
		r0 := int(t.Counts[0][combo])
		r1 := int(t.Counts[1][combo])
		score += lf.At(r0+r1+1) - lf.At(r0) - lf.At(r1)
	}
	return score
}

// MutualInformation computes I(combo; class) in nats from the table.
// Higher is better. It is the objective used by the MPI3SNP baseline.
func MutualInformation(t *contingency.Table) float64 {
	n := float64(t.ClassTotal(0) + t.ClassTotal(1))
	if n == 0 {
		return 0
	}
	// I(X;Y) = H(class) + H(combo) - H(combo, class)
	hClass := 0.0
	for class := 0; class < 2; class++ {
		p := float64(t.ClassTotal(class)) / n
		hClass += entropyTerm(p)
	}
	hCombo, hJoint := 0.0, 0.0
	for combo := 0; combo < contingency.Cells; combo++ {
		row := float64(t.Counts[0][combo]) + float64(t.Counts[1][combo])
		hCombo += entropyTerm(row / n)
		for class := 0; class < 2; class++ {
			hJoint += entropyTerm(float64(t.Counts[class][combo]) / n)
		}
	}
	mi := hClass + hCombo - hJoint
	if mi < 0 { // guard tiny negative rounding residue
		mi = 0
	}
	return mi
}

func entropyTerm(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return -p * math.Log(p)
}

// Gini computes the count-weighted Gini impurity of the class split
// across genotype combinations. Lower is better.
func Gini(t *contingency.Table) float64 {
	n := float64(t.ClassTotal(0) + t.ClassTotal(1))
	if n == 0 {
		return 0
	}
	g := 0.0
	for combo := 0; combo < contingency.Cells; combo++ {
		r0 := float64(t.Counts[0][combo])
		r1 := float64(t.Counts[1][combo])
		row := r0 + r1
		if row == 0 {
			continue
		}
		p := r0 / row
		g += row / n * 2 * p * (1 - p)
	}
	return g
}

// Objective ranks contingency tables. Implementations must be safe for
// concurrent use.
type Objective interface {
	// Name identifies the objective in reports and CLIs.
	Name() string
	// Score evaluates a table.
	Score(t *contingency.Table) float64
	// Better reports whether score a beats score b.
	Better(a, b float64) bool
	// Worst is a sentinel no real table can beat.
	Worst() float64
}

// K2Objective scores with the Bayesian K2 criterion (lower is better).
type K2Objective struct {
	lf *LnFact
}

// NewK2 returns a K2 objective able to score tables over at most
// maxSamples samples.
func NewK2(maxSamples int) *K2Objective {
	return &K2Objective{lf: NewLnFact(maxSamples + 1)}
}

// Name implements Objective.
func (o *K2Objective) Name() string { return "k2" }

// Score implements Objective.
func (o *K2Objective) Score(t *contingency.Table) float64 { return K2(t, o.lf) }

// Better implements Objective: lower K2 wins.
func (o *K2Objective) Better(a, b float64) bool { return a < b }

// Worst implements Objective.
func (o *K2Objective) Worst() float64 { return math.Inf(1) }

// MIObjective scores with mutual information (higher is better).
type MIObjective struct{}

// Name implements Objective.
func (MIObjective) Name() string { return "mi" }

// Score implements Objective.
func (MIObjective) Score(t *contingency.Table) float64 { return MutualInformation(t) }

// Better implements Objective: higher MI wins.
func (MIObjective) Better(a, b float64) bool { return a > b }

// Worst implements Objective.
func (MIObjective) Worst() float64 { return math.Inf(-1) }

// GiniObjective scores with Gini impurity (lower is better).
type GiniObjective struct{}

// Name implements Objective.
func (GiniObjective) Name() string { return "gini" }

// Score implements Objective.
func (GiniObjective) Score(t *contingency.Table) float64 { return Gini(t) }

// Better implements Objective: lower impurity wins.
func (GiniObjective) Better(a, b float64) bool { return a < b }

// Worst implements Objective.
func (GiniObjective) Worst() float64 { return math.Inf(1) }

// New returns the named objective ("k2", "mi" or "gini") sized for
// datasets of at most maxSamples samples.
func New(name string, maxSamples int) (Objective, error) {
	switch name {
	case "k2":
		return NewK2(maxSamples), nil
	case "mi":
		return MIObjective{}, nil
	case "gini":
		return GiniObjective{}, nil
	default:
		return nil, fmt.Errorf("score: unknown objective %q (want k2, mi or gini)", name)
	}
}

// Generic cell-slice scoring: the arbitrary-order (k-way) search mode
// produces 3^k-cell tables as paired slices; the three objectives share
// their math with the fixed 27-cell Table forms above.

// K2Cells computes the Bayesian K2 score over paired per-class cell
// slices (lower is better). Both slices must have the same length.
func K2Cells(controls, cases []int32, lf *LnFact) float64 {
	if len(controls) != len(cases) {
		panic(fmt.Sprintf("score: cell count mismatch %d/%d", len(controls), len(cases)))
	}
	s := 0.0
	for i := range controls {
		r0, r1 := int(controls[i]), int(cases[i])
		s += lf.At(r0+r1+1) - lf.At(r0) - lf.At(r1)
	}
	return s
}

// MICells computes mutual information over paired cell slices (higher
// is better).
func MICells(controls, cases []int32) float64 {
	if len(controls) != len(cases) {
		panic(fmt.Sprintf("score: cell count mismatch %d/%d", len(controls), len(cases)))
	}
	var n0, n1 float64
	for i := range controls {
		n0 += float64(controls[i])
		n1 += float64(cases[i])
	}
	n := n0 + n1
	if n == 0 {
		return 0
	}
	h := entropyTerm(n0/n) + entropyTerm(n1/n)
	var hCombo, hJoint float64
	for i := range controls {
		c0, c1 := float64(controls[i]), float64(cases[i])
		hCombo += entropyTerm((c0 + c1) / n)
		hJoint += entropyTerm(c0/n) + entropyTerm(c1/n)
	}
	mi := h + hCombo - hJoint
	if mi < 0 {
		mi = 0
	}
	return mi
}

// GiniCells computes count-weighted Gini impurity over paired cell
// slices (lower is better).
func GiniCells(controls, cases []int32) float64 {
	if len(controls) != len(cases) {
		panic(fmt.Sprintf("score: cell count mismatch %d/%d", len(controls), len(cases)))
	}
	var n float64
	for i := range controls {
		n += float64(controls[i]) + float64(cases[i])
	}
	if n == 0 {
		return 0
	}
	g := 0.0
	for i := range controls {
		c0, c1 := float64(controls[i]), float64(cases[i])
		row := c0 + c1
		if row == 0 {
			continue
		}
		p := c0 / row
		g += row / n * 2 * p * (1 - p)
	}
	return g
}

// CellScorer is implemented by objectives that can score arbitrary
// cell-slice tables (all built-in objectives do). The k-way engine
// requires it.
type CellScorer interface {
	ScoreCells(controls, cases []int32) float64
}

// ScoreCells implements CellScorer.
func (o *K2Objective) ScoreCells(controls, cases []int32) float64 {
	return K2Cells(controls, cases, o.lf)
}

// ScoreCells implements CellScorer.
func (MIObjective) ScoreCells(controls, cases []int32) float64 {
	return MICells(controls, cases)
}

// ScoreCells implements CellScorer.
func (GiniObjective) ScoreCells(controls, cases []int32) float64 {
	return GiniCells(controls, cases)
}
