package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trigene/internal/contingency"
)

func TestLnFactValues(t *testing.T) {
	lf := NewLnFact(10)
	if lf.Max() != 10 {
		t.Fatalf("Max = %d", lf.Max())
	}
	want := []float64{0, 0, math.Log(2), math.Log(6), math.Log(24)}
	for n, w := range want {
		if math.Abs(lf.At(n)-w) > 1e-12 {
			t.Errorf("lnFact(%d) = %g, want %g", n, lf.At(n), w)
		}
	}
	// ln(10!) = ln(3628800)
	if math.Abs(lf.At(10)-math.Log(3628800)) > 1e-9 {
		t.Errorf("lnFact(10) = %g", lf.At(10))
	}
}

func TestLnFactNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLnFact(-1)
}

func TestK2EmptyTableIsZero(t *testing.T) {
	var tab contingency.Table
	lf := NewLnFact(2)
	if got := K2(&tab, lf); got != 0 {
		t.Errorf("K2(empty) = %g, want 0", got)
	}
}

func TestK2ClosedFormSingleCell(t *testing.T) {
	// One cell with r0=2, r1=1: K2 = lnFact(4) - lnFact(2) - lnFact(1)
	//                              = ln(24) - ln(2) = ln(12).
	var tab contingency.Table
	tab.Counts[0][0] = 2
	tab.Counts[1][0] = 1
	lf := NewLnFact(10)
	want := math.Log(12)
	if got := K2(&tab, lf); math.Abs(got-want) > 1e-12 {
		t.Errorf("K2 = %g, want %g", got, want)
	}
}

func TestK2PrefersSeparatedTable(t *testing.T) {
	// A table that perfectly separates classes by combo should score
	// better (lower) than one that mixes them, at equal totals.
	var sep, mix contingency.Table
	sep.Counts[0][0] = 50 // all controls in combo 0
	sep.Counts[1][1] = 50 // all cases in combo 1
	mix.Counts[0][0] = 25
	mix.Counts[1][0] = 25
	mix.Counts[0][1] = 25
	mix.Counts[1][1] = 25
	lf := NewLnFact(200)
	if !(K2(&sep, lf) < K2(&mix, lf)) {
		t.Errorf("K2 separated %g should beat mixed %g", K2(&sep, lf), K2(&mix, lf))
	}
}

func TestK2CellPermutationInvariance(t *testing.T) {
	// K2 sums over cells, so shuffling which combo holds which counts
	// must not change the score.
	r := rand.New(rand.NewSource(50))
	var tab contingency.Table
	for combo := 0; combo < contingency.Cells; combo++ {
		tab.Counts[0][combo] = int32(r.Intn(30))
		tab.Counts[1][combo] = int32(r.Intn(30))
	}
	perm := r.Perm(contingency.Cells)
	var shuf contingency.Table
	for combo, p := range perm {
		shuf.Counts[0][p] = tab.Counts[0][combo]
		shuf.Counts[1][p] = tab.Counts[1][combo]
	}
	lf := NewLnFact(4000)
	if math.Abs(K2(&tab, lf)-K2(&shuf, lf)) > 1e-9 {
		t.Error("K2 not invariant under cell permutation")
	}
	if math.Abs(MutualInformation(&tab)-MutualInformation(&shuf)) > 1e-9 {
		t.Error("MI not invariant under cell permutation")
	}
	if math.Abs(Gini(&tab)-Gini(&shuf)) > 1e-9 {
		t.Error("Gini not invariant under cell permutation")
	}
}

func TestMutualInformationExtremes(t *testing.T) {
	// Perfect separation: MI = H(class) = ln 2 for balanced classes.
	var sep contingency.Table
	sep.Counts[0][0] = 40
	sep.Counts[1][1] = 40
	if got := MutualInformation(&sep); math.Abs(got-math.Ln2) > 1e-9 {
		t.Errorf("MI(perfect) = %g, want ln2 = %g", got, math.Ln2)
	}
	// Independence: MI = 0.
	var ind contingency.Table
	for combo := 0; combo < 4; combo++ {
		ind.Counts[0][combo] = 10
		ind.Counts[1][combo] = 10
	}
	if got := MutualInformation(&ind); got > 1e-9 {
		t.Errorf("MI(independent) = %g, want 0", got)
	}
	var empty contingency.Table
	if MutualInformation(&empty) != 0 {
		t.Error("MI(empty) should be 0")
	}
}

func TestGiniExtremes(t *testing.T) {
	var sep contingency.Table
	sep.Counts[0][0] = 40
	sep.Counts[1][1] = 40
	if got := Gini(&sep); got != 0 {
		t.Errorf("Gini(perfect) = %g, want 0", got)
	}
	var mix contingency.Table
	mix.Counts[0][0] = 20
	mix.Counts[1][0] = 20
	// Single cell 50/50: impurity 2*0.5*0.5 = 0.5
	if got := Gini(&mix); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Gini(50/50) = %g, want 0.5", got)
	}
	var empty contingency.Table
	if Gini(&empty) != 0 {
		t.Error("Gini(empty) should be 0")
	}
}

func TestObjectivesRegistry(t *testing.T) {
	for _, name := range []string{"k2", "mi", "gini"} {
		obj, err := New(name, 100)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if obj.Name() != name {
			t.Errorf("Name = %q, want %q", obj.Name(), name)
		}
		// No real score should beat Worst, and Better must be a strict order.
		var tab contingency.Table
		tab.Counts[0][0] = 10
		tab.Counts[1][3] = 10
		s := obj.Score(&tab)
		if !obj.Better(s, obj.Worst()) {
			t.Errorf("%s: real score %g should beat Worst %g", name, s, obj.Worst())
		}
		if obj.Better(s, s) {
			t.Errorf("%s: Better must be strict", name)
		}
	}
	if _, err := New("nope", 10); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestObjectivesAgreeOnSeparationOrdering(t *testing.T) {
	// All three objectives must prefer perfect separation over an
	// independent table.
	var sep, ind contingency.Table
	sep.Counts[0][0] = 30
	sep.Counts[1][13] = 30
	for combo := 0; combo < 6; combo++ {
		ind.Counts[0][combo] = 5
		ind.Counts[1][combo] = 5
	}
	for _, name := range []string{"k2", "mi", "gini"} {
		obj, err := New(name, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !obj.Better(obj.Score(&sep), obj.Score(&ind)) {
			t.Errorf("%s does not prefer separated table", name)
		}
	}
}

// Property: K2 is monotone under adding a balanced pair to a cell
// only in the sense of being well-defined and finite; check finiteness
// and symmetry between classes (swapping columns leaves K2 unchanged).
func TestK2ClassSymmetryProperty(t *testing.T) {
	lf := NewLnFact(20000)
	f := func(cells [27]uint8, cells2 [27]uint8) bool {
		var tab, swp contingency.Table
		for i := 0; i < contingency.Cells; i++ {
			tab.Counts[0][i] = int32(cells[i])
			tab.Counts[1][i] = int32(cells2[i])
			swp.Counts[0][i] = int32(cells2[i])
			swp.Counts[1][i] = int32(cells[i])
		}
		a, b := K2(&tab, lf), K2(&swp, lf)
		return !math.IsNaN(a) && !math.IsInf(a, 0) && math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCellScoringMatchesTableScoring(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	var tab contingency.Table
	for i := 0; i < contingency.Cells; i++ {
		tab.Counts[0][i] = int32(r.Intn(40))
		tab.Counts[1][i] = int32(r.Intn(40))
	}
	lf := NewLnFact(5000)
	if math.Abs(K2(&tab, lf)-K2Cells(tab.Counts[0][:], tab.Counts[1][:], lf)) > 1e-12 {
		t.Error("K2Cells disagrees with K2")
	}
	if math.Abs(MutualInformation(&tab)-MICells(tab.Counts[0][:], tab.Counts[1][:])) > 1e-12 {
		t.Error("MICells disagrees with MutualInformation")
	}
	if math.Abs(Gini(&tab)-GiniCells(tab.Counts[0][:], tab.Counts[1][:])) > 1e-12 {
		t.Error("GiniCells disagrees with Gini")
	}
}

func TestObjectivesImplementCellScorer(t *testing.T) {
	for _, name := range []string{"k2", "mi", "gini"} {
		obj, err := New(name, 100)
		if err != nil {
			t.Fatal(err)
		}
		cs, ok := obj.(CellScorer)
		if !ok {
			t.Fatalf("%s does not implement CellScorer", name)
		}
		// Cell scoring of a 27-cell slice equals table scoring.
		var tab contingency.Table
		tab.Counts[0][3] = 12
		tab.Counts[1][9] = 15
		if got := cs.ScoreCells(tab.Counts[0][:], tab.Counts[1][:]); math.Abs(got-obj.Score(&tab)) > 1e-12 {
			t.Errorf("%s: ScoreCells %g != Score %g", name, got, obj.Score(&tab))
		}
	}
}

func TestCellScoringMismatchPanics(t *testing.T) {
	lf := NewLnFact(10)
	for _, f := range []func(){
		func() { K2Cells(make([]int32, 3), make([]int32, 4), lf) },
		func() { MICells(make([]int32, 3), make([]int32, 4)) },
		func() { GiniCells(make([]int32, 3), make([]int32, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
