package dataset

import (
	"math"
	"testing"
)

func TestGenerateBasicShape(t *testing.T) {
	mx, err := Generate(GenConfig{SNPs: 50, Samples: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 50 || mx.Samples() != 400 {
		t.Fatalf("dims %dx%d", mx.SNPs(), mx.Samples())
	}
	if err := mx.Validate(); err != nil {
		t.Fatal(err)
	}
	// Default prevalence 0.5 should give roughly balanced classes.
	controls, cases := mx.ClassCounts()
	if controls < 120 || cases < 120 {
		t.Errorf("classes too imbalanced: %d/%d", controls, cases)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{SNPs: 20, Samples: 100, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 100; j++ {
			if a.Geno(i, j) != b.Geno(i, j) {
				t.Fatal("same seed produced different genotypes")
			}
		}
	}
	for j := 0; j < 100; j++ {
		if a.Phen(j) != b.Phen(j) {
			t.Fatal("same seed produced different phenotypes")
		}
	}
	c, err := Generate(GenConfig{SNPs: 20, Samples: 100, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 20 && same; i++ {
		for j := 0; j < 100; j++ {
			if a.Geno(i, j) != c.Geno(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical genotypes")
	}
}

func TestGenerateMAFBounds(t *testing.T) {
	// With a high fixed MAF range, genotype 2 should be common; with a
	// low range, rare.
	hi, err := Generate(GenConfig{SNPs: 10, Samples: 2000, Seed: 7, MAFMin: 0.45, MAFMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Generate(GenConfig{SNPs: 10, Samples: 2000, Seed: 7, MAFMin: 0.01, MAFMax: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var hi2, lo2 int
	for i := 0; i < 10; i++ {
		hi2 += hi.GenotypeCounts(i)[2]
		lo2 += lo.GenotypeCounts(i)[2]
	}
	if hi2 <= lo2*5 {
		t.Errorf("high-MAF g2 count %d not clearly above low-MAF %d", hi2, lo2)
	}
	// Hardy-Weinberg rough check at MAF ~ 0.475: P(g2) ~ 0.226.
	p2 := float64(hi2) / (10 * 2000)
	if math.Abs(p2-0.226) > 0.05 {
		t.Errorf("high-MAF P(g2) = %.3f, want ~0.226", p2)
	}
}

func TestGeneratePrevalence(t *testing.T) {
	mx, err := Generate(GenConfig{SNPs: 5, Samples: 4000, Seed: 3, Prevalence: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	_, cases := mx.ClassCounts()
	frac := float64(cases) / 4000
	if math.Abs(frac-0.25) > 0.05 {
		t.Errorf("case fraction %.3f, want ~0.25", frac)
	}
}

func TestGeneratePlantedInteractionShiftsPhenotype(t *testing.T) {
	it := &Interaction{SNPs: [3]int{1, 4, 7}, Penetrance: ThresholdPenetrance(3, 0.1, 0.9)}
	mx, err := Generate(GenConfig{SNPs: 10, Samples: 3000, Seed: 9, Interaction: it})
	if err != nil {
		t.Fatal(err)
	}
	// Among samples whose triple-genotype sum >= 3, cases dominate.
	var highCase, highTotal, lowCase, lowTotal int
	for j := 0; j < 3000; j++ {
		sum := int(mx.Geno(1, j)) + int(mx.Geno(4, j)) + int(mx.Geno(7, j))
		if sum >= 3 {
			highTotal++
			if mx.Phen(j) == Case {
				highCase++
			}
		} else {
			lowTotal++
			if mx.Phen(j) == Case {
				lowCase++
			}
		}
	}
	if highTotal == 0 || lowTotal == 0 {
		t.Skip("degenerate drawing")
	}
	if float64(highCase)/float64(highTotal) < 0.7 {
		t.Errorf("penetrant group case rate %.2f, want > 0.7", float64(highCase)/float64(highTotal))
	}
	if float64(lowCase)/float64(lowTotal) > 0.3 {
		t.Errorf("non-penetrant group case rate %.2f, want < 0.3", float64(lowCase)/float64(lowTotal))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []GenConfig{
		{SNPs: 2, Samples: 10},
		{SNPs: 10, Samples: 1},
		{SNPs: 10, Samples: 10, MAFMin: 0.4, MAFMax: 0.2},
		{SNPs: 10, Samples: 10, MAFMin: -0.1, MAFMax: 0.3},
		{SNPs: 10, Samples: 10, MAFMax: 0.7},
		{SNPs: 10, Samples: 10, Prevalence: 1.5},
		{SNPs: 10, Samples: 10, Interaction: &Interaction{SNPs: [3]int{0, 0, 1}}},
		{SNPs: 10, Samples: 10, Interaction: &Interaction{SNPs: [3]int{0, 1, 99}}},
		{SNPs: 10, Samples: 10, Interaction: &Interaction{SNPs: [3]int{0, 1, 2}, Penetrance: [27]float64{0: 2.0}}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestPenetranceTables(t *testing.T) {
	th := ThresholdPenetrance(3, 0.1, 0.9)
	// combo (0,0,0) = index 0: sum 0 -> low; combo (2,2,2) = 26: sum 6 -> high.
	if th[0] != 0.1 || th[26] != 0.9 {
		t.Errorf("threshold table corners wrong: %v %v", th[0], th[26])
	}
	// combo (1,1,1) = 13: sum 3 -> high.
	if th[13] != 0.9 {
		t.Errorf("threshold table midpoint wrong: %v", th[13])
	}

	xor := XorPenetrance(0.1, 0.9)
	// (0,0,0): 0 nonzero -> low. (1,0,0) = index 9: 1 nonzero -> high.
	// (1,1,0) = index 12: 2 nonzero -> low. (1,1,1) = 13 -> high.
	if xor[0] != 0.1 || xor[9] != 0.9 || xor[12] != 0.1 || xor[13] != 0.9 {
		t.Error("xor table wrong")
	}

	mult := MultiplicativePenetrance(0.05, 2)
	if mult[0] != 0.05 {
		t.Errorf("mult base wrong: %v", mult[0])
	}
	if mult[26] != 1.0 { // 0.05 * 2^6 = 3.2 -> capped
		t.Errorf("mult cap wrong: %v", mult[26])
	}
	if math.Abs(mult[13]-0.4) > 1e-12 { // 0.05 * 2^3
		t.Errorf("mult midpoint wrong: %v", mult[13])
	}
}

func TestGenerateDegenerateFails(t *testing.T) {
	// Prevalence ~0 with enough samples will never draw a case.
	if _, err := Generate(GenConfig{SNPs: 3, Samples: 50, Seed: 5, Prevalence: 1e-12}); err == nil {
		t.Error("expected failure for degenerate prevalence")
	}
}
