package dataset

import (
	"testing"
)

// bitAt32 extracts sample bit j for (class, plane, snp) from a Words32.
func bitAt32(w *Words32, class, g, snp, j int) bool {
	word := j / WordBits32
	return w.Word(class, g, snp, word)>>(uint(j)%WordBits32)&1 != 0
}

func TestWords32AllLayoutsPreserveBits(t *testing.T) {
	mx := randomMatrix(20, 7, 97) // odd sample count exercises padding
	s := SplitBinarize(mx)
	for _, layout := range []Layout{LayoutRowMajor, LayoutTransposed, LayoutTiled} {
		bs := 0
		if layout == LayoutTiled {
			bs = 4 // 7 SNPs -> padded to 8
		}
		w := BuildWords32(s, layout, bs)
		if layout == LayoutTiled && w.MPadded != 8 {
			t.Fatalf("%v: MPadded = %d, want 8", layout, w.MPadded)
		}
		// Track class-local sample positions as SplitBinarize assigns them.
		var pos [2]int
		for j := 0; j < mx.Samples(); j++ {
			c := int(mx.Phen(j))
			p := pos[c]
			pos[c]++
			for g := 0; g < 2; g++ {
				want := mx.Geno(0, j) == uint8(g) // checked per SNP below
				_ = want
				for snp := 0; snp < s.M; snp++ {
					wantBit := mx.Geno(snp, j) == uint8(g)
					if got := bitAt32(w, c, g, snp, p); got != wantBit {
						t.Fatalf("%v: class %d plane %d snp %d sample %d: bit %v, want %v",
							layout, c, g, snp, j, got, wantBit)
					}
				}
			}
		}
	}
}

func TestWords32IndexDistinct(t *testing.T) {
	mx := randomMatrix(21, 6, 70)
	s := SplitBinarize(mx)
	for _, layout := range []Layout{LayoutRowMajor, LayoutTransposed, LayoutTiled} {
		bs := 0
		if layout == LayoutTiled {
			bs = 3
		}
		w := BuildWords32(s, layout, bs)
		for c := 0; c < 2; c++ {
			seen := map[int]bool{}
			for snp := 0; snp < s.M; snp++ {
				for k := 0; k < w.W[c]; k++ {
					idx := w.Index(snp, k, c)
					if idx < 0 || idx >= len(w.Data(c, 0)) {
						t.Fatalf("%v: index %d out of bounds", layout, idx)
					}
					if seen[idx] {
						t.Fatalf("%v: duplicate index %d", layout, idx)
					}
					seen[idx] = true
				}
			}
		}
	}
}

func TestWords32TransposedCoalescing(t *testing.T) {
	// The defining property of the transposed layout: for a fixed word,
	// consecutive SNPs occupy consecutive addresses.
	mx := randomMatrix(22, 9, 64)
	s := SplitBinarize(mx)
	w := BuildWords32(s, LayoutTransposed, 0)
	for snp := 0; snp+1 < s.M; snp++ {
		if w.Index(snp+1, 0, Control)-w.Index(snp, 0, Control) != 1 {
			t.Fatal("transposed layout should place consecutive SNPs adjacently")
		}
	}
	// Row-major does not (unless W == 1).
	rm := BuildWords32(s, LayoutRowMajor, 0)
	if rm.W[Control] > 1 {
		if rm.Index(1, 0, Control)-rm.Index(0, 0, Control) == 1 {
			t.Fatal("row-major layout should stride by W between SNPs")
		}
	}
}

func TestWords32TiledAdjacency(t *testing.T) {
	// Within a tile, consecutive SNPs at the same word are adjacent.
	mx := randomMatrix(23, 8, 96)
	s := SplitBinarize(mx)
	w := BuildWords32(s, LayoutTiled, 4)
	if w.Index(1, 0, Control)-w.Index(0, 0, Control) != 1 {
		t.Fatal("tiled layout should place tile-mates adjacently")
	}
	// Across a tile boundary the distance is the whole tile extent.
	d := w.Index(4, 0, Control) - w.Index(3, 0, Control)
	if d != 4*w.W[Control]-3 {
		t.Fatalf("tile boundary stride = %d, want %d", d, 4*w.W[Control]-3)
	}
}

func TestBuildWords32TiledNeedsBS(t *testing.T) {
	mx := randomMatrix(24, 4, 32)
	s := SplitBinarize(mx)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bs=0 tiled")
		}
	}()
	BuildWords32(s, LayoutTiled, 0)
}

func TestLayoutString(t *testing.T) {
	if LayoutRowMajor.String() != "row-major" ||
		LayoutTransposed.String() != "transposed" ||
		LayoutTiled.String() != "tiled" {
		t.Error("layout names wrong")
	}
	if Layout(99).String() == "" {
		t.Error("unknown layout should still render")
	}
}

func TestBuildNaive32MatchesBinarized(t *testing.T) {
	mx := randomMatrix(25, 5, 77)
	b := Binarize(mx)
	n32 := BuildNaive32(b)
	if n32.Pad != n32.W*32-77 {
		t.Fatalf("pad = %d", n32.Pad)
	}
	for i := 0; i < b.M; i++ {
		for g := 0; g < 3; g++ {
			for j := 0; j < b.N; j++ {
				want := mx.Geno(i, j) == uint8(g)
				got := n32.Word(g, i, j/32)>>(uint(j)%32)&1 != 0
				if got != want {
					t.Fatalf("naive32 plane %d snp %d sample %d mismatch", g, i, j)
				}
			}
		}
	}
	for j := 0; j < b.N; j++ {
		got := n32.Phen[j/32]>>(uint(j)%32)&1 != 0
		if got != (mx.Phen(j) == Case) {
			t.Fatalf("naive32 phenotype bit %d mismatch", j)
		}
	}
}
