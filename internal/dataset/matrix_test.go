package dataset

import (
	"testing"
)

func TestNewMatrixAndAccessors(t *testing.T) {
	mx := NewMatrix(4, 10)
	if mx.SNPs() != 4 || mx.Samples() != 10 {
		t.Fatalf("dims = %dx%d, want 4x10", mx.SNPs(), mx.Samples())
	}
	mx.SetGeno(2, 5, 2)
	mx.SetGeno(0, 0, 1)
	if mx.Geno(2, 5) != 2 || mx.Geno(0, 0) != 1 || mx.Geno(3, 9) != 0 {
		t.Error("genotype round trip failed")
	}
	mx.SetPhen(7, Case)
	if mx.Phen(7) != Case || mx.Phen(0) != Control {
		t.Error("phenotype round trip failed")
	}
	controls, cases := mx.ClassCounts()
	if controls != 9 || cases != 1 {
		t.Errorf("ClassCounts = (%d,%d), want (9,1)", controls, cases)
	}
}

func TestMatrixPanics(t *testing.T) {
	mx := NewMatrix(2, 3)
	for name, f := range map[string]func(){
		"bad dims":       func() { NewMatrix(0, 5) },
		"geno range":     func() { mx.Geno(2, 0) },
		"geno value":     func() { mx.SetGeno(0, 0, 3) },
		"phen range":     func() { mx.Phen(3) },
		"phen value":     func() { mx.SetPhen(0, 2) },
		"neg sample":     func() { mx.Phen(-1) },
		"neg snp":        func() { mx.Geno(-1, 0) },
		"set geno range": func() { mx.SetGeno(0, 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGenotypeCounts(t *testing.T) {
	mx := NewMatrix(1, 6)
	for j, g := range []uint8{0, 1, 2, 2, 1, 2} {
		mx.SetGeno(0, j, g)
	}
	counts := mx.GenotypeCounts(0)
	if counts != [3]int{1, 2, 3} {
		t.Errorf("GenotypeCounts = %v, want [1 2 3]", counts)
	}
}

func TestRowAliases(t *testing.T) {
	mx := NewMatrix(2, 4)
	row := mx.Row(1)
	row[2] = 2
	if mx.Geno(1, 2) != 2 {
		t.Error("Row should alias matrix storage")
	}
}

func TestValidate(t *testing.T) {
	mx := NewMatrix(2, 4)
	mx.SetPhen(0, Case)
	if err := mx.Validate(); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}

	// Corrupt through the aliasing Row accessor.
	mx.Row(0)[1] = 7
	if err := mx.Validate(); err == nil {
		t.Error("invalid genotype not caught")
	}
	mx.Row(0)[1] = 0

	mx.Phenotypes()[0] = 9
	if err := mx.Validate(); err == nil {
		t.Error("invalid phenotype not caught")
	}
	mx.Phenotypes()[0] = 0

	// Single class is degenerate.
	if err := mx.Validate(); err == nil {
		t.Error("single-class dataset not caught")
	}
}
