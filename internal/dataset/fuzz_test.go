package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadRAW drives the PLINK .raw decoder with arbitrary bytes: it
// must return a valid matrix or an error, never panic, and never emit
// out-of-range genotypes or phenotypes.
func FuzzReadRAW(f *testing.F) {
	f.Add([]byte("FID IID PAT MAT SEX PHENOTYPE rs1_A rs2_C\n" +
		"f1 i1 0 0 1 2 0 1\n" +
		"f2 i2 0 0 2 1 2 0\n"))
	f.Add([]byte("FID\tIID\tPAT\tMAT\tSEX\tPHENOTYPE\trs1_A\nf1\ti1\t0\t0\t1\t1\tNA\n")) // NA dosage
	f.Add([]byte("FID IID PAT MAT SEX PHENOTYPE\n"))                                     // no SNP columns
	f.Add([]byte("FID IID PAT MAT SEX PHENOTYPE rs1_A\nf1 i1 0 0 1 3 1\n"))              // bad phenotype code
	f.Add([]byte("FID IID PAT MAT SEX PHENOTYPE rs1_A\nf1 i1 0 0 1 2\n"))                // truncated row
	f.Add([]byte("not a raw header\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		mx, err := ReadRAW(bytes.NewReader(data))
		if err != nil {
			return
		}
		if mx == nil {
			t.Fatal("nil matrix with nil error")
		}
		if mx.SNPs() < 1 || mx.Samples() < 1 {
			t.Fatalf("accepted empty matrix: %dx%d", mx.SNPs(), mx.Samples())
		}
		for i := 0; i < mx.SNPs(); i++ {
			for j, g := range mx.Row(i) {
				if g > 2 {
					t.Fatalf("SNP %d sample %d: genotype %d out of range", i, j, g)
				}
			}
		}
		for j, p := range mx.Phenotypes() {
			if p > 1 {
				t.Fatalf("sample %d: phenotype %d out of range", j, p)
			}
		}
	})
}

// FuzzReadBED drives the PLINK .bed decoder with arbitrary triplets:
// it must return a valid matrix or an error, never panic, and never
// emit out-of-range genotypes or phenotypes. The sidecars are fuzzed
// too, since they fix the dimensions the blob is decoded against.
func FuzzReadBED(f *testing.F) {
	f.Add([]byte{0x6c, 0x1b, 0x01, 0b11_10_00_11, 0b10_11_00_10},
		[]byte("1 rs0 0 1 A G\n1 rs1 0 2 A G\n"),
		[]byte("f a 0 0 1 1\nf b 0 0 1 2\nf c 0 0 2 2\nf d 0 0 2 1\n"))
	f.Add([]byte{0x6c, 0x1b, 0x00, 0xff}, []byte("1 r 0 1 A G\n"), []byte("f a 0 0 1 1\n")) // sample-major
	f.Add([]byte{0x6c, 0x1b, 0x01}, []byte("1 r 0 1 A G\n"), []byte("f a 0 0 1 1\n"))       // truncated
	f.Add([]byte{0x00, 0x00, 0x01, 0x00}, []byte("1 r 0 1 A G\n"), []byte("f a 0 0 1 2\n")) // bad magic
	f.Add([]byte{0x6c, 0x1b, 0x01, 0b01}, []byte("1 r 0 1 A G\n"), []byte("f a 0 0 1 2\n")) // missing genotype
	f.Add([]byte{}, []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, bed, bim, fam []byte) {
		mx, err := ReadBED(bytes.NewReader(bed), bytes.NewReader(bim), bytes.NewReader(fam))
		if err != nil {
			return
		}
		if mx == nil {
			t.Fatal("nil matrix with nil error")
		}
		if mx.SNPs() < 1 || mx.Samples() < 1 {
			t.Fatalf("accepted empty matrix: %dx%d", mx.SNPs(), mx.Samples())
		}
		for i := 0; i < mx.SNPs(); i++ {
			for j, g := range mx.Row(i) {
				if g > 2 {
					t.Fatalf("SNP %d sample %d: genotype %d out of range", i, j, g)
				}
			}
		}
		for j, p := range mx.Phenotypes() {
			if p > 1 {
				t.Fatalf("sample %d: phenotype %d out of range", j, p)
			}
		}
	})
}
