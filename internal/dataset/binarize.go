package dataset

import (
	"fmt"

	"trigene/internal/bitvec"
)

// Binarized is the paper's Figure 1 representation (approach V1): for
// every SNP, three bit planes over all N samples (one per genotype
// value) plus one phenotype bit vector. Plane g of SNP i has bit j set
// iff sample j carries genotype g at SNP i.
type Binarized struct {
	M, N   int
	Words  int // 64-bit words per plane
	planes []uint64
	Phen   *bitvec.Vector
}

// Binarize converts a genotype matrix into the three-plane form.
func Binarize(mx *Matrix) *Binarized {
	m, n := mx.SNPs(), mx.Samples()
	w := bitvec.WordsFor(n)
	b := &Binarized{
		M:      m,
		N:      n,
		Words:  w,
		planes: make([]uint64, m*3*w),
		Phen:   bitvec.New(n),
	}
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j, g := range row {
			b.planeWords(i, int(g))[j/bitvec.WordBits] |= 1 << (uint(j) % bitvec.WordBits)
		}
	}
	for j := 0; j < n; j++ {
		if mx.Phen(j) == Case {
			b.Phen.Set(j)
		}
	}
	return b
}

// BinarizedFromPlanes wraps pre-built plane storage (the packed
// on-disk encoding) as a Binarized without recomputing it. planes must
// hold m*3*WordsFor(n) words in (snp*3+g)*Words layout with zero tail
// bits, and phen must be an n-bit vector; the slices are adopted, not
// copied.
func BinarizedFromPlanes(m, n int, planes []uint64, phen *bitvec.Vector) (*Binarized, error) {
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("dataset: invalid dimensions %dx%d", m, n)
	}
	w := bitvec.WordsFor(n)
	if len(planes) != m*3*w {
		return nil, fmt.Errorf("dataset: binarized planes hold %d words, want %d", len(planes), m*3*w)
	}
	if phen.Len() != n {
		return nil, fmt.Errorf("dataset: phenotype vector holds %d bits, want %d", phen.Len(), n)
	}
	if mask := bitvec.TailMask(n); mask != ^uint64(0) {
		for p := 0; p < m*3; p++ {
			if planes[(p+1)*w-1]&^mask != 0 {
				return nil, fmt.Errorf("dataset: binarized plane %d has nonzero tail bits", p)
			}
		}
	}
	return &Binarized{M: m, N: n, Words: w, planes: planes, Phen: phen}, nil
}

// PlaneData exposes the full plane storage in (snp*3+g)*Words layout.
// The slice aliases internal storage; the packed codec serializes it.
func (b *Binarized) PlaneData() []uint64 { return b.planes }

func (b *Binarized) planeWords(snp, g int) []uint64 {
	off := (snp*3 + g) * b.Words
	return b.planes[off : off+b.Words]
}

// Plane returns the words of genotype plane g (0, 1 or 2) of the given
// SNP. The slice aliases internal storage.
func (b *Binarized) Plane(snp, g int) []uint64 {
	if snp < 0 || snp >= b.M || g < 0 || g > 2 {
		panic(fmt.Sprintf("dataset: plane (%d,%d) out of range", snp, g))
	}
	return b.planeWords(snp, g)
}

// Split is the phenotype-split two-plane representation used by
// approaches V2 and later: samples are partitioned into controls and
// cases, each SNP stores only genotype planes 0 and 1 per class, and
// the genotype-2 plane is inferred with NOR at kernel time.
//
// Padding: each class vector is padded to a whole number of 64-bit
// words with zero bits. A NOR over zero padding yields ones, which
// inflates exactly the (2,2,2) frequency cell by Pad[class]; the
// contingency builders subtract that known correction.
type Split struct {
	M      int
	N      [2]int // samples per class
	Words  [2]int // 64-bit words per class plane
	Pad    [2]int // padding bits per class (= Words*64 - N)
	planes [2][]uint64
}

// SplitBinarize converts a genotype matrix into the phenotype-split
// two-plane form. Sample order within each class follows the original
// sample order.
func SplitBinarize(mx *Matrix) *Split {
	m := mx.SNPs()
	controls, cases := mx.ClassCounts()
	s := &Split{M: m}
	s.N[Control], s.N[Case] = controls, cases
	for c := 0; c < 2; c++ {
		s.Words[c] = bitvec.WordsFor(s.N[c])
		s.Pad[c] = s.Words[c]*bitvec.WordBits - s.N[c]
		s.planes[c] = make([]uint64, m*2*s.Words[c])
	}
	// Position of each sample within its class.
	pos := make([]int, mx.Samples())
	var nc [2]int
	for j := 0; j < mx.Samples(); j++ {
		c := int(mx.Phen(j))
		pos[j] = nc[c]
		nc[c]++
	}
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j, g := range row {
			if g > 1 {
				continue // genotype 2 is implicit
			}
			c := int(mx.Phen(j))
			p := pos[j]
			s.plane(c, i, int(g))[p/bitvec.WordBits] |= 1 << (uint(p) % bitvec.WordBits)
		}
	}
	return s
}

// SplitFromPlanes wraps pre-built per-class plane storage (the packed
// on-disk encoding) as a Split without recomputing it. planes[c] must
// hold m*2*WordsFor(n[c]) words in (snp*2+g)*Words layout with zero
// tail bits; the slices are adopted, not copied.
func SplitFromPlanes(m int, n [2]int, planes [2][]uint64) (*Split, error) {
	if m <= 0 || n[Control] < 0 || n[Case] < 0 {
		return nil, fmt.Errorf("dataset: invalid split dimensions m=%d n=%v", m, n)
	}
	s := &Split{M: m, N: n}
	for c := 0; c < 2; c++ {
		s.Words[c] = bitvec.WordsFor(n[c])
		s.Pad[c] = s.Words[c]*bitvec.WordBits - n[c]
		if len(planes[c]) != m*2*s.Words[c] {
			return nil, fmt.Errorf("dataset: split class-%d planes hold %d words, want %d", c, len(planes[c]), m*2*s.Words[c])
		}
		if mask := bitvec.TailMask(n[c]); mask != ^uint64(0) {
			w := s.Words[c]
			for p := 0; p < m*2; p++ {
				if planes[c][(p+1)*w-1]&^mask != 0 {
					return nil, fmt.Errorf("dataset: split class-%d plane %d has nonzero tail bits", c, p)
				}
			}
		}
		s.planes[c] = planes[c]
	}
	return s, nil
}

// ClassPlaneData exposes one class's full plane storage in
// (snp*2+g)*Words layout. The slice aliases internal storage; the
// packed codec serializes it.
func (s *Split) ClassPlaneData(class int) []uint64 { return s.planes[class] }

func (s *Split) plane(class, snp, g int) []uint64 {
	w := s.Words[class]
	off := (snp*2 + g) * w
	return s.planes[class][off : off+w]
}

// Plane returns the words of genotype plane g (0 or 1) of the given SNP
// for the given class. The slice aliases internal storage.
func (s *Split) Plane(class, snp, g int) []uint64 {
	if class < 0 || class > 1 || snp < 0 || snp >= s.M || g < 0 || g > 1 {
		panic(fmt.Sprintf("dataset: split plane (%d,%d,%d) out of range", class, snp, g))
	}
	return s.plane(class, snp, g)
}

// PlaneRange returns words [w0, w1) of plane g of the given SNP/class.
// The blocked kernels use it to walk sample tiles.
func (s *Split) PlaneRange(class, snp, g, w0, w1 int) []uint64 {
	p := s.Plane(class, snp, g)
	return p[w0:w1]
}

// BytesPerCombination returns how many bytes of plane data one
// combination evaluation streams for this dataset (both classes, both
// stored planes, three SNPs). Used for arithmetic-intensity accounting.
func (s *Split) BytesPerCombination() int {
	return (s.Words[Control] + s.Words[Case]) * 2 * 3 * 8
}
