package dataset

import (
	"fmt"
	"strings"
	"testing"
)

func TestReadPEDBasic(t *testing.T) {
	// 3 SNPs, 4 samples. SNP 0: alleles A (common) / G (minor).
	// SNP 1: C common, T minor. SNP 2: all same allele except one het.
	ped := `
FAM1 S1 0 0 1 1  A A  C C  G G
FAM1 S2 0 0 2 2  A G  C T  G G
FAM1 S3 0 0 1 2  G G  C C  G G
FAM1 S4 0 0 2 1  A A  T T  G T
`
	mx, err := ReadPED(strings.NewReader(ped))
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 3 || mx.Samples() != 4 {
		t.Fatalf("dims %dx%d", mx.SNPs(), mx.Samples())
	}
	// SNP 0: G appears 3/8 times -> minor. Genotypes: 0,1,2,0.
	wantG0 := []uint8{0, 1, 2, 0}
	for j, w := range wantG0 {
		if mx.Geno(0, j) != w {
			t.Errorf("SNP0 sample %d = %d, want %d", j, mx.Geno(0, j), w)
		}
	}
	// SNP 1: T appears 3/8 -> minor. Genotypes: 0,1,0,2.
	wantG1 := []uint8{0, 1, 0, 2}
	for j, w := range wantG1 {
		if mx.Geno(1, j) != w {
			t.Errorf("SNP1 sample %d = %d, want %d", j, mx.Geno(1, j), w)
		}
	}
	// SNP 2: T appears once -> minor. Genotypes: 0,0,0,1.
	wantG2 := []uint8{0, 0, 0, 1}
	for j, w := range wantG2 {
		if mx.Geno(2, j) != w {
			t.Errorf("SNP2 sample %d = %d, want %d", j, mx.Geno(2, j), w)
		}
	}
	// Phenotypes: column 6 (1=control, 2=case).
	wantP := []uint8{Control, Case, Case, Control}
	for j, w := range wantP {
		if mx.Phen(j) != w {
			t.Errorf("phen %d = %d, want %d", j, mx.Phen(j), w)
		}
	}
}

func TestReadPEDSkipsCommentsAndBlank(t *testing.T) {
	ped := "# header comment\n\nF S1 0 0 1 1 A A\nF S2 0 0 1 2 A G\n"
	mx, err := ReadPED(strings.NewReader(ped))
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 1 || mx.Samples() != 2 {
		t.Fatalf("dims %dx%d", mx.SNPs(), mx.Samples())
	}
}

func TestReadPEDErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"short line":        "F S1 0 0 1 1\n",
		"odd alleles":       "F S1 0 0 1 1 A A C\nF S2 0 0 1 2 A A C\n",
		"snp mismatch":      "F S1 0 0 1 1 A A\nF S2 0 0 1 2 A A C C\n",
		"bad phenotype":     "F S1 0 0 1 9 A A\n",
		"missing phenotype": "F S1 0 0 1 -9 A A\n",
		"missing allele":    "F S1 0 0 1 1 A 0\nF S2 0 0 1 2 A A\n",
		"triallelic":        "F S1 0 0 1 1 A C\nF S2 0 0 1 2 G G\n",
	}
	for name, in := range cases {
		if _, err := ReadPED(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadPEDRoundTripThroughGenerator(t *testing.T) {
	// Serialize a generated matrix to PED (hand-rolled here) and read
	// it back: minor-allele coding must reproduce the genotypes when
	// the minor allele is globally rarer.
	mx, err := Generate(GenConfig{SNPs: 6, Samples: 60, Seed: 50, MAFMin: 0.1, MAFMax: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for j := 0; j < mx.Samples(); j++ {
		p := "1"
		if mx.Phen(j) == Case {
			p = "2"
		}
		b.WriteString("F S 0 0 1 " + p)
		for i := 0; i < mx.SNPs(); i++ {
			switch mx.Geno(i, j) {
			case 0:
				b.WriteString(" A A")
			case 1:
				b.WriteString(" A G")
			case 2:
				b.WriteString(" G G")
			}
		}
		b.WriteByte('\n')
	}
	back, err := ReadPED(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(mx, back) {
		t.Error("PED round trip changed data")
	}
}

const rawHeader = "FID IID PAT MAT SEX PHENOTYPE rs1_A rs2_G rs3_T\n"

func TestReadRAWBasic(t *testing.T) {
	raw := rawHeader +
		"F S1 0 0 1 1 0 1 2\n" +
		"\n" + // blank lines are skipped
		"F S2 0 0 2 2 2 0 1\n"
	mx, err := ReadRAW(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 3 || mx.Samples() != 2 {
		t.Fatalf("dims %dx%d", mx.SNPs(), mx.Samples())
	}
	want := [][]uint8{{0, 2}, {1, 0}, {2, 1}} // SNP-major
	for i := range want {
		for j, w := range want[i] {
			if mx.Geno(i, j) != w {
				t.Errorf("SNP %d sample %d = %d, want %d", i, j, mx.Geno(i, j), w)
			}
		}
	}
	if mx.Phen(0) != Control || mx.Phen(1) != Case {
		t.Errorf("phenotypes %d %d", mx.Phen(0), mx.Phen(1))
	}
}

// TestReadRAWErrors covers the loader's malformed-input branches; each
// case asserts the error names the actual defect, since a distributed
// submit surfaces these strings to remote users.
func TestReadRAWErrors(t *testing.T) {
	cases := map[string]struct {
		in      string
		wantErr string
	}{
		"empty":          {"", "no header"},
		"blank only":     {"\n\n", "no header"},
		"bad header":     {"CHROM POS A B C D E\nF S 0 0 1 1 0\n", "not a .raw header"},
		"headerless row": {"F S1 0 0 1 1 0 1 2\n", "not a .raw header"},
		"header too short": {
			"FID IID PAT MAT SEX PHENOTYPE\n", "not a .raw header"},
		"no samples": {rawHeader, "no samples"},
		"truncated line": {
			rawHeader + "F S1 0 0 1 1 0 1\n", "truncated"},
		"overlong line": {
			rawHeader + "F S1 0 0 1 1 0 1 2 0\n", "truncated or ragged"},
		"bad phenotype": {
			rawHeader + "F S1 0 0 1 0 0 1 2\n", "phenotype"},
		"missing genotype": {
			rawHeader + "F S1 0 0 1 1 0 NA 2\n", "missing genotype"},
		"non-biallelic code": {
			rawHeader + "F S1 0 0 1 1 0 3 2\n", "non-biallelic"},
		"fractional dosage": {
			rawHeader + "F S1 0 0 1 1 0 1.5 2\n", "non-biallelic"},
	}
	for name, tc := range cases {
		_, err := ReadRAW(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

func TestReadRAWRoundTripThroughGenerator(t *testing.T) {
	mx, err := Generate(GenConfig{SNPs: 5, Samples: 40, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("FID IID PAT MAT SEX PHENOTYPE")
	for i := 0; i < mx.SNPs(); i++ {
		fmt.Fprintf(&b, " rs%d_A", i)
	}
	b.WriteByte('\n')
	for j := 0; j < mx.Samples(); j++ {
		p := "1"
		if mx.Phen(j) == Case {
			p = "2"
		}
		fmt.Fprintf(&b, "F S%d 0 0 1 %s", j, p)
		for i := 0; i < mx.SNPs(); i++ {
			fmt.Fprintf(&b, " %d", mx.Geno(i, j))
		}
		b.WriteByte('\n')
	}
	back, err := ReadRAW(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(mx, back) {
		t.Error("RAW round trip changed data")
	}
}

const vcfHeader = `##fileformat=VCFv4.2
##source=test
#CHROM	POS	ID	REF	ALT	QUAL	FILTER	INFO	FORMAT	S1	S2	S3
`

func TestReadVCFBasic(t *testing.T) {
	vcf := vcfHeader +
		"1\t100\trs1\tA\tG\t.\tPASS\t.\tGT\t0/0\t0/1\t1/1\n" +
		"1\t200\trs2\tC\tT\t.\tPASS\t.\tGT:DP\t1|1:12\t0|0:9\t0/1:30\n"
	mx, err := ReadVCF(strings.NewReader(vcf), []uint8{Control, Case, Control})
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 2 || mx.Samples() != 3 {
		t.Fatalf("dims %dx%d", mx.SNPs(), mx.Samples())
	}
	want := [][]uint8{{0, 1, 2}, {2, 0, 1}}
	for i := range want {
		for j, w := range want[i] {
			if mx.Geno(i, j) != w {
				t.Errorf("SNP %d sample %d = %d, want %d", i, j, mx.Geno(i, j), w)
			}
		}
	}
	if mx.Phen(1) != Case {
		t.Error("phenotype not applied")
	}
}

func TestReadVCFErrors(t *testing.T) {
	phen := []uint8{0, 1, 0}
	cases := map[string]string{
		"no rows":      vcfHeader,
		"data first":   "1\t1\t.\tA\tG\t.\t.\t.\tGT\t0/0\n",
		"col mismatch": vcfHeader + "1\t1\t.\tA\tG\t.\t.\t.\tGT\t0/0\t0/1\n",
		"multiallelic": vcfHeader + "1\t1\t.\tA\tG,T\t.\t.\t.\tGT\t0/0\t0/1\t1/1\n",
		"no GT format": vcfHeader + "1\t1\t.\tA\tG\t.\t.\t.\tDP\t3\t4\t5\n",
		"missing gt":   vcfHeader + "1\t1\t.\tA\tG\t.\t.\t.\tGT\t./.\t0/1\t1/1\n",
		"haploid gt":   vcfHeader + "1\t1\t.\tA\tG\t.\t.\t.\tGT\t0\t0/1\t1/1\n",
		"weird allele": vcfHeader + "1\t1\t.\tA\tG\t.\t.\t.\tGT\t0/2\t0/1\t1/1\n",
		"headerless":   "##meta only\n",
		"short header": "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\n1\t1\t.\tA\tG\t.\t.\t.\tGT\t0/0\n",
	}
	for name, in := range cases {
		if _, err := ReadVCF(strings.NewReader(in), phen); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Phenotype count mismatch and invalid phenotype value.
	good := vcfHeader + "1\t1\t.\tA\tG\t.\t.\t.\tGT\t0/0\t0/1\t1/1\n"
	if _, err := ReadVCF(strings.NewReader(good), []uint8{0, 1}); err == nil {
		t.Error("phenotype count mismatch accepted")
	}
	if _, err := ReadVCF(strings.NewReader(good), []uint8{0, 1, 9}); err == nil {
		t.Error("invalid phenotype accepted")
	}
}
