// Package dataset models case-control SNP datasets: the raw genotype
// matrix, the binarized bit-plane forms consumed by the detection
// kernels, GPU-oriented 32-bit word layouts, a synthetic data generator
// with planted higher-order interactions, and text/binary codecs.
//
// Terminology follows the paper: a dataset D has M SNPs and N samples;
// each entry is a genotype in {0, 1, 2} (homozygous major, heterozygous,
// homozygous minor) and each sample has a phenotype in {0 control,
// 1 case}.
package dataset

import (
	"fmt"
)

// Phenotype class indices. Class 0 is controls, class 1 is cases,
// matching the paper's D0|D1 notation.
const (
	Control = 0
	Case    = 1
)

// Matrix is the raw genotype matrix: M SNPs by N samples, SNP-major,
// plus one phenotype value per sample.
type Matrix struct {
	m, n int
	geno []uint8 // len m*n, geno[i*n+j] = genotype of SNP i for sample j
	phen []uint8 // len n
}

// NewMatrix returns a zeroed M-by-N genotype matrix (all genotypes 0,
// all samples controls).
func NewMatrix(m, n int) *Matrix {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("dataset: invalid dimensions %dx%d", m, n))
	}
	return &Matrix{m: m, n: n, geno: make([]uint8, m*n), phen: make([]uint8, n)}
}

// SNPs returns M, the number of SNPs.
func (mx *Matrix) SNPs() int { return mx.m }

// Samples returns N, the number of samples.
func (mx *Matrix) Samples() int { return mx.n }

// Geno returns the genotype of SNP i for sample j.
func (mx *Matrix) Geno(i, j int) uint8 {
	mx.checkIdx(i, j)
	return mx.geno[i*mx.n+j]
}

// SetGeno stores a genotype value (0, 1 or 2).
func (mx *Matrix) SetGeno(i, j int, g uint8) {
	mx.checkIdx(i, j)
	if g > 2 {
		panic(fmt.Sprintf("dataset: invalid genotype %d", g))
	}
	mx.geno[i*mx.n+j] = g
}

// Phen returns the phenotype (0 control, 1 case) of sample j.
func (mx *Matrix) Phen(j int) uint8 {
	if j < 0 || j >= mx.n {
		panic(fmt.Sprintf("dataset: sample %d out of range", j))
	}
	return mx.phen[j]
}

// SetPhen stores the phenotype of sample j.
func (mx *Matrix) SetPhen(j int, p uint8) {
	if j < 0 || j >= mx.n {
		panic(fmt.Sprintf("dataset: sample %d out of range", j))
	}
	if p > 1 {
		panic(fmt.Sprintf("dataset: invalid phenotype %d", p))
	}
	mx.phen[j] = p
}

func (mx *Matrix) checkIdx(i, j int) {
	if i < 0 || i >= mx.m || j < 0 || j >= mx.n {
		panic(fmt.Sprintf("dataset: index (%d,%d) out of range %dx%d", i, j, mx.m, mx.n))
	}
}

// ClassCounts returns the number of controls and cases.
func (mx *Matrix) ClassCounts() (controls, cases int) {
	for _, p := range mx.phen {
		if p == Case {
			cases++
		} else {
			controls++
		}
	}
	return mx.n - cases, cases
}

// GenotypeCounts returns, for SNP i, how many samples carry each
// genotype value.
func (mx *Matrix) GenotypeCounts(i int) (counts [3]int) {
	row := mx.geno[i*mx.n : (i+1)*mx.n]
	for _, g := range row {
		counts[g]++
	}
	return counts
}

// Row returns the genotype row of SNP i. The slice aliases the matrix.
func (mx *Matrix) Row(i int) []uint8 {
	mx.checkIdx(i, 0)
	return mx.geno[i*mx.n : (i+1)*mx.n]
}

// Phenotypes returns the phenotype slice. It aliases the matrix.
func (mx *Matrix) Phenotypes() []uint8 { return mx.phen }

// Validate checks all stored values are in range. Matrices built through
// the setters are always valid; Validate exists for data read from
// untrusted codecs or constructed via aliased rows.
func (mx *Matrix) Validate() error {
	for idx, g := range mx.geno {
		if g > 2 {
			return fmt.Errorf("dataset: SNP %d sample %d: invalid genotype %d", idx/mx.n, idx%mx.n, g)
		}
	}
	for j, p := range mx.phen {
		if p > 1 {
			return fmt.Errorf("dataset: sample %d: invalid phenotype %d", j, p)
		}
	}
	controls, cases := mx.ClassCounts()
	if controls == 0 || cases == 0 {
		return fmt.Errorf("dataset: degenerate dataset: %d controls, %d cases", controls, cases)
	}
	return nil
}
