package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// encodeBED packs per-SNP dosage rows into a SNP-major .bed blob.
// dosage 2 -> code 00 (hom A1), 1 -> 10 (het), 0 -> 11 (hom A2);
// code 1 in a row injects the missing marker 01 for error tests.
func encodeBED(rows [][]uint8, missing map[[2]int]bool) []byte {
	out := []byte{0x6c, 0x1b, 0x01}
	for snp, row := range rows {
		block := make([]byte, (len(row)+3)/4)
		for j, g := range row {
			var code byte
			switch g {
			case 2:
				code = 0b00
			case 1:
				code = 0b10
			case 0:
				code = 0b11
			}
			if missing[[2]int{snp, j}] {
				code = 0b01
			}
			block[j/4] |= code << uint(2*(j%4))
		}
		out = append(out, block...)
	}
	return out
}

func bimLines(m int) string {
	var sb strings.Builder
	for i := 0; i < m; i++ {
		sb.WriteString("1 rs")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(" 0 100 A G\n")
	}
	return sb.String()
}

func famLines(phen []string) string {
	var sb strings.Builder
	for i, p := range phen {
		sb.WriteString("f i")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(" 0 0 1 ")
		sb.WriteString(p)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestReadBED(t *testing.T) {
	rows := [][]uint8{
		{0, 1, 2, 1, 0},
		{2, 2, 0, 1, 1},
		{1, 0, 1, 2, 0},
	}
	phen := []string{"1", "2", "2", "1", "2"}
	mx, err := ReadBED(
		bytes.NewReader(encodeBED(rows, nil)),
		strings.NewReader(bimLines(3)),
		strings.NewReader(famLines(phen)),
	)
	if err != nil {
		t.Fatalf("ReadBED: %v", err)
	}
	if mx.SNPs() != 3 || mx.Samples() != 5 {
		t.Fatalf("got %dx%d, want 3x5", mx.SNPs(), mx.Samples())
	}
	for snp, want := range rows {
		if got := mx.Row(snp); !bytes.Equal(got, want) {
			t.Errorf("SNP %d: got %v, want %v", snp, got, want)
		}
	}
	wantPhen := []uint8{Control, Case, Case, Control, Case}
	if got := mx.Phenotypes(); !bytes.Equal(got, wantPhen) {
		t.Errorf("phenotypes: got %v, want %v", got, wantPhen)
	}
}

func TestReadBEDErrors(t *testing.T) {
	rows := [][]uint8{{0, 1, 2, 1, 0}, {2, 2, 0, 1, 1}}
	good := encodeBED(rows, nil)
	bim2, fam5 := bimLines(2), famLines([]string{"1", "2", "2", "1", "2"})

	cases := []struct {
		name          string
		bed           []byte
		bim, fam      string
		wantSubstring string
	}{
		{
			name: "bad magic",
			bed:  append([]byte{0x6c, 0x1c, 0x01}, good[3:]...),
			bim:  bim2, fam: fam5,
			wantSubstring: "bad magic",
		},
		{
			name: "sample-major mode",
			bed:  append([]byte{0x6c, 0x1b, 0x00}, good[3:]...),
			bim:  bim2, fam: fam5,
			wantSubstring: "sample-major layout (mode 0x00) unsupported",
		},
		{
			name: "truncated block",
			bed:  good[:len(good)-1],
			bim:  bim2, fam: fam5,
			wantSubstring: "truncated genotype block for SNP 1",
		},
		{
			name:          "sample-count mismatch leaves trailing bytes",
			bed:           good,
			bim:           bim2,
			fam:           famLines([]string{"1", "2", "1"}), // 3 samples -> 1-byte blocks
			wantSubstring: "trailing bytes after 2 SNPs (sample count mismatch",
		},
		{
			name: "missing genotype",
			bed:  encodeBED(rows, map[[2]int]bool{{1, 3}: true}),
			bim:  bim2, fam: fam5,
			wantSubstring: "missing genotype at SNP 1 sample 3",
		},
		{
			name:          "bad fam phenotype",
			bed:           good,
			bim:           bim2,
			fam:           famLines([]string{"1", "2", "9", "1", "2"}),
			wantSubstring: `unsupported phenotype "9"`,
		},
		{
			name:          "ragged bim",
			bed:           good,
			bim:           "1 rs0 0 100 A G\n1 rs1 0 100 A\n",
			fam:           fam5,
			wantSubstring: "bim line 2: 5 fields, want 6",
		},
		{
			name:          "empty fam",
			bed:           good,
			bim:           bim2,
			fam:           "",
			wantSubstring: "fam has no samples",
		},
		{
			name:          "empty bim",
			bed:           good,
			bim:           "",
			fam:           fam5,
			wantSubstring: "bim has no SNPs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBED(bytes.NewReader(tc.bed), strings.NewReader(tc.bim), strings.NewReader(tc.fam))
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantSubstring)
			}
			if !strings.Contains(err.Error(), tc.wantSubstring) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSubstring)
			}
		})
	}
}

// TestReadBEDPadding checks that nonzero padding bits in the last
// byte of a block (beyond sample N-1) are ignored, matching plink's
// reader rather than its writer.
func TestReadBEDPadding(t *testing.T) {
	rows := [][]uint8{{2, 0, 1}}
	bed := encodeBED(rows, nil)
	bed[len(bed)-1] |= 0b01 << 6 // junk in the padding slot
	mx, err := ReadBED(
		bytes.NewReader(bed),
		strings.NewReader(bimLines(1)),
		strings.NewReader(famLines([]string{"1", "2", "1"})),
	)
	if err != nil {
		t.Fatalf("ReadBED with padding bits: %v", err)
	}
	if got := mx.Row(0); !bytes.Equal(got, rows[0]) {
		t.Fatalf("got %v, want %v", got, rows[0])
	}
}
