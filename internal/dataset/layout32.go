package dataset

import "fmt"

// Layout selects the memory arrangement of the 32-bit word forms used
// by the GPU approaches. The paper's GPU V2 uses SNP-major rows, V3 a
// transposed (sample-word-major) arrangement that coalesces warp loads,
// and V4 a tiled arrangement that keeps blocks of BS SNPs adjacent.
type Layout int

const (
	// LayoutRowMajor stores each SNP's words contiguously
	// (word index fastest): address = snp*W + word.
	LayoutRowMajor Layout = iota
	// LayoutTransposed stores each sample word group contiguously
	// across SNPs: address = word*M + snp.
	LayoutTransposed
	// LayoutTiled groups SNPs into tiles of BS; inside a tile the words
	// of the BS SNPs for one sample group are adjacent:
	// address = (snp/BS)*BS*W + word*BS + snp%BS.
	LayoutTiled
)

// String returns the layout name used in reports.
func (l Layout) String() string {
	switch l {
	case LayoutRowMajor:
		return "row-major"
	case LayoutTransposed:
		return "transposed"
	case LayoutTiled:
		return "tiled"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// WordBits32 is the GPU word width. The paper compresses input data with
// 32-bit integers for portability across all devices; the GPU simulator
// keeps that granularity because memory-coalescing behaviour is defined
// in terms of the per-thread access size.
const WordBits32 = 32

// Words32 holds the phenotype-split dataset re-encoded as 32-bit words
// for the GPU simulator, in one of the three layouts.
type Words32 struct {
	M       int
	MPadded int    // M rounded up to a tile multiple (== M unless tiled)
	N       [2]int // samples per class
	W       [2]int // 32-bit words per class
	Pad     [2]int // zero padding bits in the last word of each class
	Layout  Layout
	BS      int // tile width in SNPs (tiled layout only, else 0)

	data [2][2][]uint32 // [class][plane]
}

// BuildWords32 re-encodes a Split dataset into 32-bit words with the
// requested layout. bs is the SNP tile width and must be positive for
// LayoutTiled (ignored otherwise).
func BuildWords32(s *Split, layout Layout, bs int) *Words32 {
	w := &Words32{M: s.M, MPadded: s.M, Layout: layout}
	if layout == LayoutTiled {
		if bs <= 0 {
			panic(fmt.Sprintf("dataset: tiled layout requires positive tile size, got %d", bs))
		}
		w.BS = bs
		w.MPadded = (s.M + bs - 1) / bs * bs
	}
	for c := 0; c < 2; c++ {
		w.N[c] = s.N[c]
		w.W[c] = (s.N[c] + WordBits32 - 1) / WordBits32
		w.Pad[c] = w.W[c]*WordBits32 - s.N[c]
		for g := 0; g < 2; g++ {
			w.data[c][g] = make([]uint32, w.MPadded*w.W[c])
		}
	}
	for c := 0; c < 2; c++ {
		for i := 0; i < s.M; i++ {
			for g := 0; g < 2; g++ {
				src := s.Plane(c, i, g)
				dst := w.data[c][g]
				for k := 0; k < w.W[c]; k++ {
					half := uint32(src[k/2] >> (uint(k%2) * 32))
					dst[w.Index(i, k, c)] = half
				}
			}
		}
	}
	return w
}

// Index returns the flat position of (snp, word) for the given class
// under the receiver's layout.
func (w *Words32) Index(snp, word, class int) int {
	switch w.Layout {
	case LayoutRowMajor:
		return snp*w.W[class] + word
	case LayoutTransposed:
		return word*w.MPadded + snp
	case LayoutTiled:
		return (snp/w.BS)*w.BS*w.W[class] + word*w.BS + snp%w.BS
	default:
		panic(fmt.Sprintf("dataset: unknown layout %d", int(w.Layout)))
	}
}

// Word returns the 32-bit word at (snp, word) of plane g for a class.
func (w *Words32) Word(class, g, snp, word int) uint32 {
	return w.data[class][g][w.Index(snp, word, class)]
}

// Data exposes the raw plane array for a class/plane pair. The GPU
// simulator uses it together with Index to model memory addresses.
func (w *Words32) Data(class, g int) []uint32 { return w.data[class][g] }

// Naive32 is the Figure 1 naive representation in 32-bit words: three
// genotype planes over all samples plus the phenotype, SNP-major. The
// GPU V1 kernel consumes it.
type Naive32 struct {
	M, N int
	W    int // 32-bit words over all samples
	Pad  int
	data [3][]uint32
	Phen []uint32
}

// BuildNaive32 re-encodes a Binarized dataset into 32-bit words.
func BuildNaive32(b *Binarized) *Naive32 {
	n := &Naive32{M: b.M, N: b.N}
	n.W = (b.N + WordBits32 - 1) / WordBits32
	n.Pad = n.W*WordBits32 - b.N
	for g := 0; g < 3; g++ {
		n.data[g] = make([]uint32, b.M*n.W)
	}
	n.Phen = make([]uint32, n.W)
	for i := 0; i < b.M; i++ {
		for g := 0; g < 3; g++ {
			src := b.Plane(i, g)
			for k := 0; k < n.W; k++ {
				n.data[g][i*n.W+k] = uint32(src[k/2] >> (uint(k%2) * 32))
			}
		}
	}
	pw := b.Phen.Words()
	for k := 0; k < n.W; k++ {
		n.Phen[k] = uint32(pw[k/2] >> (uint(k%2) * 32))
	}
	return n
}

// Word returns the 32-bit word at (snp, word) of plane g.
func (n *Naive32) Word(g, snp, word int) uint32 { return n.data[g][snp*n.W+word] }

// Data exposes the raw plane array.
func (n *Naive32) Data(g int) []uint32 { return n.data[g] }
