package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format:
//
//	#trigene v1 <M> <N>
//	<M lines of N genotype digits (0/1/2), no separators>
//	<1 line of N phenotype digits (0/1)>
//
// Binary format (little endian):
//
//	magic "TGB1", uint32 M, uint32 N,
//	M*N genotypes packed 2 bits each (4 per byte, row-major),
//	N phenotypes packed 1 bit each (8 per byte).

const textMagic = "#trigene v1"

// WriteText serializes the matrix in the line-oriented text format.
func WriteText(w io.Writer, mx *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d %d\n", textMagic, mx.SNPs(), mx.Samples()); err != nil {
		return err
	}
	line := make([]byte, mx.Samples()+1)
	line[mx.Samples()] = '\n'
	for i := 0; i < mx.SNPs(); i++ {
		row := mx.Row(i)
		for j, g := range row {
			line[j] = '0' + g
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	for j := 0; j < mx.Samples(); j++ {
		line[j] = '0' + mx.Phen(j)
	}
	if _, err := bw.Write(line); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty input: %w", orEOF(sc.Err()))
	}
	header := sc.Text()
	if !strings.HasPrefix(header, textMagic) {
		return nil, fmt.Errorf("dataset: bad header %q", truncate(header, 40))
	}
	fields := strings.Fields(strings.TrimPrefix(header, textMagic))
	if len(fields) != 2 {
		return nil, fmt.Errorf("dataset: header needs M and N, got %q", truncate(header, 40))
	}
	m, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("dataset: bad M: %w", err)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("dataset: bad N: %w", err)
	}
	if m <= 0 || n <= 0 || m > 1<<24 || n > 1<<24 {
		return nil, fmt.Errorf("dataset: unreasonable dimensions %dx%d", m, n)
	}
	mx := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("dataset: truncated at SNP row %d: %w", i, orEOF(sc.Err()))
		}
		row := sc.Bytes()
		if len(row) != n {
			return nil, fmt.Errorf("dataset: SNP row %d has %d values, want %d", i, len(row), n)
		}
		dst := mx.Row(i)
		for j, ch := range row {
			if ch < '0' || ch > '2' {
				return nil, fmt.Errorf("dataset: SNP row %d sample %d: invalid genotype %q", i, j, ch)
			}
			dst[j] = ch - '0'
		}
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: missing phenotype row: %w", orEOF(sc.Err()))
	}
	prow := sc.Bytes()
	if len(prow) != n {
		return nil, fmt.Errorf("dataset: phenotype row has %d values, want %d", len(prow), n)
	}
	for j, ch := range prow {
		if ch != '0' && ch != '1' {
			return nil, fmt.Errorf("dataset: sample %d: invalid phenotype %q", j, ch)
		}
		mx.SetPhen(j, ch-'0')
	}
	return mx, nil
}

var binMagic = [4]byte{'T', 'G', 'B', '1'}

// WriteBinary serializes the matrix in the compact binary format.
func WriteBinary(w io.Writer, mx *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(mx.SNPs()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(mx.Samples()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// Genotypes, 2 bits each.
	var acc byte
	var nacc int
	flush := func() error {
		if nacc > 0 {
			if err := bw.WriteByte(acc); err != nil {
				return err
			}
			acc, nacc = 0, 0
		}
		return nil
	}
	for i := 0; i < mx.SNPs(); i++ {
		for _, g := range mx.Row(i) {
			acc |= g << (uint(nacc) * 2)
			nacc++
			if nacc == 4 {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	// Phenotypes, 1 bit each.
	acc, nacc = 0, 0
	for j := 0; j < mx.Samples(); j++ {
		acc |= mx.Phen(j) << uint(nacc)
		nacc++
		if nacc == 8 {
			if err := bw.WriteByte(acc); err != nil {
				return err
			}
			acc, nacc = 0, 0
		}
	}
	if nacc > 0 {
		if err := bw.WriteByte(acc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format produced by WriteBinary.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	m := int(binary.LittleEndian.Uint32(hdr[0:]))
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	if m <= 0 || n <= 0 || m > 1<<24 || n > 1<<24 {
		return nil, fmt.Errorf("dataset: unreasonable dimensions %dx%d", m, n)
	}
	mx := NewMatrix(m, n)
	genoBytes := (m*n + 3) / 4
	buf := make([]byte, genoBytes)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("dataset: reading genotypes: %w", err)
	}
	for idx := 0; idx < m*n; idx++ {
		g := buf[idx/4] >> (uint(idx%4) * 2) & 3
		if g > 2 {
			return nil, fmt.Errorf("dataset: invalid packed genotype 3 at index %d", idx)
		}
		mx.geno[idx] = g
	}
	phenBytes := (n + 7) / 8
	pbuf := make([]byte, phenBytes)
	if _, err := io.ReadFull(br, pbuf); err != nil {
		return nil, fmt.Errorf("dataset: reading phenotypes: %w", err)
	}
	for j := 0; j < n; j++ {
		mx.phen[j] = pbuf[j/8] >> (uint(j) % 8) & 1
	}
	return mx, nil
}

func orEOF(err error) error {
	if err == nil {
		return io.ErrUnexpectedEOF
	}
	return err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
