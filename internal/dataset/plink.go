package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Importers for the interchange formats GWAS toolchains actually
// emit: PLINK's classic .ped (samples in rows, two allele columns per
// SNP, phenotype column 6), PLINK's additive-recode .raw (samples in
// rows, one 0/1/2 dosage column per SNP behind a header), and a VCF
// subset (bi-allelic sites with a leading GT field). All are strict:
// missing genotypes, truncated rows and non-biallelic codes are
// rejected rather than silently imputed, since downstream counting
// assumes complete data.

// ReadPED parses a PLINK .ped file. Each line holds
//
//	FID IID PAT MAT SEX PHENO  a1 b1  a2 b2  ...  aM bM
//
// with phenotype 1 = control, 2 = case, and alleles as single tokens
// (ACGT or 1/2 coding; "0" marks a missing allele and is rejected).
// The minor allele of each SNP is determined from the data (the rarer
// allele; ties break toward the lexicographically larger token), and
// genotype values are minor-allele counts.
func ReadPED(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var rows [][]string // allele tokens per sample
	var phen []uint8
	m := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 8 {
			return nil, fmt.Errorf("dataset: ped line %d: %d fields, need at least 8", line, len(fields))
		}
		alleles := fields[6:]
		if len(alleles)%2 != 0 {
			return nil, fmt.Errorf("dataset: ped line %d: odd allele count %d", line, len(alleles))
		}
		if m == -1 {
			m = len(alleles) / 2
		} else if len(alleles)/2 != m {
			return nil, fmt.Errorf("dataset: ped line %d: %d SNPs, want %d", line, len(alleles)/2, m)
		}
		switch fields[5] {
		case "1":
			phen = append(phen, Control)
		case "2":
			phen = append(phen, Case)
		default:
			return nil, fmt.Errorf("dataset: ped line %d: unsupported phenotype %q (want 1 or 2)", line, fields[5])
		}
		for i, a := range alleles {
			if a == "0" {
				return nil, fmt.Errorf("dataset: ped line %d: missing allele at SNP %d", line, i/2)
			}
		}
		rows = append(rows, alleles)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading ped: %w", err)
	}
	if len(rows) == 0 || m <= 0 {
		return nil, fmt.Errorf("dataset: ped input has no samples")
	}

	n := len(rows)
	mx := NewMatrix(m, n)
	for j, p := range phen {
		mx.SetPhen(j, p)
	}
	for snp := 0; snp < m; snp++ {
		minor, err := minorAllele(rows, snp)
		if err != nil {
			return nil, err
		}
		dst := mx.Row(snp)
		for j, row := range rows {
			g := uint8(0)
			if row[2*snp] == minor {
				g++
			}
			if row[2*snp+1] == minor {
				g++
			}
			dst[j] = g
		}
	}
	return mx, nil
}

// minorAllele finds the rarer of a SNP's two alleles across samples.
func minorAllele(rows [][]string, snp int) (string, error) {
	counts := map[string]int{}
	for _, row := range rows {
		counts[row[2*snp]]++
		counts[row[2*snp+1]]++
	}
	if len(counts) > 2 {
		return "", fmt.Errorf("dataset: ped SNP %d has %d alleles, want at most 2", snp, len(counts))
	}
	minor, best := "", int(^uint(0)>>1)
	for a, c := range counts {
		if c < best || (c == best && a > minor) {
			minor, best = a, c
		}
	}
	return minor, nil
}

// ReadRAW parses a PLINK .raw file (`plink --recode A`): a header line
//
//	FID IID PAT MAT SEX PHENOTYPE snp1_A snp2_G ... snpM_T
//
// followed by one line per sample whose genotype columns are
// minor-allele dosages. Phenotype is 1 = control / 2 = case. The
// format is strict: every sample line must carry exactly one code per
// header SNP (a truncated line is an error, not a short sample), codes
// must be the biallelic dosages 0, 1 or 2, and the missing marker NA
// is rejected.
func ReadRAW(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	m := -1
	line := 0
	var rows [][]uint8
	var phen []uint8
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if m == -1 {
			// Header line.
			if len(fields) < 7 || fields[0] != "FID" || fields[5] != "PHENOTYPE" {
				return nil, fmt.Errorf("dataset: raw line %d: not a .raw header (want FID IID PAT MAT SEX PHENOTYPE snp...)", line)
			}
			m = len(fields) - 6
			continue
		}
		if len(fields) != 6+m {
			return nil, fmt.Errorf("dataset: raw line %d: truncated or ragged line: %d fields, want %d", line, len(fields), 6+m)
		}
		switch fields[5] {
		case "1":
			phen = append(phen, Control)
		case "2":
			phen = append(phen, Case)
		default:
			return nil, fmt.Errorf("dataset: raw line %d: unsupported phenotype %q (want 1 or 2)", line, fields[5])
		}
		row := make([]uint8, m)
		for i, code := range fields[6:] {
			switch code {
			case "0":
				row[i] = 0
			case "1":
				row[i] = 1
			case "2":
				row[i] = 2
			case "NA":
				return nil, fmt.Errorf("dataset: raw line %d: missing genotype (NA) at SNP %d", line, i)
			default:
				return nil, fmt.Errorf("dataset: raw line %d: non-biallelic dosage code %q at SNP %d (want 0, 1 or 2)", line, code, i)
			}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading raw: %w", err)
	}
	if m == -1 {
		return nil, fmt.Errorf("dataset: raw input has no header")
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: raw input has no samples")
	}

	mx := NewMatrix(m, len(rows))
	for j, p := range phen {
		mx.SetPhen(j, p)
	}
	for snp := 0; snp < m; snp++ {
		dst := mx.Row(snp)
		for j, row := range rows {
			dst[j] = row[snp]
		}
	}
	return mx, nil
}

// ReadVCF parses a bi-allelic VCF subset: meta lines (##...) are
// skipped, the #CHROM header fixes the sample count, and each data row
// contributes one SNP whose genotypes are ALT-allele counts taken from
// the leading GT subfield (phased or unphased). phen supplies the
// phenotype per sample in header order, since VCF carries no
// case-control status.
func ReadVCF(r io.Reader, phen []uint8) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var samples int
	var rows [][]uint8
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.HasPrefix(text, "##"), strings.TrimSpace(text) == "":
			continue
		case strings.HasPrefix(text, "#CHROM"):
			fields := strings.Fields(text)
			if len(fields) < 10 {
				return nil, fmt.Errorf("dataset: vcf line %d: header has no samples", line)
			}
			samples = len(fields) - 9
			continue
		}
		if samples == 0 {
			return nil, fmt.Errorf("dataset: vcf line %d: data before #CHROM header", line)
		}
		fields := strings.Fields(text)
		if len(fields) != 9+samples {
			return nil, fmt.Errorf("dataset: vcf line %d: %d columns, want %d", line, len(fields), 9+samples)
		}
		if strings.Contains(fields[4], ",") {
			return nil, fmt.Errorf("dataset: vcf line %d: multi-allelic site %q unsupported", line, fields[4])
		}
		if !strings.HasPrefix(fields[8], "GT") {
			return nil, fmt.Errorf("dataset: vcf line %d: FORMAT %q must lead with GT", line, fields[8])
		}
		row := make([]uint8, samples)
		for s := 0; s < samples; s++ {
			gt := fields[9+s]
			if i := strings.IndexByte(gt, ':'); i >= 0 {
				gt = gt[:i]
			}
			g, err := parseGT(gt)
			if err != nil {
				return nil, fmt.Errorf("dataset: vcf line %d sample %d: %w", line, s, err)
			}
			row[s] = g
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading vcf: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: vcf input has no variant rows")
	}
	if len(phen) != samples {
		return nil, fmt.Errorf("dataset: %d phenotypes for %d VCF samples", len(phen), samples)
	}

	mx := NewMatrix(len(rows), samples)
	for j, p := range phen {
		if p > 1 {
			return nil, fmt.Errorf("dataset: invalid phenotype %d for sample %d", p, j)
		}
		mx.SetPhen(j, p)
	}
	for snp, row := range rows {
		copy(mx.Row(snp), row)
	}
	return mx, nil
}

// parseGT converts a diploid GT subfield ("0/1", "1|1", ...) into an
// ALT-allele count.
func parseGT(gt string) (uint8, error) {
	sep := strings.IndexAny(gt, "/|")
	if sep < 0 {
		return 0, fmt.Errorf("haploid or malformed GT %q", gt)
	}
	a, b := gt[:sep], gt[sep+1:]
	count := uint8(0)
	for _, h := range []string{a, b} {
		switch h {
		case "0":
		case "1":
			count++
		case ".":
			return 0, fmt.Errorf("missing GT %q", gt)
		default:
			return 0, fmt.Errorf("unsupported allele %q in GT %q", h, gt)
		}
	}
	return count, nil
}
