package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trigene/internal/bitvec"
)

func randomMatrix(seed int64, m, n int) *Matrix {
	r := rand.New(rand.NewSource(seed))
	mx := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < n; j++ {
		mx.SetPhen(j, uint8(r.Intn(2)))
	}
	return mx
}

func TestBinarizePlanesPartition(t *testing.T) {
	mx := randomMatrix(10, 5, 130)
	b := Binarize(mx)
	if b.M != 5 || b.N != 130 {
		t.Fatalf("dims = %dx%d", b.M, b.N)
	}
	for i := 0; i < b.M; i++ {
		for j := 0; j < b.N; j++ {
			g := mx.Geno(i, j)
			for plane := 0; plane < 3; plane++ {
				bit := b.Plane(i, plane)[j/64]>>(uint(j)%64)&1 != 0
				if bit != (int(g) == plane) {
					t.Fatalf("SNP %d sample %d plane %d: bit %v, genotype %d", i, j, plane, bit, g)
				}
			}
		}
		// Planes partition the samples.
		total := 0
		for plane := 0; plane < 3; plane++ {
			total += bitvec.PopCount(b.Plane(i, plane))
		}
		if total != b.N {
			t.Fatalf("SNP %d planes sum to %d, want %d", i, total, b.N)
		}
	}
	// Phenotype vector matches.
	for j := 0; j < b.N; j++ {
		if b.Phen.Get(j) != (mx.Phen(j) == Case) {
			t.Fatalf("phenotype bit %d mismatch", j)
		}
	}
}

func TestBinarizePlaneRangePanics(t *testing.T) {
	b := Binarize(randomMatrix(1, 3, 10))
	for _, f := range []func(){
		func() { b.Plane(3, 0) },
		func() { b.Plane(0, 3) },
		func() { b.Plane(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSplitBinarizeCountsAndPlanes(t *testing.T) {
	mx := randomMatrix(11, 6, 200)
	s := SplitBinarize(mx)
	controls, cases := mx.ClassCounts()
	if s.N[Control] != controls || s.N[Case] != cases {
		t.Fatalf("split sizes (%d,%d), want (%d,%d)", s.N[Control], s.N[Case], controls, cases)
	}
	for c := 0; c < 2; c++ {
		if s.Words[c] != bitvec.WordsFor(s.N[c]) {
			t.Errorf("class %d words = %d", c, s.Words[c])
		}
		if s.Pad[c] != s.Words[c]*64-s.N[c] {
			t.Errorf("class %d pad = %d", c, s.Pad[c])
		}
	}
	// Reconstruct genotype counts per class from planes; compare with the
	// matrix. Plane 0 and 1 are stored, genotype 2 count is the remainder.
	for i := 0; i < s.M; i++ {
		var want [2][3]int
		for j := 0; j < mx.Samples(); j++ {
			want[mx.Phen(j)][mx.Geno(i, j)]++
		}
		for c := 0; c < 2; c++ {
			n0 := bitvec.PopCount(s.Plane(c, i, 0))
			n1 := bitvec.PopCount(s.Plane(c, i, 1))
			if n0 != want[c][0] || n1 != want[c][1] {
				t.Fatalf("SNP %d class %d: planes (%d,%d), want (%d,%d)", i, c, n0, n1, want[c][0], want[c][1])
			}
			if s.N[c]-n0-n1 != want[c][2] {
				t.Fatalf("SNP %d class %d: inferred g2 %d, want %d", i, c, s.N[c]-n0-n1, want[c][2])
			}
		}
	}
}

// Property: for any matrix, the NOR-derived genotype-2 plane (with the
// pad correction) counts exactly the genotype-2 samples.
func TestSplitNorInferenceProperty(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		m := int(mRaw%5) + 3
		n := int(nRaw%150) + 2
		mx := randomMatrix(seed, m, n)
		s := SplitBinarize(mx)
		for c := 0; c < 2; c++ {
			for i := 0; i < m; i++ {
				g2 := make([]uint64, s.Words[c])
				bitvec.Nor(g2, s.Plane(c, i, 0), s.Plane(c, i, 1))
				got := bitvec.PopCount(g2) - s.Pad[c] // pad bits come out as ones
				want := 0
				for j := 0; j < n; j++ {
					if int(mx.Phen(j)) == c && mx.Geno(i, j) == 2 {
						want++
					}
				}
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplitPlaneRange(t *testing.T) {
	mx := randomMatrix(12, 3, 300)
	s := SplitBinarize(mx)
	full := s.Plane(Control, 1, 0)
	part := s.PlaneRange(Control, 1, 0, 1, 3)
	if len(part) != 2 || &part[0] != &full[1] {
		t.Error("PlaneRange should alias the plane storage")
	}
}

func TestSplitPanics(t *testing.T) {
	s := SplitBinarize(randomMatrix(1, 3, 10))
	for _, f := range []func(){
		func() { s.Plane(2, 0, 0) },
		func() { s.Plane(0, 3, 0) },
		func() { s.Plane(0, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBytesPerCombination(t *testing.T) {
	mx := randomMatrix(13, 3, 128)
	s := SplitBinarize(mx)
	want := (s.Words[0] + s.Words[1]) * 2 * 3 * 8
	if got := s.BytesPerCombination(); got != want {
		t.Errorf("BytesPerCombination = %d, want %d", got, want)
	}
}
