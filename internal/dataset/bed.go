package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// PLINK 1 binary fileset support: the .bed genotype blob plus its
// .bim (one line per SNP) and .fam (one line per sample) sidecars.
// Like the text importers this is strict — missing genotypes,
// truncated blocks and length mismatches between the three files are
// rejected rather than imputed.

// IsBED reports whether magic opens a PLINK 1 SNP-major .bed file:
// the two magic bytes 0x6c 0x1b followed by the mode byte 0x01.
func IsBED(magic []byte) bool {
	return len(magic) >= 3 && magic[0] == 0x6c && magic[1] == 0x1b && magic[2] == 0x01
}

// ReadBED parses a PLINK 1 binary fileset from its three streams. The
// .fam fixes the sample count and phenotypes (column 6, 1 = control,
// 2 = case), the .bim fixes the SNP count, and the .bed carries one
// ceil(N/4)-byte block per SNP in variant-major order. Each byte packs
// four samples, two bits each, low bits first: 00 = homozygous A1
// (dosage 2, A1 is PLINK's minor allele), 10 = heterozygous (1),
// 11 = homozygous A2 (0), 01 = missing (rejected). Sample-major files
// (mode byte 0x00) and trailing bytes — the signature of a .fam that
// disagrees with the .bed's sample count — are errors.
func ReadBED(bed, bim, fam io.Reader) (*Matrix, error) {
	phen, err := readFAM(fam)
	if err != nil {
		return nil, err
	}
	m, err := readBIM(bim)
	if err != nil {
		return nil, err
	}

	br := bufio.NewReader(bed)
	var header [3]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("dataset: bed: reading magic: %w", err)
	}
	if header[0] != 0x6c || header[1] != 0x1b {
		return nil, fmt.Errorf("dataset: bed: bad magic %#02x %#02x (want 0x6c 0x1b)", header[0], header[1])
	}
	switch header[2] {
	case 0x01:
		// SNP-major, the only layout modern plink writes.
	case 0x00:
		return nil, fmt.Errorf("dataset: bed: sample-major layout (mode 0x00) unsupported; re-export with a modern plink")
	default:
		return nil, fmt.Errorf("dataset: bed: unknown mode byte %#02x (want 0x01)", header[2])
	}

	n := len(phen)
	mx := NewMatrix(m, n)
	for j, p := range phen {
		mx.SetPhen(j, p)
	}
	block := make([]byte, (n+3)/4)
	for snp := 0; snp < m; snp++ {
		if _, err := io.ReadFull(br, block); err != nil {
			return nil, fmt.Errorf("dataset: bed: truncated genotype block for SNP %d (is the .bim or .fam from a different fileset?): %w", snp, err)
		}
		dst := mx.Row(snp)
		for j := 0; j < n; j++ {
			switch block[j/4] >> uint(2*(j%4)) & 3 {
			case 0b00:
				dst[j] = 2
			case 0b10:
				dst[j] = 1
			case 0b11:
				dst[j] = 0
			default: // 0b01
				return nil, fmt.Errorf("dataset: bed: missing genotype at SNP %d sample %d", snp, j)
			}
		}
	}
	if extra, _ := io.Copy(io.Discard, br); extra > 0 {
		return nil, fmt.Errorf("dataset: bed: %d trailing bytes after %d SNPs (sample count mismatch with the .fam?)", extra, m)
	}
	return mx, nil
}

// readFAM parses the .fam sidecar: one sample per line, six columns
// (FID IID PAT MAT SEX PHENO), phenotype 1 = control / 2 = case.
func readFAM(r io.Reader) ([]uint8, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var phen []uint8
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 6 {
			return nil, fmt.Errorf("dataset: bed: fam line %d: %d fields, want 6 (FID IID PAT MAT SEX PHENO)", line, len(fields))
		}
		switch fields[5] {
		case "1":
			phen = append(phen, Control)
		case "2":
			phen = append(phen, Case)
		default:
			return nil, fmt.Errorf("dataset: bed: fam line %d: unsupported phenotype %q (want 1 or 2)", line, fields[5])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: bed: reading fam: %w", err)
	}
	if len(phen) == 0 {
		return nil, fmt.Errorf("dataset: bed: fam has no samples")
	}
	return phen, nil
}

// readBIM counts and validates the .bim sidecar: one SNP per line,
// six columns (CHR ID CM POS A1 A2).
func readBIM(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	m := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if got := len(strings.Fields(text)); got != 6 {
			return 0, fmt.Errorf("dataset: bed: bim line %d: %d fields, want 6 (CHR ID CM POS A1 A2)", line, got)
		}
		m++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("dataset: bed: reading bim: %w", err)
	}
	if m == 0 {
		return 0, fmt.Errorf("dataset: bed: bim has no SNPs")
	}
	return m, nil
}
