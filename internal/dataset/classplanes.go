package dataset

import (
	"fmt"

	"trigene/internal/bitvec"
)

// ClassPlanes is the MPI3SNP-style data layout: per phenotype class,
// all three genotype bit planes of every SNP are stored (no NOR
// inference). The baseline backend consumes it; the encoded-dataset
// store memoizes it so repeated baseline runs build it once.
type ClassPlanes struct {
	M      int
	words  [2]int
	planes [2][]uint64 // [class] -> (snp*3+g)*words
}

// BuildClassPlanes converts a genotype matrix into the per-class
// three-plane form. Sample order within each class follows the
// original sample order.
func BuildClassPlanes(mx *Matrix) *ClassPlanes {
	m := mx.SNPs()
	controls, cases := mx.ClassCounts()
	cp := &ClassPlanes{M: m}
	sizes := [2]int{controls, cases}
	for c := 0; c < 2; c++ {
		cp.words[c] = bitvec.WordsFor(sizes[c])
		cp.planes[c] = make([]uint64, m*3*cp.words[c])
	}
	var pos [2]int
	for j := 0; j < mx.Samples(); j++ {
		c := int(mx.Phen(j))
		p := pos[c]
		pos[c]++
		for i := 0; i < m; i++ {
			g := int(mx.Geno(i, j))
			w := cp.words[c]
			cp.planes[c][(i*3+g)*w+p/64] |= 1 << (uint(p) % 64)
		}
	}
	return cp
}

// ClassWords returns the 64-bit words per plane for the given class.
func (cp *ClassPlanes) ClassWords(class int) int { return cp.words[class] }

// Plane returns the words of genotype plane g (0, 1 or 2) of the given
// SNP for the given class. The slice aliases internal storage.
func (cp *ClassPlanes) Plane(class, snp, g int) []uint64 {
	if class < 0 || class > 1 || snp < 0 || snp >= cp.M || g < 0 || g > 2 {
		panic(fmt.Sprintf("dataset: class plane (%d,%d,%d) out of range", class, snp, g))
	}
	w := cp.words[class]
	off := (snp*3 + g) * w
	return cp.planes[class][off : off+w]
}
