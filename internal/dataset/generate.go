package dataset

import (
	"fmt"
	"math/rand"
)

// Interaction describes a planted third-order epistatic interaction:
// the phenotype of a sample is drawn with probability Penetrance[combo]
// where combo indexes the genotype combination at the interacting SNPs
// (base-3, first SNP most significant).
type Interaction struct {
	SNPs       [3]int
	Penetrance [27]float64
}

// PairInteraction describes a planted second-order interaction, for
// the 2-way search mode. Penetrance is indexed by gx*3 + gy.
type PairInteraction struct {
	SNPs       [2]int
	Penetrance [9]float64
}

// GenConfig parameterizes the synthetic dataset generator. The paper's
// evaluation uses synthetic datasets "equivalent to real case
// scenarios" with 2048-40000 SNPs and 1600-16384 samples.
type GenConfig struct {
	SNPs    int
	Samples int
	Seed    int64

	// MAFMin and MAFMax bound the per-SNP minor allele frequency,
	// sampled uniformly. Genotypes follow Hardy-Weinberg proportions.
	// Zero values default to [0.05, 0.5].
	MAFMin, MAFMax float64

	// Prevalence is the baseline case probability for samples when no
	// interaction is planted (or away from the penetrance signal).
	// Zero defaults to 0.5, giving balanced classes.
	Prevalence float64

	// Interaction optionally plants a third-order signal.
	Interaction *Interaction

	// PairInteraction optionally plants a second-order signal instead
	// (mutually exclusive with Interaction).
	PairInteraction *PairInteraction
}

func (c *GenConfig) withDefaults() (GenConfig, error) {
	cfg := *c
	if cfg.SNPs < 3 || cfg.Samples < 2 {
		return cfg, fmt.Errorf("dataset: generator needs >=3 SNPs and >=2 samples, got %dx%d", cfg.SNPs, cfg.Samples)
	}
	if cfg.MAFMin == 0 && cfg.MAFMax == 0 {
		cfg.MAFMin, cfg.MAFMax = 0.05, 0.5
	}
	if cfg.MAFMin < 0 || cfg.MAFMax > 0.5 || cfg.MAFMin > cfg.MAFMax {
		return cfg, fmt.Errorf("dataset: invalid MAF range [%g,%g]", cfg.MAFMin, cfg.MAFMax)
	}
	if cfg.Prevalence == 0 {
		cfg.Prevalence = 0.5
	}
	if cfg.Prevalence < 0 || cfg.Prevalence > 1 {
		return cfg, fmt.Errorf("dataset: invalid prevalence %g", cfg.Prevalence)
	}
	if cfg.Interaction != nil && cfg.PairInteraction != nil {
		return cfg, fmt.Errorf("dataset: Interaction and PairInteraction are mutually exclusive")
	}
	if it := cfg.Interaction; it != nil {
		if err := checkInteraction(it.SNPs[:], it.Penetrance[:], cfg.SNPs); err != nil {
			return cfg, err
		}
	}
	if it := cfg.PairInteraction; it != nil {
		if err := checkInteraction(it.SNPs[:], it.Penetrance[:], cfg.SNPs); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

func checkInteraction(snps []int, penetrance []float64, m int) error {
	seen := map[int]bool{}
	for _, s := range snps {
		if s < 0 || s >= m || seen[s] {
			return fmt.Errorf("dataset: invalid interaction SNPs %v", snps)
		}
		seen[s] = true
	}
	for _, p := range penetrance {
		if p < 0 || p > 1 {
			return fmt.Errorf("dataset: penetrance out of [0,1]: %g", p)
		}
	}
	return nil
}

// Generate builds a synthetic case-control dataset. Genotypes are drawn
// per SNP from Hardy-Weinberg proportions at a uniformly sampled MAF;
// phenotypes are drawn from the baseline prevalence, or from the planted
// penetrance table for the interacting SNPs if one is configured.
// The generator retries degenerate drawings (single-class datasets) a
// few times before giving up, since downstream scoring needs both
// classes present.
func Generate(cfg GenConfig) (*Matrix, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	for attempt := 0; attempt < 8; attempt++ {
		mx := generateOnce(c, rng)
		if controls, cases := mx.ClassCounts(); controls > 0 && cases > 0 {
			return mx, nil
		}
	}
	return nil, fmt.Errorf("dataset: could not draw a two-class dataset (prevalence %g too extreme for %d samples)", c.Prevalence, c.Samples)
}

func generateOnce(c GenConfig, rng *rand.Rand) *Matrix {
	mx := NewMatrix(c.SNPs, c.Samples)
	for i := 0; i < c.SNPs; i++ {
		maf := c.MAFMin + rng.Float64()*(c.MAFMax-c.MAFMin)
		p0 := (1 - maf) * (1 - maf)
		p1 := 2 * maf * (1 - maf)
		row := mx.Row(i)
		for j := range row {
			u := rng.Float64()
			switch {
			case u < p0:
				row[j] = 0
			case u < p0+p1:
				row[j] = 1
			default:
				row[j] = 2
			}
		}
	}
	for j := 0; j < c.Samples; j++ {
		p := c.Prevalence
		if it := c.Interaction; it != nil {
			combo := 0
			for _, s := range it.SNPs {
				combo = combo*3 + int(mx.Geno(s, j))
			}
			p = it.Penetrance[combo]
		}
		if it := c.PairInteraction; it != nil {
			combo := int(mx.Geno(it.SNPs[0], j))*3 + int(mx.Geno(it.SNPs[1], j))
			p = it.Penetrance[combo]
		}
		if rng.Float64() < p {
			mx.SetPhen(j, Case)
		}
	}
	return mx
}

// ThresholdPenetrance returns a penetrance table for a third-order
// threshold model: combinations carrying at least minMinor minor
// alleles in total (genotype value sum >= minMinor) have high case
// probability, the rest low. This is a strong, easily recovered signal
// used by tests and examples.
func ThresholdPenetrance(minMinor int, low, high float64) [27]float64 {
	var t [27]float64
	for combo := 0; combo < 27; combo++ {
		sum := combo/9 + combo/3%3 + combo%3
		if sum >= minMinor {
			t[combo] = high
		} else {
			t[combo] = low
		}
	}
	return t
}

// XorPenetrance returns a penetrance table for a third-order parity
// model: case probability is high when the number of SNPs with a
// nonzero genotype is odd. Parity interactions have no marginal effects
// at any single SNP, making them the canonical "needs exhaustive
// search" workload.
func XorPenetrance(low, high float64) [27]float64 {
	var t [27]float64
	for combo := 0; combo < 27; combo++ {
		nz := 0
		for _, g := range [3]int{combo / 9, combo / 3 % 3, combo % 3} {
			if g != 0 {
				nz++
			}
		}
		if nz%2 == 1 {
			t[combo] = high
		} else {
			t[combo] = low
		}
	}
	return t
}

// MultiplicativePenetrance returns a table where risk scales
// multiplicatively with the number of minor alleles across the triple:
// P(case) = base * factor^(total minor alleles), capped at 1.
func MultiplicativePenetrance(base, factor float64) [27]float64 {
	var t [27]float64
	for combo := 0; combo < 27; combo++ {
		sum := combo/9 + combo/3%3 + combo%3
		p := base
		for a := 0; a < sum; a++ {
			p *= factor
		}
		if p > 1 {
			p = 1
		}
		t[combo] = p
	}
	return t
}
