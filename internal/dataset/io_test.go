package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func matricesEqual(a, b *Matrix) bool {
	if a.SNPs() != b.SNPs() || a.Samples() != b.Samples() {
		return false
	}
	for i := 0; i < a.SNPs(); i++ {
		for j := 0; j < a.Samples(); j++ {
			if a.Geno(i, j) != b.Geno(i, j) {
				return false
			}
		}
	}
	for j := 0; j < a.Samples(); j++ {
		if a.Phen(j) != b.Phen(j) {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	mx := randomMatrix(30, 7, 53)
	var buf bytes.Buffer
	if err := WriteText(&buf, mx); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(mx, back) {
		t.Error("text round trip changed data")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	mx := randomMatrix(31, 9, 101)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, mx); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(mx, back) {
		t.Error("binary round trip changed data")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	mx := randomMatrix(32, 50, 400)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, mx); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, mx); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len()/2 {
		t.Errorf("binary %d bytes, text %d bytes: binary should be <= 1/2", bb.Len(), tb.Len())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		m := int(mRaw%8) + 1
		n := int(nRaw%80) + 1
		mx := randomMatrix(seed, m, n)
		var tb, bb bytes.Buffer
		if WriteText(&tb, mx) != nil || WriteBinary(&bb, mx) != nil {
			return false
		}
		t1, err1 := ReadText(&tb)
		t2, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil && matricesEqual(mx, t1) && matricesEqual(mx, t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad magic":        "#other v1 2 2\n00\n00\n00\n",
		"missing dims":     "#trigene v1 2\n",
		"bad M":            "#trigene v1 x 2\n00\n00\n00\n",
		"bad N":            "#trigene v1 2 y\n00\n00\n00\n",
		"zero dims":        "#trigene v1 0 2\n",
		"huge dims":        "#trigene v1 99999999 2\n",
		"short row":        "#trigene v1 2 3\n000\n00\n000\n",
		"bad genotype":     "#trigene v1 1 3\n003\n000\n",
		"missing phen":     "#trigene v1 1 3\n000\n",
		"short phen":       "#trigene v1 1 3\n000\n00\n",
		"bad phen":         "#trigene v1 1 3\n000\n002\n",
		"truncated matrix": "#trigene v1 3 3\n000\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	mx := randomMatrix(33, 2, 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, mx); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic: expected error")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:6])); err == nil {
		t.Error("short header: expected error")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Error("truncated body: expected error")
	}
	// Corrupt dimensions.
	bad := append([]byte(nil), full...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("huge dims: expected error")
	}
	// Corrupt a genotype to the invalid packed value 3. Find a byte in
	// the genotype area and set two bits.
	bad = append([]byte(nil), full...)
	bad[12] |= 0x03
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("invalid genotype: expected error")
	}
}
