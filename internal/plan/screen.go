package plan

import (
	"fmt"

	"trigene/internal/combin"
)

// Two-stage cost model: should a search screen, and at what survivor
// budget? The decision compares the modeled cost of exhaustive C(M,3)
// search against stage-1 C(M,2) + stage-2 C(S,3) under a wall-time
// budget, using the same per-approach throughput predictions the
// single-stage planner runs on. Like every Plan, the decision steers
// execution shape only — what the screened run searches is decided by
// the screen's own semantics, and the decision is audited in the
// Report.

// screenPairRateFactor models the stage-1 pair kernel relative to the
// triple kernel the throughput predictions describe: a pair table has
// 9 cells against the triple's 27 and skips the third plane AND, so
// pairs scan roughly three times faster per combination.
const screenPairRateFactor = 3.0

// minScreenSurvivors floors the survivor budget: below 3 SNPs stage 2
// has no triples to search.
const minScreenSurvivors = 3

// ScreenDecision is the planner's verdict on a budget-only screen.
type ScreenDecision struct {
	// Survivors is the chosen budget S (0 when Decline).
	Survivors int
	// Decline reports that screening loses (or cannot prune) at this
	// workload: run exhaustively instead. Reason says why either way.
	Decline bool
	Reason  string
	// Predicted*Sec are the model's wall-time projections.
	PredictedExhaustiveSec float64
	PredictedStage1Sec     float64
	PredictedStage2Sec     float64
}

// DecideScreen sizes a screen for the workload under a wall-time
// budget in seconds: the largest survivor set whose stage-1 + stage-2
// cost fits, or a decline when exhaustive search already fits (the
// space is small enough that screening only adds the pair scan) or
// when the affordable budget covers every SNP (nothing would prune).
func DecideScreen(w Workload, h Host, c Constraints, budgetSec float64) (*ScreenDecision, error) {
	if budgetSec <= 0 {
		return nil, fmt.Errorf("plan: screen budget must be positive seconds, got %g", budgetSec)
	}
	p, err := Decide(w, h, c)
	if err != nil {
		return nil, err
	}
	combosPerSec := p.PredictedCombosPerSec
	if combosPerSec <= 0 {
		return nil, fmt.Errorf("plan: no modeled throughput for %s; cannot size a screen", p.Backend)
	}
	m := w.SNPs
	d := &ScreenDecision{
		PredictedExhaustiveSec: float64(combin.Triples(m)) / combosPerSec,
		PredictedStage1Sec:     float64(combin.Pairs(m)) / (combosPerSec * screenPairRateFactor),
	}
	if d.PredictedExhaustiveSec <= budgetSec {
		d.Decline = true
		d.Reason = fmt.Sprintf("exhaustive C(%d,3) fits the %.3gs budget (predicted %.3gs); a screen would only add the pair scan",
			m, budgetSec, d.PredictedExhaustiveSec)
		return d, nil
	}
	s := minScreenSurvivors
	clamped := false
	if remaining := budgetSec - d.PredictedStage1Sec; remaining > 0 {
		s = maxSurvivorsWithin(int64(remaining*combosPerSec), m)
	} else {
		clamped = true
	}
	if s < minScreenSurvivors {
		s = minScreenSurvivors
		clamped = true
	}
	if s >= m {
		d.Decline = true
		d.Reason = fmt.Sprintf("the %.3gs budget affords all %d SNPs as survivors; screening cannot prune", budgetSec, m)
		return d, nil
	}
	d.Survivors = s
	d.PredictedStage2Sec = float64(combin.Triples(s)) / combosPerSec
	d.Reason = fmt.Sprintf("screen %d SNPs to %d survivors: predicted stage 1 %.3gs + stage 2 %.3gs against exhaustive %.3gs",
		m, s, d.PredictedStage1Sec, d.PredictedStage2Sec, d.PredictedExhaustiveSec)
	if clamped {
		d.Reason += " (budget below the screen floor; kept the minimum survivor set)"
	}
	return d, nil
}

// maxSurvivorsWithin returns the largest s <= bound with
// C(s,3) <= target triples (at least minScreenSurvivors - 1 = 2, so
// callers can detect the floor).
func maxSurvivorsWithin(target int64, bound int) int {
	if target < 1 {
		return minScreenSurvivors - 1
	}
	lo, hi := minScreenSurvivors-1, bound
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if combin.Triples(mid) <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
