// Package plan is the model-driven autotuner: it turns the paper's
// analytical machinery — the CARM characterization (internal/carm),
// the per-approach throughput models (internal/perfmodel) and the DVFS
// energy model (internal/energy) — into executable decisions for the
// live execution layers.
//
// The planner takes a search shape (SNPs, samples, order, objective)
// and a host description (a Table I/II device pair, or a live-host
// probe) and produces a Plan: the chosen backend and approach, the
// predicted throughput of each engine, the model-seeded CPU/GPU split
// of a heterogeneous run, the ranks-per-claim tile grain for the
// scheduler's consumers, and — under an energy budget — the
// power-capped DVFS operating point. Every layer then consumes the
// Plan instead of a magic constant: sched sizes tiles from it, hetero
// seeds its work-stealing claim ratio and static split from it, and
// the cluster coordinator weights lease sizes by the same capability
// currency.
//
// Plans steer only *execution* parameters (which engine, how work is
// cut and placed), never *search semantics*: a planned run returns a
// Report bit-exact with an unplanned one, which the shard-parity tests
// enforce across every backend.
package plan

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"trigene/internal/carm"
	"trigene/internal/combin"
	"trigene/internal/device"
	"trigene/internal/energy"
	"trigene/internal/perfmodel"
	"trigene/internal/sched"
)

// Workload is the search shape a plan is computed for.
type Workload struct {
	// SNPs and Samples are the dataset dimensions.
	SNPs, Samples int
	// Order is the interaction order (0 = 3).
	Order int
	// Objective names the ranking criterion; informational (objectives
	// cost the same per the paper's accounting).
	Objective string
}

// Host describes the hardware a plan targets.
type Host struct {
	// CPU is the CPU device model (a Table I entry or device.Host()).
	CPU device.CPU
	// GPU, when non-nil, is an accelerator the planner may place work
	// on (a Table II entry; executed by the simulator in this repo).
	GPU *device.GPU
	// Workers is the CPU worker-pool size (0 = CPU.TotalCores()).
	Workers int
}

// LiveHost probes the running machine: the synthesized device.Host()
// CPU model, no accelerator, and the Go runtime's processor count as
// the pool size.
func LiveHost() Host {
	return Host{CPU: device.Host(), Workers: runtime.GOMAXPROCS(0)}
}

// Constraints pins decisions the caller has already made; the planner
// fills in everything else.
type Constraints struct {
	// Backend pins the execution engine by its public name ("cpu",
	// "baseline", "hetero", "gpusim:<ID>"). Empty lets the planner
	// choose from the host description.
	Backend string
	// Approach pins the CPU pipeline ("V1".."V4", or the fused
	// "V3F"/"V4F", also accepted as "V5"/"V6"). Empty lets the model
	// pick the winning kernel for the device.
	Approach string
	// EnergyBudgetWatts caps the modeled power draw; the planner picks
	// the highest DVFS operating point within it and derates the
	// predicted rates accordingly. Zero means unconstrained.
	EnergyBudgetWatts float64
}

// Plan is one executable set of decisions.
type Plan struct {
	// Backend and Approach are the chosen engine and pipeline.
	Backend, Approach string
	// Workers is the CPU pool size the predictions assume.
	Workers int
	// Grain is the scheduler tile size in ranks per claim, sized so
	// one claim costs a few milliseconds at the predicted per-consumer
	// rate (clamped to sched's [MinGrain, MaxGrain]).
	Grain int64
	// CPUFraction is the modeled CPU share of the work: 1 on pure CPU
	// plans, 0 on pure GPU plans, the throughput-proportional split on
	// heterogeneous ones (the seed for a static split, and the
	// expectation for a work-stealing one).
	CPUFraction float64
	// GPUGrains is the device consumer's claim multiplier on a shared
	// work-stealing cursor: how many CPU-sized grains one device claim
	// should span so both sides finish together.
	GPUGrains int64

	// PredictedCPUGElems and PredictedGPUGElems are the modeled engine
	// throughputs in G elements/s (post energy derating), each capped
	// by the device's roofline ceiling at the approach's intensity.
	PredictedCPUGElems, PredictedGPUGElems float64
	// PredictedCombosPerSec and PredictedTilesPerSec restate the
	// combined rate in scheduler currency: combinations (and Grain-
	// sized tiles) per second across the whole host.
	PredictedCombosPerSec, PredictedTilesPerSec float64

	// EnergyBudgetWatts echoes the constraint; TargetCPUGHz /
	// TargetGPUGHz are the chosen DVFS clocks (0 = nominal, no budget)
	// and PredictedWatts the modeled draw at the operating point.
	EnergyBudgetWatts          float64
	TargetCPUGHz, TargetGPUGHz float64
	PredictedWatts             float64

	// CPUDevice and GPUDevice name the device models consulted.
	CPUDevice, GPUDevice string
	// Reason is the human-readable decision trace.
	Reason string
}

// heteroRatio is the placement threshold: a device pair runs
// heterogeneously only while neither side is modeled at more than
// heteroRatio times the other (beyond that, the slow side's
// contribution is noise and its coordination overhead is not).
const heteroRatio = 10

// tileSeconds is the target wall time of one claimed tile at the
// predicted per-consumer rate: long enough to amortize claim overhead,
// short enough for balance and cancellation latency.
const tileSeconds = 0.004

// maxGPUGrains bounds the device claim multiplier on a shared cursor.
const maxGPUGrains = 64

// Decide computes the plan for a workload on a host under the given
// constraints.
func Decide(w Workload, h Host, c Constraints) (*Plan, error) {
	order := w.Order
	if order == 0 {
		order = 3
	}
	if order < 2 {
		return nil, fmt.Errorf("plan: invalid order %d", order)
	}
	if w.SNPs < order || w.Samples < 1 {
		return nil, fmt.Errorf("plan: implausible workload %d SNPs x %d samples for order %d", w.SNPs, w.Samples, order)
	}
	if h.CPU.ID == "" {
		return nil, fmt.Errorf("plan: host has no CPU model")
	}
	workers := h.Workers
	if workers < 1 {
		workers = h.CPU.TotalCores()
	}
	if workers < 1 {
		workers = 1
	}

	p := &Plan{
		Workers:           workers,
		EnergyBudgetWatts: c.EnergyBudgetWatts,
		CPUDevice:         h.CPU.ID,
	}

	// A gpusim constraint names its device; it overrides (or supplies)
	// the host's accelerator so the prediction matches what will run.
	gpu := h.GPU
	if strings.HasPrefix(c.Backend, "gpusim:") {
		g, err := device.GPUByID(strings.TrimPrefix(c.Backend, "gpusim:"))
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		gpu = &g
	}
	if (c.Backend == "hetero") && gpu == nil {
		g, err := device.GPUByID("GN1") // the hetero backend's default pairing
		if err != nil {
			return nil, err
		}
		gpu = &g
	}

	// CPU side: the model picks the winning kernel (Figure 2 computed),
	// capped by the device roofline at the kernel's intensity.
	cpuApproach, cpuRate := perfmodel.BestCPUApproach(h.CPU, true, w.SNPs, w.Samples)
	if order != 3 {
		// Orders 2 and 4+ run the flat split kernel; V3/V4 tiling is
		// specialized to triples.
		cpuApproach = 2
		r, err := perfmodel.CPUApproachGElemPerSec(h.CPU, 2, true, w.SNPs, w.Samples)
		if err != nil {
			return nil, err
		}
		cpuRate = r
	}
	if c.Backend == "baseline" {
		// The MPI3SNP-style comparator is a fixed V1-like pipeline.
		cpuApproach = 1
		r, err := perfmodel.CPUApproachGElemPerSec(h.CPU, 1, true, w.SNPs, w.Samples)
		if err != nil {
			return nil, err
		}
		cpuRate = r
	}
	if c.Approach != "" {
		a, err := parseApproach(c.Approach)
		if err != nil {
			return nil, err
		}
		cpuApproach = a
		r, err := perfmodel.CPUApproachGElemPerSec(h.CPU, a, true, w.SNPs, w.Samples)
		if err != nil {
			return nil, err
		}
		cpuRate = r
	}
	cpuCost, err := perfmodel.CostOf(cpuApproach)
	if err != nil {
		return nil, err
	}
	cpuRate = carm.CapElemRate(carm.CPUModel(h.CPU, true), cpuCost, cpuRate)

	// GPU side, when an accelerator is in play.
	var gpuRate float64
	if gpu != nil {
		gpuRate = perfmodel.GPUOverallGElemPerSec(*gpu, w.SNPs, w.Samples)
		gpuRate = carm.CapElemRate(carm.GPUModel(*gpu), perfmodel.GPUCost(), gpuRate)
		p.GPUDevice = gpu.ID
	}

	// Energy budget: pick the highest DVFS point within it (split
	// across a device pair proportionally to TDP) and derate the rates
	// — the compute-bound kernels scale linearly with the clock.
	var reasons []string
	if c.EnergyBudgetWatts > 0 {
		cpuShare := 1.0
		if gpu != nil && gpuRate > 0 {
			cpuTDP := h.CPU.TDPWatts * float64(h.CPU.Sockets)
			cpuShare = cpuTDP / (cpuTDP + gpu.TDPWatts)
		}
		dv := energy.ForCPU(h.CPU, w.SNPs, w.Samples)
		f, ok := dv.GHzForPower(c.EnergyBudgetWatts * cpuShare)
		p.TargetCPUGHz = f
		p.PredictedWatts += dv.PowerAt(f)
		cpuRate *= f / dv.NominalGHz
		if !ok {
			reasons = append(reasons, fmt.Sprintf("budget below %s's DVFS floor, clamped to %.2f GHz", h.CPU.ID, f))
		}
		if gpu != nil && gpuRate > 0 {
			gdv := energy.ForGPU(*gpu, w.SNPs, w.Samples)
			gf, gok := gdv.GHzForPower(c.EnergyBudgetWatts * (1 - cpuShare))
			p.TargetGPUGHz = gf
			p.PredictedWatts += gdv.PowerAt(gf)
			gpuRate *= gf / gdv.NominalGHz
			if !gok {
				reasons = append(reasons, fmt.Sprintf("budget below %s's DVFS floor, clamped to %.2f GHz", gpu.ID, gf))
			}
		}
	}

	// Placement: honor a pinned backend, otherwise compare the sides.
	backend := c.Backend
	if backend == "" {
		switch {
		case gpu == nil || gpuRate <= 0:
			backend = "cpu"
		case cpuRate*heteroRatio < gpuRate:
			backend = "gpusim:" + gpu.ID
		case gpuRate*heteroRatio < cpuRate:
			backend = "cpu"
		default:
			backend = "hetero"
		}
	}
	p.Backend = backend

	// Per-backend shaping: split, approach label, consumer count.
	consumers := workers
	switch {
	case backend == "hetero":
		p.CPUFraction = cpuRate / (cpuRate + gpuRate)
		p.Approach = perfmodel.ApproachName(cpuApproach)
		perWorker := cpuRate / float64(workers)
		g := int64(gpuRate/perWorker + 0.5)
		if g < 1 {
			g = 1
		}
		if g > maxGPUGrains {
			g = maxGPUGrains
		}
		p.GPUGrains = g
		consumers = workers + 1
		reasons = append(reasons, fmt.Sprintf("split %s:%s at %.0f%% CPU by modeled throughput", h.CPU.ID, gpu.ID, 100*p.CPUFraction))
	case strings.HasPrefix(backend, "gpusim:"):
		p.CPUFraction = 0
		p.Approach = "V4" // the winning GPU kernel on every Table II device
		reasons = append(reasons, fmt.Sprintf("device %s alone: modeled %.1fx the CPU", gpu.ID, ratio(gpuRate, cpuRate)))
		cpuRate = 0
		consumers = 1
	case backend == "baseline":
		p.CPUFraction = 1
		p.Approach = "mpi3snp"
		gpuRate = 0
	default: // cpu
		p.CPUFraction = 1
		p.Approach = perfmodel.ApproachName(cpuApproach)
		gpuRate = 0
		reasons = append(reasons, fmt.Sprintf("%s picks %s at %.3g G elem/s modeled", h.CPU.ID, p.Approach, cpuRate))
	}
	p.PredictedCPUGElems = cpuRate
	p.PredictedGPUGElems = gpuRate

	// Scheduler currency: combos/sec over the whole host, tiles sized
	// for ~tileSeconds per claim per consumer, never coarser than the
	// claims-per-consumer heuristic would cut for the space.
	total := combin.Binomial(w.SNPs, order)
	combosPerSec := (cpuRate + gpuRate) * 1e9 / float64(w.Samples)
	p.PredictedCombosPerSec = combosPerSec
	grain := int64(combosPerSec / float64(consumers) * tileSeconds)
	if auto := sched.AutoGrain(total, consumers); grain > auto {
		grain = auto
	}
	if grain < sched.MinGrain {
		grain = sched.MinGrain
	}
	if grain > sched.MaxGrain {
		grain = sched.MaxGrain
	}
	p.Grain = grain
	p.PredictedTilesPerSec = combosPerSec / float64(grain)
	p.Reason = strings.Join(reasons, "; ")
	return p, nil
}

// ratio guards the x/y display ratio against a zero denominator.
func ratio(x, y float64) float64 {
	if y <= 0 {
		return math.Inf(1)
	}
	return x / y
}

// parseApproach accepts "V1".."V4", the fused "V3F"/"V4F" (or their
// numeric wire forms "V5"/"V6") and bare digits for Constraints.
func parseApproach(s string) (int, error) {
	t := strings.TrimPrefix(strings.ToUpper(strings.TrimSpace(s)), "V")
	switch t {
	case "1", "2", "3", "4", "5", "6":
		return int(t[0] - '0'), nil
	case "3F":
		return 5, nil
	case "4F":
		return 6, nil
	}
	return 0, fmt.Errorf("plan: unknown approach %q (want V1..V4 or V3F/V4F)", s)
}
