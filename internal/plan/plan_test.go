package plan

import (
	"strings"
	"testing"

	"trigene/internal/device"
	"trigene/internal/sched"
)

func hostCI3() Host {
	c, err := device.CPUByID("CI3")
	if err != nil {
		panic(err)
	}
	return Host{CPU: c}
}

func gpuByID(t *testing.T, id string) *device.GPU {
	t.Helper()
	g, err := device.GPUByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return &g
}

var wl = Workload{SNPs: 4096, Samples: 16384}

func TestDecideCPUOnlyPicksWinningKernel(t *testing.T) {
	p, err := Decide(wl, hostCI3(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != "cpu" {
		t.Errorf("backend = %q, want cpu (no accelerator on the host)", p.Backend)
	}
	if p.Approach != "V4F" {
		t.Errorf("approach = %q, want V4F (the fused winning CPU kernel)", p.Approach)
	}
	if p.CPUFraction != 1 || p.PredictedGPUGElems != 0 {
		t.Errorf("pure CPU plan carries a GPU share: frac=%g gpu=%g", p.CPUFraction, p.PredictedGPUGElems)
	}
	if p.PredictedCPUGElems <= 0 || p.PredictedCombosPerSec <= 0 || p.PredictedTilesPerSec <= 0 {
		t.Errorf("predictions not populated: %+v", p)
	}
	if p.Grain < sched.MinGrain || p.Grain > sched.MaxGrain {
		t.Errorf("grain %d outside [%d, %d]", p.Grain, sched.MinGrain, sched.MaxGrain)
	}
	if p.Reason == "" {
		t.Error("empty decision trace")
	}
}

func TestDecideLiveHost(t *testing.T) {
	p, err := Decide(Workload{SNPs: 64, Samples: 2048}, LiveHost(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != "cpu" || p.CPUDevice != "HOST" {
		t.Errorf("live-host plan: backend=%q device=%q", p.Backend, p.CPUDevice)
	}
	if p.Workers < 1 {
		t.Errorf("workers = %d", p.Workers)
	}
}

func TestDecideHeteroPair(t *testing.T) {
	h := hostCI3()
	h.GPU = gpuByID(t, "GN1")
	p, err := Decide(wl, h, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// CI3 and GN1 are the paper's Section V-D pairing: both sides
	// contribute, so the planner must place the run heterogeneously.
	if p.Backend != "hetero" {
		t.Fatalf("backend = %q, want hetero", p.Backend)
	}
	if p.CPUFraction <= 0 || p.CPUFraction >= 1 {
		t.Errorf("split = %g, want inside (0,1)", p.CPUFraction)
	}
	if p.GPUGrains < 1 || p.GPUGrains > maxGPUGrains {
		t.Errorf("GPU grains = %d", p.GPUGrains)
	}
	if p.PredictedCPUGElems <= 0 || p.PredictedGPUGElems <= 0 {
		t.Errorf("one side predicted idle: %+v", p)
	}
	// The split is throughput-proportional.
	want := p.PredictedCPUGElems / (p.PredictedCPUGElems + p.PredictedGPUGElems)
	if diff := p.CPUFraction - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("split %g, want %g", p.CPUFraction, want)
	}
}

func TestDecideLopsidedPairDropsSlowSide(t *testing.T) {
	// CI1 (6 desktop cores) against an A100: the CPU contributes noise,
	// so the planner goes device-only.
	c, err := device.CPUByID("CI1")
	if err != nil {
		t.Fatal(err)
	}
	h := Host{CPU: c, GPU: gpuByID(t, "GN4")}
	p, err := Decide(wl, h, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != "gpusim:GN4" {
		t.Errorf("backend = %q, want gpusim:GN4", p.Backend)
	}
	if p.CPUFraction != 0 {
		t.Errorf("CPU fraction = %g on a device-only plan", p.CPUFraction)
	}
}

func TestDecideHonorsConstraints(t *testing.T) {
	p, err := Decide(wl, hostCI3(), Constraints{Backend: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != "baseline" || p.Approach != "mpi3snp" {
		t.Errorf("baseline constraint: backend=%q approach=%q", p.Backend, p.Approach)
	}

	p, err = Decide(wl, hostCI3(), Constraints{Approach: "V2"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Approach != "V2" {
		t.Errorf("approach constraint: %q", p.Approach)
	}

	// A gpusim constraint supplies its own device model.
	p, err = Decide(wl, hostCI3(), Constraints{Backend: "gpusim:GI2"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != "gpusim:GI2" || p.GPUDevice != "GI2" || p.PredictedGPUGElems <= 0 {
		t.Errorf("gpusim constraint: %+v", p)
	}

	if _, err := Decide(wl, hostCI3(), Constraints{Backend: "gpusim:NOPE"}); err == nil {
		t.Error("unknown gpusim device accepted")
	}
	p, err = Decide(wl, hostCI3(), Constraints{Approach: "V4F"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Approach != "V4F" {
		t.Errorf("fused approach constraint: %q", p.Approach)
	}
	p, err = Decide(wl, hostCI3(), Constraints{Approach: "V5"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Approach != "V3F" {
		t.Errorf("numeric fused approach constraint: %q", p.Approach)
	}
	if _, err := Decide(wl, hostCI3(), Constraints{Approach: "V9"}); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestDecideEnergyBudget(t *testing.T) {
	free, err := Decide(wl, hostCI3(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Decide(wl, hostCI3(), Constraints{EnergyBudgetWatts: 200})
	if err != nil {
		t.Fatal(err)
	}
	if capped.TargetCPUGHz <= 0 {
		t.Fatal("budgeted plan has no operating point")
	}
	if capped.PredictedWatts > 201 {
		t.Errorf("plan draws %.0f W against a 200 W budget", capped.PredictedWatts)
	}
	if capped.PredictedCPUGElems >= free.PredictedCPUGElems {
		t.Errorf("power cap did not derate the prediction: %.1f vs %.1f", capped.PredictedCPUGElems, free.PredictedCPUGElems)
	}

	// An unattainable budget clamps to the DVFS floor and says so.
	floor, err := Decide(wl, hostCI3(), Constraints{EnergyBudgetWatts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(floor.Reason, "DVFS floor") {
		t.Errorf("floor clamp not traced: %q", floor.Reason)
	}
}

func TestDecideOrderGeneric(t *testing.T) {
	p, err := Decide(Workload{SNPs: 500, Samples: 4000, Order: 4}, hostCI3(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// Orders beyond 3 run the flat split kernel.
	if p.Approach != "V2" {
		t.Errorf("order-4 approach = %q, want V2", p.Approach)
	}
}

func TestDecideRejectsNonsense(t *testing.T) {
	if _, err := Decide(Workload{SNPs: 2, Samples: 100}, hostCI3(), Constraints{}); err == nil {
		t.Error("2 SNPs at order 3 accepted")
	}
	if _, err := Decide(Workload{SNPs: 100, Samples: 0}, hostCI3(), Constraints{}); err == nil {
		t.Error("0 samples accepted")
	}
	if _, err := Decide(wl, Host{}, Constraints{}); err == nil {
		t.Error("empty host accepted")
	}
}
