package plan

import (
	"strings"
	"testing"
)

// modelScreen fetches the model's wall-time projections for wl by
// asking for a decision under an effectively unlimited budget (which
// always declines — exhaustive fits — but carries the predictions).
func modelScreen(t *testing.T) *ScreenDecision {
	t.Helper()
	d, err := DecideScreen(wl, hostCI3(), Constraints{}, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Decline {
		t.Fatalf("unlimited budget did not decline: %+v", d)
	}
	if d.PredictedExhaustiveSec <= 0 || d.PredictedStage1Sec <= 0 {
		t.Fatalf("no usable projections: %+v", d)
	}
	return d
}

// TestDecideScreenBudgetValidation: a screen cannot be sized for a
// non-positive budget.
func TestDecideScreenBudgetValidation(t *testing.T) {
	for _, budget := range []float64{0, -1.5} {
		if _, err := DecideScreen(wl, hostCI3(), Constraints{}, budget); err == nil {
			t.Errorf("budget %g accepted", budget)
		}
	}
}

// TestDecideScreenDeclinesWhenExhaustiveFits: when the exhaustive
// C(M,3) search already fits the budget, screening would only add the
// pair scan, so the planner declines and says why.
func TestDecideScreenDeclinesWhenExhaustiveFits(t *testing.T) {
	model := modelScreen(t)
	d, err := DecideScreen(wl, hostCI3(), Constraints{}, model.PredictedExhaustiveSec*2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Decline {
		t.Fatalf("budget twice the exhaustive cost did not decline: %+v", d)
	}
	if d.Survivors != 0 {
		t.Errorf("declined decision carries a survivor budget %d", d.Survivors)
	}
	if !strings.Contains(d.Reason, "fits") {
		t.Errorf("reason %q does not explain the decline", d.Reason)
	}
}

// TestDecideScreenSizesUnderTightBudget: a budget well below the
// exhaustive cost yields a real pruning decision — a survivor set
// strictly between the floor and M whose two-stage cost fits the
// budget — and more budget never shrinks it.
func TestDecideScreenSizesUnderTightBudget(t *testing.T) {
	model := modelScreen(t)
	budget := model.PredictedExhaustiveSec / 100
	d, err := DecideScreen(wl, hostCI3(), Constraints{}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if d.Decline {
		t.Fatalf("tight budget declined: %s", d.Reason)
	}
	if d.Survivors < minScreenSurvivors || d.Survivors >= wl.SNPs {
		t.Errorf("survivor budget %d outside (%d, %d)", d.Survivors, minScreenSurvivors, wl.SNPs)
	}
	if total := d.PredictedStage1Sec + d.PredictedStage2Sec; total > budget {
		t.Errorf("predicted two-stage cost %.3gs exceeds the %.3gs budget", total, budget)
	}
	if d.Reason == "" {
		t.Error("sized decision has no reason")
	}

	// Monotonicity: ten times the budget affords at least as many
	// survivors.
	wide, err := DecideScreen(wl, hostCI3(), Constraints{}, budget*10)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Decline {
		t.Fatalf("10x budget declined: %s", wide.Reason)
	}
	if wide.Survivors < d.Survivors {
		t.Errorf("10x budget shrank the survivor set: %d -> %d", d.Survivors, wide.Survivors)
	}
}

// TestDecideScreenClampsToFloor: a budget too small even for the pair
// scan keeps the minimum viable survivor set rather than declining —
// screening still beats exhaustive search here — and flags the clamp.
func TestDecideScreenClampsToFloor(t *testing.T) {
	model := modelScreen(t)
	d, err := DecideScreen(wl, hostCI3(), Constraints{}, model.PredictedStage1Sec/2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Decline {
		t.Fatalf("floor-clamped budget declined: %s", d.Reason)
	}
	if d.Survivors != minScreenSurvivors {
		t.Errorf("survivor budget %d, want the %d floor", d.Survivors, minScreenSurvivors)
	}
	if !strings.Contains(d.Reason, "floor") {
		t.Errorf("reason %q does not flag the clamp", d.Reason)
	}
}

// TestDecideScreenDeclinesWhenNothingPrunes: at M equal to the
// survivor floor, every budget that survives the exhaustive-fits
// check affords all SNPs, so screening cannot prune and the planner
// declines.
func TestDecideScreenDeclinesWhenNothingPrunes(t *testing.T) {
	tiny := Workload{SNPs: minScreenSurvivors, Samples: 1024}
	probe, err := DecideScreen(tiny, hostCI3(), Constraints{}, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecideScreen(tiny, hostCI3(), Constraints{}, probe.PredictedExhaustiveSec/2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Decline {
		t.Fatalf("un-prunable workload did not decline: %+v", d)
	}
	if !strings.Contains(d.Reason, "cannot prune") {
		t.Errorf("reason %q does not explain the decline", d.Reason)
	}
}
