// Package datafile is the CLI tools' shared dataset loader: one place
// for format dispatch and magic-byte auto-detection, so cmd/epistasis
// and cmd/trigened cannot drift apart on which inputs they accept.
//
// Supported formats: the trigene text and binary formats, the packed
// encoded-dataset .tpack format, PLINK .ped, PLINK binary .bed (with
// its .bim/.fam sidecars), PLINK additive-recode .raw, and the VCF
// subset (which needs a phenotype sidecar file, since VCF carries no
// case-control status).
package datafile

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"trigene"
	"trigene/internal/dataset"
	"trigene/internal/store"
)

// Read loads the dataset at path ("-" for stdin). format is "auto",
// "ped", "raw", "vcf", "bed" or "pack"; auto-detection distinguishes
// the trigene binary format (TGB1 magic), the packed .tpack format
// (TPK1 magic), PLINK binary .bed (0x6c 0x1b 0x01 magic; needs .bim
// and .fam sidecars next to the .bed), .raw (a FID header, space- or
// tab-delimited), VCF (## meta lines or a #CHROM header) and falls
// back to the trigene text format. Tools that search should prefer
// ReadSession, which keeps a pack's prebuilt encodings instead of
// just its matrix. phenPath names the VCF phenotype sidecar (one 0/1
// per sample, whitespace separated).
func Read(path, format, phenPath string) (*dataset.Matrix, error) {
	if format == "bed" || (format == "auto" && path != "-" && isBEDFile(path)) {
		mx, err := readBEDPath(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		return mx, nil
	}
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	mx, err := ReadFrom(r, format, phenPath)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return mx, nil
}

// ReadFrom decodes a dataset from r with the same format dispatch and
// auto-detection as Read — the stream-level entry the fuzz targets
// drive, so detection is exercised on arbitrary bytes without a
// filesystem.
func ReadFrom(r io.Reader, format, phenPath string) (*dataset.Matrix, error) {
	br := bufio.NewReader(r)
	switch format {
	case "pack":
		st, err := store.ReadPack(br)
		if err != nil {
			return nil, err
		}
		return st.Matrix(), nil
	case "ped":
		return dataset.ReadPED(br)
	case "raw":
		return dataset.ReadRAW(br)
	case "vcf":
		return readVCFWithPhen(br, phenPath)
	case "bed":
		return nil, errBEDStream
	case "auto":
		magic, err := br.Peek(4)
		if err != nil {
			return nil, fmt.Errorf("detecting format: %w", err)
		}
		switch {
		case bytes.Equal(magic, []byte("TGB1")):
			return dataset.ReadBinary(br)
		case store.IsPack(magic):
			st, err := store.ReadPack(br)
			if err != nil {
				return nil, err
			}
			return st.Matrix(), nil
		case dataset.IsBED(magic):
			return nil, errBEDStream
		case isRawHeader(magic):
			return dataset.ReadRAW(br)
		case magic[0] == '#' && magic[1] == '#', bytes.Equal(magic, []byte("#CHR")):
			return readVCFWithPhen(br, phenPath)
		default:
			return dataset.ReadText(br)
		}
	default:
		return nil, fmt.Errorf("unknown input format %q (want auto, ped, raw, vcf, bed or pack)", format)
	}
}

// errBEDStream rejects .bed input arriving as a bare stream: the
// genotype blob is useless without the .bim/.fam sidecars, which only
// a filesystem path can locate.
var errBEDStream = fmt.Errorf("bed input needs its .bim and .fam sidecars next to the .bed file; pass the .bed path directly instead of streaming it")

// FormatsHelp is the shared -informat flag description.
const FormatsHelp = "input format: auto (trigene text/binary, .tpack, .bed, VCF or .raw), ped, raw, vcf, bed or pack"

// ReadSession loads the dataset at path ("-" for stdin) as a
// ready-to-search Session. A packed .tpack input (format "pack", or
// auto-detected from the TPK1 magic) opens the encoded-dataset store
// directly — memory-mapped for files, so no re-parse and no
// re-binarization; every other format parses a matrix and builds a
// fresh Session around it.
func ReadSession(path, format, phenPath string) (*trigene.Session, error) {
	if format == "bed" || (format == "auto" && path != "-" && isBEDFile(path)) {
		mx, err := readBEDPath(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		return trigene.NewSession(mx)
	}
	if path != "-" && (format == "pack" || (format == "auto" && isPackFile(path))) {
		sess, err := trigene.OpenPack(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		return sess, nil
	}
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	sess, err := ReadSessionFrom(r, format, phenPath)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return sess, nil
}

// ReadSessionFrom decodes a Session from a stream with the same
// dispatch as ReadSession (heap-backed for packs; streams cannot be
// memory-mapped).
func ReadSessionFrom(r io.Reader, format, phenPath string) (*trigene.Session, error) {
	br := bufio.NewReader(r)
	if format == "pack" {
		return trigene.ReadPack(br)
	}
	if format == "auto" {
		if magic, err := br.Peek(4); err == nil && store.IsPack(magic) {
			return trigene.ReadPack(br)
		}
	}
	mx, err := ReadFrom(br, format, phenPath)
	if err != nil {
		return nil, err
	}
	return trigene.NewSession(mx)
}

// readBEDPath opens a PLINK binary fileset by its .bed path,
// resolving the .bim and .fam sidecars by swapping the extension.
func readBEDPath(path string) (*dataset.Matrix, error) {
	if path == "-" {
		return nil, errBEDStream
	}
	base := strings.TrimSuffix(path, ".bed")
	bed, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer bed.Close()
	bim, err := os.Open(base + ".bim")
	if err != nil {
		return nil, fmt.Errorf("bed sidecar: %w", err)
	}
	defer bim.Close()
	fam, err := os.Open(base + ".fam")
	if err != nil {
		return nil, fmt.Errorf("bed sidecar: %w", err)
	}
	defer fam.Close()
	return dataset.ReadBED(bed, bim, fam)
}

// isBEDFile sniffs a file's magic for the PLINK binary format.
func isBEDFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [3]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return dataset.IsBED(magic[:])
}

// isPackFile sniffs a file's magic for the packed format.
func isPackFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return store.IsPack(magic[:])
}

// isRawHeader detects a PLINK .raw header from the first four bytes:
// "FID" followed by any field separator (plink emits spaces, plink2
// --export A emits tabs).
func isRawHeader(magic []byte) bool {
	return len(magic) == 4 && bytes.Equal(magic[:3], []byte("FID")) &&
		(magic[3] == ' ' || magic[3] == '\t')
}

// readVCFWithPhen pairs a VCF genotype stream with a phenotype file.
func readVCFWithPhen(r io.Reader, phenPath string) (*dataset.Matrix, error) {
	if phenPath == "" {
		return nil, fmt.Errorf("VCF input requires -phen (VCF carries no case-control status)")
	}
	raw, err := os.ReadFile(phenPath)
	if err != nil {
		return nil, err
	}
	var phen []uint8
	for _, tok := range strings.Fields(string(raw)) {
		switch tok {
		case "0":
			phen = append(phen, 0)
		case "1":
			phen = append(phen, 1)
		default:
			return nil, fmt.Errorf("phenotype file: invalid value %q (want 0 or 1)", tok)
		}
	}
	return dataset.ReadVCF(r, phen)
}
