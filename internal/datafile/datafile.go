// Package datafile is the CLI tools' shared dataset loader: one place
// for format dispatch and magic-byte auto-detection, so cmd/epistasis
// and cmd/trigened cannot drift apart on which inputs they accept.
//
// Supported formats: the trigene text and binary formats, PLINK .ped,
// PLINK additive-recode .raw, and the VCF subset (which needs a
// phenotype sidecar file, since VCF carries no case-control status).
package datafile

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"trigene/internal/dataset"
)

// Read loads the dataset at path ("-" for stdin). format is "auto",
// "ped", "raw" or "vcf"; auto-detection distinguishes the trigene
// binary format (TGB1 magic), .raw (a FID header, space- or
// tab-delimited), VCF (## meta lines or a #CHROM header) and falls
// back to the trigene text format. phenPath names the VCF phenotype
// sidecar (one 0/1 per sample, whitespace separated).
func Read(path, format, phenPath string) (*dataset.Matrix, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	mx, err := ReadFrom(r, format, phenPath)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return mx, nil
}

// ReadFrom decodes a dataset from r with the same format dispatch and
// auto-detection as Read — the stream-level entry the fuzz targets
// drive, so detection is exercised on arbitrary bytes without a
// filesystem.
func ReadFrom(r io.Reader, format, phenPath string) (*dataset.Matrix, error) {
	br := bufio.NewReader(r)
	switch format {
	case "ped":
		return dataset.ReadPED(br)
	case "raw":
		return dataset.ReadRAW(br)
	case "vcf":
		return readVCFWithPhen(br, phenPath)
	case "auto":
		magic, err := br.Peek(4)
		if err != nil {
			return nil, fmt.Errorf("detecting format: %w", err)
		}
		switch {
		case bytes.Equal(magic, []byte("TGB1")):
			return dataset.ReadBinary(br)
		case isRawHeader(magic):
			return dataset.ReadRAW(br)
		case magic[0] == '#' && magic[1] == '#', bytes.Equal(magic, []byte("#CHR")):
			return readVCFWithPhen(br, phenPath)
		default:
			return dataset.ReadText(br)
		}
	default:
		return nil, fmt.Errorf("unknown input format %q (want auto, ped, raw or vcf)", format)
	}
}

// FormatsHelp is the shared -informat flag description.
const FormatsHelp = "input format: auto (trigene text/binary, VCF or .raw), ped, raw, vcf"

// isRawHeader detects a PLINK .raw header from the first four bytes:
// "FID" followed by any field separator (plink emits spaces, plink2
// --export A emits tabs).
func isRawHeader(magic []byte) bool {
	return len(magic) == 4 && bytes.Equal(magic[:3], []byte("FID")) &&
		(magic[3] == ' ' || magic[3] == '\t')
}

// readVCFWithPhen pairs a VCF genotype stream with a phenotype file.
func readVCFWithPhen(r io.Reader, phenPath string) (*dataset.Matrix, error) {
	if phenPath == "" {
		return nil, fmt.Errorf("VCF input requires -phen (VCF carries no case-control status)")
	}
	raw, err := os.ReadFile(phenPath)
	if err != nil {
		return nil, err
	}
	var phen []uint8
	for _, tok := range strings.Fields(string(raw)) {
		switch tok {
		case "0":
			phen = append(phen, 0)
		case "1":
			phen = append(phen, 1)
		default:
			return nil, fmt.Errorf("phenotype file: invalid value %q (want 0 or 1)", tok)
		}
	}
	return dataset.ReadVCF(r, phen)
}
