package datafile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trigene/internal/dataset"
)

// write materializes content as a file in a test dir.
func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAutoDetection routes every supported magic to the right parser,
// including the tab-delimited .raw header plink2 emits.
func TestAutoDetection(t *testing.T) {
	rawSpaces := "FID IID PAT MAT SEX PHENOTYPE rs1_A rs2_C\n" +
		"F S1 0 0 1 1 0 1\nF S2 0 0 1 2 2 0\n"
	rawTabs := strings.ReplaceAll(rawSpaces, " ", "\t")

	mx, err := dataset.Generate(dataset.GenConfig{SNPs: 4, Samples: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var bin strings.Builder
	if err := dataset.WriteBinary(&bin, mx); err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := dataset.WriteText(&text, mx); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, content string
		snps, samples int
	}{
		{"space.raw", rawSpaces, 2, 2},
		{"tab.raw", rawTabs, 2, 2},
		{"data.tgb", bin.String(), 4, 20},
		{"data.tg", text.String(), 4, 20},
	}
	for _, tc := range cases {
		got, err := Read(write(t, tc.name, tc.content), "auto", "")
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got.SNPs() != tc.snps || got.Samples() != tc.samples {
			t.Errorf("%s: %dx%d, want %dx%d", tc.name, got.SNPs(), got.Samples(), tc.snps, tc.samples)
		}
	}
}

// TestVCFPaths: auto-detected VCF requires the phenotype sidecar, and
// a valid pairing loads.
func TestVCFPaths(t *testing.T) {
	vcf := "##fileformat=VCFv4.2\n" +
		"#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n" +
		"1\t1\trs1\tA\tG\t.\t.\t.\tGT\t0/1\t1/1\n"
	path := write(t, "x.vcf", vcf)
	if _, err := Read(path, "auto", ""); err == nil || !strings.Contains(err.Error(), "-phen") {
		t.Errorf("VCF without -phen: %v", err)
	}
	phen := write(t, "phen.txt", "0 1\n")
	mx, err := Read(path, "vcf", phen)
	if err != nil {
		t.Fatal(err)
	}
	if mx.SNPs() != 1 || mx.Samples() != 2 {
		t.Errorf("VCF dims %dx%d", mx.SNPs(), mx.Samples())
	}
	if _, err := Read(path, "vcf", write(t, "bad.txt", "0 7\n")); err == nil {
		t.Error("invalid phenotype value accepted")
	}
}

// TestReadErrors: unknown formats, missing files and explicit-format
// parse failures fail loudly.
func TestReadErrors(t *testing.T) {
	path := write(t, "junk", "junk\n")
	if _, err := Read(path, "bogus", ""); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "absent"), "auto", ""); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := Read(path, "ped", ""); err == nil {
		t.Error("junk accepted as ped")
	}
	if _, err := Read(write(t, "short", "ab"), "auto", ""); err == nil {
		t.Error("too-short input accepted")
	}
}

// TestBEDPaths: a .bed path resolves its .bim/.fam sidecars under
// both the explicit format and magic-byte auto-detection, missing
// sidecars fail loudly, and stream input is rejected with a pointer
// at the path-based entry.
func TestBEDPaths(t *testing.T) {
	dir := t.TempDir()
	// Three SNPs x three samples: rows {2,0,1}, {0,1,2}, {1,1,0},
	// two-bit codes packed low bits first (00=2, 10=1, 11=0).
	bed := []byte{0x6c, 0x1b, 0x01, 0b10_11_00, 0b00_10_11, 0b11_10_10}
	bim := "1 rs0 0 1 A G\n1 rs1 0 2 A G\n1 rs2 0 3 A G\n"
	fam := "f a 0 0 1 1\nf b 0 0 1 2\nf c 0 0 2 2\n"
	bedPath := filepath.Join(dir, "x.bed")
	for name, content := range map[string][]byte{"x.bed": bed, "x.bim": []byte(bim), "x.fam": []byte(fam)} {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, format := range []string{"bed", "auto"} {
		mx, err := Read(bedPath, format, "")
		if err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if mx.SNPs() != 3 || mx.Samples() != 3 {
			t.Fatalf("format %q: dims %dx%d, want 3x3", format, mx.SNPs(), mx.Samples())
		}
		if got := mx.Row(0); got[0] != 2 || got[1] != 0 || got[2] != 1 {
			t.Fatalf("format %q: SNP 0 = %v, want [2 0 1]", format, got)
		}
	}
	sess, err := ReadSession(bedPath, "auto", "")
	if err != nil {
		t.Fatalf("ReadSession: %v", err)
	}
	if sess.SNPs() != 3 {
		t.Fatalf("session SNPs %d, want 3", sess.SNPs())
	}

	if err := os.Remove(filepath.Join(dir, "x.fam")); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bedPath, "bed", ""); err == nil || !strings.Contains(err.Error(), "bed sidecar") {
		t.Errorf("missing .fam: %v", err)
	}

	f, err := os.Open(bedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadFrom(f, "auto", ""); err == nil || !strings.Contains(err.Error(), "sidecars") {
		t.Errorf("streamed .bed: %v", err)
	}
}
