package datafile

import (
	"bytes"
	"testing"
)

// FuzzReadFrom drives the format auto-detection and every text decoder
// behind it with arbitrary bytes: whatever the input, the loader must
// return a valid matrix or an error — never panic, never hang, never
// hand back a matrix that fails its own validation.
func FuzzReadFrom(f *testing.F) {
	// One seed per detectable format, plus near-miss prefixes that
	// exercise the detector's boundaries.
	f.Add([]byte("2 3\n0 1 2\n1 0 1\n0 1\n"))              // trigene text
	f.Add([]byte("TGB1\x00\x00\x00\x00"))                  // binary magic, truncated body
	f.Add([]byte("FID IID PAT MAT SEX PHENOTYPE rs1_A\n")) // .raw header, no rows
	f.Add([]byte("FID\tIID\tPAT\tMAT\tSEX\tPHENOTYPE\trs1_A\nf1\ti1\t0\t0\t1\t2\t1\n"))
	f.Add([]byte("##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\n"))
	f.Add([]byte("#CHROM\tPOS\n"))
	f.Add([]byte("FID"))  // shorter than the 4-byte magic window
	f.Add([]byte("TGB"))  // almost the binary magic
	f.Add([]byte("##"))   // almost a VCF
	f.Add([]byte("\x00")) // binary junk into the text path
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, format := range []string{"auto", "raw", "ped"} {
			mx, err := ReadFrom(bytes.NewReader(data), format, "")
			if err != nil {
				continue
			}
			if mx == nil {
				t.Fatalf("format %q: nil matrix with nil error", format)
			}
			// Decoder contract: every stored value is in range. (Class
			// balance is a dataset property, checked at Session build,
			// not a decoder one.)
			for i := 0; i < mx.SNPs(); i++ {
				for j, g := range mx.Row(i) {
					if g > 2 {
						t.Fatalf("format %q: SNP %d sample %d: genotype %d out of range", format, i, j, g)
					}
				}
			}
			for j, p := range mx.Phenotypes() {
				if p > 1 {
					t.Fatalf("format %q: sample %d: phenotype %d out of range", format, j, p)
				}
			}
		}
	})
}
