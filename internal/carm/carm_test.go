package carm

import (
	"math"
	"math/rand"
	"testing"

	"trigene/internal/dataset"
	"trigene/internal/device"
	"trigene/internal/gpusim"
	"trigene/internal/perfmodel"
)

func ci3(t *testing.T) device.CPU {
	t.Helper()
	c, err := device.CPUByID("CI3")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func gi2(t *testing.T) device.GPU {
	t.Helper()
	g, err := device.GPUByID("GI2")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCPUModelRoofs(t *testing.T) {
	m := CPUModel(ci3(t), true)
	vec, err := m.RoofByName("Int32 Vector ADD Peak")
	if err != nil {
		t.Fatal(err)
	}
	// 72 cores x 2.4 GHz x 16 lanes x 2 ports = 5529.6 GINTOPS.
	if vec.Value < 5500 || vec.Value > 5560 {
		t.Errorf("vector peak = %.0f, want ~5530", vec.Value)
	}
	scalar, err := m.RoofByName("Scalar ADD Peak")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scalar.Value-72*2.4*4) > 0.01 {
		t.Errorf("scalar peak = %f", scalar.Value)
	}
	// Memory hierarchy ordering: L1 > L2 > L3 > DRAM.
	names := []string{"L1->C", "L2->C", "L3->C", "DRAM->C"}
	prev := 0.0
	for i := len(names) - 1; i >= 0; i-- {
		r, err := m.RoofByName(names[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Kind != Memory {
			t.Errorf("%s should be a memory roof", names[i])
		}
		if r.Value <= prev {
			t.Errorf("%s (%.0f GB/s) should exceed the level below (%.0f)", names[i], r.Value, prev)
		}
		prev = r.Value
	}
	// AVX build has lower ceilings than AVX-512.
	avx := CPUModel(ci3(t), false)
	avxVec, _ := avx.RoofByName("Int32 Vector ADD Peak")
	if avxVec.Value >= vec.Value {
		t.Error("AVX vector peak should be below AVX-512's")
	}
}

func TestGPUModelRoofs(t *testing.T) {
	m := GPUModel(gi2(t))
	add, err := m.RoofByName("Int32 Vector ADD Peak")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(add.Value-768*1.65) > 0.01 {
		t.Errorf("GI2 ADD peak = %f, want %f", add.Value, 768*1.65)
	}
	pop, err := m.RoofByName("POPCNT Peak")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pop.Value-96*4*1.65) > 0.01 {
		t.Errorf("GI2 POPCNT peak = %f", pop.Value)
	}
	if _, err := m.RoofByName("L1->C"); err == nil {
		t.Error("GPU model should not expose an L1 roof")
	}
}

func TestAttainable(t *testing.T) {
	m := Model{Roofs: []Roof{
		{Name: "comp", Kind: Compute, Value: 100},
		{Name: "mem", Kind: Memory, Value: 10},
	}}
	if got := m.Attainable(1); got != 10 {
		t.Errorf("Attainable(1) = %g, want 10 (memory bound)", got)
	}
	if got := m.Attainable(100); got != 100 {
		t.Errorf("Attainable(100) = %g, want 100 (compute bound)", got)
	}
	if got := m.Attainable(10); got != 100 {
		t.Errorf("Attainable(10) = %g, want exactly the ridge", got)
	}
}

func TestCPUPointsFigure2aShape(t *testing.T) {
	m := CPUModel(ci3(t), true)
	pts, err := CPUPoints(ci3(t), true, 2048, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	v1, v2, v3, v4 := pts[0], pts[1], pts[2], pts[3]
	v3f, v4f := pts[4], pts[5]
	// Paper: AI drops from V1 to V2 and stays there.
	if !(v2.AI < v1.AI) || v2.AI != v3.AI || v3.AI != v4.AI {
		t.Errorf("AI progression wrong: %g %g %g %g", v1.AI, v2.AI, v3.AI, v4.AI)
	}
	// Paper: V2 shows an apparent GINTOPS drop despite the ~2x element
	// speedup (fewer ops per element).
	if !(v2.GIntops < v1.GIntops) {
		t.Errorf("V2 GINTOPS (%.0f) should apparently drop below V1 (%.0f)", v2.GIntops, v1.GIntops)
	}
	// V3 improves over V2; V4 is the top performer.
	if !(v3.GIntops > v2.GIntops) || !(v4.GIntops > v3.GIntops) {
		t.Errorf("performance progression wrong: %.0f %.0f %.0f", v2.GIntops, v3.GIntops, v4.GIntops)
	}
	// The fused points sit at a lower AI (cached pair planes count as
	// touched bytes) and each fused variant outpaces its unfused
	// pipeline in element rate, which at 55 vs 57 ops/word still means
	// more GINTOPS at the lower intensity is not guaranteed — compare
	// element rates via ops/element instead.
	if !(v3f.AI < v2.AI) || v3f.AI != v4f.AI {
		t.Errorf("fused AI wrong: %g %g (V2 %g)", v3f.AI, v4f.AI, v2.AI)
	}
	cost2, _ := perfmodel.CostOf(3)
	costF, _ := perfmodel.CostOf(5)
	if v3f.GIntops/costF.OpsPerElement() <= v3.GIntops/cost2.OpsPerElement() {
		t.Error("V3F element rate should exceed V3's")
	}
	if v4f.GIntops/costF.OpsPerElement() <= v4.GIntops/cost2.OpsPerElement() {
		t.Error("V4F element rate should exceed V4's")
	}
	// No point exceeds its roofline ceiling.
	for _, p := range pts {
		if p.GIntops > m.Attainable(p.AI)*1.001 {
			t.Errorf("%s at %.0f GINTOPS exceeds ceiling %.0f", p.Name, p.GIntops, m.Attainable(p.AI))
		}
	}
}

func TestFusedTileWords(t *testing.T) {
	// 32 KiB: a third of the cache over 13 x 8-byte plane words.
	if bw := FusedTileWords(32<<10, 2); bw != (32<<10)/3/104 {
		t.Errorf("FusedTileWords(32Ki, 2) = %d", bw)
	}
	// More streamed x planes shrink the block; tiny budgets clamp to 1.
	if FusedTileWords(32<<10, 4) >= FusedTileWords(32<<10, 1) {
		t.Error("word block should shrink with the x batch")
	}
	if FusedTileWords(128, 2) != 1 {
		t.Error("tiny budget should clamp to one word")
	}
}

func TestGPUPointsFromSimulator(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	mx := dataset.NewMatrix(16, 256)
	for i := 0; i < 16; i++ {
		row := mx.Row(i)
		for j := range row {
			row[j] = uint8(r.Intn(3))
		}
	}
	for j := 0; j < 256; j++ {
		mx.SetPhen(j, uint8(j%2))
	}
	runner := gpusim.New(gi2(t))
	model := GPUModel(gi2(t))
	var pts []Point
	for k := gpusim.K1Naive; k <= gpusim.K4Tiled; k++ {
		res, err := runner.Search(encStore(mx), gpusim.Options{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, PointFromGPUStats(k.String(), res.Stats))
	}
	// Figure 2b shape: AI drops V1 -> V2 (same data, fewer ops);
	// V3/V4 outperform V2 strongly.
	if !(pts[1].AI < pts[0].AI) {
		t.Errorf("V2 AI (%.2f) should be below V1 (%.2f)", pts[1].AI, pts[0].AI)
	}
	if !(pts[2].GIntops > pts[1].GIntops) {
		t.Errorf("V3 (%.1f) should beat V2 (%.1f)", pts[2].GIntops, pts[1].GIntops)
	}
	for _, p := range pts {
		if p.AI <= 0 || p.GIntops <= 0 {
			t.Errorf("%s point not populated: %+v", p.Name, p)
		}
		if p.GIntops > model.Attainable(p.AI)*1.01 {
			t.Errorf("%s exceeds roofline", p.Name)
		}
	}
}

func TestPointFromGPUStatsZeroSafe(t *testing.T) {
	p := PointFromGPUStats("empty", gpusim.Stats{})
	if p.AI != 0 || p.GIntops != 0 {
		t.Error("zero stats should give zero point")
	}
}

func TestRoofByNameMissing(t *testing.T) {
	m := CPUModel(ci3(t), true)
	if _, err := m.RoofByName("nope"); err == nil {
		t.Error("missing roof accepted")
	}
}
