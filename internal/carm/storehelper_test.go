package carm

import (
	"trigene/internal/dataset"
	"trigene/internal/store"
)

// encStore wraps a test matrix in an encoded-dataset store, panicking
// on invalid fixtures (tests construct only valid matrices).
func encStore(mx *dataset.Matrix) *store.Store {
	st, err := store.New(mx)
	if err != nil {
		panic(err)
	}
	return st
}
