// Package carm implements the Cache-Aware Roofline Model (Ilic et al.,
// IEEE CAL 2014) characterization the paper uses to pick the best
// epistasis approach per device (Figure 2).
//
// A model is a set of roofs: compute ceilings in GINTOPS and memory
// bandwidth slopes in GB/s for each level of the memory hierarchy seen
// from the core (L1->C ... DRAM->C). An application point is an
// (arithmetic intensity, performance) pair; the paper's Figure 2 plots
// the four CPU and four GPU approaches against the roofs of Ice Lake SP
// and Iris Xe MAX.
//
// Roof values are derived from the device catalog; application points
// come from the analytical approach models (CPU) or the GPU simulator's
// executed-operation statistics (GPU).
package carm

import (
	"fmt"

	"trigene/internal/device"
	"trigene/internal/gpusim"
	"trigene/internal/perfmodel"
)

// RoofKind distinguishes compute ceilings from memory slopes.
type RoofKind int

const (
	// Compute roofs are horizontal ceilings in GINTOPS.
	Compute RoofKind = iota
	// Memory roofs are bandwidth slopes in GB/s: attainable GINTOPS at
	// intensity AI is Value * AI.
	Memory
)

// Roof is one ceiling or slope of a CARM plot.
type Roof struct {
	Name  string
	Kind  RoofKind
	Value float64 // GINTOPS (Compute) or GB/s (Memory)
}

// Model is the CARM of one device.
type Model struct {
	Device string
	Roofs  []Roof
}

// Point is one application's position on the CARM plot.
type Point struct {
	Name    string
	AI      float64 // intops / byte
	GIntops float64
}

// CPUModel builds the roofline of a Table I CPU for the chosen vector
// build. Compute ceilings assume 2 vector ALU ports and 4 scalar ports;
// L1 bandwidth assumes two vector loads per cycle, L2 half of L1, and
// the L3/DRAM slopes come from the catalog's sustained bandwidths.
func CPUModel(c device.CPU, avx512 bool) Model {
	cores := float64(c.TotalCores())
	ghz := c.BaseGHz
	lanes := float64(c.VectorInt32Lanes(avx512))
	vecBytes := lanes * 4
	return Model{
		Device: c.Name,
		Roofs: []Roof{
			{Name: "Int32 Vector ADD Peak", Kind: Compute, Value: cores * ghz * lanes * 2},
			{Name: "Scalar ADD Peak", Kind: Compute, Value: cores * ghz * 4},
			{Name: "L1->C", Kind: Memory, Value: cores * ghz * 2 * vecBytes},
			{Name: "L2->C", Kind: Memory, Value: cores * ghz * vecBytes},
			{Name: "L3->C", Kind: Memory, Value: c.L3GBs * float64(c.Sockets)},
			{Name: "DRAM->C", Kind: Memory, Value: c.DRAMGBs * float64(c.Sockets)},
		},
	}
}

// GPUModel builds the roofline of a Table II GPU: an int32 ALU ceiling
// over the stream cores, a POPCNT ceiling over the dedicated units, and
// three memory slopes. The top slope (SLM->C, the paper's Figure 2b
// label) is the per-CU load path on the requested-bytes axis: warp
// loads that coalesce or broadcast are served at this rate even though
// they transact far fewer bytes at L2.
func GPUModel(g device.GPU) Model {
	return Model{
		Device: g.Name,
		Roofs: []Roof{
			{Name: "Int32 Vector ADD Peak", Kind: Compute, Value: float64(g.StreamCores) * g.BoostGHz},
			{Name: "POPCNT Peak", Kind: Compute, Value: float64(g.CUs) * g.PopcntPerCU * g.BoostGHz},
			{Name: "SLM->C", Kind: Memory, Value: float64(g.CUs) * 64 * g.BoostGHz},
			{Name: "L2->C", Kind: Memory, Value: g.L2BytesPerCycle * g.BoostGHz},
			{Name: "DRAM->C", Kind: Memory, Value: g.DRAMGBs},
		},
	}
}

// Attainable returns the roofline ceiling at the given arithmetic
// intensity: the best memory slope capped by the best compute ceiling.
func (m Model) Attainable(ai float64) float64 {
	var bestMem, bestComp float64
	for _, r := range m.Roofs {
		switch r.Kind {
		case Memory:
			if v := r.Value * ai; v > bestMem {
				bestMem = v
			}
		case Compute:
			if r.Value > bestComp {
				bestComp = r.Value
			}
		}
	}
	if bestMem < bestComp {
		return bestMem
	}
	return bestComp
}

// RoofByName returns the named roof.
func (m Model) RoofByName(name string) (Roof, error) {
	for _, r := range m.Roofs {
		if r.Name == name {
			return r, nil
		}
	}
	return Roof{}, fmt.Errorf("carm: no roof %q on %s", name, m.Device)
}

// CapElemRate caps a modeled element rate (G elements/s) by the
// roofline ceiling at the approach's arithmetic intensity — the
// planner's sanity bound: an analytical throughput projection may not
// exceed what the device's roofs admit.
func CapElemRate(m Model, cost perfmodel.ApproachCost, gElemPerSec float64) float64 {
	ops := cost.OpsPerElement()
	if ops <= 0 {
		return gElemPerSec
	}
	if ceiling := m.Attainable(cost.AI()) / ops; gElemPerSec > ceiling {
		return ceiling
	}
	return gElemPerSec
}

// FusedTileWords sizes the fused kernels' word-block from an L1 data
// budget: the data third of the cache (the same split TileParams uses)
// must hold the nine cached pair-AND planes plus the 2*xBatch stored x
// planes streamed against them, all 64-bit words. This is the cache-
// residency constraint that keeps the fused kernels on the L1 slope of
// the roofline rather than spilling the pair planes to L2.
func FusedTileWords(l1Bytes, xBatch int) int {
	if xBatch < 1 {
		xBatch = 1
	}
	sizeBlock := l1Bytes / 3
	bw := sizeBlock / ((9 + 2*xBatch) * 8)
	if bw < 1 {
		bw = 1
	}
	return bw
}

// CPUPoints characterizes the CPU approaches on a device — the paper's
// four plus the fused variants V3F/V4F: the element rates come from
// the analytical models, converted to GINTOPS with the per-approach
// operation counts, at the per-approach arithmetic intensities.
func CPUPoints(c device.CPU, avx512 bool, snps, samples int) ([]Point, error) {
	points := make([]Point, 0, 6)
	for a := 1; a <= 6; a++ {
		cost, err := perfmodel.CostOf(a)
		if err != nil {
			return nil, err
		}
		rate, err := perfmodel.CPUApproachGElemPerSec(c, a, avx512, snps, samples)
		if err != nil {
			return nil, err
		}
		points = append(points, Point{
			Name:    perfmodel.ApproachName(a),
			AI:      cost.AI(),
			GIntops: rate * cost.OpsPerElement(),
		})
	}
	return points, nil
}

// PointFromGPUStats characterizes one simulated GPU kernel run: the
// intensity is executed operations over requested bytes, and the
// performance is executed operations over modeled time.
func PointFromGPUStats(name string, st gpusim.Stats) Point {
	ops := float64(st.ALUOps + st.PopcntOps)
	p := Point{Name: name}
	if st.RequestedBytes > 0 {
		p.AI = ops / float64(st.RequestedBytes)
	}
	if st.ModelSeconds > 0 {
		p.GIntops = ops / st.ModelSeconds / 1e9
	}
	return p
}
