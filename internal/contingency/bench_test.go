package contingency

import (
	"math/rand"
	"testing"

	"trigene/internal/dataset"
)

func benchPlanes(words int) [6][]uint64 {
	r := rand.New(rand.NewSource(2))
	var p [6][]uint64
	for i := range p {
		p[i] = make([]uint64, words)
		for j := range p[i] {
			p[i][j] = r.Uint64()
		}
	}
	return p
}

// One 16384-sample class pass per iteration, matching the paper's
// figure workloads.
const benchWords = 256

func BenchmarkAccumulateSplitScalar(b *testing.B) {
	p := benchPlanes(benchWords)
	b.SetBytes(benchWords * 8 * 6)
	var ft [Cells]int32
	for i := 0; i < b.N; i++ {
		AccumulateSplit(&ft, p[0], p[1], p[2], p[3], p[4], p[5])
	}
}

func BenchmarkAccumulateSplitLanes4(b *testing.B) {
	p := benchPlanes(benchWords)
	b.SetBytes(benchWords * 8 * 6)
	var ft [Cells]int32
	for i := 0; i < b.N; i++ {
		AccumulateSplitLanes4(&ft, p[0], p[1], p[2], p[3], p[4], p[5])
	}
}

func BenchmarkAccumulateSplitLanes8(b *testing.B) {
	p := benchPlanes(benchWords)
	b.SetBytes(benchWords * 8 * 6)
	var ft [Cells]int32
	for i := 0; i < b.N; i++ {
		AccumulateSplitLanes8(&ft, p[0], p[1], p[2], p[3], p[4], p[5])
	}
}

func BenchmarkBuildNaiveVsSplit(b *testing.B) {
	mx := randomMatrix(3, 8, 16384)
	bin := dataset.Binarize(mx)
	spl := dataset.SplitBinarize(mx)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = BuildNaive(bin, 1, 4, 7)
		}
	})
	b.Run("split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = BuildSplit(spl, 1, 4, 7)
		}
	})
}
