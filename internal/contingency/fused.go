package contingency

import "math/bits"

// PairPlanes is the number of cached (gy, gz) pair-AND planes a fused
// kernel pass consumes: the 3x3 genotype products of the y and z bit
// planes.
const PairPlanes = 9

// BuildPairPlanes fills dst with the nine pair-AND planes of the given
// y/z word ranges: plane gy*3+gz holds ys[gy] & zs[gz] word by word,
// with the genotype-2 planes derived by NOR. dst must hold
// PairPlanes*len(y0s) words; plane p occupies dst[p*n : (p+1)*n] where
// n = len(y0s). Building the planes once per (i1, i2) pair lets the
// fused Accumulate* kernels drop the per-i0 y/z recomputation: the 2
// NORs and 9 ANDs here are paid once instead of once per x plane.
func BuildPairPlanes(dst []uint64, y0s, y1s, z0s, z1s []uint64) {
	n := len(y0s)
	if n == 0 {
		return
	}
	_ = y1s[n-1]
	_ = z0s[n-1]
	_ = z1s[n-1]
	_ = dst[PairPlanes*n-1]
	for w := 0; w < n; w++ {
		y0, y1 := y0s[w], y1s[w]
		z0, z1 := z0s[w], z1s[w]
		ys := [3]uint64{y0, y1, ^(y0 | y1)}
		zs := [3]uint64{z0, z1, ^(z0 | z1)}
		o := w
		for gy := 0; gy < 3; gy++ {
			y := ys[gy]
			dst[o] = y & zs[0]
			o += n
			dst[o] = y & zs[1]
			o += n
			dst[o] = y & zs[2]
			o += n
		}
	}
}

// AccumulateFused adds the genotype-combination counts of one x plane
// pair against cached pair-AND planes: per word it derives the x
// genotype-2 word by NOR (1 NOR + 27 AND + 27 POPCNT, versus the 3 NOR
// + 36 AND of AccumulateSplit). pair must be laid out by
// BuildPairPlanes over the same word range, so len(pair) ==
// PairPlanes*len(x0s). Padding handling matches AccumulateSplit: the
// caller subtracts the pad inflation from accumulator 26.
func AccumulateFused(ft *[Cells]int32, x0s, x1s, pair []uint64) {
	accumulateFusedFrom(ft, x0s, x1s, pair, 0)
}

// accumulateFusedFrom is AccumulateFused starting at word lo. The pair
// stride stays len(x0s), so the unrolled kernels can reuse it for
// their remainder words without re-slicing the plane-major buffer.
func accumulateFusedFrom(ft *[Cells]int32, x0s, x1s, pair []uint64, lo int) {
	n := len(x0s)
	if lo >= n {
		return
	}
	_ = x1s[n-1]
	_ = pair[PairPlanes*n-1]
	for w := lo; w < n; w++ {
		x0, x1 := x0s[w], x1s[w]
		x2 := ^(x0 | x1)
		// Pair planes outer, x genotypes inner: each cached word is
		// loaded once and charged against all three x planes (cell
		// index for (gx, gy, gz) is gx*9 + p with p = gy*3+gz).
		o := w
		for p := 0; p < PairPlanes; p++ {
			v := pair[o]
			ft[p] += int32(bits.OnesCount64(x0 & v))
			ft[p+9] += int32(bits.OnesCount64(x1 & v))
			ft[p+18] += int32(bits.OnesCount64(x2 & v))
			o += n
		}
	}
}

// AccumulateFusedLanes4 is AccumulateFused with the word loop unrolled
// over independent pairs (the 256-bit analogue of the fused kernel):
// two words' popcount chains interleave per pair-plane load.
func AccumulateFusedLanes4(ft *[Cells]int32, x0s, x1s, pair []uint64) {
	n := len(x0s)
	w := 0
	for ; w+2 <= n; w += 2 {
		ax0, ax1 := x0s[w], x1s[w]
		bx0, bx1 := x0s[w+1], x1s[w+1]
		ax2 := ^(ax0 | ax1)
		bx2 := ^(bx0 | bx1)
		o := w
		for p := 0; p < PairPlanes; p++ {
			pa, pb := pair[o], pair[o+1]
			ft[p] += int32(bits.OnesCount64(ax0&pa) + bits.OnesCount64(bx0&pb))
			ft[p+9] += int32(bits.OnesCount64(ax1&pa) + bits.OnesCount64(bx1&pb))
			ft[p+18] += int32(bits.OnesCount64(ax2&pa) + bits.OnesCount64(bx2&pb))
			o += n
		}
	}
	accumulateFusedFrom(ft, x0s, x1s, pair, w)
}

// AccumulateFusedLanes8 widens AccumulateFusedLanes4 to four
// interleaved words per iteration (the 512-bit analogue): each cached
// pair-plane load feeds a four-word unrolled bits.OnesCount64 chain.
func AccumulateFusedLanes8(ft *[Cells]int32, x0s, x1s, pair []uint64) {
	n := len(x0s)
	w := 0
	for ; w+4 <= n; w += 4 {
		ax0, ax1 := x0s[w], x1s[w]
		bx0, bx1 := x0s[w+1], x1s[w+1]
		cx0, cx1 := x0s[w+2], x1s[w+2]
		dx0, dx1 := x0s[w+3], x1s[w+3]
		ax2 := ^(ax0 | ax1)
		bx2 := ^(bx0 | bx1)
		cx2 := ^(cx0 | cx1)
		dx2 := ^(dx0 | dx1)
		o := w
		for p := 0; p < PairPlanes; p++ {
			pa, pb, pc, pd := pair[o], pair[o+1], pair[o+2], pair[o+3]
			ft[p] += int32(bits.OnesCount64(ax0&pa) + bits.OnesCount64(bx0&pb) +
				bits.OnesCount64(cx0&pc) + bits.OnesCount64(dx0&pd))
			ft[p+9] += int32(bits.OnesCount64(ax1&pa) + bits.OnesCount64(bx1&pb) +
				bits.OnesCount64(cx1&pc) + bits.OnesCount64(dx1&pd))
			ft[p+18] += int32(bits.OnesCount64(ax2&pa) + bits.OnesCount64(bx2&pb) +
				bits.OnesCount64(cx2&pc) + bits.OnesCount64(dx2&pd))
			o += n
		}
	}
	accumulateFusedFrom(ft, x0s, x1s, pair, w)
}

// AccumulateFusedX2 accumulates two x plane pairs per pass over the
// cached pair planes, two words at a time: each pair-plane word loaded
// from cache is charged against both i0 candidates, halving the pair
// traffic of two single-x passes while keeping four independent
// popcount chains in flight.
func AccumulateFusedX2(fta, ftb *[Cells]int32, xa0s, xa1s, xb0s, xb1s, pair []uint64) {
	n := len(xa0s)
	w := 0
	for ; w+2 <= n; w += 2 {
		a0, a1 := xa0s[w], xa1s[w]
		c0, c1 := xa0s[w+1], xa1s[w+1]
		b0, b1 := xb0s[w], xb1s[w]
		d0, d1 := xb0s[w+1], xb1s[w+1]
		a2 := ^(a0 | a1)
		c2 := ^(c0 | c1)
		b2 := ^(b0 | b1)
		d2 := ^(d0 | d1)
		o := w
		for p := 0; p < PairPlanes; p++ {
			p0, p1 := pair[o], pair[o+1]
			fta[p] += int32(bits.OnesCount64(a0&p0) + bits.OnesCount64(c0&p1))
			fta[p+9] += int32(bits.OnesCount64(a1&p0) + bits.OnesCount64(c1&p1))
			fta[p+18] += int32(bits.OnesCount64(a2&p0) + bits.OnesCount64(c2&p1))
			ftb[p] += int32(bits.OnesCount64(b0&p0) + bits.OnesCount64(d0&p1))
			ftb[p+9] += int32(bits.OnesCount64(b1&p0) + bits.OnesCount64(d1&p1))
			ftb[p+18] += int32(bits.OnesCount64(b2&p0) + bits.OnesCount64(d2&p1))
			o += n
		}
	}
	accumulateFusedFrom(fta, xa0s, xa1s, pair, w)
	accumulateFusedFrom(ftb, xb0s, xb1s, pair, w)
}
