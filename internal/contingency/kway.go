package contingency

import (
	"fmt"
	"math/bits"

	"trigene/internal/dataset"
)

// Arbitrary-order tables. The paper motivates orders beyond three
// ("interactions of three or more SNPs"); this generic builder covers
// k in [2, MaxOrder], producing 3^k cells per class with the same
// phenotype-split + NOR-inference strategy as the specialized kernels.
// Cell index: base-3, first SNP most significant (matching ComboIndex
// for k = 3 and PairComboIndex for k = 2).

// MaxOrder bounds the generic builder: 3^7 cells of two int32 columns
// still fit comfortably in L1, and int64 rank arithmetic stays exact
// far beyond any practical M at k = 7.
const MaxOrder = 7

// CellsK returns 3^k.
func CellsK(k int) int {
	if k < 1 || k > MaxOrder {
		panic(fmt.Sprintf("contingency: order %d out of [1,%d]", k, MaxOrder))
	}
	c := 1
	for i := 0; i < k; i++ {
		c *= 3
	}
	return c
}

// BuildSplitK accumulates the 3^k-cell counts for the given SNP
// combination into ctrl and cases (which must both have length
// CellsK(len(snps)) and arrive zeroed). Genotype-2 planes are derived
// with NOR; the padding inflation of the all-genotype-2 cell is
// corrected internally.
func BuildSplitK(s *dataset.Split, snps []int, ctrl, cases []int32) error {
	k := len(snps)
	if k < 2 || k > MaxOrder {
		return fmt.Errorf("contingency: order %d out of [2,%d]", k, MaxOrder)
	}
	cells := CellsK(k)
	if len(ctrl) != cells || len(cases) != cells {
		return fmt.Errorf("contingency: cell slices %d/%d, want %d", len(ctrl), len(cases), cells)
	}
	for class := 0; class < 2; class++ {
		dst := ctrl
		if class == dataset.Case {
			dst = cases
		}
		words := s.Words[class]
		planes := make([][2][]uint64, k)
		for d, snp := range snps {
			planes[d][0] = s.Plane(class, snp, 0)
			planes[d][1] = s.Plane(class, snp, 1)
		}
		var level [MaxOrder + 1]uint64 // partial AND per recursion depth
		var geno [MaxOrder][3]uint64   // per-SNP plane words for the current word
		for w := 0; w < words; w++ {
			for d := 0; d < k; d++ {
				g0, g1 := planes[d][0][w], planes[d][1][w]
				geno[d][0], geno[d][1], geno[d][2] = g0, g1, ^(g0 | g1)
			}
			// Iterative DFS over the 3^k cells with shared AND
			// prefixes: digits holds the current genotype per depth.
			level[0] = ^uint64(0)
			var digits [MaxOrder]int
			d := 0
			for {
				if d == k {
					cell := 0
					for i := 0; i < k; i++ {
						cell = cell*3 + digits[i]
					}
					dst[cell] += int32(bits.OnesCount64(level[k]))
					d--
					for d >= 0 {
						digits[d]++
						if digits[d] < 3 {
							break
						}
						digits[d] = 0
						d--
					}
					if d < 0 {
						break
					}
					level[d+1] = level[d] & geno[d][digits[d]]
					d++
					continue
				}
				level[d+1] = level[d] & geno[d][digits[d]]
				d++
			}
		}
		// The all-genotype-2 cell absorbed the padding ones.
		dst[cells-1] -= int32(s.Pad[class])
	}
	return nil
}

// BuildReferenceK is the per-sample oracle for arbitrary order.
func BuildReferenceK(mx *dataset.Matrix, snps []int, ctrl, cases []int32) error {
	k := len(snps)
	if k < 1 || k > MaxOrder {
		return fmt.Errorf("contingency: order %d out of [1,%d]", k, MaxOrder)
	}
	cells := CellsK(k)
	if len(ctrl) != cells || len(cases) != cells {
		return fmt.Errorf("contingency: cell slices %d/%d, want %d", len(ctrl), len(cases), cells)
	}
	for smp := 0; smp < mx.Samples(); smp++ {
		cell := 0
		for _, snp := range snps {
			cell = cell*3 + int(mx.Geno(snp, smp))
		}
		if mx.Phen(smp) == dataset.Case {
			cases[cell]++
		} else {
			ctrl[cell]++
		}
	}
	return nil
}
